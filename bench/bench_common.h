// Shared helpers for the paper-reproduction benchmark binaries.
//
// Every binary regenerates one table or figure of the paper and prints
// model/measured values next to the paper's published values, flagging
// the relative deviation. EXPERIMENTS.md collects the resulting output.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>

#include "lqcd/base/table.h"

namespace lqcd::bench {

/// Fold a result buffer into a running checksum. Every timed kernel loop
/// must route its output through this (and the harness must print or emit
/// the final value): reading every element makes the kernel's results
/// observable, so the compiler cannot dead-code-eliminate the work being
/// measured — the su3_bench trick. Strided sampling keeps the checksum
/// itself cheap relative to the kernel.
inline void checksum_accumulate(double& acc, const float* data,
                                std::int64_t n, std::int64_t stride = 1) {
  for (std::int64_t i = 0; i < n; i += stride)
    acc += static_cast<double>(data[i]);
}

inline double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Time `body` (called once per iteration) for ~`min_seconds`, after one
/// untimed warm-up call. Returns seconds per iteration.
template <class F>
double time_kernel(F&& body, double min_seconds) {
  body();  // warm-up: page-in, backend resolution, branch training
  std::int64_t iters = 0;
  const double t0 = now_seconds();
  double t1 = t0;
  do {
    body();
    ++iters;
    t1 = now_seconds();
  } while (t1 - t0 < min_seconds);
  return (t1 - t0) / static_cast<double>(iters);
}

inline void print_header(const std::string& title,
                         const std::string& paper_ref,
                         const std::string& notes = "") {
  std::printf("================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  if (!notes.empty()) std::printf("%s\n", notes.c_str());
  std::printf("================================================================\n\n");
}

/// "ours (paper, +x%)" cell formatting.
inline std::string vs_paper(double ours, double paper, int precision = 1) {
  char buf[96];
  if (paper == 0) {
    std::snprintf(buf, sizeof buf, "%.*f", precision, ours);
  } else {
    const double pct = 100.0 * (ours - paper) / paper;
    std::snprintf(buf, sizeof buf, "%.*f (%.*f, %+0.0f%%)", precision, ours,
                  precision, paper, pct);
  }
  return buf;
}

}  // namespace lqcd::bench
