// Shared helpers for the paper-reproduction benchmark binaries.
//
// Every binary regenerates one table or figure of the paper and prints
// model/measured values next to the paper's published values, flagging
// the relative deviation. EXPERIMENTS.md collects the resulting output.
#pragma once

#include <cstdio>
#include <string>

#include "lqcd/base/table.h"

namespace lqcd::bench {

inline void print_header(const std::string& title,
                         const std::string& paper_ref,
                         const std::string& notes = "") {
  std::printf("================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  if (!notes.empty()) std::printf("%s\n", notes.c_str());
  std::printf("================================================================\n\n");
}

/// "ours (paper, +x%)" cell formatting.
inline std::string vs_paper(double ours, double paper, int precision = 1) {
  char buf[96];
  if (paper == 0) {
    std::snprintf(buf, sizeof buf, "%.*f", precision, ours);
  } else {
    const double pct = 100.0 * (ours - paper) / paper;
    std::snprintf(buf, sizeof buf, "%.*f (%.*f, %+0.0f%%)", precision, ours,
                  precision, paper, pct);
  }
  return buf;
}

}  // namespace lqcd::bench
