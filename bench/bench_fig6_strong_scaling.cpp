// Regenerates paper Fig. 6: strong-scaling curves of the DD and non-DD
// solvers for the three production lattices. Values are "relative speed"
// normalized to the smallest time-to-solution of the non-DD solver, as in
// the paper.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "host_measure.h"
#include "paper_specs.h"

using namespace lqcd;
using namespace lqcd::cluster;

namespace {

void print_lattice(const ClusterSim& sim, const DDSolveSpec& dd,
                   const NonDDSolveSpec& nd, const std::vector<int>& dd_nodes,
                   const std::vector<int>& nd_nodes, const char* title,
                   double paper_peak_speedup, double host_slowdown) {
  std::printf("---- %s ----\n", title);

  std::vector<std::pair<int, double>> dd_times, nd_times;
  for (const int n : dd_nodes) {
    const auto part = NodePartition::choose(dd.lattice, n, dd.block);
    dd_times.emplace_back(n, sim.simulate_dd(dd, part).total_seconds);
  }
  for (const int n : nd_nodes) {
    const auto part = NodePartition::choose(nd.lattice, n, {2, 2, 2, 2});
    nd_times.emplace_back(n, sim.simulate_nondd(nd, part).total_seconds);
  }
  double nd_best = 1e300;
  for (const auto& [n, t] : nd_times) nd_best = std::min(nd_best, t);

  // "DD host-est[s]": the same solve if every KNC were a 60-core node of
  // THIS host at its measured block-solve rate (compute-rate scaling of
  // the model time; the measured-host column of the figure).
  Table t({"KNCs", "DD time[s]", "DD rel.speed", "DD host-est[s]",
           "non-DD time[s]", "non-DD rel.speed"});
  const std::size_t rows = std::max(dd_times.size(), nd_times.size());
  double dd_best_speed = 0;
  for (std::size_t i = 0; i < rows; ++i) {
    t.row();
    if (i < dd_times.size()) {
      t.cell(dd_times[i].first)
          .cell(dd_times[i].second, 2)
          .cell(nd_best / dd_times[i].second, 2)
          .cell(dd_times[i].second * host_slowdown, 2);
      dd_best_speed = std::max(dd_best_speed, nd_best / dd_times[i].second);
    } else {
      t.cell("").cell("").cell("").cell("");
    }
    if (i < nd_times.size()) {
      t.cell(nd_times[i].second, 2).cell(nd_best / nd_times[i].second, 2);
    } else {
      t.cell("").cell("");
    }
  }
  std::printf("%s", t.str().c_str());
  std::printf(
      "  peak DD relative speed: %.1fx the best non-DD time-to-solution "
      "(paper Fig. 6: ~%.0fx)\n\n",
      dd_best_speed, paper_peak_speedup);
}

}  // namespace

int main() {
  bench::print_header(
      "Fig. 6 — multi-node strong scaling: relative speed of DD vs non-DD",
      "Heybrock et al., SC14, Fig. 6",
      "relative speed := (best non-DD time) / time; paper headline: the "
      "DD solver\nscales to more nodes and is up to ~5x faster in the "
      "strong-scaling limit");

  ClusterSim sim;

  // Host calibration: scale KNC-model times by the ratio of the model's
  // per-core compute bound to this host's measured block-solve rate.
  const auto cal = bench::measure_host(/*smoke=*/false);
  const knc::KncSpec spec;
  const double host_slowdown =
      cal.block_solve_gflops > 0
          ? spec.sp_gflops_bound_per_core() / cal.block_solve_gflops
          : 0.0;
  bench::print_host_vs_model(cal, spec);

  print_lattice(sim, bench::dd_32cubed(), bench::nondd_32cubed(),
                {8, 16, 32, 64}, {8, 16, 32, 64},
                "32^3x64 (m_pi = 290 MeV; iteration counts estimated)",
                4.0, host_slowdown);
  print_lattice(sim, bench::dd_48cubed(), bench::nondd_48cubed(),
                {24, 32, 64, 128}, {12, 24, 36, 72, 144},
                "48^3x64 (m_pi = 150 MeV; Table III counts)", 5.0,
                host_slowdown);
  print_lattice(sim, bench::dd_64cubed(), bench::nondd_64cubed(),
                {64, 128, 256, 512, 1024}, {64, 128, 256},
                "64^3x128 (SU(3)-symmetric point; Table III counts)", 4.5,
                host_slowdown);

  // The preliminary non-uniform-partitioning points of Fig. 6.
  {
    const auto dd = bench::dd_64cubed();
    const auto nd_best =
        sim.simulate_nondd(bench::nondd_64cubed(),
                           NodePartition::choose({64, 64, 64, 128}, 256,
                                                 {2, 2, 2, 2}))
            .total_seconds;
    Table t({"KNCs", "partitioning", "time[s]", "rel.speed"});
    const auto r320 = sim.simulate_dd(
        dd, NodePartition::nonuniform_t(dd.lattice, {4, 4, 4},
                                        {28, 28, 28, 28, 16}));
    const auto r640 = sim.simulate_dd(
        dd, NodePartition::nonuniform_t(dd.lattice, {4, 4, 8},
                                        {28, 28, 28, 28, 16}));
    t.row().cell(320).cell("t=4x28+16").cell(r320.total_seconds, 2).cell(
        nd_best / r320.total_seconds, 2);
    t.row().cell(640).cell("t=4x28+16").cell(r640.total_seconds, 2).cell(
        nd_best / r640.total_seconds, 2);
    std::printf("---- 64^3x128, DD, non-uniform partitioning ----\n%s\n",
                t.str().c_str());
  }
  return 0;
}
