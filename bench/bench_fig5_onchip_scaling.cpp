// Regenerates paper Fig. 5: on-chip strong scaling of the DD
// preconditioner (ISchwarz = 16, Idomain = 5) from 1 to 60 KNC cores for
// the three volumes of the figure. Load-imbalance steps follow Eqs. 6-7.
//
// The three volumes (and their per-color domain counts for the 8x4^3
// block):
//   16x8x20x24   ->  ndomain =  60  (100% load at 60 cores)
//   32x32x20x24  ->  ndomain = 480  (100% load at 60 cores)
//   48x12x12x16  ->  ndomain = 108  (90% load at 60 cores; the 48^3x64 /
//                                    64-KNC working point of Sec. IV-C)
#include <cstdio>

#include "bench_common.h"
#include "host_measure.h"
#include "lqcd/knc/work_model.h"

using namespace lqcd;

namespace {

struct Volume {
  const char* label;
  std::int64_t sites;
};

double preconditioner_gflops(const knc::KernelModel& model,
                             std::int64_t ndomain, int cores) {
  const Coord block{8, 4, 4, 4};
  const auto work = knc::block_solve_work(block, 5, /*half=*/true);
  const double block_seconds =
      model.seconds_per_core(work.kernel, knc::PrefetchMode::kL1L2);
  const std::int64_t rounds = (ndomain + cores - 1) / cores;
  // One Schwarz sweep processes both colors; rate is flops/time and the
  // ISchwarz factor cancels.
  const double time = 2.0 * static_cast<double>(rounds) * block_seconds;
  const double flops = 2.0 * static_cast<double>(ndomain) * work.flops;
  return flops / time / 1e9;
}

}  // namespace

int main() {
  bench::print_header(
      "Fig. 5 — on-chip strong scaling of the DD preconditioner",
      "Heybrock et al., SC14, Fig. 5 (ISchwarz=16, Idomain=5, mixed "
      "single/half precision)",
      "paper headline: close-to-linear scaling to 60 cores; 400-500 "
      "Gflop/s per chip");

  const knc::KernelModel model;
  const Coord block{8, 4, 4, 4};
  const Volume volumes[] = {
      {"16x8x20x24", 16LL * 8 * 20 * 24},
      {"32x32x20x24", 32LL * 32 * 20 * 24},
      {"48x12x12x16", 48LL * 12 * 12 * 16},
  };

  // Measured-host anchor: the actual block-solve rate of this machine's
  // active SIMD backend, projected to N cores at perfect scaling — the
  // measured column printed next to the model columns.
  const auto cal = bench::measure_host(/*smoke=*/false);

  Table t({"cores", "V=16x8x20x24", "V=32x32x20x24", "V=48x12x12x16",
           "perfect", "host-meas x cores"});
  const double per_core_1 = preconditioner_gflops(model, 1, 1);
  for (int cores : {1, 2, 4, 8, 12, 16, 20, 24, 30, 36, 40, 48, 54, 60}) {
    t.row().cell(cores);
    for (const auto& v : volumes) {
      const std::int64_t nd = knc::ndomain_per_color(v.sites, block);
      t.cell(preconditioner_gflops(model, nd, cores), 1);
    }
    t.cell(per_core_1 * cores, 1);
    t.cell(cal.scaled_block_solve_gflops(cores), 1);
  }
  std::printf("%s\n", t.str().c_str());
  bench::print_host_vs_model(cal, model.spec());

  for (const auto& v : volumes) {
    const std::int64_t nd = knc::ndomain_per_color(v.sites, block);
    std::printf("  %-13s ndomain = %3lld, load at 60 cores = %3.0f%%\n",
                v.label, static_cast<long long>(nd),
                100.0 * knc::core_load(nd, 60));
  }
  std::printf(
      "\nPaper check: the two ndomain-divisible-by-60 volumes reach ~100%%\n"
      "load (linear speedup); 48x12x12x16 steps down to 90%% — matching\n"
      "Fig. 5's load plateaus. 60-core rates land in the 400-500 Gflop/s\n"
      "band the paper reports for the mixed single/half preconditioner.\n");
  return 0;
}
