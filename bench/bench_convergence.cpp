// Real-numerics convergence experiments backing the paper's algorithmic
// claims (run on a laptop-scale synthetic lattice; see DESIGN.md Sec. 2
// for the substitution of production gauge configurations):
//
//  (1) Sec. IV-B1: half-precision storage of gauge+clover in the
//      preconditioner changes the residual history only marginally
//      (paper: < 0.14% on 48^3x64).
//  (2) Sec. II-D:  even-odd preconditioning roughly halves the Krylov
//      iteration count.
//  (3) Sec. II-C/IV: the DD-preconditioned solver needs far fewer outer
//      iterations and global reductions than the non-DD solver (the
//      origin of the strong-scaling advantage).
//  (4) Sec. V: deflated restarts converge faster than plain restarts for
//      ill-conditioned (light-mass) systems.
#include <cstdio>

#include "bench_common.h"
#include "lqcd/core/dd_solver.h"
#include "lqcd/core/nondd_solver.h"
#include "lqcd/solver/even_odd.h"

using namespace lqcd;

namespace {

struct Problem {
  Geometry geom;
  GaugeField<double> gauge;
  FermionField<double> b;

  Problem(const Coord& dims, double disorder, std::uint64_t seed)
      : geom(dims),
        gauge([&] {
          auto g = random_gauge_field<double>(geom, disorder, seed);
          g.make_time_antiperiodic();
          return g;
        }()),
        b(geom.volume()) {
    gaussian(b, seed + 1);
  }
};

}  // namespace

int main() {
  bench::print_header(
      "Convergence experiments (real numerics, synthetic gauge field)",
      "Heybrock et al., SC14, Secs. II-D, IV-B1",
      "lattice 8^4, disorder 0.25 (plaquette ~0.50), csw = 1.0,\n"
      "mass -0.62 (near-critical: the additive mass renormalization of\n"
      "Wilson fermions shifts m_crit strongly negative on rough fields)");

  Problem prob({8, 8, 8, 8}, 0.25, 2024);
  const double mass = -0.62, csw = 1.0;
  std::printf("average plaquette: %.4f\n\n", average_plaquette(prob.gauge));

  // ---- (1) half vs single precision preconditioner ----------------------
  {
    DDSolverConfig cfg;
    cfg.block = {4, 4, 4, 4};
    cfg.schwarz_iterations = 2;
    cfg.block_mr_iterations = 3;
    cfg.tolerance = 1e-10;
    cfg.half_precision_matrices = false;
    DDSolver s_single(prob.geom, prob.gauge, mass, csw, cfg);
    cfg.half_precision_matrices = true;
    DDSolver s_half(prob.geom, prob.gauge, mass, csw, cfg);
    FermionField<double> x1(prob.geom.volume()), x2(prob.geom.volume());
    const auto st1 = s_single.solve(prob.b, x1);
    const auto st2 = s_half.solve(prob.b, x2);
    double worst = 0;
    const std::size_t n =
        std::min(st1.residual_history.size(), st2.residual_history.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (st1.residual_history[i] < 1e-7) break;
      worst = std::max(worst, std::abs(st2.residual_history[i] /
                                           st1.residual_history[i] -
                                       1.0));
    }
    std::printf(
        "(1) half vs single preconditioner storage:\n"
        "    outer iterations: single %d, half %d\n"
        "    max relative residual-history deviation: %.2f%%  (paper: "
        "<0.14%% on its much larger, slower-converging system)\n"
        "    both converged to 1e-10: %s\n\n",
        st1.iterations, st2.iterations, 100.0 * worst,
        (st1.converged && st2.converged) ? "yes" : "NO");
  }

  // ---- (2) even-odd preconditioning ~2x ---------------------------------
  {
    Checkerboard cb(prob.geom);
    WilsonCloverOperator<double> op(prob.geom, cb, prob.gauge, mass, csw);
    op.prepare_schur();
    WilsonCloverLinOp<double> a(op);
    SchurLinOp<double> schur(op);
    BiCGstabParams p;
    p.tolerance = 1e-10;
    p.max_iterations = 40000;
    FermionField<double> x(prob.geom.volume());
    const auto full = bicgstab_solve(a, prob.b, x, p);
    FermionField<double> be(cb.half_volume()), xe(cb.half_volume());
    gaussian(be, 3);
    const auto eo = bicgstab_solve(schur, be, xe, p);
    std::printf(
        "(2) even-odd (Schur) preconditioning:\n"
        "    BiCGstab iterations, full operator:  %d\n"
        "    BiCGstab iterations, Schur operator: %d  -> speedup %.2fx "
        "(paper: ~2x)\n\n",
        full.iterations, eo.iterations,
        static_cast<double>(full.iterations) / eo.iterations);
  }

  // ---- (3) DD vs non-DD iterations and reductions ------------------------
  {
    DDSolverConfig cfg;
    cfg.block = {4, 4, 4, 4};
    cfg.schwarz_iterations = 8;
    cfg.block_mr_iterations = 5;
    cfg.basis_size = 16;
    cfg.deflation_size = 4;
    cfg.tolerance = 1e-10;
    DDSolver dd(prob.geom, prob.gauge, mass, csw, cfg);
    FermionField<double> x1(prob.geom.volume()), x2(prob.geom.volume());
    const auto sdd = dd.solve(prob.b, x1);

    NonDDSolverConfig ncfg;
    ncfg.tolerance = 1e-10;
    NonDDSolver nondd(prob.geom, prob.gauge, mass, csw, ncfg);
    const auto snd = nondd.solve(prob.b, x2);

    std::printf(
        "(3) DD (FGMRES-DR + multiplicative Schwarz) vs non-DD (BiCGstab):\n"
        "    outer iterations: DD %d vs non-DD %d  (%.0fx fewer)\n"
        "    global reductions: DD %lld vs non-DD %lld  (%.0fx fewer; "
        "paper 48^3x64: 423 vs 23907 = 57x)\n"
        "    block solves inside the preconditioner: %lld (all "
        "communication-free)\n\n",
        sdd.iterations, snd.iterations,
        static_cast<double>(snd.iterations) / std::max(1, sdd.iterations),
        static_cast<long long>(sdd.global_sum_events),
        static_cast<long long>(snd.global_sum_events),
        static_cast<double>(snd.global_sum_events) /
            std::max<std::int64_t>(1, sdd.global_sum_events),
        static_cast<long long>(dd.schwarz_stats().block_solves));
  }

  // ---- (4) deflated restarts -------------------------------------------
  {
    // GMRES-DR pays off when restarts matter AND the spectrum has a few
    // isolated small modes — the situation of the paper's production
    // systems (hundreds of outer iterations) where the Schwarz-
    // preconditioned spectrum clusters near 1 with low-mode outliers.
    // We demonstrate the mechanism on an operator with exactly that
    // spectrum (6 planted modes at |lambda| ~ 5e-3 under a bulk in
    // [1, 2]); on our laptop-scale Wilson problem the DD-preconditioned
    // solve finishes in ~3 restart cycles, so deflation is neutral there
    // (also reported below).
    Rng rng(41);
    const std::int64_t n = 512;
    std::vector<Complex<double>> d(static_cast<std::size_t>(n));
    for (auto& z : d)
      z = Complex<double>(1.0 + rng.uniform(), 0.1 * rng.gaussian());
    for (int i = 0; i < 6; ++i)
      d[static_cast<std::size_t>(i)] =
          Complex<double>(0.005 * (i + 1), 0.0);
    DiagonalOperator<double> op(d);
    FermionField<double> rhs(n), x0(n), x1(n);
    gaussian(rhs, 42);
    FGMRESDRParams p;
    p.basis_size = 10;
    p.deflation_size = 0;
    p.tolerance = 1e-8;
    p.max_iterations = 2000;
    const auto plain = fgmres_dr_solve<double>(op, nullptr, rhs, x0, p);
    p.deflation_size = 6;
    const auto defl = fgmres_dr_solve<double>(op, nullptr, rhs, x1, p);
    std::printf(
        "(4) deflated restarts (FGMRES-DR, basis 10, spectrum with 6 "
        "isolated low modes):\n"
        "    plain restarts:    %d iterations (converged: %s)\n"
        "    deflated restarts: %d iterations (converged: %s)  -> %.1fx "
        "fewer\n"
        "    (paper Sec. V: GMRES-DR converges faster for problems with "
        "low modes)\n\n",
        plain.iterations, plain.converged ? "yes" : "no", defl.iterations,
        defl.converged ? "yes" : "no",
        static_cast<double>(plain.iterations) /
            std::max(1, defl.iterations));

    DDSolverConfig cfg;
    cfg.block = {4, 4, 4, 4};
    cfg.schwarz_iterations = 2;
    cfg.block_mr_iterations = 3;
    cfg.basis_size = 12;
    cfg.tolerance = 1e-10;
    cfg.deflation_size = 0;
    DDSolver dd0(prob.geom, prob.gauge, mass, csw, cfg);
    cfg.deflation_size = 4;
    DDSolver dd4(prob.geom, prob.gauge, mass, csw, cfg);
    FermionField<double> y0(prob.geom.volume()), y1(prob.geom.volume());
    const auto s0 = dd0.solve(prob.b, y0);
    const auto s1 = dd4.solve(prob.b, y1);
    std::printf(
        "    on the DD-preconditioned 8^4 Wilson system (converges in ~3 "
        "cycles):\n"
        "    k=0: %d outer iterations, k=4: %d — neutral at this scale, "
        "as expected\n",
        s0.iterations, s1.iterations);
  }
  return 0;
}
