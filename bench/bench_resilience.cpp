// Resilient-solve layer benchmarks:
//
//  (1) Guard overhead on the fault-free path: DDSolver with the full
//      resilience stack armed (finiteness scans on every preconditioner
//      output + one iterate checkpoint per outer cycle) vs. the plain
//      pipeline. Acceptance budget: < 2% wall-clock overhead, identical
//      iteration trajectory.
//  (2) Time-to-solution under injected faults, one scenario per fault
//      class (SDC bit-flip of the iterate, fp16 saturation in the Schwarz
//      sweep, degenerate zero correction), with the recovery events the
//      solver recorded.
//  (3) Cluster-level fault scenarios on the paper's 1024-node Table III
//      configuration: straggler node, lossy fabric, node failures with
//      and without checkpointing.
//  (4) Fault-tolerant collectives: replay the host-proxy allreduce tree
//      with a dead rank in the vnode emulation, measure the rewire cost
//      (hops replayed x per-hop latency), and feed it into the cluster
//      model side by side with the legacy flat recovery constant.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_common.h"
#include "lqcd/base/timer.h"
#include "lqcd/cluster/cluster_sim.h"
#include "lqcd/core/dd_solver.h"
#include "lqcd/resilience/fault_injector.h"
#include "lqcd/vnode/collectives.h"

using namespace lqcd;

namespace {

struct Problem {
  Geometry geom;
  GaugeField<double> gauge;
  FermionField<double> b;

  Problem(const Coord& dims, double disorder, std::uint64_t seed)
      : geom(dims),
        gauge([&] {
          auto g = random_gauge_field<double>(geom, disorder, seed);
          g.make_time_antiperiodic();
          return g;
        }()),
        b(geom.volume()) {
    gaussian(b, seed + 1);
  }
};

// Deliberately weak preconditioner: the solve spans several outer FGMRES
// cycles, so checkpoints, rollbacks and restarts actually engage (a
// near-exact preconditioner converges in one cycle and the cycle-level
// machinery never runs).
DDSolverConfig base_config() {
  DDSolverConfig cfg;
  cfg.block = {4, 4, 4, 4};
  cfg.basis_size = 6;
  cfg.deflation_size = 2;
  cfg.schwarz_iterations = 1;
  cfg.block_mr_iterations = 2;
  cfg.tolerance = 1e-10;
  cfg.max_iterations = 4000;
  return cfg;
}

struct SolveRun {
  SolverStats stats;
  double seconds = 0;
};

SolveRun run_solve(const Problem& prob, double mass,
                   const DDSolverConfig& cfg, int repeats) {
  SolveRun best;
  best.seconds = 1e300;
  for (int rep = 0; rep < repeats; ++rep) {
    DDSolver solver(prob.geom, prob.gauge, mass, 1.0, cfg);
    // Re-arm the injectors so every repetition sees the same fault
    // sequence.
    if (cfg.resilience.schwarz_injector != nullptr)
      cfg.resilience.schwarz_injector->reset();
    if (cfg.resilience.iterate_injector != nullptr)
      cfg.resilience.iterate_injector->reset();
    if (cfg.resilience.packed_injector != nullptr)
      cfg.resilience.packed_injector->reset();
    FermionField<double> x(prob.geom.volume());
    Timer t;
    const auto stats = solver.solve(prob.b, x);
    const double s = t.seconds();
    if (s < best.seconds) best = {stats, s};
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  bench::print_header(
      "Resilient-solve layer: guard overhead and recovery cost",
      "robustness extension (not in the paper); fault model motivated by "
      "the paper's\n1024-KNC production scale",
      smoke ? "(--smoke: single repeat per scenario)"
            : "lattice 8^4, disorder 0.7, mass 0.1, csw = 1.0; faults "
              "injected\ndeterministically (seeded)");

  Problem prob({8, 8, 8, 8}, 0.7, 4242);
  const double mass = 0.1;
  // min-of-N to suppress scheduler noise; 1 in CI smoke mode.
  const int repeats = smoke ? 1 : 5;

  // ---- (1) fault-free overhead ------------------------------------------
  {
    DDSolverConfig cfg = base_config();
    const auto plain = run_solve(prob, mass, cfg, repeats);
    cfg.resilience.enabled = true;
    const auto armed = run_solve(prob, mass, cfg, repeats);
    const double overhead =
        100.0 * (armed.seconds - plain.seconds) / plain.seconds;
    std::printf("fault-free overhead (budget < 2%%)\n");
    std::printf("  plain pipeline     : %8.3f s, %4d iterations\n",
                plain.seconds, plain.stats.iterations);
    std::printf("  resilience armed   : %8.3f s, %4d iterations\n",
                armed.seconds, armed.stats.iterations);
    std::printf("  overhead           : %+7.2f %%   iterations %s\n\n",
                overhead,
                armed.stats.iterations == plain.stats.iterations
                    ? "bit-identical"
                    : "DIFFER (unexpected)");
  }

  // ---- (2) time-to-solution under injected faults -----------------------
  {
    DDSolverConfig cfg = base_config();
    const auto clean = run_solve(prob, mass, cfg, repeats);

    std::printf("recovery cost per fault class (vs clean %.3f s, %d its)\n",
                clean.seconds, clean.stats.iterations);

    // SDC: flip an exponent bit of the outer iterate between cycles.
    {
      FaultInjectorConfig fic;
      fic.fault = FaultClass::kSpinorBitFlip;
      fic.seed = 23;
      fic.bit = 62;
      fic.first_opportunity = 0;
      fic.max_events = 1;
      FaultInjector inj(fic);
      DDSolverConfig c = cfg;
      c.resilience.enabled = true;
      c.resilience.iterate_injector = &inj;
      const auto r = run_solve(prob, mass, c, repeats);
      std::printf(
          "  SDC bit-flip       : %8.3f s, %4d its, %d rollbacks, "
          "%s, breakdown=%s\n",
          r.seconds, r.stats.iterations, r.stats.rollback_restarts,
          r.stats.converged ? "converged" : "FAILED",
          to_string(r.stats.breakdown));
    }

    // fp16 saturation inside the Schwarz sweep -> precision fallback.
    {
      FaultInjectorConfig fic;
      fic.fault = FaultClass::kFp16Overflow;
      fic.seed = 29;
      fic.first_opportunity = 2;
      fic.max_events = 2;
      FaultInjector inj(fic);
      DDSolverConfig c = cfg;
      c.resilience.enabled = true;
      c.resilience.schwarz_injector = &inj;
      DDSolver solver(prob.geom, prob.gauge, mass, 1.0, c);
      FermionField<double> x(prob.geom.volume());
      Timer t;
      const auto stats = solver.solve(prob.b, x);
      std::printf(
          "  fp16 overflow      : %8.3f s, %4d its, %lld fallbacks, "
          "%s, breakdown=%s\n",
          t.seconds(), stats.iterations,
          static_cast<long long>(solver.schwarz_stats().precision_fallbacks),
          stats.converged ? "converged" : "FAILED",
          to_string(stats.breakdown));
    }

    // Degenerate zero correction -> discarded direction + plain restart.
    {
      FaultInjectorConfig fic;
      fic.fault = FaultClass::kZeroField;
      fic.seed = 31;
      fic.first_opportunity = 1;
      fic.max_events = 1;
      FaultInjector inj(fic);
      DDSolverConfig c = cfg;
      c.half_precision_matrices = false;
      c.resilience.enabled = true;
      c.resilience.schwarz_injector = &inj;
      const auto r = run_solve(prob, mass, c, repeats);
      std::printf(
          "  zero correction    : %8.3f s, %4d its, %d restarts, "
          "%s, breakdown=%s\n\n",
          r.seconds, r.stats.iterations, r.stats.stagnation_restarts,
          r.stats.converged ? "converged" : "FAILED",
          to_string(r.stats.breakdown));
    }
  }

  // ---- (3) cluster-level fault scenarios --------------------------------
  {
    using namespace lqcd::cluster;
    // The paper's 64^3x128 strong-scaling point on 1024 KNCs.
    DDSolveSpec spec;
    spec.lattice = {64, 64, 64, 128};
    spec.block = {8, 4, 4, 4};
    spec.outer_iterations = 872;  // Table III iteration count
    spec.half_precision_boundaries = true;
    const auto part =
        NodePartition::uniform({64, 64, 64, 128}, {4, 4, 8, 8});

    ClusterSimParams params;
    const double clean =
        ClusterSim(params).simulate_dd(spec, part).total_seconds;
    std::printf("cluster fault scenarios (64^3x128 DD solve, 1024 KNCs, "
                "clean %.2f s)\n", clean);

    {
      ClusterSimParams p = params;
      p.faults.straggler_nodes = 1;
      p.faults.straggler_slowdown = 1.3;
      const auto r = ClusterSim(p).simulate_dd(spec, part);
      std::printf("  1 straggler @1.3x  : %8.2f s  (+%.0f%%)\n",
                  r.total_seconds, 100.0 * (r.total_seconds / clean - 1.0));
    }
    {
      ClusterSimParams p = params;
      p.network.packet_loss_probability = 0.01;
      const auto r = ClusterSim(p).simulate_dd(spec, part);
      std::printf("  1%% packet loss     : %8.2f s  (+%.1f%%)\n",
                  r.total_seconds, 100.0 * (r.total_seconds / clean - 1.0));
    }
    {
      // Node failures only matter on production-length runs: a stream of
      // 100 solves (one trajectory's worth of right-hand sides).
      DDSolveSpec stream = spec;
      stream.outer_iterations = 100 * spec.outer_iterations;
      ClusterSimParams p = params;
      const double stream_clean =
          ClusterSim(p).simulate_dd(stream, part).total_seconds;
      p.faults.node_mtbf_hours = 2000.0;  // ~1 failure/cluster/3.4 days
      p.faults.recovery_seconds = 300.0;
      p.faults.checkpoint_interval_seconds = 600.0;
      const auto r = ClusterSim(p).simulate_dd(stream, part);
      std::printf("  -- 100-solve stream, clean %.0f s --\n", stream_clean);
      std::printf("  MTBF 2000h, ckpt 10min: %8.0f s  (+%.1f%%, "
                  "E[failures]=%.2f)\n",
                  r.total_seconds,
                  100.0 * (r.total_seconds / stream_clean - 1.0),
                  r.expected_failures);
      p.faults.checkpoint_interval_seconds = 0.0;
      const auto r2 = ClusterSim(p).simulate_dd(stream, part);
      std::printf("  ... no checkpoints    : %8.0f s  (+%.1f%%)\n",
                  r2.total_seconds,
                  100.0 * (r2.total_seconds / stream_clean - 1.0));
    }
  }

  // ---- (4) fault-tolerant collectives: emulated rewire cost -------------
  {
    using namespace lqcd::cluster;
    NetworkSpec net;
    const double hop_s = net.allreduce_latency_us * 1e-6;

    // Replay a 16-rank proxy tree with every possible single rank death
    // and count the hops the rewire protocol (parent adoption + host
    // checkpoint re-fetch) actually replays.
    auto death_sweep = [&](int ranks, std::int64_t* max_hops) {
      std::vector<double> parts(static_cast<std::size_t>(ranks));
      for (int r = 0; r < ranks; ++r)
        parts[static_cast<std::size_t>(r)] = std::sin(1.0 + r);
      CommStats clean_comm;
      const double exact = tree_allreduce(parts, clean_comm).value;
      double sum_hops = 0;
      *max_hops = 0;
      int wrong = 0;
      for (int k = 0; k + 1 < ranks; ++k) {
        FaultInjectorConfig fic;
        fic.fault = FaultClass::kRankDeath;
        fic.first_opportunity = k;
        fic.max_events = 1;
        FaultInjector inj(fic);
        CollectiveConfig cfg;
        cfg.injector = &inj;
        CommStats comm;
        const auto res = tree_allreduce(parts, comm, cfg);
        if (res.status != CollectiveStatus::kOk ||
            std::abs(res.value - exact) > 1e-12 * std::abs(exact))
          ++wrong;
        sum_hops += static_cast<double>(res.stats.rewire_hops);
        *max_hops = std::max(*max_hops, res.stats.rewire_hops);
      }
      if (wrong > 0)
        std::printf("  WARNING: %d death positions gave a wrong sum\n",
                    wrong);
      return sum_hops / static_cast<double>(ranks - 1);
    };

    std::printf("fault-tolerant allreduce: emulated dead-rank rewire cost\n");
    std::int64_t max16 = 0, max1024 = 0;
    const double avg16 = death_sweep(16, &max16);
    const double avg1024 = death_sweep(1024, &max1024);
    std::printf(
        "  16 ranks  : avg %.1f / max %lld rewire hops -> %.1f / %.1f ms\n",
        avg16, static_cast<long long>(max16), avg16 * hop_s * 1e3,
        static_cast<double>(max16) * hop_s * 1e3);
    std::printf(
        "  1024 ranks: avg %.1f / max %lld rewire hops -> %.1f / %.1f ms\n",
        avg1024, static_cast<long long>(max1024), avg1024 * hop_s * 1e3,
        static_cast<double>(max1024) * hop_s * 1e3);

    // Cluster model: the 100-solve stream of section (3), charging node
    // failures with the measured rewire cost (+ respawn rework) instead
    // of the flat 300 s constant — modeled vs emulated side by side.
    DDSolveSpec spec;
    spec.lattice = {64, 64, 64, 128};
    spec.block = {8, 4, 4, 4};
    spec.outer_iterations = 100 * 872;
    spec.half_precision_boundaries = true;
    const auto part =
        NodePartition::uniform({64, 64, 64, 128}, {4, 4, 8, 8});
    ClusterSimParams p;
    const double clean = ClusterSim(p).simulate_dd(spec, part).total_seconds;
    p.faults.node_mtbf_hours = 2000.0;
    p.faults.checkpoint_interval_seconds = 600.0;
    p.faults.recovery_seconds = 300.0;  // legacy flat constant
    const auto flat = ClusterSim(p).simulate_dd(spec, part);
    p.faults.rewire_hops = static_cast<double>(max1024);
    p.faults.rewire_rework_seconds = 30.0;  // respawn outside the tree
    const auto measured = ClusterSim(p).simulate_dd(spec, part);
    std::printf("  100-solve stream on 1024 KNCs (clean %.0f s, "
                "E[failures]=%.2f):\n",
                clean, flat.expected_failures);
    std::printf("    flat 300 s constant   : %8.0f s  (+%.2f%%)\n",
                flat.total_seconds,
                100.0 * (flat.total_seconds / clean - 1.0));
    std::printf("    measured rewire model : %8.0f s  (+%.2f%%)  "
                "[%lld hops x %.0f us + 30 s rework]\n",
                measured.total_seconds,
                100.0 * (measured.total_seconds / clean - 1.0),
                static_cast<long long>(max1024), net.allreduce_latency_us);
  }

  // ---- (5) ABFT: in-solve checksum sweeps + Daly-tuned intervals --------
  {
    std::printf("\nABFT: in-solve packed-checksum verification\n");
    const auto clean = run_solve(prob, mass, base_config(), repeats);

    // Fault-free: the periodic sweeps read (never write) the packed
    // matrices, so the trajectory must stay bit-identical.
    {
      DDSolverConfig c = base_config();
      c.resilience.enabled = true;
      c.resilience.abft.enabled = true;
      const auto r = run_solve(prob, mass, c, repeats);
      std::printf("  ABFT on, fault-free: %8.3f s, %4d its (+%.2f%% vs "
                  "plain, iterations %s)\n",
                  r.seconds, r.stats.iterations,
                  100.0 * (r.seconds - clean.seconds) / clean.seconds,
                  r.stats.iterations == clean.stats.iterations
                      ? "bit-identical"
                      : "DIFFER (unexpected)");
    }

    // Packed-data upsets between Schwarz sweeps, detected by the periodic
    // sweeps and repaired by re-packing the hit domains. Deterministic
    // burst (the statistical p=1e-3 coverage lives in tests/test_abft).
    {
      FaultInjectorConfig fic;
      fic.fault = FaultClass::kSpinorBitFlip;
      fic.seed = 37;
      fic.first_opportunity = 5;
      fic.max_events = 3;
      FaultInjector inj(fic);
      DDSolverConfig c = base_config();
      c.resilience.enabled = true;
      c.resilience.packed_injector = &inj;
      c.resilience.abft.enabled = true;
      c.resilience.abft.verify_interval = 4;
      DDSolver solver(prob.geom, prob.gauge, mass, 1.0, c);
      FermionField<double> x(prob.geom.volume());
      Timer t;
      const auto stats = solver.solve(prob.b, x);
      const auto* as = solver.abft_stats();
      std::printf(
          "  p=1e-3 packed upset: %8.3f s, %4d its, %lld upsets -> "
          "%lld detected / %lld repacked, %s, breakdown=%s\n",
          t.seconds(), stats.iterations,
          static_cast<long long>(
              inj.stats().events_at(FaultSite::kPackedData)),
          static_cast<long long>(as ? as->detections : 0),
          static_cast<long long>(as ? as->repacks : 0),
          stats.converged ? "converged" : "FAILED",
          to_string(stats.breakdown));
    }

    // Cluster model: the section-(3) 100-solve stream, now paying for the
    // checkpoint WRITES too (60 s each). Fixed 600 s interval vs the
    // Young/Daly optimum from the system MTBF; plus the modeled cost of
    // the in-solve ABFT sweeps at the Daly-picked verify period.
    using namespace lqcd::cluster;
    DDSolveSpec spec;
    spec.lattice = {64, 64, 64, 128};
    spec.block = {8, 4, 4, 4};
    spec.outer_iterations = 100 * 872;
    spec.half_precision_boundaries = true;
    const auto part =
        NodePartition::uniform({64, 64, 64, 128}, {4, 4, 8, 8});
    ClusterSimParams p;
    const double stream_clean =
        ClusterSim(p).simulate_dd(spec, part).total_seconds;
    p.faults.node_mtbf_hours = 2000.0;
    p.faults.recovery_seconds = 300.0;
    p.faults.checkpoint_cost_seconds = 60.0;
    p.faults.checkpoint_interval_seconds = 600.0;
    const auto fixed = ClusterSim(p).simulate_dd(spec, part);
    p.faults.auto_tune_checkpoint_interval = true;
    const auto tuned = ClusterSim(p).simulate_dd(spec, part);
    std::printf("  checkpoint tuning (100-solve stream, 1024 KNCs, clean "
                "%.0f s, 60 s writes):\n", stream_clean);
    std::printf("    fixed 600 s interval : %8.0f s  (+%.1f%%)\n",
                fixed.total_seconds,
                100.0 * (fixed.total_seconds / stream_clean - 1.0));
    std::printf("    Daly-tuned %4.0f s    : %8.0f s  (+%.1f%%)  %s\n",
                tuned.effective_checkpoint_interval_seconds,
                tuned.total_seconds,
                100.0 * (tuned.total_seconds / stream_clean - 1.0),
                tuned.total_seconds <= fixed.total_seconds
                    ? "[tuned <= fixed]"
                    : "[WORSE than fixed (unexpected)]");
    const int verify_every = std::max<int>(
        1, static_cast<int>(std::llround(
               daly_checkpoint_interval(0.05, 1.0 / 1e-3))));
    DDSolveSpec with_abft = spec;
    with_abft.abft_verify_interval = verify_every;
    const auto abft_run = ClusterSim(p).simulate_dd(with_abft, part);
    std::printf("    + ABFT sweeps every %d applications: %.0f s of "
                "verification (+%.2f%% of clean)\n",
                verify_every, abft_run.abft_verify_seconds,
                100.0 * abft_run.abft_verify_seconds / stream_clean);
  }

  return 0;
}
