// Measured host kernel rates (su3_bench methodology): first-principles
// flop counts, timed loops with result checksums so the compiler cannot
// discard the work, one HostCalibration per SIMD backend. Fills the
// pure-data knc::HostCalibration so the KNC machine model and the figure
// benches can print measured-host columns next to model columns.
#pragma once

#include <cstdint>
#include <vector>

#include "bench_common.h"
#include "lqcd/core/dd_solver.h"
#include "lqcd/knc/machine.h"
#include "lqcd/simd/dispatch.h"

namespace lqcd::bench {

// Per-site / per-call flop counts, from the repo's instrumented counter
// contract (knc/work_model.h and SchwarzStats): 198 per SU(3)
// matrix-matrix multiply, 132 per SU(3) x half-spinor, 168 per dslash
// hop, 504 per clover block pair.
inline constexpr double kFlopsSu3MulNn = 198.0;
inline constexpr double kFlopsSu3MulHalfSpinor = 132.0;
inline constexpr double kFlopsPerHop = 168.0;
inline constexpr double kFlopsCloverPair = 504.0;

struct KernelMeasurement {
  double seconds = 0;   ///< per iteration
  double flops = 0;     ///< per iteration (0 for bandwidth-only kernels)
  double bytes = 0;     ///< per iteration (0 for compute kernels)
  double checksum = 0;  ///< DCE guard; also a cheap cross-backend check

  double gflops() const noexcept {
    return seconds > 0 ? flops / seconds / 1e9 : 0.0;
  }
  double gbs() const noexcept {
    return seconds > 0 ? bytes / seconds / 1e9 : 0.0;
  }
};

namespace detail {

inline std::vector<float> random_floats(std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<float>(0.5 * rng.gaussian());
  return v;
}

}  // namespace detail

/// Dense SU(3) matrix-matrix multiply over a matrix stream — the
/// compute-ceiling calibration kernel (su3_bench's core loop).
inline KernelMeasurement measure_su3_mul_nn(std::int64_t nmat,
                                            double min_seconds) {
  const auto a = detail::random_floats(nmat * 18, 101);
  const auto b = detail::random_floats(nmat * 18, 102);
  std::vector<float> c(static_cast<std::size_t>(nmat) * 18);
  KernelMeasurement m;
  const auto& k = simd::kernels();
  m.seconds = time_kernel(
      [&] {
        k.su3_mul_nn(a.data(), b.data(), c.data(), nmat);
        checksum_accumulate(m.checksum, c.data(),
                            static_cast<std::int64_t>(c.size()), 97);
      },
      min_seconds);
  m.flops = kFlopsSu3MulNn * static_cast<double>(nmat);
  return m;
}

/// SU(3) x half-spinor on lane vectors: one link applied to all lanes,
/// streamed over `nsites` sites.
inline KernelMeasurement measure_su3_mul_lanes(std::int32_t nsites, int lanes,
                                               double min_seconds) {
  const auto u = detail::random_floats(static_cast<std::int64_t>(nsites) * 18,
                                       111);
  const auto x = detail::random_floats(
      static_cast<std::int64_t>(nsites) * 12 * lanes, 112);
  std::vector<float> y(x.size());
  KernelMeasurement m;
  const auto& k = simd::kernels();
  m.seconds = time_kernel(
      [&] {
        for (std::int32_t s = 0; s < nsites; ++s)
          k.su3_mul_lanes(u.data() + std::size_t(s) * 18,
                          x.data() + std::size_t(s) * 12 * lanes,
                          y.data() + std::size_t(s) * 12 * lanes, lanes,
                          s & 1);
        checksum_accumulate(m.checksum, y.data(),
                            static_cast<std::int64_t>(y.size()), 89);
      },
      min_seconds);
  m.flops =
      kFlopsSu3MulHalfSpinor * static_cast<double>(nsites) * lanes;
  return m;
}

/// The dslash hop arithmetic through the dispatch table: spin-project,
/// SU(3)-multiply, reconstruct-accumulate, 8 hops per site on a ring
/// neighborhood. Same inner kernels (and flop accounting: 168 per hop) as
/// the lane dslash inside the Schwarz block solve, without its gather
/// and boundary machinery.
inline KernelMeasurement measure_dslash_lanes(std::int32_t nsites, int lanes,
                                              double min_seconds) {
  const auto in = detail::random_floats(
      static_cast<std::int64_t>(nsites) * 24 * lanes, 121);
  const auto u = detail::random_floats(
      static_cast<std::int64_t>(nsites) * 8 * 18, 122);
  std::vector<float> out(in.size(), 0.0f);
  std::vector<float> h(static_cast<std::size_t>(12) * lanes);
  std::vector<float> uh(static_cast<std::size_t>(12) * lanes);
  KernelMeasurement m;
  const auto& k = simd::kernels();
  m.seconds = time_kernel(
      [&] {
        for (std::int32_t s = 0; s < nsites; ++s) {
          for (int mu = 0; mu < 4; ++mu)
            for (const int sign : {+1, -1}) {
              const std::int32_t nb =
                  (s + 1 + mu) < nsites ? s + 1 + mu : 0;
              const int hop = 2 * mu + (sign > 0 ? 0 : 1);
              k.project_lanes(in.data() + std::size_t(s) * 24 * lanes, mu,
                              sign, h.data(), lanes);
              k.su3_mul_lanes(
                  u.data() + (std::size_t(s) * 8 + std::size_t(hop)) * 18,
                  h.data(), uh.data(), lanes, sign < 0);
              k.reconstruct_add_lanes(
                  out.data() + std::size_t(nb) * 24 * lanes, uh.data(), mu,
                  sign, lanes);
            }
        }
        checksum_accumulate(m.checksum, out.data(),
                            static_cast<std::int64_t>(out.size()), 83);
      },
      min_seconds);
  m.flops = kFlopsPerHop * 8.0 * static_cast<double>(nsites) * lanes;
  return m;
}

/// Clover block-pair application on lane vectors.
inline KernelMeasurement measure_clover_lanes(std::int32_t nsites, int lanes,
                                              double min_seconds) {
  Rng rng(131);
  std::vector<PackedHermitian6<float>> blocks(std::size_t(nsites) * 2);
  for (auto& blk : blocks) {
    for (auto& d : blk.diag) d = static_cast<float>(1 + 0.1 * rng.gaussian());
    for (auto& o : blk.offd)
      o = Complex<float>(static_cast<float>(0.1 * rng.gaussian()),
                         static_cast<float>(0.1 * rng.gaussian()));
  }
  const auto in = detail::random_floats(
      static_cast<std::int64_t>(nsites) * 24 * lanes, 132);
  std::vector<float> out(in.size());
  KernelMeasurement m;
  const auto& k = simd::kernels();
  m.seconds = time_kernel(
      [&] {
        for (std::int32_t s = 0; s < nsites; ++s)
          k.clover_pair_lanes(&blocks[std::size_t(s) * 2],
                              &blocks[std::size_t(s) * 2 + 1],
                              in.data() + std::size_t(s) * 24 * lanes,
                              out.data() + std::size_t(s) * 24 * lanes,
                              lanes);
        checksum_accumulate(m.checksum, out.data(),
                            static_cast<std::int64_t>(out.size()), 79);
      },
      min_seconds);
  m.flops = kFlopsCloverPair * static_cast<double>(nsites) * lanes;
  return m;
}

/// Binary16 round trip (down- then up-convert); bandwidth metric.
inline KernelMeasurement measure_fp16_roundtrip(std::int64_t n,
                                                double min_seconds) {
  const auto src = detail::random_floats(n, 141);
  std::vector<Half> mid(static_cast<std::size_t>(n));
  std::vector<float> back(static_cast<std::size_t>(n));
  KernelMeasurement m;
  const auto& k = simd::kernels();
  m.seconds = time_kernel(
      [&] {
        k.float_to_half_n(src.data(), mid.data(), n);
        k.half_to_float_n(mid.data(), back.data(), n);
        checksum_accumulate(m.checksum, back.data(), n, 101);
      },
      min_seconds);
  m.bytes = static_cast<double>(n) * (4 + 2 + 2 + 4);
  return m;
}

/// The full lane-vectorized Schwarz block solve (gathers, halos, MR) on a
/// small fixture; flops come from the instrumented SchwarzStats counters,
/// which are backend-invariant by the dispatch contract.
inline KernelMeasurement measure_block_solve(int nrhs, double min_seconds) {
  Geometry geom({8, 8, 8, 8});
  Checkerboard cb(geom);
  auto gauge = convert<float>(random_gauge_field<double>(geom, 0.5, 151));
  WilsonCloverOperator<float> op(geom, cb, gauge, 0.1f, 1.0f);
  op.prepare_schur();
  DomainPartition part(geom, {4, 4, 4, 4});
  SchwarzParams p;
  p.schwarz_iterations = 1;
  p.block_mr_iterations = 5;
  SchwarzPreconditioner<float> m_pre(part, op, p);

  std::vector<FermionField<float>> ff(static_cast<std::size_t>(nrhs));
  std::vector<FermionField<float>> uu(static_cast<std::size_t>(nrhs));
  std::vector<const FermionField<float>*> fp;
  std::vector<FermionField<float>*> up;
  for (int i = 0; i < nrhs; ++i) {
    const auto ii = static_cast<std::size_t>(i);
    ff[ii] = FermionField<float>(geom.volume());
    uu[ii] = FermionField<float>(geom.volume());
    gaussian(ff[ii], static_cast<std::uint64_t>(152 + i));
    fp.push_back(&ff[ii]);
    up.push_back(&uu[ii]);
  }

  KernelMeasurement m;
  const std::int64_t flops0 = m_pre.stats().flops;
  m_pre.apply_batch(fp, up);  // warm-up; also fixes flops-per-call
  const double flops_per_call =
      static_cast<double>(m_pre.stats().flops - flops0);
  m.seconds = time_kernel(
      [&] {
        m_pre.apply_batch(fp, up);
        checksum_accumulate(
            m.checksum, reinterpret_cast<const float*>(uu[0].data()), 24, 1);
      },
      min_seconds);
  m.flops = flops_per_call;
  return m;
}

/// Measure this host with the CURRENTLY ACTIVE dispatch backend. `smoke`
/// shrinks problem sizes and timing windows to CI scale.
inline knc::HostCalibration measure_host(bool smoke) {
  const double w = smoke ? 0.02 : 0.25;
  const std::int64_t nmat = smoke ? 2048 : 16384;
  const std::int32_t nsites = smoke ? 256 : 1024;
  const int lanes = 8;  // typical padded RHS lane count

  knc::HostCalibration cal;
  cal.backend = simd::to_string(simd::active_backend());
  cal.su3_nn_gflops = measure_su3_mul_nn(nmat, w).gflops();
  cal.dslash_gflops = measure_dslash_lanes(nsites, lanes, w).gflops();
  cal.block_solve_gflops = measure_block_solve(4, smoke ? 0.05 : 0.5).gflops();
  cal.fp16_gbs = measure_fp16_roundtrip(smoke ? 1 << 15 : 1 << 20, w).gbs();
  return cal;
}

/// Measured-host column next to the KNC-model column — shared footer of
/// bench_fig5/6/7.
inline void print_host_vs_model(const knc::HostCalibration& cal,
                                const knc::KncSpec& spec) {
  Table t({"quantity", "host meas.", "KNC model"});
  t.row()
      .cell("backend")
      .cell(cal.backend)
      .cell("KNC 7110P");
  t.row()
      .cell("SU(3) ceiling [Gflop/s, 1 core]")
      .cell(cal.su3_nn_gflops, 1)
      .cell(2.0 * spec.simd_sp * spec.freq_ghz, 1);
  t.row()
      .cell("dslash hops [Gflop/s, 1 core]")
      .cell(cal.dslash_gflops, 1)
      .cell(spec.sp_gflops_bound_per_core(), 1);
  t.row()
      .cell("block solve [Gflop/s, 1 core]")
      .cell(cal.block_solve_gflops, 1)
      .cell(spec.sp_gflops_bound_per_core(), 1);
  t.row()
      .cell("efficiency factor")
      .cell(cal.compute_efficiency(), 2)
      .cell(spec.compute_efficiency(), 2);
  std::printf("Host calibration (measured, simd backend \"%s\") vs KNC "
              "machine model:\n%s\n",
              cal.backend, t.str().c_str());
}

}  // namespace lqcd::bench
