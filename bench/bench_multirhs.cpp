// Multi-RHS batched Schwarz solves (paper Sec. VI "future work").
//
// The Schwarz block solve is bandwidth-bound on the packed half-precision
// gauge+clover matrices: once they stream through a core, applying them
// to ONE right-hand side leaves the FPU idle most of the time. Batching
// nrhs right-hand sides through each domain visit charges the matrix
// bytes once and scales every spinor quantity by nrhs — multiplying
// arithmetic intensity and, on the KNC model, the sustained Gflop/s.
//
// Four sections:
//   1. Machine-model sweep at the paper's production block {8,4,4,4}:
//      predicted arithmetic intensity and Gflop/s/core vs nrhs.
//   2. Instrumented SchwarzPreconditioner<Half> on a real (small)
//      lattice: the matrix_block_loads counter proves each sweep loads
//      every domain's matrices once REGARDLESS of nrhs, while
//      block_solves scales linearly.
//   3. Lane-vectorized (SOA-over-RHS) vs per-RHS block-solve throughput
//      at nrhs in {1, 4, 8, 12}: same matrix loads, but each loaded
//      element is applied to all RHS lanes with unit-stride SIMD.
//   4. End-to-end DDSolver: solve_batch over the propagator's 12
//      spin-color sources vs 12 sequential solve() calls (deflation
//      recycling cuts the total outer iterations; identical tolerance).
//
// `--smoke` shrinks the tolerances and batch list for CI.
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_common.h"
#include "lqcd/base/timer.h"
#include "lqcd/core/dd_solver.h"
#include "lqcd/knc/work_model.h"

using namespace lqcd;

namespace {

void model_sweep(const std::vector<int>& batch_sizes) {
  const Coord block = {8, 4, 4, 4};
  const int idomain = 5;
  const knc::KernelModel model;
  const double l2_bytes = model.spec().l2_kb * 1024.0;

  std::printf("-- Model: block 8x4x4x4, Idomain %d, half-precision "
              "matrices, L1+L2 prefetch --\n", idomain);
  std::printf("  %5s %12s %14s %14s %12s\n", "nrhs", "flops/byte",
              "Gflop/s/core", "working set", "fits L2?");
  const auto base =
      knc::block_solve_work(block, idomain, /*half_matrices=*/true, 1);
  const double base_ai = knc::arithmetic_intensity(base.kernel);
  double last_gain = 1.0;
  for (const int nrhs : batch_sizes) {
    const auto w =
        knc::block_solve_work(block, idomain, /*half_matrices=*/true, nrhs);
    const auto kern =
        knc::apply_cache_capacity(w.kernel, w.working_set_bytes, l2_bytes);
    const double ai = knc::arithmetic_intensity(w.kernel);
    last_gain = ai / base_ai;
    std::printf("  %5d %12.1f %14.1f %11.0f kB %12s\n", nrhs, ai,
                model.gflops_per_core(kern, knc::PrefetchMode::kL1L2),
                w.working_set_bytes / 1024.0,
                w.working_set_bytes <= l2_bytes ? "yes" : "no");
  }
  std::printf("  arithmetic-intensity gain at nrhs=%d vs nrhs=1: %.2fx\n"
              "  (matrix bytes charged once per batched domain visit;\n"
              "   spinor traffic and flops scale with nrhs)\n\n",
              batch_sizes.back(), last_gain);
}

void measured_counters(const std::vector<int>& batch_sizes) {
  const Geometry geom({8, 8, 8, 8});
  const Checkerboard cb(geom);
  auto gd = random_gauge_field<double>(geom, 0.4, 7);
  gd.make_time_antiperiodic();
  const auto gauge = convert<float>(gd);
  WilsonCloverOperator<float> op(geom, cb, gauge, 0.1f, 1.0f);
  op.prepare_schur();
  const DomainPartition part(geom, {4, 4, 4, 4});

  SchwarzParams sp;
  sp.schwarz_iterations = 4;
  sp.block_mr_iterations = 5;
  SchwarzPreconditioner<Half> schwarz(part, op, sp);
  const double matrix_kb =
      static_cast<double>(schwarz.domain_matrix_bytes()) / 1024.0;

  std::printf("-- Measured: SchwarzPreconditioner<Half>, 8^4 lattice, "
              "4^4 domains (%.0f kB matrices/domain) --\n", matrix_kb);
  std::printf("  %5s %14s %14s %12s %16s\n", "nrhs", "matrix loads",
              "loads/sweep", "blk solves", "flops/matrix B");
  for (const int nrhs : batch_sizes) {
    std::vector<FermionField<float>> f(static_cast<std::size_t>(nrhs)),
        u(static_cast<std::size_t>(nrhs));
    std::vector<const FermionField<float>*> fp;
    std::vector<FermionField<float>*> up;
    for (int b = 0; b < nrhs; ++b) {
      f[static_cast<std::size_t>(b)] = FermionField<float>(geom.volume());
      u[static_cast<std::size_t>(b)] = FermionField<float>(geom.volume());
      gaussian(f[static_cast<std::size_t>(b)],
               static_cast<std::uint64_t>(100 + b));
      fp.push_back(&f[static_cast<std::size_t>(b)]);
      up.push_back(&u[static_cast<std::size_t>(b)]);
    }
    schwarz.reset_stats();
    schwarz.apply_batch(fp, up);
    const auto& st = schwarz.stats();
    const double loads_per_sweep =
        static_cast<double>(st.matrix_block_loads) /
        static_cast<double>(st.sweeps);
    const double flops_per_matrix_byte =
        static_cast<double>(st.flops) /
        (static_cast<double>(st.matrix_block_loads) *
         static_cast<double>(schwarz.domain_matrix_bytes()));
    std::printf("  %5d %14lld %14.0f %12lld %16.1f\n", nrhs,
                static_cast<long long>(st.matrix_block_loads),
                loads_per_sweep, static_cast<long long>(st.block_solves),
                flops_per_matrix_byte);
  }
  std::printf("  loads/sweep is nrhs-independent: one matrix stream per\n"
              "  domain visit serves the whole batch (the counter the\n"
              "  work model's matrix_bytes term mirrors).\n\n");
}

void lane_throughput(const std::vector<int>& batch_sizes, int repeats) {
  const Geometry geom({8, 8, 8, 8});
  const Checkerboard cb(geom);
  auto gd = random_gauge_field<double>(geom, 0.4, 7);
  gd.make_time_antiperiodic();
  const auto gauge = convert<float>(gd);
  WilsonCloverOperator<float> op(geom, cb, gauge, 0.1f, 1.0f);
  op.prepare_schur();
  const DomainPartition part(geom, {4, 4, 4, 4});

  SchwarzParams sp;
  sp.schwarz_iterations = 4;
  sp.block_mr_iterations = 5;
  sp.lane_vectorized = true;
  SchwarzPreconditioner<Half> lanes(part, op, sp);
  sp.lane_vectorized = false;
  SchwarzPreconditioner<Half> per_rhs(part, op, sp);

  std::printf("-- Measured: lane-vectorized (SOA-over-RHS) vs per-RHS "
              "block solves, SchwarzPreconditioner<Half> --\n");
  std::printf("  %5s %5s %13s %13s %9s %14s\n", "nrhs", "lanes",
              "per-RHS Gf/s", "lane Gf/s", "speedup", "matrix loads");

  for (const int nrhs : batch_sizes) {
    std::vector<FermionField<float>> f(static_cast<std::size_t>(nrhs)),
        u(static_cast<std::size_t>(nrhs));
    std::vector<const FermionField<float>*> fp;
    std::vector<FermionField<float>*> up;
    for (int b = 0; b < nrhs; ++b) {
      f[static_cast<std::size_t>(b)] = FermionField<float>(geom.volume());
      u[static_cast<std::size_t>(b)] = FermionField<float>(geom.volume());
      gaussian(f[static_cast<std::size_t>(b)],
               static_cast<std::uint64_t>(100 + b));
      fp.push_back(&f[static_cast<std::size_t>(b)]);
      up.push_back(&u[static_cast<std::size_t>(b)]);
    }

    const auto time_path = [&](SchwarzPreconditioner<Half>& m) {
      m.apply_batch(fp, up);  // warm-up (lane scratch allocation, caches)
      m.reset_stats();
      Timer t;
      for (int rep = 0; rep < repeats; ++rep) m.apply_batch(fp, up);
      const double sec = t.seconds();
      return static_cast<double>(m.stats().flops) / sec * 1e-9;
    };

    const double gfs_scalar = time_path(per_rhs);
    const double gfs_lanes = time_path(lanes);
    // The load counter is the amortization proof: identical for both
    // paths and independent of nrhs (one matrix stream per domain visit).
    const long long loads =
        static_cast<long long>(lanes.stats().matrix_block_loads) / repeats;
    std::printf("  %5d %5d %13.2f %13.2f %8.2fx %14lld\n", nrhs,
                padded_rhs_lanes(nrhs), gfs_scalar, gfs_lanes,
                gfs_lanes / gfs_scalar, loads);
  }
  std::printf("  both paths load each domain's packed matrices once per\n"
              "  visit; the lane path applies each loaded element to all\n"
              "  RHS lanes with unit-stride SIMD (paper Sec. VI).\n\n");
}

void end_to_end(int nrhs, double tolerance, int schwarz_iterations) {
  const Geometry geom({8, 8, 8, 8});
  auto gauge = random_gauge_field<double>(geom, 0.25, 11);
  gauge.make_time_antiperiodic();

  // Small basis + weak preconditioner: each solve spans several
  // FGMRES-DR cycles, so the first RHS harvests a deflated subspace and
  // the remaining RHS have something to recycle. A strong-preconditioner
  // single-cycle solve would finish before ever deflating.
  DDSolverConfig cfg;
  cfg.block = {4, 4, 4, 4};
  cfg.basis_size = 8;
  cfg.deflation_size = 4;
  cfg.schwarz_iterations = schwarz_iterations;
  cfg.block_mr_iterations = 2;
  cfg.tolerance = tolerance;
  DDSolver solver(geom, gauge, -0.25, 1.0, cfg);

  const std::int32_t origin = geom.index({0, 0, 0, 0});
  std::vector<FermionField<double>> b(static_cast<std::size_t>(nrhs)),
      x(static_cast<std::size_t>(nrhs));
  for (int i = 0; i < nrhs; ++i) {
    const auto ii = static_cast<std::size_t>(i);
    b[ii] = FermionField<double>(geom.volume());
    x[ii] = FermionField<double>(geom.volume());
    b[ii][origin].s[i / kNumColors].c[i % kNumColors] =
        Complex<double>(1, 0);
  }

  std::printf("-- End-to-end: DDSolver, 8^4 lattice, %d point sources, "
              "tol %.0e --\n", nrhs, tolerance);

  Timer t_seq;
  std::int64_t seq_iters = 0;
  bool seq_ok = true;
  for (int i = 0; i < nrhs; ++i) {
    const auto ii = static_cast<std::size_t>(i);
    x[ii].zero();
    const auto st = solver.solve(b[ii], x[ii]);
    seq_iters += st.iterations;
    seq_ok = seq_ok && st.converged;
  }
  const double sec_seq = t_seq.seconds();

  for (auto& xi : x) xi.zero();
  Timer t_bat;
  const auto stats = solver.solve_batch(b, x);
  const double sec_bat = t_bat.seconds();
  std::int64_t bat_iters = 0;
  int recycled = 0;
  bool bat_ok = true;
  for (const auto& st : stats) {
    bat_iters += st.iterations;
    recycled += st.recycle_projections;
    bat_ok = bat_ok && st.converged;
  }

  std::printf("  sequential: %5lld outer iterations, %6.2f s%s\n",
              static_cast<long long>(seq_iters), sec_seq,
              seq_ok ? "" : "  [NOT CONVERGED]");
  std::printf("  batched:    %5lld outer iterations, %6.2f s   "
              "(%d/%d RHS recycled the deflation subspace)%s\n",
              static_cast<long long>(bat_iters), sec_bat, recycled,
              nrhs - 1, bat_ok ? "" : "  [NOT CONVERGED]");
  std::printf("  iteration ratio batched/sequential: %.2f\n\n",
              static_cast<double>(bat_iters) /
                  static_cast<double>(seq_iters));
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  bench::print_header(
      "Multi-RHS batched Schwarz solves",
      "paper Sec. VI (multi right-hand-side batching, future work)",
      smoke ? "(--smoke: reduced tolerances and batch list)" : "");

  const std::vector<int> batches =
      smoke ? std::vector<int>{1, 12} : std::vector<int>{1, 2, 4, 8, 12};
  model_sweep(batches);
  measured_counters(batches);
  // The acceptance batch list for the lane-vectorized comparison is fixed
  // ({1, 4, 8, 12}); smoke mode only trims the repeat count.
  lane_throughput({1, 4, 8, 12}, /*repeats=*/smoke ? 1 : 3);
  if (smoke)
    end_to_end(/*nrhs=*/4, /*tolerance=*/1e-9, /*schwarz_iterations=*/1);
  else
    end_to_end(/*nrhs=*/12, /*tolerance=*/1e-9, /*schwarz_iterations=*/1);
  return 0;
}
