// google-benchmark microbenchmarks of the numerical kernels on the host
// CPU. These measure OUR portable implementation (not the KNC — see the
// machine model for the paper's hardware numbers); they are the
// engineering substrate for optimizing the library itself and for
// verifying that per-site flop counts scale as expected.
#include "lqcd/core/dd_solver.h"
#include "lqcd/linalg/fp16.h"
#include "lqcd/schwarz/schwarz.h"
#include "lqcd/knc/work_model.h"
#include "lqcd/tile/tiled_dslash.h"

#if defined(LQCD_HAVE_GBENCH)
#include <benchmark/benchmark.h>

namespace lqcd {
namespace {

struct Setup {
  Geometry geom{{8, 8, 8, 8}};
  Checkerboard cb{geom};
  GaugeField<float> gauge;
  WilsonCloverOperator<float> op;
  DomainPartition part{geom, {4, 4, 4, 4}};

  Setup()
      : gauge(convert<float>(random_gauge_field<double>(geom, 0.6, 1))),
        op(geom, cb, gauge, 0.1f, 1.0f) {
    op.prepare_schur();
  }
};

Setup& setup() {
  static Setup s;
  return s;
}

void BM_Dslash(benchmark::State& state) {
  auto& s = setup();
  FermionField<float> in(s.geom.volume()), out(s.geom.volume());
  gaussian(in, 2);
  for (auto _ : state) {
    s.op.apply_dslash(in, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["Gflop/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * s.geom.volume() * 1344,
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}
BENCHMARK(BM_Dslash);

void BM_WilsonClover(benchmark::State& state) {
  auto& s = setup();
  FermionField<float> in(s.geom.volume()), out(s.geom.volume());
  gaussian(in, 3);
  for (auto _ : state) {
    s.op.apply(in, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["Gflop/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * s.geom.volume() * 1848,
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}
BENCHMARK(BM_WilsonClover);

void BM_SchurOperator(benchmark::State& state) {
  auto& s = setup();
  FermionField<float> in(s.cb.half_volume()), out(s.cb.half_volume());
  gaussian(in, 4);
  for (auto _ : state) {
    s.op.apply_schur(in, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_SchurOperator);

void BM_SU3MatVec(benchmark::State& state) {
  Rng rng(5);
  const auto u = random_su3<float>(rng, 1.0);
  ColorVector<float> x;
  for (int c = 0; c < 3; ++c)
    x.c[c] = Complex<float>(static_cast<float>(rng.gaussian()),
                            static_cast<float>(rng.gaussian()));
  for (auto _ : state) {
    x = mul(u, x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_SU3MatVec);

void BM_CloverBlockApply(benchmark::State& state) {
  Rng rng(6);
  PackedHermitian6<float> b;
  for (auto& d : b.diag) d = static_cast<float>(rng.gaussian() + 5);
  for (auto& z : b.offd)
    z = Complex<float>(static_cast<float>(rng.gaussian()),
                       static_cast<float>(rng.gaussian()));
  Complex<float> x[6], y[6];
  for (auto& v : x)
    v = Complex<float>(static_cast<float>(rng.gaussian()),
                       static_cast<float>(rng.gaussian()));
  for (auto _ : state) {
    b.apply(x, y);
    benchmark::DoNotOptimize(y);
  }
}
BENCHMARK(BM_CloverBlockApply);

void BM_BlasDot(benchmark::State& state) {
  FermionField<float> x(4096), y(4096);
  gaussian(x, 7);
  gaussian(y, 8);
  for (auto _ : state) {
    auto d = dot(x, y);
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(state.iterations() * 2 * x.bytes());
}
BENCHMARK(BM_BlasDot);

void BM_BlasAxpy(benchmark::State& state) {
  FermionField<float> x(4096), y(4096);
  gaussian(x, 9);
  gaussian(y, 10);
  for (auto _ : state) {
    axpy(1.0001f, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(state.iterations() * 3 * x.bytes());
}
BENCHMARK(BM_BlasAxpy);

void BM_Fp16RoundTrip(benchmark::State& state) {
  Rng rng(11);
  std::vector<float> src(8192), back(8192);
  std::vector<Half> mid(8192);
  for (auto& v : src) v = static_cast<float>(rng.gaussian());
  for (auto _ : state) {
    float_to_half(src.data(), mid.data(), 8192);
    half_to_float(mid.data(), back.data(), 8192);
    benchmark::DoNotOptimize(back.data());
  }
  state.SetBytesProcessed(state.iterations() * 8192 * 4);
}
BENCHMARK(BM_Fp16RoundTrip);

void BM_SchwarzSweep(benchmark::State& state) {
  auto& s = setup();
  SchwarzParams p;
  p.schwarz_iterations = 1;
  p.block_mr_iterations = 5;
  static SchwarzPreconditioner<Half> m(s.part, s.op, p);
  FermionField<float> rhs(s.geom.volume()), u(s.geom.volume());
  gaussian(rhs, 12);
  for (auto _ : state) {
    m.apply(rhs, u);
    benchmark::DoNotOptimize(u.data());
  }
  state.counters["Gflop/s"] = benchmark::Counter(
      static_cast<double>(m.stats().flops), benchmark::Counter::kIsRate,
      benchmark::Counter::kIs1000);
}
BENCHMARK(BM_SchwarzSweep);

void BM_TiledBlockDslash(benchmark::State& state) {
  // The site-fused SOA kernel on one 8x4^3 block (the paper's Fig. 2
  // layout): compare against BM_Dslash's site-local layout to see the
  // host compiler's vectorization benefit.
  const Coord block{8, 4, 4, 4};
  const std::int64_t vol = 8LL * 4 * 4 * 4;
  static TiledGauge tg = [] {
    TiledGauge g(Coord{8, 4, 4, 4});
    Rng rng(3);
    static std::vector<SU3<float>> links(
        static_cast<std::size_t>(8 * 4 * 4 * 4) * kNumDims);
    for (auto& u : links) u = random_su3<float>(rng, 0.8);
    g.pack([&](std::int32_t lex, int mu) -> const SU3<float>& {
      return links[static_cast<std::size_t>(lex) * kNumDims +
                   static_cast<std::size_t>(mu)];
    });
    return g;
  }();
  TiledField in(block), out(block);
  FermionField<float> f(vol);
  gaussian(f, 4);
  in.pack(f);
  for (auto _ : state) {
    tiled_block_dslash(block, tg, in, out);
    benchmark::DoNotOptimize(out.component(0, 0, 0));
  }
  // Interior-hop flop count of the Dirichlet block (168 per hop).
  const double hops = 2.0 * knc::block_hops_per_parity(block);
  state.counters["Gflop/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * hops * 168.0,
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}
BENCHMARK(BM_TiledBlockDslash);

}  // namespace
}  // namespace lqcd

BENCHMARK_MAIN();

#else  // !LQCD_HAVE_GBENCH

#include <cstdio>
int main() {
  std::printf("google-benchmark not found at configure time; kernel "
              "microbenchmarks disabled.\n");
  return 0;
}

#endif
