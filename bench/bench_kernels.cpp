// Measured-GFLOP/s kernel benchmark, su3_bench methodology: every rate is
// derived from a first-principles flop count and a timed loop whose
// results feed a printed checksum (so the work cannot be dead-code
// eliminated), and every compiled-and-supported SIMD dispatch backend is
// measured side by side. `--json` additionally emits BENCH_kernels.json
// with a stable schema for the CI regression gate
// (tools/bench_compare.py); `--smoke` shrinks sizes to CI scale.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "host_measure.h"
#include "lqcd/simd/dispatch.h"

using namespace lqcd;

namespace {

struct KernelResult {
  const char* name;
  const char* metric;  // "gflops" | "gbs"
  double value;
  double seconds;
  double checksum;
};

struct BackendResults {
  simd::Backend backend;
  std::vector<KernelResult> kernels;
};

BackendResults run_backend(simd::Backend b, bool smoke) {
  simd::ScopedBackend scope(b);
  const double w = smoke ? 0.02 : 0.25;
  const std::int64_t nmat = smoke ? 2048 : 16384;
  const std::int32_t nsites = smoke ? 256 : 1024;
  const int lanes = 8;

  BackendResults out;
  out.backend = b;
  const auto add = [&out](const char* name, const char* metric,
                          const bench::KernelMeasurement& m, double value) {
    out.kernels.push_back({name, metric, value, m.seconds, m.checksum});
  };

  auto m = bench::measure_su3_mul_nn(nmat, w);
  add("su3_mul_nn", "gflops", m, m.gflops());
  m = bench::measure_su3_mul_lanes(nsites, lanes, w);
  add("su3_mul_lanes", "gflops", m, m.gflops());
  m = bench::measure_dslash_lanes(nsites, lanes, w);
  add("dslash_lanes", "gflops", m, m.gflops());
  m = bench::measure_clover_lanes(nsites, lanes, w);
  add("clover_lanes", "gflops", m, m.gflops());
  m = bench::measure_block_solve(4, smoke ? 0.05 : 0.5);
  add("block_solve", "gflops", m, m.gflops());
  m = bench::measure_fp16_roundtrip(smoke ? 1 << 15 : 1 << 20, w);
  add("fp16_roundtrip", "gbs", m, m.gbs());
  return out;
}

void write_json(const char* path, const std::vector<BackendResults>& all,
                const knc::HostCalibration& cal, bool smoke) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"schema\": \"lqcd-bench-kernels-v1\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"backends\": [\n");
  for (std::size_t i = 0; i < all.size(); ++i) {
    std::fprintf(f, "    {\n      \"backend\": \"%s\",\n      \"kernels\": [\n",
                 simd::to_string(all[i].backend));
    const auto& ks = all[i].kernels;
    for (std::size_t j = 0; j < ks.size(); ++j)
      std::fprintf(f,
                   "        {\"name\": \"%s\", \"metric\": \"%s\", "
                   "\"value\": %.6g, \"seconds\": %.6g, \"checksum\": "
                   "%.17g}%s\n",
                   ks[j].name, ks[j].metric, ks[j].value, ks[j].seconds,
                   ks[j].checksum, j + 1 < ks.size() ? "," : "");
    std::fprintf(f, "      ]\n    }%s\n", i + 1 < all.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"calibration\": {\"backend\": \"%s\", \"su3_nn_gflops\": "
               "%.6g, \"dslash_gflops\": %.6g, \"block_solve_gflops\": %.6g, "
               "\"fp16_gbs\": %.6g, \"efficiency\": %.6g}\n}\n",
               cal.backend, cal.su3_nn_gflops, cal.dslash_gflops,
               cal.block_solve_gflops, cal.fp16_gbs,
               cal.compute_efficiency());
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false, json = false;
  std::string json_path = "BENCH_kernels.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--json [path]]\n"
                   "  LQCD_SIMD_BACKEND=scalar|avx2|avx512 restricts the "
                   "measured backends\n",
                   argv[0]);
      return 1;
    }
  }

  bench::print_header(
      "Kernel rates per SIMD backend (measured on THIS host)",
      "engineering substrate (su3_bench methodology; not a paper figure)",
      "first-principles flop counts; checksums defeat dead-code "
      "elimination");

  // An explicit LQCD_SIMD_BACKEND pins the measurement to that backend;
  // otherwise every backend this machine can run is measured.
  std::vector<simd::Backend> backends;
  if (const auto forced = simd::backend_from_env())
    backends.push_back(*forced);
  else
    backends = simd::available_backends();

  std::vector<BackendResults> all;
  for (const simd::Backend b : backends) all.push_back(run_backend(b, smoke));

  Table t({"kernel", "metric", "scalar", "avx2", "avx512"});
  const char* names[] = {"su3_mul_nn",   "su3_mul_lanes", "dslash_lanes",
                         "clover_lanes", "block_solve",   "fp16_roundtrip"};
  for (const char* name : names) {
    const char* metric = std::strcmp(name, "fp16_roundtrip") == 0
                             ? "GB/s"
                             : "Gflop/s";
    t.row().cell(name).cell(metric);
    for (const simd::Backend b :
         {simd::Backend::kScalar, simd::Backend::kAvx2,
          simd::Backend::kAvx512}) {
      bool found = false;
      for (const auto& br : all)
        if (br.backend == b)
          for (const auto& k : br.kernels)
            if (std::strcmp(k.name, name) == 0) {
              t.cell(k.value, 2);
              found = true;
            }
      if (!found) t.cell("-");
    }
  }
  std::printf("%s\n", t.str().c_str());

  double checksum = 0;
  for (const auto& br : all)
    for (const auto& k : br.kernels) checksum += k.checksum;
  std::printf("aggregate checksum (DCE guard): %.17g\n\n", checksum);

  // Host efficiency calibration with the best available backend, printed
  // against the KNC model's Sec. IV-B1 factors.
  const auto cal = bench::measure_host(smoke);
  bench::print_host_vs_model(cal, knc::KncSpec{});

  if (json) write_json(json_path.c_str(), all, cal, smoke);
  return 0;
}
