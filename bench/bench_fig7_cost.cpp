// Regenerates paper Fig. 7: cost of a complete solve in KNC-minutes
// (nodes x wall-time / 60) — the relevant metric for the "data analysis"
// use case, where solves parallelize trivially and one wants minimum
// cost, i.e. few nodes.
//
// Paper headline: on few nodes the DD solve costs about HALF as much as
// the non-DD solve.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "host_measure.h"
#include "paper_specs.h"

using namespace lqcd;
using namespace lqcd::cluster;

namespace {

void print_lattice(const ClusterSim& sim, const DDSolveSpec& dd,
                   const NonDDSolveSpec& nd,
                   const std::vector<int>& dd_nodes,
                   const std::vector<int>& nd_nodes, const char* title,
                   double host_slowdown) {
  std::printf("---- %s ----\n", title);
  // "DD host-est": node-minutes if every KNC were a 60-core node of THIS
  // host at its measured block-solve rate (the measured-host column).
  Table t({"KNCs", "DD cost[KNC-min]", "DD host-est[node-min]",
           "non-DD cost[KNC-min]"});
  double dd_min = 1e300, nd_min = 1e300;
  const std::size_t rows = std::max(dd_nodes.size(), nd_nodes.size());
  for (std::size_t i = 0; i < rows; ++i) {
    t.row();
    if (i < dd_nodes.size()) {
      const int n = dd_nodes[i];
      const auto r =
          sim.simulate_dd(dd, NodePartition::choose(dd.lattice, n, dd.block));
      const double cost = n * r.total_seconds / 60.0;
      dd_min = std::min(dd_min, cost);
      t.cell(n).cell(cost, 2).cell(cost * host_slowdown, 2);
    } else {
      t.cell("").cell("").cell("");
    }
    if (i < nd_nodes.size()) {
      const int n = nd_nodes[i];
      const auto r = sim.simulate_nondd(
          nd, NodePartition::choose(nd.lattice, n, {2, 2, 2, 2}));
      const double cost = n * r.total_seconds / 60.0;
      nd_min = std::min(nd_min, cost);
      t.cell(cost, 2);
    } else {
      t.cell("");
    }
  }
  std::printf("%s", t.str().c_str());
  std::printf(
      "  minimum cost: DD %.1f KNC-min vs non-DD %.1f KNC-min -> DD costs "
      "%.2fx (paper: ~0.5x)\n\n",
      dd_min, nd_min, dd_min / nd_min);
}

}  // namespace

int main() {
  bench::print_header("Fig. 7 — KNC-minutes consumed for a complete solve",
                      "Heybrock et al., SC14, Fig. 7",
                      "cost = #KNCs x wall-time / 60; minimize by running "
                      "on as few nodes as memory allows");

  ClusterSim sim;
  const auto cal = bench::measure_host(/*smoke=*/false);
  const knc::KncSpec spec;
  const double host_slowdown =
      cal.block_solve_gflops > 0
          ? spec.sp_gflops_bound_per_core() / cal.block_solve_gflops
          : 0.0;
  bench::print_host_vs_model(cal, spec);

  print_lattice(sim, bench::dd_32cubed(), bench::nondd_32cubed(),
                {8, 16, 32, 64}, {8, 16, 32, 64}, "32^3x64",
                host_slowdown);
  print_lattice(sim, bench::dd_48cubed(), bench::nondd_48cubed(),
                {24, 32, 64, 128}, {12, 16, 24, 32, 36, 72, 128},
                "48^3x64", host_slowdown);
  print_lattice(sim, bench::dd_64cubed(), bench::nondd_64cubed(),
                {64, 128, 256, 512, 1024}, {64, 128, 256}, "64^3x128",
                host_slowdown);
  return 0;
}
