// Ablation studies of the DD design choices the paper calls out:
//
//  (a) Idomain: "the optimal number of MR iterations is typically small —
//      for our domain size usually 4 or 5" (Sec. IV-B1). We sweep
//      (ISchwarz, Idomain) on a real system and report outer iterations
//      and total preconditioner work; the minimum-work settings land at
//      small Idomain.
//  (b) Domain size: smaller domains push the strong-scaling limit further
//      at the cost of lower single-core efficiency (Sec. VI future work).
//      Modeled with the KNC kernel model + load model.
//  (c) fp16 spinors in the preconditioner (Sec. VI future work): solver
//      work with fully-half storage vs the paper's matrices-only mix.
#include <cstdio>

#include "bench_common.h"
#include "lqcd/core/dd_solver.h"
#include "lqcd/knc/work_model.h"

using namespace lqcd;

int main() {
  bench::print_header("Ablations — DD design choices",
                      "Heybrock et al., SC14, Secs. IV-B1, VI",
                      "(a) block-solver depth, (b) domain size, (c) fp16 "
                      "spinors");

  // ---- (a) ISchwarz x Idomain sweep (real numerics, 8^4) ----------------
  {
    const Geometry geom({8, 8, 8, 8});
    auto gauge = random_gauge_field<double>(geom, 0.25, 7);
    gauge.make_time_antiperiodic();
    FermionField<double> b(geom.volume());
    gaussian(b, 8);

    std::printf("(a) outer iterations / total preconditioner Gflop, mass "
                "-0.55:\n");
    Table t({"ISchwarz", "Idomain", "outer iters", "precond Gflop",
             "converged"});
    double best_work = 1e300;
    int best_is = 0, best_id = 0;
    for (int ischwarz : {2, 4, 8}) {
      for (int idomain : {2, 3, 5, 8, 12}) {
        DDSolverConfig cfg;
        cfg.block = {4, 4, 4, 4};
        cfg.schwarz_iterations = ischwarz;
        cfg.block_mr_iterations = idomain;
        cfg.tolerance = 1e-10;
        cfg.max_iterations = 1500;
        DDSolver solver(geom, gauge, -0.55, 1.0, cfg);
        FermionField<double> x(geom.volume());
        const auto stats = solver.solve(b, x);
        const double gflop = solver.schwarz_stats().flops / 1e9;
        t.row()
            .cell(ischwarz)
            .cell(idomain)
            .cell(stats.iterations)
            .cell(gflop, 2)
            .cell(stats.converged ? "yes" : "no");
        if (stats.converged && gflop < best_work) {
          best_work = gflop;
          best_is = ischwarz;
          best_id = idomain;
        }
      }
    }
    std::printf("%s", t.str().c_str());
    std::printf(
        "  minimum total preconditioner work at ISchwarz=%d, Idomain=%d "
        "(paper: Idomain usually 4 or 5)\n\n",
        best_is, best_id);
  }

  // ---- (b) domain-size tradeoff (model) ----------------------------------
  {
    std::printf("(b) domain size: single-core rate vs strong-scaling "
                "limit (48^3x64 lattice):\n");
    const knc::KernelModel model;
    Table t({"block", "Vd", "matrices[kB]", "fits 512kB L2",
             "Gflop/s/core", "KNCs at >=50% load"});
    const std::int64_t volume = 48LL * 48 * 48 * 64;
    for (const Coord block : {Coord{4, 4, 4, 4}, Coord{8, 4, 4, 4},
                              Coord{8, 8, 4, 4}, Coord{8, 8, 8, 4}}) {
      const auto w = knc::block_solve_work(block, 5, /*half=*/true);
      const auto kernel = knc::apply_cache_capacity(
          w.kernel, w.working_set_bytes, model.spec().l2_kb * 1024.0);
      const double g =
          model.gflops_per_core(kernel, knc::PrefetchMode::kL1L2);
      // Strong-scaling limit: the largest node count keeping >= 30
      // domains per color (>= 50% load on 60 cores).
      const std::int64_t vd = knc::block_volume(block);
      const std::int64_t max_nodes = volume / (2 * vd * 30);
      const double ws_kb = w.working_set_bytes / 1024.0;
      char label[32];
      std::snprintf(label, sizeof label, "%dx%dx%dx%d", block[0], block[1],
                    block[2], block[3]);
      t.row()
          .cell(std::string(label))
          .cell(vd)
          .cell(w.matrix_bytes / 1024.0, 0)
          .cell(ws_kb < 512.0 ? "yes" : "NO")
          .cell(g, 2)
          .cell(max_nodes);
    }
    std::printf("%s", t.str().c_str());
    std::printf(
        "  4^4 domains double the scaling limit vs 8x4^3 at ~%d%% lower\n"
        "  per-core rate — quantifying the paper's Sec. VI tradeoff.\n\n",
        static_cast<int>(
            100 -
            100 * model.gflops_per_core(
                      knc::block_solve_work({4, 4, 4, 4}, 5, true).kernel,
                      knc::PrefetchMode::kL1L2) /
                model.gflops_per_core(
                    knc::block_solve_work({8, 4, 4, 4}, 5, true).kernel,
                    knc::PrefetchMode::kL1L2)));
  }

  // ---- (c) fp16 spinors (real numerics) ----------------------------------
  {
    const Geometry geom({8, 8, 8, 8});
    auto gauge = random_gauge_field<double>(geom, 0.25, 9);
    gauge.make_time_antiperiodic();
    FermionField<double> b(geom.volume());
    gaussian(b, 10);

    std::printf("(c) fp16 spinors in the preconditioner (mass -0.55):\n");
    Table t({"storage", "outer iters", "converged", "true rel. residual"});
    for (int variant = 0; variant < 3; ++variant) {
      DDSolverConfig cfg;
      cfg.block = {4, 4, 4, 4};
      cfg.schwarz_iterations = 4;
      cfg.tolerance = 1e-10;
      cfg.half_precision_matrices = variant >= 1;
      cfg.half_precision_spinors = variant == 2;
      DDSolver solver(geom, gauge, -0.55, 1.0, cfg);
      FermionField<double> x(geom.volume()), r(geom.volume());
      const auto stats = solver.solve(b, x);
      solver.op().apply(x, r);
      sub(b, r, r);
      const char* label[] = {"all single", "half matrices (paper)",
                             "half matrices+spinors (Sec. VI)"};
      char res[32];
      std::snprintf(res, sizeof res, "%.2e", norm(r) / norm(b));
      t.row()
          .cell(label[variant])
          .cell(stats.iterations)
          .cell(stats.converged ? "yes" : "no")
          .cell(std::string(res));
    }
    std::printf("%s", t.str().c_str());
    std::printf(
        "  fp16 spinor storage remains stable here — answering the "
        "paper's\n  \"provided that there are no stability issues\" in "
        "the affirmative\n  at this scale (working set and network "
        "volume would halve again).\n");
  }
  return 0;
}
