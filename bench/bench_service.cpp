// SolverService under open-loop load (the serving-layer tentpole).
//
// An open-loop Poisson arrival process (exponential inter-arrival times,
// arrivals do NOT wait for completions — the honest way to measure tail
// latency) drives the service at two operating points:
//
//   light      arrival rate well below the one-at-a-time service rate:
//              batches stay small, latency ~ a single solve.
//   saturating arrival rate far above it: the queue backs up, the
//              scheduler packs full lane batches, and the persistent
//              deflation subspace carries across batches — throughput,
//              not latency, is the story.
//
// Reported per scenario: p50/p95/p99 request latency (submit -> result),
// throughput, and mean dispatched lanes. The reference line issues the
// SAME request stream as one-at-a-time DDSolver::solve() calls on a
// pre-built solver; the acceptance target is >= 1.5x throughput at
// saturating load (lane batching + setup reuse + cross-batch recycling).
//
// `--smoke` shrinks the lattice and request count for CI.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "lqcd/base/rng.h"
#include "lqcd/base/timer.h"
#include "lqcd/service/solver_service.h"

using namespace lqcd;

namespace {

struct Workload {
  Geometry geom;
  GaugeField<double> gauge;
  double mass = 0.1;
  double csw = 1.0;
  double tolerance = 1e-8;

  Workload(const Coord& dims, std::uint64_t seed)
      : geom(dims), gauge([&] {
          auto g = random_gauge_field<double>(geom, 0.7, seed);
          g.make_time_antiperiodic();
          return g;
        }()) {}

  FermionField<double> source(std::uint64_t seed) const {
    FermionField<double> b(geom.volume());
    gaussian(b, seed);
    return b;
  }

  SolveRequest request(std::uint64_t seed) const {
    SolveRequest req;
    req.geom = &geom;
    req.gauge = &gauge;
    req.mass = mass;
    req.csw = csw;
    req.tolerance = tolerance;
    req.source = source(seed);
    return req;
  }
};

double percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

struct LoadReport {
  double throughput = 0.0;  ///< completed requests / wall second
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
  double mean_lanes = 0.0;
  std::uint64_t batches = 0;
};

/// Drive `n` requests through the service with exponential inter-arrival
/// times at `rate` requests/second (rate <= 0: all submitted up front —
/// the saturating limit).
LoadReport run_load(const Workload& work, const SolverServiceConfig& scfg,
                    int n, double rate, std::uint64_t seed) {
  // Pre-generate the sources so the arrival process measures the
  // service, not gaussian field generation.
  std::vector<SolveRequest> requests;
  requests.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    requests.push_back(work.request(seed + static_cast<std::uint64_t>(i)));

  SolverService service(scfg);
  Rng rng(seed);
  std::vector<std::future<SolveResult>> futs;
  futs.reserve(static_cast<std::size_t>(n));
  Timer wall;
  double next_arrival = 0.0;
  for (int i = 0; i < n; ++i) {
    if (rate > 0.0) {
      next_arrival += -std::log(1.0 - rng.uniform()) / rate;
      while (wall.seconds() < next_arrival)
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    futs.push_back(
        service.submit(std::move(requests[static_cast<std::size_t>(i)])));
  }

  LoadReport rep;
  std::vector<double> latencies;
  latencies.reserve(futs.size());
  double lane_sum = 0.0;
  for (auto& f : futs) {
    const SolveResult res = f.get();
    LQCD_CHECK_MSG(res.stats.converged, "bench solve failed to converge");
    latencies.push_back(res.total_seconds);
    lane_sum += static_cast<double>(res.batch_lanes);
  }
  const double elapsed = wall.seconds();
  std::sort(latencies.begin(), latencies.end());
  rep.throughput = static_cast<double>(n) / elapsed;
  rep.p50 = percentile(latencies, 0.50);
  rep.p95 = percentile(latencies, 0.95);
  rep.p99 = percentile(latencies, 0.99);
  rep.mean_lanes = lane_sum / static_cast<double>(n);
  rep.batches = service.stats().batches;
  return rep;
}

/// Reference: the same request stream as one-at-a-time solve() calls on
/// a single pre-built solver (setup cost excluded — this isolates the
/// lane-batching + recycling win, not the re-pack win).
double one_at_a_time_throughput(const Workload& work,
                                const DDSolverConfig& cfg, int n,
                                std::uint64_t seed) {
  DDSolver solver(work.geom, work.gauge, work.mass, work.csw, cfg);
  Timer wall;
  for (int i = 0; i < n; ++i) {
    const FermionField<double> b =
        work.source(seed + static_cast<std::uint64_t>(i));
    FermionField<double> x(work.geom.volume());
    const auto st = solver.solve(b, x);
    LQCD_CHECK_MSG(st.converged, "reference solve failed to converge");
  }
  return static_cast<double>(n) / wall.seconds();
}

void print_row(const char* scenario, const LoadReport& r, double baseline) {
  std::printf("  %-11s %9.2f %8.2fx %9.1f %9.1f %9.1f %7.1f %7llu\n",
              scenario, r.throughput, r.throughput / baseline, 1e3 * r.p50,
              1e3 * r.p95, 1e3 * r.p99, r.mean_lanes,
              static_cast<unsigned long long>(r.batches));
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  bench::print_header(
      "SolverService: open-loop arrival sweep (tail latency + throughput)",
      "serving-layer extension of paper Sec. VI (multi-RHS batching)",
      smoke ? "(--smoke: reduced lattice and request count)" : "");

  const Coord dims = smoke ? Coord{8, 4, 4, 4} : Coord{8, 8, 8, 8};
  const int n = smoke ? 12 : 32;
  Workload work(dims, 2024);

  // Production-leaning Schwarz weights (paper Table I uses ISchwarz 16,
  // Idomain 5): the preconditioner must dominate the solve for lane
  // batching to pay, exactly as in the target workload.
  DDSolverConfig cfg;
  cfg.block = smoke ? Coord{4, 2, 2, 2} : Coord{4, 4, 4, 4};
  cfg.basis_size = 8;
  cfg.deflation_size = 3;
  cfg.schwarz_iterations = smoke ? 4 : 6;
  cfg.block_mr_iterations = 4;
  cfg.tolerance = work.tolerance;

  SolverServiceConfig scfg;
  scfg.solver = cfg;
  scfg.batch.max_lanes = 8;
  scfg.batch.window_seconds = 0.05;
  scfg.worker_threads = 1;

  std::printf("-- lattice %dx%dx%dx%d, %d requests, max_lanes %d, "
              "window %.0f ms --\n",
              dims[0], dims[1], dims[2], dims[3], n, scfg.batch.max_lanes,
              1e3 * scfg.batch.window_seconds);

  const double solo = one_at_a_time_throughput(work, cfg, n, 9000);
  std::printf("  one-at-a-time DDSolver::solve(): %.2f req/s\n\n", solo);

  std::printf("  %-11s %9s %9s %9s %9s %9s %7s %7s\n", "load", "req/s",
              "speedup", "p50 ms", "p95 ms", "p99 ms", "lanes", "batches");

  // Light: arrivals at half the one-at-a-time service rate. The service
  // mostly sees singleton batches; latency should track a single solve.
  const LoadReport light = run_load(work, scfg, n, 0.5 * solo, 9000);
  print_row("light", light, solo);

  // Saturating: everything arrives up front. The scheduler packs full
  // batches; throughput is bounded by batched solve rate.
  const LoadReport sat = run_load(work, scfg, n, /*rate=*/0.0, 9000);
  print_row("saturating", sat, solo);

  std::printf("\n  saturating speedup vs one-at-a-time: %.2fx "
              "(target >= 1.5x)\n",
              sat.throughput / solo);
  if (smoke) {
    // The smoke leg exists to keep the bench building and running; the
    // throughput target is a full-scale property (millisecond smoke
    // solves are dominated by fixed per-dispatch overhead).
    std::printf("  smoke mode: target evaluated at full scale only\n");
    return 0;
  }
  const bool ok = sat.throughput >= 1.5 * solo;
  std::printf("  %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
