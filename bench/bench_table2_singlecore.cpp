// Regenerates paper Table II: single-core Gflop/s of the MR iteration and
// of the full DD method, for single/half-precision matrix storage and the
// three software-prefetch configurations.
//
// The flop and byte counts are computed exactly from the 8x4^3 domain
// geometry (knc/work_model.h, asserted against the instrumented
// implementation by the test suite); the cycle costs come from the KNC
// machine model of knc/kernel_model.h.
#include <cstdio>

#include "bench_common.h"
#include "lqcd/knc/work_model.h"

using namespace lqcd;

int main() {
  bench::print_header(
      "Table II — single-core performance in Gflop/s",
      "Heybrock et al., SC14, Table II (8x4^3 domain, Idomain = 5)",
      "format: model (paper, deviation)");

  const knc::KernelModel model;
  const Coord block{8, 4, 4, 4};

  struct Row {
    const char* label;
    knc::PrefetchMode mode;
    // paper values: MR single, MR half, DD single, DD half
    double paper[4];
  };
  const Row rows[] = {
      {"no software prefetching", knc::PrefetchMode::kNone,
       {5.4, 7.9, 4.1, 5.9}},
      {"L1 prefetches", knc::PrefetchMode::kL1, {9.2, 11.8, 5.8, 7.7}},
      {"L1+L2 prefetches", knc::PrefetchMode::kL1L2, {9.1, 11.8, 6.3, 8.4}},
  };

  Table t({"prefetching", "MR single", "MR half", "DD single", "DD half"});
  for (const auto& row : rows) {
    t.row().cell(row.label);
    int col = 0;
    for (const char* kernel : {"mr", "dd"}) {
      for (bool half : {false, true}) {
        double g;
        if (kernel[0] == 'm') {
          g = model.gflops_per_core(knc::mr_iteration_work(block, half),
                                    row.mode);
        } else {
          g = model.gflops_per_core(
              knc::block_solve_work(block, 5, half).kernel, row.mode);
        }
        t.cell(bench::vs_paper(g, row.paper[col++]));
      }
    }
  }
  std::printf("%s\n", t.str().c_str());

  std::printf(
      "Machine-model derivation (paper Sec. IV-B1):\n"
      "  compute efficiency  = 0.82 * 0.93 * 0.54 / (1 - 0.59*0.46) = "
      "%.0f%%  (paper: 56%%)\n"
      "  instruction bound   = (16+16) * eff = %.1f flop/cycle/core  "
      "(paper: 18)\n"
      "  single-core bound   = %.1f Gflop/s  (paper: 20)\n",
      100.0 * model.spec().compute_efficiency(),
      model.spec().effective_sp_flops_per_cycle(),
      model.spec().sp_gflops_bound_per_core());

  const auto w_single = knc::block_solve_work(block, 5, false);
  const auto w_half = knc::block_solve_work(block, 5, true);
  std::printf(
      "\nWorking set per 8x4^3 domain (paper Sec. III-B):\n"
      "  links+clover single: %.0f kB  (paper: 288 kB)\n"
      "  links+clover half:   %.0f kB  (paper: 144 kB)\n"
      "  7 spinors on the half lattice: %d kB (paper: 168 kB)\n"
      "  total single-precision working set: %d kB < 512 kB L2\n",
      w_single.matrix_bytes / 1024.0, w_half.matrix_bytes / 1024.0,
      7 * 24, 456);
  return 0;
}
