// The solver configurations and iteration counts of the paper's
// evaluation (Sec. IV-C), shared by the Table III / Fig. 6 / Fig. 7
// benchmark binaries.
//
// Iteration counts: the 48^3x64 DD count (198) and global sums (423) and
// the 64^3x128 DD count (10) are printed in Table III. The non-DD
// iteration counts are derived from the same table's published totals
// (time x aggregate rate / flops-per-iteration): ~4650 double-BiCGstab
// iterations for 48^3x64 (consistent with the 23907 global sums at ~5 per
// iteration), ~260 inner iterations for the 64^3x128 mixed-precision
// solver. The 32^3x64 counts are not published; we use estimates
// consistent with its lighter pion mass (290 MeV vs 150 MeV) and mark
// them as such. Strong-scaling *shapes* do not depend on these absolute
// counts (they scale both curves together).
#pragma once

#include "lqcd/cluster/cluster_sim.h"

namespace lqcd::bench {

inline cluster::DDSolveSpec dd_32cubed() {
  cluster::DDSolveSpec s;
  s.lattice = {32, 32, 32, 64};
  s.block = {8, 4, 4, 4};
  s.basis_size = 8;       // paper: maximum basis size 8
  s.deflation_size = 4;   // paper: 4 deflation vectors
  s.ischwarz = 16;
  s.idomain = 4;          // paper: 4 or 5
  s.outer_iterations = 160;  // estimated (not published)
  s.global_sum_events = 342;
  return s;
}

inline cluster::DDSolveSpec dd_48cubed() {
  cluster::DDSolveSpec s;
  s.lattice = {48, 48, 48, 64};
  s.block = {8, 4, 4, 4};
  s.basis_size = 16;      // paper: m = 16
  s.deflation_size = 6;   // paper: k = 6
  s.ischwarz = 16;
  s.idomain = 5;
  s.outer_iterations = 198;   // Table III
  s.global_sum_events = 423;  // Table III
  return s;
}

inline cluster::DDSolveSpec dd_64cubed() {
  cluster::DDSolveSpec s;
  s.lattice = {64, 64, 64, 128};
  s.block = {8, 4, 4, 4};
  s.basis_size = 5;       // paper: maximum basis size 5
  s.deflation_size = 0;   // paper: 0 deflation vectors
  s.ischwarz = 16;
  s.idomain = 5;
  s.outer_iterations = 10;   // Table III
  s.global_sum_events = 27;  // Table III
  s.half_precision_boundaries = true;  // see EXPERIMENTS.md
  return s;
}

inline cluster::NonDDSolveSpec nondd_32cubed() {
  cluster::NonDDSolveSpec s;
  s.lattice = {32, 32, 32, 64};
  s.iterations = 2600;  // estimated (lighter pion mass than 48^3)
  s.global_sum_events = 13000;
  return s;
}

inline cluster::NonDDSolveSpec nondd_48cubed() {
  cluster::NonDDSolveSpec s;
  s.lattice = {48, 48, 48, 64};
  s.iterations = 4650;          // derived from Table III totals
  s.global_sum_events = 23907;  // Table III
  return s;
}

inline cluster::NonDDSolveSpec nondd_64cubed() {
  cluster::NonDDSolveSpec s;
  s.lattice = {64, 64, 64, 128};
  s.iterations = 260;  // derived from Table III totals (inner iterations)
  s.mixed_precision = true;
  s.global_sum_events = 1408;  // Table III
  return s;
}

}  // namespace lqcd::bench
