// Regenerates paper Table III: strong-scaling details of the DD and
// non-DD solvers — per-phase time shares, per-phase rates, aggregate
// Tflop/s, time-to-solution, global sums, and communicated data per KNC.
#include <cstdio>

#include "bench_common.h"
#include "paper_specs.h"

using namespace lqcd;
using namespace lqcd::cluster;

namespace {

struct PaperDDRow {
  int nodes;
  double load_pct, pct_a, pct_m, pct_gs, pct_other;
  double g_a, g_m, g_gs, g_other;
  double tflops_m, tflops_total, time_s;
  long long gsums, comm_mb;
};

void print_dd_block(const ClusterSim& sim, const DDSolveSpec& spec,
                    const std::vector<PaperDDRow>& rows,
                    const char* title) {
  std::printf("---- %s ----\n", title);
  Table t({"KNCs", "ndom", "load%", "A%", "M%", "GS%", "oth%", "G/KNC:A",
           "G/KNC:M", "Tfl M", "Tfl tot", "time[s]", "#gsums",
           "comm/KNC[MB]"});
  for (const auto& row : rows) {
    const auto part =
        NodePartition::choose(spec.lattice, row.nodes, spec.block);
    const auto r = sim.simulate_dd(spec, part);
    t.row()
        .cell(row.nodes)
        .cell(r.ndomain_per_color)
        .cell(bench::vs_paper(100 * r.load, row.load_pct, 0))
        .cell(bench::vs_paper(r.pct(r.a), row.pct_a, 1))
        .cell(bench::vs_paper(r.pct(r.m), row.pct_m, 1))
        .cell(bench::vs_paper(r.pct(r.gs), row.pct_gs, 1))
        .cell(bench::vs_paper(r.pct(r.other), row.pct_other, 1))
        .cell(bench::vs_paper(r.a.gflops_per_node(), row.g_a, 0))
        .cell(bench::vs_paper(r.m.gflops_per_node(), row.g_m, 0))
        .cell(bench::vs_paper(r.tflops_m, row.tflops_m, 1))
        .cell(bench::vs_paper(r.tflops_total, row.tflops_total, 1))
        .cell(bench::vs_paper(r.total_seconds, row.time_s, 2))
        .cell(static_cast<long long>(r.global_sums))
        .cell(bench::vs_paper(r.comm_mb_per_node,
                              static_cast<double>(row.comm_mb), 0));
  }
  std::printf("%s\n", t.str().c_str());
}

}  // namespace

int main() {
  bench::print_header(
      "Table III — strong-scaling details",
      "Heybrock et al., SC14, Table III",
      "format: model (paper, deviation); A=Wilson-Clover, M=Schwarz DD, "
      "GS=Gram-Schmidt");

  ClusterSim sim;

  print_dd_block(
      sim, bench::dd_48cubed(),
      {{24, 96, 4.3, 85.8, 7.8, 2.1, 66, 299, 56, 143, 7.0, 6.3, 35.4, 423,
        15593},
       {32, 90, 4.0, 86.5, 7.3, 2.2, 67, 276, 55, 127, 8.6, 7.8, 28.6, 423,
        13156},
       {64, 90, 4.5, 85.9, 6.8, 2.7, 52, 250, 53, 92, 15.6, 14.0, 15.9, 423,
        8040},
       {128, 90, 5.3, 83.4, 7.0, 4.4, 35, 199, 40, 42, 24.9, 21.6, 10.3, 423,
        5116}},
      "48^3x64, DD (m=16, k=6, ISchwarz=16, Idomain=5, 198 iterations)");

  print_dd_block(
      sim, bench::dd_64cubed(),
      {{64, 95, 4.7, 89.4, 3.5, 2.3, 64, 300, 29, 24, 18.8, 17.1, 3.34, 27,
        488},
       {128, 85, 4.4, 90.0, 4.0, 1.5, 50, 221, 19, 27, 27.6, 25.3, 2.30, 27,
        293},
       {256, 71, 4.5, 90.2, 3.8, 1.5, 45, 204, 19, 26, 51.0, 46.8, 1.22, 27,
        171},
       {512, 53, 3.9, 91.1, 3.6, 1.4, 35, 135, 13, 18, 67.5, 62.7, 0.91, 27,
        98},
       {1024, 53, 5.9, 86.7, 4.5, 2.8, 16, 100, 7, 6, 100.0, 88.4, 0.65, 27,
        61}},
      "64^3x128, DD (m=5, k=0, ISchwarz=16, Idomain=5, 10 iterations)");

  // Non-uniform t-partitioning rows (marked * in the paper).
  {
    std::printf(
        "---- 64^3x128, DD, non-uniform partitioning (paper rows *320, "
        "*640) ----\n");
    Table t({"KNCs", "load%", "time[s]", "note"});
    const auto spec = bench::dd_64cubed();
    ClusterSim sim2;
    {
      const auto part = NodePartition::nonuniform_t(
          spec.lattice, {4, 4, 4}, {28, 28, 28, 28, 16});
      const auto r = sim2.simulate_dd(spec, part);
      t.row()
          .cell(320)
          .cell(bench::vs_paper(100 * r.load, 85, 0))
          .cell(bench::vs_paper(r.total_seconds, 0.95, 2))
          .cell("t = 4x28+16, xyz grid 4x4x4");
    }
    {
      const auto part = NodePartition::nonuniform_t(
          spec.lattice, {4, 4, 8}, {28, 28, 28, 28, 16});
      const auto r = sim2.simulate_dd(spec, part);
      t.row()
          .cell(640)
          .cell(bench::vs_paper(100 * r.load, 85, 0))
          .cell(bench::vs_paper(r.total_seconds, 0.70, 2))
          .cell("t = 4x28+16, xyz grid 4x4x8");
    }
    std::printf("%s\n", t.str().c_str());
  }

  // Non-DD blocks.
  {
    std::printf(
        "---- 48^3x64, non-DD: double-precision BiCGstab (~4650 "
        "iterations) ----\n");
    Table t({"KNCs", "G/KNC (solver)", "Tfl tot", "time[s]", "#gsums",
             "comm/KNC[MB]"});
    struct Row {
      int nodes;
      double g, tfl, time;
      long long gsums, comm;
    };
    const Row rows[] = {{12, 70, 0.82, 168.5, 23907, 188272},
                        {24, 58, 1.36, 101.4, 23887, 115556},
                        {36, 50, 1.77, 78.4, 24012, 91848},
                        {72, 35, 2.46, 55.9, 23802, 48200},
                        {144, 19, 2.66, 51.4, 23642, 26598}};
    const auto spec = bench::nondd_48cubed();
    for (const auto& row : rows) {
      const auto part =
          NodePartition::choose(spec.lattice, row.nodes, {2, 2, 2, 2});
      const auto r = sim.simulate_nondd(spec, part);
      t.row()
          .cell(row.nodes)
          .cell(bench::vs_paper(r.a.gflops_per_node(), row.g, 0))
          .cell(bench::vs_paper(r.tflops_total, row.tfl, 2))
          .cell(bench::vs_paper(r.total_seconds, row.time, 1))
          .cell(static_cast<long long>(r.global_sums))
          .cell(bench::vs_paper(r.comm_mb_per_node,
                                static_cast<double>(row.comm), 0));
    }
    std::printf("%s\n", t.str().c_str());
  }
  {
    std::printf(
        "---- 64^3x128, non-DD: mixed-precision Richardson + BiCGstab "
        "----\n");
    Table t({"KNCs", "G/KNC (solver)", "time[s]"});
    struct Row {
      int nodes;
      double g, time;
    };
    const Row rows[] = {{64, 101, 6.1}, {128, 94, 3.2}, {256, 56, 2.9}};
    const auto spec = bench::nondd_64cubed();
    for (const auto& row : rows) {
      const auto part =
          NodePartition::choose(spec.lattice, row.nodes, {2, 2, 2, 2});
      const auto r = sim.simulate_nondd(spec, part);
      t.row()
          .cell(row.nodes)
          .cell(bench::vs_paper(r.a.gflops_per_node(), row.g, 0))
          .cell(bench::vs_paper(r.total_seconds, row.time, 2));
    }
    std::printf("%s\n", t.str().c_str());
  }
  return 0;
}
