#!/usr/bin/env python3
"""Compare a measured BENCH_kernels.json against the checked-in baseline.

Usage:
    bench_compare.py <measured.json> <baseline.json> [--tolerance 0.25]

Both files carry the `lqcd-bench-kernels-v1` schema written by
`bench_kernels --json`. The comparison is ONE-SIDED: a kernel fails only
if its measured rate drops below baseline * (1 - tolerance). Faster
machines never fail, so the baseline can stay conservative while still
catching real regressions (a kernel silently falling back to scalar, a
dispatch bug, a de-vectorized loop).

Backends are matched by name and compared only when present in BOTH
files: CI runners differ in ISA support, so the baseline's avx2 entries
are simply skipped on a runner whose CPUID (or LQCD_SIMD_BACKEND) never
produced an avx2 section. The scalar backend is mandatory — it exists on
every machine, and its absence means the bench itself is broken.

Exit status: 0 all kernels within tolerance, 1 regression or malformed
input, 2 bad invocation.
"""

from __future__ import annotations

import argparse
import json
import sys

SCHEMA = "lqcd-bench-kernels-v1"


def load(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != SCHEMA:
        raise ValueError(f"{path}: schema {doc.get('schema')!r} != {SCHEMA!r}")
    return doc


def kernel_map(doc: dict, path: str) -> dict[str, dict[str, dict]]:
    """{backend: {kernel_name: kernel_record}}, validated: a malformed
    record raises ValueError naming the file, record, and missing key
    instead of surfacing as a KeyError traceback later."""
    out: dict[str, dict[str, dict]] = {}
    backends = doc.get("backends", [])
    if not isinstance(backends, list):
        raise ValueError(f"{path}: 'backends' must be a list")
    for i, b in enumerate(backends):
        if not isinstance(b, dict) or "backend" not in b:
            raise ValueError(
                f"{path}: backends[{i}] lacks required key 'backend'")
        bname = b["backend"]
        kmap: dict[str, dict] = {}
        for j, k in enumerate(b.get("kernels", [])):
            if not isinstance(k, dict):
                raise ValueError(
                    f"{path}: backend {bname!r} kernels[{j}] is not an "
                    "object")
            for key in ("name", "metric", "value"):
                if key not in k:
                    raise ValueError(
                        f"{path}: backend {bname!r} kernels[{j}] "
                        f"(name={k.get('name')!r}) lacks required key "
                        f"{key!r}")
            if not isinstance(k["value"], (int, float)) or \
                    isinstance(k["value"], bool):
                raise ValueError(
                    f"{path}: backend {bname!r} kernel {k['name']!r}: "
                    f"'value' must be a number, got "
                    f"{type(k['value']).__name__}")
            if k["name"] in kmap:
                raise ValueError(
                    f"{path}: backend {bname!r} lists kernel "
                    f"{k['name']!r} twice")
            kmap[k["name"]] = k
        out[bname] = kmap
    return out


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("measured")
    ap.add_argument("baseline")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed fractional drop below baseline "
                         "(default 0.25 = fail under 75%% of baseline)")
    args = ap.parse_args()
    if not 0.0 <= args.tolerance < 1.0:
        print("--tolerance must be in [0, 1)", file=sys.stderr)
        return 2

    try:
        measured = kernel_map(load(args.measured), args.measured)
        baseline = kernel_map(load(args.baseline), args.baseline)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"bench_compare: {e}", file=sys.stderr)
        return 1

    if "scalar" not in measured:
        print("bench_compare: measured file has no 'scalar' backend — the "
              "portable fallback must exist on every machine", file=sys.stderr)
        return 1

    failures = 0
    compared = 0
    skipped_backends = sorted(set(baseline) - set(measured))
    print(f"{'backend':8s} {'kernel':16s} {'metric':7s} "
          f"{'measured':>9s} {'floor':>9s} {'baseline':>9s}  status")
    for backend in sorted(set(baseline) & set(measured)):
        for name, base in sorted(baseline[backend].items()):
            meas = measured[backend].get(name)
            if meas is None:
                print(f"{backend:8s} {name:16s} {'-':7s} {'-':>9s} {'-':>9s} "
                      f"{base['value']:9.2f}  MISSING")
                failures += 1
                continue
            if meas.get("metric") != base.get("metric"):
                print(f"bench_compare: {backend}/{name}: metric "
                      f"{meas.get('metric')!r} != baseline "
                      f"{base.get('metric')!r}", file=sys.stderr)
                failures += 1
                continue
            floor = base["value"] * (1.0 - args.tolerance)
            ok = meas["value"] >= floor
            compared += 1
            failures += 0 if ok else 1
            print(f"{backend:8s} {name:16s} {base['metric']:7s} "
                  f"{meas['value']:9.2f} {floor:9.2f} {base['value']:9.2f}  "
                  f"{'ok' if ok else 'REGRESSION'}")
        # A measured kernel the baseline has never heard of means the
        # baseline is stale (a kernel was added without re-baselining) —
        # fail loudly instead of silently ignoring it.
        for name in sorted(set(measured[backend]) - set(baseline[backend])):
            print(f"{backend:8s} {name:16s} {'-':7s} "
                  f"{measured[backend][name]['value']:9.2f} {'-':>9s} "
                  f"{'-':>9s}  EXTRA (not in baseline — re-baseline)")
            failures += 1
    for backend in skipped_backends:
        print(f"{backend:8s} (not available on this machine — "
              f"{len(baseline[backend])} baseline kernel(s) skipped)")

    if compared == 0:
        print("bench_compare: nothing compared — baseline and measured "
              "share no backend", file=sys.stderr)
        return 1
    print(f"bench_compare: {compared} kernel(s) compared, "
          f"{failures} failure(s), tolerance {args.tolerance:.0%}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
