"""Optional clang.cindex (libclang) frontend.

When python3-clang + libclang are installed (the CI `analyze` job pins
python3-clang-14), this module re-derives the function/call layer of
the ProjectModel from real ASTs: function definitions with exact
extents, calls resolved through the semantic referenced-declaration
(so overload sets collapse to the actual callee), and template
instantiations included. The class/member/lock layer and the OpenMP
directive layer stay with the text frontend — libclang's C API does
not expose OpenMP directive AST nodes.

Everything here is defensive: `available()` never raises, and
`enrich()` degrades to a no-op (returning False) on any libclang
failure so the analyzer falls back to the text frontend with a notice
instead of crashing the CI job.
"""

from __future__ import annotations

import shlex
from pathlib import Path

from tools.analyze.textmodel import (FunctionInfo, ProjectModel, tu_command,
                                     tu_path)

_LIBCLANG_CANDIDATES = (
    "/usr/lib/llvm-14/lib/libclang-14.so.1",
    "/usr/lib/llvm-14/lib/libclang.so.1",
    "/usr/lib/x86_64-linux-gnu/libclang-14.so.1",
)


def _load_cindex():
    try:
        from clang import cindex
    except ImportError:
        return None
    if cindex.Config.loaded:
        return cindex
    for cand in _LIBCLANG_CANDIDATES:
        if Path(cand).exists():
            cindex.Config.set_library_file(cand)
            break
    try:
        cindex.Index.create()
    except Exception:
        return None
    return cindex


def available() -> bool:
    return _load_cindex() is not None


def _tu_args(entry: dict) -> list[str]:
    """Compiler args for libclang: drop the compiler, -c/-o and their
    operands; keep -I/-D/-std and friends."""
    argv = shlex.split(tu_command(entry))
    out: list[str] = []
    skip_next = False
    for a in argv[1:]:
        if skip_next:
            skip_next = False
            continue
        if a in ("-c",):
            continue
        if a == "-o":
            skip_next = True
            continue
        if a == str(tu_path(entry)) or a == entry.get("file"):
            continue
        out.append(a)
    return out


def enrich(model: ProjectModel, compile_db: list[dict]) -> bool:
    """Replace the function/call layer with AST-derived data for every
    in-model TU. Returns True on success, False (model untouched) when
    libclang is unavailable or every parse failed."""
    cindex = _load_cindex()
    if cindex is None:
        return False
    index = cindex.Index.create()
    CK = cindex.CursorKind

    fn_kinds = {CK.FUNCTION_DECL, CK.CXX_METHOD, CK.CONSTRUCTOR,
                CK.DESTRUCTOR, CK.FUNCTION_TEMPLATE}
    new_functions: list[FunctionInfo] = []
    parsed_files: set[Path] = set()
    any_ok = False

    for entry in compile_db:
        tu_file = tu_path(entry)
        if tu_file not in model.files:
            continue
        try:
            tu = index.parse(str(tu_file), args=_tu_args(entry),
                             options=0)
        except Exception:
            continue
        any_ok = True

        def visit(cursor):
            for c in cursor.get_children():
                loc_file = c.location.file
                if loc_file is None:
                    visit(c)
                    continue
                cpath = Path(loc_file.name).resolve()
                if cpath not in model.files:
                    continue
                if c.kind in fn_kinds and c.is_definition():
                    if (cpath, c.extent.start.line,
                            c.spelling) in parsed_keys:
                        visit(c)
                        continue
                    parsed_keys.add((cpath, c.extent.start.line, c.spelling))
                    parsed_files.add(cpath)
                    cls = None
                    sem = c.semantic_parent
                    if sem is not None and sem.kind in (
                            CK.CLASS_DECL, CK.STRUCT_DECL,
                            CK.CLASS_TEMPLATE):
                        cls = sem.spelling
                    fn = FunctionInfo(
                        name=c.spelling.split("<")[0], cls=cls, path=cpath,
                        line=c.extent.start.line,
                        body=(c.extent.start.line, c.extent.end.line))
                    _collect_ast_calls(c, fn, model, CK)
                    _adopt_text_annotations(model, fn)
                    new_functions.append(fn)
                visit(c)

        parsed_keys: set[tuple] = set()
        visit(tu.cursor)

    if not any_ok or not new_functions:
        return False
    # Keep text-frontend functions for files libclang never saw
    # (headers outside every TU's include set).
    kept = [f for f in model.functions if f.path not in parsed_files]
    model.functions = kept + new_functions
    model.frontend = "cindex"
    return True


def _collect_ast_calls(cursor, fn: FunctionInfo, model: ProjectModel,
                       CK) -> None:
    for c in cursor.get_children():
        if c.kind == CK.CALL_EXPR:
            ref = c.referenced
            name = (ref.spelling if ref is not None else c.spelling) or ""
            name = name.split("<")[0]
            # Receiver slot carries the callee's semantic class when the
            # AST resolved it — reachability narrows scope-blessed calls
            # by the same contains-'scope' convention as the text tier.
            recv = ""
            if ref is not None and ref.semantic_parent is not None:
                recv = ref.semantic_parent.spelling or ""
            if name:
                fn.calls.append((name, c.location.line, recv))
        _collect_ast_calls(c, fn, model, CK)


def _adopt_text_annotations(model: ProjectModel, fn: FunctionInfo) -> None:
    """analyze-safe annotations are comments — invisible to the AST —
    so lift them from the raw text around the definition line."""
    from tools.analyze.textmodel import _collect_annotations, annotations_for
    sf = model.files.get(fn.path)
    if sf is None:
        return
    fn.annotations = annotations_for(
        fn.line, sf.raw_lines, _collect_annotations(sf.raw_lines))
