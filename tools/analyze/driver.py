"""Driver: build the model, run the passes, apply suppressions, report.

Exit codes:
  0  clean (or every finding suppressed with a justification)
  1  findings
  2  usage / corrupt suppression entry (a suppression without a
     justification is itself an error)
  3  --frontend cindex requested but libclang is unavailable
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from tools.analyze import findings as F
from tools.analyze import clangfrontend, textmodel
from tools.analyze.passes import PASSES


def make_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="tools/analyze",
        description="Semantic analyzer: AST/callgraph checks over "
                    "compile_commands.json (concurrency, FP-determinism, "
                    "dispatch contracts).")
    ap.add_argument("--root", type=Path, default=Path.cwd(),
                    help="project root (default: cwd); analysis scope is "
                         "ROOT/src when it exists, else ROOT")
    ap.add_argument("--compile-db", type=Path, default=None,
                    help="compile_commands.json "
                         "(default: ROOT/build/compile_commands.json)")
    ap.add_argument("--suppressions", type=Path, default=None,
                    help="justified-suppression registry (default: "
                         "ROOT/tools/lint_suppressions.txt, shared with "
                         "lqcd_lint)")
    ap.add_argument("--no-suppressions", action="store_true",
                    help="report findings even when suppressed")
    ap.add_argument("--frontend", choices=("auto", "cindex", "fallback"),
                    default="auto",
                    help="auto: use clang.cindex when importable, else the "
                         "built-in text frontend with a notice; cindex: "
                         "require libclang (exit 3 if absent); fallback: "
                         "text frontend only")
    ap.add_argument("--passes", default=None,
                    help="comma-separated subset of: " +
                         ", ".join(sorted(PASSES)))
    ap.add_argument("--lock-scope", default=None,
                    help="comma-separated path substrings for the "
                         "lock-discipline pass "
                         "(default: /service/,/resilience/)")
    ap.add_argument("--json", action="store_true",
                    help="machine-readable findings on stdout")
    ap.add_argument("--list-passes", action="store_true",
                    help="print pass names and exit")
    return ap


def main(argv: list[str] | None = None) -> int:
    args = make_parser().parse_args(argv)
    if args.list_passes:
        for name, mod in sorted(PASSES.items()):
            doc = (mod.__doc__ or "").strip().splitlines()[0]
            print(f"{name}: {doc}")
        return 0

    root = args.root.resolve()
    compile_db_path = args.compile_db or root / "build" / \
        "compile_commands.json"
    if not compile_db_path.exists():
        print(f"error: compile DB not found: {compile_db_path} "
              "(configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON)",
              file=sys.stderr)
        return 2
    try:
        compile_db = textmodel.load_compile_db(compile_db_path)
    except (ValueError, json.JSONDecodeError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2

    pass_names = sorted(PASSES) if args.passes is None else [
        p.strip() for p in args.passes.split(",") if p.strip()]
    unknown = [p for p in pass_names if p not in PASSES]
    if unknown:
        print(f"error: unknown pass(es): {', '.join(unknown)} "
              f"(known: {', '.join(sorted(PASSES))})", file=sys.stderr)
        return 2

    model = textmodel.build_model(root, compile_db)
    if args.frontend == "cindex":
        if not clangfrontend.enrich(model, compile_db):
            print("error: --frontend cindex requested but libclang / "
                  "python3-clang is unavailable", file=sys.stderr)
            return 3
    elif args.frontend == "auto":
        if not clangfrontend.enrich(model, compile_db):
            print("notice: clang.cindex unavailable — using the built-in "
                  "text frontend (install python3-clang-14 + libclang-14 "
                  "for AST-resolved callgraphs)", file=sys.stderr)

    options = {"lock_scope": args.lock_scope}
    all_findings: list[F.Finding] = []
    for name in pass_names:
        all_findings.extend(PASSES[name].run(model, options))

    F.relativize(all_findings, root)
    all_findings.sort(key=lambda f: (str(f.path), f.line, f.rule, f.msg))

    sup_path = args.suppressions or root / "tools" / "lint_suppressions.txt"
    entries: list[tuple] = []
    sup_errors = 0
    if not args.no_suppressions:
        entries, sup_errors = F.load_suppressions(sup_path)

    active = [f for f in all_findings if not F.suppressed(f, entries)]
    n_suppressed = len(all_findings) - len(active)

    if args.json:
        print(json.dumps({
            "frontend": model.frontend,
            "passes": pass_names,
            "findings": [f.to_json() for f in active],
            "suppressed": n_suppressed,
        }, indent=2))
    else:
        for f in active:
            print(f)
        tag = f" [{model.frontend} frontend]"
        if active:
            print(f"\n{len(active)} finding(s) "
                  f"({n_suppressed} suppressed){tag}", file=sys.stderr)
        else:
            print(f"analyze: clean ({len(model.files)} files, "
                  f"{len(pass_names)} passes, {n_suppressed} suppressed)"
                  f"{tag}", file=sys.stderr)

    if sup_errors:
        return 2
    return 1 if active else 0
