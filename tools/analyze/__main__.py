"""Entry point: `python3 tools/analyze ...` or `python3 -m tools.analyze`.

When invoked as a directory (`python3 tools/analyze`), the package is
not importable by its dotted name, so bootstrap the repo root onto
sys.path first.
"""

import sys
from pathlib import Path

if __package__ in (None, ""):
    sys.path.insert(0, str(Path(__file__).resolve().parents[2]))

from tools.analyze.driver import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
