"""Pass registry for tools/analyze."""

from __future__ import annotations

from tools.analyze.passes import (dispatch_complete, fp_determinism,
                                  lock_discipline, omp_audit, reachability)

# Name -> pass module exposing run(model, options). Order is the
# report order.
PASSES = {
    "omp-audit": omp_audit,
    "parallel-reachability": reachability,
    "lock-discipline": lock_discipline,
    "fp-determinism": fp_determinism,
    "dispatch-completeness": dispatch_complete,
}
