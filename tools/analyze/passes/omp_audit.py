"""omp-audit: every OpenMP region that owns a data environment must be
explicit about it.

A `#pragma omp parallel` (including combined parallel-for /
parallel-sections), `task`, or `teams` directive creates a fresh data
environment; without `default(none)` every captured variable silently
becomes shared, which is exactly how the thread-count-invariance
contract (DESIGN "Concurrency & static-analysis gates") gets broken by
an innocent-looking edit. The pass requires `default(none)` on every
such directive — forcing the sharing list to be spelled out — and flags
an explicit `default(shared)` as the same defect stated louder.

Directives that create no data environment (`omp for`, `omp simd`,
`omp critical`, ...) take no default clause and are not audited.
"""

from __future__ import annotations

import re

from tools.analyze.findings import Finding

# Directive kinds that accept a default() clause.
_OWNS_DATA_ENV = re.compile(r"#\s*pragma\s+omp\s.*\b(parallel|task|teams)\b")
_DEFAULT_RE = re.compile(r"\bdefault\s*\(\s*(\w+)\s*\)")


def run(model, options) -> list[Finding]:
    del options
    findings: list[Finding] = []
    for sf in model.files.values():
        for d in sf.directives:
            if not _OWNS_DATA_ENV.search(d.text):
                continue
            if "declare" in d.text:  # e.g. `omp declare simd`
                continue
            m = _DEFAULT_RE.search(d.text)
            if m is None:
                findings.append(Finding(
                    "omp-audit", d.path, d.line,
                    "omp region creates a data environment without "
                    "default(none) — every sharing decision must be an "
                    "explicit shared()/firstprivate()/private() clause"))
            elif m.group(1) != "none":
                findings.append(Finding(
                    "omp-audit", d.path, d.line,
                    f"omp region declares default({m.group(1)}) — only "
                    "default(none) with explicit sharing lists is allowed"))
    return findings
