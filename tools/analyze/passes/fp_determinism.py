"""fp-determinism: the bit-reproducibility contract, checked at the
build-flag AND expression level.

The cross-backend contract (simd/dispatch.h) says the lane kernels —
su3_mul_nn, su3_mul_lanes, project/reconstruct, xpay, the fp16
converters — are BIT-IDENTICAL across scalar/avx2/avx512, which only
holds if (a) every TU that compiles them does so with -ffp-contract=off
and no fast-math family flag, and (b) no kernel on the bit-exact list
uses an explicit FMA (std::fma / _mm*_fmadd_*), since separate
mul/add is what the scalar reference computes. clover_pair_lanes and
the MR reductions are the FMA-allowed set (<= 1e-6 contract).

The pass discovers bit-exact TUs semantically: a TU whose include
closure defines a function on the bit-exact list is a bit-exact TU.
For each such TU it verifies the compile_commands.json flags; and for
every bit-exact kernel it walks the local callgraph (helpers like
phase_madd inherit the caller's contract) flagging explicit FMA. When
a bit-exact TU lacks -ffp-contract=off, FMA-contractible `a*b+c`
expressions inside its bit-exact kernels are reported too — those are
the exact sites the compiler would silently fuse.
"""

from __future__ import annotations

import re
from pathlib import Path

from tools.analyze.findings import Finding
from tools.analyze.textmodel import tu_command, tu_path

BIT_EXACT = {
    "su3_mul_nn", "su3_mul_lanes", "project_lanes", "reconstruct_add_lanes",
    "xpay_lanes", "float_to_half_n", "half_to_float_n",
}
FMA_ALLOWED = {"clover_pair_lanes", "mr_dots_lanes", "mr_axpy_lanes"}

_FAST_MATH_FLAGS = ("-ffast-math", "-funsafe-math-optimizations", "-Ofast",
                    "-fassociative-math", "-freciprocal-math",
                    "-ffinite-math-only", "-ffp-contract=fast")
_EXPLICIT_FMA_RE = re.compile(
    r"\b(?:std\s*::\s*)?(fmaf?|__builtin_fmaf?)\s*\(|"
    r"\b(_mm\d*_(?:mask_|maskz_)?f?n?m(?:add|sub)(?:_round)?_p[sdh])\s*\(")
_CONTRACTIBLE_RE = re.compile(
    r"[\w\]\)]\s*\*\s*[\w\(\[][^;]*?[+\-]|[+\-][^;]*?[\w\]\)]\s*\*\s*"
    r"[\w\(\[]")


def _include_closure(model, tu: Path) -> set[Path]:
    """Project files reachable from `tu` through quoted includes."""
    closure: set[Path] = set()
    src_root = model.root / "src" if (model.root / "src").is_dir() \
        else model.root
    queue = [tu]
    while queue:
        p = queue.pop()
        if p in closure or p not in model.files:
            continue
        closure.add(p)
        for inc in model.files[p].includes:
            for cand in (src_root / inc, p.parent / inc):
                cand = cand.resolve()
                if cand in model.files and cand not in closure:
                    queue.append(cand)
    return closure


def run(model, options) -> list[Finding]:
    del options
    findings: list[Finding] = []
    by_name = model.by_name()

    defs_by_file: dict[Path, list] = {}
    for fn in model.functions:
        defs_by_file.setdefault(fn.path, []).append(fn)

    def bit_exact_closure(root_fn) -> list:
        """root_fn plus project helpers it (transitively) calls, never
        descending into the FMA-allowed set."""
        out, seen, queue = [], set(), [root_fn]
        while queue:
            fn = queue.pop()
            if id(fn) in seen:
                continue
            seen.add(id(fn))
            out.append(fn)
            for cname, _, _ in fn.calls:
                if cname in FMA_ALLOWED:
                    continue
                for callee in by_name.get(cname, []):
                    if id(callee) not in seen:
                        queue.append(callee)
        return out

    for entry in model.compile_db:
        tu = tu_path(entry)
        if tu not in model.files:
            continue
        closure = _include_closure(model, tu)
        roots = [fn for p in closure for fn in defs_by_file.get(p, [])
                 if fn.name in BIT_EXACT]
        if not roots:
            continue

        cmd = tu_command(entry)
        has_contract_off = "-ffp-contract=off" in cmd
        bad_flags = [f for f in _FAST_MATH_FLAGS if f in cmd]
        if not has_contract_off:
            findings.append(Finding(
                "fp-determinism", tu, 1,
                "bit-exact-contract TU (defines "
                f"{', '.join(sorted({r.name for r in roots}))}) compiles "
                "without -ffp-contract=off — the compiler may fuse a*b+c "
                "into FMA and break cross-backend bit-identity"))
        for f in bad_flags:
            findings.append(Finding(
                "fp-determinism", tu, 1,
                f"bit-exact-contract TU compiles with {f} — fast-math "
                "reassociation breaks the bit-reproducibility contract"))

        seen_fns: set[int] = set()
        for root_fn in roots:
            for fn in bit_exact_closure(root_fn):
                if id(fn) in seen_fns or fn.path not in closure:
                    continue
                seen_fns.add(id(fn))
                lines = model.files[fn.path].lines
                lo, hi = fn.body
                for ln in range(lo, min(hi, len(lines)) + 1):
                    text = lines[ln - 1]
                    m = _EXPLICIT_FMA_RE.search(text)
                    if m:
                        what = m.group(1) or m.group(2)
                        findings.append(Finding(
                            "fp-determinism", fn.path, ln,
                            f"explicit FMA '{what}' in bit-exact kernel "
                            f"path '{fn.qual}' (reached from "
                            f"{root_fn.name}) — bit-exact kernels must "
                            "use separate mul/add"))
                    elif not has_contract_off and \
                            _CONTRACTIBLE_RE.search(text):
                        findings.append(Finding(
                            "fp-determinism", fn.path, ln,
                            f"FMA-contractible a*b+c in '{fn.qual}' while "
                            f"its TU {tu.name} lacks -ffp-contract=off — "
                            "the compiler is free to fuse this"))

    # De-duplicate across TUs sharing headers.
    uniq: dict[tuple, Finding] = {}
    for f in findings:
        uniq.setdefault(f.key(), f)
    return list(uniq.values())
