"""parallel-reachability: interprocedural hazard reachability from
parallel regions.

The lexical tier (lqcd_lint parallel-fault-hook / simd-opaque-call)
only sees hazards spelled INSIDE a region's braces. This pass builds
the project callgraph and walks it: a serial FaultInjector hook, a
shared-stats mutation, or a `throw` (including LQCD_CHECK*, which
expands to one) is a finding when it is *reachable* from an
`omp parallel` region — a helper function called three frames deep
terminates the program (uncaught exception in a parallel region) or
races on the stats shards just as surely as inline code. For
LQCD_PRAGMA_SIMD regions only throw-reachability is checked (the
vectorizer contract; fault hooks there are already structurally
impossible).

Escape hatch: a function whose definition carries
    // analyze-safe(parallel-reachability): <justification>
(or analyze-safe(*)) is treated as a barrier — the walk does not
descend into it. The justification is mandatory and lives next to the
code it blesses.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from tools.analyze.findings import Finding

_SERIAL_HOOK_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s*(?:->|\.)\s*"
    r"(maybe_fault|maybe_corrupt|maybe_corrupt_reals|should_fire|"
    r"note_opportunity|record_event)\s*\(")
_SHARED_STATS_RE = re.compile(
    r"(\+\+\s*stats_\s*\.|stats_\s*\.\s*\w+\s*(\+=|=[^=]|\+\+)|"
    r"\+\+\s*comm_stats_\s*\.|comm_stats_\s*\.\s*\w+\s*(\+=|=[^=]|\+\+))")
_THROW_RE = re.compile(r"\bthrow\b")
_CHECK_MACROS = {"LQCD_CHECK", "LQCD_CHECK_MSG"}

# A call name resolving to more than this many distinct project
# definitions is too ambiguous to walk (operator-like common names);
# skipping keeps findings actionable.
_MAX_OVERLOADS = 8


@dataclass
class _Hazard:
    kind: str      # "fault-hook" | "stats-mutation" | "throw"
    line: int
    detail: str


def _span_hazards(lines: list[str], span: tuple[int, int],
                  kinds: frozenset) -> list[_Hazard]:
    out: list[_Hazard] = []
    lo, hi = span
    for ln in range(lo, min(hi, len(lines)) + 1):
        text = lines[ln - 1]
        if "fault-hook" in kinds:
            for m in _SERIAL_HOOK_RE.finditer(text):
                if "scope" in m.group(1).lower():
                    continue  # blessed ParallelFaultScope receiver
                out.append(_Hazard(
                    "fault-hook", ln,
                    f"serial fault hook {m.group(1)}->{m.group(2)}()"))
        if "stats-mutation" in kinds and _SHARED_STATS_RE.search(text):
            out.append(_Hazard("stats-mutation", ln,
                               "shared stats member mutation"))
        if "throw" in kinds:
            if _THROW_RE.search(text):
                out.append(_Hazard("throw", ln, "throw statement"))
            for m in re.finditer(r"\b(LQCD_CHECK(?:_MSG)?)\s*\(", text):
                out.append(_Hazard("throw", ln,
                                   f"{m.group(1)} (throws lqcd::Error)"))
    return out


def _span_calls(lines: list[str], span: tuple[int, int]) -> list[tuple]:
    from tools.analyze.textmodel import CALL_RE, KEYWORDS, call_receiver
    out = []
    lo, hi = span
    for ln in range(lo, min(hi, len(lines)) + 1):
        text = lines[ln - 1]
        for m in CALL_RE.finditer(text):
            if m.group(1) not in KEYWORDS and \
                    m.group(1) not in _CHECK_MACROS:
                out.append((m.group(1), ln,
                            call_receiver(text, m.start(1))))
    return out


def _resolve(name: str, receiver: str, caller_cls: str | None,
             by_name) -> list:
    """Name-based overload resolution with two narrowings that mirror
    C++ lookup:

    * blessed receiver — a call through a receiver whose name contains
      'scope' (e.g. `domain_scope_->maybe_corrupt_reals(...)`) targets
      the ParallelFaultScope-style thread-safe wrapper, never a serial
      same-named method, so when scope-classed definitions exist only
      those are walked;
    * member-first — an unqualified call (no receiver) inside a member
      function of class C resolves to C's own method when C defines the
      name, exactly as unqualified name lookup does; without this,
      `note_opportunity(tid)` inside ParallelFaultScope would also walk
      FaultInjector::note_opportunity."""
    defs = by_name.get(name, [])
    if receiver and "scope" in receiver.lower():
        scoped = [d for d in defs if d.cls and "scope" in d.cls.lower()]
        if scoped:
            return scoped
    elif receiver in ("", "this") and caller_cls:
        own = [d for d in defs if d.cls == caller_cls]
        if own:
            return own
    elif receiver and caller_cls:
        # obj.apply() / ptr->apply() on a named receiver: the target is
        # some OTHER object's API; resolving a common name like `apply`
        # back into the caller's own class invents recursion into the
        # serial orchestration layer. Drop same-class candidates.
        other = [d for d in defs if d.cls != caller_cls]
        if other:
            return other
    return defs


def _enclosing_cls(model, path, line) -> str | None:
    """Class of the member function whose body contains `line` (the
    parallel region's home — unqualified calls in the region body get
    member-first resolution against it)."""
    best = None
    for fn in model.functions_in(path):
        lo, hi = fn.body
        if lo <= line <= hi and (best is None or
                                 lo > best.body[0]):
            best = fn
    return best.cls if best else None


def run(model, options) -> list[Finding]:
    del options
    findings: list[Finding] = []
    by_name = model.by_name()

    def barrier(fn) -> bool:
        ann = fn.annotations
        return "parallel-reachability" in ann or "*" in ann

    # Hazards and callees per function, lazily.
    fn_hazards: dict[int, list[_Hazard]] = {}

    def hazards_of(fn, kinds) -> list[_Hazard]:
        key = id(fn)
        if key not in fn_hazards:
            lines = model.files[fn.path].lines
            fn_hazards[key] = _span_hazards(lines, fn.body,
                                            frozenset(("fault-hook",
                                                       "stats-mutation",
                                                       "throw")))
        return [h for h in fn_hazards[key] if h.kind in kinds]

    def walk(root_desc, root_path, root_line, span, kinds, region_kind):
        """BFS from a region body through the callgraph; report the
        shortest path to each distinct hazard site."""
        lines = model.files[root_path].lines
        reported: set[tuple] = set()

        def report(hazard, via, in_path):
            site = (hazard.kind, str(in_path), hazard.line)
            if site in reported:
                return
            reported.add(site)
            chain = " -> ".join(via) if via else "(region body)"
            findings.append(Finding(
                "parallel-reachability", root_path, root_line,
                f"{hazard.detail} reachable from {region_kind} region via "
                f"{chain} at {in_path.name}:{hazard.line} — "
                + ("use ParallelFaultScope / per-thread shards"
                   if hazard.kind != "throw" else
                   "an exception escaping a parallel region is "
                   "std::terminate; hoist the check or mark the callee "
                   "analyze-safe with a justification")))

        for h in _span_hazards(lines, span, kinds):
            report(h, [], root_path)

        region_cls = _enclosing_cls(model, root_path, root_line)
        seen: set[int] = set()
        queue: list[tuple] = []
        for name, ln, recv in _span_calls(lines, span):
            del ln
            queue.append((name, recv, region_cls, []))
        while queue:
            name, recv, caller_cls, via = queue.pop(0)
            defs = _resolve(name, recv, caller_cls, by_name)
            if not defs or len(defs) > _MAX_OVERLOADS:
                continue
            for fn in defs:
                if id(fn) in seen:
                    continue
                seen.add(id(fn))
                if barrier(fn):
                    continue
                path_desc = via + [fn.qual]
                for h in hazards_of(fn, kinds):
                    report(h, path_desc, fn.path)
                if len(path_desc) < 12:
                    for cname, cln, crecv in fn.calls:
                        del cln
                        queue.append((cname, crecv, fn.cls, path_desc))
        del root_desc

    for sf in model.files.values():
        for d in sf.directives:
            if not re.search(r"#\s*pragma\s+omp\s.*\bparallel\b", d.text):
                continue
            walk(d.text, d.path, d.line, d.body,
                 frozenset(("fault-hook", "stats-mutation", "throw")),
                 "omp parallel")
        for r in sf.simd_regions:
            walk(r.text, r.path, r.line, r.body, frozenset(("throw",)),
                 "LQCD_PRAGMA_SIMD")
    return findings
