"""lock-discipline: lock-order extraction and guarded-member inference
for the concurrent layers (src/lqcd/service/, src/lqcd/resilience/ by
default).

Two checks, both running on a per-function lock simulation that tracks
std::lock_guard / std::unique_lock / std::scoped_lock lifetimes through
brace scopes, explicit .lock()/.unlock() toggles, and cv.wait(lock)
(which returns with the lock re-held):

  lock-order   every acquisition of mutex B while mutex A is held adds
               the edge A -> B to a directed graph over class-qualified
               mutex names; any cycle (the classic AB/BA inversion) is
               reported with the acquisition sites on the cycle.

  guarded-member  a data member written under a held mutex of its class
               anywhere is inferred to be guarded by that mutex; any
               access to it in a member function of the same class with
               no lock held is reported. Constructors/destructors are
               exempt (no concurrent access before/after lifetime), as
               are member functions named `*_locked` (the suffix IS the
               caller-holds-the-lock contract), std::atomic members,
               condition variables, and the mutexes themselves.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from tools.analyze.findings import Finding

_LOCK_DECL_RE = re.compile(
    r"std\s*::\s*(?:lock_guard|unique_lock|scoped_lock)\s*(?:<[^;>]*>)?\s+"
    r"(\w+)\s*[({]\s*([^;)}]+?)\s*[)}]")
_TOGGLE_RE = re.compile(r"\b(\w+)\s*\.\s*(lock|unlock)\s*\(\s*\)")
_WRITE_FMT = (r"(?:\+\+|--)\s*{m}\b|\b{m}\s*(?:\.\s*\w+\s*)?"
              r"(?:=[^=]|\+=|-=|\*=|/=|\+\+|--)|"
              r"\b{m}\s*\.\s*(?:push_back|push_front|pop_back|pop_front|"
              r"emplace\w*|insert|erase|clear|resize|splice|assign|swap)\s*\(")


@dataclass
class _Acq:
    mutex: str       # class-qualified, e.g. "SetupCache::mu_"
    line: int
    depth: int       # brace depth at acquisition (for scope release)
    var: str         # guard variable name ("" for direct .lock())
    held: bool = True


@dataclass
class _FnLocks:
    """Per-line held-mutex sets plus the acquisition-order edges."""
    held_at: dict[int, set] = field(default_factory=dict)
    edges: list[tuple] = field(default_factory=list)  # (a, b, line)


def _qualify(cls, expr: str) -> str:
    expr = expr.split(",")[0].strip()
    expr = re.sub(r"^\*?\s*this\s*->\s*", "", expr)
    if cls is not None and re.fullmatch(r"\w+", expr) and \
            expr in cls.mutexes:
        return f"{cls.name}::{expr}"
    return expr


def _simulate(fn, cls, lines: list[str]) -> _FnLocks:
    out = _FnLocks()
    active: list[_Acq] = []
    depth = 0
    lo, hi = fn.body
    for ln in range(lo, min(hi, len(lines)) + 1):
        text = lines[ln - 1]
        # Events on this line, in column order.
        events: list[tuple] = []  # (col, kind, payload)
        for m in _LOCK_DECL_RE.finditer(text):
            events.append((m.start(), "acquire", (m.group(1), m.group(2))))
        for m in _TOGGLE_RE.finditer(text):
            events.append((m.start(), m.group(2), m.group(1)))
        for m in re.finditer(r"\bwait\w*\s*\(\s*(\w+)", text):
            # cv.wait(lk): released inside, re-held on return — treat as
            # continuously held for ordering purposes.
            del m
        for col, ch in enumerate(text):
            if ch == "{":
                events.append((col, "open", None))
            elif ch == "}":
                events.append((col, "close", None))
        events.sort(key=lambda e: e[0])

        # Record the held set as of the start of the line.
        out.held_at[ln] = {a.mutex for a in active if a.held}

        for _, kind, payload in events:
            if kind == "open":
                depth += 1
            elif kind == "close":
                depth -= 1
                for a in active:
                    if a.held and a.var and a.depth > depth:
                        a.held = False
                active = [a for a in active if a.held]
            elif kind == "acquire":
                var, mexpr = payload
                if "defer_lock" in text or "adopt_lock" in text:
                    held = "adopt_lock" in text
                else:
                    held = True
                mutex = _qualify(cls, mexpr)
                for a in active:
                    if a.held and a.mutex != mutex:
                        out.edges.append((a.mutex, mutex, ln))
                active.append(_Acq(mutex=mutex, line=ln, depth=depth,
                                   var=var, held=held))
            elif kind == "lock":
                var = payload
                hit = False
                for a in active:
                    if a.var == var:
                        if not a.held:
                            for b in active:
                                if b.held and b.mutex != a.mutex:
                                    out.edges.append((b.mutex, a.mutex, ln))
                        a.held = True
                        hit = True
                if not hit and cls is not None and var in cls.mutexes:
                    mutex = _qualify(cls, var)
                    for a in active:
                        if a.held and a.mutex != mutex:
                            out.edges.append((a.mutex, mutex, ln))
                    active.append(_Acq(mutex=mutex, line=ln, depth=depth,
                                       var=""))
            elif kind == "unlock":
                var = payload
                for a in active:
                    if a.var == var or (a.var == "" and a.mutex.endswith(
                            f"::{var}")):
                        a.held = False
                active = [a for a in active if a.held or a.var]
        # Re-record including same-line acquisitions so accesses after a
        # one-line `std::lock_guard ... lock(mu_);` count as guarded.
        out.held_at[ln] |= {a.mutex for a in active if a.held}
    return out


def run(model, options) -> list[Finding]:
    scopes = [s for s in
              (options.get("lock_scope") or "/service/,/resilience/").split(
                  ",") if s]
    findings: list[Finding] = []

    in_scope_files = [p for p in model.files
                      if any(s in str(p) for s in scopes)]

    # Class lookup by (path, name); member functions grouped per class.
    classes = {(c.path, c.name): c for c in model.classes}

    sims: list[tuple] = []  # (fn, cls, locks)
    for path in in_scope_files:
        lines = model.files[path].lines
        for fn in model.functions_in(path):
            cls = classes.get((path, fn.cls)) if fn.cls else None
            if cls is None and fn.cls:
                # Out-of-line method of a class defined in a header of
                # the same model (e.g. SolverService::dispatch in the
                # .cpp): match by name across files.
                for (_, name), c in classes.items():
                    if name == fn.cls:
                        cls = c
                        break
            sims.append((fn, cls, _simulate(fn, cls, lines)))

    _check_lock_order(sims, findings)
    _check_guarded_members(model, sims, findings)
    return findings


def _check_lock_order(sims, findings) -> None:
    edges: dict[tuple, tuple] = {}  # (a, b) -> (path, line, fnqual)
    for fn, cls, locks in sims:
        del cls
        for a, b, ln in locks.edges:
            edges.setdefault((a, b), (fn.path, ln, fn.qual))
    graph: dict[str, set] = {}
    for (a, b) in edges:
        graph.setdefault(a, set()).add(b)

    # Cycle detection over the acquisition graph.
    WHITE, GRAY, BLACK = 0, 1, 2
    color: dict[str, int] = {}
    stack: list[str] = []
    cycles: list[list[str]] = []

    def dfs(node):
        color[node] = GRAY
        stack.append(node)
        for nxt in sorted(graph.get(node, ())):
            c = color.get(nxt, WHITE)
            if c == GRAY:
                cycles.append(stack[stack.index(nxt):] + [nxt])
            elif c == WHITE:
                dfs(nxt)
        stack.pop()
        color[node] = BLACK

    for node in sorted(graph):
        if color.get(node, WHITE) == WHITE:
            dfs(node)

    seen_cycles: set[frozenset] = set()
    for cyc in cycles:
        key = frozenset(cyc)
        if key in seen_cycles:
            continue
        seen_cycles.add(key)
        sites = []
        for a, b in zip(cyc, cyc[1:]):
            path, ln, fnqual = edges[(a, b)]
            sites.append(f"{a} -> {b} in {fnqual} ({path.name}:{ln})")
        path, ln, _ = edges[(cyc[0], cyc[1])]
        findings.append(Finding(
            "lock-discipline", path, ln,
            "lock-order inversion: " + "; ".join(sites) +
            " — concurrent callers taking these paths deadlock"))


def _check_guarded_members(model, sims, findings) -> None:
    # 1) Infer guarded members: written under a held mutex of their
    #    class. Guarded set is per (class path, class name, member).
    guarded: dict[tuple, str] = {}  # (clskey, member) -> mutex
    for fn, cls, locks in sims:
        if cls is None or _is_ctor_dtor(fn):
            continue
        lines = model.files[fn.path].lines
        clskey = (cls.path, cls.name)
        candidates = cls.members - cls.mutexes - cls.cvs - cls.atomics
        for member in candidates:
            wre = re.compile(_WRITE_FMT.format(m=re.escape(member)))
            lo, hi = fn.body
            for ln in range(lo, min(hi, len(lines)) + 1):
                if not wre.search(lines[ln - 1]):
                    continue
                held = locks.held_at.get(ln, set())
                own = [h for h in held
                       if h.startswith(f"{cls.name}::")]
                if own:
                    guarded.setdefault((clskey, member), own[0])

    # 2) Any access to a guarded member with no lock held is a finding.
    #    A `*_locked` name documents the caller-holds-the-lock contract
    #    (the private tail of a public locking method) and is exempt.
    for fn, cls, locks in sims:
        if cls is None or _is_ctor_dtor(fn) or fn.name.endswith("_locked"):
            continue
        lines = model.files[fn.path].lines
        clskey = (cls.path, cls.name)
        for (gkey, member), mutex in guarded.items():
            if gkey != clskey:
                continue
            are = re.compile(rf"(?<![\w.>]){re.escape(member)}\b")
            lo, hi = fn.body
            for ln in range(lo, min(hi, len(lines)) + 1):
                if not are.search(lines[ln - 1]):
                    continue
                if locks.held_at.get(ln, set()):
                    continue
                findings.append(Finding(
                    "lock-discipline", fn.path, ln,
                    f"member '{member}' of {cls.name} is written under "
                    f"{mutex} elsewhere but accessed here in "
                    f"{fn.qual} with no lock held"))


def _is_ctor_dtor(fn) -> bool:
    return fn.cls is not None and (fn.name == fn.cls or
                                   fn.name == f"~{fn.cls}" or
                                   (fn.line > 0 and fn.name == fn.cls))
