"""dispatch-completeness: no silent null slots in the Kernels table.

The runtime-dispatch contract (simd/dispatch.h) hangs every hot kernel
off a function-pointer field of `struct Kernels`, and every backend TU
(backend_scalar.cpp, backend_avx2.cpp, backend_avx512.cpp) fills the
table with positional aggregate initialization. C++ value-initializes
missing trailing aggregate members — so adding a field to Kernels
without extending every backend initializer compiles cleanly and
produces a nullptr kernel slot that segfaults on first dispatch of one
backend only. This pass parses the struct's field list (in declaration
order, function-pointer fields detected syntactically) and checks every
aggregate initializer of that type, in every backend TU:

  * the initializer must cover ALL fields (missing trailing fields are
    named in the finding);
  * no function-pointer position may be nullptr/NULL/0;
  * every backend TU must initialize at least one table.
"""

from __future__ import annotations

import re
from pathlib import Path

from tools.analyze.findings import Finding
from tools.analyze.textmodel import tu_path

_STRUCT_NAME = "Kernels"
_FP_FIELD_RE = re.compile(r"\(\s*\*\s*(\w+)\s*\)\s*\(")
_PLAIN_FIELD_RE = re.compile(r"\b(\w+)\s*(?:=[^=].*)?;\s*$")
_NULLISH = {"nullptr", "NULL", "0", "{}", "{ }"}


def _struct_fields(cls) -> list[tuple[str, bool]]:
    """Ordered (field name, is_function_pointer) from class statements."""
    fields: list[tuple[str, bool]] = []
    for _, text in cls.statements:
        t = text.strip()
        if re.match(r"^(using|typedef|static|friend|template|public|"
                    r"private|protected|enum|class|struct)\b", t):
            continue
        m = _FP_FIELD_RE.search(t)
        if m:
            fields.append((m.group(1), True))
            continue
        if "(" in t:
            continue  # a method declaration, not a data member
        t = t if t.rstrip().endswith(";") else t + " ;"
        m = _PLAIN_FIELD_RE.search(t)
        if m and m.group(1) not in ("const", "override"):
            fields.append((m.group(1), False))
    return fields


def _split_top_level(body: str) -> list[str]:
    parts, depth, cur = [], 0, []
    for ch in body:
        if ch in "({[<":
            depth += 1
        elif ch in ")}]>":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(cur).strip())
            cur = []
        else:
            cur.append(ch)
    tail = "".join(cur).strip()
    if tail:
        parts.append(tail)
    return parts


def _aggregates(lines: list[str]) -> list[tuple[int, list[str]]]:
    """(line, top-level initializer list) of every `Kernels x = {...};`"""
    text = "\n".join(lines)
    out = []
    for m in re.finditer(
            rf"\b{_STRUCT_NAME}\s+\w+\s*(?:=\s*)?\{{", text):
        start = m.end() - 1
        depth = 0
        for i in range(start, len(text)):
            if text[i] == "{":
                depth += 1
            elif text[i] == "}":
                depth -= 1
                if depth == 0:
                    body = text[start + 1:i]
                    line = text.count("\n", 0, m.start()) + 1
                    out.append((line, _split_top_level(body)))
                    break
    return out


def run(model, options) -> list[Finding]:
    del options
    findings: list[Finding] = []
    tables = [c for c in model.classes if c.name == _STRUCT_NAME]
    if not tables:
        return findings
    # If several definitions exist (should not happen), use the first
    # with function-pointer fields.
    fields: list[tuple[str, bool]] = []
    for cls in tables:
        fields = _struct_fields(cls)
        if any(fp for _, fp in fields):
            break
    if not any(fp for _, fp in fields):
        return findings

    backend_tus = [tu_path(e) for e in model.compile_db
                   if Path(e["file"]).name.startswith("backend_")]
    backend_tus = [p for p in backend_tus if p in model.files]

    initialized_tus: set[Path] = set()
    for path, sf in model.files.items():
        for line, inits in _aggregates(sf.lines):
            initialized_tus.add(path)
            if len(inits) < len(fields):
                missing = [n for n, _ in fields[len(inits):]]
                findings.append(Finding(
                    "dispatch-completeness", path, line,
                    f"{_STRUCT_NAME} aggregate initializer covers "
                    f"{len(inits)} of {len(fields)} fields — "
                    f"{', '.join(missing)} value-initialize to nullptr "
                    "kernel slots (silent segfault on first dispatch)"))
            for i, init in enumerate(inits[:len(fields)]):
                name, is_fp = fields[i]
                if is_fp and init.replace(" ", "") in \
                        {n.replace(" ", "") for n in _NULLISH}:
                    findings.append(Finding(
                        "dispatch-completeness", path, line,
                        f"{_STRUCT_NAME} field '{name}' is explicitly "
                        f"null in this table — a backend must implement "
                        "every kernel (fall back to the scalar reference "
                        "instead of a null slot)"))

    for tu in backend_tus:
        if tu not in initialized_tus:
            findings.append(Finding(
                "dispatch-completeness", tu, 1,
                f"backend TU defines no {_STRUCT_NAME} aggregate "
                "initializer — every backend must assign the full "
                "dispatch table (a degraded build may return nullptr "
                "from its *_table(), but the table itself must exist)"))
    return findings
