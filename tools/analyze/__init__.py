"""Semantic analyzer suite for the lattice-QCD DD codebase.

Tier 2 of the repo's static-analysis story (tier 1 is the lexical
tools/lqcd_lint.py). This package parses every translation unit listed
in a CMake compile_commands.json and runs AST/callgraph passes that no
regex can express:

  omp-audit              every `#pragma omp parallel` region carries
                         default(none) with explicit sharing lists.
  parallel-reachability  interprocedural callgraph walk proving no
                         serial FaultInjector hook, shared-stats
                         mutation, or throw is *reachable* from inside
                         a parallel or LQCD_PRAGMA_SIMD region.
  lock-discipline        lock-acquisition order extraction (inversion
                         detection) and mutex-guarded-member access
                         outside any lock scope, for the service and
                         resilience layers.
  fp-determinism         bit-exact-contract TUs compile with
                         -ffp-contract=off and no fast-math; no explicit
                         FMA reachable from bit-exact kernel bodies.
  dispatch-completeness  every function-pointer field of the Kernels
                         dispatch table is assigned, non-null, in every
                         backend TU.

Two frontends produce the same project model: a libclang one (python
clang.cindex, used when importable — the CI `analyze` job pins it) and a
self-contained text frontend (tokenizer + scope tree + callgraph) that
keeps the passes runnable on machines without libclang.

Run as `python3 -m tools.analyze` or `python3 tools/analyze`.
"""

__version__ = "1.0"
