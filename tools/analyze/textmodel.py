"""Self-contained C++ micro-frontend.

Builds the ProjectModel the passes consume — source files with
comment/string-stripped text, class spans with member inventories,
function definitions with body spans and call lists, OpenMP directives
with their region spans — using a tokenizer and a brace-scope tree, no
compiler needed. The clang.cindex frontend (clangfrontend.py), when
available, REPLACES the function/call/directive layer with AST-derived
data; the class/member/lock layer is always produced here.

This is deliberately an over-approximating parser: template bodies,
both branches of preprocessor conditionals, and lambda bodies are all
scanned. Passes that walk the callgraph resolve calls by base name to
every project definition of that name — conservative in the direction
that surfaces findings.
"""

from __future__ import annotations

import bisect
import json
import re
from dataclasses import dataclass, field
from pathlib import Path

TOKEN_RE = re.compile(
    r"[A-Za-z_]\w*|::|->|\+\+|--|<<|>>|<=|>=|==|!=|\|\||&&|"
    r"[-+*/%&|^!~<>=?.,;:{}()\[\]#\\@]")

KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
    "new", "delete", "do", "else", "case", "default", "goto", "throw",
    "static_assert", "decltype", "alignas", "operator", "template",
    "typename", "using", "namespace", "class", "struct", "enum", "union",
    "public", "private", "protected", "const", "constexpr", "static",
    "inline", "virtual", "explicit", "friend", "typedef", "noexcept",
    "static_cast", "reinterpret_cast", "const_cast", "dynamic_cast",
}

CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\(")

ANNOTATION_RE = re.compile(
    r"//\s*analyze-safe\(([a-z*-]+)\)\s*:\s*(\S.*)")


@dataclass
class Directive:
    """One `#pragma omp ...` directive (or LQCD_PRAGMA_SIMD use)."""
    path: Path
    line: int            # 1-based, first line of the directive
    text: str            # continuation-joined, whitespace-normalized
    body: tuple[int, int]  # 1-based inclusive span of the region body


@dataclass
class FunctionInfo:
    name: str
    cls: str | None      # enclosing or qualifying class, if any
    path: Path
    line: int
    body: tuple[int, int]
    # (callee base name, line, receiver identifier or "")
    calls: list[tuple[str, int, str]] = field(default_factory=list)
    annotations: dict[str, str] = field(default_factory=dict)

    @property
    def qual(self) -> str:
        return f"{self.cls}::{self.name}" if self.cls else self.name


@dataclass
class ClassInfo:
    name: str
    path: Path
    line: int
    span: tuple[int, int]          # 1-based inclusive, including braces
    statements: list[tuple[int, str]] = field(default_factory=list)
    members: set[str] = field(default_factory=set)
    mutexes: set[str] = field(default_factory=set)
    cvs: set[str] = field(default_factory=set)
    atomics: set[str] = field(default_factory=set)


@dataclass
class SourceFile:
    path: Path
    raw_lines: list[str]
    lines: list[str]               # comment/string-stripped, same count
    directives: list[Directive] = field(default_factory=list)
    simd_regions: list[Directive] = field(default_factory=list)
    includes: list[str] = field(default_factory=list)


@dataclass
class ProjectModel:
    root: Path
    files: dict[Path, SourceFile] = field(default_factory=dict)
    functions: list[FunctionInfo] = field(default_factory=list)
    classes: list[ClassInfo] = field(default_factory=list)
    compile_db: list[dict] = field(default_factory=list)
    frontend: str = "text"

    def by_name(self) -> dict[str, list[FunctionInfo]]:
        out: dict[str, list[FunctionInfo]] = {}
        for f in self.functions:
            out.setdefault(f.name, []).append(f)
        return out

    def functions_in(self, path: Path) -> list[FunctionInfo]:
        return [f for f in self.functions if f.path == path]

    def classes_in(self, path: Path) -> list[ClassInfo]:
        return [c for c in self.classes if c.path == path]


def strip_comments(text: str) -> str:
    """Blank out // and /* */ comments and string/char literals,
    preserving line structure so reported line numbers stay correct."""
    out, i, n = [], 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            out.append("\n" * text.count("\n", i, j + 2))
            i = j + 2
        elif c in "\"'":
            q, j = c, i + 1
            while j < n and text[j] != q:
                j += 2 if text[j] == "\\" else 1
            out.append(q + q)
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def _line_starts(text: str) -> list[int]:
    starts = [0]
    for i, c in enumerate(text):
        if c == "\n":
            starts.append(i + 1)
    return starts


def _line_of(starts: list[int], offset: int) -> int:
    return bisect.bisect_right(starts, offset)  # 1-based


class _Tok:
    __slots__ = ("s", "pos", "line")

    def __init__(self, s: str, pos: int, line: int):
        self.s, self.pos, self.line = s, pos, line


def _tokenize(text: str) -> list[_Tok]:
    starts = _line_starts(text)
    return [_Tok(m.group(0), m.start(), _line_of(starts, m.start()))
            for m in TOKEN_RE.finditer(text)]


def _match_braces(toks: list[_Tok]) -> dict[int, int]:
    """Token-index map from every '{' to its matching '}'."""
    pairs: dict[int, int] = {}
    stack: list[int] = []
    for i, t in enumerate(toks):
        if t.s == "{":
            stack.append(i)
        elif t.s == "}" and stack:
            pairs[stack.pop()] = i
    return pairs


def _body_after(lines: list[str], start: int, max_lines: int = 400
                ) -> tuple[int, int]:
    """1-based inclusive line span of the statement following line index
    `start` (0-based, a pragma line): the brace-matched block, or up to
    the first top-level ';' (a braceless loop body)."""
    depth, paren, opened = 0, 0, False
    first = start + 1
    i = first
    while i < len(lines) and i <= start + max_lines:
        for ch in lines[i]:
            if ch == "{":
                depth += 1
                opened = True
            elif ch == "}":
                depth -= 1
                if opened and depth <= 0:
                    return (first + 1, i + 1)
            elif ch == "(":
                paren += 1
            elif ch == ")":
                paren -= 1
            elif ch == ";" and not opened and depth == 0 and paren == 0:
                return (first + 1, i + 1)
        i += 1
    return (first + 1, min(i, len(lines)))


_FN_TRAILERS = {"const", "noexcept", "override", "final", "mutable", "&",
                "&&", "throw", "->", "try", "requires"}

_MUTEX_DECL_RE = re.compile(
    r"(?:mutable\s+)?std\s*::\s*(?:recursive_|timed_|shared_)*mutex\s+"
    r"(\w+)\s*(?:;|=|\{)")
_CV_DECL_RE = re.compile(
    r"std\s*::\s*condition_variable(?:_any)?\s+(\w+)\s*(?:;|=|\{)")
_ATOMIC_DECL_RE = re.compile(
    r"std\s*::\s*atomic(?:_\w+|\s*<[^;]*>)?\s+(\w+)\s*(?:;|=|\{)")
_MEMBER_NAME_RE = re.compile(r"\b([A-Za-z]\w*_)\s*(?:;|=[^=]|\{|\[)")


def _parse_file(path: Path, text: str) -> tuple[SourceFile,
                                                list[FunctionInfo],
                                                list[ClassInfo]]:
    raw_lines = text.splitlines()
    cleaned = strip_comments(text)
    lines = cleaned.splitlines()
    while len(lines) < len(raw_lines):
        lines.append("")
    sf = SourceFile(path=path, raw_lines=raw_lines, lines=lines)

    for ln, line in enumerate(lines, 1):
        m = re.match(r'\s*#\s*include\s+"([^"]+)"', line)
        if m:
            sf.includes.append(m.group(1))

    _collect_directives(sf)

    toks = _tokenize(cleaned)
    braces = _match_braces(toks)
    classes = _collect_classes(path, toks, braces, lines)
    functions = _collect_functions(path, toks, braces, classes, lines,
                                   raw_lines)
    return sf, functions, classes


def _collect_directives(sf: SourceFile) -> None:
    lines = sf.lines
    i = 0
    while i < len(lines):
        stripped = lines[i].strip()
        if re.match(r"#\s*pragma\s+omp\b", stripped):
            joined = [stripped]
            end = i
            while lines[end].rstrip().endswith("\\") and end + 1 < len(lines):
                end += 1
                joined.append(lines[end].strip())
            text = " ".join(p.rstrip("\\").strip() for p in joined)
            text = re.sub(r"\s+", " ", text)
            sf.directives.append(Directive(
                path=sf.path, line=i + 1, text=text,
                body=_body_after(lines, end)))
            i = end + 1
            continue
        if ("LQCD_PRAGMA_SIMD" in lines[i]
                and "define" not in lines[i]):
            sf.simd_regions.append(Directive(
                path=sf.path, line=i + 1, text="LQCD_PRAGMA_SIMD",
                body=_body_after(lines, i, max_lines=80)))
        i += 1


def _collect_classes(path: Path, toks: list[_Tok], braces: dict[int, int],
                     lines: list[str]) -> list[ClassInfo]:
    classes: list[ClassInfo] = []
    n = len(toks)
    for i, t in enumerate(toks):
        if t.s not in ("class", "struct"):
            continue
        if i > 0 and toks[i - 1].s == "enum":
            continue
        if i + 1 >= n or not re.match(r"[A-Za-z_]", toks[i + 1].s):
            continue
        name = toks[i + 1].s
        # Find the opening '{' of the class body before any ';' (forward
        # declarations) or '(' (e.g. `struct X x(...)` — not a def).
        j = i + 2
        while j < n and toks[j].s not in ("{", ";", "(", ")", "}"):
            j += 1
        if j >= n or toks[j].s != "{" or j not in braces:
            continue
        close = braces[j]
        cls = ClassInfo(name=name, path=path, line=t.line,
                        span=(t.line, toks[close].line))
        _collect_class_statements(cls, toks, braces, j, close)
        classes.append(cls)
    return classes


def _collect_class_statements(cls: ClassInfo, toks: list[_Tok],
                              braces: dict[int, int], open_i: int,
                              close_i: int) -> None:
    """Class-scope declaration statements: everything at depth
    class+1, with nested braced bodies (member functions, nested
    classes, brace initializers) skipped."""
    stmt: list[str] = []
    stmt_line = 0
    i = open_i + 1
    while i < close_i:
        t = toks[i]
        if t.s == "{":
            # A member-function body, nested class, or brace init —
            # skip it wholesale; the statement ends here for bodies.
            i = braces.get(i, close_i) + 1
            if stmt:
                cls.statements.append((stmt_line, " ".join(stmt)))
                stmt = []
            continue
        if t.s == ";":
            if stmt:
                cls.statements.append((stmt_line, " ".join(stmt) + " ;"))
                stmt = []
            i += 1
            continue
        if not stmt:
            stmt_line = t.line
        stmt.append(t.s)
        i += 1

    for line, text in cls.statements:
        del line
        # Brace initializers are flushed out of the statement text, so
        # re-terminate before matching declaration patterns.
        text = text if text.rstrip().endswith(";") else text + " ;"
        for regex, bucket in ((_MUTEX_DECL_RE, cls.mutexes),
                              (_CV_DECL_RE, cls.cvs),
                              (_ATOMIC_DECL_RE, cls.atomics)):
            m = regex.search(text)
            if m:
                bucket.add(m.group(1))
        m = _MEMBER_NAME_RE.search(text)
        if m:
            cls.members.add(m.group(1))


def _collect_functions(path: Path, toks: list[_Tok], braces: dict[int, int],
                       classes: list[ClassInfo], lines: list[str],
                       raw_lines: list[str]) -> list[FunctionInfo]:
    functions: list[FunctionInfo] = []
    n = len(toks)
    # Paren matching (token indices).
    paren_pairs: dict[int, int] = {}
    pstack: list[int] = []
    for i, t in enumerate(toks):
        if t.s == "(":
            pstack.append(i)
        elif t.s == ")" and pstack:
            paren_pairs[pstack.pop()] = i

    annotations = _collect_annotations(raw_lines)

    for i, t in enumerate(toks):
        if t.s != "(" or i == 0:
            continue
        name_tok = toks[i - 1]
        if not re.match(r"[A-Za-z_]", name_tok.s) or name_tok.s in KEYWORDS:
            continue
        if i >= 2 and toks[i - 2].s in ("new", "operator", "#", "return",
                                        "case", "throw", "goto", "=", ",",
                                        "(", "[", "&&", "||", "!", "<<",
                                        ">>", "+", "-", "/", "?", ":"):
            continue
        close = paren_pairs.get(i)
        if close is None:
            continue
        body_open = _find_body_open(toks, paren_pairs, braces, close, n)
        if body_open is None:
            continue
        body_close = braces.get(body_open)
        if body_close is None:
            continue
        cls_name = _qualifying_class(toks, i - 1, name_tok.line, classes)
        fn = FunctionInfo(
            name=name_tok.s, cls=cls_name, path=path, line=name_tok.line,
            body=(toks[body_open].line, toks[body_close].line))
        fn.annotations = annotations_for(fn.line, raw_lines, annotations)
        _collect_calls(fn, lines)
        functions.append(fn)
    return functions


def _find_body_open(toks: list[_Tok], paren_pairs: dict[int, int],
                    braces: dict[int, int], close: int, n: int
                    ) -> int | None:
    """From the ')' ending a parameter list, walk the legal trailers
    (const/noexcept/ctor-init-list/trailing-return) to the body '{'.
    Returns None when this is not a function definition."""
    j = close + 1
    budget = 400
    in_init_list = False
    while j < n and budget > 0:
        budget -= 1
        s = toks[j].s
        if s == "{":
            if in_init_list and j > 0 and \
                    re.match(r"[A-Za-z_]", toks[j - 1].s) and \
                    toks[j - 1].s not in KEYWORDS:
                # `member{init}` inside a ctor init list — skip it; the
                # body '{' follows a ')' or '}' instead.
                j = braces.get(j, n) + 1
                continue
            return j
        if s == ";" or s == "=":
            return None  # declaration / deleted / pure virtual
        if s == ":":
            in_init_list = True
            j += 1
            continue
        if in_init_list:
            if s == "(":
                j = paren_pairs.get(j, n) + 1
                continue
            j += 1
            continue
        if s in _FN_TRAILERS or re.match(r"[A-Za-z_]", s) or s in ("::",
                                                                   "<", ">",
                                                                   ",", "*",
                                                                   "&"):
            if s in ("noexcept", "throw", "requires") and j + 1 < n and \
                    toks[j + 1].s == "(":
                j = paren_pairs.get(j + 1, n) + 1
                continue
            j += 1
            continue
        return None
    return None


def _qualifying_class(toks: list[_Tok], name_i: int, line: int,
                      classes: list[ClassInfo]) -> str | None:
    # Out-of-line `Cls::name(...)`.
    if name_i >= 2 and toks[name_i - 1].s == "::" and \
            re.match(r"[A-Za-z_]", toks[name_i - 2].s):
        return toks[name_i - 2].s
    # In-class definition: the innermost class span containing the line.
    best: ClassInfo | None = None
    for c in classes:
        if c.span[0] <= line <= c.span[1]:
            if best is None or (c.span[1] - c.span[0]) < \
                    (best.span[1] - best.span[0]):
                best = c
    return best.name if best else None


_RECEIVER_RE = re.compile(r"([A-Za-z_]\w*)\s*(?:\.|->)\s*$")


def call_receiver(text: str, name_start: int) -> str:
    """Receiver of a member call: the identifier before `.` / `->`,
    '<expr>' for a complex receiver (`blocks[chi]->apply(...)`), or ''
    when the call is genuinely unqualified. The distinction matters:
    only unqualified calls get member-first (this->) resolution."""
    prefix = text[:name_start].rstrip()
    if not prefix.endswith((".", "->")):
        return ""
    m = _RECEIVER_RE.search(text[:name_start])
    return m.group(1) if m else "<expr>"


def _collect_calls(fn: FunctionInfo, lines: list[str]) -> None:
    lo, hi = fn.body
    for ln in range(lo, min(hi, len(lines)) + 1):
        text = lines[ln - 1]
        for m in CALL_RE.finditer(text):
            name = m.group(1)
            if name in KEYWORDS:
                continue
            fn.calls.append((name, ln, call_receiver(text, m.start(1))))


def _collect_annotations(raw_lines: list[str]) -> dict[int, tuple[str, str]]:
    """`// analyze-safe(<pass>): <justification>` markers, by line."""
    out: dict[int, tuple[str, str]] = {}
    for ln, line in enumerate(raw_lines, 1):
        m = ANNOTATION_RE.search(line)
        if m:
            out[ln] = (m.group(1), m.group(2).strip())
    return out


def annotations_for(fn_line: int, raw_lines: list[str],
                    annotations: dict[int, tuple[str, str]]
                    ) -> dict[str, str]:
    """Annotations attached to the definition at `fn_line`: on the line
    itself, or anywhere in the contiguous comment/blank block directly
    above it (a marker inside a multi-line doc comment still binds)."""
    out: dict[str, str] = {}
    if fn_line in annotations:
        p, just = annotations[fn_line]
        out[p] = just
    ln = fn_line - 1
    while ln >= 1 and fn_line - ln <= 12:
        stripped = raw_lines[ln - 1].strip() if ln - 1 < len(raw_lines) \
            else ""
        if not (stripped == "" or stripped.startswith("//") or
                stripped.startswith("*") or stripped.startswith("/*")):
            break
        if ln in annotations:
            p, just = annotations[ln]
            out.setdefault(p, just)
        ln -= 1
    return out


def load_compile_db(path: Path) -> list[dict]:
    with open(path, "r", encoding="utf-8") as f:
        db = json.load(f)
    if not isinstance(db, list):
        raise ValueError(f"{path}: compile_commands.json must be a list")
    return db


def tu_command(entry: dict) -> str:
    if "command" in entry:
        return entry["command"]
    return " ".join(entry.get("arguments", []))


def tu_path(entry: dict) -> Path:
    p = Path(entry["file"])
    if not p.is_absolute():
        p = Path(entry.get("directory", ".")) / p
    return p.resolve()


def build_model(root: Path, compile_db: list[dict]) -> ProjectModel:
    """Project files = every TU under `root` from the compile DB, plus
    every header under root/src (or under root when there is no src/ —
    the fixture-corpus shape)."""
    model = ProjectModel(root=root.resolve(), compile_db=compile_db)
    # Product scope: src/ when the root has one (the repo shape; tests
    # and benches deliberately poke serial APIs), the whole root
    # otherwise (the fixture-corpus shape).
    scope = model.root / "src" if (model.root / "src").is_dir() \
        else model.root
    paths: list[Path] = []
    for entry in compile_db:
        p = tu_path(entry)
        if scope in p.parents:
            paths.append(p)
    paths.extend(sorted(scope.rglob("*.h")))
    seen: set[Path] = set()
    for p in paths:
        p = p.resolve()
        if p in seen or not p.exists():
            continue
        seen.add(p)
        sf, fns, classes = _parse_file(p, p.read_text())
        model.files[p] = sf
        model.functions.extend(fns)
        model.classes.extend(classes)
    return model
