"""Findings and the shared justified-suppression mechanism.

Suppression file format is identical to tools/lqcd_lint.py (and the
default file IS tools/lint_suppressions.txt, so both analysis tiers
share one registry):

    <rule>:<path>[:<line>]  # <justification — mandatory>

An entry without a justification is itself an error (exit 2).
"""

from __future__ import annotations

import sys
from pathlib import Path


class Finding:
    def __init__(self, rule: str, path: Path, line: int, msg: str):
        self.rule = rule
        self.path = Path(path)
        self.line = line
        self.msg = msg

    def key(self) -> tuple:
        return (self.rule, str(self.path), self.line, self.msg)

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.msg}"

    def to_json(self) -> dict:
        return {"rule": self.rule, "path": str(self.path), "line": self.line,
                "msg": self.msg}


def relativize(findings: list[Finding], root: Path) -> None:
    """Report paths relative to `root` (the suppression-file convention)."""
    for f in findings:
        try:
            f.path = f.path.resolve().relative_to(root.resolve())
        except ValueError:
            pass  # outside the root (e.g. a generated compile DB entry)


def load_suppressions(path: Path) -> tuple[list[tuple], int]:
    entries: list[tuple] = []
    errors = 0
    if not path.exists():
        return entries, errors
    for ln, raw in enumerate(path.read_text().splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if "#" not in line or not line.split("#", 1)[1].strip():
            print(f"{path}:{ln}: suppression without a justification",
                  file=sys.stderr)
            errors += 1
            continue
        spec = line.split("#", 1)[0].strip()
        parts = spec.split(":")
        rule = parts[0]
        file_part = parts[1] if len(parts) > 1 else "*"
        line_part = int(parts[2]) if len(parts) > 2 else None
        entries.append((rule, file_part, line_part))
    return entries, errors


def suppressed(f: Finding, entries: list[tuple]) -> bool:
    for rule, file_part, line_part in entries:
        if rule not in ("*", f.rule):
            continue
        if file_part not in ("*", str(f.path)):
            continue
        if line_part is not None and line_part != f.line:
            continue
        return True
    return False
