#!/usr/bin/env python3
"""Repo-specific lint for the lattice-QCD DD codebase.

Enforces invariants no generic tool knows about (see DESIGN.md
"Concurrency & static-analysis gates"):

  pragma-once          every header under src/ starts with #pragma once.
  include-exists       every #include "lqcd/..." resolves under src/.
  omp-include-guard    #include <omp.h> only inside an
                       `#if defined(LQCD_HAVE_OPENMP)` block.
  naked-alloc          no naked new/delete/malloc/free in src/ — buffers
                       go through base/aligned.h or std containers.
  simd-opaque-call     LQCD_PRAGMA_SIMD loop bodies must stay
                       vectorizable: no opaque function calls, no throw.
  parallel-fault-hook  no serial FaultInjector hooks or shared stats
                       mutation inside `omp parallel` regions — only the
                       blessed ParallelFaultScope / per-thread shard API.
  ci-label-check       every ctest -L label referenced in ci.yml exists
                       in tests/CMakeLists.txt or bench/CMakeLists.txt.
  ci-label-coverage    the reverse: every label registered in tests/ or
                       bench/ CMakeLists.txt is exercised by at least one
                       `ctest -L` leg in ci.yml, so a new suite (e.g.
                       `abft`) cannot silently dodge the label-restricted
                       sanitizer legs.
  service-header-test  every public header under src/lqcd/service/ is
                       #include'd by at least one test under tests/ —
                       the serving layer's label coverage stays honest
                       only if each of its headers is actually exercised.
  simd-containment     x86 intrinsics (<immintrin.h>, _mm*/_mm256*/
                       _mm512* calls, __m128/__m256/__m512 types) live
                       only under src/lqcd/simd/ — everything else goes
                       through the runtime-dispatch table.
  simd-dispatch-include  code outside src/lqcd/simd/ includes only
                       "lqcd/simd/dispatch.h", never a concrete backend
                       header — backend selection is a runtime decision,
                       not a compile-time include choice.
  simd-ci-leg-check    every LQCD_SIMD_BACKEND value forced by a ci.yml
                       leg names a backend known to dispatch.cpp, and
                       the scalar and avx2 backends each have a forcing
                       leg — so no dispatch backend can silently drop
                       out of CI.
  analyze-ci-job-check ci.yml keeps an `analyze` job that runs the
                       semantic tier (tools/analyze) — the deep
                       callgraph/lock/FP checks cannot be silently
                       dropped from CI.

Suppressions: tools/lint_suppressions.txt, one per line,
    <rule>:<path>[:<line>]  # <justification>
The justification is mandatory; an unjustified entry is itself an error.
Exit status: 0 clean, 1 findings, 2 bad invocation/suppression file.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

# Calls considered transparent to the vectorizer inside LQCD_PRAGMA_SIMD
# bodies: casts, tiny always-inlined lane helpers, and intrinsics-like
# std math that gcc vectorizes.
SIMD_CALL_WHITELIST = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof",
    "static_cast", "reinterpret_cast", "const_cast", "decltype",
    "float", "double", "int", "Complex",
    "fmaf", "fma", "fabsf", "fabs", "sqrtf", "sqrt", "min", "max",
}

CTEST_LABEL_RE = re.compile(r"ctest[^\n]*?-L\s+\"?([A-Za-z0-9_|]+)\"?")
CALL_RE = re.compile(r"\b([A-Za-z_][A-Za-z0-9_]*)\s*\(")
SERIAL_HOOK_RE = re.compile(
    r"\b([A-Za-z_][A-Za-z0-9_]*)\s*(?:->|\.)\s*"
    r"(maybe_fault|maybe_corrupt|maybe_corrupt_reals|should_fire|"
    r"note_opportunity|record_event)\s*\(")
SHARED_STATS_RE = re.compile(
    r"(\+\+\s*stats_\s*\.|stats_\s*\.\s*\w+\s*(\+=|=|\+\+)|"
    r"\+\+\s*comm_stats_\s*\.|comm_stats_\s*\.\s*\w+\s*(\+=|=|\+\+))")


class Finding:
    def __init__(self, rule: str, path: Path, line: int, msg: str):
        self.rule = rule
        self.path = path.relative_to(REPO)
        self.line = line
        self.msg = msg

    def key(self) -> tuple:
        return (self.rule, str(self.path), self.line)

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.msg}"


def strip_comments(text: str) -> str:
    """Blank out // and /* */ comments and string literals, preserving
    line structure so reported line numbers stay correct."""
    out, i, n = [], 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            out.append("\n" * text.count("\n", i, j + 2))
            i = j + 2
        elif c in "\"'":
            q, j = c, i + 1
            while j < n and text[j] != q:
                j += 2 if text[j] == "\\" else 1
            out.append(q + q)
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def body_after(lines: list[str], start: int, max_lines: int = 400) -> list[int]:
    """Line indices of the statement following `start` (a pragma line):
    the brace-matched block, or until the first top-level ';'."""
    depth, paren, opened, out = 0, 0, False, []
    i = start + 1
    while i < len(lines) and i <= start + max_lines:
        line = lines[i]
        out.append(i)
        for ch in line:
            if ch == "{":
                depth += 1
                opened = True
            elif ch == "}":
                depth -= 1
                if opened and depth <= 0:
                    return out
            elif ch == "(":
                paren += 1
            elif ch == ")":
                paren -= 1
            elif (ch == ";" and not opened and depth == 0 and paren == 0):
                # Statement end outside any parens/braces: a braceless
                # single-statement body (the for-header ';'s sit inside
                # its parens and don't trigger this).
                return out
        i += 1
    return out


def iter_source(globs: tuple[str, ...]) -> list[Path]:
    files: list[Path] = []
    for g in globs:
        files.extend(sorted(SRC.rglob(g)))
    return files


def check_headers(findings: list[Finding]) -> None:
    for path in iter_source(("*.h",)):
        text = path.read_text()
        code = strip_comments(text)
        first = next((ln for ln in code.splitlines() if ln.strip()), "")
        if first.strip() != "#pragma once":
            line = 1 + code.splitlines().index(first) if first else 1
            findings.append(Finding("pragma-once", path, line,
                                    "header must start with #pragma once"))


def check_includes(findings: list[Finding]) -> None:
    inc_re = re.compile(r'#\s*include\s+"(lqcd/[^"]+)"')
    for path in iter_source(("*.h", "*.cpp")):
        for ln, line in enumerate(path.read_text().splitlines(), 1):
            m = inc_re.search(line)
            if m and not (SRC / m.group(1)).exists():
                findings.append(Finding("include-exists", path, ln,
                                        f'#include "{m.group(1)}" not found '
                                        "under src/"))


def check_omp_guard(findings: list[Finding]) -> None:
    for path in iter_source(("*.h", "*.cpp")):
        lines = strip_comments(path.read_text()).splitlines()
        depth_omp = 0
        for ln, line in enumerate(lines, 1):
            s = line.strip()
            if s.startswith("#if") :
                depth_omp += 1 if "LQCD_HAVE_OPENMP" in s or depth_omp else 0
                # Track nesting only once inside an OpenMP guard.
                if "LQCD_HAVE_OPENMP" in s and depth_omp == 0:
                    depth_omp = 1
            elif s.startswith("#endif") and depth_omp:
                depth_omp -= 1
            if "<omp.h>" in s and not depth_omp:
                findings.append(Finding(
                    "omp-include-guard", path, ln,
                    "#include <omp.h> outside #if defined(LQCD_HAVE_OPENMP)"))


def check_naked_alloc(findings: list[Finding]) -> None:
    pat = re.compile(r"(?<![\w.])(new\s+[A-Za-z_]|new\s*\[|delete\s|"
                     r"delete\s*\[|malloc\s*\(|free\s*\(|posix_memalign)")
    for path in iter_source(("*.h", "*.cpp")):
        code = strip_comments(path.read_text())
        for ln, line in enumerate(code.splitlines(), 1):
            if pat.search(line):
                findings.append(Finding(
                    "naked-alloc", path, ln,
                    "raw allocation — use base/aligned.h (AlignedVector) "
                    "or a std container"))


def check_simd_bodies(findings: list[Finding]) -> None:
    for path in iter_source(("*.h", "*.cpp")):
        lines = strip_comments(path.read_text()).splitlines()
        for i, line in enumerate(lines):
            if "LQCD_PRAGMA_SIMD" not in line or "define" in line:
                continue
            for j in body_after(lines, i, max_lines=60):
                body_line = lines[j]
                if re.search(r"\bthrow\b", body_line):
                    findings.append(Finding(
                        "simd-opaque-call", path, j + 1,
                        "throw inside an LQCD_PRAGMA_SIMD loop body"))
                for m in CALL_RE.finditer(body_line):
                    name = m.group(1)
                    if name not in SIMD_CALL_WHITELIST:
                        findings.append(Finding(
                            "simd-opaque-call", path, j + 1,
                            f"opaque call '{name}()' inside an "
                            "LQCD_PRAGMA_SIMD loop body defeats "
                            "vectorization"))


def check_parallel_fault_hooks(findings: list[Finding]) -> None:
    pragma_re = re.compile(r"#\s*pragma\s+omp\s+parallel\b")
    for path in iter_source(("*.h", "*.cpp")):
        lines = strip_comments(path.read_text()).splitlines()
        for i, line in enumerate(lines):
            if not pragma_re.search(line):
                continue
            for j in body_after(lines, i):
                body_line = lines[j]
                for m in SERIAL_HOOK_RE.finditer(body_line):
                    receiver = m.group(1)
                    if "scope" in receiver.lower():
                        continue  # blessed ParallelFaultScope receiver
                    findings.append(Finding(
                        "parallel-fault-hook", path, j + 1,
                        f"serial fault hook '{receiver}->{m.group(2)}()' "
                        "inside an omp parallel region — use "
                        "ParallelFaultScope (resilience/fault_injector.h)"))
                if SHARED_STATS_RE.search(body_line):
                    findings.append(Finding(
                        "parallel-fault-hook", path, j + 1,
                        "shared stats member mutated inside an omp "
                        "parallel region — accumulate into a per-thread "
                        "shard and merge at region exit"))


def check_ci_labels(findings: list[Finding]) -> None:
    ci = REPO / ".github" / "workflows" / "ci.yml"
    if not ci.exists():
        return
    known: set[str] = set()
    label_re = re.compile(
        r'(?:lqcd_add_test\(\S+[ \t]+|LABELS[ \t]+)"?([A-Za-z0-9_;]+)"?\)?')
    for cml in (REPO / "tests" / "CMakeLists.txt",
                REPO / "bench" / "CMakeLists.txt"):
        if cml.exists():
            for m in label_re.finditer(cml.read_text()):
                known.update(m.group(1).split(";"))
    referenced: set[str] = set()
    for ln, line in enumerate(ci.read_text().splitlines(), 1):
        for m in CTEST_LABEL_RE.finditer(line):
            for label in m.group(1).split("|"):
                referenced.add(label)
                if label not in known:
                    findings.append(Finding(
                        "ci-label-check", ci, ln,
                        f"ctest label '{label}' referenced in ci.yml is "
                        "not registered in tests/ or bench/ "
                        "CMakeLists.txt"))
    # Reverse direction: a registered label that no `ctest -L` leg selects
    # means the suite never runs under the label-restricted CI legs.
    for label in sorted(known - referenced):
        findings.append(Finding(
            "ci-label-coverage", ci, 1,
            f"label '{label}' is registered in tests/ or bench/ "
            "CMakeLists.txt but no `ctest -L` leg in ci.yml exercises "
            "it — add it to a label expression (e.g. the sanitizer "
            "legs)"))


def check_service_header_tests(findings: list[Finding]) -> None:
    service_dir = SRC / "lqcd" / "service"
    if not service_dir.is_dir():
        return
    tested: set[str] = set()
    inc_re = re.compile(r'#\s*include\s+"(lqcd/service/[^"]+)"')
    for test in sorted((REPO / "tests").glob("test_*.cpp")):
        for m in inc_re.finditer(test.read_text()):
            tested.add(m.group(1))
    for header in sorted(service_dir.rglob("*.h")):
        rel = header.relative_to(SRC).as_posix()
        if rel not in tested:
            findings.append(Finding(
                "service-header-test", header, 1,
                f'"{rel}" is not #include\'d by any test under tests/ '
                "— a public service header must be exercised by at "
                "least one test carrying the `service` label"))


def iter_simd_scope() -> list[Path]:
    """Files the simd containment rules police: all of src/ plus the
    test and bench trees (kernels must not leak intrinsics anywhere)."""
    files = iter_source(("*.h", "*.cpp"))
    for d in (REPO / "tests", REPO / "bench"):
        if d.is_dir():
            files.extend(sorted(d.rglob("*.h")))
            files.extend(sorted(d.rglob("*.cpp")))
    return files


def check_simd_containment(findings: list[Finding]) -> None:
    simd_dir = SRC / "lqcd" / "simd"
    intrin_re = re.compile(
        r"(#\s*include\s*<(?:immintrin|x86intrin|[exsp]mmintrin|avx\w*)\.h>|"
        r"\b_mm(?:256|512)?_[a-z0-9_]+\s*\(|\b__m(?:128|256|512)[di]?\b)")
    for path in iter_simd_scope():
        if simd_dir in path.parents:
            continue
        code = strip_comments(path.read_text())
        for ln, line in enumerate(code.splitlines(), 1):
            m = intrin_re.search(line)
            if m:
                findings.append(Finding(
                    "simd-containment", path, ln,
                    f"x86 intrinsic '{m.group(1).strip()}' outside "
                    "src/lqcd/simd/ — call through "
                    "lqcd::simd::kernels() instead"))


def check_simd_dispatch_include(findings: list[Finding]) -> None:
    simd_dir = SRC / "lqcd" / "simd"
    inc_re = re.compile(r'#\s*include\s+"(lqcd/simd/[^"]+)"')
    for path in iter_simd_scope():
        if simd_dir in path.parents:
            continue
        for ln, line in enumerate(path.read_text().splitlines(), 1):
            m = inc_re.search(line)
            if m and m.group(1) != "lqcd/simd/dispatch.h":
                findings.append(Finding(
                    "simd-dispatch-include", path, ln,
                    f'#include "{m.group(1)}" outside src/lqcd/simd/ — '
                    "only lqcd/simd/dispatch.h is public; backend "
                    "selection happens at runtime"))


def check_simd_ci_legs(findings: list[Finding]) -> None:
    ci = REPO / ".github" / "workflows" / "ci.yml"
    dispatch = SRC / "lqcd" / "simd" / "dispatch.cpp"
    if not ci.exists() or not dispatch.exists():
        return
    known = set(re.findall(r'if\s*\(name\s*==\s*"([a-z0-9]+)"\)\s*return\s+'
                           r'Backend::', dispatch.read_text()))
    forced: set[str] = set()
    env_re = re.compile(r"LQCD_SIMD_BACKEND\s*[:=]\s*['\"]?([a-z0-9_.{$ }]+)")
    for ln, line in enumerate(ci.read_text().splitlines(), 1):
        m = env_re.search(line)
        if not m:
            continue
        value = m.group(1).strip().strip("'\"")
        if "$" in value:
            continue  # matrix expansion — the matrix axis lists the names
        forced.add(value)
        if value not in known:
            findings.append(Finding(
                "simd-ci-leg-check", ci, ln,
                f"ci.yml forces LQCD_SIMD_BACKEND={value}, which "
                "dispatch.cpp does not recognise (known: "
                f"{', '.join(sorted(known))})"))
    # Matrix axes like `backend: [scalar, avx2]` feed
    # LQCD_SIMD_BACKEND: ${{ matrix.backend }} — collect and validate
    # their values too.
    for ln, line in enumerate(ci.read_text().splitlines(), 1):
        m = re.search(r"backend:\s*\[([a-z0-9_, ]+)\]", line)
        if not m:
            continue
        for value in (v.strip() for v in m.group(1).split(",")):
            forced.add(value)
            if value not in known:
                findings.append(Finding(
                    "simd-ci-leg-check", ci, ln,
                    f"ci.yml simd matrix lists backend '{value}', which "
                    "dispatch.cpp does not recognise (known: "
                    f"{', '.join(sorted(known))})"))
    for backend in ("scalar", "avx2"):
        if backend in known and backend not in forced:
            findings.append(Finding(
                "simd-ci-leg-check", ci, 1,
                f"no ci.yml leg forces LQCD_SIMD_BACKEND={backend} — "
                "every universally-runnable backend needs a pinned CI "
                "leg (avx2 legs may skip-with-notice on old runners)"))


def check_analyze_ci_job(findings: list[Finding]) -> None:
    ci = REPO / ".github" / "workflows" / "ci.yml"
    if not ci.exists():
        return
    text = ci.read_text()
    has_job = re.search(r"^  analyze:\s*$", text, re.M) is not None
    runs_tool = "tools/analyze" in text
    if not (has_job and runs_tool):
        findings.append(Finding(
            "analyze-ci-job-check", ci, 1,
            "ci.yml has no `analyze` job running tools/analyze — the "
            "semantic tier (omp-audit, parallel-reachability, "
            "lock-discipline, fp-determinism, dispatch-completeness) "
            "must stay wired into CI"))


def load_suppressions(path: Path) -> tuple[list[tuple], int]:
    entries: list[tuple] = []
    errors = 0
    if not path.exists():
        return entries, errors
    for ln, raw in enumerate(path.read_text().splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if "#" not in line or not line.split("#", 1)[1].strip():
            try:
                shown = path.relative_to(REPO)
            except ValueError:
                shown = path
            print(f"{shown}:{ln}: suppression without a "
                  "justification", file=sys.stderr)
            errors += 1
            continue
        spec = line.split("#", 1)[0].strip()
        parts = spec.split(":")
        rule = parts[0]
        file_part = parts[1] if len(parts) > 1 else "*"
        line_part = int(parts[2]) if len(parts) > 2 else None
        entries.append((rule, file_part, line_part))
    return entries, errors


def suppressed(f: Finding, entries: list[tuple]) -> bool:
    for rule, file_part, line_part in entries:
        if rule not in ("*", f.rule):
            continue
        if file_part not in ("*", str(f.path)):
            continue
        if line_part is not None and line_part != f.line:
            continue
        return True
    return False


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=None,
                    help="lint this tree instead of the repo (fixture "
                         "corpora under tests/tools/ use this); must "
                         "contain a src/ directory")
    ap.add_argument("--suppressions", default=None,
                    help="suppression registry (default: "
                         "ROOT/tools/lint_suppressions.txt)")
    args = ap.parse_args()

    global REPO, SRC
    if args.root is not None:
        REPO = Path(args.root).resolve()
        SRC = REPO / "src"
        if not SRC.is_dir():
            print(f"lqcd_lint: {SRC} is not a directory", file=sys.stderr)
            return 2
    sup_path = Path(args.suppressions) if args.suppressions else \
        REPO / "tools" / "lint_suppressions.txt"

    entries, supp_errors = load_suppressions(sup_path)
    if supp_errors:
        return 2

    findings: list[Finding] = []
    check_headers(findings)
    check_includes(findings)
    check_omp_guard(findings)
    check_naked_alloc(findings)
    check_simd_bodies(findings)
    check_parallel_fault_hooks(findings)
    check_ci_labels(findings)
    check_service_header_tests(findings)
    check_simd_containment(findings)
    check_simd_dispatch_include(findings)
    check_simd_ci_legs(findings)
    check_analyze_ci_job(findings)

    shown = [f for f in findings if not suppressed(f, entries)]
    for f in sorted(shown, key=Finding.key):
        print(f)
    n_supp = len(findings) - len(shown)
    print(f"lqcd_lint: {len(shown)} finding(s), {n_supp} suppressed",
          file=sys.stderr)
    return 1 if shown else 0


if __name__ == "__main__":
    sys.exit(main())
