# Empty dependencies file for bench_fig7_cost.
# This may be replaced when dependencies are built.
