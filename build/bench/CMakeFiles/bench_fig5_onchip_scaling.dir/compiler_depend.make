# Empty compiler generated dependencies file for bench_fig5_onchip_scaling.
# This may be replaced when dependencies are built.
