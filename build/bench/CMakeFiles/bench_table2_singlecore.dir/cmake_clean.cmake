file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_singlecore.dir/bench_table2_singlecore.cpp.o"
  "CMakeFiles/bench_table2_singlecore.dir/bench_table2_singlecore.cpp.o.d"
  "bench_table2_singlecore"
  "bench_table2_singlecore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_singlecore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
