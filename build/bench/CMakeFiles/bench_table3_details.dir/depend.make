# Empty dependencies file for bench_table3_details.
# This may be replaced when dependencies are built.
