file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_details.dir/bench_table3_details.cpp.o"
  "CMakeFiles/bench_table3_details.dir/bench_table3_details.cpp.o.d"
  "bench_table3_details"
  "bench_table3_details.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_details.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
