file(REMOVE_RECURSE
  "CMakeFiles/test_tile.dir/test_tile.cpp.o"
  "CMakeFiles/test_tile.dir/test_tile.cpp.o.d"
  "test_tile"
  "test_tile.pdb"
  "test_tile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
