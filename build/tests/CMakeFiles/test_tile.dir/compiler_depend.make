# Empty compiler generated dependencies file for test_tile.
# This may be replaced when dependencies are built.
