file(REMOVE_RECURSE
  "CMakeFiles/test_virtual_grid.dir/test_virtual_grid.cpp.o"
  "CMakeFiles/test_virtual_grid.dir/test_virtual_grid.cpp.o.d"
  "test_virtual_grid"
  "test_virtual_grid.pdb"
  "test_virtual_grid[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_virtual_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
