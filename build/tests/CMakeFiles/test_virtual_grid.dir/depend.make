# Empty dependencies file for test_virtual_grid.
# This may be replaced when dependencies are built.
