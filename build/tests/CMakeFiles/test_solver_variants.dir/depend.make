# Empty dependencies file for test_solver_variants.
# This may be replaced when dependencies are built.
