file(REMOVE_RECURSE
  "CMakeFiles/test_solver_variants.dir/test_solver_variants.cpp.o"
  "CMakeFiles/test_solver_variants.dir/test_solver_variants.cpp.o.d"
  "test_solver_variants"
  "test_solver_variants.pdb"
  "test_solver_variants[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_solver_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
