file(REMOVE_RECURSE
  "CMakeFiles/test_gamma.dir/test_gamma.cpp.o"
  "CMakeFiles/test_gamma.dir/test_gamma.cpp.o.d"
  "test_gamma"
  "test_gamma.pdb"
  "test_gamma[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gamma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
