# Empty compiler generated dependencies file for test_gamma.
# This may be replaced when dependencies are built.
