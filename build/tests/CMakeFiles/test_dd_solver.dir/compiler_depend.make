# Empty compiler generated dependencies file for test_dd_solver.
# This may be replaced when dependencies are built.
