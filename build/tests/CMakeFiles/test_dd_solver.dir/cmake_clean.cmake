file(REMOVE_RECURSE
  "CMakeFiles/test_dd_solver.dir/test_dd_solver.cpp.o"
  "CMakeFiles/test_dd_solver.dir/test_dd_solver.cpp.o.d"
  "test_dd_solver"
  "test_dd_solver.pdb"
  "test_dd_solver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dd_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
