file(REMOVE_RECURSE
  "CMakeFiles/test_clover_block.dir/test_clover_block.cpp.o"
  "CMakeFiles/test_clover_block.dir/test_clover_block.cpp.o.d"
  "test_clover_block"
  "test_clover_block.pdb"
  "test_clover_block[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clover_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
