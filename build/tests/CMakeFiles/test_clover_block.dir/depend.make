# Empty dependencies file for test_clover_block.
# This may be replaced when dependencies are built.
