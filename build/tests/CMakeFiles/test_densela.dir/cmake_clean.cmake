file(REMOVE_RECURSE
  "CMakeFiles/test_densela.dir/test_densela.cpp.o"
  "CMakeFiles/test_densela.dir/test_densela.cpp.o.d"
  "test_densela"
  "test_densela.pdb"
  "test_densela[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_densela.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
