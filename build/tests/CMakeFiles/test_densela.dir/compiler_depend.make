# Empty compiler generated dependencies file for test_densela.
# This may be replaced when dependencies are built.
