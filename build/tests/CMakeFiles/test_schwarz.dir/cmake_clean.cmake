file(REMOVE_RECURSE
  "CMakeFiles/test_schwarz.dir/test_schwarz.cpp.o"
  "CMakeFiles/test_schwarz.dir/test_schwarz.cpp.o.d"
  "test_schwarz"
  "test_schwarz.pdb"
  "test_schwarz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_schwarz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
