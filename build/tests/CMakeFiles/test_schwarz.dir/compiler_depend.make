# Empty compiler generated dependencies file for test_schwarz.
# This may be replaced when dependencies are built.
