file(REMOVE_RECURSE
  "CMakeFiles/test_su3.dir/test_su3.cpp.o"
  "CMakeFiles/test_su3.dir/test_su3.cpp.o.d"
  "test_su3"
  "test_su3.pdb"
  "test_su3[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_su3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
