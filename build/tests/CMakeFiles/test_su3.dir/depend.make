# Empty dependencies file for test_su3.
# This may be replaced when dependencies are built.
