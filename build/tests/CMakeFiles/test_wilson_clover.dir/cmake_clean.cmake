file(REMOVE_RECURSE
  "CMakeFiles/test_wilson_clover.dir/test_wilson_clover.cpp.o"
  "CMakeFiles/test_wilson_clover.dir/test_wilson_clover.cpp.o.d"
  "test_wilson_clover"
  "test_wilson_clover.pdb"
  "test_wilson_clover[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wilson_clover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
