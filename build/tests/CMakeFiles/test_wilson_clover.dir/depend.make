# Empty dependencies file for test_wilson_clover.
# This may be replaced when dependencies are built.
