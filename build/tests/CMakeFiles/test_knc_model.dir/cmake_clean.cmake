file(REMOVE_RECURSE
  "CMakeFiles/test_knc_model.dir/test_knc_model.cpp.o"
  "CMakeFiles/test_knc_model.dir/test_knc_model.cpp.o.d"
  "test_knc_model"
  "test_knc_model.pdb"
  "test_knc_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_knc_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
