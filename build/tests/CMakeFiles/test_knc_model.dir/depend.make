# Empty dependencies file for test_knc_model.
# This may be replaced when dependencies are built.
