file(REMOVE_RECURSE
  "CMakeFiles/test_domain_partition.dir/test_domain_partition.cpp.o"
  "CMakeFiles/test_domain_partition.dir/test_domain_partition.cpp.o.d"
  "test_domain_partition"
  "test_domain_partition.pdb"
  "test_domain_partition[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_domain_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
