# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_base[1]_include.cmake")
include("/root/repo/build/tests/test_blas[1]_include.cmake")
include("/root/repo/build/tests/test_clover_block[1]_include.cmake")
include("/root/repo/build/tests/test_cluster_sim[1]_include.cmake")
include("/root/repo/build/tests/test_dd_solver[1]_include.cmake")
include("/root/repo/build/tests/test_densela[1]_include.cmake")
include("/root/repo/build/tests/test_domain_partition[1]_include.cmake")
include("/root/repo/build/tests/test_fp16[1]_include.cmake")
include("/root/repo/build/tests/test_gamma[1]_include.cmake")
include("/root/repo/build/tests/test_geometry[1]_include.cmake")
include("/root/repo/build/tests/test_knc_model[1]_include.cmake")
include("/root/repo/build/tests/test_monte_carlo[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_schwarz[1]_include.cmake")
include("/root/repo/build/tests/test_solver_variants[1]_include.cmake")
include("/root/repo/build/tests/test_solvers[1]_include.cmake")
include("/root/repo/build/tests/test_su3[1]_include.cmake")
include("/root/repo/build/tests/test_tile[1]_include.cmake")
include("/root/repo/build/tests/test_virtual_grid[1]_include.cmake")
include("/root/repo/build/tests/test_wilson_clover[1]_include.cmake")
