file(REMOVE_RECURSE
  "CMakeFiles/lqcd_dd.dir/lqcd/base/table.cpp.o"
  "CMakeFiles/lqcd_dd.dir/lqcd/base/table.cpp.o.d"
  "CMakeFiles/lqcd_dd.dir/lqcd/cluster/cluster_sim.cpp.o"
  "CMakeFiles/lqcd_dd.dir/lqcd/cluster/cluster_sim.cpp.o.d"
  "CMakeFiles/lqcd_dd.dir/lqcd/cluster/node_partition.cpp.o"
  "CMakeFiles/lqcd_dd.dir/lqcd/cluster/node_partition.cpp.o.d"
  "CMakeFiles/lqcd_dd.dir/lqcd/core/dd_solver.cpp.o"
  "CMakeFiles/lqcd_dd.dir/lqcd/core/dd_solver.cpp.o.d"
  "CMakeFiles/lqcd_dd.dir/lqcd/densela/matrix.cpp.o"
  "CMakeFiles/lqcd_dd.dir/lqcd/densela/matrix.cpp.o.d"
  "CMakeFiles/lqcd_dd.dir/lqcd/lattice/checkerboard.cpp.o"
  "CMakeFiles/lqcd_dd.dir/lqcd/lattice/checkerboard.cpp.o.d"
  "CMakeFiles/lqcd_dd.dir/lqcd/lattice/domain_partition.cpp.o"
  "CMakeFiles/lqcd_dd.dir/lqcd/lattice/domain_partition.cpp.o.d"
  "CMakeFiles/lqcd_dd.dir/lqcd/lattice/geometry.cpp.o"
  "CMakeFiles/lqcd_dd.dir/lqcd/lattice/geometry.cpp.o.d"
  "CMakeFiles/lqcd_dd.dir/lqcd/linalg/fp16.cpp.o"
  "CMakeFiles/lqcd_dd.dir/lqcd/linalg/fp16.cpp.o.d"
  "CMakeFiles/lqcd_dd.dir/lqcd/tile/tiled_dslash.cpp.o"
  "CMakeFiles/lqcd_dd.dir/lqcd/tile/tiled_dslash.cpp.o.d"
  "CMakeFiles/lqcd_dd.dir/lqcd/tile/xy_tile.cpp.o"
  "CMakeFiles/lqcd_dd.dir/lqcd/tile/xy_tile.cpp.o.d"
  "CMakeFiles/lqcd_dd.dir/lqcd/vnode/virtual_grid.cpp.o"
  "CMakeFiles/lqcd_dd.dir/lqcd/vnode/virtual_grid.cpp.o.d"
  "liblqcd_dd.a"
  "liblqcd_dd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lqcd_dd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
