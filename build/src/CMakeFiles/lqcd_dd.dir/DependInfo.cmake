
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lqcd/base/table.cpp" "src/CMakeFiles/lqcd_dd.dir/lqcd/base/table.cpp.o" "gcc" "src/CMakeFiles/lqcd_dd.dir/lqcd/base/table.cpp.o.d"
  "/root/repo/src/lqcd/cluster/cluster_sim.cpp" "src/CMakeFiles/lqcd_dd.dir/lqcd/cluster/cluster_sim.cpp.o" "gcc" "src/CMakeFiles/lqcd_dd.dir/lqcd/cluster/cluster_sim.cpp.o.d"
  "/root/repo/src/lqcd/cluster/node_partition.cpp" "src/CMakeFiles/lqcd_dd.dir/lqcd/cluster/node_partition.cpp.o" "gcc" "src/CMakeFiles/lqcd_dd.dir/lqcd/cluster/node_partition.cpp.o.d"
  "/root/repo/src/lqcd/core/dd_solver.cpp" "src/CMakeFiles/lqcd_dd.dir/lqcd/core/dd_solver.cpp.o" "gcc" "src/CMakeFiles/lqcd_dd.dir/lqcd/core/dd_solver.cpp.o.d"
  "/root/repo/src/lqcd/densela/matrix.cpp" "src/CMakeFiles/lqcd_dd.dir/lqcd/densela/matrix.cpp.o" "gcc" "src/CMakeFiles/lqcd_dd.dir/lqcd/densela/matrix.cpp.o.d"
  "/root/repo/src/lqcd/lattice/checkerboard.cpp" "src/CMakeFiles/lqcd_dd.dir/lqcd/lattice/checkerboard.cpp.o" "gcc" "src/CMakeFiles/lqcd_dd.dir/lqcd/lattice/checkerboard.cpp.o.d"
  "/root/repo/src/lqcd/lattice/domain_partition.cpp" "src/CMakeFiles/lqcd_dd.dir/lqcd/lattice/domain_partition.cpp.o" "gcc" "src/CMakeFiles/lqcd_dd.dir/lqcd/lattice/domain_partition.cpp.o.d"
  "/root/repo/src/lqcd/lattice/geometry.cpp" "src/CMakeFiles/lqcd_dd.dir/lqcd/lattice/geometry.cpp.o" "gcc" "src/CMakeFiles/lqcd_dd.dir/lqcd/lattice/geometry.cpp.o.d"
  "/root/repo/src/lqcd/linalg/fp16.cpp" "src/CMakeFiles/lqcd_dd.dir/lqcd/linalg/fp16.cpp.o" "gcc" "src/CMakeFiles/lqcd_dd.dir/lqcd/linalg/fp16.cpp.o.d"
  "/root/repo/src/lqcd/tile/tiled_dslash.cpp" "src/CMakeFiles/lqcd_dd.dir/lqcd/tile/tiled_dslash.cpp.o" "gcc" "src/CMakeFiles/lqcd_dd.dir/lqcd/tile/tiled_dslash.cpp.o.d"
  "/root/repo/src/lqcd/tile/xy_tile.cpp" "src/CMakeFiles/lqcd_dd.dir/lqcd/tile/xy_tile.cpp.o" "gcc" "src/CMakeFiles/lqcd_dd.dir/lqcd/tile/xy_tile.cpp.o.d"
  "/root/repo/src/lqcd/vnode/virtual_grid.cpp" "src/CMakeFiles/lqcd_dd.dir/lqcd/vnode/virtual_grid.cpp.o" "gcc" "src/CMakeFiles/lqcd_dd.dir/lqcd/vnode/virtual_grid.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
