# Empty dependencies file for lqcd_dd.
# This may be replaced when dependencies are built.
