file(REMOVE_RECURSE
  "liblqcd_dd.a"
)
