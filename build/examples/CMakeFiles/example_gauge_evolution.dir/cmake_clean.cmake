file(REMOVE_RECURSE
  "CMakeFiles/example_gauge_evolution.dir/gauge_evolution.cpp.o"
  "CMakeFiles/example_gauge_evolution.dir/gauge_evolution.cpp.o.d"
  "example_gauge_evolution"
  "example_gauge_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_gauge_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
