# Empty dependencies file for example_gauge_evolution.
# This may be replaced when dependencies are built.
