file(REMOVE_RECURSE
  "CMakeFiles/example_precision_study.dir/precision_study.cpp.o"
  "CMakeFiles/example_precision_study.dir/precision_study.cpp.o.d"
  "example_precision_study"
  "example_precision_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_precision_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
