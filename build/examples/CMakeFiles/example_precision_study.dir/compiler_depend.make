# Empty compiler generated dependencies file for example_precision_study.
# This may be replaced when dependencies are built.
