# Empty compiler generated dependencies file for example_scaling_explorer.
# This may be replaced when dependencies are built.
