file(REMOVE_RECURSE
  "CMakeFiles/example_scaling_explorer.dir/scaling_explorer.cpp.o"
  "CMakeFiles/example_scaling_explorer.dir/scaling_explorer.cpp.o.d"
  "example_scaling_explorer"
  "example_scaling_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_scaling_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
