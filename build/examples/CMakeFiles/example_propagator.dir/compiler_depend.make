# Empty compiler generated dependencies file for example_propagator.
# This may be replaced when dependencies are built.
