file(REMOVE_RECURSE
  "CMakeFiles/example_propagator.dir/propagator.cpp.o"
  "CMakeFiles/example_propagator.dir/propagator.cpp.o.d"
  "example_propagator"
  "example_propagator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_propagator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
