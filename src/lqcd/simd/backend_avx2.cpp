// AVX2+FMA+F16C backend table. Compiled with -mavx2 -mfma -mf16c
// -ffp-contract=off (see src/CMakeLists.txt); on toolchains without those
// flags this TU degrades to a nullptr table and dispatch reports the
// backend as not compiled.
#include "lqcd/simd/avx2_kernels.h"
#include "lqcd/simd/backends.h"

namespace lqcd::simd::detail {

#if defined(LQCD_SIMD_AVX2_COMPILED)

namespace {
constexpr Kernels kAvx2Kernels = {
    Backend::kAvx2,
    "avx2",
    &a2::su3_mul_nn,
    &a2::su3_mul_lanes,
    &a2::project_lanes,
    &a2::reconstruct_add_lanes,
    &a2::clover_pair_lanes,
    &a2::xpay_lanes,
    &a2::mr_dots_lanes,
    &a2::mr_axpy_lanes,
    &a2::float_to_half_n,
    &a2::half_to_float_n,
};
}  // namespace

const Kernels* avx2_table() noexcept { return &kAvx2Kernels; }

#else

const Kernels* avx2_table() noexcept { return nullptr; }

#endif

}  // namespace lqcd::simd::detail
