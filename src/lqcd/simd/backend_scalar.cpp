// Scalar (portable) backend: the reference implementations, wrapped into a
// dispatch table. Compiled with -ffp-contract=off so its results are
// bit-stable across compilers and -march levels (see scalar_kernels.h).
#include "lqcd/simd/backends.h"
#include "lqcd/simd/scalar_kernels.h"

namespace lqcd::simd::detail {

namespace {
constexpr Kernels kScalarKernels = {
    Backend::kScalar,
    "scalar",
    &ref::su3_mul_nn,
    &ref::su3_mul_lanes,
    &ref::project_lanes,
    &ref::reconstruct_add_lanes,
    &ref::clover_pair_lanes,
    &ref::xpay_lanes,
    &ref::mr_dots_lanes,
    &ref::mr_axpy_lanes,
    &ref::float_to_half_n,
    &ref::half_to_float_n,
};
}  // namespace

const Kernels* scalar_table() noexcept { return &kScalarKernels; }

}  // namespace lqcd::simd::detail
