// AVX2+FMA+F16C implementations of the dispatched kernels.
//
// INTERNAL to src/lqcd/simd/: included by backend_avx2.cpp (and by
// backend_avx512.cpp for the kernels it does not widen). Compiles to real
// code only when the translation unit has AVX2, FMA and F16C enabled;
// otherwise the backend reports "not compiled" and dispatch never lands
// here.
//
// Numerics: su3_mul_nn / su3_mul_lanes / phase_madd / xpay use separate
// mul+add in exactly the scalar accumulation order (j = 0, 1, 2), so they
// are bit-identical to the scalar backend. clover_pair_lanes and the MR
// kernels use FMA: per-term rounding differs from scalar at the last bit
// (<= 1e-6 relative after accumulation), which the dispatch contract
// allows. All loop tails fall back to the ref:: scalar kernels, which this
// TU compiles with -ffp-contract=off like every other backend.
#pragma once

#include "lqcd/simd/scalar_kernels.h"

#if defined(__AVX2__) && defined(__FMA__) && defined(__F16C__)
#define LQCD_SIMD_AVX2_COMPILED 1

#include <immintrin.h>

#include <cstdint>

namespace lqcd::simd::a2 {

/// Swap (re,im) pairs within each 128-bit half: [a0 a1 a2 a3] -> [a1 a0 a3 a2].
inline __m256 swap_pairs(__m256 v) noexcept {
  return _mm256_permute_ps(v, 0xB1);
}

// ---------------------------------------------------------------------------
// su3_mul_nn: row-wise complex 3x3 products on interleaved (re,im) rows.
// A matrix row is 6 floats; the 8-float vector ops deliberately overread /
// overwrite 2 floats into the following row (rows are processed in
// ascending order, so every overlap is rewritten before it is consumed).
// The LAST matrix of the array is handled by the scalar reference kernel
// so no vector access ever leaves the arrays. a, b and c must not alias.
// ---------------------------------------------------------------------------
inline void su3_mul_nn(const float* a, const float* b, float* c,
                       std::int64_t n) noexcept {
  for (std::int64_t m = 0; m + 1 < n; ++m) {
    const float* am = a + m * 18;
    const float* bm = b + m * 18;
    float* cm = c + m * 18;
    __m256 brow[3];
    for (int k = 0; k < 3; ++k) brow[k] = _mm256_loadu_ps(bm + 6 * k);
    for (int i = 0; i < 3; ++i) {
      __m256 acc = _mm256_setzero_ps();
      for (int k = 0; k < 3; ++k) {
        const __m256 ar = _mm256_broadcast_ss(am + (i * 3 + k) * 2);
        const __m256 ai = _mm256_broadcast_ss(am + (i * 3 + k) * 2 + 1);
        // addsub: even lanes t1 - t2 = ar*br - ai*bi (re), odd lanes
        // t1 + t2 = ar*bi + ai*br (im) — the scalar formulas exactly.
        const __m256 t1 = _mm256_mul_ps(ar, brow[k]);
        const __m256 t2 = _mm256_mul_ps(ai, swap_pairs(brow[k]));
        const __m256 p = _mm256_addsub_ps(t1, t2);
        acc = k == 0 ? p : _mm256_add_ps(acc, p);
      }
      _mm256_storeu_ps(cm + 6 * i, acc);
    }
  }
  if (n > 0)
    ref::su3_mul_nn_one(a + (n - 1) * 18, b + (n - 1) * 18, c + (n - 1) * 18);
}

// ---------------------------------------------------------------------------
// Lane kernels: the SOA-over-RHS layout keeps re/im in separate contiguous
// lane vectors, so these are pure elementwise vertical ops — no shuffles.
// ---------------------------------------------------------------------------

inline void su3_mul_lanes(const float* u, const float* x, float* y, int lanes,
                          int adjoint) noexcept {
  for (int sp = 0; sp < 2; ++sp)
    for (int i = 0; i < kNumColors; ++i) {
      float ur[3], ui[3];
      const float* xr[3];
      for (int j = 0; j < kNumColors; ++j) {
        ur[j] = adjoint ? u[(j * 3 + i) * 2] : u[(i * 3 + j) * 2];
        ui[j] = adjoint ? -u[(j * 3 + i) * 2 + 1] : u[(i * 3 + j) * 2 + 1];
        xr[j] = x + (sp * kNumColors + j) * 2 * lanes;
      }
      float* y_re = y + (sp * kNumColors + i) * 2 * lanes;
      float* y_im = y_re + lanes;
      int l = 0;
      for (; l + 8 <= lanes; l += 8) {
        __m256 acc_re = _mm256_setzero_ps();
        __m256 acc_im = _mm256_setzero_ps();
        for (int j = 0; j < 3; ++j) {
          const __m256 vur = _mm256_set1_ps(ur[j]);
          const __m256 vui = _mm256_set1_ps(ui[j]);
          const __m256 vxr = _mm256_loadu_ps(xr[j] + l);
          const __m256 vxi = _mm256_loadu_ps(xr[j] + lanes + l);
          const __m256 re =
              _mm256_sub_ps(_mm256_mul_ps(vur, vxr), _mm256_mul_ps(vui, vxi));
          const __m256 im =
              _mm256_add_ps(_mm256_mul_ps(vur, vxi), _mm256_mul_ps(vui, vxr));
          acc_re = j == 0 ? re : _mm256_add_ps(acc_re, re);
          acc_im = j == 0 ? im : _mm256_add_ps(acc_im, im);
        }
        _mm256_storeu_ps(y_re + l, acc_re);
        _mm256_storeu_ps(y_im + l, acc_im);
      }
      for (; l + 4 <= lanes; l += 4) {
        __m128 acc_re = _mm_setzero_ps();
        __m128 acc_im = _mm_setzero_ps();
        for (int j = 0; j < 3; ++j) {
          const __m128 vur = _mm_set1_ps(ur[j]);
          const __m128 vui = _mm_set1_ps(ui[j]);
          const __m128 vxr = _mm_loadu_ps(xr[j] + l);
          const __m128 vxi = _mm_loadu_ps(xr[j] + lanes + l);
          const __m128 re =
              _mm_sub_ps(_mm_mul_ps(vur, vxr), _mm_mul_ps(vui, vxi));
          const __m128 im =
              _mm_add_ps(_mm_mul_ps(vur, vxi), _mm_mul_ps(vui, vxr));
          acc_re = j == 0 ? re : _mm_add_ps(acc_re, re);
          acc_im = j == 0 ? im : _mm_add_ps(acc_im, im);
        }
        _mm_storeu_ps(y_re + l, acc_re);
        _mm_storeu_ps(y_im + l, acc_im);
      }
      for (; l < lanes; ++l) {
        float cr = 0.0f, ci = 0.0f;
        for (int j = 0; j < 3; ++j) {
          const float pr = ur[j] * xr[j][l] - ui[j] * xr[j][lanes + l];
          const float pi = ur[j] * xr[j][lanes + l] + ui[j] * xr[j][l];
          cr = j == 0 ? pr : cr + pr;
          ci = j == 0 ? pi : ci + pi;
        }
        y_re[l] = cr;
        y_im[l] = ci;
      }
    }
}

/// out = a + s * phase*b, lane-wise (see scalar_kernels.h). mul+add only:
/// bit-identical to the scalar path.
inline void phase_madd(const float* a_re, const float* a_im,
                       const float* b_re, const float* b_im, Phase p, float s,
                       float* o_re, float* o_im, int lanes) noexcept {
  // Reduce the four phase cases to out_re = a_re + sr*br', where the
  // phase picks which of (b_re, b_im) feeds each output and the sign.
  //   +1: o_re = a + s*b_re,  o_im = a + s*b_im
  //   -1: o_re = a - s*b_re,  o_im = a - s*b_im
  //   +i: o_re = a - s*b_im,  o_im = a + s*b_re
  //   -i: o_re = a + s*b_im,  o_im = a - s*b_re
  const float* br = b_re;
  const float* bi = b_im;
  float sr = s, si = s;
  switch (p) {
    case Phase::kPlusOne:
      break;
    case Phase::kMinusOne:
      sr = -s;
      si = -s;
      break;
    case Phase::kPlusI:
      br = b_im;
      bi = b_re;
      sr = -s;
      break;
    case Phase::kMinusI:
    default:
      br = b_im;
      bi = b_re;
      si = -s;
      break;
  }
  const __m256 vsr = _mm256_set1_ps(sr);
  const __m256 vsi = _mm256_set1_ps(si);
  int l = 0;
  for (; l + 8 <= lanes; l += 8) {
    const __m256 re = _mm256_add_ps(_mm256_loadu_ps(a_re + l),
                                    _mm256_mul_ps(vsr, _mm256_loadu_ps(br + l)));
    const __m256 im = _mm256_add_ps(_mm256_loadu_ps(a_im + l),
                                    _mm256_mul_ps(vsi, _mm256_loadu_ps(bi + l)));
    _mm256_storeu_ps(o_re + l, re);
    _mm256_storeu_ps(o_im + l, im);
  }
  for (; l + 4 <= lanes; l += 4) {
    const __m128 re = _mm_add_ps(
        _mm_loadu_ps(a_re + l),
        _mm_mul_ps(_mm_set1_ps(sr), _mm_loadu_ps(br + l)));
    const __m128 im = _mm_add_ps(
        _mm_loadu_ps(a_im + l),
        _mm_mul_ps(_mm_set1_ps(si), _mm_loadu_ps(bi + l)));
    _mm_storeu_ps(o_re + l, re);
    _mm_storeu_ps(o_im + l, im);
  }
  for (; l < lanes; ++l) {
    const float re = a_re[l] + sr * br[l];
    const float im = a_im[l] + si * bi[l];
    o_re[l] = re;
    o_im[l] = im;
  }
}

inline void project_lanes(const float* in_site, int mu, int sign, float* h,
                          int lanes) noexcept {
  const PermPhaseMatrix& g = kGamma[static_cast<std::size_t>(mu)];
  const float s = sign > 0 ? 1.0f : -1.0f;
  for (int r = 0; r < 2; ++r) {
    const int col = g.col[static_cast<std::size_t>(r)];
    for (int c = 0; c < kNumColors; ++c) {
      const float* a_re = in_site + (r * kNumColors + c) * 2 * lanes;
      const float* b_re = in_site + (col * kNumColors + c) * 2 * lanes;
      float* o_re = h + (r * kNumColors + c) * 2 * lanes;
      phase_madd(a_re, a_re + lanes, b_re, b_re + lanes,
                 g.phase[static_cast<std::size_t>(r)], s, o_re, o_re + lanes,
                 lanes);
    }
  }
}

inline void reconstruct_add_lanes(float* acc_site, const float* h, int mu,
                                  int sign, int lanes) noexcept {
  const PermPhaseMatrix& g = kGamma[static_cast<std::size_t>(mu)];
  const float s = sign > 0 ? 1.0f : -1.0f;
  for (int r = 0; r < 2; ++r)
    for (int c = 0; c < kNumColors; ++c) {
      float* a_re = acc_site + (r * kNumColors + c) * 2 * lanes;
      const float* h_re = h + (r * kNumColors + c) * 2 * lanes;
      int l = 0;
      for (; l + 8 <= 2 * lanes; l += 8)
        _mm256_storeu_ps(a_re + l, _mm256_add_ps(_mm256_loadu_ps(a_re + l),
                                                 _mm256_loadu_ps(h_re + l)));
      for (; l < 2 * lanes; ++l) a_re[l] += h_re[l];
    }
  for (int r = 2; r < kNumSpins; ++r) {
    const int col = g.col[static_cast<std::size_t>(r)];
    for (int c = 0; c < kNumColors; ++c) {
      float* a_re = acc_site + (r * kNumColors + c) * 2 * lanes;
      const float* b_re = h + (col * kNumColors + c) * 2 * lanes;
      phase_madd(a_re, a_re + lanes, b_re, b_re + lanes,
                 g.phase[static_cast<std::size_t>(r)], s, a_re, a_re + lanes,
                 lanes);
    }
  }
}

inline void clover_pair_lanes(const PackedHermitian6<float>* b0,
                              const PackedHermitian6<float>* b1,
                              const float* in_site, float* out_site,
                              int lanes) noexcept {
  const PackedHermitian6<float>* blocks[2] = {b0, b1};
  for (int chi = 0; chi < 2; ++chi) {
    const auto& blk = *blocks[chi];
    const float* x0 = in_site + chi * 2 * kCloverBlockDim * lanes;
    float* y0 = out_site + chi * 2 * kCloverBlockDim * lanes;
    int l = 0;
    for (; l + 8 <= lanes; l += 8) {
      for (int i = 0; i < kCloverBlockDim; ++i) {
        const __m256 di = _mm256_set1_ps(blk.diag[i]);
        __m256 acc_re = _mm256_mul_ps(di, _mm256_loadu_ps(x0 + 2 * i * lanes + l));
        __m256 acc_im =
            _mm256_mul_ps(di, _mm256_loadu_ps(x0 + (2 * i + 1) * lanes + l));
        for (int j = 0; j < kCloverBlockDim; ++j) {
          if (j == i) continue;
          const Complex<float> o = j < i ? blk.offd[packed_index(i, j)]
                                         : blk.offd[packed_index(j, i)];
          const __m256 pr = _mm256_set1_ps(o.real());
          // j > i uses conj(offd[j][i]): same real part, negated imag.
          const __m256 pi = _mm256_set1_ps(j < i ? o.imag() : -o.imag());
          const __m256 xr = _mm256_loadu_ps(x0 + 2 * j * lanes + l);
          const __m256 xi = _mm256_loadu_ps(x0 + (2 * j + 1) * lanes + l);
          acc_re = _mm256_fmadd_ps(pr, xr, acc_re);
          acc_re = _mm256_fnmadd_ps(pi, xi, acc_re);
          acc_im = _mm256_fmadd_ps(pr, xi, acc_im);
          acc_im = _mm256_fmadd_ps(pi, xr, acc_im);
        }
        _mm256_storeu_ps(y0 + 2 * i * lanes + l, acc_re);
        _mm256_storeu_ps(y0 + (2 * i + 1) * lanes + l, acc_im);
      }
    }
    for (; l + 4 <= lanes; l += 4) {
      for (int i = 0; i < kCloverBlockDim; ++i) {
        const __m128 di = _mm_set1_ps(blk.diag[i]);
        __m128 acc_re = _mm_mul_ps(di, _mm_loadu_ps(x0 + 2 * i * lanes + l));
        __m128 acc_im =
            _mm_mul_ps(di, _mm_loadu_ps(x0 + (2 * i + 1) * lanes + l));
        for (int j = 0; j < kCloverBlockDim; ++j) {
          if (j == i) continue;
          const Complex<float> o = j < i ? blk.offd[packed_index(i, j)]
                                         : blk.offd[packed_index(j, i)];
          const __m128 pr = _mm_set1_ps(o.real());
          const __m128 pi = _mm_set1_ps(j < i ? o.imag() : -o.imag());
          const __m128 xr = _mm_loadu_ps(x0 + 2 * j * lanes + l);
          const __m128 xi = _mm_loadu_ps(x0 + (2 * j + 1) * lanes + l);
          acc_re = _mm_fmadd_ps(pr, xr, acc_re);
          acc_re = _mm_fnmadd_ps(pi, xi, acc_re);
          acc_im = _mm_fmadd_ps(pr, xi, acc_im);
          acc_im = _mm_fmadd_ps(pi, xr, acc_im);
        }
        _mm_storeu_ps(y0 + 2 * i * lanes + l, acc_re);
        _mm_storeu_ps(y0 + (2 * i + 1) * lanes + l, acc_im);
      }
    }
    if (l < lanes) {
      // Lane tail: scalar reference on the remaining sub-range. The
      // ref kernel indexes components by `lanes`, so hand it shifted
      // bases and the remaining width.
      const int rem = lanes - l;
      for (int i = 0; i < kCloverBlockDim; ++i) {
        float* o_re = y0 + 2 * i * lanes + l;
        float* o_im = o_re + lanes;
        const float di = blk.diag[i];
        const float* x_re = x0 + 2 * i * lanes + l;
        const float* x_im = x_re + lanes;
        for (int t = 0; t < rem; ++t) {
          o_re[t] = di * x_re[t];
          o_im[t] = di * x_im[t];
        }
        for (int j = 0; j < kCloverBlockDim; ++j) {
          if (j == i) continue;
          const Complex<float> o = j < i ? blk.offd[packed_index(i, j)]
                                         : blk.offd[packed_index(j, i)];
          const float pr = o.real();
          const float pi = j < i ? o.imag() : -o.imag();
          const float* xjr = x0 + 2 * j * lanes + l;
          const float* xji = xjr + lanes;
          for (int t = 0; t < rem; ++t) {
            o_re[t] += pr * xjr[t] - pi * xji[t];
            o_im[t] += pr * xji[t] + pi * xjr[t];
          }
        }
      }
    }
  }
}

inline void xpay_lanes(const float* x, float s, const float* y, float* out,
                       std::int64_t n) noexcept {
  const __m256 vs = _mm256_set1_ps(s);
  std::int64_t k = 0;
  for (; k + 8 <= n; k += 8)
    _mm256_storeu_ps(out + k,
                     _mm256_add_ps(_mm256_loadu_ps(x + k),
                                   _mm256_mul_ps(vs, _mm256_loadu_ps(y + k))));
  for (; k < n; ++k) out[k] = x[k] + s * y[k];
}

inline void mr_dots_lanes(const float* r, const float* ar,
                          std::int64_t ncomplex, int lanes, double* arr_re,
                          double* arr_im, double* arar) noexcept {
  int lc = 0;
  for (; lc + 4 <= lanes; lc += 4) {
    __m256d vrr = _mm256_loadu_pd(arr_re + lc);
    __m256d vri = _mm256_loadu_pd(arr_im + lc);
    __m256d vaa = _mm256_loadu_pd(arar + lc);
    for (std::int64_t k = 0; k < ncomplex; ++k) {
      const float* base_r = r + 2 * k * lanes + lc;
      const float* base_a = ar + 2 * k * lanes + lc;
      const __m256d rr = _mm256_cvtps_pd(_mm_loadu_ps(base_r));
      const __m256d ri = _mm256_cvtps_pd(_mm_loadu_ps(base_r + lanes));
      const __m256d ad = _mm256_cvtps_pd(_mm_loadu_ps(base_a));
      const __m256d ai = _mm256_cvtps_pd(_mm_loadu_ps(base_a + lanes));
      vrr = _mm256_fmadd_pd(ad, rr, vrr);
      vrr = _mm256_fmadd_pd(ai, ri, vrr);
      vri = _mm256_fmadd_pd(ad, ri, vri);
      vri = _mm256_fnmadd_pd(ai, rr, vri);
      vaa = _mm256_fmadd_pd(ad, ad, vaa);
      vaa = _mm256_fmadd_pd(ai, ai, vaa);
    }
    _mm256_storeu_pd(arr_re + lc, vrr);
    _mm256_storeu_pd(arr_im + lc, vri);
    _mm256_storeu_pd(arar + lc, vaa);
  }
  for (; lc < lanes; ++lc) {
    double srr = arr_re[lc], sri = arr_im[lc], saa = arar[lc];
    for (std::int64_t k = 0; k < ncomplex; ++k) {
      const double rr = r[2 * k * lanes + lc];
      const double ri = r[(2 * k + 1) * lanes + lc];
      const double ad = ar[2 * k * lanes + lc];
      const double ai = ar[(2 * k + 1) * lanes + lc];
      srr += ad * rr + ai * ri;
      sri += ad * ri - ai * rr;
      saa += ad * ad + ai * ai;
    }
    arr_re[lc] = srr;
    arr_im[lc] = sri;
    arar[lc] = saa;
  }
}

inline void mr_axpy_lanes(float* z, float* r, const float* ar,
                          std::int64_t ncomplex, int lanes,
                          const float* alpha_re,
                          const float* alpha_im) noexcept {
  int lc = 0;
  for (; lc + 8 <= lanes; lc += 8) {
    const __m256 alr = _mm256_loadu_ps(alpha_re + lc);
    const __m256 ali = _mm256_loadu_ps(alpha_im + lc);
    for (std::int64_t k = 0; k < ncomplex; ++k) {
      float* zre = z + 2 * k * lanes + lc;
      float* rre = r + 2 * k * lanes + lc;
      const float* are = ar + 2 * k * lanes + lc;
      const __m256 vrr = _mm256_loadu_ps(rre);
      const __m256 vri = _mm256_loadu_ps(rre + lanes);
      const __m256 var = _mm256_loadu_ps(are);
      const __m256 vai = _mm256_loadu_ps(are + lanes);
      __m256 vzr = _mm256_loadu_ps(zre);
      __m256 vzi = _mm256_loadu_ps(zre + lanes);
      vzr = _mm256_fmadd_ps(alr, vrr, vzr);
      vzr = _mm256_fnmadd_ps(ali, vri, vzr);
      vzi = _mm256_fmadd_ps(alr, vri, vzi);
      vzi = _mm256_fmadd_ps(ali, vrr, vzi);
      _mm256_storeu_ps(zre, vzr);
      _mm256_storeu_ps(zre + lanes, vzi);
      __m256 nrr = _mm256_fnmadd_ps(alr, var, vrr);
      nrr = _mm256_fmadd_ps(ali, vai, nrr);
      __m256 nri = _mm256_fnmadd_ps(alr, vai, vri);
      nri = _mm256_fnmadd_ps(ali, var, nri);
      _mm256_storeu_ps(rre, nrr);
      _mm256_storeu_ps(rre + lanes, nri);
    }
  }
  for (; lc + 4 <= lanes; lc += 4) {
    const __m128 alr = _mm_loadu_ps(alpha_re + lc);
    const __m128 ali = _mm_loadu_ps(alpha_im + lc);
    for (std::int64_t k = 0; k < ncomplex; ++k) {
      float* zre = z + 2 * k * lanes + lc;
      float* rre = r + 2 * k * lanes + lc;
      const float* are = ar + 2 * k * lanes + lc;
      const __m128 vrr = _mm_loadu_ps(rre);
      const __m128 vri = _mm_loadu_ps(rre + lanes);
      const __m128 var = _mm_loadu_ps(are);
      const __m128 vai = _mm_loadu_ps(are + lanes);
      __m128 vzr = _mm_loadu_ps(zre);
      __m128 vzi = _mm_loadu_ps(zre + lanes);
      vzr = _mm_fmadd_ps(alr, vrr, vzr);
      vzr = _mm_fnmadd_ps(ali, vri, vzr);
      vzi = _mm_fmadd_ps(alr, vri, vzi);
      vzi = _mm_fmadd_ps(ali, vrr, vzi);
      _mm_storeu_ps(zre, vzr);
      _mm_storeu_ps(zre + lanes, vzi);
      __m128 nrr = _mm_fnmadd_ps(alr, var, vrr);
      nrr = _mm_fmadd_ps(ali, vai, nrr);
      __m128 nri = _mm_fnmadd_ps(alr, vai, vri);
      nri = _mm_fnmadd_ps(ali, var, nri);
      _mm_storeu_ps(rre, nrr);
      _mm_storeu_ps(rre + lanes, nri);
    }
  }
  for (; lc < lanes; ++lc) {
    const float alr = alpha_re[lc], ali = alpha_im[lc];
    for (std::int64_t k = 0; k < ncomplex; ++k) {
      float* zre = z + 2 * k * lanes + lc;
      float* zim = z + (2 * k + 1) * lanes + lc;
      float* rre = r + 2 * k * lanes + lc;
      float* rim = r + (2 * k + 1) * lanes + lc;
      const float are = ar[2 * k * lanes + lc];
      const float aim = ar[(2 * k + 1) * lanes + lc];
      *zre += alr * *rre - ali * *rim;
      *zim += alr * *rim + ali * *rre;
      *rre -= alr * are - ali * aim;
      *rim -= alr * aim + ali * are;
    }
  }
}

inline void float_to_half_n(const float* src, Half* dst,
                            std::int64_t n) noexcept {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i h = _mm256_cvtps_ph(_mm256_loadu_ps(src + i),
                                      _MM_FROUND_TO_NEAREST_INT |
                                          _MM_FROUND_NO_EXC);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), h);
  }
  for (; i < n; ++i) dst[i] = float_to_half(src[i]);
}

inline void half_to_float_n(const Half* src, float* dst,
                            std::int64_t n) noexcept {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i h =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm256_storeu_ps(dst + i, _mm256_cvtph_ps(h));
  }
  for (; i < n; ++i) dst[i] = half_to_float(src[i]);
}

}  // namespace lqcd::simd::a2

#endif  // AVX2 + FMA + F16C
