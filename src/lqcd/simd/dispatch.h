// Runtime-dispatched SIMD kernel backends for the hot SU(3) / dslash /
// clover / lane (SOA-over-RHS) arithmetic.
//
// The paper's performance rests on hand-vectorized kernels (Sec. VI); on
// host hardware we provide the same split explicitly: a portable scalar
// path (the reference semantics, autovectorized via LQCD_PRAGMA_SIMD), an
// AVX2+FMA+F16C backend, and an AVX-512 backend. One of them is selected
// at runtime by CPUID, overridable with the LQCD_SIMD_BACKEND environment
// variable ("scalar" | "avx2" | "avx512") or programmatically with
// force_backend(). Kernel code includes ONLY this header (enforced by
// tools/lqcd_lint.py): concrete backends live in src/lqcd/simd/*.cpp and
// are reached through the function-pointer table below.
//
// Numerical contract (tested in tests/test_simd.cpp):
//   - su3_mul_nn, su3_mul_lanes, project/reconstruct and xpay are
//     BIT-IDENTICAL across backends: every backend evaluates the same
//     expressions in the same order, FMA contraction is disabled on all
//     backend translation units (-ffp-contract=off) and the intrinsic
//     paths use separate mul/add.
//   - clover_pair_lanes and the MR reductions MAY use FMA in the wide
//     backends; they agree with scalar to <= 1e-6 relative.
//   - float_to_half_n / half_to_float_n are bit-identical everywhere
//     (F16C round-to-nearest-even matches the software converter exactly,
//     including saturate-to-inf overflow and NaN quieting).
//   - Exact zeros stay exact zeros in every backend, so SchwarzStats
//     counters (which branch only on arar == 0) are backend-invariant.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "lqcd/linalg/fp16.h"
#include "lqcd/su3/clover_block.h"

namespace lqcd::simd {

enum class Backend : int { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };
inline constexpr int kNumBackends = 3;

/// The dispatched kernel table. All lane kernels take the SOA-over-RHS
/// layout of schwarz/storage.h: a "lane vector" is `lanes` contiguous
/// floats, components are [re lane vector][im lane vector] pairs.
struct Kernels {
  Backend backend;
  const char* name;

  /// c[i] = a[i] * b[i] over n row-major complex 3x3 matrices (18 floats
  /// each, (re,im) interleaved) — the su3_bench calibration kernel.
  void (*su3_mul_nn)(const float* a, const float* b, float* c,
                     std::int64_t n);

  /// y = U x (or U^dagger x when adjoint != 0) on 2-spin half-spinor lane
  /// vectors (12 complex components). `u` is one 18-float SU(3) matrix.
  void (*su3_mul_lanes)(const float* u, const float* x, float* y, int lanes,
                        int adjoint);

  /// h = upper two rows of (1 + sign*gamma_mu) applied to the 24-component
  /// spinor lane vectors at `in_site` (-> 12 components).
  void (*project_lanes)(const float* in_site, int mu, int sign, float* h,
                        int lanes);

  /// acc_site += full spinor reconstructed from the half-spinor lane
  /// vectors `h` for projector (1 + sign*gamma_mu).
  void (*reconstruct_add_lanes)(float* acc_site, const float* h, int mu,
                                int sign, int lanes);

  /// out_site = blockpair(in_site): the two chirality clover blocks
  /// applied to 24-component spinor lane vectors. Must not alias.
  void (*clover_pair_lanes)(const PackedHermitian6<float>* b0,
                            const PackedHermitian6<float>* b1,
                            const float* in_site, float* out_site, int lanes);

  /// out[k] = x[k] + s * y[k] over n floats (the fused Schur/RHS combine
  /// loops). In-place use (out == x or out == y) is fine.
  void (*xpay_lanes)(const float* x, float s, const float* y, float* out,
                     std::int64_t n);

  /// Per-lane MR inner products, accumulated in double: arr = <Ar, r>,
  /// arar = <Ar, Ar>. Caller zeroes the accumulators. Layout as in
  /// solver/mr.h lane_mr_dots.
  void (*mr_dots_lanes)(const float* r, const float* ar, std::int64_t ncomplex,
                        int lanes, double* arr_re, double* arr_im,
                        double* arar);

  /// The MR update, lane-wise: z += alpha r, r -= alpha Ar with per-lane
  /// complex alphas (masked lanes carry alpha = 0).
  void (*mr_axpy_lanes)(float* z, float* r, const float* ar,
                        std::int64_t ncomplex, int lanes,
                        const float* alpha_re, const float* alpha_im);

  /// Array binary16 conversions (F16C in the wide backends, the software
  /// converter of linalg/fp16.cpp otherwise). Bit-identical everywhere.
  void (*float_to_half_n)(const float* src, Half* dst, std::int64_t n);
  void (*half_to_float_n)(const Half* src, float* dst, std::int64_t n);
};

/// Canonical lower-case backend name ("scalar" | "avx2" | "avx512").
const char* to_string(Backend b) noexcept;

/// Parse a backend name; throws lqcd::Error on anything unknown.
Backend parse_backend(std::string_view name);

/// True iff the backend's translation unit was built with the required
/// instruction sets (always true for scalar).
bool backend_compiled(Backend b) noexcept;

/// True iff the backend is compiled AND this CPU can execute it.
bool backend_supported(Backend b) noexcept;

/// All backends usable on this machine, best (widest) first.
std::vector<Backend> available_backends();

/// CPUID selection: avx512 if supported, else avx2, else scalar.
Backend detect_backend() noexcept;

/// Reads LQCD_SIMD_BACKEND now. Empty/unset -> nullopt. Throws
/// lqcd::Error on an unknown name or on a backend this machine cannot run.
std::optional<Backend> backend_from_env();

/// The active kernel table. First use resolves LQCD_SIMD_BACKEND (throwing
/// on invalid values) and falls back to detect_backend(). Thread-safe.
const Kernels& kernels();

/// Backend of the active table (initializes dispatch on first use).
Backend active_backend();

/// Force the active backend (tests / benches). Throws lqcd::Error if the
/// backend is not compiled in or not supported by this CPU.
void force_backend(Backend b);

/// RAII save/force/restore of the active backend.
class ScopedBackend {
 public:
  explicit ScopedBackend(Backend b) : saved_(active_backend()) {
    force_backend(b);
  }
  ~ScopedBackend() { force_backend(saved_); }
  ScopedBackend(const ScopedBackend&) = delete;
  ScopedBackend& operator=(const ScopedBackend&) = delete;

 private:
  Backend saved_;
};

}  // namespace lqcd::simd
