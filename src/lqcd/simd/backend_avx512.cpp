// AVX-512 backend: 16-lane masked versions of the hot lane kernels (the
// mask makes the lane tail free — no scalar remainder), reusing the AVX2
// implementations for su3_mul_nn and the MR reductions where 512-bit
// vectors buy nothing over the small lane counts. Compiled with
// -mavx512f -mavx512vl -mavx512bw -mavx512dq plus the AVX2 set and
// -ffp-contract=off.
//
// Numerics match the AVX2 backend kernel-for-kernel: the bit-identical
// kernels (su3 multiply, project/reconstruct, xpay) use separate mul+add
// in scalar accumulation order; clover uses per-lane FMA, which is
// width-independent, so avx512 == avx2 bitwise there as well.
#include "lqcd/simd/avx2_kernels.h"
#include "lqcd/simd/backends.h"

#if defined(LQCD_SIMD_AVX2_COMPILED) && defined(__AVX512F__) && \
    defined(__AVX512VL__) && defined(__AVX512BW__) && defined(__AVX512DQ__)
#define LQCD_SIMD_AVX512_COMPILED 1

#include <immintrin.h>

#include <cstdint>

namespace lqcd::simd::a5 {

inline __mmask16 tail_mask(int rem) noexcept {
  return static_cast<__mmask16>((1u << rem) - 1u);
}

/// out = a + s * phase*b, lane-wise, 16 lanes per op with a masked tail.
/// Same mul+add reduction as the scalar path: bit-identical.
inline void phase_madd(const float* a_re, const float* a_im,
                       const float* b_re, const float* b_im, Phase p, float s,
                       float* o_re, float* o_im, int lanes) noexcept {
  const float* br = b_re;
  const float* bi = b_im;
  float sr = s, si = s;
  switch (p) {
    case Phase::kPlusOne:
      break;
    case Phase::kMinusOne:
      sr = -s;
      si = -s;
      break;
    case Phase::kPlusI:
      br = b_im;
      bi = b_re;
      sr = -s;
      break;
    case Phase::kMinusI:
    default:
      br = b_im;
      bi = b_re;
      si = -s;
      break;
  }
  const __m512 vsr = _mm512_set1_ps(sr);
  const __m512 vsi = _mm512_set1_ps(si);
  int l = 0;
  for (; l + 16 <= lanes; l += 16) {
    _mm512_storeu_ps(
        o_re + l, _mm512_add_ps(_mm512_loadu_ps(a_re + l),
                                _mm512_mul_ps(vsr, _mm512_loadu_ps(br + l))));
    _mm512_storeu_ps(
        o_im + l, _mm512_add_ps(_mm512_loadu_ps(a_im + l),
                                _mm512_mul_ps(vsi, _mm512_loadu_ps(bi + l))));
  }
  if (l < lanes) {
    const __mmask16 m = tail_mask(lanes - l);
    _mm512_mask_storeu_ps(
        o_re + l, m,
        _mm512_add_ps(_mm512_maskz_loadu_ps(m, a_re + l),
                      _mm512_mul_ps(vsr, _mm512_maskz_loadu_ps(m, br + l))));
    _mm512_mask_storeu_ps(
        o_im + l, m,
        _mm512_add_ps(_mm512_maskz_loadu_ps(m, a_im + l),
                      _mm512_mul_ps(vsi, _mm512_maskz_loadu_ps(m, bi + l))));
  }
}

inline void project_lanes(const float* in_site, int mu, int sign, float* h,
                          int lanes) noexcept {
  const PermPhaseMatrix& g = kGamma[static_cast<std::size_t>(mu)];
  const float s = sign > 0 ? 1.0f : -1.0f;
  for (int r = 0; r < 2; ++r) {
    const int col = g.col[static_cast<std::size_t>(r)];
    for (int c = 0; c < kNumColors; ++c) {
      const float* a_re = in_site + (r * kNumColors + c) * 2 * lanes;
      const float* b_re = in_site + (col * kNumColors + c) * 2 * lanes;
      float* o_re = h + (r * kNumColors + c) * 2 * lanes;
      phase_madd(a_re, a_re + lanes, b_re, b_re + lanes,
                 g.phase[static_cast<std::size_t>(r)], s, o_re, o_re + lanes,
                 lanes);
    }
  }
}

inline void reconstruct_add_lanes(float* acc_site, const float* h, int mu,
                                  int sign, int lanes) noexcept {
  const PermPhaseMatrix& g = kGamma[static_cast<std::size_t>(mu)];
  const float s = sign > 0 ? 1.0f : -1.0f;
  for (int r = 0; r < 2; ++r)
    for (int c = 0; c < kNumColors; ++c) {
      float* a_re = acc_site + (r * kNumColors + c) * 2 * lanes;
      const float* h_re = h + (r * kNumColors + c) * 2 * lanes;
      int l = 0;
      for (; l + 16 <= 2 * lanes; l += 16)
        _mm512_storeu_ps(a_re + l, _mm512_add_ps(_mm512_loadu_ps(a_re + l),
                                                 _mm512_loadu_ps(h_re + l)));
      if (l < 2 * lanes) {
        const __mmask16 m = tail_mask(2 * lanes - l);
        _mm512_mask_storeu_ps(
            a_re + l, m,
            _mm512_add_ps(_mm512_maskz_loadu_ps(m, a_re + l),
                          _mm512_maskz_loadu_ps(m, h_re + l)));
      }
    }
  for (int r = 2; r < kNumSpins; ++r) {
    const int col = g.col[static_cast<std::size_t>(r)];
    for (int c = 0; c < kNumColors; ++c) {
      float* a_re = acc_site + (r * kNumColors + c) * 2 * lanes;
      const float* b_re = h + (col * kNumColors + c) * 2 * lanes;
      phase_madd(a_re, a_re + lanes, b_re, b_re + lanes,
                 g.phase[static_cast<std::size_t>(r)], s, a_re, a_re + lanes,
                 lanes);
    }
  }
}

inline void su3_mul_lanes(const float* u, const float* x, float* y, int lanes,
                          int adjoint) noexcept {
  for (int sp = 0; sp < 2; ++sp)
    for (int i = 0; i < kNumColors; ++i) {
      float ur[3], ui[3];
      const float* xr[3];
      for (int j = 0; j < kNumColors; ++j) {
        ur[j] = adjoint ? u[(j * 3 + i) * 2] : u[(i * 3 + j) * 2];
        ui[j] = adjoint ? -u[(j * 3 + i) * 2 + 1] : u[(i * 3 + j) * 2 + 1];
        xr[j] = x + (sp * kNumColors + j) * 2 * lanes;
      }
      float* y_re = y + (sp * kNumColors + i) * 2 * lanes;
      float* y_im = y_re + lanes;
      for (int l = 0; l < lanes; l += 16) {
        const __mmask16 m =
            lanes - l >= 16 ? static_cast<__mmask16>(0xFFFF)
                            : tail_mask(lanes - l);
        __m512 acc_re = _mm512_setzero_ps();
        __m512 acc_im = _mm512_setzero_ps();
        for (int j = 0; j < 3; ++j) {
          const __m512 vur = _mm512_set1_ps(ur[j]);
          const __m512 vui = _mm512_set1_ps(ui[j]);
          const __m512 vxr = _mm512_maskz_loadu_ps(m, xr[j] + l);
          const __m512 vxi = _mm512_maskz_loadu_ps(m, xr[j] + lanes + l);
          const __m512 re =
              _mm512_sub_ps(_mm512_mul_ps(vur, vxr), _mm512_mul_ps(vui, vxi));
          const __m512 im =
              _mm512_add_ps(_mm512_mul_ps(vur, vxi), _mm512_mul_ps(vui, vxr));
          acc_re = j == 0 ? re : _mm512_add_ps(acc_re, re);
          acc_im = j == 0 ? im : _mm512_add_ps(acc_im, im);
        }
        _mm512_mask_storeu_ps(y_re + l, m, acc_re);
        _mm512_mask_storeu_ps(y_im + l, m, acc_im);
      }
    }
}

inline void clover_pair_lanes(const PackedHermitian6<float>* b0,
                              const PackedHermitian6<float>* b1,
                              const float* in_site, float* out_site,
                              int lanes) noexcept {
  const PackedHermitian6<float>* blocks[2] = {b0, b1};
  for (int chi = 0; chi < 2; ++chi) {
    const auto& blk = *blocks[chi];
    const float* x0 = in_site + chi * 2 * kCloverBlockDim * lanes;
    float* y0 = out_site + chi * 2 * kCloverBlockDim * lanes;
    for (int l = 0; l < lanes; l += 16) {
      const __mmask16 m = lanes - l >= 16 ? static_cast<__mmask16>(0xFFFF)
                                          : tail_mask(lanes - l);
      for (int i = 0; i < kCloverBlockDim; ++i) {
        const __m512 di = _mm512_set1_ps(blk.diag[i]);
        __m512 acc_re =
            _mm512_mul_ps(di, _mm512_maskz_loadu_ps(m, x0 + 2 * i * lanes + l));
        __m512 acc_im = _mm512_mul_ps(
            di, _mm512_maskz_loadu_ps(m, x0 + (2 * i + 1) * lanes + l));
        for (int j = 0; j < kCloverBlockDim; ++j) {
          if (j == i) continue;
          const Complex<float> o = j < i ? blk.offd[packed_index(i, j)]
                                         : blk.offd[packed_index(j, i)];
          const __m512 pr = _mm512_set1_ps(o.real());
          const __m512 pi = _mm512_set1_ps(j < i ? o.imag() : -o.imag());
          const __m512 xr = _mm512_maskz_loadu_ps(m, x0 + 2 * j * lanes + l);
          const __m512 xi =
              _mm512_maskz_loadu_ps(m, x0 + (2 * j + 1) * lanes + l);
          acc_re = _mm512_fmadd_ps(pr, xr, acc_re);
          acc_re = _mm512_fnmadd_ps(pi, xi, acc_re);
          acc_im = _mm512_fmadd_ps(pr, xi, acc_im);
          acc_im = _mm512_fmadd_ps(pi, xr, acc_im);
        }
        _mm512_mask_storeu_ps(y0 + 2 * i * lanes + l, m, acc_re);
        _mm512_mask_storeu_ps(y0 + (2 * i + 1) * lanes + l, m, acc_im);
      }
    }
  }
}

inline void xpay_lanes(const float* x, float s, const float* y, float* out,
                       std::int64_t n) noexcept {
  const __m512 vs = _mm512_set1_ps(s);
  std::int64_t k = 0;
  for (; k + 16 <= n; k += 16)
    _mm512_storeu_ps(
        out + k, _mm512_add_ps(_mm512_loadu_ps(x + k),
                               _mm512_mul_ps(vs, _mm512_loadu_ps(y + k))));
  if (k < n) {
    const __mmask16 m = tail_mask(static_cast<int>(n - k));
    _mm512_mask_storeu_ps(
        out + k, m,
        _mm512_add_ps(_mm512_maskz_loadu_ps(m, x + k),
                      _mm512_mul_ps(vs, _mm512_maskz_loadu_ps(m, y + k))));
  }
}

inline void float_to_half_n(const float* src, Half* dst,
                            std::int64_t n) noexcept {
  std::int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i h = _mm512_cvtps_ph(_mm512_loadu_ps(src + i),
                                      _MM_FROUND_TO_NEAREST_INT |
                                          _MM_FROUND_NO_EXC);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), h);
  }
  for (; i < n; ++i) dst[i] = float_to_half(src[i]);
}

inline void half_to_float_n(const Half* src, float* dst,
                            std::int64_t n) noexcept {
  std::int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i h =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm512_storeu_ps(dst + i, _mm512_cvtph_ps(h));
  }
  for (; i < n; ++i) dst[i] = half_to_float(src[i]);
}

}  // namespace lqcd::simd::a5

#endif  // AVX-512 set

namespace lqcd::simd::detail {

#if defined(LQCD_SIMD_AVX512_COMPILED)

namespace {
constexpr Kernels kAvx512Kernels = {
    Backend::kAvx512,
    "avx512",
    &a2::su3_mul_nn,
    &a5::su3_mul_lanes,
    &a5::project_lanes,
    &a5::reconstruct_add_lanes,
    &a5::clover_pair_lanes,
    &a5::xpay_lanes,
    &a2::mr_dots_lanes,
    &a2::mr_axpy_lanes,
    &a5::float_to_half_n,
    &a5::half_to_float_n,
};
}  // namespace

const Kernels* avx512_table() noexcept { return &kAvx512Kernels; }

#else

const Kernels* avx512_table() noexcept { return nullptr; }

#endif

}  // namespace lqcd::simd::detail
