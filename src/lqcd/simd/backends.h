// INTERNAL to src/lqcd/simd/: per-backend kernel-table accessors wired up
// by dispatch.cpp. A backend whose instruction set was not available at
// compile time returns nullptr (dispatch reports it as not compiled).
#pragma once

#include "lqcd/simd/dispatch.h"

namespace lqcd::simd::detail {

const Kernels* scalar_table() noexcept;  // never nullptr
const Kernels* avx2_table() noexcept;
const Kernels* avx512_table() noexcept;

}  // namespace lqcd::simd::detail
