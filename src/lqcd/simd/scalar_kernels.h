// Portable reference implementations of the dispatched kernels.
//
// INTERNAL to src/lqcd/simd/: backend_scalar.cpp exposes these as the
// scalar table, and the AVX2/AVX-512 backends reuse them for loop tails so
// every tail is bit-identical to the scalar path. All translation units
// that include this header are compiled with -ffp-contract=off, which
// (together with the fixed accumulation order below) pins the scalar
// results bit-for-bit across compilers and -march levels: without
// contraction, none of these unit-stride elementwise loops gives the
// autovectorizer any reassociation freedom.
//
// The arithmetic is lifted operation-for-operation from the original
// in-header lane kernels (schwarz/schwarz.h, solver/mr.h) so the move
// behind the dispatch table preserves the instrumented-counter contract.
#pragma once

#include <cstdint>

#include "lqcd/base/aligned.h"
#include "lqcd/linalg/fp16.h"
#include "lqcd/su3/clover_block.h"
#include "lqcd/su3/gamma.h"

namespace lqcd::simd::ref {

/// One 3x3 complex matrix product, row-major (re,im) interleaved. The
/// accumulator starts from the k = 0 product (not from zero) so the wide
/// backends can start from their first product term and stay bit-identical
/// even for -0.0f outputs.
inline void su3_mul_nn_one(const float* a, const float* b,
                           float* c) noexcept {
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) {
      float cr = 0.0f, ci = 0.0f;
      for (int k = 0; k < 3; ++k) {
        const float ar = a[(i * 3 + k) * 2], ai = a[(i * 3 + k) * 2 + 1];
        const float br = b[(k * 3 + j) * 2], bi = b[(k * 3 + j) * 2 + 1];
        const float pr = ar * br - ai * bi;
        const float pi = ar * bi + ai * br;
        if (k == 0) {
          cr = pr;
          ci = pi;
        } else {
          cr += pr;
          ci += pi;
        }
      }
      c[(i * 3 + j) * 2] = cr;
      c[(i * 3 + j) * 2 + 1] = ci;
    }
}

inline void su3_mul_nn(const float* a, const float* b, float* c,
                       std::int64_t n) noexcept {
  for (std::int64_t m = 0; m < n; ++m)
    su3_mul_nn_one(a + m * 18, b + m * 18, c + m * 18);
}

/// out = a + s * phase*b, lane-wise, for one complex component pair.
/// In-place use (out == a) is fine: each lane reads before it writes.
inline void phase_madd(const float* a_re, const float* a_im,
                       const float* b_re, const float* b_im, Phase p, float s,
                       float* o_re, float* o_im, int lanes) noexcept {
  switch (p) {
    case Phase::kPlusOne:
      LQCD_PRAGMA_SIMD
      for (int l = 0; l < lanes; ++l) {
        o_re[l] = a_re[l] + s * b_re[l];
        o_im[l] = a_im[l] + s * b_im[l];
      }
      break;
    case Phase::kMinusOne:
      LQCD_PRAGMA_SIMD
      for (int l = 0; l < lanes; ++l) {
        o_re[l] = a_re[l] - s * b_re[l];
        o_im[l] = a_im[l] - s * b_im[l];
      }
      break;
    case Phase::kPlusI:
      LQCD_PRAGMA_SIMD
      for (int l = 0; l < lanes; ++l) {
        const float br = b_re[l], bi = b_im[l];
        o_re[l] = a_re[l] - s * bi;
        o_im[l] = a_im[l] + s * br;
      }
      break;
    case Phase::kMinusI:
    default:
      LQCD_PRAGMA_SIMD
      for (int l = 0; l < lanes; ++l) {
        const float br = b_re[l], bi = b_im[l];
        o_re[l] = a_re[l] + s * bi;
        o_im[l] = a_im[l] - s * br;
      }
      break;
  }
}

inline void project_lanes(const float* in_site, int mu, int sign, float* h,
                          int lanes) noexcept {
  const PermPhaseMatrix& g = kGamma[static_cast<std::size_t>(mu)];
  const float s = sign > 0 ? 1.0f : -1.0f;
  for (int r = 0; r < 2; ++r) {
    const int col = g.col[static_cast<std::size_t>(r)];
    for (int c = 0; c < kNumColors; ++c) {
      const float* a_re = in_site + (r * kNumColors + c) * 2 * lanes;
      const float* b_re = in_site + (col * kNumColors + c) * 2 * lanes;
      float* o_re = h + (r * kNumColors + c) * 2 * lanes;
      phase_madd(a_re, a_re + lanes, b_re, b_re + lanes,
                 g.phase[static_cast<std::size_t>(r)], s, o_re, o_re + lanes,
                 lanes);
    }
  }
}

inline void reconstruct_add_lanes(float* acc_site, const float* h, int mu,
                                  int sign, int lanes) noexcept {
  const PermPhaseMatrix& g = kGamma[static_cast<std::size_t>(mu)];
  const float s = sign > 0 ? 1.0f : -1.0f;
  for (int r = 0; r < 2; ++r)
    for (int c = 0; c < kNumColors; ++c) {
      float* a_re = acc_site + (r * kNumColors + c) * 2 * lanes;
      float* a_im = a_re + lanes;
      const float* h_re = h + (r * kNumColors + c) * 2 * lanes;
      const float* h_im = h_re + lanes;
      LQCD_PRAGMA_SIMD
      for (int l = 0; l < lanes; ++l) {
        a_re[l] += h_re[l];
        a_im[l] += h_im[l];
      }
    }
  for (int r = 2; r < kNumSpins; ++r) {
    const int col = g.col[static_cast<std::size_t>(r)];
    for (int c = 0; c < kNumColors; ++c) {
      float* a_re = acc_site + (r * kNumColors + c) * 2 * lanes;
      const float* b_re = h + (col * kNumColors + c) * 2 * lanes;
      phase_madd(a_re, a_re + lanes, b_re, b_re + lanes,
                 g.phase[static_cast<std::size_t>(r)], s, a_re, a_re + lanes,
                 lanes);
    }
  }
}

inline void su3_mul_lanes(const float* u, const float* x, float* y, int lanes,
                          int adjoint) noexcept {
  for (int sp = 0; sp < 2; ++sp)
    for (int i = 0; i < kNumColors; ++i) {
      float* y_re = y + (sp * kNumColors + i) * 2 * lanes;
      float* y_im = y_re + lanes;
      for (int j = 0; j < kNumColors; ++j) {
        // u[(row*3+col)*2] is the real part of U_{row,col}; the adjoint
        // path reads U_{j,i} and conjugates.
        const float ur = adjoint ? u[(j * 3 + i) * 2] : u[(i * 3 + j) * 2];
        const float ui = adjoint ? -u[(j * 3 + i) * 2 + 1]
                                 : u[(i * 3 + j) * 2 + 1];
        const float* x_re = x + (sp * kNumColors + j) * 2 * lanes;
        const float* x_im = x_re + lanes;
        if (j == 0) {
          LQCD_PRAGMA_SIMD
          for (int l = 0; l < lanes; ++l) {
            y_re[l] = ur * x_re[l] - ui * x_im[l];
            y_im[l] = ur * x_im[l] + ui * x_re[l];
          }
        } else {
          LQCD_PRAGMA_SIMD
          for (int l = 0; l < lanes; ++l) {
            y_re[l] += ur * x_re[l] - ui * x_im[l];
            y_im[l] += ur * x_im[l] + ui * x_re[l];
          }
        }
      }
    }
}

inline void clover_pair_lanes(const PackedHermitian6<float>* b0,
                              const PackedHermitian6<float>* b1,
                              const float* in_site, float* out_site,
                              int lanes) noexcept {
  const PackedHermitian6<float>* blocks[2] = {b0, b1};
  for (int chi = 0; chi < 2; ++chi) {
    const auto& blk = *blocks[chi];
    const float* x0 = in_site + chi * 2 * kCloverBlockDim * lanes;
    float* y0 = out_site + chi * 2 * kCloverBlockDim * lanes;
    for (int i = 0; i < kCloverBlockDim; ++i) {
      float* o_re = y0 + 2 * i * lanes;
      float* o_im = o_re + lanes;
      {
        const float di = blk.diag[i];
        const float* x_re = x0 + 2 * i * lanes;
        const float* x_im = x_re + lanes;
        LQCD_PRAGMA_SIMD
        for (int l = 0; l < lanes; ++l) {
          o_re[l] = di * x_re[l];
          o_im[l] = di * x_im[l];
        }
      }
      for (int j = 0; j < i; ++j) {
        const Complex<float> o = blk.offd[packed_index(i, j)];
        const float pr = o.real(), pi = o.imag();
        const float* x_re = x0 + 2 * j * lanes;
        const float* x_im = x_re + lanes;
        LQCD_PRAGMA_SIMD
        for (int l = 0; l < lanes; ++l) {
          o_re[l] += pr * x_re[l] - pi * x_im[l];
          o_im[l] += pr * x_im[l] + pi * x_re[l];
        }
      }
      for (int j = i + 1; j < kCloverBlockDim; ++j) {
        // acc += x[j] * conj(offd[j][i]), as in PackedHermitian6::apply.
        const Complex<float> o = blk.offd[packed_index(j, i)];
        const float pr = o.real(), pi = o.imag();
        const float* x_re = x0 + 2 * j * lanes;
        const float* x_im = x_re + lanes;
        LQCD_PRAGMA_SIMD
        for (int l = 0; l < lanes; ++l) {
          o_re[l] += x_re[l] * pr + x_im[l] * pi;
          o_im[l] += x_im[l] * pr - x_re[l] * pi;
        }
      }
    }
  }
}

inline void xpay_lanes(const float* x, float s, const float* y, float* out,
                       std::int64_t n) noexcept {
  LQCD_PRAGMA_SIMD
  for (std::int64_t k = 0; k < n; ++k) out[k] = x[k] + s * y[k];
}

inline void mr_dots_lanes(const float* r, const float* ar,
                          std::int64_t ncomplex, int lanes, double* arr_re,
                          double* arr_im, double* arar) noexcept {
  for (std::int64_t k = 0; k < ncomplex; ++k) {
    const float* rre = r + 2 * k * lanes;
    const float* rim = rre + lanes;
    const float* are = ar + 2 * k * lanes;
    const float* aim = are + lanes;
    LQCD_PRAGMA_SIMD
    for (int l = 0; l < lanes; ++l) {
      const double ar_ = are[l], ai_ = aim[l];
      const double rr_ = rre[l], ri_ = rim[l];
      arr_re[l] += ar_ * rr_ + ai_ * ri_;
      arr_im[l] += ar_ * ri_ - ai_ * rr_;
      arar[l] += ar_ * ar_ + ai_ * ai_;
    }
  }
}

inline void mr_axpy_lanes(float* z, float* r, const float* ar,
                          std::int64_t ncomplex, int lanes,
                          const float* alpha_re,
                          const float* alpha_im) noexcept {
  for (std::int64_t k = 0; k < ncomplex; ++k) {
    float* zre = z + 2 * k * lanes;
    float* zim = zre + lanes;
    float* rre = r + 2 * k * lanes;
    float* rim = rre + lanes;
    const float* are = ar + 2 * k * lanes;
    const float* aim = are + lanes;
    LQCD_PRAGMA_SIMD
    for (int l = 0; l < lanes; ++l) {
      zre[l] += alpha_re[l] * rre[l] - alpha_im[l] * rim[l];
      zim[l] += alpha_re[l] * rim[l] + alpha_im[l] * rre[l];
      rre[l] -= alpha_re[l] * are[l] - alpha_im[l] * aim[l];
      rim[l] -= alpha_re[l] * aim[l] + alpha_im[l] * are[l];
    }
  }
}

inline void float_to_half_n(const float* src, Half* dst,
                            std::int64_t n) noexcept {
  for (std::int64_t i = 0; i < n; ++i) dst[i] = float_to_half(src[i]);
}

inline void half_to_float_n(const Half* src, float* dst,
                            std::int64_t n) noexcept {
  for (std::int64_t i = 0; i < n; ++i) dst[i] = half_to_float(src[i]);
}

}  // namespace lqcd::simd::ref
