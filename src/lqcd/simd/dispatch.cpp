// Runtime backend selection: CPUID detection, LQCD_SIMD_BACKEND override,
// and the active-table pointer the hot paths read.
#include "lqcd/simd/dispatch.h"

#include <atomic>
#include <cstdlib>
#include <sstream>
#include <string>

#include "lqcd/base/error.h"
#include "lqcd/simd/backends.h"

namespace lqcd::simd {

namespace {

const Kernels* table_for(Backend b) noexcept {
  switch (b) {
    case Backend::kScalar:
      return detail::scalar_table();
    case Backend::kAvx2:
      return detail::avx2_table();
    case Backend::kAvx512:
    default:
      return detail::avx512_table();
  }
}

bool cpu_supports(Backend b) noexcept {
#if defined(__x86_64__) || defined(__i386__)
  switch (b) {
    case Backend::kScalar:
      return true;
    case Backend::kAvx2:
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma") &&
             __builtin_cpu_supports("f16c");
    case Backend::kAvx512:
    default:
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512vl") &&
             __builtin_cpu_supports("avx512bw") &&
             __builtin_cpu_supports("avx512dq");
  }
#else
  return b == Backend::kScalar;
#endif
}

std::string supported_names() {
  std::ostringstream os;
  bool first = true;
  for (const Backend b : available_backends()) {
    if (!first) os << "|";
    os << to_string(b);
    first = false;
  }
  return os.str();
}

/// Active table, published with release semantics so hot loops pay one
/// relaxed-ish load. nullptr until the first kernels() call resolves it.
std::atomic<const Kernels*> g_active{nullptr};

const Kernels* resolve_initial() {
  Backend b = detect_backend();
  if (const auto forced = backend_from_env()) b = *forced;
  return table_for(b);
}

}  // namespace

const char* to_string(Backend b) noexcept {
  switch (b) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kAvx512:
    default:
      return "avx512";
  }
}

Backend parse_backend(std::string_view name) {
  if (name == "scalar") return Backend::kScalar;
  if (name == "avx2") return Backend::kAvx2;
  if (name == "avx512") return Backend::kAvx512;
  LQCD_CHECK_MSG(false, "unknown SIMD backend \"" << std::string(name)
                                                  << "\" (expected "
                                                     "scalar|avx2|avx512)");
  // Unreachable; LQCD_CHECK_MSG throws.
  return Backend::kScalar;
}

bool backend_compiled(Backend b) noexcept { return table_for(b) != nullptr; }

bool backend_supported(Backend b) noexcept {
  return backend_compiled(b) && cpu_supports(b);
}

std::vector<Backend> available_backends() {
  std::vector<Backend> out;
  for (const Backend b :
       {Backend::kAvx512, Backend::kAvx2, Backend::kScalar})
    if (backend_supported(b)) out.push_back(b);
  return out;
}

Backend detect_backend() noexcept {
  if (backend_supported(Backend::kAvx512)) return Backend::kAvx512;
  if (backend_supported(Backend::kAvx2)) return Backend::kAvx2;
  return Backend::kScalar;
}

std::optional<Backend> backend_from_env() {
  const char* env = std::getenv("LQCD_SIMD_BACKEND");
  if (env == nullptr || *env == '\0') return std::nullopt;
  const Backend b = parse_backend(env);
  LQCD_CHECK_MSG(backend_supported(b),
                 "LQCD_SIMD_BACKEND=" << env
                                      << " is not usable on this machine "
                                         "(available: "
                                      << supported_names() << ")");
  return b;
}

// analyze-safe(parallel-reachability): the throwing env-var resolve runs
// on the FIRST call only; SchwarzPreconditioner's constructor calls
// kernels() eagerly (schwarz.h, ctor) before any parallel region, so
// in-sweep calls hit the resolved-pointer fast path and cannot throw.
const Kernels& kernels() {
  const Kernels* t = g_active.load(std::memory_order_acquire);
  if (t != nullptr) return *t;
  // Thread-safe one-shot init; a throwing resolve (bad env var) is
  // retried — and re-thrown — on every subsequent call.
  static const Kernels* resolved = resolve_initial();
  const Kernels* expected = nullptr;
  g_active.compare_exchange_strong(expected, resolved,
                                   std::memory_order_acq_rel);
  return *g_active.load(std::memory_order_acquire);
}

Backend active_backend() { return kernels().backend; }

void force_backend(Backend b) {
  LQCD_CHECK_MSG(backend_supported(b),
                 "SIMD backend " << to_string(b)
                                 << " is not usable on this machine "
                                    "(available: "
                                 << supported_names() << ")");
  kernels();  // ensure env validation ran once before overriding
  g_active.store(table_for(b), std::memory_order_release);
}

}  // namespace lqcd::simd
