// The Wilson hopping operator D_w and the Wilson–Clover operator
//   A = (N_d + m) - (1/2) D_w + D_cl            (paper Eq. 1)
//   D_w = sum_mu (1-gamma_mu) U_mu(x) delta_{x+mu} +
//                (1+gamma_mu) U_mu(x-mu)^dag delta_{x-mu}   (paper Eq. 2)
// plus the even-odd (Schur complement) pieces of Eq. 5.
//
// Flop counts per site follow the paper exactly: D_w = 1344, site-diagonal
// (clover+mass) = 504, full A = 1848.
#pragma once

#include <cstdint>

#include "lqcd/dirac/clover_term.h"
#include "lqcd/lattice/checkerboard.h"
#include "lqcd/linalg/blas.h"
#include "lqcd/linalg/fermion_field.h"

namespace lqcd {

inline constexpr std::int64_t kDslashFlopsPerSite = 1344;
inline constexpr std::int64_t kCloverFlopsPerSite = 504;
inline constexpr std::int64_t kWilsonCloverFlopsPerSite = 1848;

/// Hopping-term sum at one site: sum over 8 directions of
/// (1 -/+ gamma_mu) U psi(neighbor). `in` is indexed by full lattice index
/// through the `index_of` functor so the same kernel serves full-lattice
/// and checkerboarded fields.
template <class T, class IndexOf>
inline Spinor<T> dslash_site(const Geometry& g, const GaugeField<T>& u,
                             const FermionField<T>& in, std::int32_t x,
                             IndexOf&& index_of) noexcept {
  Spinor<T> acc;
  acc.zero();
  for (int mu = 0; mu < kNumDims; ++mu) {
    // Forward: (1 - gamma_mu) U_mu(x) psi(x+mu).
    {
      const std::int32_t xf = g.neighbor(x, mu, Dir::kForward);
      const HalfSpinor<T> h = project(in[index_of(xf)], mu, -1);
      reconstruct_add(acc, mul(u.link(x, mu), h), mu, -1);
    }
    // Backward: (1 + gamma_mu) U_mu(x-mu)^dag psi(x-mu).
    {
      const std::int32_t xb = g.neighbor(x, mu, Dir::kBackward);
      const HalfSpinor<T> h = project(in[index_of(xb)], mu, +1);
      reconstruct_add(acc, mul_adj(u.link(xb, mu), h), mu, +1);
    }
  }
  return acc;
}

template <class T>
class WilsonCloverOperator {
 public:
  /// `gauge` must outlive the operator. mass is the bare quark-mass
  /// parameter m of Eq. 1; csw the clover coefficient.
  WilsonCloverOperator(const Geometry& geom, const Checkerboard& cb,
                       const GaugeField<T>& gauge, T mass, T csw)
      : geom_(&geom),
        cb_(&cb),
        gauge_(&gauge),
        mass_(mass),
        csw_(csw),
        clover_(geom, gauge, mass, csw) {}

  const Geometry& geometry() const noexcept { return *geom_; }
  const Checkerboard& checkerboard() const noexcept { return *cb_; }
  const GaugeField<T>& gauge() const noexcept { return *gauge_; }
  const CloverTerm<T>& clover() const noexcept { return clover_; }
  T mass() const noexcept { return mass_; }
  T csw() const noexcept { return csw_; }

  /// out = D_w in (full lattice).
  void apply_dslash(const FermionField<T>& in, FermionField<T>& out) const {
    const auto volume = geom_->volume();
    LQCD_CHECK(in.size() == volume && out.size() == volume);
#pragma omp parallel for schedule(static) default(none) \
    shared(volume, in, out)
    for (std::int32_t x = 0; x < static_cast<std::int32_t>(volume); ++x)
      out[x] = dslash_site(*geom_, *gauge_, in, x,
                           [](std::int32_t i) { return i; });
    flops_ += volume * kDslashFlopsPerSite;
  }

  /// out = A in (full lattice).
  void apply(const FermionField<T>& in, FermionField<T>& out) const {
    const auto volume = geom_->volume();
    LQCD_CHECK(in.size() == volume && out.size() == volume);
    const T half = T(0.5);
#pragma omp parallel for schedule(static) default(none) \
    shared(volume, in, out, half)
    for (std::int32_t x = 0; x < static_cast<std::int32_t>(volume); ++x) {
      const Spinor<T> hop = dslash_site(*geom_, *gauge_, in, x,
                                        [](std::int32_t i) { return i; });
      Spinor<T> diag;
      clover_.apply_site(x, in[x], diag);
      for (int sp = 0; sp < kNumSpins; ++sp)
        for (int c = 0; c < kNumColors; ++c)
          out[x].s[sp].c[c] = diag.s[sp].c[c] - half * hop.s[sp].c[c];
    }
    flops_ += volume * kWilsonCloverFlopsPerSite;
  }

  /// out_cb (parity `out_parity`, checkerboard-indexed, half_volume sites)
  /// = D_w restricted to hops from the opposite parity. in_cb is indexed
  /// by the opposite parity's checkerboard ordering.
  void apply_dslash_cb(int out_parity, const FermionField<T>& in_cb,
                       FermionField<T>& out_cb) const {
    const auto half = cb_->half_volume();
    LQCD_CHECK(in_cb.size() == half && out_cb.size() == half);
    const auto& sites = cb_->sites(out_parity);
#pragma omp parallel for schedule(static) default(none) \
    shared(half, sites, in_cb, out_cb)
    for (std::int64_t i = 0; i < half; ++i) {
      const std::int32_t x = sites[static_cast<std::size_t>(i)];
      out_cb[i] = dslash_site(
          *geom_, *gauge_, in_cb, x,
          [this](std::int32_t full) { return cb_->cb_index(full); });
    }
    flops_ += half * kDslashFlopsPerSite;
  }

  /// Site-diagonal term on one parity: out_cb = (mass+clover) in_cb.
  void apply_diag_cb(int parity, const FermionField<T>& in_cb,
                     FermionField<T>& out_cb) const {
    const auto half = cb_->half_volume();
    LQCD_CHECK(in_cb.size() == half && out_cb.size() == half);
    const auto& sites = cb_->sites(parity);
#pragma omp parallel for schedule(static) default(none) \
    shared(half, sites, in_cb, out_cb)
    for (std::int64_t i = 0; i < half; ++i)
      clover_.apply_site(sites[static_cast<std::size_t>(i)], in_cb[i],
                         out_cb[i]);
    flops_ += half * kCloverFlopsPerSite;
  }

  /// Inverse site-diagonal on one parity (requires prepare_schur()).
  void apply_diag_inv_cb(int parity, const FermionField<T>& in_cb,
                         FermionField<T>& out_cb) const {
    LQCD_CHECK_MSG(clover_.has_inverses(),
                   "call prepare_schur() before Schur operations");
    const auto half = cb_->half_volume();
    LQCD_CHECK(in_cb.size() == half && out_cb.size() == half);
    const auto& sites = cb_->sites(parity);
#pragma omp parallel for schedule(static) default(none) \
    shared(half, sites, in_cb, out_cb)
    for (std::int64_t i = 0; i < half; ++i)
      clover_.apply_inv_site(sites[static_cast<std::size_t>(i)], in_cb[i],
                             out_cb[i]);
    flops_ += half * kCloverFlopsPerSite;
  }

  /// Precompute the odd-site block inverses used by the Schur complement.
  void prepare_schur() { clover_.compute_inverses(); }

  /// Recompute the clover term (and its Schur inverses, if prepared) from
  /// the CURRENT gauge links. The ABFT repair ladder calls this after
  /// restoring a corrupted gauge field from its verified master copy —
  /// the clover blocks are derived data, so they are rebuilt, not patched.
  void rebuild_clover() {
    const bool had_inverses = clover_.has_inverses();
    clover_ = CloverTerm<T>(*geom_, *gauge_, mass_, csw_);
    if (had_inverses) clover_.compute_inverses();
  }

  /// out_e = Dtilde_ee in_e = A_ee in_e - 1/4 D_eo A_oo^{-1} D_oe in_e
  /// (A_eo = -1/2 D_eo). Even-parity checkerboard fields.
  void apply_schur(const FermionField<T>& in_e, FermionField<T>& out_e) const {
    const auto half = cb_->half_volume();
    FermionField<T> tmp_o(half), tmp_o2(half), hop_e(half);
    apply_dslash_cb(/*out_parity=*/1, in_e, tmp_o);   // D_oe in_e
    apply_diag_inv_cb(1, tmp_o, tmp_o2);              // A_oo^{-1} ...
    apply_dslash_cb(/*out_parity=*/0, tmp_o2, hop_e); // D_eo ...
    apply_diag_cb(0, in_e, out_e);                    // A_ee in_e
    const T quarter = T(0.25);
#pragma omp parallel for schedule(static) default(none) \
    shared(half, quarter, hop_e, out_e)
    for (std::int64_t i = 0; i < half; ++i)
      for (int sp = 0; sp < kNumSpins; ++sp)
        for (int c = 0; c < kNumColors; ++c)
          out_e[i].s[sp].c[c] -= quarter * hop_e[i].s[sp].c[c];
  }

  /// Split a full-lattice field into its parity halves (cb ordering).
  void split(const FermionField<T>& full, FermionField<T>& even,
             FermionField<T>& odd) const {
    const auto half = cb_->half_volume();
    LQCD_CHECK(full.size() == geom_->volume());
    LQCD_CHECK(even.size() == half && odd.size() == half);
    for (std::int64_t i = 0; i < half; ++i) {
      even[i] = full[cb_->full_index(0, static_cast<std::int32_t>(i))];
      odd[i] = full[cb_->full_index(1, static_cast<std::int32_t>(i))];
    }
  }

  void merge(const FermionField<T>& even, const FermionField<T>& odd,
             FermionField<T>& full) const {
    const auto half = cb_->half_volume();
    LQCD_CHECK(full.size() == geom_->volume());
    for (std::int64_t i = 0; i < half; ++i) {
      full[cb_->full_index(0, static_cast<std::int32_t>(i))] = even[i];
      full[cb_->full_index(1, static_cast<std::int32_t>(i))] = odd[i];
    }
  }

  /// Schur right-hand side: fe_tilde = f_e - A_eo A_oo^{-1} f_o
  ///                                 = f_e + 1/2 D_eo A_oo^{-1} f_o.
  void schur_rhs(const FermionField<T>& f_e, const FermionField<T>& f_o,
                 FermionField<T>& fe_tilde) const {
    const auto half = cb_->half_volume();
    FermionField<T> tmp(half), hop(half);
    apply_diag_inv_cb(1, f_o, tmp);
    apply_dslash_cb(0, tmp, hop);
    const T hf = T(0.5);
#pragma omp parallel for schedule(static) default(none) \
    shared(half, hf, f_e, hop, fe_tilde)
    for (std::int64_t i = 0; i < half; ++i)
      for (int sp = 0; sp < kNumSpins; ++sp)
        for (int c = 0; c < kNumColors; ++c)
          fe_tilde[i].s[sp].c[c] =
              f_e[i].s[sp].c[c] + hf * hop[i].s[sp].c[c];
  }

  /// Reconstruct the odd half of the solution:
  ///   u_o = A_oo^{-1} (f_o - A_oe u_e) = A_oo^{-1} (f_o + 1/2 D_oe u_e).
  void reconstruct_odd(const FermionField<T>& f_o, const FermionField<T>& u_e,
                       FermionField<T>& u_o) const {
    const auto half = cb_->half_volume();
    FermionField<T> hop(half), rhs(half);
    apply_dslash_cb(1, u_e, hop);
    const T hf = T(0.5);
#pragma omp parallel for schedule(static) default(none) \
    shared(half, hf, f_o, hop, rhs)
    for (std::int64_t i = 0; i < half; ++i)
      for (int sp = 0; sp < kNumSpins; ++sp)
        for (int c = 0; c < kNumColors; ++c)
          rhs[i].s[sp].c[c] = f_o[i].s[sp].c[c] + hf * hop[i].s[sp].c[c];
    apply_diag_inv_cb(1, rhs, u_o);
  }

  std::int64_t flops() const noexcept { return flops_; }
  void reset_flops() const noexcept { flops_ = 0; }

 private:
  const Geometry* geom_;
  const Checkerboard* cb_;
  const GaugeField<T>* gauge_;
  T mass_;
  T csw_;
  CloverTerm<T> clover_;
  mutable std::int64_t flops_ = 0;
};

/// gamma_5 applied site-wise (for gamma5-hermiticity tests: gamma_5 A
/// gamma_5 = A^dag).
template <class T>
void apply_gamma5(const FermionField<T>& in, FermionField<T>& out) {
  LQCD_CHECK(in.size() == out.size());
  const std::int64_t n = in.size();
#pragma omp parallel for schedule(static) default(none) \
    shared(n, in, out, kGamma5)
  for (std::int64_t i = 0; i < n; ++i) out[i] = apply(kGamma5, in[i]);
}

}  // namespace lqcd
