// The Wilson–Clover site-diagonal term: (N_d + m) + D_cl.
//
// D_cl = c_sw * sum_{mu<nu} (i/4) sigma_{mu,nu} Fhat_{mu,nu}  (paper Eq. 3,
// with the ordered-pair sum folded into a factor 2), where Fhat is the
// traceless antihermitian "clover-leaf" average of the field strength.
// In the chiral basis this is block-diagonal: two Hermitian 6×6 blocks per
// site over (2 spins × 3 colors), stored packed (72 reals/site) exactly as
// the paper describes. The mass term (N_d + m) is folded into the diagonal,
// so a CloverTerm instance IS the full site-diagonal part of A.
#pragma once

#include <vector>

#include "lqcd/base/aligned.h"
#include "lqcd/gauge/gauge_field.h"
#include "lqcd/su3/clover_block.h"
#include "lqcd/su3/gamma.h"

namespace lqcd {

namespace detail {

/// Clover-leaf sum Q_{mu,nu}(x): the four plaquettes in the (mu,nu) plane
/// that touch x, each traversed counterclockwise starting at x.
template <class T>
SU3<T> clover_leaves(const Geometry& g, const GaugeField<T>& u,
                     std::int32_t x, int mu, int nu) {
  const std::int32_t xpm = g.neighbor(x, mu, Dir::kForward);
  const std::int32_t xpn = g.neighbor(x, nu, Dir::kForward);
  const std::int32_t xmm = g.neighbor(x, mu, Dir::kBackward);
  const std::int32_t xmn = g.neighbor(x, nu, Dir::kBackward);
  const std::int32_t xmm_pn = g.neighbor(xmm, nu, Dir::kForward);
  const std::int32_t xmm_mn = g.neighbor(xmm, nu, Dir::kBackward);
  const std::int32_t xpm_mn = g.neighbor(xpm, nu, Dir::kBackward);

  // Leaf 1: x -> x+mu -> x+mu+nu -> x+nu -> x
  SU3<T> p1 = mul(u.link(x, mu), u.link(xpm, nu));
  p1 = mul_adj(p1, u.link(xpn, mu));
  p1 = mul_adj(p1, u.link(x, nu));
  // Leaf 2: x -> x+nu -> x+nu-mu -> x-mu -> x
  SU3<T> p2 = mul_adj(u.link(x, nu), u.link(xmm_pn, mu));
  p2 = mul_adj(p2, u.link(xmm, nu));
  p2 = mul(p2, u.link(xmm, mu));
  // Leaf 3: x -> x-mu -> x-mu-nu -> x-nu -> x
  SU3<T> p3 = mul(adjoint(u.link(xmm, mu)), adjoint(u.link(xmm_mn, nu)));
  p3 = mul(p3, u.link(xmm_mn, mu));
  p3 = mul(p3, u.link(xmn, nu));
  // Leaf 4: x -> x-nu -> x+mu-nu -> x+mu -> x
  SU3<T> p4 = mul(adjoint(u.link(xmn, nu)), u.link(xmn, mu));
  p4 = mul(p4, u.link(xpm_mn, nu));
  p4 = mul_adj(p4, u.link(x, mu));

  return p1 + p2 + p3 + p4;
}

/// Fhat_{mu,nu} = traceless antihermitian part of Q/8 (the discretized
/// field-strength tensor; exactly zero on the free field).
template <class T>
SU3<T> field_strength(const Geometry& g, const GaugeField<T>& u,
                      std::int32_t x, int mu, int nu) {
  const SU3<T> q = clover_leaves(g, u, x, mu, nu);
  SU3<T> f = Complex<T>(T(0.125), 0) * (q - adjoint(q));
  const Complex<T> tr = trace(f);
  const Complex<T> third(tr.real() / kNumColors, tr.imag() / kNumColors);
  for (int i = 0; i < kNumColors; ++i) f.m[i][i] -= third;
  return f;
}

}  // namespace detail

template <class T>
class CloverTerm {
 public:
  /// Build the site-diagonal operator (N_d + m) + D_cl from a gauge field.
  CloverTerm(const Geometry& geom, const GaugeField<T>& u, T mass, T csw)
      : geom_(&geom),
        blocks_(static_cast<std::size_t>(geom.volume()) * 2) {
    const T diag_mass = static_cast<T>(kNumDims) + mass;
    const auto volume = geom.volume();

#pragma omp parallel for schedule(static) default(none) \
    shared(volume, geom, u, csw, diag_mass)
    for (std::int32_t x = 0; x < static_cast<std::int32_t>(volume); ++x) {
      // Dense accumulation per chirality: index i = spin_local*3 + color.
      Complex<T> dense[2][kCloverBlockDim][kCloverBlockDim] = {};
      if (csw != T(0)) {
        for (int mu = 0; mu < kNumDims; ++mu)
          for (int nu = mu + 1; nu < kNumDims; ++nu) {
            const SU3<T> f = detail::field_strength(geom, u, x, mu, nu);
            const PermPhaseMatrix sig = sigma_munu(mu, nu);
            // Entry: csw/4 * i*sigma[s][s'] * F[c][c'].
            for (int chi = 0; chi < 2; ++chi)
              for (int sl = 0; sl < 2; ++sl) {
                const int s = 2 * chi + sl;
                const int s_col = sig.col[static_cast<size_t>(s)];
                const int sl_col = s_col - 2 * chi;  // same chirality
                const Complex<T> coeff = mul_phase(
                    sig.phase[static_cast<size_t>(s)] * Phase::kPlusI,
                    Complex<T>(csw / T(4), 0));
                for (int c = 0; c < kNumColors; ++c)
                  for (int cp = 0; cp < kNumColors; ++cp)
                    dense[chi][sl * kNumColors + c][sl_col * kNumColors + cp] +=
                        coeff * f.m[c][cp];
              }
          }
      }
      for (int chi = 0; chi < 2; ++chi) {
        PackedHermitian6<T>& b = block_ref(x, chi);
        for (int i = 0; i < kCloverBlockDim; ++i) {
          b.diag[i] = dense[chi][i][i].real() + diag_mass;
          for (int j = 0; j < i; ++j)
            b.offd[packed_index(i, j)] = dense[chi][i][j];
        }
      }
    }
  }

  const Geometry& geometry() const noexcept { return *geom_; }

  const PackedHermitian6<T>& block(std::int32_t site,
                                   int chirality) const noexcept {
    return blocks_[static_cast<std::size_t>(site) * 2 +
                   static_cast<std::size_t>(chirality)];
  }

  /// out = block(site) * in (both chirality halves). 504 flops.
  void apply_site(std::int32_t site, const Spinor<T>& in,
                  Spinor<T>& out) const noexcept {
    for (int chi = 0; chi < 2; ++chi) {
      Complex<T> xv[kCloverBlockDim], yv[kCloverBlockDim];
      for (int sl = 0; sl < 2; ++sl)
        for (int c = 0; c < kNumColors; ++c)
          xv[sl * kNumColors + c] = in.s[2 * chi + sl].c[c];
      block(site, chi).apply(xv, yv);
      for (int sl = 0; sl < 2; ++sl)
        for (int c = 0; c < kNumColors; ++c)
          out.s[2 * chi + sl].c[c] = yv[sl * kNumColors + c];
    }
  }

  /// Precompute the blockwise inverses (needed on the odd sites by the
  /// Schur complement, Eq. 5).
  void compute_inverses() {
    inv_blocks_.resize(blocks_.size());
    const auto n = static_cast<std::int64_t>(blocks_.size());
    // A singular block (pathological gauge config) must not throw from
    // inside the region — that is std::terminate. Count failures and
    // throw once, after the region.
    std::int64_t n_singular = 0;
#pragma omp parallel for schedule(static) default(none) shared(n) \
    reduction(+ : n_singular)
    for (std::int64_t i = 0; i < n; ++i)
      if (!try_invert(blocks_[static_cast<std::size_t>(i)],
                      inv_blocks_[static_cast<std::size_t>(i)]))
        ++n_singular;
    if (n_singular != 0) {
      inv_blocks_.clear();  // keep has_inverses() false on failure
      LQCD_CHECK_MSG(n_singular == 0, "singular clover block(s)");
    }
  }

  bool has_inverses() const noexcept { return !inv_blocks_.empty(); }

  const PackedHermitian6<T>& inv_block(std::int32_t site,
                                       int chirality) const noexcept {
    return inv_blocks_[static_cast<std::size_t>(site) * 2 +
                       static_cast<std::size_t>(chirality)];
  }

  /// out = block(site)^{-1} * in.
  void apply_inv_site(std::int32_t site, const Spinor<T>& in,
                      Spinor<T>& out) const noexcept {
    for (int chi = 0; chi < 2; ++chi) {
      Complex<T> xv[kCloverBlockDim], yv[kCloverBlockDim];
      for (int sl = 0; sl < 2; ++sl)
        for (int c = 0; c < kNumColors; ++c)
          xv[sl * kNumColors + c] = in.s[2 * chi + sl].c[c];
      inv_block(site, chi).apply(xv, yv);
      for (int sl = 0; sl < 2; ++sl)
        for (int c = 0; c < kNumColors; ++c)
          out.s[2 * chi + sl].c[c] = yv[sl * kNumColors + c];
    }
  }

 private:
  PackedHermitian6<T>& block_ref(std::int32_t site, int chirality) noexcept {
    return blocks_[static_cast<std::size_t>(site) * 2 +
                   static_cast<std::size_t>(chirality)];
  }

  const Geometry* geom_;
  AlignedVector<PackedHermitian6<T>> blocks_;
  AlignedVector<PackedHermitian6<T>> inv_blocks_;
};

}  // namespace lqcd
