// Checkpoint/rollback monitor for restarted outer solvers.
//
// FGMRES-DR recomputes the TRUE residual b - A x at every cycle boundary
// while its Arnoldi recursion maintains a projected ESTIMATE of the same
// quantity. For a healthy solve the two agree to rounding; an undetected
// corruption of the iterate (SDC) leaves the recursion converging happily
// while the true residual runs away. The monitor exploits exactly that
// redundancy:
//
//   * each cycle whose true residual improves on the best checkpoint is
//     checkpointed (one extra field copy per cycle — the <2% overhead
//     budget of bench_resilience);
//   * a cycle whose true residual is non-finite, or exceeds the projected
//     estimate by `detect_ratio` AND is worse than the best checkpoint, is
//     declared corrupted: x is rolled back to the checkpoint and the
//     solver is told to discard its subspace and restart from there.
//
// An optional FaultInjector is invoked after the detection step, so an
// injected SDC lands between cycles and must be caught by the NEXT
// cycle's divergence check — the adversarial ordering.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <vector>

#include "lqcd/base/error.h"
#include "lqcd/resilience/fault_injector.h"
#include "lqcd/solver/linear_operator.h"

namespace lqcd {

// ---------------------------------------------------------------------------
// End-to-end ABFT: in-solve re-verification of the packed domain matrices
// with a detect -> localize -> repair escalation ladder.
//
// PR 4 stamped pack-time Fletcher-32 checksums on the Schwarz
// preconditioner's packed gauge/clover blocks but never re-checked them
// during a solve, so an in-solve upset was only caught — expensively — by
// the true-residual SDC detector and a full rollback. The AbftGuard closes
// the loop: every `verify_interval` preconditioner applications it sweeps
// the per-domain checksums (OpenMP-parallel, thread-count-invariant) and
// climbs the cheapest repair rung that restores integrity:
//
//   rung 1  localized repair: re-pack ONLY the bad domains from the
//           authoritative float source field (itself verified by its own
//           field-level checksum) — no rollback, no restart;
//   rung 2  source repair: the float source is corrupt too, so rebuild it
//           from the double master (verified against the checksum stamped
//           at solver construction), re-pack everything, and request a
//           CheckpointMonitor rollback of the iterate;
//   rung 3  the rollback request finds no checkpoint: the monitor restarts
//           the iterate from zero instead (flexible outer, still correct);
//   rung 4  the double master itself fails verification: throw AbftError —
//           a structured failure (Breakdown::kDataCorruption), never a
//           silent wrong answer, mirroring the collectives contract.
// ---------------------------------------------------------------------------

struct AbftConfig {
  bool enabled = false;
  /// Checksum-sweep period, counted in preconditioner applications (one
  /// per RHS for batched applies). 0 = auto-tune at solver construction
  /// from fault_probability_per_application via the Young/Daly optimizer.
  int verify_interval = 16;
  bool check_packed_gauge = true;   ///< verify packed gauge links
  bool check_packed_clover = true;  ///< verify packed clover blocks
  /// Verify the recycled deflation subspace between the solves of a
  /// batch; a mismatch discards the subspace (it is an optimization, not
  /// a correctness requirement) and counts as a detection.
  bool check_deflation = false;
  /// Expected packed-data upset probability per preconditioner
  /// application; the lambda of the Young/Daly verify-interval tuner.
  double fault_probability_per_application = 0.0;
  /// Cost of one checksum sweep, in units of one preconditioner
  /// application; the C of the verify-interval tuner. A sweep streams the
  /// packed matrices once (~1/20 of an application's memory traffic).
  double verify_cost_applications = 0.05;
};

struct AbftStats {
  std::int64_t verifications = 0;  ///< checksum sweeps run
  std::int64_t detections = 0;     ///< corrupt domains (or subspaces) found
  std::int64_t repacks = 0;        ///< rung-1 localized domain re-packs
  std::int64_t rollbacks = 0;      ///< rung-2/3 iterate rollbacks serviced
  std::int64_t escalations = 0;    ///< rung-2+ source repairs required

  AbftStats& operator+=(const AbftStats& o) noexcept {
    verifications += o.verifications;
    detections += o.detections;
    repacks += o.repacks;
    rollbacks += o.rollbacks;
    escalations += o.escalations;
    return *this;
  }
};

inline AbftStats operator+(AbftStats a, const AbftStats& b) noexcept {
  a += b;
  return a;
}

inline bool operator==(const AbftStats& a, const AbftStats& b) noexcept {
  return a.verifications == b.verifications && a.detections == b.detections &&
         a.repacks == b.repacks && a.rollbacks == b.rollbacks &&
         a.escalations == b.escalations;
}

/// Outcome of one checksum sweep, ordered by escalation rung.
enum class AbftStatus {
  kClean = 0,      ///< every checksum verified
  kRepaired,       ///< bad domains re-packed from an intact source
  kSourceRepaired, ///< source rebuilt from the master; rollback requested
  kFailed,         ///< master corrupt too — AbftError was thrown
};

inline const char* to_string(AbftStatus s) noexcept {
  switch (s) {
    case AbftStatus::kClean: return "clean";
    case AbftStatus::kRepaired: return "repaired";
    case AbftStatus::kSourceRepaired: return "source-repaired";
    case AbftStatus::kFailed: return "failed";
  }
  return "?";
}

/// Unrecoverable integrity failure: packed data corrupt and no verified
/// source to repair from. DDSolver converts it into a structured
/// SolverStats failure (Breakdown::kDataCorruption).
class AbftError : public Error {
 public:
  using Error::Error;
};

/// What the AbftGuard needs from a packed per-domain matrix store (the
/// Schwarz preconditioners implement this): per-domain corruption
/// localization, per-domain re-pack, and verification of the store's own
/// pack source.
class PackedDomainStore {
 public:
  virtual ~PackedDomainStore() = default;
  virtual int num_domains() const = 0;
  /// Storage-precision tag ("half"/"single") for diagnostics.
  virtual const char* store_name() const = 0;
  /// Append the indices of domains whose packed checksums no longer
  /// match, honoring the scope flags. Must be callable concurrently with
  /// nothing (the guard sweeps between applications, never inside one).
  virtual void find_corrupt_domains(bool check_gauge, bool check_clover,
                                    std::vector<int>& bad) const = 0;
  /// Re-pack one domain from the source field and restamp its checksums.
  virtual void repack_domain(int domain) = 0;
  /// Re-verify the pack source (float gauge + clover) against the
  /// field-level checksums stamped at pack time.
  virtual bool source_intact() const = 0;
};

/// Young/Daly optimal checkpoint interval.
///
/// For checkpoint cost C and system MTBF M (same time units), the
/// expected overhead per unit of useful work,
///   h(T) = C/T + (T/2 + R)/M,
/// is minimized at Young's T* = sqrt(2 C M). Daly's second-order solution
/// refines it for C not << M:
///   T* = sqrt(2 C M) [1 + (1/3) sqrt(C/(2M)) + (1/9) (C/(2M))] - C,
/// valid for C < 2M; beyond that checkpointing every MTBF is the sane
/// floor. Units cancel, so the same function tunes the cluster model's
/// wall-clock interval (seconds) and the ABFT verify interval
/// (preconditioner applications).
inline double daly_checkpoint_interval(double cost, double mtbf) noexcept {
  if (cost <= 0.0 || mtbf <= 0.0) return 0.0;
  if (cost >= 2.0 * mtbf) return mtbf;
  const double x = cost / (2.0 * mtbf);
  return std::sqrt(2.0 * cost * mtbf) *
             (1.0 + std::sqrt(x) / 3.0 + x / 9.0) -
         cost;
}

/// Drives periodic checksum sweeps over registered PackedDomainStores and
/// executes the repair ladder. Owned by DDSolver; note_application() is
/// called from the resilient adapter after every preconditioner
/// application (outside any parallel region).
class AbftGuard {
 public:
  explicit AbftGuard(const AbftConfig& config) : config_(config) {}

  const AbftConfig& config() const noexcept { return config_; }
  const AbftStats& stats() const noexcept { return stats_; }
  std::int64_t applications() const noexcept { return applications_; }
  AbftStatus last_status() const noexcept { return last_status_; }
  /// Application count at the most recent sweep that found corruption
  /// (for detection-latency measurements); -1 if none yet.
  std::int64_t last_detection_application() const noexcept {
    return last_detection_application_;
  }

  void add_store(PackedDomainStore* store) {
    if (store != nullptr) stores_.push_back(store);
  }

  /// Rung-2 callback: rebuild the float source from the verified double
  /// master and re-pack every store. Returns false if the master itself
  /// fails verification (rung 4).
  void set_source_repair(std::function<bool()> repair) {
    source_repair_ = std::move(repair);
  }

  /// New outer solve: clear any rollback request left unserviced (the
  /// previous solve may have ended before its next cycle boundary).
  void begin_solve() noexcept { rollback_requested_ = false; }

  /// One preconditioner application happened; sweep when the interval
  /// divides. Throws AbftError on an unrepairable ladder (rung 4).
  void note_application() {
    ++applications_;
    if (!config_.enabled || config_.verify_interval <= 0) return;
    if (applications_ % config_.verify_interval == 0) sweep();
  }

  /// A deflation-subspace verification ran; `intact` is its outcome. The
  /// caller (DDSolver) discards the subspace on mismatch — recycled
  /// deflation is an optimization, so discard IS the repair.
  void note_deflation_verification(bool intact) noexcept {
    ++stats_.verifications;
    if (!intact) {
      ++stats_.detections;
      last_detection_application_ = applications_;
    }
  }

  /// Run one checksum sweep over every registered store and climb the
  /// repair ladder as far as needed. Returns the worst rung reached.
  AbftStatus sweep() {
    ++stats_.verifications;
    AbftStatus status = AbftStatus::kClean;
    for (PackedDomainStore* store : stores_) {
      bad_.clear();
      store->find_corrupt_domains(config_.check_packed_gauge,
                                  config_.check_packed_clover, bad_);
      if (bad_.empty()) continue;
      stats_.detections += static_cast<std::int64_t>(bad_.size());
      last_detection_application_ = applications_;
      if (store->source_intact()) {
        // Rung 1: the packed copy is stale but its source is good —
        // re-pack just the bad domains, the solve never notices.
        for (int d : bad_) {
          store->repack_domain(d);
          ++stats_.repacks;
        }
        if (status == AbftStatus::kClean) status = AbftStatus::kRepaired;
        continue;
      }
      // Rung 2: the float source is corrupt too. Rebuild it from the
      // double master and re-pack EVERY store (they share the source),
      // then ask the checkpoint monitor to roll the iterate back — sweeps
      // already ran against bad matrices, so the iterate is suspect.
      ++stats_.escalations;
      if (!source_repair_ || !source_repair_()) {
        last_status_ = AbftStatus::kFailed;
        throw AbftError(
            "ABFT: packed matrices corrupt and no verified repair source "
            "(double master checksum mismatch)");
      }
      rollback_requested_ = true;
      status = AbftStatus::kSourceRepaired;
      break;  // source repair re-packed and restamped everything
    }
    last_status_ = status;
    return status;
  }

  /// Consumed by CheckpointMonitor::on_cycle at the next cycle boundary.
  bool take_rollback_request() noexcept {
    const bool r = rollback_requested_;
    rollback_requested_ = false;
    return r;
  }
  void note_rollback_serviced() noexcept { ++stats_.rollbacks; }

 private:
  AbftConfig config_;
  AbftStats stats_;
  std::vector<PackedDomainStore*> stores_;
  std::function<bool()> source_repair_;
  std::vector<int> bad_;  ///< scratch: corrupt domains of the current store
  std::int64_t applications_ = 0;
  std::int64_t last_detection_application_ = -1;
  AbftStatus last_status_ = AbftStatus::kClean;
  bool rollback_requested_ = false;
};

struct CheckpointMonitorConfig {
  /// True residual must exceed detect_ratio * estimate to count as
  /// diverged. Healthy flexible-GMRES cycles keep the two within a few
  /// percent, so 10x is far outside the fault-free envelope.
  double detect_ratio = 10.0;
};

struct CheckpointMonitorStats {
  int checkpoints = 0;   ///< iterate snapshots taken
  int rollbacks = 0;     ///< corruptions detected and rolled back
  std::int64_t injected = 0;  ///< faults the attached injector fired

  CheckpointMonitorStats& operator+=(const CheckpointMonitorStats& o) noexcept {
    checkpoints += o.checkpoints;
    rollbacks += o.rollbacks;
    injected += o.injected;
    return *this;
  }
};

template <class T>
class CheckpointMonitor final : public SolveMonitor<T> {
 public:
  explicit CheckpointMonitor(const CheckpointMonitorConfig& config = {},
                             FaultInjector* injector = nullptr)
      : config_(config), injector_(injector) {}

  const CheckpointMonitorStats& stats() const noexcept { return stats_; }

  void reset() noexcept {
    stats_ = CheckpointMonitorStats{};
    has_checkpoint_ = false;
  }

  /// Invalidate the snapshot (a new right-hand side means a new iterate);
  /// keeps the accumulated counters.
  void drop_checkpoint() noexcept { has_checkpoint_ = false; }

  /// Fold another monitor's counters into this one. A batched solve runs
  /// one monitor per right-hand side (checkpoints are per-iterate state
  /// and must never be shared across lanes) and merges the counters back
  /// into the solver's long-lived monitor afterwards.
  void absorb_stats(const CheckpointMonitorStats& o) noexcept { stats_ += o; }

  /// Attach the ABFT guard whose escalated (rung-2) repairs request an
  /// iterate rollback at the next cycle boundary.
  void set_abft_guard(AbftGuard* guard) noexcept { abft_ = guard; }

  bool on_cycle(int /*iterations*/, double estimated_rel_residual,
                double true_rel_residual, FermionField<T>& x) override {
    if (abft_ != nullptr && abft_->take_rollback_request()) {
      // The guard had to rebuild the pack source mid-solve: sweeps already
      // ran against corrupt matrices, so discard the suspect iterate.
      // Rung 2 rolls back to the checkpoint; rung 3 (no checkpoint yet)
      // restarts from zero — the flexible outer tolerates both.
      if (has_checkpoint_) {
        copy(checkpoint_, x);
      } else {
        x.zero();
      }
      abft_->note_rollback_serviced();
      ++stats_.rollbacks;
      return true;
    }
    bool rolled_back = false;
    const bool diverged =
        !std::isfinite(true_rel_residual) ||
        (true_rel_residual >
             config_.detect_ratio * std::max(estimated_rel_residual, 1e-300) &&
         has_checkpoint_ && true_rel_residual > checkpoint_rel_residual_);
    if (diverged && has_checkpoint_) {
      copy(checkpoint_, x);
      ++stats_.rollbacks;
      rolled_back = true;
    } else if (!diverged &&
               (!has_checkpoint_ ||
                true_rel_residual < checkpoint_rel_residual_)) {
      if (checkpoint_.size() != x.size())
        checkpoint_ = FermionField<T>(x.size());
      copy(x, checkpoint_);
      checkpoint_rel_residual_ = true_rel_residual;
      has_checkpoint_ = true;
      ++stats_.checkpoints;
    }
    // Inject AFTER detection: the corruption is silent until the next
    // cycle's true-residual recompute exposes it.
    if (injector_ != nullptr && injector_->maybe_corrupt(x, FaultSite::kIterate))
      ++stats_.injected;
    return rolled_back;
  }

 private:
  CheckpointMonitorConfig config_;
  FaultInjector* injector_;
  AbftGuard* abft_ = nullptr;
  CheckpointMonitorStats stats_;
  FermionField<T> checkpoint_;
  double checkpoint_rel_residual_ = 0.0;
  bool has_checkpoint_ = false;
};

}  // namespace lqcd
