// Checkpoint/rollback monitor for restarted outer solvers.
//
// FGMRES-DR recomputes the TRUE residual b - A x at every cycle boundary
// while its Arnoldi recursion maintains a projected ESTIMATE of the same
// quantity. For a healthy solve the two agree to rounding; an undetected
// corruption of the iterate (SDC) leaves the recursion converging happily
// while the true residual runs away. The monitor exploits exactly that
// redundancy:
//
//   * each cycle whose true residual improves on the best checkpoint is
//     checkpointed (one extra field copy per cycle — the <2% overhead
//     budget of bench_resilience);
//   * a cycle whose true residual is non-finite, or exceeds the projected
//     estimate by `detect_ratio` AND is worse than the best checkpoint, is
//     declared corrupted: x is rolled back to the checkpoint and the
//     solver is told to discard its subspace and restart from there.
//
// An optional FaultInjector is invoked after the detection step, so an
// injected SDC lands between cycles and must be caught by the NEXT
// cycle's divergence check — the adversarial ordering.
#pragma once

#include <cmath>

#include "lqcd/resilience/fault_injector.h"
#include "lqcd/solver/linear_operator.h"

namespace lqcd {

struct CheckpointMonitorConfig {
  /// True residual must exceed detect_ratio * estimate to count as
  /// diverged. Healthy flexible-GMRES cycles keep the two within a few
  /// percent, so 10x is far outside the fault-free envelope.
  double detect_ratio = 10.0;
};

struct CheckpointMonitorStats {
  int checkpoints = 0;   ///< iterate snapshots taken
  int rollbacks = 0;     ///< corruptions detected and rolled back
  std::int64_t injected = 0;  ///< faults the attached injector fired

  CheckpointMonitorStats& operator+=(const CheckpointMonitorStats& o) noexcept {
    checkpoints += o.checkpoints;
    rollbacks += o.rollbacks;
    injected += o.injected;
    return *this;
  }
};

template <class T>
class CheckpointMonitor final : public SolveMonitor<T> {
 public:
  explicit CheckpointMonitor(const CheckpointMonitorConfig& config = {},
                             FaultInjector* injector = nullptr)
      : config_(config), injector_(injector) {}

  const CheckpointMonitorStats& stats() const noexcept { return stats_; }

  void reset() noexcept {
    stats_ = CheckpointMonitorStats{};
    has_checkpoint_ = false;
  }

  /// Invalidate the snapshot (a new right-hand side means a new iterate);
  /// keeps the accumulated counters.
  void drop_checkpoint() noexcept { has_checkpoint_ = false; }

  /// Fold another monitor's counters into this one. A batched solve runs
  /// one monitor per right-hand side (checkpoints are per-iterate state
  /// and must never be shared across lanes) and merges the counters back
  /// into the solver's long-lived monitor afterwards.
  void absorb_stats(const CheckpointMonitorStats& o) noexcept { stats_ += o; }

  bool on_cycle(int /*iterations*/, double estimated_rel_residual,
                double true_rel_residual, FermionField<T>& x) override {
    bool rolled_back = false;
    const bool diverged =
        !std::isfinite(true_rel_residual) ||
        (true_rel_residual >
             config_.detect_ratio * std::max(estimated_rel_residual, 1e-300) &&
         has_checkpoint_ && true_rel_residual > checkpoint_rel_residual_);
    if (diverged && has_checkpoint_) {
      copy(checkpoint_, x);
      ++stats_.rollbacks;
      rolled_back = true;
    } else if (!diverged &&
               (!has_checkpoint_ ||
                true_rel_residual < checkpoint_rel_residual_)) {
      if (checkpoint_.size() != x.size())
        checkpoint_ = FermionField<T>(x.size());
      copy(x, checkpoint_);
      checkpoint_rel_residual_ = true_rel_residual;
      has_checkpoint_ = true;
      ++stats_.checkpoints;
    }
    // Inject AFTER detection: the corruption is silent until the next
    // cycle's true-residual recompute exposes it.
    if (injector_ != nullptr && injector_->maybe_corrupt(x, FaultSite::kIterate))
      ++stats_.injected;
    return rolled_back;
  }

 private:
  CheckpointMonitorConfig config_;
  FaultInjector* injector_;
  CheckpointMonitorStats stats_;
  FermionField<T> checkpoint_;
  double checkpoint_rel_residual_ = 0.0;
  bool has_checkpoint_ = false;
};

}  // namespace lqcd
