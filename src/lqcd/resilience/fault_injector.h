// Seedable fault injection for the resilient-solve layer.
//
// The paper's production setting — 1024 KNCs running a mixed
// half/single/double solver stack for days — is a regime where silent data
// corruption (SDC), fp16 range exhaustion, and node-level failures are
// operational facts, not corner cases. This injector lets tests and
// benchmarks create those faults deterministically:
//
//   * kSpinorBitFlip: flip one bit of one real component of a fermion
//     field (the classic SDC model — a DRAM/cache upset that ECC missed).
//   * kFp16Overflow:  overwrite one component with the result of storing
//     an out-of-range value through binary16, i.e. +-inf (the hardware
//     saturating down-convert of Sec. III-B).
//   * kZeroField:     zero the entire field (a defective block solve /
//     dropped message — the degenerate-direction breakdown class).
//   * kGaugeBitFlip:  flip one bit of one gauge-link component.
//
// Every fault site is drawn from the injector's own Rng, so a given
// (seed, schedule) reproduces the same fault sequence regardless of
// threading. Opportunities are counted at every hook invocation; faults
// fire only inside the configured [first_opportunity, ...] window, with
// the configured probability, until max_events is exhausted.
#pragma once

#include <bit>
#include <cstdint>

#include "lqcd/base/rng.h"
#include "lqcd/gauge/gauge_field.h"
#include "lqcd/linalg/fermion_field.h"
#include "lqcd/linalg/fp16.h"

namespace lqcd {

enum class FaultClass {
  kSpinorBitFlip,
  kFp16Overflow,
  kZeroField,
  kGaugeBitFlip,
};

struct FaultInjectorConfig {
  FaultClass fault = FaultClass::kSpinorBitFlip;
  std::uint64_t seed = 1;
  double probability = 1.0;   ///< chance of firing per eligible opportunity
  int max_events = 1;         ///< total fault budget (<0: unlimited)
  int first_opportunity = 0;  ///< hook calls to skip before arming
  /// Bit to flip for the bit-flip classes; -1 draws a random bit. High
  /// exponent bits (e.g. 62 for double, 30 for float) model the
  /// catastrophic upsets ABFT-style detection must catch.
  int bit = -1;
};

struct FaultInjectorStats {
  std::int64_t opportunities = 0;  ///< hook invocations seen
  std::int64_t events = 0;         ///< faults actually injected
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultInjectorConfig& config = {})
      : config_(config), rng_(config.seed) {}

  const FaultInjectorConfig& config() const noexcept { return config_; }
  const FaultInjectorStats& stats() const noexcept { return stats_; }

  /// Re-arm: restore the fault budget and the deterministic stream.
  void reset() noexcept {
    stats_ = FaultInjectorStats{};
    rng_ = Rng(config_.seed);
  }

  /// Injection hook for fermion fields. Returns true iff a fault fired.
  template <class T>
  bool maybe_corrupt(FermionField<T>& f) {
    if (!should_fire() || f.size() == 0) return false;
    switch (config_.fault) {
      case FaultClass::kZeroField:
        f.zero();
        break;
      case FaultClass::kFp16Overflow: {
        // What the saturating binary16 down-convert makes of any value
        // beyond the half range: a signed infinity in the stored field.
        T* reals = reinterpret_cast<T*>(f.data());
        const auto idx = rng_.uniform_u64(
            static_cast<std::uint64_t>(f.size()) * kSpinorReals);
        reals[idx] = static_cast<T>(half_round_trip(1.0e6f));
        break;
      }
      case FaultClass::kSpinorBitFlip:
      case FaultClass::kGaugeBitFlip: {
        T* reals = reinterpret_cast<T*>(f.data());
        const auto idx = rng_.uniform_u64(
            static_cast<std::uint64_t>(f.size()) * kSpinorReals);
        reals[idx] = flip_bit(reals[idx]);
        break;
      }
    }
    ++stats_.events;
    return true;
  }

  /// Injection hook for gauge fields: one bit of one link component.
  template <class T>
  bool maybe_corrupt(GaugeField<T>& gauge) {
    if (!should_fire()) return false;
    const auto volume = gauge.geometry().volume();
    const auto site = static_cast<std::int32_t>(
        rng_.uniform_u64(static_cast<std::uint64_t>(volume)));
    const int mu = static_cast<int>(rng_.uniform_u64(kNumDims));
    auto& link = gauge.link(site, mu);
    const int i = static_cast<int>(rng_.uniform_u64(kNumColors));
    const int j = static_cast<int>(rng_.uniform_u64(kNumColors));
    if (rng_.uniform() < 0.5) {
      link.m[i][j] = Complex<T>(flip_bit(link.m[i][j].real()),
                                link.m[i][j].imag());
    } else {
      link.m[i][j] = Complex<T>(link.m[i][j].real(),
                                flip_bit(link.m[i][j].imag()));
    }
    ++stats_.events;
    return true;
  }

 private:
  bool should_fire() {
    const std::int64_t opportunity = stats_.opportunities++;
    if (opportunity < config_.first_opportunity) return false;
    if (config_.max_events >= 0 && stats_.events >= config_.max_events)
      return false;
    return config_.probability >= 1.0 || rng_.uniform() < config_.probability;
  }

  float flip_bit(float v) {
    const int bit = config_.bit >= 0 && config_.bit < 32
                        ? config_.bit
                        : static_cast<int>(rng_.uniform_u64(32));
    return std::bit_cast<float>(std::bit_cast<std::uint32_t>(v) ^
                                (std::uint32_t{1} << bit));
  }
  double flip_bit(double v) {
    const int bit = config_.bit >= 0 && config_.bit < 64
                        ? config_.bit
                        : static_cast<int>(rng_.uniform_u64(64));
    return std::bit_cast<double>(std::bit_cast<std::uint64_t>(v) ^
                                 (std::uint64_t{1} << bit));
  }

  FaultInjectorConfig config_;
  Rng rng_;
  FaultInjectorStats stats_;
};

}  // namespace lqcd
