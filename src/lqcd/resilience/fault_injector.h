// Seedable fault injection for the resilient-solve layer.
//
// The paper's production setting — 1024 KNCs running a mixed
// half/single/double solver stack for days — is a regime where silent data
// corruption (SDC), fp16 range exhaustion, and node-level failures are
// operational facts, not corner cases. This injector lets tests and
// benchmarks create those faults deterministically:
//
//   * kSpinorBitFlip: flip one bit of one real component of a fermion
//     field (the classic SDC model — a DRAM/cache upset that ECC missed).
//   * kFp16Overflow:  overwrite one component with the result of storing
//     an out-of-range value through binary16, i.e. +-inf (the hardware
//     saturating down-convert of Sec. III-B).
//   * kZeroField:     zero the entire field (a defective block solve /
//     dropped message — the degenerate-direction breakdown class).
//   * kGaugeBitFlip:  flip one bit of one gauge-link component.
//   * kRankDeath:     a virtual rank stops responding mid-collective /
//                     mid-exchange (node failure detected by timeout).
//   * kMessageDrop:   one message is lost in the fabric (timeout +
//                     retransmit with bounded backoff).
//   * kMessageCorrupt: one message arrives bit-flipped (caught by the
//                     Fletcher payload checksum, then retransmitted).
//
// The last three are MESSAGE faults: they fire at communication hook
// sites (maybe_fault) and are inert at field-corruption hooks, which only
// note the opportunity. Every fault decision is drawn from the injector's
// own Rng, so a given (seed, schedule) reproduces the same fault sequence
// regardless of threading. Opportunities are counted at every hook
// invocation; faults fire only inside the configured
// [first_opportunity, ...] window, with the configured probability, until
// max_events is exhausted. Each hook reports its FaultSite so coverage is
// visible per site in FaultInjectorStats.
#pragma once

#include <bit>
#include <cstdint>
#include <type_traits>

#include "lqcd/base/rng.h"
#include "lqcd/gauge/gauge_field.h"
#include "lqcd/linalg/fermion_field.h"
#include "lqcd/linalg/fp16.h"

namespace lqcd {

enum class FaultClass {
  kSpinorBitFlip,
  kFp16Overflow,
  kZeroField,
  kGaugeBitFlip,
  kRankDeath,
  kMessageDrop,
  kMessageCorrupt,
};

/// Message faults target the communication layer (collective hops, halo
/// exchanges); they never fire at field-corruption hooks.
inline constexpr bool is_message_fault(FaultClass c) noexcept {
  return c == FaultClass::kRankDeath || c == FaultClass::kMessageDrop ||
         c == FaultClass::kMessageCorrupt;
}

/// Hook sites an injector can be attached to, for the per-site coverage
/// breakdown in FaultInjectorStats.
enum class FaultSite {
  kGeneric = 0,        ///< unattributed legacy hooks
  kIterate,            ///< outer-solver iterate (CheckpointMonitor)
  kSchwarzSweep,       ///< Schwarz sweep residual
  kGaugeField,         ///< gauge-link storage
  kTileDslash,         ///< tile/ SOA dslash output
  kDistributedSolver,  ///< vnode distributed BiCGstab residual
  kCollectiveHop,      ///< one hop of the proxy-tree allreduce
  kHaloExchange,       ///< one halo-exchange message
  kPackedMatrices,     ///< packed half/single gauge+clover blocks
};

inline constexpr int kNumFaultSites = 9;

inline const char* to_string(FaultSite s) noexcept {
  switch (s) {
    case FaultSite::kGeneric: return "generic";
    case FaultSite::kIterate: return "iterate";
    case FaultSite::kSchwarzSweep: return "schwarz-sweep";
    case FaultSite::kGaugeField: return "gauge-field";
    case FaultSite::kTileDslash: return "tile-dslash";
    case FaultSite::kDistributedSolver: return "distributed-solver";
    case FaultSite::kCollectiveHop: return "collective-hop";
    case FaultSite::kHaloExchange: return "halo-exchange";
    case FaultSite::kPackedMatrices: return "packed-matrices";
  }
  return "?";
}

struct FaultInjectorConfig {
  FaultClass fault = FaultClass::kSpinorBitFlip;
  std::uint64_t seed = 1;
  double probability = 1.0;   ///< chance of firing per eligible opportunity
  int max_events = 1;         ///< total fault budget (<0: unlimited)
  int first_opportunity = 0;  ///< hook calls to skip before arming
  /// Bit to flip for the bit-flip classes; -1 draws a random bit. High
  /// exponent bits (e.g. 62 for double, 30 for float) model the
  /// catastrophic upsets ABFT-style detection must catch.
  int bit = -1;
};

struct FaultInjectorStats {
  std::int64_t opportunities = 0;  ///< hook invocations seen
  std::int64_t events = 0;         ///< faults actually injected
  /// Per-hook-site breakdown, indexed by FaultSite.
  std::int64_t site_opportunities[kNumFaultSites] = {};
  std::int64_t site_events[kNumFaultSites] = {};

  std::int64_t opportunities_at(FaultSite s) const noexcept {
    return site_opportunities[static_cast<int>(s)];
  }
  std::int64_t events_at(FaultSite s) const noexcept {
    return site_events[static_cast<int>(s)];
  }
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultInjectorConfig& config = {})
      : config_(config), rng_(config.seed) {}

  const FaultInjectorConfig& config() const noexcept { return config_; }
  const FaultInjectorStats& stats() const noexcept { return stats_; }

  /// Re-arm: restore the fault budget and the deterministic stream.
  void reset() noexcept {
    stats_ = FaultInjectorStats{};
    rng_ = Rng(config_.seed);
  }

  /// Pure event-decision hook for message sites (collective hops, halo
  /// messages): returns true iff a fault fires at this opportunity. The
  /// caller interprets the configured FaultClass (drop / corrupt / death).
  bool maybe_fault(FaultSite site) {
    if (!should_fire(site)) return false;
    record_event(site);
    return true;
  }

  /// Injection hook for fermion fields. Returns true iff a fault fired.
  template <class T>
  bool maybe_corrupt(FermionField<T>& f,
                     FaultSite site = FaultSite::kGeneric) {
    if (is_message_fault(config_.fault)) {
      note_opportunity(site);
      return false;
    }
    if (!should_fire(site) || f.size() == 0) return false;
    switch (config_.fault) {
      case FaultClass::kZeroField:
        f.zero();
        break;
      case FaultClass::kFp16Overflow: {
        // What the saturating binary16 down-convert makes of any value
        // beyond the half range: a signed infinity in the stored field.
        T* reals = reinterpret_cast<T*>(f.data());
        const auto idx = rng_.uniform_u64(
            static_cast<std::uint64_t>(f.size()) * kSpinorReals);
        reals[idx] = static_cast<T>(half_round_trip(1.0e6f));
        break;
      }
      case FaultClass::kSpinorBitFlip:
      case FaultClass::kGaugeBitFlip: {
        T* reals = reinterpret_cast<T*>(f.data());
        const auto idx = rng_.uniform_u64(
            static_cast<std::uint64_t>(f.size()) * kSpinorReals);
        reals[idx] = flip_bit(reals[idx]);
        break;
      }
      case FaultClass::kRankDeath:
      case FaultClass::kMessageDrop:
      case FaultClass::kMessageCorrupt:
        return false;  // unreachable: guarded above
    }
    record_event(site);
    return true;
  }

  /// Injection hook for gauge fields: one bit of one link component.
  template <class T>
  bool maybe_corrupt(GaugeField<T>& gauge,
                     FaultSite site = FaultSite::kGaugeField) {
    if (is_message_fault(config_.fault)) {
      note_opportunity(site);
      return false;
    }
    if (!should_fire(site)) return false;
    const auto volume = gauge.geometry().volume();
    const auto site_idx = static_cast<std::int32_t>(
        rng_.uniform_u64(static_cast<std::uint64_t>(volume)));
    const int mu = static_cast<int>(rng_.uniform_u64(kNumDims));
    auto& link = gauge.link(site_idx, mu);
    const int i = static_cast<int>(rng_.uniform_u64(kNumColors));
    const int j = static_cast<int>(rng_.uniform_u64(kNumColors));
    if (rng_.uniform() < 0.5) {
      link.m[i][j] = Complex<T>(flip_bit(link.m[i][j].real()),
                                link.m[i][j].imag());
    } else {
      link.m[i][j] = Complex<T>(link.m[i][j].real(),
                                flip_bit(link.m[i][j].imag()));
    }
    record_event(site);
    return true;
  }

  /// Injection hook for raw scalar storage (tile/ SOA fields, packed
  /// half/single-precision matrix blocks): corrupts one element — or the
  /// whole range for kZeroField — per the configured class. U is float,
  /// double, or Half (binary16 storage scalar).
  template <class U>
  bool maybe_corrupt_reals(U* data, std::int64_t count, FaultSite site) {
    if (is_message_fault(config_.fault)) {
      note_opportunity(site);
      return false;
    }
    if (!should_fire(site) || count <= 0 || data == nullptr) return false;
    const auto idx = rng_.uniform_u64(static_cast<std::uint64_t>(count));
    switch (config_.fault) {
      case FaultClass::kZeroField:
        for (std::int64_t i = 0; i < count; ++i) data[i] = U{};
        break;
      case FaultClass::kFp16Overflow:
        if constexpr (std::is_same_v<U, Half>) {
          data[idx] = float_to_half(1.0e6f);
        } else {
          data[idx] = static_cast<U>(half_round_trip(1.0e6f));
        }
        break;
      case FaultClass::kSpinorBitFlip:
      case FaultClass::kGaugeBitFlip:
        data[idx] = flip_bit(data[idx]);
        break;
      case FaultClass::kRankDeath:
      case FaultClass::kMessageDrop:
      case FaultClass::kMessageCorrupt:
        return false;  // unreachable: guarded above
    }
    record_event(site);
    return true;
  }

 private:
  void note_opportunity(FaultSite site) noexcept {
    ++stats_.opportunities;
    ++stats_.site_opportunities[static_cast<int>(site)];
  }
  void record_event(FaultSite site) noexcept {
    ++stats_.events;
    ++stats_.site_events[static_cast<int>(site)];
  }

  bool should_fire(FaultSite site) {
    const std::int64_t opportunity = stats_.opportunities;
    note_opportunity(site);
    if (opportunity < config_.first_opportunity) return false;
    if (config_.max_events >= 0 && stats_.events >= config_.max_events)
      return false;
    return config_.probability >= 1.0 || rng_.uniform() < config_.probability;
  }

  float flip_bit(float v) {
    const int bit = config_.bit >= 0 && config_.bit < 32
                        ? config_.bit
                        : static_cast<int>(rng_.uniform_u64(32));
    return std::bit_cast<float>(std::bit_cast<std::uint32_t>(v) ^
                                (std::uint32_t{1} << bit));
  }
  double flip_bit(double v) {
    const int bit = config_.bit >= 0 && config_.bit < 64
                        ? config_.bit
                        : static_cast<int>(rng_.uniform_u64(64));
    return std::bit_cast<double>(std::bit_cast<std::uint64_t>(v) ^
                                 (std::uint64_t{1} << bit));
  }
  /// Half (binary16) storage scalar: flip one of its 16 bits.
  std::uint16_t flip_bit(std::uint16_t v) {
    const int bit = config_.bit >= 0 && config_.bit < 16
                        ? config_.bit
                        : static_cast<int>(rng_.uniform_u64(16));
    return static_cast<std::uint16_t>(v ^ (std::uint16_t{1} << bit));
  }

  FaultInjectorConfig config_;
  Rng rng_;
  FaultInjectorStats stats_;
};

}  // namespace lqcd
