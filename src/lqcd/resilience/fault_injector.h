// Seedable fault injection for the resilient-solve layer.
//
// The paper's production setting — 1024 KNCs running a mixed
// half/single/double solver stack for days — is a regime where silent data
// corruption (SDC), fp16 range exhaustion, and node-level failures are
// operational facts, not corner cases. This injector lets tests and
// benchmarks create those faults deterministically:
//
//   * kSpinorBitFlip: flip one bit of one real component of a fermion
//     field (the classic SDC model — a DRAM/cache upset that ECC missed).
//   * kFp16Overflow:  overwrite one component with the result of storing
//     an out-of-range value through binary16, i.e. +-inf (the hardware
//     saturating down-convert of Sec. III-B).
//   * kZeroField:     zero the entire field (a defective block solve /
//     dropped message — the degenerate-direction breakdown class).
//   * kGaugeBitFlip:  flip one bit of one gauge-link component.
//   * kRankDeath:     a virtual rank stops responding mid-collective /
//                     mid-exchange (node failure detected by timeout).
//   * kMessageDrop:   one message is lost in the fabric (timeout +
//                     retransmit with bounded backoff).
//   * kMessageCorrupt: one message arrives bit-flipped (caught by the
//                     Fletcher payload checksum, then retransmitted).
//
// The last three are MESSAGE faults: they fire at communication hook
// sites (maybe_fault) and are inert at field-corruption hooks, which only
// note the opportunity. Every fault decision is drawn from the injector's
// own Rng, so a given (seed, schedule) reproduces the same fault sequence
// regardless of threading. Opportunities are counted at every hook
// invocation; faults fire only inside the configured
// [first_opportunity, ...] window, with the configured probability, until
// max_events is exhausted. Each hook reports its FaultSite so coverage is
// visible per site in FaultInjectorStats.
#pragma once

#include <bit>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "lqcd/base/rng.h"
#include "lqcd/gauge/gauge_field.h"
#include "lqcd/linalg/fermion_field.h"
#include "lqcd/linalg/fp16.h"

namespace lqcd {

enum class FaultClass {
  kSpinorBitFlip,
  kFp16Overflow,
  kZeroField,
  kGaugeBitFlip,
  kRankDeath,
  kMessageDrop,
  kMessageCorrupt,
};

/// Message faults target the communication layer (collective hops, halo
/// exchanges); they never fire at field-corruption hooks.
inline constexpr bool is_message_fault(FaultClass c) noexcept {
  return c == FaultClass::kRankDeath || c == FaultClass::kMessageDrop ||
         c == FaultClass::kMessageCorrupt;
}

/// Hook sites an injector can be attached to, for the per-site coverage
/// breakdown in FaultInjectorStats.
enum class FaultSite {
  kGeneric = 0,        ///< unattributed legacy hooks
  kIterate,            ///< outer-solver iterate (CheckpointMonitor)
  kSchwarzSweep,       ///< Schwarz sweep residual
  kGaugeField,         ///< gauge-link storage
  kTileDslash,         ///< tile/ SOA dslash output
  kDistributedSolver,  ///< vnode distributed BiCGstab residual
  kCollectiveHop,      ///< one hop of the proxy-tree allreduce
  kHaloExchange,       ///< one halo-exchange message
  kPackedMatrices,     ///< packed half/single gauge+clover blocks
  kDomainSolve,        ///< one domain visit inside a parallel Schwarz sweep
  kPackedData,         ///< in-solve upset of one packed component between sweeps
};

inline constexpr int kNumFaultSites = 11;

inline const char* to_string(FaultSite s) noexcept {
  switch (s) {
    case FaultSite::kGeneric: return "generic";
    case FaultSite::kIterate: return "iterate";
    case FaultSite::kSchwarzSweep: return "schwarz-sweep";
    case FaultSite::kGaugeField: return "gauge-field";
    case FaultSite::kTileDslash: return "tile-dslash";
    case FaultSite::kDistributedSolver: return "distributed-solver";
    case FaultSite::kCollectiveHop: return "collective-hop";
    case FaultSite::kHaloExchange: return "halo-exchange";
    case FaultSite::kPackedMatrices: return "packed-matrices";
    case FaultSite::kDomainSolve: return "domain-solve";
    case FaultSite::kPackedData: return "packed-data";
  }
  return "?";
}

/// Sites whose hooks are pure event decisions (maybe_fault) rather than
/// field corruptions; at these the fault CLASS gate is the caller's job.
inline constexpr bool is_message_site(FaultSite s) noexcept {
  return s == FaultSite::kCollectiveHop || s == FaultSite::kHaloExchange;
}

struct FaultInjectorConfig {
  FaultClass fault = FaultClass::kSpinorBitFlip;
  std::uint64_t seed = 1;
  double probability = 1.0;   ///< chance of firing per eligible opportunity
  int max_events = 1;         ///< total fault budget (<0: unlimited)
  int first_opportunity = 0;  ///< hook calls to skip before arming
  /// Bit to flip for the bit-flip classes; -1 draws a random bit. High
  /// exponent bits (e.g. 62 for double, 30 for float) model the
  /// catastrophic upsets ABFT-style detection must catch.
  int bit = -1;
};

struct FaultInjectorStats {
  std::int64_t opportunities = 0;  ///< hook invocations seen
  std::int64_t events = 0;         ///< faults actually injected
  /// Per-hook-site breakdown, indexed by FaultSite.
  std::int64_t site_opportunities[kNumFaultSites] = {};
  std::int64_t site_events[kNumFaultSites] = {};

  std::int64_t opportunities_at(FaultSite s) const noexcept {
    return site_opportunities[static_cast<int>(s)];
  }
  std::int64_t events_at(FaultSite s) const noexcept {
    return site_events[static_cast<int>(s)];
  }

  /// Merge another shard's counters, preserving the per-site
  /// opportunity/event breakdown — the per-thread injector shards of a
  /// ParallelFaultScope are combined with exactly this.
  FaultInjectorStats& operator+=(const FaultInjectorStats& o) noexcept {
    opportunities += o.opportunities;
    events += o.events;
    for (int s = 0; s < kNumFaultSites; ++s) {
      site_opportunities[s] += o.site_opportunities[s];
      site_events[s] += o.site_events[s];
    }
    return *this;
  }
};

inline FaultInjectorStats operator+(FaultInjectorStats a,
                                    const FaultInjectorStats& b) noexcept {
  a += b;
  return a;
}

class FaultInjector {
 public:
  explicit FaultInjector(const FaultInjectorConfig& config = {})
      : config_(config), rng_(config.seed) {}

  const FaultInjectorConfig& config() const noexcept { return config_; }
  const FaultInjectorStats& stats() const noexcept { return stats_; }

  /// Re-arm: restore the fault budget and the deterministic stream.
  void reset() noexcept {
    stats_ = FaultInjectorStats{};
    rng_ = Rng(config_.seed);
    scope_epochs_ = 0;
  }

  /// Pure event-decision hook for message sites (collective hops, halo
  /// messages): returns true iff a fault fires at this opportunity. The
  /// caller interprets the configured FaultClass (drop / corrupt / death).
  bool maybe_fault(FaultSite site) {
    if (!should_fire(site)) return false;
    record_event(site);
    return true;
  }

  /// Injection hook for fermion fields. Returns true iff a fault fired.
  template <class T>
  bool maybe_corrupt(FermionField<T>& f,
                     FaultSite site = FaultSite::kGeneric) {
    if (is_message_fault(config_.fault)) {
      note_opportunity(site);
      return false;
    }
    if (!should_fire(site) || f.size() == 0) return false;
    switch (config_.fault) {
      case FaultClass::kZeroField:
        f.zero();
        break;
      case FaultClass::kFp16Overflow: {
        // What the saturating binary16 down-convert makes of any value
        // beyond the half range: a signed infinity in the stored field.
        T* reals = reinterpret_cast<T*>(f.data());
        const auto idx = rng_.uniform_u64(
            static_cast<std::uint64_t>(f.size()) * kSpinorReals);
        reals[idx] = static_cast<T>(half_round_trip(1.0e6f));
        break;
      }
      case FaultClass::kSpinorBitFlip:
      case FaultClass::kGaugeBitFlip: {
        T* reals = reinterpret_cast<T*>(f.data());
        const auto idx = rng_.uniform_u64(
            static_cast<std::uint64_t>(f.size()) * kSpinorReals);
        reals[idx] = flip_bit(reals[idx]);
        break;
      }
      case FaultClass::kRankDeath:
      case FaultClass::kMessageDrop:
      case FaultClass::kMessageCorrupt:
        return false;  // unreachable: guarded above
    }
    record_event(site);
    return true;
  }

  /// Injection hook for gauge fields: one bit of one link component.
  template <class T>
  bool maybe_corrupt(GaugeField<T>& gauge,
                     FaultSite site = FaultSite::kGaugeField) {
    if (is_message_fault(config_.fault)) {
      note_opportunity(site);
      return false;
    }
    if (!should_fire(site)) return false;
    const auto volume = gauge.geometry().volume();
    const auto site_idx = static_cast<std::int32_t>(
        rng_.uniform_u64(static_cast<std::uint64_t>(volume)));
    const int mu = static_cast<int>(rng_.uniform_u64(kNumDims));
    auto& link = gauge.link(site_idx, mu);
    const int i = static_cast<int>(rng_.uniform_u64(kNumColors));
    const int j = static_cast<int>(rng_.uniform_u64(kNumColors));
    if (rng_.uniform() < 0.5) {
      link.m[i][j] = Complex<T>(flip_bit(link.m[i][j].real()),
                                link.m[i][j].imag());
    } else {
      link.m[i][j] = Complex<T>(link.m[i][j].real(),
                                flip_bit(link.m[i][j].imag()));
    }
    record_event(site);
    return true;
  }

  /// Injection hook for raw scalar storage (tile/ SOA fields, packed
  /// half/single-precision matrix blocks): corrupts one element — or the
  /// whole range for kZeroField — per the configured class. U is float,
  /// double, or Half (binary16 storage scalar).
  template <class U>
  bool maybe_corrupt_reals(U* data, std::int64_t count, FaultSite site) {
    if (is_message_fault(config_.fault)) {
      note_opportunity(site);
      return false;
    }
    if (!should_fire(site) || count <= 0 || data == nullptr) return false;
    const auto idx = rng_.uniform_u64(static_cast<std::uint64_t>(count));
    switch (config_.fault) {
      case FaultClass::kZeroField:
        for (std::int64_t i = 0; i < count; ++i) data[i] = U{};
        break;
      case FaultClass::kFp16Overflow:
        if constexpr (std::is_same_v<U, Half>) {
          data[idx] = float_to_half(1.0e6f);
        } else {
          data[idx] = static_cast<U>(half_round_trip(1.0e6f));
        }
        break;
      case FaultClass::kSpinorBitFlip:
      case FaultClass::kGaugeBitFlip:
        data[idx] = flip_bit(data[idx]);
        break;
      case FaultClass::kRankDeath:
      case FaultClass::kMessageDrop:
      case FaultClass::kMessageCorrupt:
        return false;  // unreachable: guarded above
    }
    record_event(site);
    return true;
  }

 private:
  void note_opportunity(FaultSite site) noexcept {
    ++stats_.opportunities;
    ++stats_.site_opportunities[static_cast<int>(site)];
  }
  void record_event(FaultSite site) noexcept {
    ++stats_.events;
    ++stats_.site_events[static_cast<int>(site)];
  }

  bool should_fire(FaultSite site) {
    const std::int64_t opportunity = stats_.opportunities;
    note_opportunity(site);
    if (opportunity < config_.first_opportunity) return false;
    if (config_.max_events >= 0 && stats_.events >= config_.max_events)
      return false;
    return config_.probability >= 1.0 || rng_.uniform() < config_.probability;
  }

  float flip_bit(float v) { return flip_bit_with(rng_, config_.bit, v); }
  double flip_bit(double v) { return flip_bit_with(rng_, config_.bit, v); }
  std::uint16_t flip_bit(std::uint16_t v) {
    return flip_bit_with(rng_, config_.bit, v);
  }

  static float flip_bit_with(Rng& rng, int cfg_bit, float v) noexcept {
    const int bit = cfg_bit >= 0 && cfg_bit < 32
                        ? cfg_bit
                        : static_cast<int>(rng.uniform_u64(32));
    return std::bit_cast<float>(std::bit_cast<std::uint32_t>(v) ^
                                (std::uint32_t{1} << bit));
  }
  static double flip_bit_with(Rng& rng, int cfg_bit, double v) noexcept {
    const int bit = cfg_bit >= 0 && cfg_bit < 64
                        ? cfg_bit
                        : static_cast<int>(rng.uniform_u64(64));
    return std::bit_cast<double>(std::bit_cast<std::uint64_t>(v) ^
                                 (std::uint64_t{1} << bit));
  }
  /// Half (binary16) storage scalar: flip one of its 16 bits.
  static std::uint16_t flip_bit_with(Rng& rng, int cfg_bit,
                                     std::uint16_t v) noexcept {
    const int bit = cfg_bit >= 0 && cfg_bit < 16
                        ? cfg_bit
                        : static_cast<int>(rng.uniform_u64(16));
    return static_cast<std::uint16_t>(v ^ (std::uint16_t{1} << bit));
  }

  friend class ParallelFaultScope;

  FaultInjectorConfig config_;
  Rng rng_;
  FaultInjectorStats stats_;
  std::int64_t scope_epochs_ = 0;  ///< ParallelFaultScopes opened so far
};

/// Blessed thread-safe fault-hook API for OpenMP regions.
///
/// The serial FaultInjector hooks mutate a shared RNG and shared counters
/// and therefore MUST NOT be called from inside `omp parallel` regions
/// (tools/lqcd_lint.py enforces this). A ParallelFaultScope is the
/// race-free alternative for loops whose trip count is known up front —
/// e.g. the Schwarz sweep over the domains of one color:
///
///   * Construction (serial, before the region) pre-draws the fire
///     decision of every opportunity key in [0, num_keys), in key order,
///     from the injector's own RNG stream, honoring `probability`,
///     `first_opportunity` (against the injector's global opportunity
///     counter), and the `max_events` budget exactly as the serial hooks
///     would. The fault pattern is therefore a pure function of
///     (seed, schedule, key) — identical for ANY thread count or
///     iteration interleaving.
///   * Inside the region, thread `tid` calls maybe_corrupt_reals /
///     maybe_fault with its unique key. Corruption randomness (element,
///     bit) comes from a per-key forked RNG, never from shared state, and
///     counters accumulate in cache-line-padded per-thread shards. Hooks
///     are lock-free: no atomics, no mutexes.
///   * merge() (serial, at region exit — also run by the destructor)
///     folds the shards into the injector's FaultInjectorStats via the
///     commutative FaultInjectorStats::operator+=, so the merged counters
///     are deterministic and exactly equal across thread counts
///     (tests/test_thread_safety.cpp asserts this contract).
///
/// Each key must be visited at most once; serial injector hooks must not
/// run between construction and merge() (the pre-drawn budget assumes
/// the event counter is frozen for the scope's lifetime).
class ParallelFaultScope {
 public:
  /// Padded per-thread counter slot: one cache line per thread, so hot
  /// hooks never false-share.
  struct alignas(64) Shard {
    FaultInjectorStats stats;
  };

  /// `injector` may be nullptr: the scope is inert and every hook
  /// returns false without recording anything.
  ParallelFaultScope(FaultInjector* injector, FaultSite site,
                     std::int64_t num_keys, int num_threads)
      : injector_(injector), site_(site) {
    if (injector_ == nullptr || num_keys <= 0) return;
    shards_.resize(
        static_cast<std::size_t>(num_threads > 0 ? num_threads : 1));
    fire_.assign(static_cast<std::size_t>(num_keys), 0);
    epoch_ = injector_->scope_epochs_++;
    const FaultInjectorConfig& cfg = injector_->config_;
    // A corruption site is inert for message fault classes (mirrors the
    // serial maybe_corrupt* hooks): opportunities count, nothing fires,
    // no RNG draws.
    if (!is_message_site(site) && is_message_fault(cfg.fault)) return;
    const std::int64_t base_opportunity = injector_->stats_.opportunities;
    const std::int64_t base_events = injector_->stats_.events;
    std::int64_t fired = 0;
    for (std::int64_t k = 0; k < num_keys; ++k) {
      if (base_opportunity + k < cfg.first_opportunity) continue;
      if (cfg.max_events >= 0 && base_events + fired >= cfg.max_events)
        continue;
      if (cfg.probability >= 1.0 ||
          injector_->rng_.uniform() < cfg.probability) {
        fire_[static_cast<std::size_t>(k)] = 1;
        ++fired;
      }
    }
  }

  ~ParallelFaultScope() { merge(); }

  ParallelFaultScope(const ParallelFaultScope&) = delete;
  ParallelFaultScope& operator=(const ParallelFaultScope&) = delete;

  /// Pure event-decision hook (message sites). Thread-safe for distinct
  /// (tid, key) pairs.
  bool maybe_fault(int tid, std::int64_t key) noexcept {
    if (shards_.empty()) return false;
    note_opportunity(tid);
    return fire_[static_cast<std::size_t>(key)] != 0;
  }

  /// Corruption hook for raw scalar storage, the parallel counterpart of
  /// FaultInjector::maybe_corrupt_reals. U is float, double, or Half.
  template <class U>
  bool maybe_corrupt_reals(int tid, std::int64_t key, U* data,
                           std::int64_t count) {
    if (shards_.empty()) return false;
    note_opportunity(tid);
    if (fire_[static_cast<std::size_t>(key)] == 0 || count <= 0 ||
        data == nullptr)
      return false;
    const FaultInjectorConfig& cfg = injector_->config_;
    Rng sub = key_rng(cfg.seed, epoch_, key);
    const auto idx = sub.uniform_u64(static_cast<std::uint64_t>(count));
    switch (cfg.fault) {
      case FaultClass::kZeroField:
        for (std::int64_t i = 0; i < count; ++i) data[i] = U{};
        break;
      case FaultClass::kFp16Overflow:
        if constexpr (std::is_same_v<U, Half>) {
          data[idx] = float_to_half(1.0e6f);
        } else {
          data[idx] = static_cast<U>(half_round_trip(1.0e6f));
        }
        break;
      case FaultClass::kSpinorBitFlip:
      case FaultClass::kGaugeBitFlip:
        data[idx] = FaultInjector::flip_bit_with(sub, cfg.bit, data[idx]);
        break;
      case FaultClass::kRankDeath:
      case FaultClass::kMessageDrop:
      case FaultClass::kMessageCorrupt:
        return false;  // unreachable: such scopes pre-draw no fires
    }
    record_event(tid);
    return true;
  }

  /// Fold the per-thread shards into the injector's counters. Serial;
  /// idempotent (the destructor calls it too). Integer sums over a
  /// partition of the keys, so the result is independent of which thread
  /// visited which key.
  void merge() noexcept {
    if (injector_ == nullptr || merged_) return;
    for (const Shard& sh : shards_) injector_->stats_ += sh.stats;
    merged_ = true;
  }

 private:
  void note_opportunity(int tid) noexcept {
    FaultInjectorStats& st = shards_[static_cast<std::size_t>(tid)].stats;
    ++st.opportunities;
    ++st.site_opportunities[static_cast<int>(site_)];
  }
  void record_event(int tid) noexcept {
    FaultInjectorStats& st = shards_[static_cast<std::size_t>(tid)].stats;
    ++st.events;
    ++st.site_events[static_cast<int>(site_)];
  }

  /// Independent per-key RNG: splitmix64 over (seed, epoch, key) so the
  /// corruption detail (element, bit) is reproducible for any threading.
  static Rng key_rng(std::uint64_t seed, std::int64_t epoch,
                     std::int64_t key) noexcept {
    std::uint64_t sm = seed;
    sm ^= splitmix64(sm) + static_cast<std::uint64_t>(epoch);
    sm ^= splitmix64(sm) + static_cast<std::uint64_t>(key);
    return Rng(splitmix64(sm));
  }

  FaultInjector* injector_;
  FaultSite site_;
  std::int64_t epoch_ = 0;
  std::vector<char> fire_;     ///< pre-drawn decision per key
  std::vector<Shard> shards_;  ///< per-thread counter slots
  bool merged_ = false;
};

}  // namespace lqcd
