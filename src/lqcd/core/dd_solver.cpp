#include "lqcd/core/dd_solver.h"

namespace lqcd {

DDSolver::DDSolver(const Geometry& geom, const GaugeField<double>& gauge,
                   double mass, double csw, const DDSolverConfig& config)
    : config_(config), geom_(&geom), cb_(geom) {
  LQCD_CHECK(&gauge.geometry() == &geom);
  op_d_ = std::make_unique<WilsonCloverOperator<double>>(geom, cb_, gauge,
                                                         mass, csw);
  gauge_f_ = std::make_unique<GaugeField<float>>(convert<float>(gauge));
  op_f_ = std::make_unique<WilsonCloverOperator<float>>(
      geom, cb_, *gauge_f_, static_cast<float>(mass),
      static_cast<float>(csw));
  op_f_->prepare_schur();
  part_ = std::make_unique<DomainPartition>(geom, config.block);

  SchwarzParams sp;
  sp.schwarz_iterations = config.schwarz_iterations;
  sp.block_mr_iterations = config.block_mr_iterations;
  sp.additive = config.additive_schwarz;
  sp.half_precision_spinors = config.half_precision_spinors;
  Preconditioner<float>* inner = nullptr;
  if (config.half_precision_matrices) {
    schwarz_half_ =
        std::make_unique<SchwarzPreconditioner<Half>>(*part_, *op_f_, sp);
    inner = schwarz_half_.get();
  } else {
    schwarz_single_ =
        std::make_unique<SchwarzPreconditioner<float>>(*part_, *op_f_, sp);
    inner = schwarz_single_.get();
  }
  adapter_ = std::make_unique<SchwarzPrecondAdapter>(*inner, geom.volume());
  linop_ = std::make_unique<WilsonCloverLinOp<double>>(*op_d_);
}

SolverStats DDSolver::solve(const FermionField<double>& b,
                            FermionField<double>& x) {
  FGMRESDRParams p;
  p.basis_size = config_.basis_size;
  p.deflation_size = config_.deflation_size;
  p.tolerance = config_.tolerance;
  p.max_iterations = config_.max_iterations;
  return fgmres_dr_solve<double>(*linop_, adapter_.get(), b, x, p);
}

const SchwarzStats& DDSolver::schwarz_stats() const {
  return config_.half_precision_matrices ? schwarz_half_->stats()
                                         : schwarz_single_->stats();
}

void DDSolver::reset_stats() {
  if (schwarz_half_) schwarz_half_->reset_stats();
  if (schwarz_single_) schwarz_single_->reset_stats();
}

}  // namespace lqcd
