#include "lqcd/core/dd_solver.h"

namespace lqcd {

DDSolver::DDSolver(const Geometry& geom, const GaugeField<double>& gauge,
                   double mass, double csw, const DDSolverConfig& config)
    : config_(config), geom_(&geom), cb_(geom) {
  LQCD_CHECK(&gauge.geometry() == &geom);
  op_d_ = std::make_unique<WilsonCloverOperator<double>>(geom, cb_, gauge,
                                                         mass, csw);
  gauge_f_ = std::make_unique<GaugeField<float>>(convert<float>(gauge));
  op_f_ = std::make_unique<WilsonCloverOperator<float>>(
      geom, cb_, *gauge_f_, static_cast<float>(mass),
      static_cast<float>(csw));
  op_f_->prepare_schur();
  part_ = std::make_unique<DomainPartition>(geom, config.block);

  SchwarzParams sp;
  sp.schwarz_iterations = config.schwarz_iterations;
  sp.block_mr_iterations = config.block_mr_iterations;
  sp.additive = config.additive_schwarz;
  sp.half_precision_spinors = config.half_precision_spinors;
  const ResilienceConfig& rc = config.resilience;
  if (rc.enabled) sp.fault_injector = rc.schwarz_injector;
  Preconditioner<float>* inner = nullptr;
  if (config.half_precision_matrices) {
    schwarz_half_ =
        std::make_unique<SchwarzPreconditioner<Half>>(*part_, *op_f_, sp);
    inner = schwarz_half_.get();
    if (rc.enabled && rc.precision_fallback) {
      // Single-precision fallback matrices, fault-free: the retry target
      // when a half-precision sweep output goes non-finite.
      SchwarzParams sp_clean = sp;
      sp_clean.fault_injector = nullptr;
      schwarz_single_ = std::make_unique<SchwarzPreconditioner<float>>(
          *part_, *op_f_, sp_clean);
    }
  } else {
    schwarz_single_ =
        std::make_unique<SchwarzPreconditioner<float>>(*part_, *op_f_, sp);
    inner = schwarz_single_.get();
  }
  if (rc.enabled) {
    Preconditioner<float>* fallback =
        (config.half_precision_matrices && rc.precision_fallback)
            ? schwarz_single_.get()
            : nullptr;
    auto on_fallback = [this] {
      if (schwarz_half_) schwarz_half_->note_precision_fallback();
    };
    resilient_adapter_ = std::make_unique<ResilientSchwarzAdapter>(
        *inner, fallback, on_fallback, geom.volume());
    if (rc.checkpoint_rollback) {
      CheckpointMonitorConfig mc;
      mc.detect_ratio = rc.rollback_detect_ratio;
      monitor_ =
          std::make_unique<CheckpointMonitor<double>>(mc, rc.iterate_injector);
    }
  } else {
    adapter_ = std::make_unique<SchwarzPrecondAdapter>(*inner, geom.volume());
  }
  linop_ = std::make_unique<WilsonCloverLinOp<double>>(*op_d_);
}

SolverStats DDSolver::solve(const FermionField<double>& b,
                            FermionField<double>& x) {
  FGMRESDRParams p;
  p.basis_size = config_.basis_size;
  p.deflation_size = config_.deflation_size;
  p.tolerance = config_.tolerance;
  p.max_iterations = config_.max_iterations;
  if (monitor_) monitor_->drop_checkpoint();
  Preconditioner<double>* pre = resilient_adapter_
                                    ? static_cast<Preconditioner<double>*>(
                                          resilient_adapter_.get())
                                    : adapter_.get();
  return fgmres_dr_solve<double>(*linop_, pre, b, x, p, monitor_.get());
}

const SchwarzStats& DDSolver::schwarz_stats() const {
  return config_.half_precision_matrices ? schwarz_half_->stats()
                                         : schwarz_single_->stats();
}

void DDSolver::reset_stats() {
  if (schwarz_half_) schwarz_half_->reset_stats();
  if (schwarz_single_) schwarz_single_->reset_stats();
  if (monitor_) monitor_->reset();
}

}  // namespace lqcd
