#include "lqcd/core/dd_solver.h"

#include <algorithm>
#include <cmath>

#include "lqcd/base/checksum.h"

namespace lqcd {

namespace {

/// Fletcher-32 over a recycled deflation subspace (basis vectors, the
/// preconditioned images, and the projected Hessenberg): the
/// check_deflation scope of the ABFT layer.
std::uint32_t deflation_checksum(const DeflationSpace<double>& s) {
  Fletcher32 f;
  for (const auto& v : s.v) f.update(v.data(), v.size() * sizeof(Spinor<double>));
  for (const auto& z : s.z) f.update(z.data(), z.size() * sizeof(Spinor<double>));
  for (int r = 0; r < s.h.rows(); ++r)
    for (int c = 0; c < s.h.cols(); ++c) {
      const densela::Cplx e = s.h(r, c);
      f.update(&e, sizeof(e));
    }
  return f.value();
}

/// All-lane structured failure for an unrepairable data-corruption ladder.
SolverStats data_corruption_stats() {
  SolverStats st;
  st.converged = false;
  st.breakdown = Breakdown::kDataCorruption;
  return st;
}

/// Structured refusal when the gauge field was mutated under the solver:
/// no arithmetic ran, nothing was written to x.
SolverStats stale_setup_stats() {
  SolverStats st;
  st.converged = false;
  st.breakdown = Breakdown::kStaleSetup;
  return st;
}

}  // namespace

DDSolverSetup::DDSolverSetup(const Geometry& geom,
                             const GaugeField<double>& gauge, double mass,
                             double csw, const DDSolverConfig& config)
    : geom_(&geom), master_(&gauge), mass_(mass), csw_(csw), cb_(geom) {
  LQCD_CHECK(&gauge.geometry() == &geom);
  op_d_ = std::make_unique<WilsonCloverOperator<double>>(geom, cb_, gauge,
                                                         mass, csw);
  gauge_f_ = std::make_unique<GaugeField<float>>(convert<float>(gauge));
  op_f_ = std::make_unique<WilsonCloverOperator<float>>(
      geom, cb_, *gauge_f_, static_cast<float>(mass),
      static_cast<float>(csw));
  op_f_->prepare_schur();
  part_ = std::make_unique<DomainPartition>(geom, config.block);
  // Pack exactly the precisions this config's solve path can touch: half
  // as the primary when half_precision_matrices, single as the primary
  // otherwise — plus single as the fp16-overflow retry target when the
  // resilient precision fallback is armed.
  if (config.half_precision_matrices) {
    schwarz_half_ = std::make_shared<SchwarzSetup<Half>>(*part_, *op_f_);
    if (config.resilience.enabled && config.resilience.precision_fallback)
      schwarz_single_ = std::make_shared<SchwarzSetup<float>>(*part_, *op_f_);
  } else {
    schwarz_single_ = std::make_shared<SchwarzSetup<float>>(*part_, *op_f_);
  }
  gauge_checksum_ = gauge.content_checksum();
}

bool DDSolverSetup::repair_from_master() {
  if (master_->content_checksum() != gauge_checksum_) return false;
  // Rebuild the float source from the verified double master, the
  // derived clover term from it, then re-pack every store.
  *gauge_f_ = convert<float>(*master_);
  op_f_->rebuild_clover();
  if (schwarz_half_) schwarz_half_->repack_all();
  if (schwarz_single_) schwarz_single_->repack_all();
  return true;
}

DDSolverSetup::DDSolverSetup(std::unique_ptr<const Geometry> geom,
                             std::unique_ptr<const GaugeField<double>> gauge,
                             double mass, double csw,
                             const DDSolverConfig& config)
    : DDSolverSetup(*geom, *gauge, mass, csw, config) {
  owned_geom_ = std::move(geom);
  owned_master_ = std::move(gauge);
}

std::shared_ptr<DDSolverSetup> DDSolverSetup::make_owning(
    const Geometry& geom, const GaugeField<double>& gauge, double mass,
    double csw, const DDSolverConfig& config) {
  auto g = std::make_unique<const Geometry>(geom);
  // Rebase the link copy onto the owned geometry so nothing in the setup
  // can dangle on caller storage.
  auto u = std::make_unique<const GaugeField<double>>(*g, gauge);
  return std::make_shared<DDSolverSetup>(std::move(g), std::move(u), mass, csw,
                                         config);
}

DDSolver::DDSolver(const Geometry& geom, const GaugeField<double>& gauge,
                   double mass, double csw, const DDSolverConfig& config)
    : DDSolver(std::make_shared<DDSolverSetup>(geom, gauge, mass, csw, config),
               config) {}

DDSolver::DDSolver(std::shared_ptr<DDSolverSetup> setup,
                   const DDSolverConfig& config)
    : config_(config), setup_(std::move(setup)) {
  LQCD_CHECK(setup_ != nullptr);
  SchwarzParams sp;
  sp.schwarz_iterations = config.schwarz_iterations;
  sp.block_mr_iterations = config.block_mr_iterations;
  sp.additive = config.additive_schwarz;
  sp.half_precision_spinors = config.half_precision_spinors;
  const ResilienceConfig& rc = config.resilience;
  if (rc.enabled) {
    sp.fault_injector = rc.schwarz_injector;
    sp.packed_fault_injector = rc.packed_injector;
  }
  Preconditioner<float>* inner = nullptr;
  if (config.half_precision_matrices) {
    LQCD_CHECK_MSG(setup_->schwarz_half() != nullptr,
                   "setup was built without half-precision matrices");
    schwarz_half_ = std::make_unique<SchwarzPreconditioner<Half>>(
        setup_->schwarz_half(), sp);
    inner = schwarz_half_.get();
    if (rc.enabled && rc.precision_fallback) {
      LQCD_CHECK_MSG(setup_->schwarz_single() != nullptr,
                     "setup was built without the single-precision fallback");
      // Single-precision fallback matrices, fault-free: the retry target
      // when a half-precision sweep output goes non-finite.
      SchwarzParams sp_clean = sp;
      sp_clean.fault_injector = nullptr;
      sp_clean.packed_fault_injector = nullptr;
      schwarz_single_ = std::make_unique<SchwarzPreconditioner<float>>(
          setup_->schwarz_single(), sp_clean);
    }
  } else {
    LQCD_CHECK_MSG(setup_->schwarz_single() != nullptr,
                   "setup was built without single-precision matrices");
    schwarz_single_ = std::make_unique<SchwarzPreconditioner<float>>(
        setup_->schwarz_single(), sp);
    inner = schwarz_single_.get();
  }
  const Geometry& geom = setup_->geometry();
  if (rc.enabled) {
    Preconditioner<float>* fallback =
        (config.half_precision_matrices && rc.precision_fallback)
            ? schwarz_single_.get()
            : nullptr;
    auto on_fallback = [this] {
      if (schwarz_half_) schwarz_half_->note_precision_fallback();
    };
    resilient_adapter_ = std::make_unique<ResilientSchwarzAdapter>(
        *inner, fallback, on_fallback, geom.volume());
    if (rc.checkpoint_rollback) {
      CheckpointMonitorConfig mc;
      mc.detect_ratio = rc.rollback_detect_ratio;
      monitor_ =
          std::make_unique<CheckpointMonitor<double>>(mc, rc.iterate_injector);
    }
    if (rc.abft.enabled) {
      AbftConfig ac = rc.abft;
      if (ac.verify_interval == 0) {
        // Young/Daly in application units: verify cost C against a packed
        // -upset MTBF of 1/p applications. Falls back to the default
        // period when no fault rate was supplied.
        ac.verify_interval =
            ac.fault_probability_per_application > 0.0
                ? std::max<int>(
                      1, static_cast<int>(std::llround(
                             daly_checkpoint_interval(
                                 ac.verify_cost_applications,
                                 1.0 / ac.fault_probability_per_application))))
                : AbftConfig{}.verify_interval;
      }
      abft_guard_ = std::make_unique<AbftGuard>(ac);
      if (schwarz_half_) abft_guard_->add_store(schwarz_half_.get());
      if (schwarz_single_) abft_guard_->add_store(schwarz_single_.get());
      abft_guard_->set_source_repair(
          [this]() -> bool { return setup_->repair_from_master(); });
      resilient_adapter_->set_abft_guard(abft_guard_.get());
      if (monitor_) monitor_->set_abft_guard(abft_guard_.get());
    }
  } else {
    adapter_ = std::make_unique<SchwarzPrecondAdapter>(*inner, geom.volume());
  }
  linop_ = std::make_unique<WilsonCloverLinOp<double>>(setup_->op_d());
}

FGMRESDRParams DDSolver::outer_params() const {
  FGMRESDRParams p;
  p.basis_size = config_.basis_size;
  p.deflation_size = config_.deflation_size;
  p.tolerance = config_.tolerance;
  p.max_iterations = config_.max_iterations;
  p.stagnation_threshold = config_.stagnation_threshold;
  p.max_stagnant_cycles = config_.max_stagnant_cycles;
  return p;
}

bool DDSolver::setup_is_stale() const {
  return config_.stale_setup_check &&
         setup_->master().content_checksum() != setup_->gauge_checksum();
}

SolverStats DDSolver::solve(const FermionField<double>& b,
                            FermionField<double>& x) {
  if (setup_is_stale()) return stale_setup_stats();
  if (monitor_) monitor_->drop_checkpoint();
  if (abft_guard_) abft_guard_->begin_solve();
  Preconditioner<double>* pre = resilient_adapter_
                                    ? static_cast<Preconditioner<double>*>(
                                          resilient_adapter_.get())
                                    : adapter_.get();
  try {
    SolverStats st = fgmres_dr_solve<double>(*linop_, pre, b, x,
                                             outer_params(), monitor_.get());
    // Closing sweep: corruption after the last periodic sweep must not
    // survive into the next solve (or go unreported) — every upset is
    // repaired or escalates before this call returns.
    if (abft_guard_) abft_guard_->sweep();
    return st;
  } catch (const AbftError&) {
    return data_corruption_stats();
  }
}

std::vector<SolverStats> DDSolver::solve_batch(
    const std::vector<FermionField<double>>& b,
    std::vector<FermionField<double>>& x) {
  return solve_batch(b, x, BatchSolveOptions{});
}

std::vector<SolverStats> DDSolver::solve_batch(
    const std::vector<FermionField<double>>& b,
    std::vector<FermionField<double>>& x, const BatchSolveOptions& options) {
  LQCD_CHECK_MSG(b.size() == x.size(), "solve_batch needs |b| == |x|");
  LQCD_CHECK_MSG(
      options.tolerances.empty() || options.tolerances.size() == b.size(),
      "solve_batch options need one tolerance per RHS (or none)");
  const int nrhs = static_cast<int>(b.size());
  std::vector<SolverStats> out(static_cast<std::size_t>(nrhs));
  if (nrhs == 0) return out;
  if (setup_is_stale()) {
    for (auto& st : out) st = stale_setup_stats();
    return out;
  }

  // Per-lane outer parameters: each RHS converges at its OWN tolerance —
  // the engines are per-lane, so a tight lane keeps iterating (and a
  // converged loose lane stops consuming preconditioner work) no matter
  // what the rest of the batch targets.
  std::vector<FGMRESDRParams> lane_params(static_cast<std::size_t>(nrhs),
                                          outer_params());
  for (std::size_t i = 0; i < options.tolerances.size(); ++i)
    lane_params[i].tolerance = options.tolerances[i];

  BatchPreconditioner<double>* pre =
      resilient_adapter_
          ? static_cast<BatchPreconditioner<double>*>(resilient_adapter_.get())
          : adapter_.get();

  // Resolve the deflation-recycle space. A caller-provided persistent
  // cache is keyed by the configuration checksum: presenting a subspace
  // harvested on a different gauge configuration discards it instead of
  // poisoning this solve with meaningless deflation directions.
  DeflationSpace<double> local_recycle;
  DeflationSpace<double>* rec = nullptr;
  RecycleCache* cache = options.recycle;
  if (config_.deflation_size > 0) {
    if (cache != nullptr) {
      if (cache->gauge_key != setup_->gauge_checksum()) {
        cache->clear();
        cache->gauge_key = setup_->gauge_checksum();
      }
      rec = &cache->space;
    } else {
      rec = &local_recycle;
    }
  }

  try {
    if (monitor_) monitor_->drop_checkpoint();
    if (abft_guard_) abft_guard_->begin_solve();

    // Cross-batch check_deflation scope: a persistent subspace is
    // re-verified against the checksum stamped when the previous batch
    // harvested it. A mismatch discards the subspace (recycled deflation
    // is an optimization — dropping it costs iterations, never
    // correctness).
    if (cache != nullptr && cache->abft_stamped && rec != nullptr &&
        rec->valid() && abft_guard_ && abft_guard_->config().check_deflation) {
      const bool intact = deflation_checksum(*rec) == cache->abft_sum;
      abft_guard_->note_deflation_verification(intact);
      if (!intact) rec->clear();
    }

    const ResilienceConfig& rc = config_.resilience;
    std::uint32_t defl_sum = 0;
    bool defl_stamped = false;
    int first_lane = 0;
    if (rec == nullptr || !rec->valid()) {
      // RHS 0 runs alone: its solve seeds the recycled deflation subspace
      // the rest of the batch projects against. (With nrhs == 1 this path
      // is the whole call and executes exactly what solve() executes.)
      out[0] = fgmres_dr_solve<double>(*linop_, pre, b[0], x[0],
                                       lane_params[0], monitor_.get(), rec);
      first_lane = 1;
      if (nrhs == 1) {
        if (cache != nullptr && rec->valid() && abft_guard_ &&
            abft_guard_->config().check_deflation) {
          cache->abft_sum = deflation_checksum(*rec);
          cache->abft_stamped = true;
        }
        if (abft_guard_) abft_guard_->sweep();
        return out;
      }

      // In-call check_deflation scope: stamp the recycled subspace right
      // after its harvest; the shared verify below re-checks it just
      // before the lanes project against it.
      if (abft_guard_ && abft_guard_->config().check_deflation &&
          rec != nullptr && rec->valid()) {
        defl_sum = deflation_checksum(*rec);
        defl_stamped = true;
      }
    }
    // else: a valid subspace from a previous batch on this configuration
    // exists — skip the solo seeding phase and run EVERY lane in lockstep
    // from the first preconditioner application (the persistent-service
    // fast path).

    if (defl_stamped) {
      const bool intact = deflation_checksum(*rec) == defl_sum;
      abft_guard_->note_deflation_verification(intact);
      if (!intact) rec->clear();
    }

    // Lockstep lanes. Each lane gets its own CheckpointMonitor (the
    // checkpoint is per-iterate state); counters are merged back into the
    // long-lived monitor afterwards.
    const int nlanes = nrhs - first_lane;
    std::vector<std::unique_ptr<CheckpointMonitor<double>>> lane_monitors(
        static_cast<std::size_t>(nlanes));
    std::vector<std::unique_ptr<FgmresDrEngine<double>>> lanes(
        static_cast<std::size_t>(nlanes));
    for (int i = 0; i < nlanes; ++i) {
      const auto li = static_cast<std::size_t>(i);
      const auto ri = static_cast<std::size_t>(first_lane + i);
      if (monitor_) {
        CheckpointMonitorConfig mc;
        mc.detect_ratio = rc.rollback_detect_ratio;
        lane_monitors[li] = std::make_unique<CheckpointMonitor<double>>(
            mc, rc.iterate_injector);
        if (abft_guard_) lane_monitors[li]->set_abft_guard(abft_guard_.get());
      }
      lanes[li] = std::make_unique<FgmresDrEngine<double>>(
          *linop_, b[ri], x[ri], lane_params[ri], lane_monitors[li].get(),
          rec);
    }

    std::vector<const FermionField<double>*> pin;
    std::vector<FermionField<double>*> pout;
    std::vector<int> active;
    for (;;) {
      pin.clear();
      pout.clear();
      active.clear();
      for (int i = 0; i < nlanes; ++i) {
        auto& e = *lanes[static_cast<std::size_t>(i)];
        if (e.done()) continue;
        active.push_back(i);
        pin.push_back(&e.precond_input());
        pout.push_back(&e.precond_output());
      }
      if (active.empty()) break;
      pre->apply_batch(pin, pout);
      for (const int i : active) {
        auto& e = *lanes[static_cast<std::size_t>(i)];
        e.note_precond_application();
        e.advance();
      }
    }
    for (int i = 0; i < nlanes; ++i) {
      const auto li = static_cast<std::size_t>(i);
      out[static_cast<std::size_t>(first_lane + i)] = lanes[li]->finish();
      if (lane_monitors[li] && monitor_)
        monitor_->absorb_stats(lane_monitors[li]->stats());
    }
    // Stamp the persistent cache against whatever the last finisher
    // harvested, so the NEXT batch's entry verification has a reference.
    if (cache != nullptr && rec != nullptr && rec->valid() && abft_guard_ &&
        abft_guard_->config().check_deflation) {
      cache->abft_sum = deflation_checksum(*rec);
      cache->abft_stamped = true;
    }
    if (abft_guard_) abft_guard_->sweep();
    return out;
  } catch (const AbftError&) {
    // Unrepairable ladder mid-batch: no lane's iterate is trustworthy.
    for (auto& st : out) st = data_corruption_stats();
    return out;
  }
}

SchwarzStats DDSolver::schwarz_stats() const {
  SchwarzStats s;
  if (schwarz_half_) s += schwarz_half_->stats();
  if (schwarz_single_) s += schwarz_single_->stats();
  return s;
}

void DDSolver::reset_stats() {
  if (schwarz_half_) schwarz_half_->reset_stats();
  if (schwarz_single_) schwarz_single_->reset_stats();
  if (monitor_) monitor_->reset();
}

}  // namespace lqcd
