// Non-DD baseline solvers, matching the paper's comparison points
// (Table III, lower blocks):
//   * plain double-precision BiCGstab,
//   * mixed-precision iterative refinement: outer Richardson (double)
//     with an inner single-precision BiCGstab solved to residual 0.1.
#pragma once

#include <memory>

#include "lqcd/solver/bicgstab.h"
#include "lqcd/solver/even_odd.h"
#include "lqcd/solver/richardson.h"

namespace lqcd {

struct NonDDSolverConfig {
  enum class Mode {
    kDoubleBiCGstab,   ///< paper's 48^3x64 baseline
    kMixedRichardson,  ///< paper's 64^3x128 baseline
  };
  Mode mode = Mode::kDoubleBiCGstab;
  double tolerance = 1e-10;
  double inner_tolerance = 0.1;  ///< inner BiCGstab target (mixed mode)
  int max_iterations = 50000;
};

class NonDDSolver {
 public:
  NonDDSolver(const Geometry& geom, const GaugeField<double>& gauge,
              double mass, double csw, const NonDDSolverConfig& config)
      : config_(config), cb_(geom) {
    op_d_ = std::make_unique<WilsonCloverOperator<double>>(geom, cb_, gauge,
                                                           mass, csw);
    linop_d_ = std::make_unique<WilsonCloverLinOp<double>>(*op_d_);
    if (config.mode == NonDDSolverConfig::Mode::kMixedRichardson) {
      gauge_f_ = std::make_unique<GaugeField<float>>(convert<float>(gauge));
      op_f_ = std::make_unique<WilsonCloverOperator<float>>(
          geom, cb_, *gauge_f_, static_cast<float>(mass),
          static_cast<float>(csw));
      linop_f_ = std::make_unique<WilsonCloverLinOp<float>>(*op_f_);
    }
  }

  SolverStats solve(const FermionField<double>& b, FermionField<double>& x) {
    if (config_.mode == NonDDSolverConfig::Mode::kDoubleBiCGstab) {
      BiCGstabParams p;
      p.tolerance = config_.tolerance;
      p.max_iterations = config_.max_iterations;
      return bicgstab_solve(*linop_d_, b, x, p);
    }
    InnerSolver<float> inner = [this](const FermionField<float>& rhs,
                                      FermionField<float>& corr) {
      BiCGstabParams pi;
      pi.tolerance = config_.inner_tolerance;
      pi.max_iterations = config_.max_iterations;
      return bicgstab_solve(*linop_f_, rhs, corr, pi);
    };
    RichardsonParams pr;
    pr.tolerance = config_.tolerance;
    return richardson_solve<double, float>(*linop_d_, b, x, inner, pr);
  }

  const WilsonCloverOperator<double>& op() const noexcept { return *op_d_; }

 private:
  NonDDSolverConfig config_;
  Checkerboard cb_;
  std::unique_ptr<WilsonCloverOperator<double>> op_d_;
  std::unique_ptr<WilsonCloverLinOp<double>> linop_d_;
  std::unique_ptr<GaugeField<float>> gauge_f_;
  std::unique_ptr<WilsonCloverOperator<float>> op_f_;
  std::unique_ptr<WilsonCloverLinOp<float>> linop_f_;
};

}  // namespace lqcd
