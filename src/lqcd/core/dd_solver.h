// DDSolver — the paper's complete solver pipeline, as a single public API.
//
//   outer:  flexible GMRES with deflated restarts, double precision
//   precond: multiplicative Schwarz, ISchwarz sweeps, float arithmetic,
//            gauge links + clover blocks stored in half precision
//            (configurable), even-odd MR block solves (Idomain iterations)
//
// Mirrors Table I of the paper. Construct once per gauge configuration,
// then call solve() per right-hand side.
#pragma once

#include <functional>
#include <memory>

#include "lqcd/resilience/resilient_solve.h"
#include "lqcd/schwarz/schwarz.h"
#include "lqcd/solver/even_odd.h"
#include "lqcd/solver/fgmres_dr.h"

namespace lqcd {

/// Resilient-solve layer configuration. With enabled = false (default)
/// the solver pipeline is exactly the fault-oblivious one: same objects,
/// same arithmetic, bit-identical iteration counts.
struct ResilienceConfig {
  bool enabled = false;
  /// Retry a Schwarz apply on the single-precision preconditioner
  /// matrices when the half-precision one produces NaN/Inf (fp16
  /// overflow). Recorded in SchwarzStats::precision_fallbacks.
  bool precision_fallback = true;
  /// Checkpoint the outer iterate at every FGMRES cycle whose true
  /// residual improved; roll back when recursive and true residuals
  /// diverge (silent data corruption of the iterate).
  bool checkpoint_rollback = true;
  double rollback_detect_ratio = 10.0;
  /// Optional fault injection (testing/benchmarking): `schwarz_injector`
  /// corrupts the preconditioner's sweep residual, `iterate_injector`
  /// corrupts the outer iterate between cycles, `packed_injector` flips
  /// bits in the packed gauge/clover matrices between Schwarz sweeps
  /// (FaultSite::kPackedData — the corruption class the ABFT layer
  /// catches). Caller-owned; packed_injector must be a distinct instance
  /// from schwarz_injector.
  FaultInjector* schwarz_injector = nullptr;
  FaultInjector* iterate_injector = nullptr;
  FaultInjector* packed_injector = nullptr;
  /// In-solve ABFT: periodic checksum re-verification of the packed
  /// domain matrices with localized repair (see AbftGuard). Requires
  /// `enabled`.
  AbftConfig abft;

  /// Young/Daly optimizer (daly_checkpoint_interval): the wall-clock
  /// checkpoint interval minimizing expected fault overhead for `nodes`
  /// nodes of `node_mtbf_hours` per-node MTBF and one checkpoint write
  /// costing `checkpoint_cost_seconds`. The cluster model applies it when
  /// NodeFaultSpec::auto_tune_checkpoint_interval is set; the same
  /// optimizer (in units of preconditioner applications) picks
  /// AbftConfig::verify_interval when that is left at 0.
  static double auto_tune_checkpoint_interval(
      double node_mtbf_hours, int nodes,
      double checkpoint_cost_seconds) noexcept {
    if (node_mtbf_hours <= 0.0 || nodes <= 0) return 0.0;
    return daly_checkpoint_interval(checkpoint_cost_seconds,
                                    node_mtbf_hours * 3600.0 / nodes);
  }
};

struct DDSolverConfig {
  /// Schwarz domain size; must tile the lattice with even grid extents.
  /// The paper's production choice is {8,4,4,4} (fits KNC L2).
  Coord block = {4, 4, 4, 4};
  int basis_size = 16;         ///< outer FGMRES basis m
  int deflation_size = 4;      ///< k deflated harmonic Ritz vectors
  int schwarz_iterations = 16; ///< ISchwarz
  int block_mr_iterations = 5; ///< Idomain
  bool additive_schwarz = false;
  /// Store the preconditioner's gauge+clover in IEEE half (paper default);
  /// spinors stay single precision either way.
  bool half_precision_matrices = true;
  /// Paper Sec. VI future work: store the preconditioner's spinors in
  /// half precision as well (emulated; see SchwarzParams).
  bool half_precision_spinors = false;
  double tolerance = 1e-10;    ///< relative residual target (outer, double)
  int max_iterations = 2000;   ///< outer Arnoldi steps
  /// Outer-solver stagnation handling (see FGMRESDRParams): a cycle whose
  /// true residual fails to shrink below stagnation_threshold x the
  /// previous cycle's counts as stagnant; max_stagnant_cycles consecutive
  /// stagnant cycles force a plain restart with residual replacement.
  double stagnation_threshold = 0.999;
  int max_stagnant_cycles = 3;
  /// Verify at every solve entry that the caller's double-precision gauge
  /// field still matches the checksum stamped when the setup was packed.
  /// On mismatch the solve returns immediately with
  /// Breakdown::kStaleSetup instead of silently solving against stale
  /// packed data (the caller mutated the gauge field — e.g. another HMC
  /// trajectory — without rebuilding the solver). Costs one Fletcher-32
  /// pass over the gauge field per solve/solve_batch call.
  bool stale_setup_check = true;
  ResilienceConfig resilience; ///< breakdown detection & recovery layer
};

/// Immutable per-configuration solver state: the double/float operators,
/// the domain partition, and the packed Schwarz setups — everything whose
/// construction cost should be paid once per gauge configuration and
/// shared by every DDSolver instance (and thus every solve) on it. Which
/// Schwarz precisions are packed follows the config the setup was built
/// with; a DDSolver attached later must use a config needing no more.
///
/// Mutability exception: the ABFT repair ladder (repair_from_master(),
/// per-domain re-packs inside the Schwarz setups) heals corrupted packed
/// data in place, so solves that may trigger in-solve repair must not run
/// concurrently on a shared setup.
class DDSolverSetup {
 public:
  /// `geom` and `gauge` must outlive the setup. The gauge field should
  /// already carry its boundary phases (make_time_antiperiodic()).
  DDSolverSetup(const Geometry& geom, const GaugeField<double>& gauge,
                double mass, double csw, const DDSolverConfig& config);

  /// Owning form: geometry and master gauge field transferred into the
  /// setup, so its lifetime is independent of any caller state. Prefer
  /// make_owning(); this overload exists so it can go through make_shared.
  DDSolverSetup(std::unique_ptr<const Geometry> geom,
                std::unique_ptr<const GaugeField<double>> gauge, double mass,
                double csw, const DDSolverConfig& config);

  /// Build a setup that deep-copies `geom` and `gauge` and owns the
  /// copies. The setup-cache path uses this: a cached entry may outlive
  /// the client request (and gauge field) that created it, so master()
  /// must never reference client storage.
  static std::shared_ptr<DDSolverSetup> make_owning(
      const Geometry& geom, const GaugeField<double>& gauge, double mass,
      double csw, const DDSolverConfig& config);

  const Geometry& geometry() const noexcept { return *geom_; }
  /// The caller's double-precision gauge field (the repair ladder's
  /// authoritative master copy).
  const GaugeField<double>& master() const noexcept { return *master_; }
  double mass() const noexcept { return mass_; }
  double csw() const noexcept { return csw_; }
  const WilsonCloverOperator<double>& op_d() const noexcept { return *op_d_; }
  const DomainPartition& partition() const noexcept { return *part_; }
  const std::shared_ptr<SchwarzSetup<Half>>& schwarz_half() const noexcept {
    return schwarz_half_;
  }
  const std::shared_ptr<SchwarzSetup<float>>& schwarz_single() const noexcept {
    return schwarz_single_;
  }
  /// Field-level Fletcher-32 of the master gauge field, stamped at
  /// construction: the setup-cache key and the stale-setup detector.
  std::uint32_t gauge_checksum() const noexcept { return gauge_checksum_; }

  /// Rung-2 ABFT repair: verify the double master against the
  /// construction-time checksum, rebuild the float gauge/clover source
  /// from it, and re-pack every Schwarz store. False if the master itself
  /// no longer verifies (nothing trustworthy to repair from).
  bool repair_from_master();

 private:
  /// Set only in the owning form: the deep copies geom_/master_ point at.
  std::unique_ptr<const Geometry> owned_geom_;
  std::unique_ptr<const GaugeField<double>> owned_master_;
  const Geometry* geom_;
  const GaugeField<double>* master_;
  double mass_;
  double csw_;
  Checkerboard cb_;
  std::unique_ptr<WilsonCloverOperator<double>> op_d_;
  std::unique_ptr<GaugeField<float>> gauge_f_;
  std::unique_ptr<WilsonCloverOperator<float>> op_f_;
  std::unique_ptr<DomainPartition> part_;
  std::shared_ptr<SchwarzSetup<Half>> schwarz_half_;
  std::shared_ptr<SchwarzSetup<float>> schwarz_single_;
  std::uint32_t gauge_checksum_ = 0;
};

/// Persistent deflation-recycle state a caller can thread through
/// consecutive solve_batch() calls so later batches on the same gauge
/// configuration skip the solo seeding solve and project against the
/// subspace harvested by the previous batch. The cache is keyed by the
/// configuration checksum: presenting it to a solver on a DIFFERENT
/// configuration silently discards the subspace (a harmonic-Ritz space of
/// configuration A is meaningless — and convergence-poisoning — on B).
struct RecycleCache {
  DeflationSpace<double> space;
  std::uint32_t gauge_key = 0;  ///< configuration the space was harvested on
  std::uint32_t abft_sum = 0;   ///< checksum stamped at harvest (ABFT)
  bool abft_stamped = false;
  void clear() {
    space.clear();
    abft_sum = 0;
    abft_stamped = false;
  }
};

/// Per-call options of DDSolver::solve_batch().
struct BatchSolveOptions {
  /// Per-RHS relative-residual targets. Empty = the config tolerance for
  /// every lane; otherwise must have one entry per RHS. Each lane's
  /// engine converges (and stops consuming preconditioner applications)
  /// at ITS OWN target — a tight-tolerance lane is never declared done at
  /// a looser lane's threshold.
  std::vector<double> tolerances;
  /// Optional cross-batch deflation recycling (see RecycleCache);
  /// nullptr = recycle only within this call.
  RecycleCache* recycle = nullptr;
};

/// Bridges the double-precision outer solver to the float preconditioner:
/// converts in, applies M, converts out (the paper's Sec. III precision
/// split).
class SchwarzPrecondAdapter final : public BatchPreconditioner<double> {
 public:
  SchwarzPrecondAdapter(Preconditioner<float>& inner, std::int64_t n)
      : inner_(&inner),
        batch_inner_(dynamic_cast<BatchPreconditioner<float>*>(&inner)),
        n_(n),
        in_f_(n),
        out_f_(n) {}

  void apply(const FermionField<double>& in,
             FermionField<double>& out) override {
    convert(in, in_f_);
    inner_->apply(in_f_, out_f_);
    convert(out_f_, out);
  }

  /// Batched precision bridge: converts the whole batch to float and
  /// hands it to the inner preconditioner's apply_batch, so one Schwarz
  /// sweep streams each domain's matrices once for all RHS.
  void apply_batch(const std::vector<const FermionField<double>*>& in,
                   const std::vector<FermionField<double>*>& out) override {
    const std::size_t nrhs = in.size();
    grow_batch(nrhs);
    std::vector<const FermionField<float>*> fin(nrhs);
    std::vector<FermionField<float>*> fout(nrhs);
    for (std::size_t b = 0; b < nrhs; ++b) {
      convert(*in[b], in_b_[b]);
      fin[b] = &in_b_[b];
      fout[b] = &out_b_[b];
    }
    if (batch_inner_ != nullptr) {
      batch_inner_->apply_batch(fin, fout);
    } else {
      for (std::size_t b = 0; b < nrhs; ++b)
        inner_->apply(in_b_[b], out_b_[b]);
    }
    for (std::size_t b = 0; b < nrhs; ++b) convert(out_b_[b], *out[b]);
  }

 private:
  void grow_batch(std::size_t nrhs) {
    while (in_b_.size() < nrhs) {
      in_b_.emplace_back(n_);
      out_b_.emplace_back(n_);
    }
  }

  Preconditioner<float>* inner_;
  BatchPreconditioner<float>* batch_inner_;
  std::int64_t n_;
  FermionField<float> in_f_, out_f_;
  std::vector<FermionField<float>> in_b_, out_b_;
};

/// Hardened precision bridge: like SchwarzPrecondAdapter, but it scans
/// the preconditioner output for NaN/Inf (fp16 overflow saturates to inf
/// and propagates) and, on detection, retries the apply on the
/// single-precision fallback preconditioner. If even the fallback output
/// is poisoned the correction is zeroed — the flexible outer solver then
/// discards the degenerate direction and restarts (Lüscher's observation
/// that the Schwarz preconditioner tolerates inexact block solves is what
/// makes both degradation paths safe).
class ResilientSchwarzAdapter final : public BatchPreconditioner<double> {
 public:
  ResilientSchwarzAdapter(Preconditioner<float>& primary,
                          Preconditioner<float>* fallback,
                          std::function<void()> on_fallback, std::int64_t n)
      : primary_(&primary),
        batch_primary_(dynamic_cast<BatchPreconditioner<float>*>(&primary)),
        fallback_(fallback),
        on_fallback_(std::move(on_fallback)),
        n_(n),
        in_f_(n),
        out_f_(n) {}

  /// Attach the ABFT guard, notified once per completed application (per
  /// RHS for batches) — the clock that drives the periodic checksum
  /// sweeps. Notification happens after the output conversion, outside
  /// any parallel region, so a sweep's repair never races an apply.
  void set_abft_guard(AbftGuard* guard) noexcept { abft_ = guard; }

  void apply(const FermionField<double>& in,
             FermionField<double>& out) override {
    convert(in, in_f_);
    primary_->apply(in_f_, out_f_);
    if (!all_finite(out_f_)) {
      if (on_fallback_) on_fallback_();
      if (fallback_ != nullptr) fallback_->apply(in_f_, out_f_);
      if (fallback_ == nullptr || !all_finite(out_f_)) out_f_.zero();
    }
    convert(out_f_, out);
    if (abft_ != nullptr) abft_->note_application();
  }

  /// Batched apply with per-RHS recovery: the whole batch runs on the
  /// half-precision matrices; only the RHS whose outputs came back
  /// non-finite are retried individually on the single-precision
  /// fallback (an fp16 overflow poisons one lane, not the batch).
  void apply_batch(const std::vector<const FermionField<double>*>& in,
                   const std::vector<FermionField<double>*>& out) override {
    const std::size_t nrhs = in.size();
    grow_batch(nrhs);
    std::vector<const FermionField<float>*> fin(nrhs);
    std::vector<FermionField<float>*> fout(nrhs);
    for (std::size_t b = 0; b < nrhs; ++b) {
      convert(*in[b], in_b_[b]);
      fin[b] = &in_b_[b];
      fout[b] = &out_b_[b];
    }
    if (batch_primary_ != nullptr) {
      batch_primary_->apply_batch(fin, fout);
    } else {
      for (std::size_t b = 0; b < nrhs; ++b)
        primary_->apply(in_b_[b], out_b_[b]);
    }
    for (std::size_t b = 0; b < nrhs; ++b) {
      if (!all_finite(out_b_[b])) {
        if (on_fallback_) on_fallback_();
        if (fallback_ != nullptr) fallback_->apply(in_b_[b], out_b_[b]);
        if (fallback_ == nullptr || !all_finite(out_b_[b]))
          out_b_[b].zero();
      }
      convert(out_b_[b], *out[b]);
    }
    if (abft_ != nullptr)
      for (std::size_t b = 0; b < nrhs; ++b) abft_->note_application();
  }

 private:
  void grow_batch(std::size_t nrhs) {
    while (in_b_.size() < nrhs) {
      in_b_.emplace_back(n_);
      out_b_.emplace_back(n_);
    }
  }

  Preconditioner<float>* primary_;
  BatchPreconditioner<float>* batch_primary_;
  Preconditioner<float>* fallback_;
  AbftGuard* abft_ = nullptr;
  std::function<void()> on_fallback_;
  std::int64_t n_;
  FermionField<float> in_f_, out_f_;
  std::vector<FermionField<float>> in_b_, out_b_;
};

class DDSolver {
 public:
  /// One-shot form: build (and own) a private DDSolverSetup. `geom` and
  /// `gauge` must outlive the solver; the gauge field should already
  /// carry its boundary phases (make_time_antiperiodic()).
  DDSolver(const Geometry& geom, const GaugeField<double>& gauge, double mass,
           double csw, const DDSolverConfig& config);

  /// Shared-setup form: attach to an existing per-configuration setup
  /// (solver-service path). Only mutable per-solve state is allocated —
  /// Schwarz sweep scratch, precision-bridge staging, monitors — so
  /// constructing additional solvers on a configuration costs no
  /// operator rebuild or re-packing. `config` must not require packed
  /// precisions the setup was built without.
  DDSolver(std::shared_ptr<DDSolverSetup> setup, const DDSolverConfig& config);

  /// Solve A x = b to the configured relative residual.
  SolverStats solve(const FermionField<double>& b, FermionField<double>& x);

  /// Solve A x[i] = b[i] for a batch of right-hand sides (paper Sec. VI).
  /// The first RHS is solved alone and seeds a recycled harmonic-Ritz
  /// deflation subspace (its initial-residual projection gives the later
  /// RHS a head start); the remaining RHS then advance in lockstep so
  /// every preconditioner application is one batched Schwarz sweep that
  /// streams each domain's packed matrices once for the whole batch.
  /// With b.size() == 1 this is bit-identical to solve().
  std::vector<SolverStats> solve_batch(
      const std::vector<FermionField<double>>& b,
      std::vector<FermionField<double>>& x);

  /// solve_batch with per-lane tolerances and/or persistent cross-batch
  /// deflation recycling. When options.recycle presents a subspace that
  /// is valid for THIS configuration, the solo seeding phase is skipped
  /// and every RHS advances in lockstep from the first preconditioner
  /// application.
  std::vector<SolverStats> solve_batch(
      const std::vector<FermionField<double>>& b,
      std::vector<FermionField<double>>& x,
      const BatchSolveOptions& options);

  const DDSolverConfig& config() const noexcept { return config_; }
  const std::shared_ptr<DDSolverSetup>& setup() const noexcept {
    return setup_;
  }
  const WilsonCloverOperator<double>& op() const noexcept {
    return setup_->op_d();
  }
  const DomainPartition& partition() const noexcept {
    return setup_->partition();
  }

  /// Counters accumulated inside the Schwarz preconditioner(s). Merged
  /// across the half-precision primary AND the single-precision fallback,
  /// so sweeps executed during precision_fallback retries are reported.
  SchwarzStats schwarz_stats() const;
  void reset_stats();

  /// Checkpoint/rollback counters; nullptr when resilience is disabled.
  const CheckpointMonitorStats* checkpoint_stats() const noexcept {
    return monitor_ ? &monitor_->stats() : nullptr;
  }

  /// ABFT sweep/repair counters; nullptr when ABFT is disabled.
  const AbftStats* abft_stats() const noexcept {
    return abft_guard_ ? &abft_guard_->stats() : nullptr;
  }
  /// The guard itself (detection-latency probes in tests/bench); nullptr
  /// when ABFT is disabled.
  const AbftGuard* abft_guard() const noexcept { return abft_guard_.get(); }

 private:
  FGMRESDRParams outer_params() const;
  /// True when stale_setup_check is on and the caller's gauge field no
  /// longer matches the checksum the setup was packed against.
  bool setup_is_stale() const;

  DDSolverConfig config_;
  /// Shared immutable per-configuration state; everything below is
  /// per-solver mutable scratch.
  std::shared_ptr<DDSolverSetup> setup_;
  std::unique_ptr<SchwarzPreconditioner<float>> schwarz_single_;
  std::unique_ptr<SchwarzPreconditioner<Half>> schwarz_half_;
  std::unique_ptr<SchwarzPrecondAdapter> adapter_;
  std::unique_ptr<ResilientSchwarzAdapter> resilient_adapter_;
  std::unique_ptr<CheckpointMonitor<double>> monitor_;
  std::unique_ptr<AbftGuard> abft_guard_;
  std::unique_ptr<WilsonCloverLinOp<double>> linop_;
};

}  // namespace lqcd
