// DDSolver — the paper's complete solver pipeline, as a single public API.
//
//   outer:  flexible GMRES with deflated restarts, double precision
//   precond: multiplicative Schwarz, ISchwarz sweeps, float arithmetic,
//            gauge links + clover blocks stored in half precision
//            (configurable), even-odd MR block solves (Idomain iterations)
//
// Mirrors Table I of the paper. Construct once per gauge configuration,
// then call solve() per right-hand side.
#pragma once

#include <functional>
#include <memory>

#include "lqcd/resilience/resilient_solve.h"
#include "lqcd/schwarz/schwarz.h"
#include "lqcd/solver/even_odd.h"
#include "lqcd/solver/fgmres_dr.h"

namespace lqcd {

/// Resilient-solve layer configuration. With enabled = false (default)
/// the solver pipeline is exactly the fault-oblivious one: same objects,
/// same arithmetic, bit-identical iteration counts.
struct ResilienceConfig {
  bool enabled = false;
  /// Retry a Schwarz apply on the single-precision preconditioner
  /// matrices when the half-precision one produces NaN/Inf (fp16
  /// overflow). Recorded in SchwarzStats::precision_fallbacks.
  bool precision_fallback = true;
  /// Checkpoint the outer iterate at every FGMRES cycle whose true
  /// residual improved; roll back when recursive and true residuals
  /// diverge (silent data corruption of the iterate).
  bool checkpoint_rollback = true;
  double rollback_detect_ratio = 10.0;
  /// Optional fault injection (testing/benchmarking): `schwarz_injector`
  /// corrupts the preconditioner's sweep residual, `iterate_injector`
  /// corrupts the outer iterate between cycles, `packed_injector` flips
  /// bits in the packed gauge/clover matrices between Schwarz sweeps
  /// (FaultSite::kPackedData — the corruption class the ABFT layer
  /// catches). Caller-owned; packed_injector must be a distinct instance
  /// from schwarz_injector.
  FaultInjector* schwarz_injector = nullptr;
  FaultInjector* iterate_injector = nullptr;
  FaultInjector* packed_injector = nullptr;
  /// In-solve ABFT: periodic checksum re-verification of the packed
  /// domain matrices with localized repair (see AbftGuard). Requires
  /// `enabled`.
  AbftConfig abft;

  /// Young/Daly optimizer (daly_checkpoint_interval): the wall-clock
  /// checkpoint interval minimizing expected fault overhead for `nodes`
  /// nodes of `node_mtbf_hours` per-node MTBF and one checkpoint write
  /// costing `checkpoint_cost_seconds`. The cluster model applies it when
  /// NodeFaultSpec::auto_tune_checkpoint_interval is set; the same
  /// optimizer (in units of preconditioner applications) picks
  /// AbftConfig::verify_interval when that is left at 0.
  static double auto_tune_checkpoint_interval(
      double node_mtbf_hours, int nodes,
      double checkpoint_cost_seconds) noexcept {
    if (node_mtbf_hours <= 0.0 || nodes <= 0) return 0.0;
    return daly_checkpoint_interval(checkpoint_cost_seconds,
                                    node_mtbf_hours * 3600.0 / nodes);
  }
};

struct DDSolverConfig {
  /// Schwarz domain size; must tile the lattice with even grid extents.
  /// The paper's production choice is {8,4,4,4} (fits KNC L2).
  Coord block = {4, 4, 4, 4};
  int basis_size = 16;         ///< outer FGMRES basis m
  int deflation_size = 4;      ///< k deflated harmonic Ritz vectors
  int schwarz_iterations = 16; ///< ISchwarz
  int block_mr_iterations = 5; ///< Idomain
  bool additive_schwarz = false;
  /// Store the preconditioner's gauge+clover in IEEE half (paper default);
  /// spinors stay single precision either way.
  bool half_precision_matrices = true;
  /// Paper Sec. VI future work: store the preconditioner's spinors in
  /// half precision as well (emulated; see SchwarzParams).
  bool half_precision_spinors = false;
  double tolerance = 1e-10;    ///< relative residual target (outer, double)
  int max_iterations = 2000;   ///< outer Arnoldi steps
  /// Outer-solver stagnation handling (see FGMRESDRParams): a cycle whose
  /// true residual fails to shrink below stagnation_threshold x the
  /// previous cycle's counts as stagnant; max_stagnant_cycles consecutive
  /// stagnant cycles force a plain restart with residual replacement.
  double stagnation_threshold = 0.999;
  int max_stagnant_cycles = 3;
  ResilienceConfig resilience; ///< breakdown detection & recovery layer
};

/// Bridges the double-precision outer solver to the float preconditioner:
/// converts in, applies M, converts out (the paper's Sec. III precision
/// split).
class SchwarzPrecondAdapter final : public BatchPreconditioner<double> {
 public:
  SchwarzPrecondAdapter(Preconditioner<float>& inner, std::int64_t n)
      : inner_(&inner),
        batch_inner_(dynamic_cast<BatchPreconditioner<float>*>(&inner)),
        n_(n),
        in_f_(n),
        out_f_(n) {}

  void apply(const FermionField<double>& in,
             FermionField<double>& out) override {
    convert(in, in_f_);
    inner_->apply(in_f_, out_f_);
    convert(out_f_, out);
  }

  /// Batched precision bridge: converts the whole batch to float and
  /// hands it to the inner preconditioner's apply_batch, so one Schwarz
  /// sweep streams each domain's matrices once for all RHS.
  void apply_batch(const std::vector<const FermionField<double>*>& in,
                   const std::vector<FermionField<double>*>& out) override {
    const std::size_t nrhs = in.size();
    grow_batch(nrhs);
    std::vector<const FermionField<float>*> fin(nrhs);
    std::vector<FermionField<float>*> fout(nrhs);
    for (std::size_t b = 0; b < nrhs; ++b) {
      convert(*in[b], in_b_[b]);
      fin[b] = &in_b_[b];
      fout[b] = &out_b_[b];
    }
    if (batch_inner_ != nullptr) {
      batch_inner_->apply_batch(fin, fout);
    } else {
      for (std::size_t b = 0; b < nrhs; ++b)
        inner_->apply(in_b_[b], out_b_[b]);
    }
    for (std::size_t b = 0; b < nrhs; ++b) convert(out_b_[b], *out[b]);
  }

 private:
  void grow_batch(std::size_t nrhs) {
    while (in_b_.size() < nrhs) {
      in_b_.emplace_back(n_);
      out_b_.emplace_back(n_);
    }
  }

  Preconditioner<float>* inner_;
  BatchPreconditioner<float>* batch_inner_;
  std::int64_t n_;
  FermionField<float> in_f_, out_f_;
  std::vector<FermionField<float>> in_b_, out_b_;
};

/// Hardened precision bridge: like SchwarzPrecondAdapter, but it scans
/// the preconditioner output for NaN/Inf (fp16 overflow saturates to inf
/// and propagates) and, on detection, retries the apply on the
/// single-precision fallback preconditioner. If even the fallback output
/// is poisoned the correction is zeroed — the flexible outer solver then
/// discards the degenerate direction and restarts (Lüscher's observation
/// that the Schwarz preconditioner tolerates inexact block solves is what
/// makes both degradation paths safe).
class ResilientSchwarzAdapter final : public BatchPreconditioner<double> {
 public:
  ResilientSchwarzAdapter(Preconditioner<float>& primary,
                          Preconditioner<float>* fallback,
                          std::function<void()> on_fallback, std::int64_t n)
      : primary_(&primary),
        batch_primary_(dynamic_cast<BatchPreconditioner<float>*>(&primary)),
        fallback_(fallback),
        on_fallback_(std::move(on_fallback)),
        n_(n),
        in_f_(n),
        out_f_(n) {}

  /// Attach the ABFT guard, notified once per completed application (per
  /// RHS for batches) — the clock that drives the periodic checksum
  /// sweeps. Notification happens after the output conversion, outside
  /// any parallel region, so a sweep's repair never races an apply.
  void set_abft_guard(AbftGuard* guard) noexcept { abft_ = guard; }

  void apply(const FermionField<double>& in,
             FermionField<double>& out) override {
    convert(in, in_f_);
    primary_->apply(in_f_, out_f_);
    if (!all_finite(out_f_)) {
      if (on_fallback_) on_fallback_();
      if (fallback_ != nullptr) fallback_->apply(in_f_, out_f_);
      if (fallback_ == nullptr || !all_finite(out_f_)) out_f_.zero();
    }
    convert(out_f_, out);
    if (abft_ != nullptr) abft_->note_application();
  }

  /// Batched apply with per-RHS recovery: the whole batch runs on the
  /// half-precision matrices; only the RHS whose outputs came back
  /// non-finite are retried individually on the single-precision
  /// fallback (an fp16 overflow poisons one lane, not the batch).
  void apply_batch(const std::vector<const FermionField<double>*>& in,
                   const std::vector<FermionField<double>*>& out) override {
    const std::size_t nrhs = in.size();
    grow_batch(nrhs);
    std::vector<const FermionField<float>*> fin(nrhs);
    std::vector<FermionField<float>*> fout(nrhs);
    for (std::size_t b = 0; b < nrhs; ++b) {
      convert(*in[b], in_b_[b]);
      fin[b] = &in_b_[b];
      fout[b] = &out_b_[b];
    }
    if (batch_primary_ != nullptr) {
      batch_primary_->apply_batch(fin, fout);
    } else {
      for (std::size_t b = 0; b < nrhs; ++b)
        primary_->apply(in_b_[b], out_b_[b]);
    }
    for (std::size_t b = 0; b < nrhs; ++b) {
      if (!all_finite(out_b_[b])) {
        if (on_fallback_) on_fallback_();
        if (fallback_ != nullptr) fallback_->apply(in_b_[b], out_b_[b]);
        if (fallback_ == nullptr || !all_finite(out_b_[b]))
          out_b_[b].zero();
      }
      convert(out_b_[b], *out[b]);
    }
    if (abft_ != nullptr)
      for (std::size_t b = 0; b < nrhs; ++b) abft_->note_application();
  }

 private:
  void grow_batch(std::size_t nrhs) {
    while (in_b_.size() < nrhs) {
      in_b_.emplace_back(n_);
      out_b_.emplace_back(n_);
    }
  }

  Preconditioner<float>* primary_;
  BatchPreconditioner<float>* batch_primary_;
  Preconditioner<float>* fallback_;
  AbftGuard* abft_ = nullptr;
  std::function<void()> on_fallback_;
  std::int64_t n_;
  FermionField<float> in_f_, out_f_;
  std::vector<FermionField<float>> in_b_, out_b_;
};

class DDSolver {
 public:
  /// `geom` and `gauge` must outlive the solver. The gauge field should
  /// already carry its boundary phases (make_time_antiperiodic()).
  DDSolver(const Geometry& geom, const GaugeField<double>& gauge, double mass,
           double csw, const DDSolverConfig& config);

  /// Solve A x = b to the configured relative residual.
  SolverStats solve(const FermionField<double>& b, FermionField<double>& x);

  /// Solve A x[i] = b[i] for a batch of right-hand sides (paper Sec. VI).
  /// The first RHS is solved alone and seeds a recycled harmonic-Ritz
  /// deflation subspace (its initial-residual projection gives the later
  /// RHS a head start); the remaining RHS then advance in lockstep so
  /// every preconditioner application is one batched Schwarz sweep that
  /// streams each domain's packed matrices once for the whole batch.
  /// With b.size() == 1 this is bit-identical to solve().
  std::vector<SolverStats> solve_batch(
      const std::vector<FermionField<double>>& b,
      std::vector<FermionField<double>>& x);

  const DDSolverConfig& config() const noexcept { return config_; }
  const WilsonCloverOperator<double>& op() const noexcept { return *op_d_; }
  const DomainPartition& partition() const noexcept { return *part_; }

  /// Counters accumulated inside the Schwarz preconditioner(s). Merged
  /// across the half-precision primary AND the single-precision fallback,
  /// so sweeps executed during precision_fallback retries are reported.
  SchwarzStats schwarz_stats() const;
  void reset_stats();

  /// Checkpoint/rollback counters; nullptr when resilience is disabled.
  const CheckpointMonitorStats* checkpoint_stats() const noexcept {
    return monitor_ ? &monitor_->stats() : nullptr;
  }

  /// ABFT sweep/repair counters; nullptr when ABFT is disabled.
  const AbftStats* abft_stats() const noexcept {
    return abft_guard_ ? &abft_guard_->stats() : nullptr;
  }
  /// The guard itself (detection-latency probes in tests/bench); nullptr
  /// when ABFT is disabled.
  const AbftGuard* abft_guard() const noexcept { return abft_guard_.get(); }

 private:
  FGMRESDRParams outer_params() const;

  DDSolverConfig config_;
  const Geometry* geom_;
  Checkerboard cb_;
  std::unique_ptr<WilsonCloverOperator<double>> op_d_;
  std::unique_ptr<GaugeField<float>> gauge_f_;
  std::unique_ptr<WilsonCloverOperator<float>> op_f_;
  std::unique_ptr<DomainPartition> part_;
  std::unique_ptr<SchwarzPreconditioner<float>> schwarz_single_;
  std::unique_ptr<SchwarzPreconditioner<Half>> schwarz_half_;
  std::unique_ptr<SchwarzPrecondAdapter> adapter_;
  std::unique_ptr<ResilientSchwarzAdapter> resilient_adapter_;
  std::unique_ptr<CheckpointMonitor<double>> monitor_;
  std::unique_ptr<AbftGuard> abft_guard_;
  std::unique_ptr<WilsonCloverLinOp<double>> linop_;
  /// Field-level checksum of the caller's double-precision gauge field,
  /// stamped at construction: the last link of the repair ladder's chain
  /// of trust.
  std::uint32_t master_checksum_ = 0;
};

}  // namespace lqcd
