// DDSolver — the paper's complete solver pipeline, as a single public API.
//
//   outer:  flexible GMRES with deflated restarts, double precision
//   precond: multiplicative Schwarz, ISchwarz sweeps, float arithmetic,
//            gauge links + clover blocks stored in half precision
//            (configurable), even-odd MR block solves (Idomain iterations)
//
// Mirrors Table I of the paper. Construct once per gauge configuration,
// then call solve() per right-hand side.
#pragma once

#include <memory>

#include "lqcd/schwarz/schwarz.h"
#include "lqcd/solver/even_odd.h"
#include "lqcd/solver/fgmres_dr.h"

namespace lqcd {

struct DDSolverConfig {
  /// Schwarz domain size; must tile the lattice with even grid extents.
  /// The paper's production choice is {8,4,4,4} (fits KNC L2).
  Coord block = {4, 4, 4, 4};
  int basis_size = 16;         ///< outer FGMRES basis m
  int deflation_size = 4;      ///< k deflated harmonic Ritz vectors
  int schwarz_iterations = 16; ///< ISchwarz
  int block_mr_iterations = 5; ///< Idomain
  bool additive_schwarz = false;
  /// Store the preconditioner's gauge+clover in IEEE half (paper default);
  /// spinors stay single precision either way.
  bool half_precision_matrices = true;
  /// Paper Sec. VI future work: store the preconditioner's spinors in
  /// half precision as well (emulated; see SchwarzParams).
  bool half_precision_spinors = false;
  double tolerance = 1e-10;    ///< relative residual target (outer, double)
  int max_iterations = 2000;   ///< outer Arnoldi steps
};

/// Bridges the double-precision outer solver to the float preconditioner:
/// converts in, applies M, converts out (the paper's Sec. III precision
/// split).
class SchwarzPrecondAdapter final : public Preconditioner<double> {
 public:
  SchwarzPrecondAdapter(Preconditioner<float>& inner, std::int64_t n)
      : inner_(&inner), in_f_(n), out_f_(n) {}

  void apply(const FermionField<double>& in,
             FermionField<double>& out) override {
    convert(in, in_f_);
    inner_->apply(in_f_, out_f_);
    convert(out_f_, out);
  }

 private:
  Preconditioner<float>* inner_;
  FermionField<float> in_f_, out_f_;
};

class DDSolver {
 public:
  /// `geom` and `gauge` must outlive the solver. The gauge field should
  /// already carry its boundary phases (make_time_antiperiodic()).
  DDSolver(const Geometry& geom, const GaugeField<double>& gauge, double mass,
           double csw, const DDSolverConfig& config);

  /// Solve A x = b to the configured relative residual.
  SolverStats solve(const FermionField<double>& b, FermionField<double>& x);

  const DDSolverConfig& config() const noexcept { return config_; }
  const WilsonCloverOperator<double>& op() const noexcept { return *op_d_; }
  const DomainPartition& partition() const noexcept { return *part_; }

  /// Counters accumulated inside the Schwarz preconditioner.
  const SchwarzStats& schwarz_stats() const;
  void reset_stats();

 private:
  DDSolverConfig config_;
  const Geometry* geom_;
  Checkerboard cb_;
  std::unique_ptr<WilsonCloverOperator<double>> op_d_;
  std::unique_ptr<GaugeField<float>> gauge_f_;
  std::unique_ptr<WilsonCloverOperator<float>> op_f_;
  std::unique_ptr<DomainPartition> part_;
  std::unique_ptr<SchwarzPreconditioner<float>> schwarz_single_;
  std::unique_ptr<SchwarzPreconditioner<Half>> schwarz_half_;
  std::unique_ptr<SchwarzPrecondAdapter> adapter_;
  std::unique_ptr<WilsonCloverLinOp<double>> linop_;
};

}  // namespace lqcd
