// Multi-node performance simulator for the DD and non-DD solvers.
//
// Combines
//   * exact per-iteration work counts (flops, bytes, messages, reduction
//     events) computed from the lattice geometry and the solver
//     parameters — identical formulas to the instrumented implementation,
//   * the single-core KNC kernel model (knc/kernel_model.h),
//   * the network model (cluster/network.h),
//   * the paper's load model (Eqs. 6-7) and communication-hiding
//     criterion (Sec. III-E: full hiding while cores <= ndomain/2),
// into per-phase times and rates, i.e. the rows of Table III and the
// series of Figs. 6 and 7.
//
// Modeling accuracy: per-phase times reproduce the paper's published rows
// within roughly +-20% (see EXPERIMENTS.md); the strong-scaling *shapes* —
// where each solver flattens, the ~5x time-to-solution gap, the ~2x
// KNC-minutes gap — are insensitive to the residual calibration error.
#pragma once

#include "lqcd/cluster/network.h"
#include "lqcd/cluster/node_partition.h"
#include "lqcd/knc/work_model.h"

namespace lqcd::cluster {

/// Algorithm + iteration-count description of one DD solve.
struct DDSolveSpec {
  Coord lattice{};
  Coord block = {8, 4, 4, 4};
  int outer_iterations = 0;
  int ischwarz = 16;
  int idomain = 5;
  int basis_size = 16;      ///< m
  int deflation_size = 0;   ///< k
  std::int64_t global_sum_events = 0;  ///< 0 => 2 per outer iteration
  bool half_matrices = true;
  /// Exchange boundary half-spinors in half precision (24 B/site instead
  /// of 48 B). The paper's 64^3x128 communication volumes match this mode.
  bool half_precision_boundaries = false;
  /// ABFT: preconditioner applications between packed-checksum sweeps of
  /// all resident domains (knc::checksum_verify_work per domain). Zero
  /// disables the charge — the historical model.
  int abft_verify_interval = 0;
};

/// Non-DD baseline description (plain double BiCGstab or the
/// mixed-precision Richardson/BiCGstab of the paper).
struct NonDDSolveSpec {
  Coord lattice{};
  int iterations = 0;  ///< BiCGstab iterations (inner its for mixed mode)
  bool mixed_precision = false;
  std::int64_t global_sum_events = 0;  ///< 0 => 5 per iteration
};

/// Deterministic expected-value node-fault model. All defaults are the
/// fault-free cluster; the simulated times are then identical to the
/// un-extended simulator.
struct NodeFaultSpec {
  /// Number of nodes running slow (thermal throttling, a sick DIMM, a
  /// noisy neighbor on the fabric). The solver is bulk-synchronous, so a
  /// single straggler gates every phase barrier.
  int straggler_nodes = 0;
  double straggler_slowdown = 1.0;  ///< straggler time multiplier (>= 1)
  /// Mean time between failures of ONE node, hours. Zero disables the
  /// failure model. Expected failures over a run scale with node count.
  double node_mtbf_hours = 0.0;
  /// Flat respawn/rejoin cost per failure — the legacy constant, used
  /// only when rewire_hops == 0.
  double recovery_seconds = 0.0;
  /// Measured fault-tolerant-collective recovery (vnode tree emulation):
  /// when rewire_hops > 0, each failure's recovery is charged as
  ///   rewire_hops x per-hop latency + rewire_rework_seconds
  /// instead of the flat recovery_seconds constant. Feed rewire_hops from
  /// CollectiveStats::rewire_hops of a replayed dead-rank allreduce and
  /// rewire_rework_seconds with the respawn work outside the collective.
  double rewire_hops = 0.0;
  double rewire_rework_seconds = 0.0;
  /// Application checkpoint period. A failure replays half an interval in
  /// expectation; zero means no checkpointing (half the run is lost).
  double checkpoint_interval_seconds = 0.0;
  /// Wall time to write one checkpoint. Zero keeps the historical model
  /// (rework charged, writes free); nonzero charges run/interval writes.
  double checkpoint_cost_seconds = 0.0;
  /// Replace the fixed interval with the Young/Daly optimum
  /// sqrt(2 C M_sys)-style interval computed from checkpoint_cost_seconds
  /// and the SYSTEM MTBF (node MTBF / node count). Requires a nonzero
  /// checkpoint_cost_seconds; the chosen interval is reported in
  /// ClusterResult::effective_checkpoint_interval_seconds.
  bool auto_tune_checkpoint_interval = false;
};

struct PhaseCost {
  double seconds = 0;         ///< wall time attributed to the phase
  double flops_per_node = 0;  ///< useful flops per node (max-loaded group)

  double gflops_per_node() const noexcept {
    return seconds > 0 ? flops_per_node / seconds / 1e9 : 0.0;
  }
};

struct ClusterResult {
  int nodes = 0;
  double load = 0;                      ///< Eq. 7 average over groups
  std::int64_t ndomain_per_color = 0;   ///< max-loaded group
  PhaseCost a, m, gs, other;            ///< per full solve
  double total_seconds = 0;
  double tflops_m = 0;       ///< aggregate rate of the M phase
  double tflops_total = 0;   ///< aggregate rate of the full solve
  double comm_mb_per_node = 0;  ///< data sent per node over the full solve
  std::int64_t global_sums = 0;
  /// Fault-model accounting (zero when NodeFaultSpec is default). The
  /// per-phase costs above stay at their healthy values; the overhead is
  /// added to total_seconds.
  double fault_overhead_seconds = 0;
  double expected_failures = 0;
  /// Checkpoint period the fault model actually used: the configured
  /// interval, or the Young/Daly optimum when auto-tuning is on.
  double effective_checkpoint_interval_seconds = 0;
  /// Wall time of the in-solve ABFT packed-checksum sweeps (included in
  /// total_seconds; zero when DDSolveSpec::abft_verify_interval == 0).
  double abft_verify_seconds = 0;

  double pct(const PhaseCost& c) const noexcept {
    return total_seconds > 0 ? 100.0 * c.seconds / total_seconds : 0.0;
  }
};

struct ClusterSimParams {
  knc::KncSpec knc{};
  knc::KernelModelParams kernel{};
  NetworkSpec network{};
  /// Fraction of nearest-neighbor communication hidden when the Fig. 4
  /// pattern applies (imperfect in practice: hidden messages still
  /// contend for memory bandwidth and the proxy).
  double hiding_efficiency = 0.7;
  /// Multi-node compute-efficiency multiplier for the M phase: the ~10%
  /// Linux load-balancing loss (paper footnote 5) propagates through the
  /// per-phase barriers to all cores, on top of proxy-relay overheads;
  /// calibrated against Table III's M-phase rates (single-chip Fig. 5
  /// rates are ~35% above the multi-node Table III rates).
  double os_jitter = 1.35;
  /// Synchronization cost per Schwarz color phase (KNC-internal barriers
  /// + dedicated-core message issue), seconds.
  double phase_sync_seconds = 200e-6;
  /// Memory-bandwidth utilization of the double-precision operator A in
  /// the outer solver (irregular neighbor access, no 3.5D blocking).
  double a_bw_utilization = 0.42;
  /// Memory-bandwidth utilization of BLAS-1/Gram-Schmidt streaming.
  double blas_bw_utilization = 0.60;
  /// Memory-bandwidth utilization of the non-DD operator (Ref. [1] code:
  /// 3.5D blocking, tuned prefetch).
  double nondd_bw_utilization = 0.85;
  /// Plain OS-jitter factor for phases without per-sweep barriers (the
  /// paper's measured ~10% Linux load-balancing loss, footnote 5).
  double base_jitter = 1.10;
  /// Node fault model (stragglers, failures); defaults are fault-free.
  NodeFaultSpec faults{};
};

class ClusterSim {
 public:
  explicit ClusterSim(const ClusterSimParams& params = {})
      : p_(params), kernel_(params.knc, params.kernel) {}

  const ClusterSimParams& params() const noexcept { return p_; }

  ClusterResult simulate_dd(const DDSolveSpec& spec,
                            const NodePartition& part) const;
  ClusterResult simulate_nondd(const NonDDSolveSpec& spec,
                               const NodePartition& part) const;

 private:
  ClusterSimParams p_;
  knc::KernelModel kernel_;
};

}  // namespace lqcd::cluster
