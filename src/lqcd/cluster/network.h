// Network model for the multi-node simulation.
//
// Models the Stampede fabric the paper used: FDR InfiniBand (Mellanox
// ConnectX-3) with ~7 GB/s peak per link, reached only for large packets —
// the host-proxy relay of Ref. [3] is folded into the effective latency.
// The packet-size-dependent bandwidth curve is the standard
//   bw_eff(n) = peak * n / (n + n_half)
// parameterization; n_half is the message size achieving half of peak.
// Global sums are modeled as latency-bound allreduces over a binary tree.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace lqcd::cluster {

struct NetworkSpec {
  double peak_bw_gbs = 7.0;        ///< per-link peak bandwidth (FDR)
  double latency_us = 10.0;        ///< effective one-way latency (w/ proxy)
  double half_bw_message_kb = 256; ///< message size reaching half of peak
  /// Effective cost per allreduce tree stage. Large (70 us) compared to
  /// raw fabric latency: it folds in the host-proxy relay, MPI stack and
  /// OS jitter across ranks — calibrated so that the non-DD solver's
  /// global-sum cost matches Table III's strong-scaling flattening.
  double allreduce_latency_us = 70.0;
  /// Fault model: independent per-message loss probability. A lost packet
  /// is detected by timeout and retransmitted after a backoff; the
  /// expected attempt count is the geometric 1/(1-p). Zero (default)
  /// reproduces the fault-free fabric exactly.
  double packet_loss_probability = 0.0;
  double retransmit_backoff_us = 100.0;
};

/// Effective bandwidth in GB/s for an n-byte message.
inline double effective_bandwidth_gbs(const NetworkSpec& net,
                                      double bytes) noexcept {
  const double n_half = net.half_bw_message_kb * 1024.0;
  return net.peak_bw_gbs * bytes / (bytes + n_half);
}

/// Time to transfer one point-to-point message of `bytes`, in expectation
/// over packet loss (expected-value fault model, deterministic).
inline double message_seconds(const NetworkSpec& net, double bytes) noexcept {
  if (bytes <= 0) return 0.0;
  const double bw = effective_bandwidth_gbs(net, bytes) * 1e9;
  const double once = net.latency_us * 1e-6 + bytes / bw;
  const double p = net.packet_loss_probability;
  if (p <= 0.0) return once;
  const double attempts = 1.0 / (1.0 - std::min(p, 0.999));
  return attempts * once +
         (attempts - 1.0) * net.retransmit_backoff_us * 1e-6;
}

/// Time of one small (scalar payload) allreduce over `nodes` ranks.
inline double allreduce_seconds(const NetworkSpec& net, int nodes) noexcept {
  if (nodes <= 1) return 0.0;
  const double stages = std::ceil(std::log2(static_cast<double>(nodes)));
  return 2.0 * stages * net.allreduce_latency_us * 1e-6;
}

}  // namespace lqcd::cluster
