#include "lqcd/cluster/node_partition.h"

#include <algorithm>
#include <map>

namespace lqcd::cluster {

NodePartition NodePartition::uniform(const Coord& lattice,
                                     const Coord& grid) {
  NodePartition p;
  p.lattice_ = lattice;
  p.grid_ = grid;
  p.num_nodes_ = 1;
  Group g;
  g.count = 1;
  for (int mu = 0; mu < kNumDims; ++mu) {
    const auto mu_s = static_cast<std::size_t>(mu);
    LQCD_CHECK_MSG(grid[mu_s] >= 1, "node grid extent must be >= 1");
    LQCD_CHECK_MSG(lattice[mu_s] % grid[mu_s] == 0,
                   "lattice dim " << mu << " not divisible by node grid");
    p.num_nodes_ *= grid[mu_s];
    g.local[mu_s] = lattice[mu_s] / grid[mu_s];
  }
  g.count = p.num_nodes_;
  p.groups_.push_back(g);
  return p;
}

NodePartition NodePartition::nonuniform_t(const Coord& lattice,
                                          const std::array<int, 3>& grid_xyz,
                                          const std::vector<int>& t_extents) {
  NodePartition p;
  p.lattice_ = lattice;
  int nodes_xyz = 1;
  for (int mu = 0; mu < 3; ++mu) {
    const auto mu_s = static_cast<std::size_t>(mu);
    LQCD_CHECK(lattice[mu_s] % grid_xyz[mu_s] == 0);
    p.grid_[mu_s] = grid_xyz[mu_s];
    nodes_xyz *= grid_xyz[mu_s];
  }
  int t_sum = 0;
  for (const int t : t_extents) {
    LQCD_CHECK_MSG(t > 0, "t slab extent must be positive");
    t_sum += t;
  }
  LQCD_CHECK_MSG(t_sum == lattice[3],
                 "t slab extents sum to " << t_sum << ", expected "
                                          << lattice[3]);
  p.grid_[3] = static_cast<int>(t_extents.size());
  p.num_nodes_ = nodes_xyz * p.grid_[3];

  // Collapse equal t-extents into groups.
  std::map<int, int> extent_count;
  for (const int t : t_extents) ++extent_count[t];
  for (const auto& [t, count] : extent_count) {
    Group g;
    g.count = count * nodes_xyz;
    for (int mu = 0; mu < 3; ++mu)
      g.local[static_cast<std::size_t>(mu)] =
          lattice[static_cast<std::size_t>(mu)] /
          grid_xyz[static_cast<std::size_t>(mu)];
    g.local[3] = t;
    p.groups_.push_back(g);
  }
  return p;
}

NodePartition NodePartition::choose(const Coord& lattice, int nodes,
                                    const Coord& block) {
  LQCD_CHECK(nodes >= 1);
  Coord best_grid{0, 0, 0, 0};
  double best_surface = -1.0;

  // Enumerate all factorizations nodes = gx*gy*gz*gt with valid local
  // dims; pick the one minimizing the total communication surface.
  for (int gx = 1; gx <= nodes; ++gx) {
    if (nodes % gx != 0 || lattice[0] % gx != 0) continue;
    if ((lattice[0] / gx) % block[0] != 0) continue;
    const int nyzt = nodes / gx;
    for (int gy = 1; gy <= nyzt; ++gy) {
      if (nyzt % gy != 0 || lattice[1] % gy != 0) continue;
      if ((lattice[1] / gy) % block[1] != 0) continue;
      const int nzt = nyzt / gy;
      for (int gz = 1; gz <= nzt; ++gz) {
        if (nzt % gz != 0 || lattice[2] % gz != 0) continue;
        if ((lattice[2] / gz) % block[2] != 0) continue;
        const int gt = nzt / gz;
        if (lattice[3] % gt != 0) continue;
        if ((lattice[3] / gt) % block[3] != 0) continue;
        const Coord grid{gx, gy, gz, gt};
        double surface = 0;
        const std::int64_t local_vol =
            static_cast<std::int64_t>(lattice[0] / gx) * (lattice[1] / gy) *
            (lattice[2] / gz) * (lattice[3] / gt);
        for (int mu = 0; mu < kNumDims; ++mu) {
          const auto mu_s = static_cast<std::size_t>(mu);
          if (grid[mu_s] > 1)
            surface += static_cast<double>(local_vol) /
                       (lattice[mu_s] / grid[mu_s]);
        }
        if (best_surface < 0 || surface < best_surface) {
          best_surface = surface;
          best_grid = grid;
        }
      }
    }
  }
  LQCD_CHECK_MSG(best_surface >= 0,
                 "no valid node grid for " << nodes << " nodes");
  return uniform(lattice, best_grid);
}

}  // namespace lqcd::cluster
