#include "lqcd/cluster/cluster_sim.h"

#include <algorithm>
#include <cmath>

#include "lqcd/resilience/resilient_solve.h"  // daly_checkpoint_interval

namespace lqcd::cluster {

namespace {

constexpr double kHalfSpinorSingleBytes = 48.0;  // 12 reals, float
constexpr double kHalfSpinorDoubleBytes = 96.0;  // 12 reals, double
constexpr double kSpinorDoubleBytes = 192.0;     // 24 reals, double

/// Streaming bytes per site of one double-precision Wilson-Clover apply:
/// gauge (4 links x 18 reals) + clover (72) + spinor in + out.
constexpr double kABytesPerSiteDouble = (72.0 + 72.0 + 24.0 + 24.0) * 8.0;

double mem_stream_seconds(const knc::KncSpec& knc, double bytes,
                          double utilization) {
  return bytes / (knc.mem_bw_gbs * 1e9 * utilization);
}

/// Expected extra wall time from node faults on a run that would take
/// `healthy_seconds` on a fault-free cluster (expected-value model,
/// deterministic — no sampling). `hop_seconds` is the per-hop latency of
/// the proxy-tree collective, used when the measured rewire-cost model
/// (f.rewire_hops > 0) replaces the flat recovery constant.
double node_fault_overhead(const NodeFaultSpec& f, int nodes,
                           double healthy_seconds, double hop_seconds,
                           double* expected_failures,
                           double* effective_interval) {
  double overhead = 0.0;
  // Straggler: the solver is bulk-synchronous, so one slowed node gates
  // every phase barrier no matter how many healthy nodes surround it.
  if (f.straggler_nodes > 0 && f.straggler_slowdown > 1.0 && nodes > 0)
    overhead += (f.straggler_slowdown - 1.0) * healthy_seconds;
  // Node failure: expected count over the (straggler-stretched) run; each
  // pays the recovery cost plus the rework since the last checkpoint —
  // half an interval in expectation, or half the run without any. The
  // interval is either configured or the Young/Daly optimum against the
  // SYSTEM MTBF (any node's failure interrupts the bulk-synchronous run).
  if (f.node_mtbf_hours > 0.0 && nodes > 0) {
    const double run = healthy_seconds + overhead;
    const double mtbf_sys = f.node_mtbf_hours * 3600.0 / nodes;
    double interval = f.checkpoint_interval_seconds;
    if (f.auto_tune_checkpoint_interval && f.checkpoint_cost_seconds > 0.0)
      interval = daly_checkpoint_interval(f.checkpoint_cost_seconds,
                                          mtbf_sys);
    const double failures = run / mtbf_sys;
    const double rework = interval > 0.0
                              ? std::min(0.5 * interval, 0.5 * run)
                              : 0.5 * run;
    const double recovery =
        f.rewire_hops > 0.0
            ? f.rewire_hops * hop_seconds + f.rewire_rework_seconds
            : f.recovery_seconds;
    overhead += failures * (recovery + rework);
    // Checkpoint writes are paid whether or not anything fails.
    if (interval > 0.0 && f.checkpoint_cost_seconds > 0.0)
      overhead += run / interval * f.checkpoint_cost_seconds;
    if (expected_failures != nullptr) *expected_failures = failures;
    if (effective_interval != nullptr) *effective_interval = interval;
  }
  return overhead;
}

}  // namespace

ClusterResult ClusterSim::simulate_dd(const DDSolveSpec& spec,
                                      const NodePartition& part) const {
  ClusterResult res;
  res.nodes = part.num_nodes();
  res.global_sums = spec.global_sum_events > 0
                        ? spec.global_sum_events
                        : 2 * spec.outer_iterations;

  const auto block_work =
      knc::block_solve_work(spec.block, spec.idomain, spec.half_matrices);
  const double block_seconds =
      kernel_.seconds_per_core(block_work.kernel, knc::PrefetchMode::kL1L2);
  const int cores = p_.knc.cores;

  double per_iter_m = 0, per_iter_a = 0, per_iter_gs = 0, per_iter_other = 0;
  double per_iter_abft = 0;
  double flops_m = 0, flops_a = 0, flops_gs = 0, flops_other = 0;
  double comm_bytes_per_iter = 0;
  double load_weighted = 0;
  std::int64_t total_nodes_counted = 0;

  for (const auto& g : part.groups()) {
    const std::int64_t vloc = local_volume(g);
    const std::int64_t nd = knc::ndomain_per_color(vloc, spec.block);
    const double load = knc::core_load(nd, cores);
    load_weighted += load * g.count;
    total_nodes_counted += g.count;

    // ---- M: Schwarz preconditioner --------------------------------------
    const std::int64_t rounds = nd > 0 ? (nd + cores - 1) / cores : 0;
    const double compute_per_phase =
        static_cast<double>(rounds) * block_seconds * p_.os_jitter;
    // Boundary-buffer copy into / out of the global send arrays
    // (Sec. III-E): all domain faces stream through memory once per sweep.
    const double buffer_bytes_per_sweep =
        2.0 * nd * block_work.pack_bytes;  // both colors
    const double buffer_copy_per_sweep = mem_stream_seconds(
        p_.knc, 2.0 * buffer_bytes_per_sweep, p_.blas_bw_utilization);

    // Network: per color phase, each cut direction sends the half-spinors
    // of that color's node-face sites (half the face) both ways.
    double comm_per_phase = 0;
    double sent_bytes_per_phase = 0;
    const double boundary_site_bytes = spec.half_precision_boundaries
                                           ? kHalfSpinorSingleBytes / 2.0
                                           : kHalfSpinorSingleBytes;
    for (int mu = 0; mu < kNumDims; ++mu) {
      const std::int64_t fs = face_sites(part, g, mu);
      if (fs == 0) continue;
      const double msg_bytes = fs / 2.0 * boundary_site_bytes;
      comm_per_phase += 2.0 * message_seconds(p_.network, msg_bytes);
      sent_bytes_per_phase += 2.0 * msg_bytes;
    }
    // Fig. 4 hiding criterion: full overlap while cores <= ndomain/2.
    const double hide_geom = std::clamp(
        static_cast<double>(nd) / cores - 1.0, 0.0, 1.0);
    const double exposed_fraction =
        1.0 - p_.hiding_efficiency * hide_geom;
    const double m_per_sweep = 2.0 * compute_per_phase +
                               buffer_copy_per_sweep +
                               2.0 * p_.phase_sync_seconds +
                               exposed_fraction * 2.0 * comm_per_phase;
    const double m_iter = spec.ischwarz * m_per_sweep;
    const double m_flops =
        spec.ischwarz * 2.0 * static_cast<double>(nd) * block_work.flops;

    // ---- A: outer Wilson-Clover apply (double) --------------------------
    const double a_flops = 1848.0 * static_cast<double>(vloc);
    const double a_mem = mem_stream_seconds(
        p_.knc, kABytesPerSiteDouble * static_cast<double>(vloc),
        p_.a_bw_utilization);
    double a_comm = 0;
    for (int mu = 0; mu < kNumDims; ++mu) {
      const std::int64_t fs = face_sites(part, g, mu);
      if (fs == 0) continue;
      a_comm += 2.0 * message_seconds(
                          p_.network, fs * kHalfSpinorDoubleBytes);
    }
    // The outer A is applied once per iteration; its halo exchange
    // overlaps with the interior computation (standard surface/interior
    // split — the local volume is large in units of sites).
    const double a_iter =
        a_mem * p_.base_jitter +
        std::max(0.0, a_comm - 0.8 * a_mem);

    // ---- GS: Gram-Schmidt orthogonalization -----------------------------
    const double avg_j =
        0.5 * (spec.deflation_size + spec.basis_size) + 1.0;
    const double gs_flops =
        avg_j * 2.0 * 96.0 * static_cast<double>(vloc);  // dots + axpys
    const double gs_bytes =
        (avg_j + 1.0) * 2.0 * kSpinorDoubleBytes * static_cast<double>(vloc);
    const double gs_events_per_iter =
        static_cast<double>(res.global_sums) /
        std::max(1, spec.outer_iterations);
    const double gs_iter =
        mem_stream_seconds(p_.knc, gs_bytes, p_.blas_bw_utilization) +
        gs_events_per_iter * allreduce_seconds(p_.network, res.nodes);

    // ---- other: restart transforms, solution update, LS ----------------
    // The deflated-restart basis transforms V <- V Phat, Z <- Z Phat are
    // fused multi-field passes: each source field is streamed once per
    // cycle regardless of the number of output combinations.
    const int m = spec.basis_size, k = spec.deflation_size;
    const double cycle_len = std::max(1, m - k);
    const double other_flops =
        (static_cast<double>(m + 1) * (k + 1) +
         static_cast<double>(m) * k + m) /
        cycle_len * 96.0 * static_cast<double>(vloc);
    const double other_bytes =
        (static_cast<double>(m + 1) + (k + 1) + m + k + 4.0) / cycle_len *
        kSpinorDoubleBytes * static_cast<double>(vloc);
    const double other_iter =
        mem_stream_seconds(p_.knc, other_bytes, p_.blas_bw_utilization);

    // ---- ABFT: periodic packed-checksum sweeps --------------------------
    // Every abft_verify_interval preconditioner applications, each core
    // re-checksums its resident domains (both colors). The sweep is
    // memory-bandwidth-bound streaming of the packed matrices; the charge
    // is amortized to a per-iteration cost.
    double abft_iter = 0;
    if (spec.abft_verify_interval > 0 && nd > 0) {
      const knc::KernelWork vw =
          knc::checksum_verify_work(spec.block, spec.half_matrices);
      const double verify_seconds =
          kernel_.seconds_per_core(vw, knc::PrefetchMode::kL1L2);
      const std::int64_t vrounds = (2 * nd + cores - 1) / cores;
      abft_iter = static_cast<double>(vrounds) * verify_seconds *
                  p_.base_jitter /
                  static_cast<double>(spec.abft_verify_interval);
    }

    // The slowest group gates every phase (bulk-synchronous solver).
    if (m_iter > per_iter_m) {
      per_iter_m = m_iter;
      flops_m = m_flops;
      comm_bytes_per_iter = spec.ischwarz * 2.0 * sent_bytes_per_phase;
      res.ndomain_per_color = nd;
    }
    per_iter_a = std::max(per_iter_a, a_iter);
    flops_a = std::max(flops_a, a_flops);
    per_iter_gs = std::max(per_iter_gs, gs_iter);
    flops_gs = std::max(flops_gs, gs_flops);
    per_iter_other = std::max(per_iter_other, other_iter);
    flops_other = std::max(flops_other, other_flops);
    per_iter_abft = std::max(per_iter_abft, abft_iter);
  }

  const double iters = spec.outer_iterations;
  res.load = load_weighted / std::max<std::int64_t>(1, total_nodes_counted);
  res.m = {per_iter_m * iters, flops_m * iters};
  res.a = {per_iter_a * iters, flops_a * iters};
  res.gs = {per_iter_gs * iters, flops_gs * iters};
  res.other = {per_iter_other * iters, flops_other * iters};
  res.abft_verify_seconds = per_iter_abft * iters;
  res.total_seconds = res.m.seconds + res.a.seconds + res.gs.seconds +
                      res.other.seconds + res.abft_verify_seconds;
  res.fault_overhead_seconds = node_fault_overhead(
      p_.faults, res.nodes, res.total_seconds,
      p_.network.allreduce_latency_us * 1e-6, &res.expected_failures,
      &res.effective_checkpoint_interval_seconds);
  res.total_seconds += res.fault_overhead_seconds;
  res.comm_mb_per_node = comm_bytes_per_iter * iters / 1e6 +
                         /* A halo, double half-spinors */ 0.0;
  res.tflops_m =
      res.m.seconds > 0
          ? res.m.flops_per_node * res.nodes / res.m.seconds / 1e12
          : 0.0;
  const double total_flops_per_node = res.m.flops_per_node +
                                      res.a.flops_per_node +
                                      res.gs.flops_per_node +
                                      res.other.flops_per_node;
  res.tflops_total = res.total_seconds > 0 ? total_flops_per_node *
                                                 res.nodes /
                                                 res.total_seconds / 1e12
                                           : 0.0;
  return res;
}

ClusterResult ClusterSim::simulate_nondd(const NonDDSolveSpec& spec,
                                         const NodePartition& part) const {
  ClusterResult res;
  res.nodes = part.num_nodes();
  res.global_sums = spec.global_sum_events > 0
                        ? spec.global_sum_events
                        : 5 * static_cast<std::int64_t>(spec.iterations);
  const double gs_per_iter = static_cast<double>(res.global_sums) /
                             std::max(1, spec.iterations);

  double per_iter = 0;
  double flops_per_node = 0;
  double comm_bytes_per_iter = 0;

  // Mixed-precision mode runs the bulk of iterations in single precision
  // stored as half (SOA=16): half the bytes of the double solver.
  const double precision_bytes_scale = spec.mixed_precision ? 0.5 : 1.0;

  for (const auto& g : part.groups()) {
    const std::int64_t vloc = local_volume(g);
    // Two operator applications per BiCGstab iteration.
    const double a_bytes =
        kABytesPerSiteDouble * precision_bytes_scale *
        static_cast<double>(vloc);
    const double a_time =
        mem_stream_seconds(p_.knc, a_bytes, p_.nondd_bw_utilization);
    // ~14 vector streams of BLAS-1 per iteration.
    const double blas_bytes = 14.0 * kSpinorDoubleBytes *
                              precision_bytes_scale *
                              static_cast<double>(vloc);
    const double blas_time =
        mem_stream_seconds(p_.knc, blas_bytes, p_.blas_bw_utilization);

    double halo = 0;
    double sent = 0;
    for (int mu = 0; mu < kNumDims; ++mu) {
      const std::int64_t fs = face_sites(part, g, mu);
      if (fs == 0) continue;
      const double msg =
          fs * kHalfSpinorDoubleBytes * precision_bytes_scale;
      halo += 2.0 * message_seconds(p_.network, msg);
      sent += 2.0 * msg;
    }
    // BiCGstab's data dependencies prevent deep overlap; the
    // surface/interior split hides at most the interior share of one
    // apply.
    const double exposed_halo = std::max(0.2 * halo, halo - 0.5 * a_time);

    const double iter_time = (2.0 * a_time + blas_time) * p_.base_jitter +
                             2.0 * exposed_halo +
                             gs_per_iter *
                                 allreduce_seconds(p_.network, res.nodes);
    const double iter_flops =
        (2.0 * 1848.0 + 14.0 * 48.0) * static_cast<double>(vloc);
    if (iter_time > per_iter) {
      per_iter = iter_time;
      flops_per_node = iter_flops;
      comm_bytes_per_iter = 2.0 * sent;
    }
  }

  const double iters = spec.iterations;
  res.m = {0, 0};
  res.a = {per_iter * iters, flops_per_node * iters};
  res.total_seconds = per_iter * iters;
  res.fault_overhead_seconds = node_fault_overhead(
      p_.faults, res.nodes, res.total_seconds,
      p_.network.allreduce_latency_us * 1e-6, &res.expected_failures,
      &res.effective_checkpoint_interval_seconds);
  res.total_seconds += res.fault_overhead_seconds;
  res.comm_mb_per_node = comm_bytes_per_iter * iters / 1e6;
  res.tflops_total =
      res.total_seconds > 0
          ? flops_per_node * iters * res.nodes / res.total_seconds / 1e12
          : 0.0;
  res.load = 1.0;
  return res;
}

}  // namespace lqcd::cluster
