// Distribution of the global lattice over (virtual) KNC nodes.
//
// Supports the paper's two layouts:
//  * uniform hyper-rectangular grids (what the QDP++ framework produces),
//  * non-uniform t-splits (Sec. IV-C2: e.g. t = 128 split as 4x28 + 16 to
//    raise the average core load from 53% to 85% on 640 KNCs).
//
// Nodes with equal local dimensions are collapsed into "groups" so the
// simulator can cost each distinct shape once.
#pragma once

#include <vector>

#include "lqcd/lattice/geometry.h"

namespace lqcd::cluster {

class NodePartition {
 public:
  struct Group {
    int count = 0;    ///< number of nodes with this local shape
    Coord local{};    ///< local lattice dimensions
  };

  /// Uniform split: every lattice dimension divided evenly by grid[mu].
  static NodePartition uniform(const Coord& lattice, const Coord& grid);

  /// Non-uniform in t: x,y,z split uniformly by grid_xyz, the t extent
  /// split into the given per-node-slab extents (must sum to L_t).
  static NodePartition nonuniform_t(const Coord& lattice,
                                    const std::array<int, 3>& grid_xyz,
                                    const std::vector<int>& t_extents);

  /// Heuristic uniform grid for `nodes` KNCs: choose the factorization
  /// with every local dimension divisible by the corresponding block
  /// extent and minimal communication surface.
  static NodePartition choose(const Coord& lattice, int nodes,
                              const Coord& block);

  const Coord& lattice() const noexcept { return lattice_; }
  const Coord& grid() const noexcept { return grid_; }
  int num_nodes() const noexcept { return num_nodes_; }
  const std::vector<Group>& groups() const noexcept { return groups_; }

  /// True if the lattice dimension mu is actually cut (communication in
  /// that direction exists).
  bool is_cut(int mu) const noexcept {
    return grid_[static_cast<std::size_t>(mu)] > 1;
  }

 private:
  Coord lattice_{};
  Coord grid_{};
  int num_nodes_ = 0;
  std::vector<Group> groups_;
};

/// Sites on the node surface orthogonal to mu (one side), or 0 if the
/// direction is not cut.
inline std::int64_t face_sites(const NodePartition& part,
                               const NodePartition::Group& g,
                               int mu) noexcept {
  if (!part.is_cut(mu)) return 0;
  std::int64_t v = 1;
  for (int nu = 0; nu < kNumDims; ++nu)
    if (nu != mu) v *= g.local[static_cast<std::size_t>(nu)];
  return v;
}

inline std::int64_t local_volume(const NodePartition::Group& g) noexcept {
  std::int64_t v = 1;
  for (int mu = 0; mu < kNumDims; ++mu)
    v *= g.local[static_cast<std::size_t>(mu)];
  return v;
}

}  // namespace lqcd::cluster
