#include "lqcd/service/solver_service.h"

#include <algorithm>
#include <utility>

namespace lqcd {

SolverService::SolverService(SolverServiceConfig config)
    : config_(config),
      scheduler_(config.batch),
      cache_(config.setup_cache_capacity) {
  LQCD_CHECK(config_.worker_threads >= 0);
  workers_.reserve(static_cast<std::size_t>(config_.worker_threads));
  for (int t = 0; t < config_.worker_threads; ++t)
    workers_.emplace_back([this] { worker_loop(); });
}

SolverService::~SolverService() { shutdown(); }

std::future<SolveResult> SolverService::submit(SolveRequest request) {
  LQCD_CHECK_MSG(request.geom != nullptr && request.gauge != nullptr,
                 "submit() needs a geometry and a gauge configuration");
  LQCD_CHECK_MSG(request.source.size() == request.geom->volume(),
                 "source size must match the lattice volume");
  PendingRequest p;
  p.id = next_id_.fetch_add(1);
  // Client-thread content hashing: the cache key, and the reference the
  // stale-setup guard re-verifies at dispatch.
  p.key = SetupKey{request.gauge->content_checksum(),
                   request.gauge->content_digest64(), request.mass,
                   request.csw};
  p.request = std::move(request);
  std::future<SolveResult> fut = p.promise.get_future();
  if (!scheduler_.push(std::move(p))) {
    // Raced (or followed) shutdown: the queue is closed and the final
    // drain may already have run, so nothing would ever fulfill this
    // promise. Fail fast instead of handing back a forever-blocking
    // future. (push() left `p` intact on failure.)
    p.promise.set_exception(std::make_exception_ptr(
        Error("SolverService::submit after shutdown()")));
    return fut;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.submitted;
  }
  return fut;
}

void SolverService::drain() {
  for (;;) {
    std::vector<PendingRequest> batch = scheduler_.try_next_batch();
    if (batch.empty()) return;
    dispatch(std::move(batch));
  }
}

void SolverService::shutdown() {
  if (shut_down_.exchange(true)) return;  // idempotent, thread-safe
  // close() refuses every subsequent push under the scheduler mutex, so
  // each accepted request is either taken by a worker before the join or
  // swept up by the drain below — none can be stranded with an
  // unfulfilled promise.
  scheduler_.close();
  for (auto& w : workers_) w.join();
  workers_.clear();
  drain();  // synchronous mode, or anything accepted just before close
}

ServiceStats SolverService::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  ServiceStats s = stats_;
  s.cache = cache_.stats();
  return s;
}

void SolverService::worker_loop() {
  for (;;) {
    std::vector<PendingRequest> batch = scheduler_.next_batch();
    if (batch.empty()) return;
    dispatch(std::move(batch));
  }
}

void SolverService::refuse_stale(std::vector<PendingRequest> batch) {
  const auto n = batch.size();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.completed += static_cast<std::uint64_t>(n);
    stats_.stale_refusals += static_cast<std::uint64_t>(n);
  }
  for (auto& p : batch) {
    SolveResult res;
    res.id = p.id;
    res.completion_index = completion_counter_.fetch_add(1);
    res.stats.converged = false;
    res.stats.breakdown = Breakdown::kStaleSetup;
    res.queue_seconds = p.queued.seconds();
    res.total_seconds = res.queue_seconds;
    res.batch_lanes = static_cast<int>(n);
    p.promise.set_value(std::move(res));
  }
}

void SolverService::dispatch(std::vector<PendingRequest> batch) {
  const int nrhs = static_cast<int>(batch.size());
  const SetupKey key = batch.front().key;
  const SolveRequest& head = batch.front().request;

  bool cache_hit = false;
  std::shared_ptr<CachedConfiguration> conf = cache_.acquire(
      key, *head.geom, *head.gauge, config_.solver, &cache_hit);
  if (conf == nullptr) {
    // The gauge field no longer matches the submit-time key: the client
    // mutated it in flight. Refuse the whole batch with the structured
    // stale-setup breakdown (nothing was cached, no arithmetic ran).
    refuse_stale(std::move(batch));
    return;
  }

  // Lease a solver context; blocks (condition variable, no spin) when the
  // configuration caps its pool (in-solve ABFT repair mutates shared
  // packed data) and every context is leased by a concurrent dispatch.
  CachedConfiguration::Context* ctx = conf->acquire_context();

  std::vector<double> queue_seconds(static_cast<std::size_t>(nrhs));
  std::vector<FermionField<double>> b;
  b.reserve(static_cast<std::size_t>(nrhs));
  std::vector<FermionField<double>> x;
  x.reserve(static_cast<std::size_t>(nrhs));
  BatchSolveOptions options;
  options.tolerances.reserve(static_cast<std::size_t>(nrhs));
  options.recycle = &ctx->recycle;
  for (int i = 0; i < nrhs; ++i) {
    const auto li = static_cast<std::size_t>(i);
    queue_seconds[li] = batch[li].queued.seconds();
    options.tolerances.push_back(batch[li].request.tolerance);
    b.push_back(std::move(batch[li].request.source));
    x.emplace_back(b.back().size());  // zero initial guess
  }

  Timer solve_timer;
  std::vector<SolverStats> stats = ctx->solver->solve_batch(b, x, options);
  const double solve_seconds = solve_timer.seconds();
  conf->release(ctx);

  std::vector<SolveResult> results(static_cast<std::size_t>(nrhs));
  std::uint64_t n_converged = 0;
  std::uint64_t n_deadline_missed = 0;
  for (int i = 0; i < nrhs; ++i) {
    const auto li = static_cast<std::size_t>(i);
    SolveResult& res = results[li];
    res.id = batch[li].id;
    res.completion_index = completion_counter_.fetch_add(1);
    res.solution = std::move(x[li]);
    res.stats = stats[li];
    res.queue_seconds = queue_seconds[li];
    res.solve_seconds = solve_seconds;
    res.total_seconds = batch[li].queued.seconds();
    res.batch_lanes = nrhs;
    res.setup_cache_hit = cache_hit;
    const double deadline = batch[li].request.deadline_seconds;
    res.deadline_missed = deadline > 0.0 && res.total_seconds > deadline;
    if (res.stats.converged) ++n_converged;
    if (res.deadline_missed) ++n_deadline_missed;
  }

  // Commit the counters BEFORE fulfilling any promise: a client that
  // observed its future ready must find this batch already reflected in
  // stats().
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.completed += static_cast<std::uint64_t>(nrhs);
    ++stats_.batches;
    if (nrhs < config_.batch.max_lanes) ++stats_.partial_batches;
    stats_.lanes_solved += static_cast<std::uint64_t>(nrhs);
    stats_.converged += n_converged;
    stats_.deadline_misses += n_deadline_missed;
  }
  for (int i = 0; i < nrhs; ++i) {
    const auto li = static_cast<std::size_t>(i);
    batch[li].promise.set_value(std::move(results[li]));
  }
}

}  // namespace lqcd
