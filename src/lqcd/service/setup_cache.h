// Per-configuration setup cache for the SolverService.
//
// A DDSolverSetup (operators, domain partition, packed Schwarz matrices)
// is the expensive, immutable part of a solve. The service caches one per
// (gauge checksum+digest, mass, csw) key with LRU eviction, and hangs a
// small pool of solver contexts — DDSolver scratch plus the persistent
// deflation RecycleCache — off each entry so consecutive batches on the
// same configuration skip both the re-pack AND the solo deflation-seeding
// solve.
//
// The cached setup OWNS a deep copy of the gauge field (and geometry):
// a client's field only has to stay alive until its request completes,
// while a cache entry may serve later hits long after that field is gone.
//
// Locking: the global cache mutex covers only LRU bookkeeping. The
// expensive build (operators + full Schwarz pack) runs under a per-entry
// latch, so only same-key requests wait on a build; dispatches hitting
// already-built configurations, stats() and size() never stall behind it.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <vector>

#include "lqcd/core/dd_solver.h"

namespace lqcd {

/// Identity of a cached setup. Two requests are batchable exactly when
/// their keys are equal: same packed matrices, same operator. Content
/// identity pairs the Fletcher-32 checksum (the stale-setup reference)
/// with an independent 64-bit FNV-1a digest, so two distinct gauge
/// configurations alias only on a simultaneous collision in both hash
/// families — a 32-bit sum alone is too narrow to key reuse of packed
/// matrices across millions of solves.
struct SetupKey {
  std::uint32_t gauge_checksum = 0;  ///< GaugeField::content_checksum()
  std::uint64_t gauge_digest = 0;    ///< GaugeField::content_digest64()
  double mass = 0.0;
  double csw = 0.0;

  friend bool operator==(const SetupKey& a, const SetupKey& b) noexcept {
    return a.gauge_checksum == b.gauge_checksum &&
           a.gauge_digest == b.gauge_digest && a.mass == b.mass &&
           a.csw == b.csw;
  }
  friend bool operator!=(const SetupKey& a, const SetupKey& b) noexcept {
    return !(a == b);
  }
};

struct SetupCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  /// Builds rejected because the gauge field no longer matched the key
  /// computed at submission (the client mutated it in flight).
  std::uint64_t stale_rejects = 0;

  friend bool operator==(const SetupCacheStats& a,
                         const SetupCacheStats& b) noexcept {
    return a.hits == b.hits && a.misses == b.misses &&
           a.evictions == b.evictions && a.stale_rejects == b.stale_rejects;
  }
};

/// One cached configuration: the shared immutable setup plus a pool of
/// per-solve contexts. A context bundles the mutable half of a solver
/// (Schwarz scratch, adapters, monitors) with the configuration's
/// persistent deflation subspace.
///
/// An entry is inserted into the cache in the UNBUILT state; the first
/// dispatch builds the owning DDSolverSetup via ensure_built() while
/// later same-key dispatches block on the entry's latch.
class CachedConfiguration {
 public:
  /// A solver context leased to one dispatch at a time.
  struct Context {
    std::unique_ptr<DDSolver> solver;
    RecycleCache recycle;
    bool busy = false;
  };

  CachedConfiguration(SetupKey key, const DDSolverConfig& config)
      : key_(key), config_(config) {
    // In-solve ABFT repair mutates the SHARED packed matrices, so a
    // configuration whose solves may self-heal gets exactly one context:
    // concurrent dispatches serialize instead of racing a repair.
    const bool in_solve_repair =
        config_.resilience.enabled && config_.resilience.abft.enabled;
    max_contexts_ = in_solve_repair ? 1 : 0;  // 0 = unbounded
  }

  const SetupKey& key() const noexcept { return key_; }

  /// The shared setup; null until ensure_built() succeeded.
  std::shared_ptr<DDSolverSetup> setup() const {
    std::lock_guard<std::mutex> lock(mu_);
    return setup_;
  }

  /// Build (first caller) or wait for (same-key followers) the owning
  /// setup. Runs the expensive pack WITHOUT any cache-global lock held.
  /// Returns false when the gauge field's content no longer matches the
  /// key — the client mutated it between submit() and dispatch — in which
  /// case nothing is cached and the dispatch must refuse with
  /// Breakdown::kStaleSetup.
  bool ensure_built(const Geometry& geom, const GaugeField<double>& gauge) {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      if (setup_ != nullptr) return true;
      if (!building_) break;  // no builder — this caller tries (or retries
                              // after another caller's stale-source fail)
      cv_.wait(lock);
    }
    building_ = true;
    lock.unlock();

    // Re-verify content against the submit-time key before packing: a
    // setup built from a mutated field would be cached under a key that
    // promises different content.
    std::shared_ptr<DDSolverSetup> built;
    if (gauge.content_checksum() == key_.gauge_checksum &&
        gauge.content_digest64() == key_.gauge_digest)
      built = DDSolverSetup::make_owning(geom, gauge, key_.mass, key_.csw,
                                         config_);

    lock.lock();
    building_ = false;
    if (built != nullptr) setup_ = std::move(built);
    cv_.notify_all();
    return setup_ != nullptr;
  }

  /// Lease a free context, growing the pool if allowed; blocks on the
  /// entry's condition variable while the pool is at its cap and fully
  /// leased (no busy-wait — the ABFT single-context gate can hold a
  /// context for a whole solve).
  Context* acquire_context() {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      for (auto& c : contexts_)
        if (!c->busy) {
          c->busy = true;
          return c.get();
        }
      if (max_contexts_ == 0 ||
          contexts_.size() < static_cast<std::size_t>(max_contexts_)) {
        contexts_.push_back(std::make_unique<Context>());
        Context* c = contexts_.back().get();
        c->solver = std::make_unique<DDSolver>(setup_, config_);
        c->recycle.gauge_key = setup_->gauge_checksum();
        c->busy = true;
        return c;
      }
      cv_.wait(lock);
    }
  }

  void release(Context* c) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      c->busy = false;
    }
    cv_.notify_one();
  }

 private:
  SetupKey key_;
  DDSolverConfig config_;
  int max_contexts_ = 0;
  mutable std::mutex mu_;
  std::condition_variable cv_;  ///< build completion + context release
  bool building_ = false;
  std::shared_ptr<DDSolverSetup> setup_;
  std::vector<std::unique_ptr<Context>> contexts_;
};

/// LRU map SetupKey -> CachedConfiguration, capacity in configurations.
/// Thread-safe; a looked-up entry is returned as a shared_ptr so eviction
/// can never pull a setup out from under an in-flight dispatch.
class SetupCache {
 public:
  explicit SetupCache(std::size_t capacity) : capacity_(capacity) {
    LQCD_CHECK(capacity_ >= 1);
  }

  /// Look up (hit) or build (miss, possibly evicting LRU) the entry for
  /// `key`. Only LRU bookkeeping runs under the cache mutex; the build
  /// itself runs under the entry's own latch, so concurrent requests for
  /// the same new configuration wait and then hit, while other keys (and
  /// stats()/size()) proceed. Returns nullptr — caching nothing — when
  /// the gauge content no longer matches `key` (mutated after submit).
  /// `was_hit` (optional) reports which path was taken.
  std::shared_ptr<CachedConfiguration> acquire(
      const SetupKey& key, const Geometry& geom,
      const GaugeField<double>& gauge, const DDSolverConfig& config,
      bool* was_hit = nullptr) {
    std::shared_ptr<CachedConfiguration> entry;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (auto it = lru_.begin(); it != lru_.end(); ++it) {
        if ((*it)->key() == key) {
          lru_.splice(lru_.begin(), lru_, it);  // move-to-front
          ++stats_.hits;
          if (was_hit != nullptr) *was_hit = true;
          entry = lru_.front();
          break;
        }
      }
      if (entry == nullptr) {
        ++stats_.misses;
        if (was_hit != nullptr) *was_hit = false;
        if (lru_.size() >= capacity_) {
          lru_.pop_back();
          ++stats_.evictions;
        }
        entry = std::make_shared<CachedConfiguration>(key, config);
        lru_.push_front(entry);
      }
    }
    if (entry->ensure_built(geom, gauge)) return entry;
    // Stale source: drop the unbuildable entry (it may already have been
    // evicted by a concurrent miss — erase by identity, not position).
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.stale_rejects;
    for (auto it = lru_.begin(); it != lru_.end(); ++it)
      if (it->get() == entry.get()) {
        lru_.erase(it);
        break;
      }
    return nullptr;
  }

  SetupCacheStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return lru_.size();
  }

 private:
  std::size_t capacity_;
  mutable std::mutex mu_;
  /// Front = most recently used. Linear scan is fine: capacity is a
  /// handful of configurations, each worth megabytes of packed matrices.
  std::list<std::shared_ptr<CachedConfiguration>> lru_;
  SetupCacheStats stats_;
};

}  // namespace lqcd
