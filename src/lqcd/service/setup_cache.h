// Per-configuration setup cache for the SolverService.
//
// A DDSolverSetup (operators, domain partition, packed Schwarz matrices)
// is the expensive, immutable part of a solve. The service caches one per
// (gauge checksum, mass, csw) key with LRU eviction, and hangs a small
// pool of solver contexts — DDSolver scratch plus the persistent
// deflation RecycleCache — off each entry so consecutive batches on the
// same configuration skip both the re-pack AND the solo deflation-seeding
// solve.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <vector>

#include "lqcd/core/dd_solver.h"

namespace lqcd {

/// Identity of a cached setup. Two requests are batchable exactly when
/// their keys are equal: same packed matrices, same operator.
struct SetupKey {
  std::uint32_t gauge_checksum = 0;  ///< GaugeField::content_checksum()
  double mass = 0.0;
  double csw = 0.0;

  friend bool operator==(const SetupKey& a, const SetupKey& b) noexcept {
    return a.gauge_checksum == b.gauge_checksum && a.mass == b.mass &&
           a.csw == b.csw;
  }
  friend bool operator!=(const SetupKey& a, const SetupKey& b) noexcept {
    return !(a == b);
  }
};

struct SetupCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;

  friend bool operator==(const SetupCacheStats& a,
                         const SetupCacheStats& b) noexcept {
    return a.hits == b.hits && a.misses == b.misses &&
           a.evictions == b.evictions;
  }
};

/// One cached configuration: the shared immutable setup plus a pool of
/// per-solve contexts. A context bundles the mutable half of a solver
/// (Schwarz scratch, adapters, monitors) with the configuration's
/// persistent deflation subspace.
class CachedConfiguration {
 public:
  /// A solver context leased to one dispatch at a time.
  struct Context {
    std::unique_ptr<DDSolver> solver;
    RecycleCache recycle;
    bool busy = false;
  };

  CachedConfiguration(SetupKey key, std::shared_ptr<DDSolverSetup> setup,
                      const DDSolverConfig& config)
      : key_(key), setup_(std::move(setup)), config_(config) {
    // In-solve ABFT repair mutates the SHARED packed matrices, so a
    // configuration whose solves may self-heal gets exactly one context:
    // concurrent dispatches serialize instead of racing a repair.
    const bool in_solve_repair =
        config_.resilience.enabled && config_.resilience.abft.enabled;
    max_contexts_ = in_solve_repair ? 1 : 0;  // 0 = unbounded
  }

  const SetupKey& key() const noexcept { return key_; }
  const std::shared_ptr<DDSolverSetup>& setup() const noexcept {
    return setup_;
  }

  /// Lease a free context, growing the pool if allowed. Returns nullptr
  /// when the pool is at its cap and fully leased (caller backs off and
  /// retries; the service wraps this in acquire-with-wait).
  Context* try_acquire() {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& c : contexts_)
      if (!c->busy) {
        c->busy = true;
        return c.get();
      }
    if (max_contexts_ > 0 &&
        contexts_.size() >= static_cast<std::size_t>(max_contexts_))
      return nullptr;
    contexts_.push_back(std::make_unique<Context>());
    Context* c = contexts_.back().get();
    c->solver = std::make_unique<DDSolver>(setup_, config_);
    c->recycle.gauge_key = setup_->gauge_checksum();
    c->busy = true;
    return c;
  }

  void release(Context* c) {
    std::lock_guard<std::mutex> lock(mu_);
    c->busy = false;
  }

 private:
  SetupKey key_;
  std::shared_ptr<DDSolverSetup> setup_;
  DDSolverConfig config_;
  int max_contexts_ = 0;
  std::mutex mu_;
  std::vector<std::unique_ptr<Context>> contexts_;
};

/// LRU map SetupKey -> CachedConfiguration, capacity in configurations.
/// Thread-safe; a looked-up entry is returned as a shared_ptr so eviction
/// can never pull a setup out from under an in-flight dispatch.
class SetupCache {
 public:
  explicit SetupCache(std::size_t capacity) : capacity_(capacity) {
    LQCD_CHECK(capacity_ >= 1);
  }

  /// Look up (hit) or build (miss, possibly evicting LRU) the entry for
  /// `key`. The build — operators plus full Schwarz pack — runs under the
  /// cache lock: concurrent requests for the same new configuration wait
  /// and then hit, rather than packing the same matrices twice.
  /// `was_hit` (optional) reports which path was taken.
  std::shared_ptr<CachedConfiguration> acquire(
      const SetupKey& key, const Geometry& geom,
      const GaugeField<double>& gauge, const DDSolverConfig& config,
      bool* was_hit = nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = lru_.begin(); it != lru_.end(); ++it) {
      if ((*it)->key() == key) {
        lru_.splice(lru_.begin(), lru_, it);  // move-to-front
        ++stats_.hits;
        if (was_hit != nullptr) *was_hit = true;
        return lru_.front();
      }
    }
    ++stats_.misses;
    if (was_hit != nullptr) *was_hit = false;
    if (lru_.size() >= capacity_) {
      lru_.pop_back();
      ++stats_.evictions;
    }
    auto setup = std::make_shared<DDSolverSetup>(geom, gauge, key.mass,
                                                 key.csw, config);
    lru_.push_front(
        std::make_shared<CachedConfiguration>(key, std::move(setup), config));
    return lru_.front();
  }

  SetupCacheStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return lru_.size();
  }

 private:
  std::size_t capacity_;
  mutable std::mutex mu_;
  /// Front = most recently used. Linear scan is fine: capacity is a
  /// handful of configurations, each worth megabytes of packed matrices.
  std::list<std::shared_ptr<CachedConfiguration>> lru_;
  SetupCacheStats stats_;
};

}  // namespace lqcd
