// SolverService — a persistent propagator farm in front of DDSolver.
//
//   client threads                service
//   -------------                 ------------------------------------
//   submit(SolveRequest) ──────▶  BatchScheduler (FIFO + lane packing)
//        │ future<SolveResult>        │ next_batch(): same-key requests,
//        ▼                            ▼ bounded batching window
//   future.get()  ◀────────────  worker: SetupCache (LRU, checksum-keyed)
//                                  └▶ DDSolver::solve_batch (lockstep
//                                     lanes, per-lane tolerances,
//                                     persistent deflation recycling)
//
// The setup cache pays the packed gauge/clover construction once per
// configuration; the per-configuration RecycleCache carries the deflation
// subspace across batches so later batches skip the solo seeding solve.
// With worker_threads = 0 the service runs synchronously: submit() only
// queues, drain() dispatches inline on the caller's thread — the
// deterministic mode the unit tests use.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "lqcd/service/request.h"
#include "lqcd/service/scheduler.h"
#include "lqcd/service/setup_cache.h"

namespace lqcd {

struct SolverServiceConfig {
  /// Base solver configuration for every context the service builds.
  /// `solver.tolerance` is the default; each request's own tolerance is
  /// applied per lane at dispatch.
  DDSolverConfig solver;
  BatchPolicy batch;
  /// LRU capacity of the per-configuration setup cache.
  std::size_t setup_cache_capacity = 4;
  /// Dispatch threads. 0 = synchronous mode: no threads, the caller
  /// pumps dispatches via drain().
  int worker_threads = 1;
};

/// Aggregate service counters. All fields are functions of WHAT was
/// submitted, not of thread interleaving, provided dispatch composition
/// is deterministic (e.g. submissions land within the batching window) —
/// which is what the 1-vs-N-thread parity test pins down.
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t batches = 0;
  std::uint64_t partial_batches = 0;  ///< dispatched below max_lanes
  std::uint64_t lanes_solved = 0;
  std::uint64_t converged = 0;
  std::uint64_t deadline_misses = 0;
  /// Requests refused with Breakdown::kStaleSetup because the gauge field
  /// was mutated between submit() and dispatch.
  std::uint64_t stale_refusals = 0;
  SetupCacheStats cache;

  friend bool operator==(const ServiceStats& a,
                         const ServiceStats& b) noexcept {
    return a.submitted == b.submitted && a.completed == b.completed &&
           a.batches == b.batches && a.partial_batches == b.partial_batches &&
           a.lanes_solved == b.lanes_solved && a.converged == b.converged &&
           a.deadline_misses == b.deadline_misses &&
           a.stale_refusals == b.stale_refusals && a.cache == b.cache;
  }
};

class SolverService {
 public:
  explicit SolverService(SolverServiceConfig config);
  /// Drains every queued request, then joins the workers.
  ~SolverService();

  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  /// Enqueue one right-hand side. The gauge checksum+digest (= setup-cache
  /// key, stale-setup reference) is computed HERE, on the client's thread,
  /// keeping the content hashing off the dispatch path. The request's
  /// source is consumed. A submission that races or follows shutdown() is
  /// refused: the returned future carries an lqcd::Error instead of
  /// blocking forever on a promise no worker will ever fulfill.
  std::future<SolveResult> submit(SolveRequest request);

  /// Dispatch queued requests inline on the calling thread until the
  /// queue is empty. The synchronous pump for worker_threads = 0 (legal
  /// but rarely useful alongside workers).
  void drain();

  /// Stop accepting blocking waits, drain the queue, join the workers.
  /// Idempotent; the destructor calls it.
  void shutdown();

  ServiceStats stats() const;
  const SolverServiceConfig& config() const noexcept { return config_; }

 private:
  void worker_loop();
  /// Run one batch end-to-end and fulfill its promises.
  void dispatch(std::vector<PendingRequest> batch);
  /// Fulfill every promise of a batch whose gauge field was mutated
  /// between submit() and dispatch with Breakdown::kStaleSetup.
  void refuse_stale(std::vector<PendingRequest> batch);

  SolverServiceConfig config_;
  BatchScheduler scheduler_;
  SetupCache cache_;
  std::atomic<std::uint64_t> next_id_{0};
  std::atomic<std::uint64_t> completion_counter_{0};
  mutable std::mutex stats_mu_;
  ServiceStats stats_;  ///< cache field filled from cache_ on read
  std::vector<std::thread> workers_;
  std::atomic<bool> shut_down_{false};
};

}  // namespace lqcd
