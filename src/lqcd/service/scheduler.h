// Lane-packing batch scheduler for the SolverService.
//
// Requests queue FIFO. A dispatch takes the queue head, then packs every
// queued request with the SAME SetupKey (same packed matrices, same
// operator — the only requests DDSolver::solve_batch() can run in
// lockstep) into one batch, up to max_lanes. If the batch is not full the
// scheduler holds the head for at most window_seconds from its submission
// before flushing a partial batch: bounded batching delay, never
// unbounded waiting for lane-mates that may not come.
//
// Fairness: the queue head is in EVERY dispatched batch, so a request
// waits at most window_seconds plus the solves ahead of it — a stream of
// hot-configuration requests cannot starve a cold-configuration one.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <future>
#include <mutex>
#include <utility>
#include <vector>

#include "lqcd/base/timer.h"
#include "lqcd/schwarz/storage.h"
#include "lqcd/service/request.h"
#include "lqcd/service/setup_cache.h"

namespace lqcd {

struct BatchPolicy {
  /// Lane cap per dispatch. Multiples of kRhsSimdWidth waste no padding
  /// lanes in the batched Schwarz sweep; the default (2 SIMD groups)
  /// balances streaming amortization against batching delay.
  int max_lanes = 2 * kRhsSimdWidth;
  /// Maximum time a queue head may wait for lane-mates before a partial
  /// batch is flushed.
  double window_seconds = 0.05;
};

/// A submitted request waiting for dispatch.
struct PendingRequest {
  std::uint64_t id = 0;
  SolveRequest request;
  SetupKey key;
  std::promise<SolveResult> promise;
  Timer queued;  ///< started at submission; read at dispatch & completion
};

class BatchScheduler {
 public:
  explicit BatchScheduler(BatchPolicy policy) : policy_(policy) {
    LQCD_CHECK(policy_.max_lanes >= 1);
  }

  /// Enqueue a request. Fails (leaving `p` untouched) once close() has
  /// run: a request accepted here is GUARANTEED to be dispatched — either
  /// by a worker or by the post-join drain in shutdown() — so a push that
  /// raced shutdown must be refused rather than stranded in the queue
  /// with its promise never fulfilled.
  bool push(PendingRequest&& p) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return false;
      queue_.push_back(std::move(p));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocking dispatch for worker threads: waits for a head request, then
  /// for the batch to fill or the head's batching window to expire.
  /// Returns an empty vector only after close().
  std::vector<PendingRequest> next_batch() {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      cv_.wait(lock, [this] { return closed_ || !queue_.empty(); });
      if (queue_.empty()) return {};  // closed and drained
      // Hold the head while lane-mates may still arrive.
      while (!closed_) {
        if (count_head_key_locked() >= policy_.max_lanes) break;
        const double remain =
            policy_.window_seconds - queue_.front().queued.seconds();
        if (remain <= 0.0) break;
        cv_.wait_for(lock, std::chrono::duration<double>(remain));
        if (queue_.empty()) break;  // another worker took the head
      }
      if (!queue_.empty()) return gather_locked();
    }
  }

  /// Non-blocking dispatch for synchronous drain() mode: the window is
  /// treated as already expired — whatever matches the head goes now.
  std::vector<PendingRequest> try_next_batch() {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return {};
    return gather_locked();
  }

  /// Wake every waiter; subsequent next_batch() calls still drain queued
  /// requests, then return empty.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  std::size_t depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }

 private:
  int count_head_key_locked() const {
    const SetupKey& key = queue_.front().key;
    int n = 0;
    for (const auto& p : queue_)
      if (p.key == key) ++n;
    return n;
  }

  /// Extract the head and every queued request sharing its key, FIFO
  /// order, up to max_lanes. Requires the lock held and a non-empty queue.
  std::vector<PendingRequest> gather_locked() {
    std::vector<PendingRequest> batch;
    const SetupKey key = queue_.front().key;
    std::vector<PendingRequest> keep;
    keep.reserve(queue_.size());
    for (auto& p : queue_) {
      if (p.key == key && static_cast<int>(batch.size()) < policy_.max_lanes)
        batch.push_back(std::move(p));
      else
        keep.push_back(std::move(p));
    }
    queue_ = std::move(keep);
    return batch;
  }

  BatchPolicy policy_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<PendingRequest> queue_;  ///< FIFO: front = oldest
  bool closed_ = false;
};

}  // namespace lqcd
