// SolverService request/result types.
//
// A SolveRequest is one right-hand side against one gauge configuration.
// Clients own the gauge field only for the REQUEST's lifetime: it must
// stay alive and unmutated until the request completes (mutation in
// flight is detected via the checksum+digest key and refused with
// Breakdown::kStaleSetup). The cached per-configuration setup deep-copies
// the field, so cache entries never reference client storage — the field
// may be destroyed as soon as its requests complete, no matter how long
// the cache keeps serving that configuration. The source spinor field is
// moved into the request and the solution is moved out through the
// result.
#pragma once

#include <cstdint>

#include "lqcd/core/dd_solver.h"

namespace lqcd {

/// One propagator right-hand side submitted to the SolverService.
struct SolveRequest {
  /// Geometry and gauge configuration to solve on. Both must outlive the
  /// request's completion. The gauge field should already carry its
  /// boundary phases (make_time_antiperiodic()).
  const Geometry* geom = nullptr;
  const GaugeField<double>* gauge = nullptr;
  FermionField<double> source;  ///< right-hand side b (moved in)
  double mass = 0.0;
  double csw = 0.0;
  /// Per-request relative residual target. Requests with different
  /// tolerances still batch together: each lane converges at its own
  /// target (DDSolver per-lane tolerances).
  double tolerance = 1e-10;
  /// Soft latency budget in seconds from submission, 0 = none. A request
  /// is never dropped: an overrun is flagged in SolveResult so the
  /// client decides what a late propagator is worth.
  double deadline_seconds = 0.0;
};

/// Completed solve, delivered through the std::future returned by
/// SolverService::submit().
struct SolveResult {
  std::uint64_t id = 0;            ///< submission ticket (FIFO order)
  std::uint64_t completion_index = 0;  ///< global completion order
  FermionField<double> solution;   ///< x with A x = b to `tolerance`
  SolverStats stats;               ///< per-lane outer-solver stats
  double queue_seconds = 0.0;      ///< submit -> dispatch
  double solve_seconds = 0.0;      ///< dispatch -> done (whole batch)
  double total_seconds = 0.0;      ///< submit -> done
  int batch_lanes = 0;             ///< lanes in the dispatched batch
  bool setup_cache_hit = false;    ///< configuration setup was reused
  bool deadline_missed = false;    ///< total_seconds > deadline_seconds
};

}  // namespace lqcd
