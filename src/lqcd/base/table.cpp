#include "lqcd/base/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "lqcd/base/error.h"

namespace lqcd {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  LQCD_CHECK(!header_.empty());
}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(const std::string& value) {
  LQCD_CHECK_MSG(!rows_.empty(), "call row() before cell()");
  LQCD_CHECK_MSG(rows_.back().size() < header_.size(),
                 "row has more cells than header columns");
  rows_.back().push_back(value);
  return *this;
}

Table& Table::cell(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return cell(os.str());
}

Table& Table::cell(long long value) { return cell(std::to_string(value)); }

std::string Table::str(int indent) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  auto emit = [&](const std::vector<std::string>& cells) {
    os << pad;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::setw(static_cast<int>(width[c])) << cells[c];
      if (c + 1 < cells.size()) os << "  ";
    }
    os << '\n';
  };
  emit(header_);
  os << pad;
  std::size_t total = 0;
  for (std::size_t c = 0; c < header_.size(); ++c)
    total += width[c] + (c + 1 < header_.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace lqcd
