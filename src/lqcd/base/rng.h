// Deterministic, seedable random number generation.
//
// Reproducibility across runs and thread counts matters for tests and for
// regenerating the paper's experiments, so we use a small counter-friendly
// generator (splitmix64-seeded xoshiro256**) instead of std::mt19937, whose
// distributions are not guaranteed to be bit-identical across standard
// library implementations.
#pragma once

#include <cmath>
#include <cstdint>

namespace lqcd {

/// splitmix64: used to expand a single 64-bit seed into generator state.
inline std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna: fast, high-quality, tiny state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& s : s_) s = splitmix64(sm);
  }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n).
  std::uint64_t uniform_u64(std::uint64_t n) noexcept {
    // Lemire's nearly-divisionless bounded sampling would be overkill here;
    // plain multiply-shift bias is < 2^-53 for the n we use.
    return static_cast<std::uint64_t>(uniform() * static_cast<double>(n));
  }

  /// Standard normal via Box–Muller (deterministic, no cached spare so the
  /// stream position is a pure function of call count).
  double gaussian() noexcept {
    double u1 = 0.0;
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    constexpr double kTwoPi = 6.283185307179586476925286766559;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
  }

  /// Derive an independent stream (e.g. one per site or per thread).
  Rng fork(std::uint64_t stream_id) noexcept {
    std::uint64_t sm = next_u64() ^ (0x9e3779b97f4a7c15ULL * (stream_id + 1));
    Rng r(0);
    for (auto& s : r.s_) s = splitmix64(sm);
    return r;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace lqcd
