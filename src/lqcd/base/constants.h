// Global problem constants shared across layers.
#pragma once

namespace lqcd {

/// Number of space-time dimensions (x, y, z, t).
inline constexpr int kNumDims = 4;

}  // namespace lqcd
