// Plain-text table formatting for benchmark reports.
//
// The benchmark binaries print the same rows the paper's tables/figures
// report; this helper keeps the column alignment readable without pulling
// in a formatting dependency.
#pragma once

#include <string>
#include <vector>

namespace lqcd {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Start a new row. Subsequent cell() calls fill it left to right.
  Table& row();
  Table& cell(const std::string& value);
  Table& cell(double value, int precision = 2);
  Table& cell(long long value);
  Table& cell(long value) { return cell(static_cast<long long>(value)); }
  Table& cell(int value) { return cell(static_cast<long long>(value)); }
  Table& cell(std::size_t value) {
    return cell(static_cast<long long>(value));
  }

  /// Render with aligned columns; `indent` spaces prefix every line.
  std::string str(int indent = 2) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lqcd
