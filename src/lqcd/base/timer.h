// Wall-clock timing helpers for benchmarks and instrumentation.
#pragma once

#include <chrono>

namespace lqcd {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() noexcept { reset(); }

  void reset() noexcept { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace lqcd
