// Cache-line / SIMD aligned storage for field data.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <limits>
#include <new>
#include <vector>

namespace lqcd {

/// Alignment used for all field allocations. 64 bytes matches both the
/// KNC cache line / vector register width the paper targets and AVX-512
/// hosts; it is harmless (and still cache-line aligned) elsewhere.
inline constexpr std::size_t kFieldAlignment = 64;

/// Minimal C++17 aligned allocator so std::vector storage can be handed
/// directly to SIMD kernels without peeling loops.
template <class T, std::size_t Align = kFieldAlignment>
struct AlignedAllocator {
  using value_type = T;

  // The non-type Align parameter defeats allocator_traits' automatic
  // rebind deduction, so spell it out.
  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  AlignedAllocator() noexcept = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T))
      throw std::bad_alloc();
    void* p = std::aligned_alloc(Align, round_up(n * sizeof(T)));
    if (p == nullptr) throw std::bad_alloc();
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  template <class U>
  bool operator==(const AlignedAllocator<U, Align>&) const noexcept {
    return true;
  }
  template <class U>
  bool operator!=(const AlignedAllocator<U, Align>&) const noexcept {
    return false;
  }

 private:
  // std::aligned_alloc requires size to be a multiple of the alignment.
  static std::size_t round_up(std::size_t bytes) noexcept {
    return (bytes + Align - 1) / Align * Align;
  }
};

template <class T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace lqcd

/// Portable "vectorize this loop" hint for the unit-stride lane kernels.
/// Expands to `#pragma omp simd` when OpenMP is enabled; otherwise to
/// nothing (plain `#pragma omp` would trip -Wunknown-pragmas under
/// -Werror on non-OpenMP builds).
#if defined(LQCD_HAVE_OPENMP)
#define LQCD_PRAGMA_SIMD _Pragma("omp simd")
#else
#define LQCD_PRAGMA_SIMD
#endif
