// Fletcher-32 checksums for ABFT-style integrity checks.
//
// Used by the fault-tolerant collectives (per-hop payload verification:
// a bit-flipped message is detected by the receiver and retransmitted)
// and by the Schwarz preconditioner's packed-matrix checksums (a
// persistent corruption of the half-precision gauge/clover blocks is
// caught by re-verifying the pack-time checksum instead of silently
// degrading convergence).
//
// Fletcher-32 over 16-bit little-endian words with both running sums
// reduced mod 65535; an odd trailing byte is zero-padded. Position
// sensitivity (the second sum) catches transpositions as well as
// single-bit flips, at a cost of two adds per word — cheap enough to run
// at pack/message granularity.
#pragma once

#include <cstddef>
#include <cstdint>

namespace lqcd {

/// Incremental Fletcher-32 accumulator: feed byte ranges with update(),
/// read the checksum with value(). Byte-stream semantics are independent
/// of how the stream is split across update() calls.
class Fletcher32 {
 public:
  void update(const void* data, std::size_t bytes) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    std::size_t i = 0;
    if (have_pending_ && bytes > 0) {
      accumulate(static_cast<std::uint16_t>(
          pending_ | (static_cast<std::uint16_t>(p[0]) << 8)));
      have_pending_ = false;
      i = 1;
    }
    for (; i + 1 < bytes; i += 2)
      accumulate(static_cast<std::uint16_t>(
          p[i] | (static_cast<std::uint16_t>(p[i + 1]) << 8)));
    if (i < bytes) {
      pending_ = p[i];
      have_pending_ = true;
    }
  }

  std::uint32_t value() const noexcept {
    std::uint32_t a = sum1_;
    std::uint32_t b = sum2_;
    if (have_pending_) {
      a = (a + pending_) % 65535u;
      b = (b + a) % 65535u;
    }
    return (b << 16) | a;
  }

  void reset() noexcept { *this = Fletcher32{}; }

 private:
  void accumulate(std::uint16_t w) noexcept {
    sum1_ = (sum1_ + w) % 65535u;
    sum2_ = (sum2_ + sum1_) % 65535u;
  }

  std::uint32_t sum1_ = 0;
  std::uint32_t sum2_ = 0;
  std::uint16_t pending_ = 0;
  bool have_pending_ = false;
};

/// One-shot convenience over a single byte range.
inline std::uint32_t fletcher32_bytes(const void* data,
                                      std::size_t bytes) noexcept {
  Fletcher32 f;
  f.update(data, bytes);
  return f.value();
}

/// Typed convenience: checksum `count` elements of trivially-copyable T.
template <class T>
inline std::uint32_t fletcher32_range(const T* data,
                                      std::size_t count) noexcept {
  return fletcher32_bytes(data, count * sizeof(T));
}

}  // namespace lqcd
