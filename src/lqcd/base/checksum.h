// Fletcher-32 checksums for ABFT-style integrity checks.
//
// Used by the fault-tolerant collectives (per-hop payload verification:
// a bit-flipped message is detected by the receiver and retransmitted)
// and by the Schwarz preconditioner's packed-matrix checksums (a
// persistent corruption of the half-precision gauge/clover blocks is
// caught by re-verifying the pack-time checksum instead of silently
// degrading convergence).
//
// Fletcher-32 over 16-bit little-endian words with both running sums
// reduced mod 65535; an odd trailing byte is zero-padded. Position
// sensitivity (the second sum) catches transpositions as well as
// single-bit flips, at a cost of two adds per word — cheap enough to run
// at pack/message granularity.
#pragma once

#include <cstddef>
#include <cstdint>

namespace lqcd {

/// Incremental Fletcher-32 accumulator: feed byte ranges with update(),
/// read the checksum with value(). Byte-stream semantics are independent
/// of how the stream is split across update() calls.
class Fletcher32 {
 public:
  void update(const void* data, std::size_t bytes) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    std::size_t i = 0;
    if (have_pending_ && bytes > 0) {
      accumulate(static_cast<std::uint16_t>(
          pending_ | (static_cast<std::uint16_t>(p[0]) << 8)));
      have_pending_ = false;
      i = 1;
    }
    for (; i + 1 < bytes; i += 2)
      accumulate(static_cast<std::uint16_t>(
          p[i] | (static_cast<std::uint16_t>(p[i + 1]) << 8)));
    if (i < bytes) {
      pending_ = p[i];
      have_pending_ = true;
    }
  }

  std::uint32_t value() const noexcept {
    std::uint32_t a = sum1_;
    std::uint32_t b = sum2_;
    if (have_pending_) {
      a = (a + pending_) % 65535u;
      b = (b + a) % 65535u;
    }
    return (b << 16) | a;
  }

  void reset() noexcept { *this = Fletcher32{}; }

 private:
  void accumulate(std::uint16_t w) noexcept {
    sum1_ = (sum1_ + w) % 65535u;
    sum2_ = (sum2_ + sum1_) % 65535u;
  }

  std::uint32_t sum1_ = 0;
  std::uint32_t sum2_ = 0;
  std::uint16_t pending_ = 0;
  bool have_pending_ = false;
};

/// One-shot convenience over a single byte range.
inline std::uint32_t fletcher32_bytes(const void* data,
                                      std::size_t bytes) noexcept {
  Fletcher32 f;
  f.update(data, bytes);
  return f.value();
}

/// Typed convenience: checksum `count` elements of trivially-copyable T.
template <class T>
inline std::uint32_t fletcher32_range(const T* data,
                                      std::size_t count) noexcept {
  return fletcher32_bytes(data, count * sizeof(T));
}

/// 64-bit FNV-1a-style hash over a byte range: the wide, structurally
/// independent companion to Fletcher-32. Where one 32-bit sum keys
/// long-lived state (the service's setup cache), a collision between two
/// distinct gauge configurations would silently reuse the wrong packed
/// matrices; pairing the Fletcher sum with this digest makes aliasing
/// require a simultaneous collision in two unrelated hash families.
/// Processes little-endian 64-bit words per multiply (not the canonical
/// per-byte FNV-1a): submit() digests multi-MB fields on the client
/// thread, so the digest must stay far cheaper than a batching window.
inline std::uint64_t fnv1a64_bytes(const void* data,
                                   std::size_t bytes) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  std::size_t i = 0;
  for (; i + 8 <= bytes; i += 8) {
    std::uint64_t w = 0;
    for (int b = 0; b < 8; ++b)
      w |= static_cast<std::uint64_t>(p[i + static_cast<std::size_t>(b)])
           << (8 * b);
    h = (h ^ w) * kPrime;
  }
  if (i < bytes) {
    std::uint64_t tail = 0;
    for (int b = 0; i < bytes; ++i, ++b)
      tail |= static_cast<std::uint64_t>(p[i]) << (8 * b);
    // Tag the tail with the byte count so "short word" and "zero-padded
    // word" inputs cannot collide trivially.
    h = (h ^ tail ^ (static_cast<std::uint64_t>(bytes) << 56)) * kPrime;
  }
  return h;
}

/// Typed convenience: digest `count` elements of trivially-copyable T.
template <class T>
inline std::uint64_t fnv1a64_range(const T* data, std::size_t count) noexcept {
  return fnv1a64_bytes(data, count * sizeof(T));
}

}  // namespace lqcd
