// Error handling: checked invariants that throw lqcd::Error with context.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace lqcd {

/// Exception type thrown by all LQCD_CHECK/LQCD_REQUIRE failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_error(const char* cond, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace lqcd

/// Precondition / invariant check, active in all build types. Use for
/// user-facing API contract violations (bad lattice sizes, mismatched
/// geometries), not for per-site hot-loop asserts.
#define LQCD_CHECK(cond)                                                \
  do {                                                                  \
    if (!(cond))                                                        \
      ::lqcd::detail::throw_error(#cond, __FILE__, __LINE__, "");       \
  } while (0)

#define LQCD_CHECK_MSG(cond, msg)                                       \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::ostringstream lqcd_os_;                                      \
      lqcd_os_ << msg;                                                  \
      ::lqcd::detail::throw_error(#cond, __FILE__, __LINE__,            \
                                  lqcd_os_.str());                      \
    }                                                                   \
  } while (0)
