// IEEE 754 binary16 ("half precision") storage conversion.
//
// The KNC has no fp16 arithmetic but supports up-/down-conversion on
// load/store; the paper (Sec. III-B) exploits that to store gauge links and
// clover matrices of the preconditioner in half precision, halving their
// footprint from 144 kB to 72 kB per domain. We reproduce the same
// behaviour in software: values are *stored* as binary16 and *computed on*
// in float after up-conversion. Rounding is round-to-nearest-even, the
// hardware mode.
#pragma once

#include <cstdint>

namespace lqcd {

using Half = std::uint16_t;

/// float -> binary16 with round-to-nearest-even; overflow saturates to
/// +-inf (matching hardware down-conversion).
Half float_to_half(float f) noexcept;

/// binary16 -> float (exact).
float half_to_float(Half h) noexcept;

/// Round-trip through binary16 — the effective storage operator.
inline float half_round_trip(float f) noexcept {
  return half_to_float(float_to_half(f));
}

// Array forms are runtime-dispatched (simd/dispatch.h): F16C on capable
// hosts, bit-identical software conversion otherwise. Not noexcept — the
// first dispatched call validates LQCD_SIMD_BACKEND and may throw.
void float_to_half(const float* src, Half* dst, std::int64_t n);
void half_to_float(const Half* src, float* dst, std::int64_t n);

/// Overflow-detection hook: true iff storing `f` as binary16 loses the
/// value to saturation — i.e. f is finite but |f| rounds to +-inf. NaN and
/// float infinities are NOT overflow (they were already non-finite).
bool half_overflows(float f) noexcept;

/// Count of values in [src, src+n) that would saturate to +-inf when
/// stored as binary16. The resilience layer uses this to attribute a
/// non-finite preconditioner output to fp16 range exhaustion.
std::int64_t count_half_overflows(const float* src, std::int64_t n) noexcept;

}  // namespace lqcd
