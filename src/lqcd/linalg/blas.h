// BLAS-level-1 operations on fermion fields.
//
// These are the "BLAS-type linear algebra" lines of the paper's algorithm
// listing (Table I): axpy-like updates in the MR block solve and
// dot-products / Gram–Schmidt in the outer solver. Reductions accumulate
// in double regardless of the field precision — the outer solver relies
// on accurate residual norms.
#pragma once

#include <cmath>
#include <complex>

#include "lqcd/linalg/fermion_field.h"

#if defined(LQCD_HAVE_OPENMP)
#include <omp.h>
#endif

namespace lqcd {

template <class T>
void copy(const FermionField<T>& x, FermionField<T>& y) {
  LQCD_CHECK(x.size() == y.size());
  const std::int64_t n = x.size();
#pragma omp parallel for schedule(static) default(none) shared(n, x, y)
  for (std::int64_t i = 0; i < n; ++i) y[i] = x[i];
}

/// Precision-converting copy (e.g. double outer vector -> float
/// preconditioner input).
template <class TSrc, class TDst>
void convert(const FermionField<TSrc>& x, FermionField<TDst>& y) {
  LQCD_CHECK(x.size() == y.size());
  const std::int64_t n = x.size();
#pragma omp parallel for schedule(static) default(none) shared(n, x, y)
  for (std::int64_t i = 0; i < n; ++i)
    for (int sp = 0; sp < kNumSpins; ++sp)
      for (int c = 0; c < kNumColors; ++c)
        y[i].s[sp].c[c] =
            Complex<TDst>(static_cast<TDst>(x[i].s[sp].c[c].real()),
                          static_cast<TDst>(x[i].s[sp].c[c].imag()));
}

/// y += a x.
template <class T>
void axpy(const Complex<T>& a, const FermionField<T>& x, FermionField<T>& y) {
  LQCD_CHECK(x.size() == y.size());
  const std::int64_t n = x.size();
#pragma omp parallel for schedule(static) default(none) shared(n, a, x, y)
  for (std::int64_t i = 0; i < n; ++i)
    for (int sp = 0; sp < kNumSpins; ++sp)
      for (int c = 0; c < kNumColors; ++c)
        y[i].s[sp].c[c] += a * x[i].s[sp].c[c];
}

template <class T>
void axpy(T a, const FermionField<T>& x, FermionField<T>& y) {
  axpy(Complex<T>(a, 0), x, y);
}

/// y = a x + y ... with separate output: z = a x + y.
template <class T>
void axpyz(const Complex<T>& a, const FermionField<T>& x,
           const FermionField<T>& y, FermionField<T>& z) {
  LQCD_CHECK(x.size() == y.size() && y.size() == z.size());
  const std::int64_t n = x.size();
#pragma omp parallel for schedule(static) default(none) \
    shared(n, a, x, y, z)
  for (std::int64_t i = 0; i < n; ++i)
    for (int sp = 0; sp < kNumSpins; ++sp)
      for (int c = 0; c < kNumColors; ++c)
        z[i].s[sp].c[c] = a * x[i].s[sp].c[c] + y[i].s[sp].c[c];
}

/// x *= a.
template <class T>
void scal(const Complex<T>& a, FermionField<T>& x) {
  const std::int64_t n = x.size();
#pragma omp parallel for schedule(static) default(none) shared(n, a, x)
  for (std::int64_t i = 0; i < n; ++i)
    for (int sp = 0; sp < kNumSpins; ++sp)
      for (int c = 0; c < kNumColors; ++c) x[i].s[sp].c[c] *= a;
}

template <class T>
void scal(T a, FermionField<T>& x) {
  scal(Complex<T>(a, 0), x);
}

/// <x|y> = sum_i conj(x_i) y_i, accumulated in double.
template <class T>
std::complex<double> dot(const FermionField<T>& x, const FermionField<T>& y) {
  LQCD_CHECK(x.size() == y.size());
  const std::int64_t n = x.size();
  double re = 0, im = 0;
#pragma omp parallel for schedule(static) default(none) shared(n, x, y) \
    reduction(+ : re, im)
  for (std::int64_t i = 0; i < n; ++i) {
    for (int sp = 0; sp < kNumSpins; ++sp)
      for (int c = 0; c < kNumColors; ++c) {
        const auto& a = x[i].s[sp].c[c];
        const auto& b = y[i].s[sp].c[c];
        re += static_cast<double>(a.real()) * b.real() +
              static_cast<double>(a.imag()) * b.imag();
        im += static_cast<double>(a.real()) * b.imag() -
              static_cast<double>(a.imag()) * b.real();
      }
  }
  return {re, im};
}

/// ||x||^2, accumulated in double.
template <class T>
double norm2(const FermionField<T>& x) {
  const std::int64_t n = x.size();
  double acc = 0;
#pragma omp parallel for schedule(static) default(none) shared(n, x) \
    reduction(+ : acc)
  for (std::int64_t i = 0; i < n; ++i) acc += norm2(x[i]);
  return acc;
}

template <class T>
double norm(const FermionField<T>& x) {
  return std::sqrt(norm2(x));
}

/// True iff every component of x is finite (no NaN/Inf). The guard the
/// resilience layer runs on preconditioner outputs and residuals; one
/// streaming pass, cheap next to any operator application.
template <class T>
bool all_finite(const FermionField<T>& x) {
  const std::int64_t n = x.size();
  int bad = 0;
#pragma omp parallel for schedule(static) default(none) shared(n, x) \
    reduction(+ : bad)
  for (std::int64_t i = 0; i < n; ++i)
    for (int sp = 0; sp < kNumSpins; ++sp)
      for (int c = 0; c < kNumColors; ++c) {
        if (!std::isfinite(x[i].s[sp].c[c].real()) ||
            !std::isfinite(x[i].s[sp].c[c].imag()))
          ++bad;
      }
  return bad == 0;
}

/// z = x - y.
template <class T>
void sub(const FermionField<T>& x, const FermionField<T>& y,
         FermionField<T>& z) {
  LQCD_CHECK(x.size() == y.size() && y.size() == z.size());
  const std::int64_t n = x.size();
#pragma omp parallel for schedule(static) default(none) \
    shared(n, x, y, z)
  for (std::int64_t i = 0; i < n; ++i) z[i] = x[i] - y[i];
}

/// Fill with site-independent Gaussian noise (unit variance per real
/// component), deterministic in `seed`.
template <class T>
void gaussian(FermionField<T>& x, std::uint64_t seed) {
  Rng rng(seed);
  const std::int64_t n = x.size();
  for (std::int64_t i = 0; i < n; ++i)
    for (int sp = 0; sp < kNumSpins; ++sp)
      for (int c = 0; c < kNumColors; ++c)
        x[i].s[sp].c[c] = Complex<T>(static_cast<T>(rng.gaussian()),
                                     static_cast<T>(rng.gaussian()));
}

}  // namespace lqcd
