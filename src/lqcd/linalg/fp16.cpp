#include "lqcd/linalg/fp16.h"

#include <bit>
#include <cstring>

#include "lqcd/simd/dispatch.h"

namespace lqcd {

namespace {
inline std::uint32_t bits_of(float f) noexcept {
  return std::bit_cast<std::uint32_t>(f);
}
inline float float_of(std::uint32_t b) noexcept {
  return std::bit_cast<float>(b);
}
}  // namespace

Half float_to_half(float f) noexcept {
  const std::uint32_t x = bits_of(f);
  const std::uint32_t sign = (x >> 16) & 0x8000u;
  const std::uint32_t abs = x & 0x7fffffffu;

  if (abs >= 0x7f800000u) {
    // Inf / NaN. Preserve NaN-ness (quiet bit set), map inf to inf.
    const std::uint32_t mantissa = abs & 0x007fffffu;
    return static_cast<Half>(sign | 0x7c00u |
                             (mantissa != 0 ? 0x0200u | (mantissa >> 13) : 0));
  }
  if (abs >= 0x477ff000u) {
    // Rounds to a value >= 2^16: overflow -> signed infinity (hardware
    // saturating down-convert behaviour for IEEE mode).
    return static_cast<Half>(sign | 0x7c00u);
  }
  if (abs < 0x33000001u) {
    // Rounds to zero (below half of the smallest subnormal).
    return static_cast<Half>(sign);
  }
  if (abs < 0x38800000u) {
    // Subnormal half: the result in units of the half subnormal ulp
    // (2^-24) is mant * 2^(e+1) with e = exp-127, i.e. a right shift by
    // 126 - exp_field, which is in [14, 24] for this branch.
    const int shift = 126 - static_cast<int>(abs >> 23);
    std::uint32_t mant = (abs & 0x007fffffu) | 0x00800000u;
    const std::uint32_t half_ulp = 1u << (shift - 1);
    const std::uint32_t rest = mant & ((1u << shift) - 1);
    mant >>= shift;
    if (rest > half_ulp || (rest == half_ulp && (mant & 1u))) ++mant;
    return static_cast<Half>(sign | mant);
  }
  // Normal half.
  std::uint32_t exp = (abs >> 23) - 127 + 15;
  std::uint32_t mant = abs & 0x007fffffu;
  const std::uint32_t rest = mant & 0x1fffu;
  mant >>= 13;
  std::uint32_t h = static_cast<std::uint32_t>((exp << 10) | mant);
  if (rest > 0x1000u || (rest == 0x1000u && (h & 1u))) ++h;  // may carry
  return static_cast<Half>(sign | h);
}

float half_to_float(Half h) noexcept {
  const std::uint32_t sign = (static_cast<std::uint32_t>(h) & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1fu;
  const std::uint32_t mant = h & 0x3ffu;

  if (exp == 0x1fu) {
    // Inf / NaN. NaNs are quieted (the hardware up-conversion, VCVTPH2PS,
    // sets the quiet bit; matching it keeps the dispatched F16C path
    // bit-identical to this software reference).
    return float_of(sign | 0x7f800000u |
                    (mant != 0 ? 0x00400000u | (mant << 13) : 0u));
  }
  if (exp == 0) {
    if (mant == 0) return float_of(sign);  // +-0
    // Subnormal: normalize.
    int e = -1;
    std::uint32_t m = mant;
    do {
      ++e;
      m <<= 1;
    } while ((m & 0x400u) == 0);
    return float_of(sign | (static_cast<std::uint32_t>(127 - 15 - e) << 23) |
                    ((m & 0x3ffu) << 13));
  }
  return float_of(sign | ((exp + 127 - 15) << 23) | (mant << 13));
}

bool half_overflows(float f) noexcept {
  const std::uint32_t abs = bits_of(f) & 0x7fffffffu;
  // Finite float (below the float inf/NaN band) whose magnitude rounds to
  // >= 2^16 — the same threshold float_to_half saturates at.
  return abs < 0x7f800000u && abs >= 0x477ff000u;
}

std::int64_t count_half_overflows(const float* src, std::int64_t n) noexcept {
  std::int64_t count = 0;
  for (std::int64_t i = 0; i < n; ++i)
    if (half_overflows(src[i])) ++count;
  return count;
}

void float_to_half(const float* src, Half* dst, std::int64_t n) {
  simd::kernels().float_to_half_n(src, dst, n);
}

void half_to_float(const Half* src, float* dst, std::int64_t n) {
  simd::kernels().half_to_float_n(src, dst, n);
}

}  // namespace lqcd
