// Fermion (spinor) fields: contiguous aligned arrays of site spinors.
//
// A field is just "n sites × 24 reals"; it is not tied to a Geometry so
// the same container serves full-lattice vectors, single-parity (even/odd)
// vectors, and per-domain vectors.
#pragma once

#include <cstdint>

#include "lqcd/base/aligned.h"
#include "lqcd/base/error.h"
#include "lqcd/su3/spinor.h"

namespace lqcd {

template <class T>
class FermionField {
 public:
  FermionField() = default;
  explicit FermionField(std::int64_t num_sites)
      : data_(static_cast<std::size_t>(num_sites)) {
    LQCD_CHECK(num_sites >= 0);
    zero();
  }

  std::int64_t size() const noexcept {
    return static_cast<std::int64_t>(data_.size());
  }

  Spinor<T>& operator[](std::int64_t i) noexcept {
    return data_[static_cast<std::size_t>(i)];
  }
  const Spinor<T>& operator[](std::int64_t i) const noexcept {
    return data_[static_cast<std::size_t>(i)];
  }

  Spinor<T>* data() noexcept { return data_.data(); }
  const Spinor<T>* data() const noexcept { return data_.data(); }

  void zero() noexcept {
    for (auto& s : data_) s.zero();
  }

  /// Bytes of payload (24 reals per site).
  std::int64_t bytes() const noexcept {
    return size() * static_cast<std::int64_t>(sizeof(Spinor<T>));
  }

 private:
  AlignedVector<Spinor<T>> data_;
};

}  // namespace lqcd
