// Virtual multi-node grid: a functional, in-process stand-in for the MPI
// rank grid (DESIGN.md Sec. 2 — the Stampede cluster substitution).
//
// The global lattice is split uniformly over ranks; fields are stored
// per-rank; the distributed operator exchanges *exactly* the messages the
// paper's multi-node implementation sends (projected half-spinors, with
// the link applied by whichever side owns it, Sec. III-A/III-E), so the
// byte counts feeding the network model are validated functionally, and
// distributed results are bit-comparable to single-"node" results.
#pragma once

#include <cstdint>
#include <vector>

#include "lqcd/lattice/geometry.h"

namespace lqcd {

/// Host-proxy reduction tree over the virtual ranks (paper Sec. V): the
/// per-chip communicating core forwards partial sums up a k-ary heap tree
/// rooted at rank 0 (the host proxy), then the result is broadcast back
/// down. parent(r) = (r-1)/fanout — a complete tree, so depth is
/// ceil(log_fanout) and every rank's position is implied by its index
/// (survivors can rewire around a dead rank without any coordination).
class ProxyTree {
 public:
  explicit ProxyTree(int num_ranks, int fanout = 2);

  int num_ranks() const noexcept { return num_ranks_; }
  int fanout() const noexcept { return fanout_; }
  /// Levels below the root of the deepest rank (0 for a 1-rank tree).
  int depth() const noexcept { return depth_; }

  /// Parent rank; -1 for the root (rank 0).
  int parent(int r) const noexcept {
    return parent_[static_cast<std::size_t>(r)];
  }
  const std::vector<int>& children(int r) const noexcept {
    return children_[static_cast<std::size_t>(r)];
  }
  int level(int r) const noexcept {
    return level_[static_cast<std::size_t>(r)];
  }
  /// Ranks in r's subtree, including r itself — the itemized-entry count
  /// of the upward message r sends.
  int subtree_size(int r) const noexcept {
    return subtree_[static_cast<std::size_t>(r)];
  }

  /// All non-root ranks ordered deepest level first (by rank within a
  /// level): the upward-pass send schedule. Processing senders in this
  /// order guarantees a rank has received all its children's payloads
  /// before it sends, and that every sender's parent is still pending.
  const std::vector<int>& bottom_up() const noexcept { return bottom_up_; }

 private:
  int num_ranks_ = 0;
  int fanout_ = 2;
  int depth_ = 0;
  std::vector<int> parent_, level_, subtree_;
  std::vector<std::vector<int>> children_;
  std::vector<int> bottom_up_;
};

class VirtualGrid {
 public:
  /// Each global dimension must be divisible by grid[mu]; the local
  /// extent must be >= 2 where the dimension is cut (a 1-site-deep local
  /// slab would make a site's forward and backward ghost the same
  /// message, which the real code never does either).
  VirtualGrid(const Geometry& global, const Coord& grid);

  const Geometry& global() const noexcept { return *global_; }
  const Coord& grid() const noexcept { return grid_; }
  const Coord& local_dims() const noexcept { return local_; }
  int num_ranks() const noexcept { return num_ranks_; }
  std::int64_t local_volume() const noexcept { return local_volume_; }

  bool is_cut(int mu) const noexcept {
    return grid_[static_cast<std::size_t>(mu)] > 1;
  }

  /// Rank owning a global site / its local index there.
  int rank_of_site(std::int32_t g) const noexcept {
    return site_rank_[static_cast<std::size_t>(g)];
  }
  std::int32_t local_of_site(std::int32_t g) const noexcept {
    return site_local_[static_cast<std::size_t>(g)];
  }
  std::int32_t global_site(int rank, std::int32_t local) const noexcept {
    return rank_sites_[static_cast<std::size_t>(rank) *
                           static_cast<std::size_t>(local_volume_) +
                       static_cast<std::size_t>(local)];
  }

  int neighbor_rank(int rank, int mu, Dir dir) const noexcept {
    const std::size_t base = static_cast<std::size_t>(rank) * 2 * kNumDims +
                             static_cast<std::size_t>(mu) * 2;
    return rank_nbr_[base + (dir == Dir::kForward ? 0 : 1)];
  }

  /// Local neighbor of local site l: >= 0 in-rank local index, or
  /// -(face_pos+1) when the hop leaves the rank, where face_pos indexes
  /// the (mu, dir) face list / message buffer. Shared by all ranks.
  std::int32_t local_neighbor(std::int32_t l, int mu, Dir dir) const noexcept {
    const std::size_t base = static_cast<std::size_t>(l) * 2 * kNumDims +
                             static_cast<std::size_t>(mu) * 2;
    return local_nbr_[base + (dir == Dir::kForward ? 0 : 1)];
  }

  /// Local indices of the sites on the (mu, dir) rank face, in message
  /// order. Sender face order and receiver face order are aligned: entry
  /// i of a rank's forward face is the global neighbor of entry i of the
  /// forward-neighbor rank's backward face.
  const std::vector<std::int32_t>& face(int mu, Dir dir) const noexcept {
    return faces_[static_cast<std::size_t>(mu) * 2 +
                  (dir == Dir::kForward ? 0 : 1)];
  }

  std::int64_t face_size(int mu) const noexcept {
    return is_cut(mu)
               ? static_cast<std::int64_t>(
                     faces_[static_cast<std::size_t>(mu) * 2].size())
               : 0;
  }

 private:
  const Geometry* global_;
  Coord grid_{};
  Coord local_{};
  int num_ranks_ = 0;
  std::int64_t local_volume_ = 0;

  std::vector<int> site_rank_;
  std::vector<std::int32_t> site_local_;
  std::vector<std::int32_t> rank_sites_;
  std::vector<int> rank_nbr_;
  std::vector<std::int32_t> local_nbr_;
  std::vector<std::vector<std::int32_t>> faces_;
};

}  // namespace lqcd
