// A complete Krylov solve across the virtual rank grid: distributed
// BiCGstab where every operator application performs the real halo
// exchange and every inner product performs a (counted) allreduce.
//
// This closes the functional multi-node loop: the distributed solve must
// produce the same iterates as the single-node solve, and its CommStats
// give the per-solve message/byte/reduction totals that Table III reports
// — measured, not modeled.
#pragma once

#include "lqcd/solver/bicgstab.h"
#include "lqcd/vnode/distributed.h"

namespace lqcd {

template <class T>
struct DistributedSolveResult {
  SolverStats stats;
  CommStats comm;  ///< halo traffic + allreduce count of the whole solve
};

/// BiCGstab on the distributed operator. Mirrors bicgstab_solve()
/// step for step; inner products go through the counted distributed dot,
/// and every global reduction — the dots, the norms, and the BiCGstab
/// `tt = |t|^2` sum — runs over the fault-tolerant proxy tree
/// (bit-identical to the trivial sums when no faults fire; a collective
/// that cannot complete throws a structured Error for the
/// checkpoint/rollback path). `iterate_injector` optionally corrupts the
/// recursive residual once per its schedule
/// (FaultSite::kDistributedSolver), modelling SDC inside the distributed
/// solve.
template <class T>
DistributedSolveResult<T> distributed_bicgstab(
    const VirtualGrid& grid, DistributedWilsonClover<T>& op,
    const DistributedField<T>& b, DistributedField<T>& x,
    const BiCGstabParams& params, const CollectiveConfig& collectives = {},
    FaultInjector* iterate_injector = nullptr) {
  DistributedSolveResult<T> res;
  SolverStats& stats = res.stats;
  CommStats& comm = res.comm;
  op.reset_comm();

  const int nr = grid.num_ranks();
  DistributedField<T> r(grid), r0(grid), p(grid), v(grid), s(grid),
      t(grid);

  auto dist_axpy = [&](const std::complex<double>& a,
                       const DistributedField<T>& xx,
                       DistributedField<T>& yy) {
    const Complex<T> ac(static_cast<T>(a.real()), static_cast<T>(a.imag()));
    for (int rr = 0; rr < nr; ++rr) axpy(ac, xx.rank(rr), yy.rank(rr));
  };
  auto dist_copy = [&](const DistributedField<T>& src,
                       DistributedField<T>& dst) {
    for (int rr = 0; rr < nr; ++rr) copy(src.rank(rr), dst.rank(rr));
  };
  auto dist_sum = [&](const std::vector<double>& parts) {
    const auto red = tree_allreduce(parts, comm, collectives);
    LQCD_CHECK_MSG(red.status == CollectiveStatus::kOk,
                   "distributed bicgstab: collective failed ("
                       << to_string(red.status)
                       << "); escalate to checkpoint/rollback");
    return red.value;
  };
  std::vector<double> parts(static_cast<std::size_t>(nr));
  auto dist_norm = [&](const DistributedField<T>& f) {
    for (int rr = 0; rr < nr; ++rr)
      parts[static_cast<std::size_t>(rr)] = norm2(f.rank(rr));
    return std::sqrt(dist_sum(parts));
  };

  op.apply(x, r);
  ++stats.matvecs;
  for (int rr = 0; rr < nr; ++rr) sub(b.rank(rr), r.rank(rr), r.rank(rr));
  dist_copy(r, r0);
  dist_copy(r, p);

  const double bnorm = dist_norm(b);
  if (bnorm == 0.0) {
    stats.converged = true;
    return res;
  }
  std::complex<double> rho = dot(grid, r0, r, comm, collectives);
  double rnorm = dist_norm(r);

  for (int it = 0; it < params.max_iterations; ++it) {
    stats.residual_history.push_back(rnorm / bnorm);
    if (rnorm / bnorm <= params.tolerance) {
      stats.converged = true;
      break;
    }
    if (iterate_injector != nullptr &&
        iterate_injector->maybe_corrupt(r.rank(it % nr),
                                        FaultSite::kDistributedSolver))
      rnorm = dist_norm(r);
    op.apply(p, v);
    ++stats.matvecs;
    const auto r0v = dot(grid, r0, v, comm, collectives);
    if (std::abs(r0v) == 0.0) break;
    const std::complex<double> alpha = rho / r0v;
    dist_copy(r, s);
    dist_axpy(-alpha, v, s);
    op.apply(s, t);
    ++stats.matvecs;
    const auto ts = dot(grid, t, s, comm, collectives);
    for (int rr = 0; rr < nr; ++rr)
      parts[static_cast<std::size_t>(rr)] = norm2(t.rank(rr));
    const double tt = dist_sum(parts);
    if (tt == 0.0) {
      dist_axpy(alpha, p, x);
      dist_copy(s, r);
      rnorm = dist_norm(r);
      ++stats.iterations;
      continue;
    }
    const std::complex<double> omega = ts / tt;
    dist_axpy(alpha, p, x);
    dist_axpy(omega, s, x);
    dist_copy(s, r);
    dist_axpy(-omega, t, r);
    const auto rho_new = dot(grid, r0, r, comm, collectives);
    rnorm = dist_norm(r);
    if (std::abs(rho_new) == 0.0 || std::abs(omega) == 0.0) break;
    const std::complex<double> beta = (rho_new / rho) * (alpha / omega);
    rho = rho_new;
    dist_axpy(-omega, v, p);
    for (int rr = 0; rr < nr; ++rr)
      scal(Complex<T>(static_cast<T>(beta.real()),
                      static_cast<T>(beta.imag())),
           p.rank(rr));
    dist_axpy(std::complex<double>(1, 0), r, p);
    ++stats.iterations;
  }
  stats.final_relative_residual = rnorm / bnorm;
  if (stats.final_relative_residual <= params.tolerance)
    stats.converged = true;
  comm.messages += op.comm().messages;
  comm.bytes += op.comm().bytes;
  return res;
}

}  // namespace lqcd
