#include "lqcd/vnode/virtual_grid.h"

#include <algorithm>

#include "lqcd/base/error.h"

namespace lqcd {

ProxyTree::ProxyTree(int num_ranks, int fanout)
    : num_ranks_(num_ranks), fanout_(fanout) {
  LQCD_CHECK_MSG(num_ranks >= 1, "proxy tree needs >= 1 rank");
  LQCD_CHECK_MSG(fanout >= 1, "proxy tree fanout must be >= 1");
  const auto n = static_cast<std::size_t>(num_ranks);
  parent_.resize(n);
  level_.resize(n);
  subtree_.assign(n, 1);
  children_.resize(n);
  parent_[0] = -1;
  level_[0] = 0;
  for (int r = 1; r < num_ranks; ++r) {
    const int p = (r - 1) / fanout;
    parent_[static_cast<std::size_t>(r)] = p;
    level_[static_cast<std::size_t>(r)] =
        level_[static_cast<std::size_t>(p)] + 1;
    children_[static_cast<std::size_t>(p)].push_back(r);
    depth_ = std::max(depth_, level_[static_cast<std::size_t>(r)]);
  }
  for (int r = num_ranks - 1; r >= 1; --r)
    subtree_[static_cast<std::size_t>((r - 1) / fanout)] +=
        subtree_[static_cast<std::size_t>(r)];
  bottom_up_.reserve(n - 1);
  for (int r = 1; r < num_ranks; ++r) bottom_up_.push_back(r);
  std::stable_sort(bottom_up_.begin(), bottom_up_.end(),
                   [&](int a, int b) {
                     return level_[static_cast<std::size_t>(a)] >
                            level_[static_cast<std::size_t>(b)];
                   });
}

VirtualGrid::VirtualGrid(const Geometry& global, const Coord& grid)
    : global_(&global), grid_(grid) {
  num_ranks_ = 1;
  local_volume_ = 1;
  for (int mu = 0; mu < kNumDims; ++mu) {
    const auto mu_s = static_cast<std::size_t>(mu);
    LQCD_CHECK_MSG(grid_[mu_s] >= 1, "rank grid extent must be >= 1");
    LQCD_CHECK_MSG(global.dim(mu) % grid_[mu_s] == 0,
                   "global dim " << mu << " not divisible by rank grid");
    local_[mu_s] = global.dim(mu) / grid_[mu_s];
    LQCD_CHECK_MSG(grid_[mu_s] == 1 || local_[mu_s] >= 2,
                   "cut dimension " << mu << " needs local extent >= 2");
    num_ranks_ *= grid_[mu_s];
    local_volume_ *= local_[mu_s];
  }

  auto local_index = [&](const Coord& c) {
    return static_cast<std::int32_t>(
        c[0] + local_[0] * (c[1] + local_[1] * (c[2] + local_[2] * c[3])));
  };
  auto rank_index = [&](const Coord& rc) {
    return rc[0] + grid_[0] * (rc[1] + grid_[1] * (rc[2] + grid_[2] * rc[3]));
  };

  const auto gv = static_cast<std::size_t>(global.volume());
  site_rank_.resize(gv);
  site_local_.resize(gv);
  rank_sites_.resize(static_cast<std::size_t>(num_ranks_) *
                     static_cast<std::size_t>(local_volume_));
  for (std::int32_t g = 0; g < global.volume(); ++g) {
    const Coord c = global.coord(g);
    Coord rc, lc;
    for (int mu = 0; mu < kNumDims; ++mu) {
      const auto mu_s = static_cast<std::size_t>(mu);
      rc[mu_s] = c[mu_s] / local_[mu_s];
      lc[mu_s] = c[mu_s] % local_[mu_s];
    }
    const int r = rank_index(rc);
    const std::int32_t l = local_index(lc);
    site_rank_[static_cast<std::size_t>(g)] = r;
    site_local_[static_cast<std::size_t>(g)] = l;
    rank_sites_[static_cast<std::size_t>(r) *
                    static_cast<std::size_t>(local_volume_) +
                static_cast<std::size_t>(l)] = g;
  }

  // Rank neighbor table.
  rank_nbr_.resize(static_cast<std::size_t>(num_ranks_) * 2 * kNumDims);
  for (int r = 0; r < num_ranks_; ++r) {
    Coord rc;
    int rem = r;
    for (int mu = 0; mu < kNumDims; ++mu) {
      rc[static_cast<std::size_t>(mu)] =
          rem % grid_[static_cast<std::size_t>(mu)];
      rem /= grid_[static_cast<std::size_t>(mu)];
    }
    for (int mu = 0; mu < kNumDims; ++mu) {
      const auto mu_s = static_cast<std::size_t>(mu);
      Coord f = rc, b = rc;
      f[mu_s] = (rc[mu_s] + 1) % grid_[mu_s];
      b[mu_s] = (rc[mu_s] - 1 + grid_[mu_s]) % grid_[mu_s];
      rank_nbr_[static_cast<std::size_t>(r) * 2 * kNumDims + mu_s * 2 + 0] =
          rank_index(f);
      rank_nbr_[static_cast<std::size_t>(r) * 2 * kNumDims + mu_s * 2 + 1] =
          rank_index(b);
    }
  }

  // Face lists in a consistent transverse order (lexicographic over the
  // other three local coordinates) and per-site face positions.
  faces_.resize(2 * kNumDims);
  std::vector<std::vector<std::int32_t>> face_pos(
      2 * kNumDims,
      std::vector<std::int32_t>(static_cast<std::size_t>(local_volume_), -1));
  for (int mu = 0; mu < kNumDims; ++mu) {
    const auto mu_s = static_cast<std::size_t>(mu);
    if (!is_cut(mu)) continue;
    for (int dirbit = 0; dirbit < 2; ++dirbit) {
      const int edge = dirbit == 0 ? local_[mu_s] - 1 : 0;  // fwd : bwd
      auto& list = faces_[mu_s * 2 + static_cast<std::size_t>(dirbit)];
      Coord c;
      c[mu_s] = edge;
      // Iterate the three transverse coordinates lexicographically.
      int dims[3], idx = 0;
      for (int nu = 0; nu < kNumDims; ++nu)
        if (nu != mu) dims[idx++] = nu;
      for (int k2 = 0; k2 < local_[static_cast<std::size_t>(dims[2])]; ++k2)
        for (int k1 = 0; k1 < local_[static_cast<std::size_t>(dims[1])];
             ++k1)
          for (int k0 = 0; k0 < local_[static_cast<std::size_t>(dims[0])];
               ++k0) {
            c[static_cast<std::size_t>(dims[0])] = k0;
            c[static_cast<std::size_t>(dims[1])] = k1;
            c[static_cast<std::size_t>(dims[2])] = k2;
            const std::int32_t l = local_index(c);
            face_pos[mu_s * 2 + static_cast<std::size_t>(dirbit)]
                    [static_cast<std::size_t>(l)] =
                        static_cast<std::int32_t>(list.size());
            list.push_back(l);
          }
    }
  }

  // Local neighbor table with off-rank hops encoded as -(face_pos+1).
  local_nbr_.resize(static_cast<std::size_t>(local_volume_) * 2 * kNumDims);
  for (std::int32_t l = 0; l < local_volume_; ++l) {
    Coord c;
    std::int32_t rem = l;
    for (int mu = 0; mu < kNumDims; ++mu) {
      c[static_cast<std::size_t>(mu)] =
          rem % local_[static_cast<std::size_t>(mu)];
      rem /= local_[static_cast<std::size_t>(mu)];
    }
    for (int mu = 0; mu < kNumDims; ++mu) {
      const auto mu_s = static_cast<std::size_t>(mu);
      const std::size_t base =
          static_cast<std::size_t>(l) * 2 * kNumDims + mu_s * 2;
      // Forward.
      if (c[mu_s] + 1 < local_[mu_s] || !is_cut(mu)) {
        Coord n = c;
        n[mu_s] = (c[mu_s] + 1) % local_[mu_s];
        local_nbr_[base + 0] = local_index(n);
      } else {
        local_nbr_[base + 0] =
            -(face_pos[mu_s * 2 + 0][static_cast<std::size_t>(l)] + 1);
      }
      // Backward.
      if (c[mu_s] > 0 || !is_cut(mu)) {
        Coord n = c;
        n[mu_s] = (c[mu_s] - 1 + local_[mu_s]) % local_[mu_s];
        local_nbr_[base + 1] = local_index(n);
      } else {
        local_nbr_[base + 1] =
            -(face_pos[mu_s * 2 + 1][static_cast<std::size_t>(l)] + 1);
      }
    }
  }
}

}  // namespace lqcd
