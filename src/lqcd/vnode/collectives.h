// Fault-tolerant collectives over the virtual rank grid.
//
// The paper routes all inter-KNC traffic through one communicating core
// per chip and a host-proxy tree (Sec. V). This header functionally
// emulates that allreduce hop by hop: every virtual rank reduces its
// subtree's contributions and forwards them up a ProxyTree; the root
// (rank 0, the host proxy) completes the sum and broadcasts it back down.
//
// Messages are ITEMIZED — a hop carries (rank, value) entries for the
// sender's whole subtree rather than a pre-reduced scalar. That costs
// subtree-proportional bytes (counted, and mirrored analytically by
// knc::allreduce_tree_work) and buys two properties at once:
//   * bit-identity: the root reduces entries in rank order from zero,
//     executing exactly the flat `for r: acc += part[r]` of the trivial
//     sum, so the fault-free tree result is bit-identical to it;
//   * local recovery: after a failure the survivors know precisely which
//     leaf entries are missing and replay only those.
//
// Every hop is a FaultInjector site (FaultSite::kCollectiveHop):
//   * kMessageDrop    — the hop times out; retried with bounded backoff,
//                       kRetriesExhausted after max_retries.
//   * kMessageCorrupt — the payload arrives bit-flipped; the Fletcher-32
//                       payload checksum exposes it and the hop is
//                       retried (with verification disabled the corrupt
//                       value is silently reduced — the ABFT motivation).
//   * kRankDeath      — the sender dies mid-hop. Its parent adopts the
//                       orphaned children, which replay their buffered
//                       payloads directly to the adopter; the dead rank's
//                       own contribution is re-fetched from its host-side
//                       checkpoint (the PR-1 checkpoint/rollback tie-in).
//                       Every replayed hop is counted as a rewire hop —
//                       the measured recovery cost that replaces the
//                       cluster model's flat recovery_seconds constant.
// More simultaneous deaths than max_rank_deaths degrade gracefully into a
// structured kTooManyRankDeaths status (never a hang, never a silent
// wrong sum).
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "lqcd/base/checksum.h"
#include "lqcd/base/error.h"
#include "lqcd/resilience/fault_injector.h"
#include "lqcd/vnode/virtual_grid.h"

namespace lqcd {

/// Communication accounting of the vnode layer. `messages`/`bytes` count
/// halo point-to-point traffic only (the quantities validated against the
/// cluster model's geometry formulas); collective traffic is itemized
/// separately so the tree's extra hops never perturb the halo accounting.
struct CommStats {
  std::int64_t messages = 0;        ///< halo messages sent
  std::int64_t bytes = 0;           ///< halo payload bytes sent
  std::int64_t halo_exchanges = 0;  ///< halo exchange rounds completed
  std::int64_t allreduces = 0;      ///< collective operations performed
  std::int64_t allreduce_messages = 0;  ///< tree hops sent (up + down)
  std::int64_t allreduce_bytes = 0;     ///< payload bytes over those hops
  std::int64_t retransmits = 0;     ///< hops resent after drop/corruption
  std::int64_t rewire_hops = 0;     ///< hops replayed around dead ranks
  std::int64_t rank_deaths = 0;     ///< dead ranks detected and rewired
  void reset() { *this = CommStats{}; }

  /// Commutative merge, so per-thread CommStats shards accumulated outside
  /// a parallel region (the blessed pattern — see DESIGN.md "Concurrency &
  /// static-analysis gates") fold into one total deterministically.
  CommStats& operator+=(const CommStats& o) noexcept {
    messages += o.messages;
    bytes += o.bytes;
    halo_exchanges += o.halo_exchanges;
    allreduces += o.allreduces;
    allreduce_messages += o.allreduce_messages;
    allreduce_bytes += o.allreduce_bytes;
    retransmits += o.retransmits;
    rewire_hops += o.rewire_hops;
    rank_deaths += o.rank_deaths;
    return *this;
  }
};

inline CommStats operator+(CommStats a, const CommStats& b) noexcept {
  a += b;
  return a;
}

enum class CollectiveStatus {
  kOk,
  kRetriesExhausted,   ///< a hop kept failing past max_retries
  kTooManyRankDeaths,  ///< deaths exceeded the max_rank_deaths budget
};

inline const char* to_string(CollectiveStatus s) noexcept {
  switch (s) {
    case CollectiveStatus::kOk: return "ok";
    case CollectiveStatus::kRetriesExhausted: return "retries-exhausted";
    case CollectiveStatus::kTooManyRankDeaths: return "too-many-rank-deaths";
  }
  return "?";
}

struct CollectiveConfig {
  int fanout = 2;           ///< proxy-tree arity
  int max_retries = 3;      ///< retransmit budget per hop (drop/corrupt)
  int max_rank_deaths = 1;  ///< rewire budget before structured failure
  /// Verify the Fletcher-32 payload checksum on receive. Disabling it
  /// lets kMessageCorrupt propagate silently — the ABFT counterexample.
  bool verify_checksums = true;
  /// Re-fetch a dead rank's own contribution from its host-side
  /// checkpoint (one extra rewire hop). When false the sum completes
  /// with the surviving contribution set only (result.complete = false).
  bool recover_dead_contribution = true;
  /// Per-hop fault site; nullptr (or a non-message fault class) leaves
  /// the collective fault-free and consumes no injector opportunities.
  FaultInjector* injector = nullptr;
};

/// Per-call emulation record. Fault-free: up_hops = down_hops = n-1 and
/// payload_bytes matches knc::allreduce_tree_work exactly.
struct CollectiveStats {
  int ranks = 0;
  int fanout = 2;
  int tree_depth = 0;
  std::int64_t up_hops = 0;          ///< first-attempt upward sends
  std::int64_t down_hops = 0;        ///< broadcast hops to survivors
  std::int64_t retransmit_hops = 0;  ///< retry attempts (drop/corrupt)
  std::int64_t rewire_hops = 0;      ///< replayed hops + checkpoint fetches
  std::int64_t payload_bytes = 0;    ///< bytes over ALL attempts
  int drops = 0;
  int corruptions = 0;
  int rank_deaths = 0;

  std::int64_t total_messages() const noexcept {
    return up_hops + down_hops + retransmit_hops + rewire_hops;
  }
};

/// Measured recovery cost of the rewire protocol: hops replayed x the
/// per-hop latency. Feed cluster::NodeFaultSpec::rewire_hops /
/// rewire_rework_seconds with this instead of a flat recovery constant.
inline double rewire_seconds(const CollectiveStats& s,
                             double hop_seconds) noexcept {
  return static_cast<double>(s.rewire_hops) * hop_seconds;
}

template <class T>
struct AllreduceResult {
  T value{};
  CollectiveStatus status = CollectiveStatus::kOk;
  bool complete = true;   ///< every rank's contribution made it into value
  int missing_ranks = 0;  ///< contributions absent from value
  CollectiveStats stats;
};

/// Bytes one itemized (rank, value) payload entry occupies on the wire:
/// the value plus a 4-byte rank tag.
template <class T>
constexpr std::int64_t allreduce_entry_bytes() noexcept {
  return static_cast<std::int64_t>(sizeof(T)) + 4;
}

namespace collective_detail {

enum class HopOutcome { kDelivered, kSenderDied, kRetriesExhausted };

/// One upward hop with bounded-backoff retries: the sender transmits its
/// itemized entry list; drops and detected corruptions are retried up to
/// cfg.max_retries times. `silent_flip` reports an undetected corruption
/// (checksum verification disabled) — the first payload value reaches the
/// receiver bit-flipped.
template <class T>
HopOutcome send_hop(const std::vector<int>& entry_ranks,
                    const std::vector<T>& values,
                    const CollectiveConfig& cfg, bool is_rewire,
                    CollectiveStats& stats, bool& silent_flip) {
  silent_flip = false;
  const std::int64_t hop_bytes =
      static_cast<std::int64_t>(entry_ranks.size()) *
      allreduce_entry_bytes<T>();
  FaultInjector* inj = cfg.injector;
  const bool armed = inj != nullptr && is_message_fault(inj->config().fault);
  for (int attempt = 0;; ++attempt) {
    if (attempt == 0) {
      if (is_rewire) {
        ++stats.rewire_hops;
      } else {
        ++stats.up_hops;
      }
    } else {
      ++stats.retransmit_hops;
    }
    stats.payload_bytes += hop_bytes;

    if (!armed || !inj->maybe_fault(FaultSite::kCollectiveHop))
      return HopOutcome::kDelivered;

    const FaultClass fc = inj->config().fault;
    if (fc == FaultClass::kRankDeath) return HopOutcome::kSenderDied;
    if (fc == FaultClass::kMessageDrop) {
      ++stats.drops;
    } else {  // kMessageCorrupt
      ++stats.corruptions;
      // Serialize the payload, flip one bit in transit, and check the
      // Fletcher-32 checksum that travels with the message.
      std::vector<unsigned char> wire(values.size() * sizeof(T));
      if (!wire.empty())
        std::memcpy(wire.data(), values.data(), wire.size());
      const std::uint32_t sent = fletcher32_bytes(wire.data(), wire.size());
      if (!wire.empty()) wire[0] ^= 1u;
      const std::uint32_t received =
          fletcher32_bytes(wire.data(), wire.size());
      if (!cfg.verify_checksums || received == sent) {
        // Undetected: the corrupted first value is reduced as-is.
        silent_flip = !wire.empty();
        return HopOutcome::kDelivered;
      }
      // Detected: discard and retransmit, like a drop.
    }
    if (attempt >= cfg.max_retries) return HopOutcome::kRetriesExhausted;
  }
}

}  // namespace collective_detail

/// Fault-tolerant allreduce of one scalar contribution per virtual rank
/// over the host-proxy tree. Fault-free, the returned value is
/// bit-identical to `acc = T{}; for (r) acc += contributions[r];`.
template <class T>
AllreduceResult<T> tree_allreduce(const std::vector<T>& contributions,
                                  CommStats& comm,
                                  const CollectiveConfig& cfg = {}) {
  const int n = static_cast<int>(contributions.size());
  LQCD_CHECK_MSG(n >= 1, "tree_allreduce needs >= 1 contribution");
  AllreduceResult<T> res;
  res.stats.ranks = n;
  res.stats.fanout = cfg.fanout;
  ++comm.allreduces;

  const ProxyTree tree(n, cfg.fanout);
  res.stats.tree_depth = tree.depth();

  // Per-rank emulation state. carry[r]: the subtree entry ranks r has
  // buffered (its own plus everything its children delivered) — kept
  // after sending so a rewire can replay it. kids[r]: r's CURRENT
  // children, updated as orphans are adopted. flipped[r]: rank r's entry
  // passed through an undetected corruption somewhere en route.
  std::vector<char> alive(static_cast<std::size_t>(n), 1);
  std::vector<char> flipped(static_cast<std::size_t>(n), 0);
  std::vector<std::vector<int>> carry(static_cast<std::size_t>(n));
  std::vector<std::vector<int>> kids(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) carry[static_cast<std::size_t>(r)] = {r};
  for (int r = 1; r < n; ++r)
    kids[static_cast<std::size_t>(tree.parent(r))].push_back(r);

  // Root-side collection: entry slot per rank, filled as payloads arrive.
  std::vector<char> have(static_cast<std::size_t>(n), 0);
  have[0] = 1;  // the root's own contribution never travels

  auto payload_values = [&](const std::vector<int>& entry_ranks) {
    std::vector<T> v;
    v.reserve(entry_ranks.size());
    for (const int e : entry_ranks)
      v.push_back(contributions[static_cast<std::size_t>(e)]);
    return v;
  };
  auto deliver = [&](const std::vector<int>& entry_ranks, int dest,
                     bool silent_flip) {
    if (dest == 0) {
      for (const int e : entry_ranks) have[static_cast<std::size_t>(e)] = 1;
    } else {
      auto& c = carry[static_cast<std::size_t>(dest)];
      c.insert(c.end(), entry_ranks.begin(), entry_ranks.end());
    }
    if (silent_flip && !entry_ranks.empty())
      flipped[static_cast<std::size_t>(entry_ranks.front())] = 1;
  };

  // Upward pass: deepest senders first, so every sender has already
  // received its (possibly adopted) children's payloads, and every
  // sender's parent is still unprocessed — hence adoptable.
  struct Send {
    int sender;
    int dest;
    bool rewire;
  };
  for (const int s : tree.bottom_up()) {
    if (!alive[static_cast<std::size_t>(s)]) continue;
    std::vector<Send> work{{s, tree.parent(s), false}};
    while (!work.empty() && res.status == CollectiveStatus::kOk) {
      const Send snd = work.back();
      work.pop_back();
      if (!alive[static_cast<std::size_t>(snd.sender)]) continue;
      const auto& entry_ranks = carry[static_cast<std::size_t>(snd.sender)];
      bool silent_flip = false;
      const auto outcome = collective_detail::send_hop(
          entry_ranks, payload_values(entry_ranks), cfg, snd.rewire,
          res.stats, silent_flip);
      switch (outcome) {
        case collective_detail::HopOutcome::kDelivered:
          deliver(entry_ranks, snd.dest, silent_flip);
          break;
        case collective_detail::HopOutcome::kRetriesExhausted:
          res.status = CollectiveStatus::kRetriesExhausted;
          break;
        case collective_detail::HopOutcome::kSenderDied: {
          alive[static_cast<std::size_t>(snd.sender)] = 0;
          ++res.stats.rank_deaths;
          if (res.stats.rank_deaths > cfg.max_rank_deaths) {
            res.status = CollectiveStatus::kTooManyRankDeaths;
            break;
          }
          // Parent adoption: the dead sender's buffered subtree payloads
          // died with it. Its current children rewire to snd.dest and
          // replay their own buffers (each replay is a fresh hop — and a
          // fresh fault opportunity, so deaths can cascade). Entries no
          // surviving child can replay — the dead rank's own, plus
          // anything it had already recovered from earlier deaths — are
          // re-fetched from the host-side checkpoint store (one rewire
          // hop, host-local, so no fault opportunity).
          auto& orphans = kids[static_cast<std::size_t>(snd.sender)];
          std::vector<char> covered(static_cast<std::size_t>(n), 0);
          for (const int c : orphans) {
            if (!alive[static_cast<std::size_t>(c)]) continue;
            for (const int e : carry[static_cast<std::size_t>(c)])
              covered[static_cast<std::size_t>(e)] = 1;
            work.push_back({c, snd.dest, true});
            kids[static_cast<std::size_t>(snd.dest)].push_back(c);
          }
          orphans.clear();
          if (cfg.recover_dead_contribution) {
            std::vector<int> fetch;
            for (const int e : carry[static_cast<std::size_t>(snd.sender)])
              if (!covered[static_cast<std::size_t>(e)]) fetch.push_back(e);
            if (!fetch.empty()) {
              ++res.stats.rewire_hops;
              res.stats.payload_bytes +=
                  static_cast<std::int64_t>(fetch.size()) *
                  allreduce_entry_bytes<T>();
              deliver(fetch, snd.dest, false);
            }
          }
          break;
        }
      }
    }
    if (res.status != CollectiveStatus::kOk) break;
  }

  // Root reduction, in rank order from zero — the exact operation
  // sequence of the trivial linear sum, hence bit-identical fault-free.
  T acc{};
  for (int r = 0; r < n; ++r) {
    if (have[static_cast<std::size_t>(r)]) {
      T v = contributions[static_cast<std::size_t>(r)];
      if (flipped[static_cast<std::size_t>(r)]) {
        unsigned char raw[sizeof(T)];
        std::memcpy(raw, &v, sizeof(T));
        raw[0] ^= 1u;
        std::memcpy(&v, raw, sizeof(T));
      }
      acc += v;
    } else {
      ++res.missing_ranks;
    }
  }
  res.value = acc;
  res.complete = res.missing_ranks == 0;

  // Downward broadcast of the result to the surviving non-root ranks.
  if (res.status == CollectiveStatus::kOk) {
    for (int r = 1; r < n; ++r)
      if (alive[static_cast<std::size_t>(r)]) ++res.stats.down_hops;
    res.stats.payload_bytes +=
        res.stats.down_hops * allreduce_entry_bytes<T>();
  }

  comm.allreduce_messages += res.stats.total_messages();
  comm.allreduce_bytes += res.stats.payload_bytes;
  comm.retransmits += res.stats.retransmit_hops;
  comm.rewire_hops += res.stats.rewire_hops;
  comm.rank_deaths += res.stats.rank_deaths;
  return res;
}

}  // namespace lqcd
