// Distributed fields and the distributed Wilson-Clover operator on the
// virtual rank grid.
//
// The halo exchange sends exactly what the paper's code sends
// (Sec. III-A): projected 12-real half-spinors, link-multiplied by the
// owner of the link — U^dag h for forward faces (the sender owns
// U_mu(x)), raw h for backward faces (the receiver owns U_mu(y)). A
// CommStats counter validates the message/byte accounting used by the
// cluster performance model.
#pragma once

#include "lqcd/dirac/wilson_clover.h"
#include "lqcd/vnode/virtual_grid.h"

namespace lqcd {

/// One FermionField per rank.
template <class T>
class DistributedField {
 public:
  DistributedField() = default;
  explicit DistributedField(const VirtualGrid& grid) {
    per_rank_.reserve(static_cast<std::size_t>(grid.num_ranks()));
    for (int r = 0; r < grid.num_ranks(); ++r)
      per_rank_.emplace_back(grid.local_volume());
  }

  FermionField<T>& rank(int r) noexcept {
    return per_rank_[static_cast<std::size_t>(r)];
  }
  const FermionField<T>& rank(int r) const noexcept {
    return per_rank_[static_cast<std::size_t>(r)];
  }
  int num_ranks() const noexcept {
    return static_cast<int>(per_rank_.size());
  }

 private:
  std::vector<FermionField<T>> per_rank_;
};

/// Scatter a global field onto the ranks / gather it back.
template <class T>
void scatter(const VirtualGrid& grid, const FermionField<T>& global,
             DistributedField<T>& dist) {
  LQCD_CHECK(global.size() == grid.global().volume());
  for (int r = 0; r < grid.num_ranks(); ++r)
    for (std::int32_t l = 0; l < grid.local_volume(); ++l)
      dist.rank(r)[l] = global[grid.global_site(r, l)];
}

template <class T>
void gather(const VirtualGrid& grid, const DistributedField<T>& dist,
            FermionField<T>& global) {
  LQCD_CHECK(global.size() == grid.global().volume());
  for (int r = 0; r < grid.num_ranks(); ++r)
    for (std::int32_t l = 0; l < grid.local_volume(); ++l)
      global[grid.global_site(r, l)] = dist.rank(r)[l];
}

struct CommStats {
  std::int64_t messages = 0;
  std::int64_t bytes = 0;
  std::int64_t allreduces = 0;
  void reset() { *this = CommStats{}; }
};

/// Distributed dot product: per-rank partials, one (counted) allreduce.
template <class T>
std::complex<double> dot(const VirtualGrid& grid,
                         const DistributedField<T>& x,
                         const DistributedField<T>& y, CommStats& comm) {
  std::complex<double> acc(0, 0);
  for (int r = 0; r < grid.num_ranks(); ++r)
    acc += dot(x.rank(r), y.rank(r));
  ++comm.allreduces;
  return acc;
}

template <class T>
class DistributedWilsonClover {
 public:
  /// Builds per-rank copies of the links and (globally constructed)
  /// clover blocks. `gauge` must live on grid.global().
  DistributedWilsonClover(const VirtualGrid& grid,
                          const GaugeField<T>& gauge, T mass, T csw)
      : grid_(&grid),
        clover_(grid.global(), gauge, mass, csw),
        links_(static_cast<std::size_t>(grid.num_ranks()) *
               static_cast<std::size_t>(grid.local_volume()) * kNumDims) {
    LQCD_CHECK(&gauge.geometry() == &grid.global());
    for (int r = 0; r < grid.num_ranks(); ++r)
      for (std::int32_t l = 0; l < grid.local_volume(); ++l) {
        const std::int32_t g = grid.global_site(r, l);
        for (int mu = 0; mu < kNumDims; ++mu)
          link_ref(r, l, mu) = gauge.link(g, mu);
      }
    // One send + one receive buffer per (rank, mu, dir).
    const int nr = grid.num_ranks();
    send_.resize(static_cast<std::size_t>(nr) * 2 * kNumDims);
    recv_.resize(static_cast<std::size_t>(nr) * 2 * kNumDims);
    for (int r = 0; r < nr; ++r)
      for (int mu = 0; mu < kNumDims; ++mu)
        for (int dirbit = 0; dirbit < 2; ++dirbit) {
          const auto n = grid.face_size(mu);
          buffer(send_, r, mu, dirbit)
              .resize(static_cast<std::size_t>(n));
          buffer(recv_, r, mu, dirbit)
              .resize(static_cast<std::size_t>(n));
        }
  }

  const CommStats& comm() const noexcept { return comm_; }
  void reset_comm() noexcept { comm_.reset(); }

  /// out = A in, with explicit halo exchange between the virtual ranks.
  void apply(const DistributedField<T>& in, DistributedField<T>& out) {
    pack_all(in);
    exchange();
    compute_all(in, out);
  }

 private:
  using HalfBuffer = std::vector<HalfSpinor<T>>;

  SU3<T>& link_ref(int r, std::int32_t l, int mu) noexcept {
    return links_[(static_cast<std::size_t>(r) *
                       static_cast<std::size_t>(grid_->local_volume()) +
                   static_cast<std::size_t>(l)) *
                      kNumDims +
                  static_cast<std::size_t>(mu)];
  }
  const SU3<T>& link(int r, std::int32_t l, int mu) const noexcept {
    return const_cast<DistributedWilsonClover*>(this)->link_ref(r, l, mu);
  }

  HalfBuffer& buffer(std::vector<HalfBuffer>& set, int r, int mu,
                     int dirbit) noexcept {
    return set[(static_cast<std::size_t>(r) * kNumDims +
                static_cast<std::size_t>(mu)) *
                   2 +
               static_cast<std::size_t>(dirbit)];
  }

  void pack_all(const DistributedField<T>& in) {
    for (int r = 0; r < grid_->num_ranks(); ++r)
      for (int mu = 0; mu < kNumDims; ++mu) {
        if (!grid_->is_cut(mu)) continue;
        // Forward face: the receiver's backward hop needs
        // (1+gamma) U^dag(x) psi(x); we own the link, so multiply here.
        {
          const auto& face = grid_->face(mu, Dir::kForward);
          auto& buf = buffer(send_, r, mu, 0);
          for (std::size_t i = 0; i < face.size(); ++i) {
            const std::int32_t l = face[i];
            buf[i] = mul_adj(link(r, l, mu),
                             project(in.rank(r)[l], mu, +1));
          }
        }
        // Backward face: the receiver's forward hop needs
        // (1-gamma) U(y) psi(x); the receiver owns U(y): send raw.
        {
          const auto& face = grid_->face(mu, Dir::kBackward);
          auto& buf = buffer(send_, r, mu, 1);
          for (std::size_t i = 0; i < face.size(); ++i)
            buf[i] = project(in.rank(r)[face[i]], mu, -1);
        }
      }
  }

  void exchange() {
    for (int r = 0; r < grid_->num_ranks(); ++r)
      for (int mu = 0; mu < kNumDims; ++mu) {
        if (!grid_->is_cut(mu)) continue;
        // recv[r][mu][fwd-bit] holds the data arriving FROM the forward
        // neighbor (its backward-face buffer), and vice versa.
        const int rf = grid_->neighbor_rank(r, mu, Dir::kForward);
        const int rb = grid_->neighbor_rank(r, mu, Dir::kBackward);
        buffer(recv_, r, mu, 0) = buffer(send_, rf, mu, 1);
        buffer(recv_, r, mu, 1) = buffer(send_, rb, mu, 0);
        comm_.messages += 2;
        comm_.bytes += 2 *
                       static_cast<std::int64_t>(grid_->face_size(mu)) * 12 *
                       static_cast<std::int64_t>(sizeof(T));
      }
  }

  void compute_all(const DistributedField<T>& in, DistributedField<T>& out) {
    for (int r = 0; r < grid_->num_ranks(); ++r) {
      const auto& inr = in.rank(r);
      auto& outr = out.rank(r);
      for (std::int32_t l = 0; l < grid_->local_volume(); ++l) {
        Spinor<T> hop;
        hop.zero();
        for (int mu = 0; mu < kNumDims; ++mu) {
          // Forward: (1-gamma) U_mu(y) psi(y+mu).
          const std::int32_t lf = grid_->local_neighbor(l, mu, Dir::kForward);
          if (lf >= 0) {
            const HalfSpinor<T> h = project(inr[lf], mu, -1);
            reconstruct_add(hop, mul(link(r, l, mu), h), mu, -1);
          } else {
            const auto& buf = buffer(recv_, r, mu, 0);
            const HalfSpinor<T> h =
                mul(link(r, l, mu), buf[static_cast<std::size_t>(-lf - 1)]);
            reconstruct_add(hop, h, mu, -1);
          }
          // Backward: (1+gamma) U_mu^dag(y-mu) psi(y-mu).
          const std::int32_t lb =
              grid_->local_neighbor(l, mu, Dir::kBackward);
          if (lb >= 0) {
            const HalfSpinor<T> h = project(inr[lb], mu, +1);
            reconstruct_add(hop, mul_adj(link(r, lb, mu), h), mu, +1);
          } else {
            const auto& buf = buffer(recv_, r, mu, 1);
            // Already U^dag-multiplied by the sender.
            reconstruct_add(hop, buf[static_cast<std::size_t>(-lb - 1)], mu,
                            +1);
          }
        }
        Spinor<T> diag;
        clover_.apply_site(grid_->global_site(r, l), inr[l], diag);
        for (int sp = 0; sp < kNumSpins; ++sp)
          for (int c = 0; c < kNumColors; ++c)
            outr[l].s[sp].c[c] =
                diag.s[sp].c[c] - T(0.5) * hop.s[sp].c[c];
      }
    }
  }

  const VirtualGrid* grid_;
  CloverTerm<T> clover_;
  AlignedVector<SU3<T>> links_;
  std::vector<HalfBuffer> send_, recv_;
  CommStats comm_;
};

}  // namespace lqcd
