// Distributed fields and the distributed Wilson-Clover operator on the
// virtual rank grid.
//
// The halo exchange sends exactly what the paper's code sends
// (Sec. III-A): projected 12-real half-spinors, link-multiplied by the
// owner of the link — U^dag h for forward faces (the sender owns
// U_mu(x)), raw h for backward faces (the receiver owns U_mu(y)). A
// CommStats counter validates the message/byte accounting used by the
// cluster performance model.
#pragma once

#include "lqcd/dirac/wilson_clover.h"
#include "lqcd/vnode/collectives.h"
#include "lqcd/vnode/virtual_grid.h"

namespace lqcd {

/// One FermionField per rank.
template <class T>
class DistributedField {
 public:
  DistributedField() = default;
  explicit DistributedField(const VirtualGrid& grid) {
    per_rank_.reserve(static_cast<std::size_t>(grid.num_ranks()));
    for (int r = 0; r < grid.num_ranks(); ++r)
      per_rank_.emplace_back(grid.local_volume());
  }

  FermionField<T>& rank(int r) noexcept {
    return per_rank_[static_cast<std::size_t>(r)];
  }
  const FermionField<T>& rank(int r) const noexcept {
    return per_rank_[static_cast<std::size_t>(r)];
  }
  int num_ranks() const noexcept {
    return static_cast<int>(per_rank_.size());
  }

 private:
  std::vector<FermionField<T>> per_rank_;
};

/// Scatter a global field onto the ranks / gather it back.
template <class T>
void scatter(const VirtualGrid& grid, const FermionField<T>& global,
             DistributedField<T>& dist) {
  LQCD_CHECK(global.size() == grid.global().volume());
  for (int r = 0; r < grid.num_ranks(); ++r)
    for (std::int32_t l = 0; l < grid.local_volume(); ++l)
      dist.rank(r)[l] = global[grid.global_site(r, l)];
}

template <class T>
void gather(const VirtualGrid& grid, const DistributedField<T>& dist,
            FermionField<T>& global) {
  LQCD_CHECK(global.size() == grid.global().volume());
  for (int r = 0; r < grid.num_ranks(); ++r)
    for (std::int32_t l = 0; l < grid.local_volume(); ++l)
      global[grid.global_site(r, l)] = dist.rank(r)[l];
}

/// Distributed dot product: per-rank partials reduced over the
/// fault-tolerant host-proxy tree (bit-identical to the historical
/// trivial linear sum when no faults fire). A collective that cannot
/// complete — retries exhausted or too many rank deaths — throws a
/// structured Error; the caller's checkpoint/rollback path takes over.
template <class T>
std::complex<double> dot(const VirtualGrid& grid,
                         const DistributedField<T>& x,
                         const DistributedField<T>& y, CommStats& comm,
                         const CollectiveConfig& collectives = {}) {
  std::vector<std::complex<double>> parts(
      static_cast<std::size_t>(grid.num_ranks()));
  for (int r = 0; r < grid.num_ranks(); ++r)
    parts[static_cast<std::size_t>(r)] = dot(x.rank(r), y.rank(r));
  const auto res = tree_allreduce(parts, comm, collectives);
  LQCD_CHECK_MSG(res.status == CollectiveStatus::kOk,
                 "distributed dot: collective failed ("
                     << to_string(res.status)
                     << "); escalate to checkpoint/rollback");
  return res.value;
}

template <class T>
class DistributedWilsonClover {
 public:
  /// Builds per-rank copies of the links and (globally constructed)
  /// clover blocks. `gauge` must live on grid.global().
  DistributedWilsonClover(const VirtualGrid& grid,
                          const GaugeField<T>& gauge, T mass, T csw)
      : grid_(&grid),
        clover_(grid.global(), gauge, mass, csw),
        links_(static_cast<std::size_t>(grid.num_ranks()) *
               static_cast<std::size_t>(grid.local_volume()) * kNumDims) {
    LQCD_CHECK(&gauge.geometry() == &grid.global());
    for (int r = 0; r < grid.num_ranks(); ++r)
      for (std::int32_t l = 0; l < grid.local_volume(); ++l) {
        const std::int32_t g = grid.global_site(r, l);
        for (int mu = 0; mu < kNumDims; ++mu)
          link_ref(r, l, mu) = gauge.link(g, mu);
      }
    // One send + one receive buffer per (rank, mu, dir).
    const int nr = grid.num_ranks();
    send_.resize(static_cast<std::size_t>(nr) * 2 * kNumDims);
    recv_.resize(static_cast<std::size_t>(nr) * 2 * kNumDims);
    for (int r = 0; r < nr; ++r)
      for (int mu = 0; mu < kNumDims; ++mu)
        for (int dirbit = 0; dirbit < 2; ++dirbit) {
          const auto n = grid.face_size(mu);
          buffer(send_, r, mu, dirbit)
              .resize(static_cast<std::size_t>(n));
          buffer(recv_, r, mu, dirbit)
              .resize(static_cast<std::size_t>(n));
        }
  }

  const CommStats& comm() const noexcept { return comm_; }
  void reset_comm() noexcept { comm_.reset(); }

  /// Attach a per-message fault site (FaultSite::kHaloExchange) to the
  /// halo exchange. Drops and checksum-detected corruptions are
  /// retransmitted up to `max_retries` times; a rank death (or retry
  /// exhaustion) throws a structured Error — the signal for the
  /// checkpoint/rollback path. nullptr restores fault-free exchanges.
  void set_fault_injector(FaultInjector* injector,
                          int max_retries = 3) noexcept {
    injector_ = injector;
    max_retries_ = max_retries;
  }

  /// out = A in, with explicit halo exchange between the virtual ranks.
  void apply(const DistributedField<T>& in, DistributedField<T>& out) {
    pack_all(in);
    exchange();
    compute_all(in, out);
  }

 private:
  using HalfBuffer = std::vector<HalfSpinor<T>>;

  SU3<T>& link_ref(int r, std::int32_t l, int mu) noexcept {
    return links_[(static_cast<std::size_t>(r) *
                       static_cast<std::size_t>(grid_->local_volume()) +
                   static_cast<std::size_t>(l)) *
                      kNumDims +
                  static_cast<std::size_t>(mu)];
  }
  const SU3<T>& link(int r, std::int32_t l, int mu) const noexcept {
    return const_cast<DistributedWilsonClover*>(this)->link_ref(r, l, mu);
  }

  HalfBuffer& buffer(std::vector<HalfBuffer>& set, int r, int mu,
                     int dirbit) noexcept {
    return set[(static_cast<std::size_t>(r) * kNumDims +
                static_cast<std::size_t>(mu)) *
                   2 +
               static_cast<std::size_t>(dirbit)];
  }

  void pack_all(const DistributedField<T>& in) {
    for (int r = 0; r < grid_->num_ranks(); ++r)
      for (int mu = 0; mu < kNumDims; ++mu) {
        if (!grid_->is_cut(mu)) continue;
        // Forward face: the receiver's backward hop needs
        // (1+gamma) U^dag(x) psi(x); we own the link, so multiply here.
        {
          const auto& face = grid_->face(mu, Dir::kForward);
          auto& buf = buffer(send_, r, mu, 0);
          for (std::size_t i = 0; i < face.size(); ++i) {
            const std::int32_t l = face[i];
            buf[i] = mul_adj(link(r, l, mu),
                             project(in.rank(r)[l], mu, +1));
          }
        }
        // Backward face: the receiver's forward hop needs
        // (1-gamma) U(y) psi(x); the receiver owns U(y): send raw.
        {
          const auto& face = grid_->face(mu, Dir::kBackward);
          auto& buf = buffer(send_, r, mu, 1);
          for (std::size_t i = 0; i < face.size(); ++i)
            buf[i] = project(in.rank(r)[face[i]], mu, -1);
        }
      }
  }

  void exchange() {
    for (int r = 0; r < grid_->num_ranks(); ++r)
      for (int mu = 0; mu < kNumDims; ++mu) {
        if (!grid_->is_cut(mu)) continue;
        // recv[r][mu][fwd-bit] holds the data arriving FROM the forward
        // neighbor (its backward-face buffer), and vice versa.
        const int rf = grid_->neighbor_rank(r, mu, Dir::kForward);
        const int rb = grid_->neighbor_rank(r, mu, Dir::kBackward);
        const std::int64_t msg_bytes =
            static_cast<std::int64_t>(grid_->face_size(mu)) * 12 *
            static_cast<std::int64_t>(sizeof(T));
        transfer(buffer(recv_, r, mu, 0), buffer(send_, rf, mu, 1),
                 msg_bytes);
        transfer(buffer(recv_, r, mu, 1), buffer(send_, rb, mu, 0),
                 msg_bytes);
      }
    ++comm_.halo_exchanges;
  }

  /// One point-to-point halo message, with the per-message fault site.
  /// A drop times out and retransmits; a corruption is exposed by the
  /// Fletcher-32 payload checksum travelling with the message and then
  /// retransmits; a neighbor death cannot be rewired around (the face
  /// data exists nowhere else) and throws for checkpoint/rollback.
  void transfer(HalfBuffer& dst, const HalfBuffer& src,
                std::int64_t msg_bytes) {
    if (injector_ == nullptr || !is_message_fault(injector_->config().fault)) {
      dst = src;
      ++comm_.messages;
      comm_.bytes += msg_bytes;
      return;
    }
    const std::size_t payload_bytes = src.size() * sizeof(HalfSpinor<T>);
    for (int attempt = 0;; ++attempt) {
      ++comm_.messages;
      comm_.bytes += msg_bytes;
      if (attempt > 0) ++comm_.retransmits;
      if (!injector_->maybe_fault(FaultSite::kHaloExchange)) {
        dst = src;
        return;
      }
      const FaultClass fc = injector_->config().fault;
      if (fc == FaultClass::kRankDeath) {
        ++comm_.rank_deaths;
        LQCD_CHECK_MSG(false,
                       "halo exchange: neighbor rank died mid-exchange; "
                       "escalate to checkpoint/rollback");
      }
      if (fc == FaultClass::kMessageCorrupt && !src.empty()) {
        // Deliver a bit-flipped copy and compare payload checksums.
        dst = src;
        auto* raw = reinterpret_cast<unsigned char*>(dst.data());
        raw[0] ^= 1u;
        const std::uint32_t sent =
            fletcher32_bytes(src.data(), payload_bytes);
        const std::uint32_t received =
            fletcher32_bytes(dst.data(), payload_bytes);
        if (received == sent) return;  // cannot happen for a 1-bit flip
        // Detected: fall through to retransmit.
      }
      LQCD_CHECK_MSG(attempt < max_retries_,
                     "halo exchange: retransmit budget exhausted; "
                     "escalate to checkpoint/rollback");
    }
  }

  void compute_all(const DistributedField<T>& in, DistributedField<T>& out) {
    for (int r = 0; r < grid_->num_ranks(); ++r) {
      const auto& inr = in.rank(r);
      auto& outr = out.rank(r);
      for (std::int32_t l = 0; l < grid_->local_volume(); ++l) {
        Spinor<T> hop;
        hop.zero();
        for (int mu = 0; mu < kNumDims; ++mu) {
          // Forward: (1-gamma) U_mu(y) psi(y+mu).
          const std::int32_t lf = grid_->local_neighbor(l, mu, Dir::kForward);
          if (lf >= 0) {
            const HalfSpinor<T> h = project(inr[lf], mu, -1);
            reconstruct_add(hop, mul(link(r, l, mu), h), mu, -1);
          } else {
            const auto& buf = buffer(recv_, r, mu, 0);
            const HalfSpinor<T> h =
                mul(link(r, l, mu), buf[static_cast<std::size_t>(-lf - 1)]);
            reconstruct_add(hop, h, mu, -1);
          }
          // Backward: (1+gamma) U_mu^dag(y-mu) psi(y-mu).
          const std::int32_t lb =
              grid_->local_neighbor(l, mu, Dir::kBackward);
          if (lb >= 0) {
            const HalfSpinor<T> h = project(inr[lb], mu, +1);
            reconstruct_add(hop, mul_adj(link(r, lb, mu), h), mu, +1);
          } else {
            const auto& buf = buffer(recv_, r, mu, 1);
            // Already U^dag-multiplied by the sender.
            reconstruct_add(hop, buf[static_cast<std::size_t>(-lb - 1)], mu,
                            +1);
          }
        }
        Spinor<T> diag;
        clover_.apply_site(grid_->global_site(r, l), inr[l], diag);
        for (int sp = 0; sp < kNumSpins; ++sp)
          for (int c = 0; c < kNumColors; ++c)
            outr[l].s[sp].c[c] =
                diag.s[sp].c[c] - T(0.5) * hop.s[sp].c[c];
      }
    }
  }

  const VirtualGrid* grid_;
  CloverTerm<T> clover_;
  AlignedVector<SU3<T>> links_;
  std::vector<HalfBuffer> send_, recv_;
  CommStats comm_;
  FaultInjector* injector_ = nullptr;
  int max_retries_ = 3;
};

}  // namespace lqcd
