// Even–odd (red–black) checkerboarding of the lattice.
//
// Even–odd preconditioning (paper Eq. 5) reorders the sites so that the
// site-diagonal part of the Wilson–Clover operator decouples into the two
// parities. This class provides the index maps between the full
// lexicographic ordering and the per-parity compact ordering.
#pragma once

#include <cstdint>
#include <vector>

#include "lqcd/lattice/geometry.h"

namespace lqcd {

class Checkerboard {
 public:
  explicit Checkerboard(const Geometry& geom);

  std::int64_t half_volume() const noexcept { return half_volume_; }

  /// Compact index of a full-lattice site within its own parity,
  /// in [0, half_volume).
  std::int32_t cb_index(std::int32_t full_idx) const noexcept {
    return cb_of_full_[static_cast<std::size_t>(full_idx)];
  }

  /// Full-lattice index of the cb-th site of the given parity.
  std::int32_t full_index(int parity, std::int32_t cb_idx) const noexcept {
    return parity == 0 ? full_of_even_[static_cast<std::size_t>(cb_idx)]
                       : full_of_odd_[static_cast<std::size_t>(cb_idx)];
  }

  const std::vector<std::int32_t>& sites(int parity) const noexcept {
    return parity == 0 ? full_of_even_ : full_of_odd_;
  }

 private:
  std::int64_t half_volume_ = 0;
  std::vector<std::int32_t> cb_of_full_;
  std::vector<std::int32_t> full_of_even_;
  std::vector<std::int32_t> full_of_odd_;
};

}  // namespace lqcd
