// 4-dimensional periodic lattice geometry: site indexing, parity,
// neighbor tables.
//
// Conventions (match the paper, Sec. II-B): the lattice has dimensions
// Lx × Ly × Lz × Lt; directions are numbered mu = 0..3 = (x, y, z, t).
// Sites are indexed lexicographically, x fastest:
//   index = x + Lx * (y + Ly * (z + Lz * t)).
// All boundary conditions at the geometry level are periodic; fermionic
// antiperiodicity in time is carried by the gauge field (phase on the
// t-links), as is standard in lattice QCD codes.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "lqcd/base/constants.h"
#include "lqcd/base/error.h"

namespace lqcd {

/// Site coordinate. Components are in [0, L_mu).
using Coord = std::array<int, kNumDims>;

/// Hop direction along an axis.
enum class Dir : int { kBackward = -1, kForward = +1 };

class Geometry {
 public:
  /// Construct a lattice of the given dimensions. All dims must be >= 2
  /// (a periodic dimension of 1 would alias a site with its own neighbor)
  /// and even (required by even–odd checkerboarding).
  explicit Geometry(const Coord& dims);

  const Coord& dims() const noexcept { return dims_; }
  int dim(int mu) const noexcept { return dims_[static_cast<size_t>(mu)]; }
  std::int64_t volume() const noexcept { return volume_; }

  /// Lexicographic site index of a coordinate.
  std::int32_t index(const Coord& c) const noexcept {
    return static_cast<std::int32_t>(
        c[0] + dims_[0] * (c[1] + dims_[1] * (c[2] + dims_[2] * c[3])));
  }

  /// Coordinate of a lexicographic site index.
  Coord coord(std::int32_t idx) const noexcept {
    Coord c;
    c[0] = idx % dims_[0];
    idx /= dims_[0];
    c[1] = idx % dims_[1];
    idx /= dims_[1];
    c[2] = idx % dims_[2];
    c[3] = idx / dims_[2];
    return c;
  }

  /// Checkerboard parity of a site: 0 = even, 1 = odd.
  int parity(const Coord& c) const noexcept {
    return (c[0] + c[1] + c[2] + c[3]) & 1;
  }
  int parity(std::int32_t idx) const noexcept { return parity_[idx]; }

  /// Periodic nearest neighbor (precomputed).
  std::int32_t neighbor(std::int32_t idx, int mu, Dir dir) const noexcept {
    return dir == Dir::kForward ? fwd_[static_cast<size_t>(idx) * kNumDims + mu]
                                : bwd_[static_cast<size_t>(idx) * kNumDims + mu];
  }

  /// Coordinate arithmetic with periodic wrap-around.
  Coord shift(Coord c, int mu, Dir dir) const noexcept {
    const int L = dims_[static_cast<size_t>(mu)];
    c[static_cast<size_t>(mu)] =
        (c[static_cast<size_t>(mu)] + static_cast<int>(dir) + L) % L;
    return c;
  }

  /// True if a forward hop from `c` in direction mu wraps around the
  /// lattice (needed for boundary phases).
  bool wraps_forward(const Coord& c, int mu) const noexcept {
    return c[static_cast<size_t>(mu)] + 1 == dims_[static_cast<size_t>(mu)];
  }

 private:
  Coord dims_{};
  std::int64_t volume_ = 0;
  std::vector<std::int32_t> fwd_;  // volume * 4 forward neighbors
  std::vector<std::int32_t> bwd_;  // volume * 4 backward neighbors
  std::vector<std::uint8_t> parity_;
};

}  // namespace lqcd
