#include "lqcd/lattice/checkerboard.h"

namespace lqcd {

Checkerboard::Checkerboard(const Geometry& geom) {
  const auto volume = geom.volume();
  half_volume_ = volume / 2;
  cb_of_full_.resize(static_cast<std::size_t>(volume));
  full_of_even_.reserve(static_cast<std::size_t>(half_volume_));
  full_of_odd_.reserve(static_cast<std::size_t>(half_volume_));
  for (std::int32_t i = 0; i < static_cast<std::int32_t>(volume); ++i) {
    auto& list = geom.parity(i) == 0 ? full_of_even_ : full_of_odd_;
    cb_of_full_[static_cast<std::size_t>(i)] =
        static_cast<std::int32_t>(list.size());
    list.push_back(i);
  }
  LQCD_CHECK(static_cast<std::int64_t>(full_of_even_.size()) == half_volume_);
  LQCD_CHECK(static_cast<std::int64_t>(full_of_odd_.size()) == half_volume_);
}

}  // namespace lqcd
