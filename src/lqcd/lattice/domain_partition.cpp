#include "lqcd/lattice/domain_partition.h"

namespace lqcd {

DomainPartition::DomainPartition(const Geometry& geom, const Coord& block)
    : geom_(&geom), block_(block) {
  block_volume_ = 1;
  num_domains_ = 1;
  for (int mu = 0; mu < kNumDims; ++mu) {
    const auto mu_s = static_cast<std::size_t>(mu);
    LQCD_CHECK_MSG(block_[mu_s] >= 2 && block_[mu_s] % 2 == 0,
                   "block extent " << mu << " must be even and >= 2");
    LQCD_CHECK_MSG(geom.dim(mu) % block_[mu_s] == 0,
                   "lattice dim " << mu << " (" << geom.dim(mu)
                                  << ") not divisible by block extent "
                                  << block_[mu_s]);
    grid_[mu_s] = geom.dim(mu) / block_[mu_s];
    LQCD_CHECK_MSG(grid_[mu_s] % 2 == 0,
                   "domain grid extent " << mu << " (" << grid_[mu_s]
                                         << ") must be even for two-coloring");
    block_volume_ *= block_[mu_s];
    num_domains_ *= grid_[mu_s];
  }

  // ---- Shared local structure ------------------------------------------
  // Enumerate local coordinates: even-parity sites first, each group in
  // lexicographic order.
  const auto bv = static_cast<std::size_t>(block_volume_);
  local_coord_.resize(bv);
  local_of_lex_.resize(bv);
  auto& local_coord = local_coord_;
  auto& local_of_lex = local_of_lex_;
  {
    std::int32_t next_even = 0, next_odd = block_volume_ / 2;
    std::int32_t lex = 0;
    Coord c;
    for (c[3] = 0; c[3] < block_[3]; ++c[3])
      for (c[2] = 0; c[2] < block_[2]; ++c[2])
        for (c[1] = 0; c[1] < block_[1]; ++c[1])
          for (c[0] = 0; c[0] < block_[0]; ++c[0], ++lex) {
            const int par = (c[0] + c[1] + c[2] + c[3]) & 1;
            const std::int32_t l = (par == 0) ? next_even++ : next_odd++;
            local_of_lex[static_cast<std::size_t>(lex)] = l;
            local_coord[static_cast<std::size_t>(l)] = c;
          }
  }
  auto lex_of_coord = [&](const Coord& c) {
    return c[0] + block_[0] * (c[1] + block_[1] * (c[2] + block_[2] * c[3]));
  };

  local_nbr_.assign(bv * 2 * kNumDims, -1);
  faces_.resize(2 * kNumDims);
  for (std::int32_t l = 0; l < block_volume_; ++l) {
    const Coord& c = local_coord[static_cast<std::size_t>(l)];
    for (int mu = 0; mu < kNumDims; ++mu) {
      const auto mu_s = static_cast<std::size_t>(mu);
      const std::size_t base =
          static_cast<std::size_t>(l) * 2 * kNumDims + mu_s * 2;
      if (c[mu_s] + 1 < block_[mu_s]) {
        Coord n = c;
        ++n[mu_s];
        local_nbr_[base + 0] =
            local_of_lex[static_cast<std::size_t>(lex_of_coord(n))];
      } else {
        faces_[mu_s * 2 + 0].push_back(l);  // forward face
      }
      if (c[mu_s] > 0) {
        Coord n = c;
        --n[mu_s];
        local_nbr_[base + 1] =
            local_of_lex[static_cast<std::size_t>(lex_of_coord(n))];
      } else {
        faces_[mu_s * 2 + 1].push_back(l);  // backward face
      }
    }
  }

  // ---- Per-domain structure ---------------------------------------------
  sites_.resize(static_cast<std::size_t>(num_domains_) * bv);
  colors_.resize(static_cast<std::size_t>(num_domains_));
  by_color_.resize(2);
  site_domain_.resize(static_cast<std::size_t>(geom.volume()));
  site_local_.resize(static_cast<std::size_t>(geom.volume()));
  domain_nbr_.resize(static_cast<std::size_t>(num_domains_) * 2 * kNumDims);

  auto domain_index = [&](const Coord& dc) {
    return dc[0] + grid_[0] * (dc[1] + grid_[1] * (dc[2] + grid_[2] * dc[3]));
  };

  Coord dc;
  for (dc[3] = 0; dc[3] < grid_[3]; ++dc[3])
    for (dc[2] = 0; dc[2] < grid_[2]; ++dc[2])
      for (dc[1] = 0; dc[1] < grid_[1]; ++dc[1])
        for (dc[0] = 0; dc[0] < grid_[0]; ++dc[0]) {
          const int d = domain_index(dc);
          const auto d_s = static_cast<std::size_t>(d);
          colors_[d_s] = (dc[0] + dc[1] + dc[2] + dc[3]) & 1;
          by_color_[static_cast<std::size_t>(colors_[d_s])].push_back(d);
          Coord origin;
          for (int mu = 0; mu < kNumDims; ++mu)
            origin[static_cast<std::size_t>(mu)] =
                dc[static_cast<std::size_t>(mu)] *
                block_[static_cast<std::size_t>(mu)];
          for (std::int32_t l = 0; l < block_volume_; ++l) {
            Coord g = local_coord[static_cast<std::size_t>(l)];
            for (int mu = 0; mu < kNumDims; ++mu)
              g[static_cast<std::size_t>(mu)] +=
                  origin[static_cast<std::size_t>(mu)];
            const std::int32_t full = geom.index(g);
            sites_[d_s * bv + static_cast<std::size_t>(l)] = full;
            site_domain_[static_cast<std::size_t>(full)] = d;
            site_local_[static_cast<std::size_t>(full)] = l;
          }
          for (int mu = 0; mu < kNumDims; ++mu) {
            const auto mu_s = static_cast<std::size_t>(mu);
            Coord f = dc, b = dc;
            f[mu_s] = (dc[mu_s] + 1) % grid_[mu_s];
            b[mu_s] = (dc[mu_s] - 1 + grid_[mu_s]) % grid_[mu_s];
            domain_nbr_[d_s * 2 * kNumDims + mu_s * 2 + 0] = domain_index(f);
            domain_nbr_[d_s * 2 * kNumDims + mu_s * 2 + 1] = domain_index(b);
          }
        }
}

}  // namespace lqcd
