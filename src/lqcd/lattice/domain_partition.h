// Decomposition of the lattice into rectangular domains (Schwarz blocks).
//
// The lattice is tiled by identical blocks (default 8x4x4x4, the paper's
// L2-resident choice, Sec. III-B). Domains are two-colored like a
// checkerboard of blocks — the multiplicative Schwarz method alternates
// between the colors, and within one color all block solves are
// independent (paper Sec. III-D).
//
// Because every domain has the same block shape and an even-aligned
// origin, the local site ordering (even sites first, then odd — matching
// the global parity) and the local neighbor table are shared by all
// domains; only the local->global site map is per-domain.
#pragma once

#include <cstdint>
#include <vector>

#include "lqcd/lattice/geometry.h"

namespace lqcd {

class DomainPartition {
 public:
  /// Each lattice dimension must be divisible by the block extent, and the
  /// resulting domain-grid extent must be even (required for two-coloring
  /// of the multiplicative method, as in Lüscher's SAP).
  DomainPartition(const Geometry& geom, const Coord& block);

  const Geometry& geometry() const noexcept { return *geom_; }
  const Coord& block() const noexcept { return block_; }
  const Coord& grid() const noexcept { return grid_; }

  int num_domains() const noexcept { return num_domains_; }
  std::int32_t domain_volume() const noexcept { return block_volume_; }
  std::int32_t domain_half_volume() const noexcept {
    return block_volume_ / 2;
  }

  /// Two-coloring: 0 (black) or 1 (white).
  int color(int domain) const noexcept {
    return colors_[static_cast<std::size_t>(domain)];
  }
  const std::vector<int>& domains_of_color(int color) const noexcept {
    return by_color_[static_cast<std::size_t>(color)];
  }

  /// Global (full-lattice) site index of local site `l` of `domain`.
  /// Local ordering: even parity sites first (lexicographic in local
  /// coords), then odd.
  std::int32_t global_site(int domain, std::int32_t l) const noexcept {
    return sites_[static_cast<std::size_t>(domain) *
                      static_cast<std::size_t>(block_volume_) +
                  static_cast<std::size_t>(l)];
  }

  /// Local neighbor of local site l in direction (mu, dir), or -1 when the
  /// hop crosses the domain boundary. Shared by all domains.
  std::int32_t local_neighbor(std::int32_t l, int mu, Dir dir) const noexcept {
    const std::size_t base = static_cast<std::size_t>(l) * 2 * kNumDims +
                             static_cast<std::size_t>(mu) * 2;
    return local_nbr_[base + (dir == Dir::kForward ? 0 : 1)];
  }

  /// Domain that owns a full-lattice site, and its local index there.
  int domain_of_site(std::int32_t full) const noexcept {
    return site_domain_[static_cast<std::size_t>(full)];
  }
  std::int32_t local_of_site(std::int32_t full) const noexcept {
    return site_local_[static_cast<std::size_t>(full)];
  }

  /// Neighbor domain in direction (mu, dir) (periodic in the domain grid).
  int neighbor_domain(int domain, int mu, Dir dir) const noexcept {
    const std::size_t base = static_cast<std::size_t>(domain) * 2 * kNumDims +
                             static_cast<std::size_t>(mu) * 2;
    return domain_nbr_[base + (dir == Dir::kForward ? 0 : 1)];
  }

  /// Local indices of the sites on a face of the block: face(mu, fwd) is
  /// the x_mu == block_mu - 1 plane, face(mu, bwd) the x_mu == 0 plane.
  /// Shared by all domains.
  const std::vector<std::int32_t>& face_sites(int mu, Dir dir) const noexcept {
    return faces_[static_cast<std::size_t>(mu) * 2 +
                  (dir == Dir::kForward ? 0 : 1)];
  }

  /// Number of sites on a (mu) face.
  std::int32_t face_size(int mu) const noexcept {
    return static_cast<std::int32_t>(
        faces_[static_cast<std::size_t>(mu) * 2].size());
  }

  /// Block-local coordinate of a local site index (shared by all domains).
  const Coord& local_coord(std::int32_t l) const noexcept {
    return local_coord_[static_cast<std::size_t>(l)];
  }

  /// Local site index of a block-local coordinate.
  std::int32_t local_index(const Coord& c) const noexcept {
    const int lex =
        c[0] + block_[0] * (c[1] + block_[1] * (c[2] + block_[2] * c[3]));
    return local_of_lex_[static_cast<std::size_t>(lex)];
  }

 private:
  const Geometry* geom_;
  Coord block_{};
  Coord grid_{};
  int num_domains_ = 0;
  std::int32_t block_volume_ = 0;

  std::vector<Coord> local_coord_;        // [local] -> block coords
  std::vector<std::int32_t> local_of_lex_;  // [block lex] -> local
  std::vector<std::int32_t> sites_;       // [domain][local] -> global
  std::vector<std::int32_t> local_nbr_;   // [local][mu][dir] -> local or -1
  std::vector<int> colors_;               // [domain]
  std::vector<std::vector<int>> by_color_;
  std::vector<int> site_domain_;          // [global] -> domain
  std::vector<std::int32_t> site_local_;  // [global] -> local
  std::vector<int> domain_nbr_;           // [domain][mu][dir] -> domain
  std::vector<std::vector<std::int32_t>> faces_;  // [mu*2+dirbit] -> locals
};

}  // namespace lqcd
