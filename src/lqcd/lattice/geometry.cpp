#include "lqcd/lattice/geometry.h"

namespace lqcd {

Geometry::Geometry(const Coord& dims) : dims_(dims) {
  volume_ = 1;
  for (int mu = 0; mu < kNumDims; ++mu) {
    LQCD_CHECK_MSG(dims_[static_cast<size_t>(mu)] >= 2,
                   "lattice dimension " << mu << " must be >= 2");
    LQCD_CHECK_MSG(dims_[static_cast<size_t>(mu)] % 2 == 0,
                   "lattice dimension " << mu
                                        << " must be even for checkerboarding");
    volume_ *= dims_[static_cast<size_t>(mu)];
  }
  LQCD_CHECK_MSG(volume_ <= INT32_MAX, "lattice volume exceeds 32-bit indexing");

  const auto v = static_cast<std::size_t>(volume_);
  fwd_.resize(v * kNumDims);
  bwd_.resize(v * kNumDims);
  parity_.resize(v);
  for (std::int32_t i = 0; i < static_cast<std::int32_t>(volume_); ++i) {
    const Coord c = coord(i);
    parity_[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(parity(c));
    for (int mu = 0; mu < kNumDims; ++mu) {
      fwd_[static_cast<std::size_t>(i) * kNumDims + mu] =
          index(shift(c, mu, Dir::kForward));
      bwd_[static_cast<std::size_t>(i) * kNumDims + mu] =
          index(shift(c, mu, Dir::kBackward));
    }
  }
}

}  // namespace lqcd
