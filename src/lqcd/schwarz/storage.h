// Packed per-domain storage for the Schwarz preconditioner.
//
// Each domain owns a contiguous block holding its gauge links and clover
// blocks — the paper packs "all required data structures into one
// contiguous block" to avoid associativity misses (Sec. III-B), and we
// keep the same layout so the KNC cache model can reason about it.
//
// The storage scalar S is either float or Half (IEEE binary16). Matrices
// are down-converted on store and up-converted on load while all
// arithmetic stays in float — modelling the KNC's load/store up/down
// conversion exactly (Sec. III-B: links and clover shrink from 144 kB to
// 72 kB per 8x4^3 domain).
#pragma once

#include <algorithm>

#include "lqcd/base/checksum.h"
#include "lqcd/linalg/fermion_field.h"
#include "lqcd/linalg/fp16.h"
#include "lqcd/su3/clover_block.h"
#include "lqcd/su3/spinor.h"
#include "lqcd/su3/su3.h"

namespace lqcd {

template <class S>
struct StorageTraits;

template <>
struct StorageTraits<float> {
  static constexpr const char* name() noexcept { return "single"; }
  static float load(float v) noexcept { return v; }
  static float store(float v) noexcept { return v; }
};

template <>
struct StorageTraits<Half> {
  static constexpr const char* name() noexcept { return "half"; }
  static float load(Half v) noexcept { return half_to_float(v); }
  static Half store(float v) noexcept { return float_to_half(v); }
};

inline constexpr int kSU3Reals = 18;
inline constexpr int kCloverBlockReals = 36;

/// Store an SU(3) matrix as 18 consecutive storage scalars.
template <class S>
void store_su3(const SU3<float>& u, S* dst) noexcept {
  int k = 0;
  for (int i = 0; i < kNumColors; ++i)
    for (int j = 0; j < kNumColors; ++j) {
      dst[k++] = StorageTraits<S>::store(u.m[i][j].real());
      dst[k++] = StorageTraits<S>::store(u.m[i][j].imag());
    }
}

template <class S>
SU3<float> load_su3(const S* src) noexcept {
  SU3<float> u;
  int k = 0;
  for (int i = 0; i < kNumColors; ++i)
    for (int j = 0; j < kNumColors; ++j) {
      const float re = StorageTraits<S>::load(src[k++]);
      const float im = StorageTraits<S>::load(src[k++]);
      u.m[i][j] = Complex<float>(re, im);
    }
  return u;
}

/// Store a packed Hermitian 6x6 block as 36 storage scalars
/// (6 diagonal + 15 complex off-diagonal).
template <class S>
void store_block(const PackedHermitian6<float>& b, S* dst) noexcept {
  int k = 0;
  for (int i = 0; i < kCloverBlockDim; ++i)
    dst[k++] = StorageTraits<S>::store(b.diag[i]);
  for (int i = 0; i < kCloverOffDiag; ++i) {
    dst[k++] = StorageTraits<S>::store(b.offd[i].real());
    dst[k++] = StorageTraits<S>::store(b.offd[i].imag());
  }
}

template <class S>
PackedHermitian6<float> load_block(const S* src) noexcept {
  PackedHermitian6<float> b;
  int k = 0;
  for (int i = 0; i < kCloverBlockDim; ++i)
    b.diag[i] = StorageTraits<S>::load(src[k++]);
  for (int i = 0; i < kCloverOffDiag; ++i) {
    const float re = StorageTraits<S>::load(src[k++]);
    const float im = StorageTraits<S>::load(src[k++]);
    b.offd[i] = Complex<float>(re, im);
  }
  return b;
}

/// The three packed per-domain arrays a Schwarz store protects with
/// checksums; ABFT detection, repair, and injection address them by
/// (domain, component).
enum class PackedComponent {
  kGaugeLinks = 0,  ///< 8 links per local site, 18 scalars each
  kCloverDiag,      ///< even-site clover blocks (forward application)
  kCloverInv,       ///< odd-site inverse clover blocks (Schur solve)
};

inline constexpr int kNumPackedComponents = 3;

inline const char* to_string(PackedComponent c) noexcept {
  switch (c) {
    case PackedComponent::kGaugeLinks: return "gauge-links";
    case PackedComponent::kCloverDiag: return "clover-diag";
    case PackedComponent::kCloverInv: return "clover-inv";
  }
  return "?";
}

/// ABFT seed (ROADMAP): Fletcher-32 over a packed-scalar range. Computed
/// at pack time per domain and re-verified on demand, it catches the
/// PERSISTENT corruption class — a bit-flipped half/single-precision
/// gauge or clover block silently degrading convergence on every sweep —
/// that the residual-divergence SDC detector cannot see.
template <class S>
std::uint32_t packed_checksum(const S* data, std::size_t count) noexcept {
  return fletcher32_bytes(data, count * sizeof(S));
}

// ---------------------------------------------------------------------------
// Multi-RHS block spinors: SOA-over-RHS (paper Sec. VI).
//
// A batched domain visit wants every arithmetic operation of the block
// solve applied to ALL right-hand sides while a matrix element sits in
// registers. The layout that makes that a unit-stride SIMD loop is
// "structure of arrays over the RHS index": [site][real component][lane],
// with the lane (= RHS) index innermost and padded to a SIMD-friendly
// width. Padding lanes hold zeros, which every kernel of the block solve
// maps to zeros, so they are arithmetically inert.
// ---------------------------------------------------------------------------

/// Unit-stride SIMD quantum of the RHS lane dimension. 4 floats (128 bit)
/// keeps padding waste at <= 3 lanes for any nrhs; lane loops run over the
/// full padded count, so compilers are free to fuse consecutive groups
/// into wider (AVX2/AVX-512) vectors when available.
inline constexpr int kRhsSimdWidth = 4;

constexpr int padded_rhs_lanes(int nrhs) noexcept {
  return (nrhs + kRhsSimdWidth - 1) / kRhsSimdWidth * kRhsSimdWidth;
}

/// Multi-RHS block-spinor container for the lane-vectorized Schwarz block
/// solve: `sites x kSpinorReals` lane vectors, each a contiguous run of
/// `lanes()` floats (lanes() = nrhs padded up to kRhsSimdWidth).
class BlockSpinorLanes {
 public:
  BlockSpinorLanes() = default;
  // analyze-safe(parallel-reachability): the argument check guards values
  // fixed by the domain partition at setup; per-thread scratch construction
  // inside a sweep re-validates the same setup-time constants.
  BlockSpinorLanes(std::int32_t sites, int nrhs)
      : sites_(sites),
        nrhs_(nrhs),
        lanes_(padded_rhs_lanes(nrhs)),
        data_(static_cast<std::size_t>(sites) * kSpinorReals *
              static_cast<std::size_t>(padded_rhs_lanes(nrhs))) {
    LQCD_CHECK(sites >= 0 && nrhs >= 1);
  }

  std::int32_t sites() const noexcept { return sites_; }
  int nrhs() const noexcept { return nrhs_; }
  int lanes() const noexcept { return lanes_; }

  /// Pointer to the lane vector of (site, real component); components
  /// follow the Spinor memory order: comp = (spin * 3 + color) * 2 + reim.
  float* lane_vec(std::int32_t site, int comp) noexcept {
    return data_.data() +
           (static_cast<std::size_t>(site) * kSpinorReals +
            static_cast<std::size_t>(comp)) *
               static_cast<std::size_t>(lanes_);
  }
  const float* lane_vec(std::int32_t site, int comp) const noexcept {
    return const_cast<BlockSpinorLanes*>(this)->lane_vec(site, comp);
  }

  float* data() noexcept { return data_.data(); }
  const float* data() const noexcept { return data_.data(); }

  void zero() noexcept { std::fill(data_.begin(), data_.end(), 0.0f); }

 private:
  std::int32_t sites_ = 0;
  int nrhs_ = 0;
  int lanes_ = 0;
  AlignedVector<float> data_;
};

/// Gather bridge from per-RHS fields into the SOA-over-RHS layout:
/// out(i, comp, b) = fields[b][site_map ? site_map[i] : i].comp.
/// Padding lanes (b >= nrhs) are zero-filled.
// analyze-safe(parallel-reachability): the capacity check compares
// setup-time scratch dimensions against the partition's fixed domain
// sizes; it is invariant across sweep iterations.
inline void pack_rhs_lanes(const FermionField<float>* const* fields,
                           int nrhs, const std::int32_t* site_map,
                           std::int32_t nsites, BlockSpinorLanes& out) {
  LQCD_CHECK(out.sites() >= nsites && out.nrhs() == nrhs);
  const int lanes = out.lanes();
  for (std::int32_t i = 0; i < nsites; ++i) {
    const std::int32_t g = site_map != nullptr ? site_map[i] : i;
    for (int sp = 0; sp < kNumSpins; ++sp)
      for (int c = 0; c < kNumColors; ++c) {
        const int comp = (sp * kNumColors + c) * 2;
        float* re = out.lane_vec(i, comp);
        float* im = out.lane_vec(i, comp + 1);
        for (int b = 0; b < nrhs; ++b) {
          const Complex<float>& z = (*fields[b])[g].s[sp].c[c];
          re[b] = z.real();
          im[b] = z.imag();
        }
        for (int b = nrhs; b < lanes; ++b) re[b] = im[b] = 0.0f;
      }
  }
}

/// Scatter bridge back to per-RHS fields:
/// fields[b][site_map ? site_map[i] : i] = in(i, :, b).
inline void unpack_rhs_lanes(const BlockSpinorLanes& in,
                             const std::int32_t* site_map,
                             std::int32_t nsites,
                             FermionField<float>* const* fields, int nrhs) {
  LQCD_CHECK(in.sites() >= nsites && in.nrhs() == nrhs);
  for (std::int32_t i = 0; i < nsites; ++i) {
    const std::int32_t g = site_map != nullptr ? site_map[i] : i;
    for (int sp = 0; sp < kNumSpins; ++sp)
      for (int c = 0; c < kNumColors; ++c) {
        const int comp = (sp * kNumColors + c) * 2;
        const float* re = in.lane_vec(i, comp);
        const float* im = in.lane_vec(i, comp + 1);
        for (int b = 0; b < nrhs; ++b)
          (*fields[b])[g].s[sp].c[c] = Complex<float>(re[b], im[b]);
      }
  }
}

}  // namespace lqcd
