// Packed per-domain storage for the Schwarz preconditioner.
//
// Each domain owns a contiguous block holding its gauge links and clover
// blocks — the paper packs "all required data structures into one
// contiguous block" to avoid associativity misses (Sec. III-B), and we
// keep the same layout so the KNC cache model can reason about it.
//
// The storage scalar S is either float or Half (IEEE binary16). Matrices
// are down-converted on store and up-converted on load while all
// arithmetic stays in float — modelling the KNC's load/store up/down
// conversion exactly (Sec. III-B: links and clover shrink from 144 kB to
// 72 kB per 8x4^3 domain).
#pragma once

#include "lqcd/linalg/fp16.h"
#include "lqcd/su3/clover_block.h"
#include "lqcd/su3/su3.h"

namespace lqcd {

template <class S>
struct StorageTraits;

template <>
struct StorageTraits<float> {
  static constexpr const char* name() noexcept { return "single"; }
  static float load(float v) noexcept { return v; }
  static float store(float v) noexcept { return v; }
};

template <>
struct StorageTraits<Half> {
  static constexpr const char* name() noexcept { return "half"; }
  static float load(Half v) noexcept { return half_to_float(v); }
  static Half store(float v) noexcept { return float_to_half(v); }
};

inline constexpr int kSU3Reals = 18;
inline constexpr int kCloverBlockReals = 36;

/// Store an SU(3) matrix as 18 consecutive storage scalars.
template <class S>
void store_su3(const SU3<float>& u, S* dst) noexcept {
  int k = 0;
  for (int i = 0; i < kNumColors; ++i)
    for (int j = 0; j < kNumColors; ++j) {
      dst[k++] = StorageTraits<S>::store(u.m[i][j].real());
      dst[k++] = StorageTraits<S>::store(u.m[i][j].imag());
    }
}

template <class S>
SU3<float> load_su3(const S* src) noexcept {
  SU3<float> u;
  int k = 0;
  for (int i = 0; i < kNumColors; ++i)
    for (int j = 0; j < kNumColors; ++j) {
      const float re = StorageTraits<S>::load(src[k++]);
      const float im = StorageTraits<S>::load(src[k++]);
      u.m[i][j] = Complex<float>(re, im);
    }
  return u;
}

/// Store a packed Hermitian 6x6 block as 36 storage scalars
/// (6 diagonal + 15 complex off-diagonal).
template <class S>
void store_block(const PackedHermitian6<float>& b, S* dst) noexcept {
  int k = 0;
  for (int i = 0; i < kCloverBlockDim; ++i)
    dst[k++] = StorageTraits<S>::store(b.diag[i]);
  for (int i = 0; i < kCloverOffDiag; ++i) {
    dst[k++] = StorageTraits<S>::store(b.offd[i].real());
    dst[k++] = StorageTraits<S>::store(b.offd[i].imag());
  }
}

template <class S>
PackedHermitian6<float> load_block(const S* src) noexcept {
  PackedHermitian6<float> b;
  int k = 0;
  for (int i = 0; i < kCloverBlockDim; ++i)
    b.diag[i] = StorageTraits<S>::load(src[k++]);
  for (int i = 0; i < kCloverOffDiag; ++i) {
    const float re = StorageTraits<S>::load(src[k++]);
    const float im = StorageTraits<S>::load(src[k++]);
    b.offd[i] = Complex<float>(re, im);
  }
  return b;
}

}  // namespace lqcd
