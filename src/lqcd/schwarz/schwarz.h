// Schwarz domain-decomposition preconditioner (the paper's core method).
//
// Implements Table I's inner loop: ISchwarz sweeps of the (multiplicative,
// two-color, or additive) Schwarz method, where each block solve is
// Idomain iterations of even-odd-preconditioned MR on the domain's
// Dirichlet operator, entirely from the domain's packed storage.
//
// Key structural properties reproduced from the paper:
//  * Domains are processed independently within a color — no global sums
//    anywhere inside the preconditioner (Sec. II-D).
//  * After the block solve the residual is EXACTLY zero on the domain's
//    odd sites and equals the block-MR residual on the even sites, so the
//    global residual is maintained without re-applying the full operator.
//  * Inter-domain coupling (the R term of A = D + R) flows exclusively
//    through packed AOS half-spinor boundary buffers (Fig. 3): the
//    producing domain projects and packs while its data is hot; the
//    consuming domain multiplies by its own link (backward faces) and
//    reconstructs. In a multi-node run these same buffers are what is
//    handed to MPI (Sec. III-A, III-E).
//  * Gauge links and clover blocks are stored in storage scalar S — float
//    or Half — while all arithmetic is float (Sec. III-B).
#pragma once

#include <cstring>
#include <memory>
#include <utility>

#include "lqcd/dirac/wilson_clover.h"
#include "lqcd/lattice/domain_partition.h"
#include "lqcd/resilience/fault_injector.h"
#include "lqcd/resilience/resilient_solve.h"
#include "lqcd/schwarz/storage.h"
#include "lqcd/simd/dispatch.h"
#include "lqcd/solver/linear_operator.h"
#include "lqcd/solver/mr.h"

#if defined(LQCD_HAVE_OPENMP)
#include <omp.h>
#endif

namespace lqcd {

struct SchwarzParams {
  /// ISchwarz: number of full Schwarz sweeps. One multiplicative sweep
  /// solves ALL domains (black color phase, boundary exchange, then white
  /// phase, boundary exchange) — matching Table I, where each s iteration
  /// runs "the block solve on each domain".
  int schwarz_iterations = 16;
  int block_mr_iterations = 5;  ///< Idomain MR iterations per block solve
  bool additive = false;        ///< additive instead of multiplicative
  /// Paper Sec. VI (future work): store the preconditioner's SPINORS in
  /// half precision too, shrinking the working set and the boundary
  /// buffers further. Emulated by rounding the domain residual gather,
  /// the correction, and the face buffers through IEEE binary16.
  bool half_precision_spinors = false;
  /// Optional fault-injection hook: corrupts the sweep residual once per
  /// apply() (per the injector's own schedule), modelling SDC or fp16
  /// range exhaustion inside the preconditioner. nullptr = fault-free.
  FaultInjector* fault_injector = nullptr;
  /// Optional PARALLEL fault-injection hook (FaultSite::kDomainSolve): one
  /// opportunity per domain visit inside the OpenMP Schwarz sweeps, drawn
  /// through a ParallelFaultScope so the fired pattern and all counters are
  /// exactly independent of OMP_NUM_THREADS. A fired visit corrupts the
  /// domain's freshly packed RHS-0 face buffers (the data the next halo
  /// exchange consumes). Independent of `fault_injector` (which stays a
  /// serial once-per-apply hook); nullptr = off.
  FaultInjector* domain_fault_injector = nullptr;
  /// Optional in-solve packed-data fault hook (FaultSite::kPackedData):
  /// one opportunity per (sweep, packed component) — gauge links, clover
  /// diagonal, inverse clover — fired between Schwarz sweeps through a
  /// ParallelFaultScope, so detection latency of the ABFT checksum sweeps
  /// is measurable and the fired pattern is thread-count-invariant. Must
  /// be a DIFFERENT injector instance from domain_fault_injector (two
  /// live scopes must not share one pre-drawn budget); nullptr = off.
  FaultInjector* packed_fault_injector = nullptr;
  /// Process batched domain visits with the SOA-over-RHS lane kernels
  /// (paper Sec. VI): each packed matrix element is loaded once and
  /// applied to every RHS of the batch from registers, with lane-wise MR
  /// scalars and lane masking for converged RHS. When false — or for
  /// nrhs == 1, which must stay bit-identical to apply() — each RHS runs
  /// the scalar block solve in sequence.
  bool lane_vectorized = true;
};

struct SchwarzStats {
  std::int64_t applications = 0;   ///< M applications (one per RHS)
  std::int64_t block_solves = 0;
  std::int64_t mr_iterations = 0;  ///< total block-MR iterations
  std::int64_t flops = 0;          ///< floating-point ops executed
  std::int64_t boundary_bytes = 0; ///< bytes written to face buffers
  std::int64_t injected_faults = 0;     ///< faults the hook fired in sweeps
  std::int64_t precision_fallbacks = 0; ///< half->single retries (adapter)
  /// Times a domain's packed gauge+clover block was streamed from its
  /// backing storage. Charged once per domain VISIT — a batched sweep
  /// loads the matrices once and applies them to every RHS — so
  /// matrix_block_loads per sweep is independent of the batch width
  /// while block_solves scales with it (paper Sec. VI).
  std::int64_t matrix_block_loads = 0;
  std::int64_t sweeps = 0;  ///< full Schwarz sweeps executed

  void reset() { *this = SchwarzStats{}; }

  SchwarzStats& operator+=(const SchwarzStats& o) noexcept {
    applications += o.applications;
    block_solves += o.block_solves;
    mr_iterations += o.mr_iterations;
    flops += o.flops;
    boundary_bytes += o.boundary_bytes;
    injected_faults += o.injected_faults;
    precision_fallbacks += o.precision_fallbacks;
    matrix_block_loads += o.matrix_block_loads;
    sweeps += o.sweeps;
    return *this;
  }
};

inline SchwarzStats operator+(SchwarzStats a, const SchwarzStats& b) noexcept {
  a += b;
  return a;
}

/// Immutable-after-pack per-configuration state of the Schwarz method:
/// the packed per-domain gauge/clover matrices in storage scalar S, their
/// pack-time ABFT checksums, and the partition-derived geometry tables
/// (face-buffer offsets, partner maps, hop counts). One SchwarzSetup can
/// back any number of SchwarzPreconditioner instances — each of those
/// owns only mutable per-solve state (residuals, face buffers, per-thread
/// scratch, stats) — which is what lets a long-lived solver service pay
/// the packing cost once per gauge configuration and share it across
/// every solve on that configuration.
///
/// "Immutable" has one deliberate exception: the ABFT repair ladder
/// re-packs corrupted domains in place (repack_domain()/repack_all()), so
/// solves that may trigger in-solve repair must not run concurrently on a
/// shared setup.
template <class S>
class SchwarzSetup final : public PackedDomainStore {
 public:
  /// `op` must have prepare_schur() already called (the odd-site clover
  /// inverses are copied into the packed domain storage). The partition
  /// and operator must refer to the same geometry, and both must outlive
  /// the setup: the operator is the authoritative pack source the ABFT
  /// repair ladder re-packs corrupted domains from.
  SchwarzSetup(const DomainPartition& part,
               const WilsonCloverOperator<float>& op)
      : part_(&part), op_(&op) {
    LQCD_CHECK(&part.geometry() == &op.geometry());
    LQCD_CHECK_MSG(op.clover().has_inverses(),
                   "call prepare_schur() on the operator first");
    const int nd = part.num_domains();
    const std::int32_t vd = part.domain_volume();
    const std::int32_t hv = part.domain_half_volume();

    links_.resize(static_cast<std::size_t>(nd) * vd * kNumDims * kSU3Reals);
    diag_e_.resize(static_cast<std::size_t>(nd) * hv * 2 * kCloverBlockReals);
    inv_o_.resize(static_cast<std::size_t>(nd) * hv * 2 * kCloverBlockReals);

    // Pack every domain and stamp the ABFT checksums: one Fletcher-32 per
    // (domain, packed component) for localization plus the combined
    // per-domain value, re-verifiable via verify_checksums(), and the
    // field-level source checksums the repair ladder trusts.
    checksums_.resize(static_cast<std::size_t>(nd));
    sums_.resize(static_cast<std::size_t>(nd));
    for (int d = 0; d < nd; ++d) pack_domain(d);
    stamp_source();

    // Face buffer offsets. One buffer per domain face; a packed
    // half-spinor is 12 reals (48 B in single precision) per site — the
    // paper's Fig. 3: four sites fit three cache lines.
    std::int64_t off = 0;
    for (int mu = 0; mu < kNumDims; ++mu)
      for (int dirbit = 0; dirbit < 2; ++dirbit) {
        face_offset_[static_cast<std::size_t>(mu) * 2 +
                     static_cast<std::size_t>(dirbit)] = off;
        off += static_cast<std::int64_t>(part.face_size(mu)) * 12;
      }
    buffer_stride_ = off;

    // Partner map: producer face site -> consumer-local site index.
    for (int mu = 0; mu < kNumDims; ++mu) {
      const auto mu_s = static_cast<std::size_t>(mu);
      const auto& ffwd = part.face_sites(mu, Dir::kForward);
      const auto& fbwd = part.face_sites(mu, Dir::kBackward);
      partner_fwd_[mu_s].resize(ffwd.size());
      partner_bwd_[mu_s].resize(fbwd.size());
      for (std::size_t i = 0; i < ffwd.size(); ++i) {
        Coord c = part.local_coord(ffwd[i]);
        c[mu_s] = 0;  // consumer's backward face
        partner_fwd_[mu_s][i] = part.local_index(c);
      }
      for (std::size_t i = 0; i < fbwd.size(); ++i) {
        Coord c = part.local_coord(fbwd[i]);
        c[mu_s] = part.block()[mu_s] - 1;  // consumer's forward face
        partner_bwd_[mu_s][i] = part.local_index(c);
      }
    }

    // Count the in-domain hops of one parity->other-parity half dslash,
    // for flop accounting (168 flops per hop as in the paper's 1344/site
    // full-stencil count).
    hops_per_parity_ = 0;
    for (std::int32_t l = hv; l < vd; ++l)
      for (int mu = 0; mu < kNumDims; ++mu) {
        if (part.local_neighbor(l, mu, Dir::kForward) >= 0) ++hops_per_parity_;
        if (part.local_neighbor(l, mu, Dir::kBackward) >= 0)
          ++hops_per_parity_;
      }
  }

  const DomainPartition& partition() const noexcept { return *part_; }
  const WilsonCloverOperator<float>& op() const noexcept { return *op_; }

  /// Pack-time Fletcher-32 checksum of domain d's packed matrices.
  std::uint32_t domain_checksum(int d) const noexcept {
    return checksums_[static_cast<std::size_t>(d)];
  }
  /// Pack-time checksum of one packed component of domain d.
  std::uint32_t domain_checksum(int d, PackedComponent c) const noexcept {
    const DomainSums& s = sums_[static_cast<std::size_t>(d)];
    switch (c) {
      case PackedComponent::kGaugeLinks: return s.links;
      case PackedComponent::kCloverDiag: return s.diag;
      case PackedComponent::kCloverInv: return s.inv;
    }
    return 0;
  }

  // --- PackedDomainStore (the AbftGuard's view of this object) ---------

  int num_domains() const override { return part_->num_domains(); }
  const char* store_name() const override { return StorageTraits<S>::name(); }

  /// Append the indices of domains whose packed per-component checksums
  /// no longer match their pack-time stamps, honoring the scope flags.
  void find_corrupt_domains(bool check_gauge, bool check_clover,
                            std::vector<int>& bad) const override {
    const int nd = part_->num_domains();
    std::vector<unsigned char> corrupt(static_cast<std::size_t>(nd), 0);
    unsigned char* flags = corrupt.data();
#pragma omp parallel for schedule(static) default(none) \
    shared(nd, check_gauge, check_clover, flags)
    for (int d = 0; d < nd; ++d) {
      bool ok = true;
      if (check_gauge)
        ok = component_checksum(d, PackedComponent::kGaugeLinks) ==
             sums_[static_cast<std::size_t>(d)].links;
      if (ok && check_clover)
        ok = component_checksum(d, PackedComponent::kCloverDiag) ==
                 sums_[static_cast<std::size_t>(d)].diag &&
             component_checksum(d, PackedComponent::kCloverInv) ==
                 sums_[static_cast<std::size_t>(d)].inv;
      flags[d] = ok ? 0 : 1;
    }
    for (int d = 0; d < nd; ++d)
      if (flags[d] != 0) bad.push_back(d);
  }

  /// Rung-1 localized repair: re-pack one domain from the source operator
  /// and restamp its checksums. Only valid while the source verifies
  /// (source_intact()), or a relocation of the error would be stamped as
  /// truth.
  void repack_domain(int d) override { pack_domain(d); }

  /// Re-verify the pack source (float gauge field + clover blocks)
  /// against the field-level checksums stamped at pack time.
  bool source_intact() const override {
    return op_->gauge().content_checksum() == source_gauge_sum_ &&
           clover_content_checksum() == source_clover_sum_;
  }

  /// Rung-2 repair service: after DDSolver rebuilt the source operator
  /// from the double master, re-pack every domain and restamp the source
  /// checksums against the repaired field.
  void repack_all() {
    for (int d = 0; d < part_->num_domains(); ++d) pack_domain(d);
    stamp_source();
  }

  /// Re-verify every domain's packed gauge/clover bytes against the
  /// pack-time checksums; returns the number of mismatching domains.
  int verify_checksums() const {
    std::vector<int> bad;
    find_corrupt_domains(true, true, bad);
    return static_cast<int>(bad.size());
  }

  /// Test hook: let `injector` corrupt the packed link storage in place
  /// (FaultSite::kPackedMatrices) — the persistent-fault class the
  /// checksums exist to catch. Returns true iff a fault fired.
  bool corrupt_packed(FaultInjector& injector) {
    return injector.maybe_corrupt_reals(
        links_.data(), static_cast<std::int64_t>(links_.size()),
        FaultSite::kPackedMatrices);
  }

  /// Deterministic test hook: aim `injector` at ONE (domain, component)
  /// range (FaultSite::kPackedData), so tests can assert exactly which
  /// domain the sweep localizes and that the repair is bit-exact.
  bool corrupt_packed(FaultInjector& injector, int d, PackedComponent comp) {
    S* data = nullptr;
    std::int64_t count = 0;
    component_range(d, comp, data, count);
    return injector.maybe_corrupt_reals(data, count, FaultSite::kPackedData);
  }

  /// Per-domain working-set bytes of links + clover (+inverse clover)
  /// storage — the quantity the paper fits into the 512 kB L2.
  std::int64_t domain_matrix_bytes() const noexcept {
    const std::int64_t vd = part_->domain_volume();
    return vd * kNumDims * kSU3Reals * static_cast<std::int64_t>(sizeof(S)) +
           vd * 2 * kCloverBlockReals * static_cast<std::int64_t>(sizeof(S));
  }

  // Packed-array accessors: the const overloads are the primary
  // implementations (they never mutate), and the non-const ones forward —
  // so const callers like verify_checksums() need no const_cast chain.
  const S* link_ptr(int d, std::int32_t l, int mu) const noexcept {
    return links_.data() +
           ((static_cast<std::size_t>(d) *
                 static_cast<std::size_t>(part_->domain_volume()) +
             static_cast<std::size_t>(l)) *
                kNumDims +
            static_cast<std::size_t>(mu)) *
               kSU3Reals;
  }
  S* link_ptr(int d, std::int32_t l, int mu) noexcept {
    return const_cast<S*>(std::as_const(*this).link_ptr(d, l, mu));
  }
  const S* diag_e_ptr(int d, std::int32_t le, int chi) const noexcept {
    return diag_e_.data() +
           ((static_cast<std::size_t>(d) *
                 static_cast<std::size_t>(part_->domain_half_volume()) +
             static_cast<std::size_t>(le)) *
                2 +
            static_cast<std::size_t>(chi)) *
               kCloverBlockReals;
  }
  S* diag_e_ptr(int d, std::int32_t le, int chi) noexcept {
    return const_cast<S*>(std::as_const(*this).diag_e_ptr(d, le, chi));
  }
  const S* inv_o_ptr(int d, std::int32_t lo, int chi) const noexcept {
    return inv_o_.data() +
           ((static_cast<std::size_t>(d) *
                 static_cast<std::size_t>(part_->domain_half_volume()) +
             static_cast<std::size_t>(lo)) *
                2 +
            static_cast<std::size_t>(chi)) *
               kCloverBlockReals;
  }
  S* inv_o_ptr(int d, std::int32_t lo, int chi) noexcept {
    return const_cast<S*>(std::as_const(*this).inv_o_ptr(d, lo, chi));
  }

  /// Whole-store mutable ranges, one per packed component — the targets
  /// of the between-sweeps packed-data fault hook.
  S* links_data() noexcept { return links_.data(); }
  std::int64_t links_count() const noexcept {
    return static_cast<std::int64_t>(links_.size());
  }
  S* diag_e_data() noexcept { return diag_e_.data(); }
  std::int64_t diag_e_count() const noexcept {
    return static_cast<std::int64_t>(diag_e_.size());
  }
  S* inv_o_data() noexcept { return inv_o_.data(); }
  std::int64_t inv_o_count() const noexcept {
    return static_cast<std::int64_t>(inv_o_.size());
  }

  /// Mutable storage range of one packed component of domain d (the
  /// deterministic corruption hook's target).
  void component_range(int d, PackedComponent c, S*& data,
                       std::int64_t& count) noexcept {
    const std::int64_t vd = part_->domain_volume();
    const std::int64_t hv = part_->domain_half_volume();
    switch (c) {
      case PackedComponent::kGaugeLinks:
        data = link_ptr(d, 0, 0);
        count = vd * kNumDims * kSU3Reals;
        break;
      case PackedComponent::kCloverDiag:
        data = diag_e_ptr(d, 0, 0);
        count = hv * 2 * kCloverBlockReals;
        break;
      case PackedComponent::kCloverInv:
        data = inv_o_ptr(d, 0, 0);
        count = hv * 2 * kCloverBlockReals;
        break;
    }
  }

  /// Fresh Fletcher-32 of one packed component of domain d (what the
  /// parallel verification compares against the pack-time stamp).
  std::uint32_t component_checksum(int d, PackedComponent c) const noexcept {
    const auto vd = static_cast<std::size_t>(part_->domain_volume());
    const auto hv = static_cast<std::size_t>(part_->domain_half_volume());
    switch (c) {
      case PackedComponent::kGaugeLinks:
        return packed_checksum(link_ptr(d, 0, 0), vd * kNumDims * kSU3Reals);
      case PackedComponent::kCloverDiag:
        return packed_checksum(diag_e_ptr(d, 0, 0),
                               hv * 2 * kCloverBlockReals);
      case PackedComponent::kCloverInv:
        return packed_checksum(inv_o_ptr(d, 0, 0),
                               hv * 2 * kCloverBlockReals);
    }
    return 0;
  }

  // Partition-derived geometry tables, shared read-only by every
  // preconditioner on this setup.
  std::int64_t face_buffer_stride() const noexcept { return buffer_stride_; }
  std::int64_t face_offset(int mu, Dir dir) const noexcept {
    return face_offset_[static_cast<std::size_t>(mu) * 2 +
                        (dir == Dir::kForward ? 0 : 1)];
  }
  const std::vector<std::int32_t>& partner_fwd(int mu) const noexcept {
    return partner_fwd_[static_cast<std::size_t>(mu)];
  }
  const std::vector<std::int32_t>& partner_bwd(int mu) const noexcept {
    return partner_bwd_[static_cast<std::size_t>(mu)];
  }
  std::int64_t hops_per_parity() const noexcept { return hops_per_parity_; }

 private:
  /// Per-domain pack-time checksums, one per packed component, so a
  /// verification failure localizes to (domain, component).
  struct DomainSums {
    std::uint32_t links = 0;
    std::uint32_t diag = 0;
    std::uint32_t inv = 0;
  };

  std::uint32_t compute_domain_checksum(int d) const noexcept {
    const auto vd = static_cast<std::size_t>(part_->domain_volume());
    const auto hv = static_cast<std::size_t>(part_->domain_half_volume());
    Fletcher32 f;
    f.update(link_ptr(d, 0, 0), vd * kNumDims * kSU3Reals * sizeof(S));
    f.update(diag_e_ptr(d, 0, 0), hv * 2 * kCloverBlockReals * sizeof(S));
    f.update(inv_o_ptr(d, 0, 0), hv * 2 * kCloverBlockReals * sizeof(S));
    return f.value();
  }

  /// Pack (or re-pack) domain d from the source operator and stamp its
  /// per-component and combined checksums. The constructor's pack loop
  /// and the ABFT rung-1 repair are the same code path, so a repair is
  /// bit-identical to the original pack by construction.
  void pack_domain(int d) {
    const std::int32_t vd = part_->domain_volume();
    const std::int32_t hv = part_->domain_half_volume();
    const auto& gauge = op_->gauge();
    const auto& clover = op_->clover();
    for (std::int32_t l = 0; l < vd; ++l) {
      const std::int32_t g = part_->global_site(d, l);
      for (int mu = 0; mu < kNumDims; ++mu)
        store_su3(gauge.link(g, mu), link_ptr(d, l, mu));
      if (l < hv) {
        for (int chi = 0; chi < 2; ++chi)
          store_block(clover.block(g, chi), diag_e_ptr(d, l, chi));
      } else {
        for (int chi = 0; chi < 2; ++chi)
          store_block(clover.inv_block(g, chi), inv_o_ptr(d, l - hv, chi));
      }
    }
    DomainSums& s = sums_[static_cast<std::size_t>(d)];
    s.links = component_checksum(d, PackedComponent::kGaugeLinks);
    s.diag = component_checksum(d, PackedComponent::kCloverDiag);
    s.inv = component_checksum(d, PackedComponent::kCloverInv);
    checksums_[static_cast<std::size_t>(d)] = compute_domain_checksum(d);
  }

  /// Field-level Fletcher-32 over the source clover blocks (forward and
  /// inverse), the clover half of the source_intact() verification.
  std::uint32_t clover_content_checksum() const {
    const auto volume =
        static_cast<std::int32_t>(part_->geometry().volume());
    const auto& clover = op_->clover();
    Fletcher32 f;
    for (std::int32_t g = 0; g < volume; ++g)
      for (int chi = 0; chi < 2; ++chi) {
        f.update(&clover.block(g, chi), sizeof(PackedHermitian6<float>));
        f.update(&clover.inv_block(g, chi), sizeof(PackedHermitian6<float>));
      }
    return f.value();
  }

  void stamp_source() {
    source_gauge_sum_ = op_->gauge().content_checksum();
    source_clover_sum_ = clover_content_checksum();
  }

  const DomainPartition* part_;
  const WilsonCloverOperator<float>* op_;  ///< authoritative pack source

  AlignedVector<S> links_;   // [domain][local][mu][18]
  AlignedVector<S> diag_e_;  // [domain][even local][chi][36]
  AlignedVector<S> inv_o_;   // [domain][odd local][chi][36]
  std::vector<std::uint32_t> checksums_;  // pack-time ABFT, one per domain
  std::vector<DomainSums> sums_;          // per-component localization
  std::uint32_t source_gauge_sum_ = 0;    // field-level source checksums
  std::uint32_t source_clover_sum_ = 0;

  std::int64_t buffer_stride_ = 0;
  std::int64_t face_offset_[2 * kNumDims] = {};
  std::vector<std::int32_t> partner_fwd_[kNumDims];
  std::vector<std::int32_t> partner_bwd_[kNumDims];
  std::int64_t hops_per_parity_ = 0;
};

template <class S>
class SchwarzPreconditioner final : public BatchPreconditioner<float>,
                                    public PackedDomainStore {
 public:
  /// Legacy one-shot form: build (and own) a private SchwarzSetup. `op`
  /// must have prepare_schur() already called; partition and operator
  /// must outlive the preconditioner.
  SchwarzPreconditioner(const DomainPartition& part,
                        const WilsonCloverOperator<float>& op,
                        const SchwarzParams& params)
      : SchwarzPreconditioner(std::make_shared<SchwarzSetup<S>>(part, op),
                              params) {}

  /// Shared-setup form: attach to an existing packed per-configuration
  /// setup. Only mutable per-solve state (residuals, face buffers,
  /// per-thread scratch, stats) is allocated here, so constructing more
  /// preconditioners on the same configuration costs no re-packing.
  SchwarzPreconditioner(std::shared_ptr<SchwarzSetup<S>> setup,
                        const SchwarzParams& params)
      : setup_(std::move(setup)),
        part_(&setup_->partition()),
        params_(params),
        buffer_stride_(setup_->face_buffer_stride()),
        hops_per_parity_(setup_->hops_per_parity()) {
    LQCD_CHECK(setup_ != nullptr);
    // Resolve the SIMD dispatch table now: a bad LQCD_SIMD_BACKEND fails
    // at construction, not mid-solve (and not never, on paths that stay
    // off the dispatched lane kernels, e.g. single-RHS solve_domain).
    simd::kernels();
    buffers_.resize(static_cast<std::size_t>(part_->num_domains()) *
                    static_cast<std::size_t>(buffer_stride_));
    ensure_scratch();
    r_batch_.resize(1);  // residual(0) is addressable even before apply()
  }

  const SchwarzStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_.reset(); }
  /// Recorded by the resilient adapter when a non-finite sweep output
  /// forced a retry on the single-precision fallback matrices.
  void note_precision_fallback() noexcept { ++stats_.precision_fallbacks; }
  const SchwarzParams& params() const noexcept { return params_; }
  const DomainPartition& partition() const noexcept { return *part_; }
  /// The shared per-configuration packed state backing this instance.
  const std::shared_ptr<SchwarzSetup<S>>& setup() const noexcept {
    return setup_;
  }

  // Checksum/ABFT surface: all of it lives on the shared setup; these
  // forwarders keep the historical one-object API (and the
  // PackedDomainStore registration path in DDSolver) working unchanged.

  /// Pack-time Fletcher-32 checksum of domain d's packed matrices.
  std::uint32_t domain_checksum(int d) const noexcept {
    return setup_->domain_checksum(d);
  }
  /// Pack-time checksum of one packed component of domain d.
  std::uint32_t domain_checksum(int d, PackedComponent c) const noexcept {
    return setup_->domain_checksum(d, c);
  }

  /// Re-verify every domain's packed gauge/clover bytes against the
  /// pack-time checksums (OpenMP-parallel over domains; the per-domain
  /// verdicts are disjoint writes, so the result is thread-count
  /// invariant); returns the number of mismatching domains (0 = intact).
  int verify_checksums() const { return setup_->verify_checksums(); }

  // --- PackedDomainStore (the AbftGuard's view of this object) ---------

  int num_domains() const override { return setup_->num_domains(); }
  const char* store_name() const override { return setup_->store_name(); }
  void find_corrupt_domains(bool check_gauge, bool check_clover,
                            std::vector<int>& bad) const override {
    setup_->find_corrupt_domains(check_gauge, check_clover, bad);
  }
  void repack_domain(int d) override { setup_->repack_domain(d); }
  bool source_intact() const override { return setup_->source_intact(); }

  /// Rung-2 repair service: after DDSolver rebuilt the source operator
  /// from the double master, re-pack every domain and restamp the source
  /// checksums against the repaired field.
  void repack_all() { setup_->repack_all(); }

  /// Test hook: let `injector` corrupt the packed link storage in place
  /// (FaultSite::kPackedMatrices) — the persistent-fault class the
  /// checksums exist to catch. Returns true iff a fault fired.
  bool corrupt_packed(FaultInjector& injector) {
    return setup_->corrupt_packed(injector);
  }

  /// Deterministic test hook: aim `injector` at ONE (domain, component)
  /// range (FaultSite::kPackedData), so tests can assert exactly which
  /// domain the sweep localizes and that the repair is bit-exact.
  bool corrupt_packed(FaultInjector& injector, int d, PackedComponent comp) {
    return setup_->corrupt_packed(injector, d, comp);
  }

  /// Per-domain working-set bytes of links + clover (+inverse clover)
  /// storage — the quantity the paper fits into the 512 kB L2.
  std::int64_t domain_matrix_bytes() const noexcept {
    return setup_->domain_matrix_bytes();
  }

  /// u = M f: ISchwarz Schwarz sweeps starting from u = 0.
  void apply(const FermionField<float>& f, FermionField<float>& u) override {
    const FermionField<float>* fp[1] = {&f};
    FermionField<float>* up[1] = {&u};
    apply_impl(1, fp, up);
  }

  /// Batched u[b] = M f[b] over nrhs right-hand sides (paper Sec. VI).
  /// The sweep loop runs domains on the OUTSIDE and RHS on the INSIDE, so
  /// each domain's packed gauge+clover matrices are streamed once per
  /// sweep regardless of nrhs — matrix_block_loads counts exactly that.
  /// With nrhs = 1 this executes the identical operation sequence as
  /// apply() (bit-identical results).
  void apply_batch(const std::vector<const FermionField<float>*>& f,
                   const std::vector<FermionField<float>*>& u) override {
    LQCD_CHECK_MSG(!f.empty() && f.size() == u.size(),
                   "apply_batch needs matching, non-empty f/u batches");
    apply_impl(static_cast<int>(f.size()), f.data(), u.data());
  }

  /// The residual field of RHS b maintained during the last apply() /
  /// apply_batch() — exposed for verification (r == f - A u holds exactly
  /// for S = float).
  const FermionField<float>& residual(int b = 0) const noexcept {
    return r_batch_[static_cast<std::size_t>(b)];
  }

 private:
  struct Scratch {
    FermionField<float> r_loc, z, rhs_e, mr_r, mr_ar, t1_o, t2_o;
    SchwarzStats stats;  // merged into stats_ at the end of apply()

    // Lane-vectorized (SOA-over-RHS) working set, allocated lazily on the
    // first batched domain visit and reused until the batch width changes.
    BlockSpinorLanes r_lanes, z_lanes;  // full-volume (vd sites)
    BlockSpinorLanes rhs_e_lanes, mr_r_lanes, mr_ar_lanes, t1_lanes,
        t2_lanes;                    // half-volume (hv sites)
    AlignedVector<float> h1, h2;     // per-site half-spinor lane temps
    AlignedVector<float> s24;        // per-site full-spinor lane temp
    LaneMRState mr_state;
    std::vector<std::int32_t> site_map;  // local -> global site of domain
    int lanes_nrhs = 0;

    void ensure_lanes(std::int32_t vd, std::int32_t hv, int nrhs) {
      if (lanes_nrhs == nrhs) return;
      r_lanes = BlockSpinorLanes(vd, nrhs);
      z_lanes = BlockSpinorLanes(vd, nrhs);
      rhs_e_lanes = BlockSpinorLanes(hv, nrhs);
      mr_r_lanes = BlockSpinorLanes(hv, nrhs);
      mr_ar_lanes = BlockSpinorLanes(hv, nrhs);
      t1_lanes = BlockSpinorLanes(hv, nrhs);
      t2_lanes = BlockSpinorLanes(hv, nrhs);
      const auto L = static_cast<std::size_t>(padded_rhs_lanes(nrhs));
      h1.resize(12 * L);
      h2.resize(12 * L);
      s24.resize(static_cast<std::size_t>(kSpinorReals) * L);
      site_map.resize(static_cast<std::size_t>(vd));
      lanes_nrhs = nrhs;
    }
  };

  /// Grow the per-thread scratch pool to the CURRENT OpenMP thread limit.
  /// The pool is sized at construction, but omp_set_num_threads() may raise
  /// the limit afterwards; without this re-check the sweep loops would index
  /// past the end of scratch_. Existing slots (and their warm buffers) are
  /// kept; only the new tail is allocated. Never called from inside a
  /// parallel region.
  void ensure_scratch() {
    int nthreads = 1;
#if defined(LQCD_HAVE_OPENMP)
    nthreads = omp_get_max_threads();
#endif
    if (static_cast<int>(scratch_.size()) >= nthreads) return;
    const std::int32_t vd = part_->domain_volume();
    const std::int32_t hv = part_->domain_half_volume();
    const std::size_t old_size = scratch_.size();
    scratch_.resize(static_cast<std::size_t>(nthreads));
    for (std::size_t t = old_size; t < scratch_.size(); ++t) {
      auto& sc = scratch_[t];
      sc.r_loc = FermionField<float>(vd);
      sc.z = FermionField<float>(vd);
      sc.rhs_e = FermionField<float>(hv);
      sc.mr_r = FermionField<float>(hv);
      sc.mr_ar = FermionField<float>(hv);
      sc.t1_o = FermionField<float>(hv);
      sc.t2_o = FermionField<float>(hv);
    }
  }

  void apply_impl(int nrhs, const FermionField<float>* const* f,
                  FermionField<float>* const* u) {
    const auto volume = part_->geometry().volume();
    const int nd = part_->num_domains();
    ensure_scratch();
    // Validate the WHOLE batch before touching any output: a RHS with a
    // mismatched lattice geometry must not leave earlier RHS half-updated.
    for (int b = 0; b < nrhs; ++b) {
      LQCD_CHECK_MSG(f[b]->size() == volume && u[b]->size() == volume,
                     "apply_batch: RHS " << b
                         << " has a mismatched lattice geometry (f size "
                         << f[b]->size() << ", u size " << u[b]->size()
                         << ", preconditioner volume " << volume << ")");
    }
    if (static_cast<int>(r_batch_.size()) < nrhs)
      r_batch_.resize(static_cast<std::size_t>(nrhs));
    const std::size_t need_buf = static_cast<std::size_t>(nrhs) *
                                 static_cast<std::size_t>(nd) *
                                 static_cast<std::size_t>(buffer_stride_);
    if (buffers_.size() < need_buf) buffers_.resize(need_buf);

    for (int b = 0; b < nrhs; ++b) {
      u[b]->zero();
      auto& r = r_batch_[static_cast<std::size_t>(b)];
      if (r.size() != volume) r = FermionField<float>(volume);
      copy(*f[b], r);
      ++stats_.applications;
      if (params_.fault_injector != nullptr &&
          params_.fault_injector->maybe_corrupt(r, FaultSite::kSchwarzSweep))
        ++stats_.injected_faults;
    }
    r_ptrs_.resize(static_cast<std::size_t>(nrhs));
    for (int b = 0; b < nrhs; ++b)
      r_ptrs_[static_cast<std::size_t>(b)] =
          &r_batch_[static_cast<std::size_t>(b)];

    // Deterministic parallel fault hook: pre-draw one fire decision per
    // domain VISIT (schwarz_iterations x num_domains keys, serial, from the
    // injector's own RNG stream), then let the sweep threads consult the
    // read-only decision table and record stats in per-thread shards. The
    // fired pattern and every counter are a pure function of the injector
    // seed and the visit schedule — exactly OMP_NUM_THREADS-invariant.
    ParallelFaultScope domain_scope(
        params_.domain_fault_injector, FaultSite::kDomainSolve,
        static_cast<std::int64_t>(params_.schwarz_iterations) * nd,
        static_cast<int>(scratch_.size()));
    domain_scope_ = &domain_scope;
    // In-solve packed-data upsets (FaultSite::kPackedData): one pre-drawn
    // opportunity per (sweep, packed component), fired on thread 0 in the
    // serial gap between sweeps. Routing the serial firing through a scope
    // keeps the decisions, the corrupted element, and all counters a pure
    // function of (seed, schedule) — the same thread-count-invariance
    // contract as the domain-visit hook above.
    ParallelFaultScope packed_scope(
        params_.packed_fault_injector, FaultSite::kPackedData,
        static_cast<std::int64_t>(params_.schwarz_iterations) *
            kNumPackedComponents,
        1);
    const std::int64_t n_black =
        static_cast<std::int64_t>(part_->domains_of_color(0).size());

    for (int s = 0; s < params_.schwarz_iterations; ++s) {
      ++stats_.sweeps;
      const std::int64_t visit_base = static_cast<std::int64_t>(s) * nd;
      if (params_.additive) {
        sweep_all_domains(nrhs, u, visit_base);
        apply_all_halo_updates(nrhs);
      } else {
        // Multiplicative: black phase, exchange, white phase, exchange.
        sweep_color(0, nrhs, u, visit_base);
        apply_halo_updates(0, nrhs);
        sweep_color(1, nrhs, u, visit_base + n_black);
        apply_halo_updates(1, nrhs);
      }
      if (params_.packed_fault_injector != nullptr)
        inject_packed_between_sweeps(packed_scope, s);
    }
    domain_scope_ = nullptr;
    domain_scope.merge();  // fold per-thread shards into the injector stats
    packed_scope.merge();

    for (auto& sc : scratch_) {
      stats_.block_solves += sc.stats.block_solves;
      stats_.mr_iterations += sc.stats.mr_iterations;
      stats_.flops += sc.stats.flops;
      stats_.boundary_bytes += sc.stats.boundary_bytes;
      stats_.matrix_block_loads += sc.stats.matrix_block_loads;
      stats_.injected_faults += sc.stats.injected_faults;
      sc.stats.reset();
    }
  }

  /// Fire the pre-drawn packed-data upsets of sweep `s`: one key per
  /// packed component, each targeting that component's whole storage (the
  /// corrupted element is drawn from the key's own RNG). Serial — runs in
  /// the gap between sweeps, exactly where a long-lived upset would bite.
  void inject_packed_between_sweeps(ParallelFaultScope& scope, int s) {
    const std::int64_t k0 =
        static_cast<std::int64_t>(s) * kNumPackedComponents;
    if (scope.maybe_corrupt_reals(0, k0, setup_->links_data(),
                                  setup_->links_count()))
      ++stats_.injected_faults;
    if (scope.maybe_corrupt_reals(0, k0 + 1, setup_->diag_e_data(),
                                  setup_->diag_e_count()))
      ++stats_.injected_faults;
    if (scope.maybe_corrupt_reals(0, k0 + 2, setup_->inv_o_data(),
                                  setup_->inv_o_count()))
      ++stats_.injected_faults;
  }

  /// Face-buffer slot of (RHS b, domain d): RHS-major so the nrhs = 1
  /// layout coincides with the historical one-buffer-per-domain layout.
  std::int64_t buffer_slot(int b, int d) const noexcept {
    return static_cast<std::int64_t>(b) * part_->num_domains() + d;
  }

  // Packed-array accessors: thin forwarders into the shared setup so the
  // kernel bodies below read exactly as they did when the arrays were
  // members.
  const S* link_ptr(int d, std::int32_t l, int mu) const noexcept {
    return setup_->link_ptr(d, l, mu);
  }
  const S* diag_e_ptr(int d, std::int32_t le, int chi) const noexcept {
    return setup_->diag_e_ptr(d, le, chi);
  }
  const S* inv_o_ptr(int d, std::int32_t lo, int chi) const noexcept {
    return setup_->inv_o_ptr(d, lo, chi);
  }
  float* buffer_ptr(std::int64_t slot, int mu, Dir dir) noexcept {
    return buffers_.data() + static_cast<std::size_t>(slot) *
                                 static_cast<std::size_t>(buffer_stride_) +
           static_cast<std::size_t>(setup_->face_offset(mu, dir));
  }

  /// Apply the two chirality blocks at (d, site) to a spinor.
  static void apply_block_pair(const PackedHermitian6<float>& b0,
                               const PackedHermitian6<float>& b1,
                               const Spinor<float>& in,
                               Spinor<float>& out) noexcept {
    Complex<float> xv[kCloverBlockDim], yv[kCloverBlockDim];
    const PackedHermitian6<float>* blocks[2] = {&b0, &b1};
    for (int chi = 0; chi < 2; ++chi) {
      for (int sl = 0; sl < 2; ++sl)
        for (int c = 0; c < kNumColors; ++c)
          xv[sl * kNumColors + c] = in.s[2 * chi + sl].c[c];
      blocks[chi]->apply(xv, yv);
      for (int sl = 0; sl < 2; ++sl)
        for (int c = 0; c < kNumColors; ++c)
          out.s[2 * chi + sl].c[c] = yv[sl * kNumColors + c];
    }
  }

  /// Half dslash restricted to the domain (Dirichlet: out-of-domain hops
  /// dropped): out = D_{out_parity, 1-out_parity} in. Both fields are
  /// half-volume, indexed by the parity-local index (even local l for
  /// parity 0, l - hv for parity 1).
  void local_dslash_impl(int d, int out_parity, const FermionField<float>& in,
                         FermionField<float>& out) const {
    const std::int32_t hv = part_->domain_half_volume();
    const std::int32_t l0 = out_parity == 0 ? 0 : hv;
    const std::int32_t in_off = out_parity == 0 ? hv : 0;
    for (std::int32_t i = 0; i < hv; ++i) {
      const std::int32_t l = l0 + i;
      Spinor<float> acc;
      acc.zero();
      for (int mu = 0; mu < kNumDims; ++mu) {
        const std::int32_t lf = part_->local_neighbor(l, mu, Dir::kForward);
        if (lf >= 0) {
          const HalfSpinor<float> h = project(in[lf - in_off], mu, -1);
          reconstruct_add(acc, mul(load_su3(link_ptr(d, l, mu)), h), mu, -1);
        }
        const std::int32_t lb = part_->local_neighbor(l, mu, Dir::kBackward);
        if (lb >= 0) {
          const HalfSpinor<float> h = project(in[lb - in_off], mu, +1);
          reconstruct_add(acc, mul_adj(load_su3(link_ptr(d, lb, mu)), h), mu,
                          +1);
        }
      }
      out[i] = acc;
    }
  }

  /// out_e = Dtilde_ee in_e within domain d (Dirichlet boundaries).
  void local_schur(int d, const FermionField<float>& in_e,
                   FermionField<float>& out_e, Scratch& sc) const {
    const std::int32_t hv = part_->domain_half_volume();
    local_dslash_impl(d, 1, in_e, sc.t1_o);  // D_oe in_e
    for (std::int32_t lo = 0; lo < hv; ++lo) {
      apply_block_pair(
          load_block(inv_o_ptr(d, lo, 0)),
          load_block(inv_o_ptr(d, lo, 1)), sc.t1_o[lo], sc.t2_o[lo]);
    }
    local_dslash_impl(d, 0, sc.t2_o, out_e);  // D_eo A_oo^-1 D_oe in_e
    for (std::int32_t le = 0; le < hv; ++le) {
      Spinor<float> diag;
      apply_block_pair(load_block(diag_e_ptr(d, le, 0)),
                       load_block(diag_e_ptr(d, le, 1)), in_e[le],
                       diag);
      for (int sp = 0; sp < kNumSpins; ++sp)
        for (int c = 0; c < kNumColors; ++c)
          out_e[le].s[sp].c[c] =
              diag.s[sp].c[c] - 0.25f * out_e[le].s[sp].c[c];
    }
  }

  std::int64_t schur_flops() const noexcept {
    // Two half-dslashes + two block-diagonal applications + the combine.
    return 168 * 2 * hops_per_parity_ +
           static_cast<std::int64_t>(part_->domain_volume()) * 504 / 2 * 2 +
           static_cast<std::int64_t>(part_->domain_half_volume()) * 24;
  }

  static void round_spinor_fp16(Spinor<float>& s) noexcept {
    for (int sp = 0; sp < kNumSpins; ++sp)
      for (int c = 0; c < kNumColors; ++c)
        s.s[sp].c[c] = Complex<float>(half_round_trip(s.s[sp].c[c].real()),
                                      half_round_trip(s.s[sp].c[c].imag()));
  }

  /// Solve one domain from the current residual of one RHS, update u and
  /// r, pack the boundary buffers of the correction into `slot`. Writes
  /// stats into sc.stats (so concurrent domain solves never share a
  /// counter).
  void solve_domain(int d, FermionField<float>& u, FermionField<float>& r,
                    std::int64_t slot, Scratch& sc) {
    const std::int32_t vd = part_->domain_volume();
    const std::int32_t hv = part_->domain_half_volume();

    // Gather the residual (optionally through fp16 spinor storage).
    for (std::int32_t l = 0; l < vd; ++l) {
      sc.r_loc[l] = r[part_->global_site(d, l)];
      if (params_.half_precision_spinors) round_spinor_fp16(sc.r_loc[l]);
    }

    // Schur RHS: rhs_e = r_e + 1/2 D_eo A_oo^-1 r_o.
    for (std::int32_t lo = 0; lo < hv; ++lo)
      apply_block_pair(load_block(inv_o_ptr(d, lo, 0)),
                       load_block(inv_o_ptr(d, lo, 1)),
                       sc.r_loc[hv + lo], sc.t1_o[lo]);
    local_dslash_impl(d, 0, sc.t1_o, sc.rhs_e);
    for (std::int32_t le = 0; le < hv; ++le)
      for (int sp = 0; sp < kNumSpins; ++sp)
        for (int c = 0; c < kNumColors; ++c)
          sc.rhs_e[le].s[sp].c[c] =
              sc.r_loc[le].s[sp].c[c] + 0.5f * sc.rhs_e[le].s[sp].c[c];
    sc.stats.flops += 168 * hops_per_parity_ + hv * (504 + 24);

    // Block MR on Dtilde_ee with fixed iteration count, z_e starts at 0.
    FermionField<float>& z = sc.z;
    for (std::int32_t le = 0; le < hv; ++le) z[le].zero();
    copy_range(sc.rhs_e, sc.mr_r, hv);
    for (int it = 0; it < params_.block_mr_iterations; ++it) {
      local_schur(d, sc.mr_r, sc.mr_ar, sc);
      double arr_re = 0, arr_im = 0, arar = 0;
      for (std::int32_t le = 0; le < hv; ++le)
        for (int sp = 0; sp < kNumSpins; ++sp)
          for (int c = 0; c < kNumColors; ++c) {
            const auto& a = sc.mr_ar[le].s[sp].c[c];
            const auto& rr = sc.mr_r[le].s[sp].c[c];
            arr_re += static_cast<double>(a.real()) * rr.real() +
                      static_cast<double>(a.imag()) * rr.imag();
            arr_im += static_cast<double>(a.real()) * rr.imag() -
                      static_cast<double>(a.imag()) * rr.real();
            arar += static_cast<double>(a.real()) * a.real() +
                    static_cast<double>(a.imag()) * a.imag();
          }
      ++sc.stats.mr_iterations;
      sc.stats.flops += schur_flops() + hv * 24 * 3;  // schur + dots
      if (arar == 0.0) break;
      const Complex<float> alpha(static_cast<float>(arr_re / arar),
                                 static_cast<float>(arr_im / arar));
      for (std::int32_t le = 0; le < hv; ++le)
        for (int sp = 0; sp < kNumSpins; ++sp)
          for (int c = 0; c < kNumColors; ++c) {
            z[le].s[sp].c[c] += alpha * sc.mr_r[le].s[sp].c[c];
            sc.mr_r[le].s[sp].c[c] -= alpha * sc.mr_ar[le].s[sp].c[c];
          }
      sc.stats.flops += hv * 24 * 4;  // two axpys
    }

    // Odd reconstruction: z_o = A_oo^-1 (r_o + 1/2 D_oe z_e).
    local_dslash_impl(d, 1, z /* even half */, sc.t1_o);
    for (std::int32_t lo = 0; lo < hv; ++lo) {
      Spinor<float> rhs_o;
      for (int sp = 0; sp < kNumSpins; ++sp)
        for (int c = 0; c < kNumColors; ++c)
          rhs_o.s[sp].c[c] = sc.r_loc[hv + lo].s[sp].c[c] +
                             0.5f * sc.t1_o[lo].s[sp].c[c];
      apply_block_pair(load_block(inv_o_ptr(d, lo, 0)),
                       load_block(inv_o_ptr(d, lo, 1)), rhs_o,
                       z[hv + lo]);
    }
    sc.stats.flops += 168 * hops_per_parity_ + hv * (504 + 24);

    if (params_.half_precision_spinors)
      for (std::int32_t l = 0; l < vd; ++l) round_spinor_fp16(z[l]);

    // Update u and the residual on this domain: even <- MR residual,
    // odd <- 0 (exact by the Schur reconstruction).
    for (std::int32_t l = 0; l < vd; ++l) {
      const std::int32_t g = part_->global_site(d, l);
      u[g] = u[g] + z[l];
      if (l < hv) {
        r[g] = sc.mr_r[l];
      } else {
        r[g].zero();
      }
    }

    pack_boundaries(d, slot, z, sc.stats);
    ++sc.stats.block_solves;
  }

  static void copy_range(const FermionField<float>& src,
                         FermionField<float>& dst, std::int32_t n) {
    for (std::int32_t i = 0; i < n; ++i) dst[i] = src[i];
  }

  /// Pack the correction's projected half-spinors into the AOS face
  /// buffers (paper Fig. 3). Forward faces are link-multiplied by the
  /// producer (it owns U_mu(x)); backward faces are packed raw and
  /// link-multiplied by the consumer.
  void pack_boundaries(int d, std::int64_t slot, const FermionField<float>& z,
                       SchwarzStats& stats) {
    for (int mu = 0; mu < kNumDims; ++mu) {
      const auto mu_s = static_cast<std::size_t>(mu);
      {
        const auto& face = part_->face_sites(mu, Dir::kForward);
        float* buf = buffer_ptr(slot, mu, Dir::kForward);
        for (std::size_t i = 0; i < face.size(); ++i) {
          const std::int32_t l = face[i];
          const HalfSpinor<float> h =
              mul_adj(load_su3(link_ptr(d, l, mu)), project(z[l], mu, +1));
          write_halfspinor(h, buf + i * 12);
        }
        stats.boundary_bytes +=
            static_cast<std::int64_t>(face.size()) * 12 * 4;
        stats.flops += static_cast<std::int64_t>(face.size()) * (12 + 132);
      }
      {
        const auto& face = part_->face_sites(mu, Dir::kBackward);
        float* buf = buffer_ptr(slot, mu, Dir::kBackward);
        for (std::size_t i = 0; i < face.size(); ++i) {
          const std::int32_t l = face[i];
          write_halfspinor(project(z[l], mu, -1), buf + i * 12);
        }
        stats.boundary_bytes +=
            static_cast<std::int64_t>(face.size()) * 12 * 4;
        stats.flops += static_cast<std::int64_t>(face.size()) * 12;
      }
      (void)mu_s;
    }
  }

  static void write_halfspinor(const HalfSpinor<float>& h,
                               float* dst) noexcept {
    int k = 0;
    for (int sp = 0; sp < 2; ++sp)
      for (int c = 0; c < kNumColors; ++c) {
        dst[k++] = h.s[sp].c[c].real();
        dst[k++] = h.s[sp].c[c].imag();
      }
  }

  static HalfSpinor<float> read_halfspinor(const float* src) noexcept {
    HalfSpinor<float> h;
    int k = 0;
    for (int sp = 0; sp < 2; ++sp)
      for (int c = 0; c < kNumColors; ++c) {
        const float re = src[k++];
        const float im = src[k++];
        h.s[sp].c[c] = Complex<float>(re, im);
      }
    return h;
  }

  /// Consume the face buffers of the domains in `producers`: add the R
  /// coupling of their corrections to the residual of the neighboring
  /// domains.
  void consume_buffers_of(int d, std::int64_t slot, FermionField<float>& r) {
    for (int mu = 0; mu < kNumDims; ++mu) {
      // Producer's forward face -> consumer's backward boundary sites.
      {
        const int nd = part_->neighbor_domain(d, mu, Dir::kForward);
        const float* buf = buffer_ptr(slot, mu, Dir::kForward);
        const auto& partners = setup_->partner_fwd(mu);
        for (std::size_t i = 0; i < partners.size(); ++i) {
          const HalfSpinor<float> h = read_halfspinor(buf + i * 12);
          const std::int32_t g = part_->global_site(nd, partners[i]);
          Spinor<float> add;
          add.zero();
          reconstruct_add(add, h, mu, +1);
          for (int sp = 0; sp < kNumSpins; ++sp)
            for (int c = 0; c < kNumColors; ++c)
              r[g].s[sp].c[c] += 0.5f * add.s[sp].c[c];
        }
        stats_.flops += static_cast<std::int64_t>(partners.size()) * (24 + 24);
      }
      // Producer's backward face -> consumer's forward boundary sites.
      {
        const int nd = part_->neighbor_domain(d, mu, Dir::kBackward);
        const float* buf = buffer_ptr(slot, mu, Dir::kBackward);
        const auto& partners = setup_->partner_bwd(mu);
        for (std::size_t i = 0; i < partners.size(); ++i) {
          const HalfSpinor<float> raw = read_halfspinor(buf + i * 12);
          const std::int32_t pl = partners[i];
          const HalfSpinor<float> h =
              mul(load_su3(link_ptr(nd, pl, mu)), raw);
          const std::int32_t g = part_->global_site(nd, pl);
          Spinor<float> add;
          add.zero();
          reconstruct_add(add, h, mu, -1);
          for (int sp = 0; sp < kNumSpins; ++sp)
            for (int c = 0; c < kNumColors; ++c)
              r[g].s[sp].c[c] += 0.5f * add.s[sp].c[c];
        }
        stats_.flops +=
            static_cast<std::int64_t>(partners.size()) * (132 + 24 + 24);
      }
    }
  }

  /// One domain visit: stream the packed matrices once, apply them to
  /// every RHS of the batch. Batches of more than one RHS take the
  /// lane-vectorized SOA-over-RHS path unless params.lane_vectorized is
  /// off; nrhs == 1 always runs the scalar solve (bit-identical contract
  /// with apply()).
  void solve_domain_batch(int d, int nrhs, FermionField<float>* const* u,
                          Scratch& sc) {
    ++sc.stats.matrix_block_loads;
    if (nrhs == 1 || !params_.lane_vectorized) {
      for (int b = 0; b < nrhs; ++b)
        solve_domain(d, *u[b], r_batch_[static_cast<std::size_t>(b)],
                     buffer_slot(b, d), sc);
      return;
    }
    solve_domain_lanes(d, nrhs, u, sc);
  }

  // -------------------------------------------------------------------------
  // Lane-vectorized block solve (SOA-over-RHS, paper Sec. VI).
  //
  // Every kernel below walks the domain site by site, loads each packed
  // matrix element (link or clover block) ONCE, and applies it to all RHS
  // lanes with unit-stride inner loops over the lane index. The lane
  // arithmetic itself lives behind the runtime SIMD dispatch
  // (simd/dispatch.h): scalar, AVX2 or AVX-512 at the backend's choosing,
  // with the dispatch contract guaranteeing the instrumented counters
  // charge exactly nrhs times the scalar work in every backend (MR
  // iterations and axpy flops are charged per still-active lane, and lane
  // masking branches only on exact zeros, which all backends preserve).
  // -------------------------------------------------------------------------

  /// h = upper two rows of (1 + sign*gamma_mu) applied to the spinor lane
  /// vectors at `in_site` (24 components x lanes -> 12 components x lanes).
  static void lane_project(const float* in_site, int mu, int sign, float* h,
                           int lanes) {
    simd::kernels().project_lanes(in_site, mu, sign, h, lanes);
  }

  /// acc_site += full spinor reconstructed from the half-spinor lane
  /// vectors `h` for projector (1 + sign*gamma_mu).
  static void lane_reconstruct_add(float* acc_site, const float* h, int mu,
                                   int sign, int lanes) {
    simd::kernels().reconstruct_add_lanes(acc_site, h, mu, sign, lanes);
  }

  /// y = U x (or U^dagger x) on half-spinor lane vectors: the link is
  /// loaded once and applied to every lane.
  static void lane_su3_mul(const SU3<float>& u, const float* x, float* y,
                           int lanes, bool adjoint) {
    simd::kernels().su3_mul_lanes(flat(u), x, y, lanes, adjoint ? 1 : 0);
  }

  /// Apply the two chirality clover blocks at a site to the spinor lane
  /// vectors: out_site = blockpair(in_site). Must not alias.
  static void lane_apply_block_pair(const PackedHermitian6<float>& b0,
                                    const PackedHermitian6<float>& b1,
                                    const float* in_site, float* out_site,
                                    int lanes) {
    simd::kernels().clover_pair_lanes(&b0, &b1, in_site, out_site, lanes);
  }

  /// Lane version of local_dslash_impl: out = D_{out_parity,1-out_parity}
  /// applied to all lanes, each link loaded once per hop. `in` is indexed
  /// by the parity-local convention of the scalar path (even fields by
  /// local site < hv, odd fields by l - hv).
  void lane_dslash(int d, int out_parity, const BlockSpinorLanes& in,
                   BlockSpinorLanes& out, Scratch& sc) {
    const std::int32_t hv = part_->domain_half_volume();
    const std::int32_t l0 = out_parity == 0 ? 0 : hv;
    const std::int32_t in_off = out_parity == 0 ? hv : 0;
    const int L = out.lanes();
    float* h1 = sc.h1.data();
    float* h2 = sc.h2.data();
    for (std::int32_t i = 0; i < hv; ++i) {
      const std::int32_t l = l0 + i;
      float* acc = out.lane_vec(i, 0);
      std::memset(acc, 0,
                  sizeof(float) * static_cast<std::size_t>(kSpinorReals) *
                      static_cast<std::size_t>(L));
      for (int mu = 0; mu < kNumDims; ++mu) {
        const std::int32_t lf = part_->local_neighbor(l, mu, Dir::kForward);
        if (lf >= 0) {
          lane_project(in.lane_vec(lf - in_off, 0), mu, -1, h1, L);
          lane_su3_mul(load_su3(link_ptr(d, l, mu)), h1, h2, L, false);
          lane_reconstruct_add(acc, h2, mu, -1, L);
        }
        const std::int32_t lb = part_->local_neighbor(l, mu, Dir::kBackward);
        if (lb >= 0) {
          lane_project(in.lane_vec(lb - in_off, 0), mu, +1, h1, L);
          lane_su3_mul(load_su3(link_ptr(d, lb, mu)), h1, h2, L, true);
          lane_reconstruct_add(acc, h2, mu, +1, L);
        }
      }
    }
  }

  /// Lane version of local_schur: out_e = Dtilde_ee in_e for all lanes.
  void lane_schur(int d, const BlockSpinorLanes& in_e, BlockSpinorLanes& out_e,
                  Scratch& sc) {
    const std::int32_t hv = part_->domain_half_volume();
    const int L = in_e.lanes();
    lane_dslash(d, 1, in_e, sc.t1_lanes, sc);
    for (std::int32_t lo = 0; lo < hv; ++lo)
      lane_apply_block_pair(load_block(inv_o_ptr(d, lo, 0)),
                            load_block(inv_o_ptr(d, lo, 1)),
                            sc.t1_lanes.lane_vec(lo, 0),
                            sc.t2_lanes.lane_vec(lo, 0), L);
    lane_dslash(d, 0, sc.t2_lanes, out_e, sc);
    for (std::int32_t le = 0; le < hv; ++le) {
      lane_apply_block_pair(load_block(diag_e_ptr(d, le, 0)),
                            load_block(diag_e_ptr(d, le, 1)),
                            in_e.lane_vec(le, 0), sc.s24.data(), L);
      float* o = out_e.lane_vec(le, 0);
      const float* diag = sc.s24.data();
      simd::kernels().xpay_lanes(diag, -0.25f, o, o, kSpinorReals * L);
    }
  }

  static void round_lanes_fp16(float* p, std::int64_t n) noexcept {
    for (std::int64_t k = 0; k < n; ++k) p[k] = half_round_trip(p[k]);
  }

  /// Lane-vectorized domain visit: gather all RHS residuals into the
  /// SOA-over-RHS containers, run ONE even-odd MR block solve across all
  /// lanes (per-lane alpha, lane masking for converged/zero RHS), scatter
  /// the corrections back, and pack each RHS's boundary buffers.
  void solve_domain_lanes(int d, int nrhs, FermionField<float>* const* u,
                          Scratch& sc) {
    const std::int32_t vd = part_->domain_volume();
    const std::int32_t hv = part_->domain_half_volume();
    sc.ensure_lanes(vd, hv, nrhs);
    const int L = sc.r_lanes.lanes();
    const auto nb = static_cast<std::int64_t>(nrhs);

    for (std::int32_t l = 0; l < vd; ++l)
      sc.site_map[static_cast<std::size_t>(l)] = part_->global_site(d, l);
    pack_rhs_lanes(r_ptrs_.data(), nrhs, sc.site_map.data(), vd, sc.r_lanes);
    if (params_.half_precision_spinors)
      round_lanes_fp16(sc.r_lanes.data(),
                       static_cast<std::int64_t>(vd) * kSpinorReals * L);

    // Schur RHS: rhs_e = r_e + 1/2 D_eo A_oo^-1 r_o, all lanes at once.
    for (std::int32_t lo = 0; lo < hv; ++lo)
      lane_apply_block_pair(load_block(inv_o_ptr(d, lo, 0)),
                            load_block(inv_o_ptr(d, lo, 1)),
                            sc.r_lanes.lane_vec(hv + lo, 0),
                            sc.t1_lanes.lane_vec(lo, 0), L);
    lane_dslash(d, 0, sc.t1_lanes, sc.rhs_e_lanes, sc);
    for (std::int32_t le = 0; le < hv; ++le) {
      const float* rv = sc.r_lanes.lane_vec(le, 0);
      float* ev = sc.rhs_e_lanes.lane_vec(le, 0);
      simd::kernels().xpay_lanes(rv, 0.5f, ev, ev, kSpinorReals * L);
    }
    sc.stats.flops += nb * (168 * hops_per_parity_ + hv * (504 + 24));

    // Block MR on Dtilde_ee, every lane in one pass. Counter contract:
    // a lane is charged an MR iteration (and schur+dot flops) for every
    // iteration it ENTERS, and axpy flops only when its arar != 0 —
    // matching the scalar path's `if (arar == 0.0) break` exactly.
    sc.z_lanes.zero();
    std::memcpy(sc.mr_r_lanes.data(), sc.rhs_e_lanes.data(),
                sizeof(float) * static_cast<std::size_t>(hv) *
                    static_cast<std::size_t>(kSpinorReals) *
                    static_cast<std::size_t>(L));
    sc.mr_state.reset(L, nrhs);
    const std::int64_t ncplx =
        static_cast<std::int64_t>(hv) * (kSpinorReals / 2);
    for (int it = 0; it < params_.block_mr_iterations; ++it) {
      const int active_before = sc.mr_state.num_active();
      if (active_before == 0) break;
      lane_schur(d, sc.mr_r_lanes, sc.mr_ar_lanes, sc);
      lane_mr_dots(sc.mr_r_lanes.data(), sc.mr_ar_lanes.data(), ncplx, L,
                   sc.mr_state);
      sc.stats.mr_iterations += active_before;
      sc.stats.flops += active_before * (schur_flops() + hv * 24 * 3);
      const int active_after = lane_mr_alphas(sc.mr_state);
      if (active_after == 0) continue;  // all alphas 0: z and r frozen
      lane_mr_axpy(sc.z_lanes.data(), sc.mr_r_lanes.data(),
                   sc.mr_ar_lanes.data(), ncplx, L, sc.mr_state);
      sc.stats.flops += static_cast<std::int64_t>(active_after) * hv * 24 * 4;
    }

    // Odd reconstruction: z_o = A_oo^-1 (r_o + 1/2 D_oe z_e).
    lane_dslash(d, 1, sc.z_lanes, sc.t1_lanes, sc);
    for (std::int32_t lo = 0; lo < hv; ++lo) {
      const float* rv = sc.r_lanes.lane_vec(hv + lo, 0);
      const float* tv = sc.t1_lanes.lane_vec(lo, 0);
      float* rhs_o = sc.s24.data();
      simd::kernels().xpay_lanes(rv, 0.5f, tv, rhs_o, kSpinorReals * L);
      lane_apply_block_pair(load_block(inv_o_ptr(d, lo, 0)),
                            load_block(inv_o_ptr(d, lo, 1)), rhs_o,
                            sc.z_lanes.lane_vec(hv + lo, 0), L);
    }
    sc.stats.flops += nb * (168 * hops_per_parity_ + hv * (504 + 24));

    if (params_.half_precision_spinors)
      round_lanes_fp16(sc.z_lanes.data(),
                       static_cast<std::int64_t>(vd) * kSpinorReals * L);

    // Scatter: u += z; residual even <- MR residual, odd <- 0.
    for (std::int32_t l = 0; l < vd; ++l) {
      const std::int32_t g = sc.site_map[static_cast<std::size_t>(l)];
      for (int sp = 0; sp < kNumSpins; ++sp)
        for (int c = 0; c < kNumColors; ++c) {
          const int comp = (sp * kNumColors + c) * 2;
          const float* z_re = sc.z_lanes.lane_vec(l, comp);
          const float* z_im = z_re + L;
          for (int b = 0; b < nrhs; ++b)
            (*u[b])[g].s[sp].c[c] += Complex<float>(z_re[b], z_im[b]);
        }
      if (l < hv) {
        for (int sp = 0; sp < kNumSpins; ++sp)
          for (int c = 0; c < kNumColors; ++c) {
            const int comp = (sp * kNumColors + c) * 2;
            const float* r_re = sc.mr_r_lanes.lane_vec(l, comp);
            const float* r_im = r_re + L;
            for (int b = 0; b < nrhs; ++b)
              r_batch_[static_cast<std::size_t>(b)][g].s[sp].c[c] =
                  Complex<float>(r_re[b], r_im[b]);
          }
      } else {
        for (int b = 0; b < nrhs; ++b)
          r_batch_[static_cast<std::size_t>(b)][g].zero();
      }
    }

    pack_boundaries_lanes(d, nrhs, sc);
    sc.stats.block_solves += nrhs;
  }

  /// Lane version of pack_boundaries: each face site's link is loaded
  /// once, projected/multiplied across all lanes, then fanned out to the
  /// per-(RHS, domain) AOS buffers the halo exchange consumes unchanged.
  void pack_boundaries_lanes(int d, int nrhs, Scratch& sc) {
    const int L = sc.z_lanes.lanes();
    const auto nb = static_cast<std::int64_t>(nrhs);
    float* h1 = sc.h1.data();
    float* h2 = sc.h2.data();
    for (int mu = 0; mu < kNumDims; ++mu) {
      {
        const auto& face = part_->face_sites(mu, Dir::kForward);
        for (std::size_t i = 0; i < face.size(); ++i) {
          const std::int32_t l = face[i];
          lane_project(sc.z_lanes.lane_vec(l, 0), mu, +1, h1, L);
          lane_su3_mul(load_su3(link_ptr(d, l, mu)), h1, h2, L, true);
          for (int b = 0; b < nrhs; ++b) {
            float* buf =
                buffer_ptr(buffer_slot(b, d), mu, Dir::kForward) + i * 12;
            for (int k = 0; k < 12; ++k) buf[k] = h2[k * L + b];
          }
        }
        sc.stats.boundary_bytes +=
            nb * static_cast<std::int64_t>(face.size()) * 12 * 4;
        sc.stats.flops +=
            nb * static_cast<std::int64_t>(face.size()) * (12 + 132);
      }
      {
        const auto& face = part_->face_sites(mu, Dir::kBackward);
        for (std::size_t i = 0; i < face.size(); ++i) {
          const std::int32_t l = face[i];
          lane_project(sc.z_lanes.lane_vec(l, 0), mu, -1, h1, L);
          for (int b = 0; b < nrhs; ++b) {
            float* buf =
                buffer_ptr(buffer_slot(b, d), mu, Dir::kBackward) + i * 12;
            for (int k = 0; k < 12; ++k) buf[k] = h1[k * L + b];
          }
        }
        sc.stats.boundary_bytes +=
            nb * static_cast<std::int64_t>(face.size()) * 12 * 4;
        sc.stats.flops += nb * static_cast<std::int64_t>(face.size()) * 12;
      }
    }
  }

  /// Visit one domain on the calling thread: block solve, then the (inert
  /// when unarmed) deterministic parallel fault hook. A fired visit
  /// corrupts the domain's packed RHS-0 face buffers — the data the
  /// serial halo-update phase consumes next — and is charged to the
  /// per-thread scratch stats so counters merge thread-count-invariantly.
  void visit_domain(int d, int nrhs, FermionField<float>* const* u, int tid,
                    std::int64_t visit_key) {
    auto& sc = scratch_[static_cast<std::size_t>(tid)];
    solve_domain_batch(d, nrhs, u, sc);
    if (domain_scope_ != nullptr &&
        domain_scope_->maybe_corrupt_reals(
            tid, visit_key,
            buffers_.data() + static_cast<std::size_t>(buffer_slot(0, d)) *
                                  static_cast<std::size_t>(buffer_stride_),
            buffer_stride_))
      ++sc.stats.injected_faults;
  }

  void sweep_color(int color, int nrhs, FermionField<float>* const* u,
                   std::int64_t visit_base) {
    const auto& list = part_->domains_of_color(color);
    const auto n = static_cast<std::int64_t>(list.size());
#pragma omp parallel for schedule(static) default(none) \
    shared(list, n, nrhs, u, visit_base)
    for (std::int64_t i = 0; i < n; ++i) {
      int tid = 0;
#if defined(LQCD_HAVE_OPENMP)
      tid = omp_get_thread_num();
#endif
      visit_domain(list[static_cast<std::size_t>(i)], nrhs, u, tid,
                   visit_base + i);
    }
  }

  void sweep_all_domains(int nrhs, FermionField<float>* const* u,
                         std::int64_t visit_base) {
    const std::int64_t n = part_->num_domains();
#pragma omp parallel for schedule(static) default(none) \
    shared(n, nrhs, u, visit_base)
    for (std::int64_t i = 0; i < n; ++i) {
      int tid = 0;
#if defined(LQCD_HAVE_OPENMP)
      tid = omp_get_thread_num();
#endif
      visit_domain(static_cast<int>(i), nrhs, u, tid, visit_base + i);
    }
  }

  void apply_halo_updates(int color, int nrhs) {
    for (const int d : part_->domains_of_color(color))
      for (int b = 0; b < nrhs; ++b)
        consume_buffers_of(d, buffer_slot(b, d),
                           r_batch_[static_cast<std::size_t>(b)]);
  }

  void apply_all_halo_updates(int nrhs) {
    for (int d = 0; d < part_->num_domains(); ++d)
      for (int b = 0; b < nrhs; ++b)
        consume_buffers_of(d, buffer_slot(b, d),
                           r_batch_[static_cast<std::size_t>(b)]);
  }

  /// Shared per-configuration packed state (matrices, checksums,
  /// geometry tables). Everything below it is per-instance mutable
  /// per-solve state.
  std::shared_ptr<SchwarzSetup<S>> setup_;
  const DomainPartition* part_;
  SchwarzParams params_;
  SchwarzStats stats_;

  AlignedVector<float> buffers_;
  std::int64_t buffer_stride_ = 0;
  std::int64_t hops_per_parity_ = 0;

  /// Residual fields, one per RHS of the widest batch seen so far.
  /// r_batch_[0] doubles as the single-RHS residual.
  std::vector<FermionField<float>> r_batch_;
  /// Read-only pointer view of r_batch_[0..nrhs) for the lane gather
  /// bridge; rebuilt at the start of every apply_impl().
  std::vector<const FermionField<float>*> r_ptrs_;
  std::vector<Scratch> scratch_;
  /// Live only while apply_impl()'s sweep loop runs; points at the
  /// stack-local ParallelFaultScope of the current application.
  ParallelFaultScope* domain_scope_ = nullptr;
};

}  // namespace lqcd
