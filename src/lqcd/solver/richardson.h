// Mixed-precision iterative refinement (outer Richardson iteration).
//
// The paper's non-DD baseline for the 64^3x128 lattice is exactly this
// scheme (Table III): a double-precision outer Richardson loop whose
// correction equation is solved in single precision (stored as half) by
// BiCGstab to a loose inner residual of 0.1.
#pragma once

#include <functional>

#include "lqcd/solver/linear_operator.h"

namespace lqcd {

struct RichardsonParams {
  int max_outer_iterations = 100;
  double tolerance = 1e-10;  ///< relative residual target (outer)
};

/// Inner solver contract: given the current residual (converted to the
/// inner precision), produce an approximate correction and report stats.
template <class TInner>
using InnerSolver = std::function<SolverStats(const FermionField<TInner>& rhs,
                                              FermionField<TInner>& corr)>;

/// Solve op_outer x = b with corrections from `inner` accumulated in
/// TOuter precision. `inner` must approximately invert the same operator.
template <class TOuter, class TInner>
SolverStats richardson_solve(const LinearOperator<TOuter>& op_outer,
                             const FermionField<TOuter>& b,
                             FermionField<TOuter>& x,
                             const InnerSolver<TInner>& inner,
                             const RichardsonParams& params) {
  SolverStats stats;
  const std::int64_t n = op_outer.vector_size();
  LQCD_CHECK(b.size() == n && x.size() == n);

  FermionField<TOuter> r(n), corr_outer(n);
  FermionField<TInner> r_inner(n), corr_inner(n);

  const double bnorm = norm(b);
  ++stats.global_sum_events;
  if (bnorm == 0.0) {
    x.zero();
    stats.converged = true;
    return stats;
  }

  for (int it = 0; it < params.max_outer_iterations; ++it) {
    op_outer.apply(x, r);
    ++stats.matvecs;
    sub(b, r, r);
    const double rnorm = norm(r);
    ++stats.global_sum_events;
    if (!std::isfinite(rnorm)) {
      ++stats.nonfinite_events;
      stats.breakdown = Breakdown::kNanDetected;
      return stats;
    }
    stats.residual_history.push_back(rnorm / bnorm);
    stats.final_relative_residual = rnorm / bnorm;
    if (rnorm / bnorm <= params.tolerance) {
      stats.converged = true;
      return stats;
    }
    convert(r, r_inner);
    corr_inner.zero();
    const SolverStats inner_stats = inner(r_inner, corr_inner);
    stats.iterations += inner_stats.iterations;
    stats.matvecs += inner_stats.matvecs;
    stats.global_sum_events += inner_stats.global_sum_events;
    stats.nonfinite_events += inner_stats.nonfinite_events;
    ++stats.precond_applications;  // one inner solve
    // An inner solve that broke down may hand back a poisoned correction;
    // applying it would corrupt the (so far clean) outer iterate. Skip the
    // update — the outer recursion retries the residual equation, which is
    // exactly the defect-correction resilience the scheme already has.
    if (inner_stats.breakdown == Breakdown::kNanDetected ||
        !all_finite(corr_inner))
      continue;
    convert(corr_inner, corr_outer);
    axpy(TOuter(1), corr_outer, x);
  }
  stats.breakdown = Breakdown::kMaxIterations;
  return stats;
}

}  // namespace lqcd
