// gamma5-hermiticity adapters: A^dag = gamma_5 A gamma_5, so the normal
// equations and Hermitian-indefinite formulations come for free.
//
//  * Gamma5Operator:     Q = gamma_5 A        (Hermitian, indefinite)
//  * NormalViaGamma5:    A^dag A = g5 A g5 A  (Hermitian positive
//                        definite — solvable with plain CG = "CGNE",
//                        one of the standard Lattice QCD solvers of the
//                        paper's Sec. II-C survey)
//
// CGNE driver: solve A x = b via A^dag A x = A^dag b.
#pragma once

#include "lqcd/dirac/wilson_clover.h"
#include "lqcd/solver/cg.h"

namespace lqcd {

/// Q = gamma_5 A: Hermitian by gamma5-hermiticity of the Wilson-Clover
/// operator.
template <class T>
class Gamma5Operator final : public LinearOperator<T> {
 public:
  explicit Gamma5Operator(const LinearOperator<T>& op)
      : op_(&op), tmp_(op.vector_size()) {}

  void apply(const FermionField<T>& in, FermionField<T>& out) const override {
    op_->apply(in, tmp_);
    apply_gamma5(tmp_, out);
  }
  std::int64_t vector_size() const override { return op_->vector_size(); }

 private:
  const LinearOperator<T>* op_;
  mutable FermionField<T> tmp_;
};

/// N = A^dag A realized as (g5 A g5)(A), Hermitian positive definite.
template <class T>
class NormalViaGamma5 final : public LinearOperator<T> {
 public:
  explicit NormalViaGamma5(const LinearOperator<T>& op)
      : op_(&op), t1_(op.vector_size()), t2_(op.vector_size()) {}

  void apply(const FermionField<T>& in, FermionField<T>& out) const override {
    op_->apply(in, t1_);          // A x
    apply_gamma5(t1_, t2_);       // g5 A x
    op_->apply(t2_, t1_);         // A g5 A x
    apply_gamma5(t1_, out);       // g5 A g5 A x = A^dag A x
  }
  std::int64_t vector_size() const override { return op_->vector_size(); }

 private:
  const LinearOperator<T>* op_;
  mutable FermionField<T> t1_, t2_;
};

/// CGNE: solve A x = b through CG on the gamma5-normal equations.
template <class T>
SolverStats cgne_solve(const LinearOperator<T>& op, const FermionField<T>& b,
                       FermionField<T>& x, const CGParams& params) {
  const std::int64_t n = op.vector_size();
  // rhs = A^dag b = g5 A g5 b.
  FermionField<T> t1(n), t2(n), rhs(n);
  apply_gamma5(b, t1);
  op.apply(t1, t2);
  apply_gamma5(t2, rhs);
  NormalViaGamma5<T> normal(op);
  SolverStats stats = cg_solve(normal, rhs, x, params);
  stats.matvecs += 1;  // the rhs preparation
  // Report the residual of the ORIGINAL system.
  op.apply(x, t1);
  ++stats.matvecs;
  sub(b, t1, t1);
  stats.final_relative_residual = norm(t1) / norm(b);
  ++stats.global_sum_events;
  return stats;
}

}  // namespace lqcd
