// Restarted, flexibly-preconditioned GCR (generalized conjugate
// residual) [Saad; Eisenstat-Elman-Schultz].
//
// This is the outer solver of Lüscher's original Schwarz-preconditioned
// Lattice QCD work that the paper compares against (Sec. V: "DD
// approaches were first applied to Lattice QCD by Lüscher using GCR as
// outer solver, whereas we use flexible GMRES with deflated restarts").
// Having both lets the benchmarks quantify that comparison.
#pragma once

#include "lqcd/solver/linear_operator.h"

namespace lqcd {

struct GCRParams {
  int restart_length = 16;
  int max_iterations = 2000;
  double tolerance = 1e-10;
};

template <class T>
SolverStats gcr_solve(const LinearOperator<T>& op, Preconditioner<T>* precond,
                      const FermionField<T>& b, FermionField<T>& x,
                      const GCRParams& params) {
  SolverStats stats;
  const std::int64_t n = op.vector_size();
  LQCD_CHECK(b.size() == n && x.size() == n);
  const int m = params.restart_length;
  LQCD_CHECK(m >= 1);

  const double bnorm = norm(b);
  ++stats.global_sum_events;
  if (bnorm == 0.0) {
    x.zero();
    stats.converged = true;
    return stats;
  }

  FermionField<T> r(n), z(n), az(n);
  std::vector<FermionField<T>> p, ap;  // search directions and A p
  p.reserve(static_cast<std::size_t>(m));
  ap.reserve(static_cast<std::size_t>(m));
  std::vector<double> ap_norm2(static_cast<std::size_t>(m));

  op.apply(x, r);
  ++stats.matvecs;
  sub(b, r, r);
  double rnorm = norm(r);
  ++stats.global_sum_events;

  while (stats.iterations < params.max_iterations &&
         rnorm / bnorm > params.tolerance) {
    p.clear();
    ap.clear();
    for (int j = 0; j < m && stats.iterations < params.max_iterations;
         ++j) {
      if (precond != nullptr) {
        precond->apply(r, z);
        ++stats.precond_applications;
      } else {
        copy(r, z);
      }
      op.apply(z, az);
      ++stats.matvecs;
      // Orthogonalize A z against previous A p_i (one batched reduction).
      std::vector<Complex<T>> beta(static_cast<std::size_t>(j));
      for (int i = 0; i < j; ++i) {
        const auto d = dot(ap[static_cast<std::size_t>(i)], az);
        beta[static_cast<std::size_t>(i)] =
            Complex<T>(static_cast<T>(d.real() /
                                      ap_norm2[static_cast<std::size_t>(i)]),
                       static_cast<T>(d.imag() /
                                      ap_norm2[static_cast<std::size_t>(i)]));
      }
      if (j > 0) ++stats.global_sum_events;
      for (int i = 0; i < j; ++i) {
        axpy(-beta[static_cast<std::size_t>(i)],
             p[static_cast<std::size_t>(i)], z);
        axpy(-beta[static_cast<std::size_t>(i)],
             ap[static_cast<std::size_t>(i)], az);
      }
      // alpha = <A p_j, r> / ||A p_j||^2; batched with the norm.
      const auto apr = dot(az, r);
      const double apap = norm2(az);
      ++stats.global_sum_events;
      if (!std::isfinite(apap) || !std::isfinite(rnorm)) {
        ++stats.nonfinite_events;
        stats.breakdown = Breakdown::kNanDetected;
        break;
      }
      if (apap == 0.0) {
        // z in the null space of op: no usable direction.
        stats.breakdown = Breakdown::kStagnation;
        break;
      }
      p.push_back(FermionField<T>(n));
      ap.push_back(FermionField<T>(n));
      copy(z, p.back());
      copy(az, ap.back());
      ap_norm2[static_cast<std::size_t>(j)] = apap;
      const Complex<T> alpha(static_cast<T>(apr.real() / apap),
                             static_cast<T>(apr.imag() / apap));
      axpy(alpha, p.back(), x);
      axpy(-alpha, ap.back(), r);
      rnorm = norm(r);
      ++stats.global_sum_events;
      ++stats.iterations;
      stats.residual_history.push_back(rnorm / bnorm);
      if (rnorm / bnorm <= params.tolerance) break;
    }
    // A recorded breakdown makes the restart a no-op (same r, same z):
    // re-entering would loop forever, so stop here.
    if (stats.breakdown != Breakdown::kNone) break;
  }
  stats.final_relative_residual = rnorm / bnorm;
  stats.converged = stats.final_relative_residual <= params.tolerance;
  if (stats.converged)
    stats.breakdown = Breakdown::kNone;
  else if (stats.breakdown == Breakdown::kNone)
    stats.breakdown = Breakdown::kMaxIterations;
  return stats;
}

}  // namespace lqcd
