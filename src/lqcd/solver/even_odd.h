// Even-odd (Schur complement) solve driver.
//
// Reduces A u = f on the full lattice to the half-lattice system
// Dtilde_ee u_e = f_e - A_eo A_oo^{-1} f_o (paper Eq. 5), delegates the
// even solve to any solver, and reconstructs the odd half. Typically
// halves the iteration count (paper cites ~2x, Ref. [14]).
#pragma once

#include <functional>
#include <vector>

#include "lqcd/dirac/wilson_clover.h"
#include "lqcd/solver/linear_operator.h"

namespace lqcd {

/// LinearOperator adapter for the full Wilson-Clover operator A.
template <class T>
class WilsonCloverLinOp final : public LinearOperator<T> {
 public:
  explicit WilsonCloverLinOp(const WilsonCloverOperator<T>& op) : op_(&op) {}
  void apply(const FermionField<T>& in, FermionField<T>& out) const override {
    op_->apply(in, out);
  }
  std::int64_t vector_size() const override {
    return op_->geometry().volume();
  }

 private:
  const WilsonCloverOperator<T>* op_;
};

/// LinearOperator adapter for the even-even Schur operator Dtilde_ee.
template <class T>
class SchurLinOp final : public LinearOperator<T> {
 public:
  explicit SchurLinOp(const WilsonCloverOperator<T>& op) : op_(&op) {
    LQCD_CHECK_MSG(op.clover().has_inverses(),
                   "call prepare_schur() before building SchurLinOp");
  }
  void apply(const FermionField<T>& in, FermionField<T>& out) const override {
    op_->apply_schur(in, out);
  }
  std::int64_t vector_size() const override {
    return op_->checkerboard().half_volume();
  }

 private:
  const WilsonCloverOperator<T>* op_;
};

/// Even-system solver contract: solve Dtilde_ee u_e = rhs_e.
template <class T>
using EvenSolver = std::function<SolverStats(const FermionField<T>& rhs_e,
                                             FermionField<T>& u_e)>;

/// Full even-odd-preconditioned solve of A u = f.
template <class T>
SolverStats even_odd_solve(const WilsonCloverOperator<T>& op,
                           const FermionField<T>& f, FermionField<T>& u,
                           const EvenSolver<T>& even_solver) {
  const auto half = op.checkerboard().half_volume();
  FermionField<T> f_e(half), f_o(half), fe_tilde(half), u_e(half), u_o(half);
  op.split(f, f_e, f_o);
  op.schur_rhs(f_e, f_o, fe_tilde);
  SolverStats stats = even_solver(fe_tilde, u_e);
  op.reconstruct_odd(f_o, u_e, u_o);
  op.merge(u_e, u_o, u);
  return stats;
}

/// Batched even-system solver contract: solve Dtilde_ee u_e[b] = rhs_e[b]
/// for every RHS of the batch in one call — the hook a multi-RHS
/// (SOA-over-RHS lane-vectorized) even solver plugs into.
template <class T>
using BatchEvenSolver = std::function<SolverStats(
    const std::vector<const FermionField<T>*>& rhs_e,
    const std::vector<FermionField<T>*>& u_e)>;

/// Batched even-odd-preconditioned solve of A u[b] = f[b]: every RHS is
/// reduced to the half lattice first, the even systems are handed to the
/// batched solver as ONE call (so it can vectorize over the RHS index),
/// and every odd half is reconstructed after. With nrhs = 1 this performs
/// the identical operation sequence as even_odd_solve.
template <class T>
SolverStats even_odd_solve_batch(const WilsonCloverOperator<T>& op,
                                 const std::vector<const FermionField<T>*>& f,
                                 const std::vector<FermionField<T>*>& u,
                                 const BatchEvenSolver<T>& even_solver) {
  LQCD_CHECK_MSG(!f.empty() && f.size() == u.size(),
                 "even_odd_solve_batch needs matching, non-empty batches");
  const auto half = op.checkerboard().half_volume();
  const auto nrhs = f.size();
  std::vector<FermionField<T>> f_e(nrhs), f_o(nrhs), fe_tilde(nrhs),
      u_e(nrhs), u_o(nrhs);
  std::vector<const FermionField<T>*> rhs_ptrs(nrhs);
  std::vector<FermionField<T>*> ue_ptrs(nrhs);
  for (std::size_t b = 0; b < nrhs; ++b) {
    f_e[b] = FermionField<T>(half);
    f_o[b] = FermionField<T>(half);
    fe_tilde[b] = FermionField<T>(half);
    u_e[b] = FermionField<T>(half);
    u_o[b] = FermionField<T>(half);
    op.split(*f[b], f_e[b], f_o[b]);
    op.schur_rhs(f_e[b], f_o[b], fe_tilde[b]);
    rhs_ptrs[b] = &fe_tilde[b];
    ue_ptrs[b] = &u_e[b];
  }
  SolverStats stats = even_solver(rhs_ptrs, ue_ptrs);
  for (std::size_t b = 0; b < nrhs; ++b) {
    op.reconstruct_odd(f_o[b], u_e[b], u_o[b]);
    op.merge(u_e[b], u_o[b], *u[b]);
  }
  return stats;
}

}  // namespace lqcd
