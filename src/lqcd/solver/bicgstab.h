// BiCGstab [van der Vorst 1992] — the workhorse of the paper's non-DD
// baseline solver (Table III lower blocks). Two operator applications and
// ~4 reduction events per iteration; no restart, no orthogonalization
// storage, but frequent global sums, which is exactly the strong-scaling
// weakness the DD method removes.
#pragma once

#include "lqcd/solver/linear_operator.h"

namespace lqcd {

struct BiCGstabParams {
  int max_iterations = 5000;
  double tolerance = 1e-10;  ///< relative residual target
};

template <class T>
SolverStats bicgstab_solve(const LinearOperator<T>& op,
                           const FermionField<T>& b, FermionField<T>& x,
                           const BiCGstabParams& params) {
  SolverStats stats;
  const std::int64_t n = op.vector_size();
  LQCD_CHECK(b.size() == n && x.size() == n);

  FermionField<T> r(n), r0(n), p(n), v(n), s(n), t(n);
  op.apply(x, r);
  ++stats.matvecs;
  sub(b, r, r);
  copy(r, r0);
  copy(r, p);

  const double bnorm = norm(b);
  ++stats.global_sum_events;
  if (bnorm == 0.0) {
    x.zero();
    stats.converged = true;
    return stats;
  }

  std::complex<double> rho = dot(r0, r);
  ++stats.global_sum_events;
  double rnorm = std::sqrt(std::abs(rho.real())) /* = ||r|| since r0=r */;

  for (int it = 0; it < params.max_iterations; ++it) {
    const double rel = rnorm / bnorm;
    stats.residual_history.push_back(rel);
    if (rel <= params.tolerance) {
      stats.converged = true;
      break;
    }
    op.apply(p, v);
    ++stats.matvecs;
    const auto r0v = dot(r0, v);
    ++stats.global_sum_events;
    if (!std::isfinite(r0v.real()) || !std::isfinite(r0v.imag())) {
      ++stats.nonfinite_events;
      stats.breakdown = Breakdown::kNanDetected;
      break;
    }
    if (std::abs(r0v) == 0.0) {
      // <r0, A p> = 0: alpha undefined. The classic BiCG rho-breakdown;
      // report it instead of silently falling through to the tail check.
      stats.breakdown = Breakdown::kRhoBreakdown;
      break;
    }
    const std::complex<double> alpha = rho / r0v;
    // s = r - alpha v.
    copy(r, s);
    axpy(Complex<T>(static_cast<T>(-alpha.real()),
                    static_cast<T>(-alpha.imag())),
         v, s);
    op.apply(s, t);
    ++stats.matvecs;
    // omega = <t,s>/<t,t>; batched into one reduction.
    const auto ts = dot(t, s);
    const double tt = norm2(t);
    ++stats.global_sum_events;
    if (tt == 0.0) {
      // s is the exact correction direction's residual; finish with it.
      axpy(Complex<T>(static_cast<T>(alpha.real()),
                      static_cast<T>(alpha.imag())),
           p, x);
      copy(s, r);
      rnorm = norm(r);
      ++stats.global_sum_events;
      ++stats.iterations;
      continue;
    }
    const std::complex<double> omega = ts / tt;
    // x += alpha p + omega s.
    axpy(Complex<T>(static_cast<T>(alpha.real()),
                    static_cast<T>(alpha.imag())),
         p, x);
    axpy(Complex<T>(static_cast<T>(omega.real()),
                    static_cast<T>(omega.imag())),
         s, x);
    // r = s - omega t.
    copy(s, r);
    axpy(Complex<T>(static_cast<T>(-omega.real()),
                    static_cast<T>(-omega.imag())),
         t, r);
    // rho_new = <r0, r>, plus ||r|| for convergence — one reduction.
    const auto rho_new = dot(r0, r);
    rnorm = norm(r);
    ++stats.global_sum_events;
    if (!std::isfinite(rnorm)) {
      ++stats.nonfinite_events;
      stats.breakdown = Breakdown::kNanDetected;
      break;
    }
    if (std::abs(rho_new) == 0.0 || std::abs(omega) == 0.0) {
      stats.breakdown = Breakdown::kRhoBreakdown;
      break;
    }
    const std::complex<double> beta = (rho_new / rho) * (alpha / omega);
    rho = rho_new;
    // p = r + beta (p - omega v).
    axpy(Complex<T>(static_cast<T>(-omega.real()),
                    static_cast<T>(-omega.imag())),
         v, p);
    scal(Complex<T>(static_cast<T>(beta.real()),
                    static_cast<T>(beta.imag())),
         p);
    axpy(T(1), r, p);
    ++stats.iterations;
  }
  stats.final_relative_residual = rnorm / bnorm;
  if (stats.final_relative_residual <= params.tolerance)
    stats.converged = true;
  if (stats.converged)
    stats.breakdown = Breakdown::kNone;
  else if (stats.breakdown == Breakdown::kNone)
    stats.breakdown = Breakdown::kMaxIterations;
  return stats;
}

}  // namespace lqcd
