// Minimal residual (MR) iteration [Saad, Iterative Methods, Sec. 5.3.2].
//
// This is the paper's block solver (Sec. II-D): it needs only three
// vectors (x, r, Ar), which is what lets the per-domain solve run from L2
// cache. Each iteration costs one operator application plus one batched
// reduction for the two inner products.
#pragma once

#include "lqcd/solver/linear_operator.h"

namespace lqcd {

struct MRParams {
  int max_iterations = 10;
  /// Relative residual target; <= 0 means "run exactly max_iterations",
  /// the fixed-iteration-count mode the Schwarz block solve uses.
  double tolerance = 0.0;
  /// Over/under-relaxation factor omega (1.0 = plain MR).
  double omega = 1.0;
};

template <class T>
SolverStats mr_solve(const LinearOperator<T>& op, const FermionField<T>& b,
                     FermionField<T>& x, const MRParams& params,
                     bool x_is_zero = false) {
  SolverStats stats;
  const std::int64_t n = op.vector_size();
  LQCD_CHECK(b.size() == n && x.size() == n);

  FermionField<T> r(n), ar(n);
  if (x_is_zero) {
    copy(b, r);
  } else {
    op.apply(x, r);
    ++stats.matvecs;
    sub(b, r, r);
  }
  const double bnorm = norm(b);
  ++stats.global_sum_events;
  if (bnorm == 0.0) {
    x.zero();
    stats.converged = true;
    return stats;
  }
  double rnorm2 = norm2(r);
  ++stats.global_sum_events;

  const T omega = static_cast<T>(params.omega);
  for (int it = 0; it < params.max_iterations; ++it) {
    const double rel = std::sqrt(rnorm2) / bnorm;
    stats.residual_history.push_back(rel);
    if (params.tolerance > 0 && rel <= params.tolerance) {
      stats.converged = true;
      break;
    }
    op.apply(r, ar);
    ++stats.matvecs;
    // alpha = <Ar, r> / <Ar, Ar>; both inner products in one reduction.
    const auto arr = dot(ar, r);
    const double arar = norm2(ar);
    ++stats.global_sum_events;
    if (!std::isfinite(arar) || !std::isfinite(rnorm2)) {
      ++stats.nonfinite_events;
      stats.breakdown = Breakdown::kNanDetected;
      break;
    }
    if (arar == 0.0) {
      // r in the null space of op: no usable direction.
      stats.breakdown = Breakdown::kStagnation;
      break;
    }
    const Complex<T> alpha(
        static_cast<T>(omega * arr.real() / arar),
        static_cast<T>(omega * arr.imag() / arar));
    axpy(alpha, r, x);
    axpy(-alpha, ar, r);
    // Track ||r||^2 incrementally? Recompute: cheap and robust, and
    // bundles with the next iteration's reduction in a real multi-node
    // run, so we do not count it separately.
    rnorm2 = norm2(r);
    ++stats.iterations;
  }
  stats.final_relative_residual = std::sqrt(rnorm2) / bnorm;
  if (params.tolerance > 0 && stats.final_relative_residual <= params.tolerance)
    stats.converged = true;
  if (stats.converged)
    stats.breakdown = Breakdown::kNone;
  else if (params.tolerance > 0 && stats.breakdown == Breakdown::kNone)
    stats.breakdown = Breakdown::kMaxIterations;
  // tolerance <= 0 is the fixed-iteration-count mode: running out the
  // budget is the intended completion, not a breakdown.
  return stats;
}

}  // namespace lqcd
