// Minimal residual (MR) iteration [Saad, Iterative Methods, Sec. 5.3.2].
//
// This is the paper's block solver (Sec. II-D): it needs only three
// vectors (x, r, Ar), which is what lets the per-domain solve run from L2
// cache. Each iteration costs one operator application plus one batched
// reduction for the two inner products.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "lqcd/base/aligned.h"
#include "lqcd/simd/dispatch.h"
#include "lqcd/solver/linear_operator.h"

namespace lqcd {

struct MRParams {
  int max_iterations = 10;
  /// Relative residual target; <= 0 means "run exactly max_iterations",
  /// the fixed-iteration-count mode the Schwarz block solve uses.
  double tolerance = 0.0;
  /// Over/under-relaxation factor omega (1.0 = plain MR).
  double omega = 1.0;
};

template <class T>
SolverStats mr_solve(const LinearOperator<T>& op, const FermionField<T>& b,
                     FermionField<T>& x, const MRParams& params,
                     bool x_is_zero = false) {
  SolverStats stats;
  const std::int64_t n = op.vector_size();
  LQCD_CHECK(b.size() == n && x.size() == n);

  FermionField<T> r(n), ar(n);
  if (x_is_zero) {
    copy(b, r);
  } else {
    op.apply(x, r);
    ++stats.matvecs;
    sub(b, r, r);
  }
  const double bnorm = norm(b);
  ++stats.global_sum_events;
  if (bnorm == 0.0) {
    x.zero();
    stats.converged = true;
    return stats;
  }
  double rnorm2 = norm2(r);
  ++stats.global_sum_events;

  const T omega = static_cast<T>(params.omega);
  for (int it = 0; it < params.max_iterations; ++it) {
    const double rel = std::sqrt(rnorm2) / bnorm;
    stats.residual_history.push_back(rel);
    if (params.tolerance > 0 && rel <= params.tolerance) {
      stats.converged = true;
      break;
    }
    op.apply(r, ar);
    ++stats.matvecs;
    // alpha = <Ar, r> / <Ar, Ar>; both inner products in one reduction.
    const auto arr = dot(ar, r);
    const double arar = norm2(ar);
    ++stats.global_sum_events;
    if (!std::isfinite(arar) || !std::isfinite(rnorm2)) {
      ++stats.nonfinite_events;
      stats.breakdown = Breakdown::kNanDetected;
      break;
    }
    if (arar == 0.0) {
      // r in the null space of op: no usable direction.
      stats.breakdown = Breakdown::kStagnation;
      break;
    }
    const Complex<T> alpha(
        static_cast<T>(omega * arr.real() / arar),
        static_cast<T>(omega * arr.imag() / arar));
    axpy(alpha, r, x);
    axpy(-alpha, ar, r);
    // Track ||r||^2 incrementally? Recompute: cheap and robust, and
    // bundles with the next iteration's reduction in a real multi-node
    // run, so we do not count it separately.
    rnorm2 = norm2(r);
    ++stats.iterations;
  }
  stats.final_relative_residual = std::sqrt(rnorm2) / bnorm;
  if (params.tolerance > 0 && stats.final_relative_residual <= params.tolerance)
    stats.converged = true;
  if (stats.converged)
    stats.breakdown = Breakdown::kNone;
  else if (params.tolerance > 0 && stats.breakdown == Breakdown::kNone)
    stats.breakdown = Breakdown::kMaxIterations;
  // tolerance <= 0 is the fixed-iteration-count mode: running out the
  // budget is the intended completion, not a breakdown.
  return stats;
}

// ---------------------------------------------------------------------------
// Lane-wise MR scalars for multi-RHS block solves (SOA-over-RHS).
//
// The lane-vectorized Schwarz block solve stores a batch of right-hand
// sides with the RHS index innermost ([site][component][lane], see
// schwarz/storage.h) and runs the MR recurrence on all lanes in one pass.
// Each lane carries its OWN alpha = <Ar, r> / <Ar, Ar> — accumulated in
// double exactly like the scalar path — and a lane whose <Ar, Ar> hits
// exact zero is masked out (alpha forced to 0, freezing its z and r):
// the lane analogue of the scalar path's `if (arar == 0.0) break`.
//
// The helpers below are layout-light on purpose: they take raw float
// pointers in the [complex component][lane] order plus the lane count, so
// they work on any container (or sub-range) with that innermost layout.
// ---------------------------------------------------------------------------

/// Per-lane MR scalar state. `lanes` is the padded lane count; only the
/// first `active_lanes` start active (padding lanes never iterate and are
/// never counted).
struct LaneMRState {
  std::vector<double> arr_re, arr_im, arar;  ///< <Ar,r>, <Ar,Ar> per lane
  std::vector<float> alpha_re, alpha_im;     ///< current per-lane alpha
  std::vector<unsigned char> active;         ///< 1 while a lane iterates

  LaneMRState() = default;
  LaneMRState(int lanes, int active_lanes) { reset(lanes, active_lanes); }

  void reset(int lanes, int active_lanes) {
    arr_re.assign(static_cast<std::size_t>(lanes), 0.0);
    arr_im.assign(static_cast<std::size_t>(lanes), 0.0);
    arar.assign(static_cast<std::size_t>(lanes), 0.0);
    alpha_re.assign(static_cast<std::size_t>(lanes), 0.0f);
    alpha_im.assign(static_cast<std::size_t>(lanes), 0.0f);
    active.assign(static_cast<std::size_t>(lanes), 0);
    for (int l = 0; l < active_lanes && l < lanes; ++l)
      active[static_cast<std::size_t>(l)] = 1;
  }

  int lanes() const noexcept { return static_cast<int>(active.size()); }
  int num_active() const noexcept {
    int n = 0;
    for (const auto a : active) n += a;
    return n;
  }
};

/// One-pass accumulation of both MR inner products of every lane:
/// arr = <Ar, r>, arar = <Ar, Ar>. `r` and `ar` hold `ncomplex` complex
/// lane vectors — component 2k is the real part, 2k+1 the imaginary
/// part, each a contiguous run of `lanes` floats. Products are widened
/// to double exactly as in the scalar block solve.
inline void lane_mr_dots(const float* r, const float* ar,
                         std::int64_t ncomplex, int lanes, LaneMRState& st) {
  std::fill(st.arr_re.begin(), st.arr_re.end(), 0.0);
  std::fill(st.arr_im.begin(), st.arr_im.end(), 0.0);
  std::fill(st.arar.begin(), st.arar.end(), 0.0);
  simd::kernels().mr_dots_lanes(r, ar, ncomplex, lanes, st.arr_re.data(),
                                st.arr_im.data(), st.arar.data());
}

/// Per-lane alpha = arr / arar for the still-active lanes; a lane with
/// arar == 0 (converged or zero RHS) is deactivated and gets alpha = 0,
/// so the subsequent update freezes its z and r. Returns the number of
/// lanes still active AFTER masking.
inline int lane_mr_alphas(LaneMRState& st) noexcept {
  int remaining = 0;
  for (int l = 0; l < st.lanes(); ++l) {
    const auto ls = static_cast<std::size_t>(l);
    if (st.active[ls] == 0 || st.arar[ls] == 0.0) {
      st.active[ls] = 0;
      st.alpha_re[ls] = 0.0f;
      st.alpha_im[ls] = 0.0f;
      continue;
    }
    st.alpha_re[ls] = static_cast<float>(st.arr_re[ls] / st.arar[ls]);
    st.alpha_im[ls] = static_cast<float>(st.arr_im[ls] / st.arar[ls]);
    ++remaining;
  }
  return remaining;
}

/// The MR update, lane-wise: z += alpha r, r -= alpha Ar, with the
/// per-lane (masked) alphas of `st`. Layout as in lane_mr_dots.
inline void lane_mr_axpy(float* z, float* r, const float* ar,
                         std::int64_t ncomplex, int lanes,
                         const LaneMRState& st) {
  simd::kernels().mr_axpy_lanes(z, r, ar, ncomplex, lanes,
                                st.alpha_re.data(), st.alpha_im.data());
}

}  // namespace lqcd
