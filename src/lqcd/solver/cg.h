// Conjugate gradient [Hestenes & Stiefel 1952] for Hermitian
// positive-definite systems (e.g. the normal equations A^dag A, or the
// even-odd operator gamma5-symmetrized). Included as one of the standard
// Lattice QCD solvers the paper's Sec. II-C surveys.
#pragma once

#include "lqcd/solver/linear_operator.h"

namespace lqcd {

struct CGParams {
  int max_iterations = 1000;
  double tolerance = 1e-10;  ///< relative residual target
};

template <class T>
SolverStats cg_solve(const LinearOperator<T>& op, const FermionField<T>& b,
                     FermionField<T>& x, const CGParams& params) {
  SolverStats stats;
  const std::int64_t n = op.vector_size();
  LQCD_CHECK(b.size() == n && x.size() == n);

  FermionField<T> r(n), p(n), ap(n);
  op.apply(x, r);
  ++stats.matvecs;
  sub(b, r, r);
  copy(r, p);

  const double bnorm = norm(b);
  ++stats.global_sum_events;
  if (bnorm == 0.0) {
    x.zero();
    stats.converged = true;
    return stats;
  }
  double rr = norm2(r);
  ++stats.global_sum_events;

  for (int it = 0; it < params.max_iterations; ++it) {
    const double rel = std::sqrt(rr) / bnorm;
    stats.residual_history.push_back(rel);
    if (rel <= params.tolerance) {
      stats.converged = true;
      break;
    }
    op.apply(p, ap);
    ++stats.matvecs;
    const auto pap = dot(p, ap);
    ++stats.global_sum_events;
    if (!std::isfinite(pap.real()) || !std::isfinite(rr)) {
      ++stats.nonfinite_events;
      stats.breakdown = Breakdown::kNanDetected;
      break;
    }
    LQCD_CHECK_MSG(pap.real() > 0,
                   "CG requires a positive-definite operator");
    const T alpha = static_cast<T>(rr / pap.real());
    axpy(alpha, p, x);
    axpy(-alpha, ap, r);
    const double rr_new = norm2(r);
    ++stats.global_sum_events;
    const T beta = static_cast<T>(rr_new / rr);
    rr = rr_new;
    // p = r + beta p.
    scal(beta, p);
    axpy(T(1), r, p);
    ++stats.iterations;
  }
  stats.final_relative_residual = std::sqrt(rr) / bnorm;
  if (stats.final_relative_residual <= params.tolerance)
    stats.converged = true;
  if (stats.converged)
    stats.breakdown = Breakdown::kNone;
  else if (stats.breakdown == Breakdown::kNone)
    stats.breakdown = Breakdown::kMaxIterations;
  return stats;
}

/// A^dag A wrapper for solving non-Hermitian systems with CG on the
/// normal equations (CGNR). Uses gamma5-hermiticity-free generic adjoint
/// via two applications: here the adjoint must be supplied explicitly.
template <class T>
class NormalOperator final : public LinearOperator<T> {
 public:
  /// op_adj must implement the adjoint of op.
  NormalOperator(const LinearOperator<T>& op, const LinearOperator<T>& op_adj)
      : op_(&op), op_adj_(&op_adj), tmp_(op.vector_size()) {}

  void apply(const FermionField<T>& in, FermionField<T>& out) const override {
    op_->apply(in, tmp_);
    op_adj_->apply(tmp_, out);
  }

  std::int64_t vector_size() const override { return op_->vector_size(); }

 private:
  const LinearOperator<T>* op_;
  const LinearOperator<T>* op_adj_;
  mutable FermionField<T> tmp_;
};

}  // namespace lqcd
