// Flexible GMRES with deflated restarts (FGMRES-DR).
//
// This is the paper's outer solver [Frommer, Nobile, Zingler,
// arXiv:1204.5463; Morgan's GMRES-DR]. Two properties matter here:
//
//  * FLEXIBLE: the preconditioner M may be approximate and vary between
//    iterations (the Schwarz preconditioner is an iterative process run in
//    reduced precision), so the preconditioned vectors Z_j = M(v_j) are
//    stored alongside the Krylov basis V.
//  * DEFLATED RESTARTS: at each restart the k harmonic Ritz vectors of
//    smallest magnitude are carried over, which recovers the convergence
//    lost by restarting for spectra with small eigenvalues (the low modes
//    of the Dirac operator near the physical point).
//
// With deflation_size = 0 this degenerates to plain restarted FGMRES,
// which doubles as the baseline in tests.
#pragma once

#include <algorithm>
#include <numeric>

#include "lqcd/densela/matrix.h"
#include "lqcd/solver/linear_operator.h"

namespace lqcd {

struct FGMRESDRParams {
  int basis_size = 16;      ///< m: maximum Krylov basis per cycle
  int deflation_size = 0;   ///< k: harmonic Ritz vectors kept at restart
  int max_iterations = 2000;  ///< total Arnoldi steps across cycles
  double tolerance = 1e-10;   ///< relative residual target
  /// A cycle whose true residual fails to drop below
  /// stagnation_threshold x the previous cycle's counts as stagnant;
  /// after max_stagnant_cycles consecutive stagnant cycles the deflation
  /// subspace is discarded and the solve restarts plain from the freshly
  /// recomputed true residual (residual replacement). A healthy deflated
  /// solve reduces the residual every cycle, so this never fires on the
  /// fault-free path.
  double stagnation_threshold = 0.999;
  int max_stagnant_cycles = 3;
};

/// `monitor` (optional) is called at every cycle boundary with the
/// projected and true relative residuals; see SolveMonitor. Passing
/// nullptr reproduces the unmonitored solve bit-for-bit.
template <class T>
SolverStats fgmres_dr_solve(const LinearOperator<T>& op,
                            Preconditioner<T>* precond,
                            const FermionField<T>& b, FermionField<T>& x,
                            const FGMRESDRParams& params,
                            SolveMonitor<T>* monitor = nullptr) {
  using densela::Cplx;
  using densela::Matrix;

  SolverStats stats;
  const std::int64_t n = op.vector_size();
  LQCD_CHECK(b.size() == n && x.size() == n);
  const int m = params.basis_size;
  const int k = params.deflation_size;
  LQCD_CHECK_MSG(m >= 1, "basis size must be positive");
  LQCD_CHECK_MSG(k >= 0 && k < m, "need 0 <= deflation_size < basis_size");

  std::vector<FermionField<T>> v(static_cast<std::size_t>(m + 1)),
      z(static_cast<std::size_t>(m));
  for (auto& f : v) f = FermionField<T>(n);
  for (auto& f : z) f = FermionField<T>(n);
  FermionField<T> w(n), r(n);

  Matrix h(m + 1, m);
  std::vector<Cplx> c(static_cast<std::size_t>(m + 1));

  const double bnorm = norm(b);
  ++stats.global_sum_events;
  if (bnorm == 0.0) {
    x.zero();
    stats.converged = true;
    return stats;
  }

  op.apply(x, r);
  ++stats.matvecs;
  sub(b, r, r);
  double rnorm = norm(r);
  ++stats.global_sum_events;
  if (!std::isfinite(rnorm)) {
    ++stats.nonfinite_events;
    stats.breakdown = Breakdown::kNanDetected;
    stats.final_relative_residual = rnorm / bnorm;
    return stats;
  }

  auto restart_plain = [&](double rn) {
    h = Matrix(m + 1, m);
    std::fill(c.begin(), c.end(), Cplx(0, 0));
    c[0] = Cplx(rn, 0);
    copy(r, v[0]);
    scal(static_cast<T>(1.0 / rn), v[0]);
  };
  restart_plain(rnorm);
  int j0 = 0;
  double prev_cycle_rnorm = rnorm;
  int stagnant_cycles = 0;

  while (stats.iterations < params.max_iterations &&
         rnorm / bnorm > params.tolerance) {
    // ---- Arnoldi steps j0 .. m-1 -------------------------------------
    int mcur = j0;
    bool defective = false;  // a basis column had to be discarded
    for (int j = j0; j < m && stats.iterations < params.max_iterations;
         ++j) {
      if (precond != nullptr) {
        precond->apply(v[static_cast<std::size_t>(j)],
                       z[static_cast<std::size_t>(j)]);
        ++stats.precond_applications;
      } else {
        copy(v[static_cast<std::size_t>(j)], z[static_cast<std::size_t>(j)]);
      }
      op.apply(z[static_cast<std::size_t>(j)], w);
      ++stats.matvecs;
      // Classical Gram-Schmidt: all j+1 inner products batch into a
      // single global reduction.
      for (int i = 0; i <= j; ++i) {
        const auto d = dot(v[static_cast<std::size_t>(i)], w);
        h(i, j) = d;
      }
      ++stats.global_sum_events;
      for (int i = 0; i <= j; ++i) {
        const Cplx hij = h(i, j);
        axpy(Complex<T>(static_cast<T>(-hij.real()),
                        static_cast<T>(-hij.imag())),
             v[static_cast<std::size_t>(i)], w);
      }
      const double wnorm = norm(w);
      ++stats.global_sum_events;
      mcur = j + 1;
      ++stats.iterations;
      if (!std::isfinite(wnorm)) {
        // NaN/Inf entered the basis (corrupted operator or preconditioner
        // output). x is only updated at cycle end, so it is still clean:
        // drop the poisoned column and rebuild from the true residual.
        ++stats.nonfinite_events;
        mcur = j;
        defective = true;
        break;
      }
      if (wnorm < 1e-300) {
        // Either the Krylov space is exhausted at the solution (happy
        // breakdown: w collapsed under orthogonalization, the h column is
        // nonzero) or the preconditioner returned a degenerate direction
        // (w was ~0 to begin with, the h column is exactly zero and the
        // projected least-squares would be rank-deficient). Only the
        // latter needs the column excluded and a restart.
        bool zero_column = true;
        for (int i = 0; i <= j; ++i)
          if (h(i, j) != Cplx(0, 0)) {
            zero_column = false;
            break;
          }
        if (zero_column) {
          mcur = j;
          defective = true;
        }
        break;
      }
      h(j + 1, j) = Cplx(wnorm, 0);
      copy(w, v[static_cast<std::size_t>(j + 1)]);
      scal(static_cast<T>(1.0 / wnorm), v[static_cast<std::size_t>(j + 1)]);

      // Cheap residual estimate from the projected least-squares problem.
      Matrix hj(j + 2, j + 1);
      for (int rr2 = 0; rr2 < j + 2; ++rr2)
        for (int cc = 0; cc < j + 1; ++cc) hj(rr2, cc) = h(rr2, cc);
      std::vector<Cplx> cj(c.begin(), c.begin() + j + 2);
      const auto y = densela::least_squares(hj, cj);
      const auto hy = densela::mul(hj, y);
      double est2 = 0;
      for (int i2 = 0; i2 < j + 2; ++i2)
        est2 += std::norm(cj[static_cast<std::size_t>(i2)] -
                          hy[static_cast<std::size_t>(i2)]);
      const double est = std::sqrt(est2);
      stats.residual_history.push_back(est / bnorm);
      if (est / bnorm <= params.tolerance) break;
    }
    if (mcur == 0) {
      if (!defective) break;  // could not build any basis vector
      // Every direction this cycle was degenerate. Residual replacement:
      // discard the subspace and restart plain from the current true
      // residual (x is unchanged, r/rnorm are still current). Bounded by
      // max_iterations — each failed attempt consumed an Arnoldi step.
      ++stats.stagnation_restarts;
      restart_plain(rnorm);
      j0 = 0;
      continue;
    }

    // ---- Projected solve and solution update ------------------------
    Matrix hj(mcur + 1, mcur);
    for (int rr2 = 0; rr2 < mcur + 1; ++rr2)
      for (int cc = 0; cc < mcur; ++cc) hj(rr2, cc) = h(rr2, cc);
    std::vector<Cplx> cj(c.begin(), c.begin() + mcur + 1);
    const auto y = densela::least_squares(hj, cj);
    for (int j = 0; j < mcur; ++j)
      axpy(Complex<T>(static_cast<T>(y[static_cast<std::size_t>(j)].real()),
                      static_cast<T>(y[static_cast<std::size_t>(j)].imag())),
           z[static_cast<std::size_t>(j)], x);
    // Residual coordinates c_hat = c - H y in the V basis.
    const auto hy = densela::mul(hj, y);
    std::vector<Cplx> c_hat(static_cast<std::size_t>(mcur + 1));
    for (int i = 0; i < mcur + 1; ++i)
      c_hat[static_cast<std::size_t>(i)] =
          cj[static_cast<std::size_t>(i)] - hy[static_cast<std::size_t>(i)];

    // Projected (recursive) residual estimate at the cycle boundary —
    // what the Arnoldi recursion believes ||b - A x|| is.
    double chat2 = 0;
    for (int i = 0; i < mcur + 1; ++i)
      chat2 += std::norm(c_hat[static_cast<std::size_t>(i)]);
    const double est_rel = std::sqrt(chat2) / bnorm;

    // True residual (recomputed; also what a production code does each
    // cycle to guard against drift of the projected estimate).
    op.apply(x, r);
    ++stats.matvecs;
    sub(b, r, r);
    rnorm = norm(r);
    ++stats.global_sum_events;
    if (monitor != nullptr &&
        monitor->on_cycle(stats.iterations, est_rel, rnorm / bnorm, x)) {
      // The monitor changed x (checkpoint rollback after detecting that
      // the recursive and true residuals diverged): recompute the
      // residual of the restored iterate and restart clean from it.
      ++stats.rollback_restarts;
      op.apply(x, r);
      ++stats.matvecs;
      sub(b, r, r);
      rnorm = norm(r);
      ++stats.global_sum_events;
      if (!std::isfinite(rnorm)) {
        ++stats.nonfinite_events;
        stats.breakdown = Breakdown::kNanDetected;
        break;
      }
      restart_plain(rnorm);
      j0 = 0;
      prev_cycle_rnorm = rnorm;
      stagnant_cycles = 0;
      continue;
    }
    if (!std::isfinite(rnorm)) {
      ++stats.nonfinite_events;
      stats.breakdown = Breakdown::kNanDetected;
      break;
    }
    if (rnorm / bnorm <= params.tolerance) break;

    // Restart-on-stagnation: consecutive cycles without real progress
    // mean the carried subspace is poisoned (or useless); fall back to a
    // plain restart, replacing the recursive residual with the true one.
    bool force_plain = defective;
    if (rnorm > params.stagnation_threshold * prev_cycle_rnorm) {
      if (++stagnant_cycles >= params.max_stagnant_cycles) force_plain = true;
    } else {
      stagnant_cycles = 0;
    }
    prev_cycle_rnorm = rnorm;

    // ---- Restart ------------------------------------------------------
    if (force_plain) {
      ++stats.stagnation_restarts;
      stagnant_cycles = 0;
      restart_plain(rnorm);
      j0 = 0;
      continue;
    }
    if (k == 0 || mcur < m) {
      restart_plain(rnorm);
      j0 = 0;
      continue;
    }

    // Deflated restart: harmonic Ritz vectors of the m x m Hessenberg.
    Matrix hm(m, m);
    for (int i = 0; i < m; ++i)
      for (int j = 0; j < m; ++j) hm(i, j) = h(i, j);
    const Cplx h_last = h(m, m - 1);
    // f = H_m^{-H} e_m.
    std::vector<Cplx> em(static_cast<std::size_t>(m), Cplx(0, 0));
    em[static_cast<std::size_t>(m - 1)] = Cplx(1, 0);
    const auto f = densela::solve(hm.transpose_conj(), em);
    Matrix bmat = hm;
    const double hl2 = std::norm(h_last);
    for (int i = 0; i < m; ++i)
      bmat(i, m - 1) += hl2 * f[static_cast<std::size_t>(i)];
    auto eres = densela::eig(bmat);
    // Indices of the k smallest |theta| (the low modes to deflate).
    std::vector<int> idx(static_cast<std::size_t>(m));
    std::iota(idx.begin(), idx.end(), 0);
    std::sort(idx.begin(), idx.end(), [&](int a2, int b2) {
      return std::abs(eres.values[static_cast<std::size_t>(a2)]) <
             std::abs(eres.values[static_cast<std::size_t>(b2)]);
    });

    // P = [g_1 .. g_k, c_hat] in the (m+1)-dimensional V coordinates.
    Matrix p(m + 1, k + 1);
    for (int j = 0; j < k; ++j)
      for (int i = 0; i < m; ++i)
        p(i, j) = eres.vectors(i, idx[static_cast<std::size_t>(j)]);
    for (int i = 0; i < m + 1; ++i)
      p(i, k) = c_hat[static_cast<std::size_t>(i)];
    Matrix phat, rdummy;
    densela::thin_qr(p, phat, rdummy);

    // Transform the bases: V_new = V * Phat, Z_new = Z * Phat(0:m, 0:k).
    std::vector<FermionField<T>> vnew(static_cast<std::size_t>(k + 1)),
        znew(static_cast<std::size_t>(k));
    for (int j = 0; j <= k; ++j) {
      vnew[static_cast<std::size_t>(j)] = FermionField<T>(n);
      for (int i = 0; i <= m; ++i) {
        const Cplx pij = phat(i, j);
        if (pij == Cplx(0, 0)) continue;
        axpy(Complex<T>(static_cast<T>(pij.real()),
                        static_cast<T>(pij.imag())),
             v[static_cast<std::size_t>(i)],
             vnew[static_cast<std::size_t>(j)]);
      }
    }
    for (int j = 0; j < k; ++j) {
      znew[static_cast<std::size_t>(j)] = FermionField<T>(n);
      for (int i = 0; i < m; ++i) {
        const Cplx pij = phat(i, j);
        if (pij == Cplx(0, 0)) continue;
        axpy(Complex<T>(static_cast<T>(pij.real()),
                        static_cast<T>(pij.imag())),
             z[static_cast<std::size_t>(i)],
             znew[static_cast<std::size_t>(j)]);
      }
    }
    // H_new = Phat^H Hbar Phat(0:m, 0:k),   c_new = Phat^H c_hat.
    Matrix hbar(m + 1, m);
    for (int i = 0; i < m + 1; ++i)
      for (int j = 0; j < m; ++j) hbar(i, j) = h(i, j);
    Matrix pk(m, k);
    for (int i = 0; i < m; ++i)
      for (int j = 0; j < k; ++j) pk(i, j) = phat(i, j);
    const Matrix hnew = densela::mul(phat.transpose_conj(),
                                     densela::mul(hbar, pk));
    std::vector<Cplx> cnew =
        densela::mul(phat.transpose_conj(), c_hat);

    h = Matrix(m + 1, m);
    for (int i = 0; i <= k; ++i)
      for (int j = 0; j < k; ++j) h(i, j) = hnew(i, j);
    std::fill(c.begin(), c.end(), Cplx(0, 0));
    for (int i = 0; i <= k; ++i) c[static_cast<std::size_t>(i)] =
        cnew[static_cast<std::size_t>(i)];
    for (int j = 0; j <= k; ++j)
      std::swap(v[static_cast<std::size_t>(j)],
                vnew[static_cast<std::size_t>(j)]);
    for (int j = 0; j < k; ++j)
      std::swap(z[static_cast<std::size_t>(j)],
                znew[static_cast<std::size_t>(j)]);
    j0 = k;
  }

  stats.final_relative_residual = rnorm / bnorm;
  stats.converged = stats.final_relative_residual <= params.tolerance;
  if (stats.converged)
    stats.breakdown = Breakdown::kNone;
  else if (stats.breakdown == Breakdown::kNone)
    stats.breakdown = Breakdown::kMaxIterations;
  return stats;
}

}  // namespace lqcd
