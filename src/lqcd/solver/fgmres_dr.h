// Flexible GMRES with deflated restarts (FGMRES-DR).
//
// This is the paper's outer solver [Frommer, Nobile, Zingler,
// arXiv:1204.5463; Morgan's GMRES-DR]. Two properties matter here:
//
//  * FLEXIBLE: the preconditioner M may be approximate and vary between
//    iterations (the Schwarz preconditioner is an iterative process run in
//    reduced precision), so the preconditioned vectors Z_j = M(v_j) are
//    stored alongside the Krylov basis V.
//  * DEFLATED RESTARTS: at each restart the k harmonic Ritz vectors of
//    smallest magnitude are carried over, which recovers the convergence
//    lost by restarting for spectra with small eigenvalues (the low modes
//    of the Dirac operator near the physical point).
//
// With deflation_size = 0 this degenerates to plain restarted FGMRES,
// which doubles as the baseline in tests.
//
// The solve is implemented as a resumable per-right-hand-side engine
// (FgmresDrEngine): everything except the preconditioner application —
// matvecs, Gram–Schmidt, projected solves, restarts, harmonic Ritz
// extraction — runs inside advance(), and the engine pauses exactly at
// the points where it needs z_j = M(v_j). A driver that holds several
// engines can therefore batch the preconditioner applications of many
// right-hand sides into one multi-RHS Schwarz sweep (paper Sec. VI),
// while fgmres_dr_solve() below drives a single engine and reproduces
// the classic one-RHS solve bit for bit.
#pragma once

#include <algorithm>
#include <numeric>

#include "lqcd/densela/matrix.h"
#include "lqcd/solver/linear_operator.h"

namespace lqcd {

struct FGMRESDRParams {
  int basis_size = 16;      ///< m: maximum Krylov basis per cycle
  int deflation_size = 0;   ///< k: harmonic Ritz vectors kept at restart
  int max_iterations = 2000;  ///< total Arnoldi steps across cycles
  double tolerance = 1e-10;   ///< relative residual target
  /// A cycle whose true residual fails to drop below
  /// stagnation_threshold x the previous cycle's counts as stagnant;
  /// after max_stagnant_cycles consecutive stagnant cycles the deflation
  /// subspace is discarded and the solve restarts plain from the freshly
  /// recomputed true residual (residual replacement). A healthy deflated
  /// solve reduces the residual every cycle, so this never fires on the
  /// fault-free path.
  double stagnation_threshold = 0.999;
  int max_stagnant_cycles = 3;
};

/// Harmonic-Ritz deflation subspace harvested from a completed solve, for
/// recycling into subsequent solves against the SAME operator (e.g. the
/// 12 spin-color solves of a propagator). The stored relation is
/// A z_j = sum_i v_i h(i, j) with orthonormal v — exactly the carried
/// block of a deflated restart — so a new right-hand side can project its
/// initial residual onto the subspace (Galerkin correction through the
/// least-squares problem min ||V^H r - h y||) without any extra operator
/// applications.
template <class T>
struct DeflationSpace {
  std::vector<FermionField<T>> v;  ///< k+1 orthonormal basis vectors
  std::vector<FermionField<T>> z;  ///< k preconditioned directions
  densela::Matrix h;               ///< (k+1) x k projected Hessenberg

  bool valid() const noexcept {
    return !z.empty() && v.size() == z.size() + 1;
  }
  void clear() {
    v.clear();
    z.clear();
    h = densela::Matrix();
  }
};

/// One right-hand side's FGMRES-DR solve as an explicit state machine.
/// Usage:
///   FgmresDrEngine<T> e(op, b, x, params, monitor, recycle);
///   while (!e.done()) {
///     /* z = M v: */ precond.apply(e.precond_input(), e.precond_output());
///     e.note_precond_application();   // if a preconditioner ran
///     e.advance();
///   }
///   SolverStats stats = e.finish();
template <class T>
class FgmresDrEngine {
  using Cplx = densela::Cplx;
  using Matrix = densela::Matrix;

 public:
  /// Performs the initial residual computation (one matvec) and, when
  /// `recycle` holds a valid subspace, the recycled-deflation projection
  /// of the initial residual. `b`, `x`, `monitor` and `recycle` must
  /// outlive the engine.
  FgmresDrEngine(const LinearOperator<T>& op, const FermionField<T>& b,
                 FermionField<T>& x, const FGMRESDRParams& params,
                 SolveMonitor<T>* monitor = nullptr,
                 DeflationSpace<T>* recycle = nullptr)
      : op_(&op),
        b_(&b),
        x_(&x),
        params_(params),
        monitor_(monitor),
        recycle_(recycle),
        n_(op.vector_size()),
        m_(params.basis_size),
        k_(params.deflation_size) {
    LQCD_CHECK(b.size() == n_ && x.size() == n_);
    LQCD_CHECK_MSG(m_ >= 1, "basis size must be positive");
    LQCD_CHECK_MSG(k_ >= 0 && k_ < m_,
                   "need 0 <= deflation_size < basis_size");

    v_.resize(static_cast<std::size_t>(m_ + 1));
    z_.resize(static_cast<std::size_t>(m_));
    for (auto& f : v_) f = FermionField<T>(n_);
    for (auto& f : z_) f = FermionField<T>(n_);
    w_ = FermionField<T>(n_);
    r_ = FermionField<T>(n_);
    h_ = Matrix(m_ + 1, m_);
    c_.resize(static_cast<std::size_t>(m_ + 1));

    bnorm_ = norm(b);
    ++stats_.global_sum_events;
    if (bnorm_ == 0.0) {
      x.zero();
      stats_.converged = true;
      early_exit_ = true;
      done_ = true;
      return;
    }

    op.apply(x, r_);
    ++stats_.matvecs;
    sub(b, r_, r_);
    rnorm_ = norm(r_);
    ++stats_.global_sum_events;
    if (!std::isfinite(rnorm_)) {
      ++stats_.nonfinite_events;
      stats_.breakdown = Breakdown::kNanDetected;
      stats_.final_relative_residual = rnorm_ / bnorm_;
      early_exit_ = true;
      done_ = true;
      return;
    }

    project_recycled_subspace();

    restart_plain();
    prev_cycle_rnorm_ = rnorm_;
    begin_cycle();
  }

  bool done() const noexcept { return done_; }

  /// The vector awaiting preconditioning (v_j). Only valid while !done().
  const FermionField<T>& precond_input() const noexcept {
    return v_[static_cast<std::size_t>(j_)];
  }
  /// Where M v_j must be written (z_j). Only valid while !done().
  FermionField<T>& precond_output() noexcept {
    return z_[static_cast<std::size_t>(j_)];
  }
  void note_precond_application() noexcept { ++stats_.precond_applications; }

  const SolverStats& stats() const noexcept { return stats_; }

  /// Consume z_j and run to the next preconditioner request (or to
  /// completion): matvec, orthogonalization, and — at cycle boundaries —
  /// the projected solve, true-residual check, and restart logic.
  void advance() {
    LQCD_CHECK_MSG(!done_, "advance() called on a finished solve");
    auto& w = w_;
    const int j = j_;
    op_->apply(z_[static_cast<std::size_t>(j)], w);
    ++stats_.matvecs;
    // Classical Gram-Schmidt: all j+1 inner products batch into a single
    // global reduction.
    for (int i = 0; i <= j; ++i) {
      const auto d = dot(v_[static_cast<std::size_t>(i)], w);
      h_(i, j) = d;
    }
    ++stats_.global_sum_events;
    for (int i = 0; i <= j; ++i) {
      const Cplx hij = h_(i, j);
      axpy(Complex<T>(static_cast<T>(-hij.real()),
                      static_cast<T>(-hij.imag())),
           v_[static_cast<std::size_t>(i)], w);
    }
    const double wnorm = norm(w);
    ++stats_.global_sum_events;
    mcur_ = j + 1;
    ++stats_.iterations;
    if (!std::isfinite(wnorm)) {
      // NaN/Inf entered the basis (corrupted operator or preconditioner
      // output). x is only updated at cycle end, so it is still clean:
      // drop the poisoned column and rebuild from the true residual.
      ++stats_.nonfinite_events;
      mcur_ = j;
      defective_ = true;
      end_cycle();
      return;
    }
    if (wnorm < 1e-300) {
      // Either the Krylov space is exhausted at the solution (happy
      // breakdown: w collapsed under orthogonalization, the h column is
      // nonzero) or the preconditioner returned a degenerate direction
      // (w was ~0 to begin with, the h column is exactly zero and the
      // projected least-squares would be rank-deficient). Only the
      // latter needs the column excluded and a restart.
      bool zero_column = true;
      for (int i = 0; i <= j; ++i)
        if (h_(i, j) != Cplx(0, 0)) {
          zero_column = false;
          break;
        }
      if (zero_column) {
        mcur_ = j;
        defective_ = true;
      }
      end_cycle();
      return;
    }
    h_(j + 1, j) = Cplx(wnorm, 0);
    copy(w, v_[static_cast<std::size_t>(j + 1)]);
    scal(static_cast<T>(1.0 / wnorm), v_[static_cast<std::size_t>(j + 1)]);

    // Cheap residual estimate from the projected least-squares problem.
    Matrix hj(j + 2, j + 1);
    for (int rr2 = 0; rr2 < j + 2; ++rr2)
      for (int cc = 0; cc < j + 1; ++cc) hj(rr2, cc) = h_(rr2, cc);
    std::vector<Cplx> cj(c_.begin(), c_.begin() + j + 2);
    const auto y = densela::least_squares(hj, cj);
    const auto hy = densela::mul(hj, y);
    double est2 = 0;
    for (int i2 = 0; i2 < j + 2; ++i2)
      est2 += std::norm(cj[static_cast<std::size_t>(i2)] -
                        hy[static_cast<std::size_t>(i2)]);
    const double est = std::sqrt(est2);
    stats_.residual_history.push_back(est / bnorm_);
    if (est / bnorm_ <= params_.tolerance) {
      end_cycle();
      return;
    }
    ++j_;
    if (j_ < m_ && stats_.iterations < params_.max_iterations)
      return;  // pause for the next preconditioner application
    end_cycle();
  }

  /// Finalize: converged flag, breakdown classification, and — when a
  /// recycle space was supplied and a deflated subspace is live — the
  /// harvest of v[0..k], z[0..k-1] and the projected Hessenberg block.
  SolverStats finish() {
    if (early_exit_) return stats_;
    stats_.final_relative_residual = rnorm_ / bnorm_;
    stats_.converged = stats_.final_relative_residual <= params_.tolerance;
    if (stats_.converged)
      stats_.breakdown = Breakdown::kNone;
    else if (stats_.breakdown == Breakdown::kNone)
      stats_.breakdown = Breakdown::kMaxIterations;
    harvest_recycled_subspace();
    return stats_;
  }

 private:
  /// Galerkin-project the initial residual onto the recycled deflation
  /// subspace: y = argmin ||V^H r - H y||, x += Z y, r -= V H y. Since the
  /// recycled V is orthonormal and A Z = V H, this minimizes the true
  /// residual over x + span(Z); the update is only committed when the
  /// residual norm actually drops (floating-point guard).
  void project_recycled_subspace() {
    if (recycle_ == nullptr || !recycle_->valid()) return;
    if (recycle_->v.front().size() != n_) return;
    const int kr = static_cast<int>(recycle_->z.size());
    if (recycle_->h.rows() != kr + 1 || recycle_->h.cols() != kr) return;

    std::vector<Cplx> cr(static_cast<std::size_t>(kr + 1));
    for (int i = 0; i <= kr; ++i)
      cr[static_cast<std::size_t>(i)] =
          dot(recycle_->v[static_cast<std::size_t>(i)], r_);
    ++stats_.global_sum_events;
    const auto y = densela::least_squares(recycle_->h, cr);
    const auto hy = densela::mul(recycle_->h, y);
    FermionField<T> rc(n_);
    copy(r_, rc);
    for (int i = 0; i <= kr; ++i) {
      const Cplx hyi = hy[static_cast<std::size_t>(i)];
      if (hyi == Cplx(0, 0)) continue;
      axpy(Complex<T>(static_cast<T>(-hyi.real()),
                      static_cast<T>(-hyi.imag())),
           recycle_->v[static_cast<std::size_t>(i)], rc);
    }
    const double rn = norm(rc);
    ++stats_.global_sum_events;
    if (!std::isfinite(rn) || rn >= rnorm_) return;  // projection not useful
    for (int jj = 0; jj < kr; ++jj) {
      const Cplx yj = y[static_cast<std::size_t>(jj)];
      axpy(Complex<T>(static_cast<T>(yj.real()),
                      static_cast<T>(yj.imag())),
           recycle_->z[static_cast<std::size_t>(jj)], *x_);
    }
    std::swap(r_, rc);
    rnorm_ = rn;
    ++stats_.recycle_projections;
  }

  /// After the first deflated restart, v[0..k], z[0..k-1] and the top-left
  /// (k+1) x k block of h stay the carried harmonic-Ritz space for the
  /// rest of the solve (Arnoldi only appends columns >= k), so the live
  /// subspace can be copied out at any termination point.
  void harvest_recycled_subspace() {
    if (recycle_ == nullptr || !deflation_live_ || k_ <= 0) return;
    recycle_->v.resize(static_cast<std::size_t>(k_ + 1));
    recycle_->z.resize(static_cast<std::size_t>(k_));
    for (int i = 0; i <= k_; ++i)
      recycle_->v[static_cast<std::size_t>(i)] =
          v_[static_cast<std::size_t>(i)];
    for (int jj = 0; jj < k_; ++jj)
      recycle_->z[static_cast<std::size_t>(jj)] =
          z_[static_cast<std::size_t>(jj)];
    recycle_->h = Matrix(k_ + 1, k_);
    for (int i = 0; i <= k_; ++i)
      for (int jj = 0; jj < k_; ++jj) recycle_->h(i, jj) = h_(i, jj);
  }

  void restart_plain() {
    h_ = Matrix(m_ + 1, m_);
    std::fill(c_.begin(), c_.end(), Cplx(0, 0));
    c_[0] = Cplx(rnorm_, 0);
    copy(r_, v_[0]);
    scal(static_cast<T>(1.0 / rnorm_), v_[0]);
    j0_ = 0;
    deflation_live_ = false;
  }

  /// Re-check the outer loop condition and, if another cycle runs, reset
  /// the per-cycle Arnoldi state. Pauses at the first preconditioner
  /// application of the cycle.
  void begin_cycle() {
    if (stats_.iterations >= params_.max_iterations ||
        rnorm_ / bnorm_ <= params_.tolerance) {
      done_ = true;
      return;
    }
    j_ = j0_;
    mcur_ = j0_;
    defective_ = false;
  }

  void end_cycle() {
    if (mcur_ == 0) {
      if (!defective_) {  // could not build any basis vector
        done_ = true;
        return;
      }
      // Every direction this cycle was degenerate. Residual replacement:
      // discard the subspace and restart plain from the current true
      // residual (x is unchanged, r/rnorm are still current). Bounded by
      // max_iterations — each failed attempt consumed an Arnoldi step.
      ++stats_.stagnation_restarts;
      restart_plain();
      begin_cycle();
      return;
    }

    // ---- Projected solve and solution update ------------------------
    const int mcur = mcur_;
    Matrix hj(mcur + 1, mcur);
    for (int rr2 = 0; rr2 < mcur + 1; ++rr2)
      for (int cc = 0; cc < mcur; ++cc) hj(rr2, cc) = h_(rr2, cc);
    std::vector<Cplx> cj(c_.begin(), c_.begin() + mcur + 1);
    const auto y = densela::least_squares(hj, cj);
    for (int j = 0; j < mcur; ++j)
      axpy(Complex<T>(static_cast<T>(y[static_cast<std::size_t>(j)].real()),
                      static_cast<T>(y[static_cast<std::size_t>(j)].imag())),
           z_[static_cast<std::size_t>(j)], *x_);
    // Residual coordinates c_hat = c - H y in the V basis.
    const auto hy = densela::mul(hj, y);
    std::vector<Cplx> c_hat(static_cast<std::size_t>(mcur + 1));
    for (int i = 0; i < mcur + 1; ++i)
      c_hat[static_cast<std::size_t>(i)] =
          cj[static_cast<std::size_t>(i)] - hy[static_cast<std::size_t>(i)];

    // Projected (recursive) residual estimate at the cycle boundary —
    // what the Arnoldi recursion believes ||b - A x|| is.
    double chat2 = 0;
    for (int i = 0; i < mcur + 1; ++i)
      chat2 += std::norm(c_hat[static_cast<std::size_t>(i)]);
    const double est_rel = std::sqrt(chat2) / bnorm_;

    // True residual (recomputed; also what a production code does each
    // cycle to guard against drift of the projected estimate).
    op_->apply(*x_, r_);
    ++stats_.matvecs;
    sub(*b_, r_, r_);
    rnorm_ = norm(r_);
    ++stats_.global_sum_events;
    if (monitor_ != nullptr &&
        monitor_->on_cycle(stats_.iterations, est_rel, rnorm_ / bnorm_,
                           *x_)) {
      // The monitor changed x (checkpoint rollback after detecting that
      // the recursive and true residuals diverged): recompute the
      // residual of the restored iterate and restart clean from it.
      ++stats_.rollback_restarts;
      op_->apply(*x_, r_);
      ++stats_.matvecs;
      sub(*b_, r_, r_);
      rnorm_ = norm(r_);
      ++stats_.global_sum_events;
      if (!std::isfinite(rnorm_)) {
        ++stats_.nonfinite_events;
        stats_.breakdown = Breakdown::kNanDetected;
        done_ = true;
        return;
      }
      restart_plain();
      prev_cycle_rnorm_ = rnorm_;
      stagnant_cycles_ = 0;
      begin_cycle();
      return;
    }
    if (!std::isfinite(rnorm_)) {
      ++stats_.nonfinite_events;
      stats_.breakdown = Breakdown::kNanDetected;
      done_ = true;
      return;
    }
    if (rnorm_ / bnorm_ <= params_.tolerance) {
      done_ = true;
      return;
    }

    // Restart-on-stagnation: consecutive cycles without real progress
    // mean the carried subspace is poisoned (or useless); fall back to a
    // plain restart, replacing the recursive residual with the true one.
    bool force_plain = defective_;
    if (rnorm_ > params_.stagnation_threshold * prev_cycle_rnorm_) {
      if (++stagnant_cycles_ >= params_.max_stagnant_cycles)
        force_plain = true;
    } else {
      stagnant_cycles_ = 0;
    }
    prev_cycle_rnorm_ = rnorm_;

    // ---- Restart ------------------------------------------------------
    if (force_plain) {
      ++stats_.stagnation_restarts;
      stagnant_cycles_ = 0;
      restart_plain();
      begin_cycle();
      return;
    }
    if (k_ == 0 || mcur < m_) {
      restart_plain();
      begin_cycle();
      return;
    }

    deflated_restart(c_hat);
    begin_cycle();
  }

  /// Deflated restart: harmonic Ritz vectors of the m x m Hessenberg.
  void deflated_restart(const std::vector<Cplx>& c_hat) {
    const int m = m_;
    const int k = k_;
    Matrix hm(m, m);
    for (int i = 0; i < m; ++i)
      for (int j = 0; j < m; ++j) hm(i, j) = h_(i, j);
    const Cplx h_last = h_(m, m - 1);
    // f = H_m^{-H} e_m.
    std::vector<Cplx> em(static_cast<std::size_t>(m), Cplx(0, 0));
    em[static_cast<std::size_t>(m - 1)] = Cplx(1, 0);
    const auto f = densela::solve(hm.transpose_conj(), em);
    Matrix bmat = hm;
    const double hl2 = std::norm(h_last);
    for (int i = 0; i < m; ++i)
      bmat(i, m - 1) += hl2 * f[static_cast<std::size_t>(i)];
    auto eres = densela::eig(bmat);
    // Indices of the k smallest |theta| (the low modes to deflate).
    std::vector<int> idx(static_cast<std::size_t>(m));
    std::iota(idx.begin(), idx.end(), 0);
    std::sort(idx.begin(), idx.end(), [&](int a2, int b2) {
      return std::abs(eres.values[static_cast<std::size_t>(a2)]) <
             std::abs(eres.values[static_cast<std::size_t>(b2)]);
    });

    // P = [g_1 .. g_k, c_hat] in the (m+1)-dimensional V coordinates.
    Matrix p(m + 1, k + 1);
    for (int j = 0; j < k; ++j)
      for (int i = 0; i < m; ++i)
        p(i, j) = eres.vectors(i, idx[static_cast<std::size_t>(j)]);
    for (int i = 0; i < m + 1; ++i)
      p(i, k) = c_hat[static_cast<std::size_t>(i)];
    Matrix phat, rdummy;
    densela::thin_qr(p, phat, rdummy);

    // Transform the bases: V_new = V * Phat, Z_new = Z * Phat(0:m, 0:k).
    std::vector<FermionField<T>> vnew(static_cast<std::size_t>(k + 1)),
        znew(static_cast<std::size_t>(k));
    for (int j = 0; j <= k; ++j) {
      vnew[static_cast<std::size_t>(j)] = FermionField<T>(n_);
      for (int i = 0; i <= m; ++i) {
        const Cplx pij = phat(i, j);
        if (pij == Cplx(0, 0)) continue;
        axpy(Complex<T>(static_cast<T>(pij.real()),
                        static_cast<T>(pij.imag())),
             v_[static_cast<std::size_t>(i)],
             vnew[static_cast<std::size_t>(j)]);
      }
    }
    for (int j = 0; j < k; ++j) {
      znew[static_cast<std::size_t>(j)] = FermionField<T>(n_);
      for (int i = 0; i < m; ++i) {
        const Cplx pij = phat(i, j);
        if (pij == Cplx(0, 0)) continue;
        axpy(Complex<T>(static_cast<T>(pij.real()),
                        static_cast<T>(pij.imag())),
             z_[static_cast<std::size_t>(i)],
             znew[static_cast<std::size_t>(j)]);
      }
    }
    // H_new = Phat^H Hbar Phat(0:m, 0:k),   c_new = Phat^H c_hat.
    Matrix hbar(m + 1, m);
    for (int i = 0; i < m + 1; ++i)
      for (int j = 0; j < m; ++j) hbar(i, j) = h_(i, j);
    Matrix pk(m, k);
    for (int i = 0; i < m; ++i)
      for (int j = 0; j < k; ++j) pk(i, j) = phat(i, j);
    const Matrix hnew = densela::mul(phat.transpose_conj(),
                                     densela::mul(hbar, pk));
    std::vector<Cplx> cnew =
        densela::mul(phat.transpose_conj(), c_hat);

    h_ = Matrix(m + 1, m);
    for (int i = 0; i <= k; ++i)
      for (int j = 0; j < k; ++j) h_(i, j) = hnew(i, j);
    std::fill(c_.begin(), c_.end(), Cplx(0, 0));
    for (int i = 0; i <= k; ++i)
      c_[static_cast<std::size_t>(i)] = cnew[static_cast<std::size_t>(i)];
    for (int j = 0; j <= k; ++j)
      std::swap(v_[static_cast<std::size_t>(j)],
                vnew[static_cast<std::size_t>(j)]);
    for (int j = 0; j < k; ++j)
      std::swap(z_[static_cast<std::size_t>(j)],
                znew[static_cast<std::size_t>(j)]);
    j0_ = k;
    deflation_live_ = true;
  }

  const LinearOperator<T>* op_;
  const FermionField<T>* b_;
  FermionField<T>* x_;
  FGMRESDRParams params_;
  SolveMonitor<T>* monitor_;
  DeflationSpace<T>* recycle_;

  std::int64_t n_;
  int m_, k_;
  std::vector<FermionField<T>> v_, z_;
  FermionField<T> w_, r_;
  Matrix h_;
  std::vector<Cplx> c_;

  SolverStats stats_;
  double bnorm_ = 0, rnorm_ = 0, prev_cycle_rnorm_ = 0;
  int stagnant_cycles_ = 0;
  int j0_ = 0, j_ = 0, mcur_ = 0;
  bool defective_ = false;
  bool deflation_live_ = false;
  bool early_exit_ = false;
  bool done_ = false;
};

/// `monitor` (optional) is called at every cycle boundary with the
/// projected and true relative residuals; see SolveMonitor. Passing
/// nullptr reproduces the unmonitored solve bit-for-bit. `recycle`
/// (optional) supplies a deflation subspace from a previous solve against
/// the same operator (projected into the initial guess) and receives this
/// solve's harvested subspace on completion.
template <class T>
SolverStats fgmres_dr_solve(const LinearOperator<T>& op,
                            Preconditioner<T>* precond,
                            const FermionField<T>& b, FermionField<T>& x,
                            const FGMRESDRParams& params,
                            SolveMonitor<T>* monitor = nullptr,
                            DeflationSpace<T>* recycle = nullptr) {
  FgmresDrEngine<T> engine(op, b, x, params, monitor, recycle);
  while (!engine.done()) {
    if (precond != nullptr) {
      precond->apply(engine.precond_input(), engine.precond_output());
      engine.note_precond_application();
    } else {
      copy(engine.precond_input(), engine.precond_output());
    }
    engine.advance();
  }
  return engine.finish();
}

}  // namespace lqcd
