// Solver-facing abstractions: linear operators, preconditioners, stats.
//
// Solvers are written against the abstract LinearOperator so the same
// Krylov code serves the full Wilson–Clover operator, the even–odd Schur
// operator, per-domain block operators, and synthetic test operators.
//
// SolverStats tracks what the paper's Table III reports: iteration counts,
// operator applications, and the number of *global reduction events* (a
// batched Gram–Schmidt of j inner products is ONE reduction on the
// network, which is how the paper arrives at ~2 global sums per outer
// iteration).
#pragma once

#include <cstdint>
#include <vector>

#include "lqcd/linalg/blas.h"
#include "lqcd/linalg/fermion_field.h"

namespace lqcd {

template <class T>
class LinearOperator {
 public:
  virtual ~LinearOperator() = default;

  /// out = Op(in). `out` must be distinct from `in`.
  virtual void apply(const FermionField<T>& in, FermionField<T>& out) const = 0;

  /// Number of sites in the operator's vector space.
  virtual std::int64_t vector_size() const = 0;
};

/// Flexible preconditioner interface: apply() may be approximate and may
/// differ from call to call (iterative preconditioners), which is exactly
/// what flexible outer solvers tolerate.
template <class T>
class Preconditioner {
 public:
  virtual ~Preconditioner() = default;
  virtual void apply(const FermionField<T>& in, FermionField<T>& out) = 0;
};

/// Preconditioner that can apply itself to a whole batch of vectors in
/// one call (multi-RHS, paper Sec. VI). The base implementation falls
/// back to one apply() per RHS; implementations override apply_batch()
/// to amortize matrix streaming over the batch.
template <class T>
class BatchPreconditioner : public Preconditioner<T> {
 public:
  virtual void apply_batch(const std::vector<const FermionField<T>*>& in,
                           const std::vector<FermionField<T>*>& out) {
    for (std::size_t i = 0; i < in.size(); ++i) this->apply(*in[i], *out[i]);
  }
};

template <class T>
class IdentityPreconditioner final : public Preconditioner<T> {
 public:
  void apply(const FermionField<T>& in, FermionField<T>& out) override {
    copy(in, out);
  }
};

/// Why a solve terminated without reaching its tolerance. kNone for a
/// converged (or intentionally fixed-count) solve; anything else is a
/// structured replacement for the silent `break`s the Krylov kernels used
/// to take on numerical breakdown.
enum class Breakdown {
  kNone = 0,
  kRhoBreakdown,   ///< Lanczos/BiCG scalar hit exact zero (rho, omega, r0·v)
  kNanDetected,    ///< NaN/Inf in a residual norm or inner product
  kStagnation,      ///< no usable search direction / no residual decrease
  kMaxIterations,   ///< iteration budget exhausted
  kDataCorruption,  ///< ABFT: corrupt data with no verified repair source
  kStaleSetup,      ///< gauge field mutated after setup was packed; no solve ran
};

inline const char* to_string(Breakdown b) noexcept {
  switch (b) {
    case Breakdown::kNone: return "none";
    case Breakdown::kRhoBreakdown: return "rho_breakdown";
    case Breakdown::kNanDetected: return "nan_detected";
    case Breakdown::kStagnation: return "stagnation";
    case Breakdown::kMaxIterations: return "max_iterations";
    case Breakdown::kDataCorruption: return "data_corruption";
    case Breakdown::kStaleSetup: return "stale_setup";
  }
  return "?";
}

struct SolverStats {
  bool converged = false;
  int iterations = 0;          ///< outer/Krylov iterations
  std::int64_t matvecs = 0;    ///< operator applications
  std::int64_t precond_applications = 0;
  std::int64_t global_sum_events = 0;  ///< batched reductions
  double final_relative_residual = 0.0;
  std::vector<double> residual_history;  ///< relative residual per iteration
  Breakdown breakdown = Breakdown::kNone;  ///< why the solve ended, if failed
  int stagnation_restarts = 0;  ///< forced plain restarts (residual replaced)
  int rollback_restarts = 0;    ///< monitor-driven checkpoint rollbacks
  std::int64_t nonfinite_events = 0;  ///< NaN/Inf detections survived
  int recycle_projections = 0;  ///< initial residual projected onto a
                                ///< recycled deflation subspace (multi-RHS)
};

/// Cycle-granularity observer for restarted outer solvers. on_cycle() is
/// invoked each time the solver has just recomputed the TRUE residual of
/// the current iterate x, alongside the recursively maintained (projected)
/// estimate. The monitor may mutate x — e.g. roll it back to a checkpoint
/// when the two residuals diverge (silent data corruption) — and must then
/// return true, which forces the solver to recompute the residual and
/// restart from the modified iterate.
template <class T>
class SolveMonitor {
 public:
  virtual ~SolveMonitor() = default;
  virtual bool on_cycle(int iterations, double estimated_rel_residual,
                        double true_rel_residual, FermionField<T>& x) = 0;
};

/// Diagonal operator with a prescribed per-site spectrum — used by solver
/// unit tests to control conditioning and eigenvalue placement exactly.
template <class T>
class DiagonalOperator final : public LinearOperator<T> {
 public:
  explicit DiagonalOperator(std::vector<Complex<T>> site_eigenvalues)
      : diag_(std::move(site_eigenvalues)) {}

  void apply(const FermionField<T>& in, FermionField<T>& out) const override {
    LQCD_CHECK(in.size() == vector_size() && out.size() == vector_size());
    for (std::int64_t i = 0; i < in.size(); ++i) {
      const Complex<T> d = diag_[static_cast<std::size_t>(i)];
      for (int sp = 0; sp < kNumSpins; ++sp)
        for (int c = 0; c < kNumColors; ++c)
          out[i].s[sp].c[c] = d * in[i].s[sp].c[c];
    }
  }

  std::int64_t vector_size() const override {
    return static_cast<std::int64_t>(diag_.size());
  }

 private:
  std::vector<Complex<T>> diag_;
};

}  // namespace lqcd
