// Small helpers on std::complex used throughout the algebra kernels.
#pragma once

#include <complex>

namespace lqcd {

template <class T>
using Complex = std::complex<T>;

/// a * b with b conjugated — the ubiquitous "U^dagger row" product.
template <class T>
inline Complex<T> mul_conj(const Complex<T>& a, const Complex<T>& b) noexcept {
  return Complex<T>(a.real() * b.real() + a.imag() * b.imag(),
                    a.imag() * b.real() - a.real() * b.imag());
}

/// i * a (free on hardware with FMA sign tricks; explicit here).
template <class T>
inline Complex<T> timesI(const Complex<T>& a) noexcept {
  return Complex<T>(-a.imag(), a.real());
}

/// -i * a.
template <class T>
inline Complex<T> timesMinusI(const Complex<T>& a) noexcept {
  return Complex<T>(a.imag(), -a.real());
}

}  // namespace lqcd
