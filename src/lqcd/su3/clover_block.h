// Packed Hermitian 6×6 blocks for the clover term.
//
// In the chiral (DeGrand–Rossi) basis, sigma_{mu,nu} commutes with gamma_5,
// so the clover term decouples into the two chirality halves: per site it
// is two Hermitian 6×6 matrices acting on (2 spin × 3 color) components.
// Following the paper (Sec. II-B) each block is stored packed as 6 real
// diagonal + 15 complex lower-triangle elements = 36 reals, i.e. 72 reals
// per site for both blocks.
#pragma once

#include <array>

#include "lqcd/base/error.h"
#include "lqcd/su3/complex_ops.h"

namespace lqcd {

inline constexpr int kCloverBlockDim = 6;
inline constexpr int kCloverOffDiag = 15;  // 6*5/2

/// Index into the packed lower triangle for row i > col j.
constexpr int packed_index(int i, int j) noexcept {
  return i * (i - 1) / 2 + j;
}

template <class T>
struct PackedHermitian6 {
  T diag[kCloverBlockDim];
  Complex<T> offd[kCloverOffDiag];  // offd[packed_index(i,j)] = M[i][j], i>j

  void zero() noexcept {
    for (auto& d : diag) d = T(0);
    for (auto& z : offd) z = Complex<T>(0, 0);
  }

  void identity() noexcept {
    zero();
    for (auto& d : diag) d = T(1);
  }

  /// Add s to every diagonal element (the (N_d + m) mass term).
  void add_diagonal(T s) noexcept {
    for (auto& d : diag) d += s;
  }

  /// y = M x. 42 flops per row × 6 rows = 252 flops (paper's 504/site for
  /// both chirality blocks).
  void apply(const Complex<T>* x, Complex<T>* y) const noexcept {
    for (int i = 0; i < kCloverBlockDim; ++i) {
      Complex<T> acc = Complex<T>(diag[i], 0) * x[i];
      for (int j = 0; j < i; ++j) acc += offd[packed_index(i, j)] * x[j];
      for (int j = i + 1; j < kCloverBlockDim; ++j)
        acc += mul_conj(x[j], offd[packed_index(j, i)]);
      y[i] = acc;
    }
  }

  /// Dense 6×6 form (tests, inversion).
  std::array<std::array<Complex<T>, kCloverBlockDim>, kCloverBlockDim>
  to_dense() const noexcept {
    std::array<std::array<Complex<T>, kCloverBlockDim>, kCloverBlockDim> m{};
    for (int i = 0; i < kCloverBlockDim; ++i) {
      m[static_cast<size_t>(i)][static_cast<size_t>(i)] =
          Complex<T>(diag[i], 0);
      for (int j = 0; j < i; ++j) {
        m[static_cast<size_t>(i)][static_cast<size_t>(j)] =
            offd[packed_index(i, j)];
        m[static_cast<size_t>(j)][static_cast<size_t>(i)] =
            std::conj(offd[packed_index(i, j)]);
      }
    }
    return m;
  }
};

/// Invert a packed Hermitian block via dense LU with partial pivoting.
/// The inverse of a Hermitian matrix is Hermitian, so it packs back
/// losslessly. Returns false on (numerically) singular input, leaving
/// `out` unspecified — the throw-free form callable from inside
/// `omp parallel` regions (an exception escaping one is
/// std::terminate), where the caller collects failures and throws
/// after the region.
template <class T>
bool try_invert(const PackedHermitian6<T>& in,
                PackedHermitian6<T>& out) noexcept {
  constexpr int n = kCloverBlockDim;
  auto a = in.to_dense();
  // Augment with identity and run Gauss-Jordan with partial pivoting.
  std::array<std::array<Complex<T>, n>, n> inv{};
  for (int i = 0; i < n; ++i)
    inv[static_cast<size_t>(i)][static_cast<size_t>(i)] = Complex<T>(1, 0);

  for (int col = 0; col < n; ++col) {
    int pivot = col;
    T best = std::abs(a[static_cast<size_t>(col)][static_cast<size_t>(col)]);
    for (int r = col + 1; r < n; ++r) {
      const T mag = std::abs(a[static_cast<size_t>(r)][static_cast<size_t>(col)]);
      if (mag > best) {
        best = mag;
        pivot = r;
      }
    }
    if (!(best > T(0))) return false;
    if (pivot != col) {
      std::swap(a[static_cast<size_t>(pivot)], a[static_cast<size_t>(col)]);
      std::swap(inv[static_cast<size_t>(pivot)], inv[static_cast<size_t>(col)]);
    }
    const Complex<T> scale =
        Complex<T>(1, 0) / a[static_cast<size_t>(col)][static_cast<size_t>(col)];
    for (int j = 0; j < n; ++j) {
      a[static_cast<size_t>(col)][static_cast<size_t>(j)] *= scale;
      inv[static_cast<size_t>(col)][static_cast<size_t>(j)] *= scale;
    }
    for (int r = 0; r < n; ++r) {
      if (r == col) continue;
      const Complex<T> f = a[static_cast<size_t>(r)][static_cast<size_t>(col)];
      if (f == Complex<T>(0, 0)) continue;
      for (int j = 0; j < n; ++j) {
        a[static_cast<size_t>(r)][static_cast<size_t>(j)] -=
            f * a[static_cast<size_t>(col)][static_cast<size_t>(j)];
        inv[static_cast<size_t>(r)][static_cast<size_t>(j)] -=
            f * inv[static_cast<size_t>(col)][static_cast<size_t>(j)];
      }
    }
  }

  for (int i = 0; i < n; ++i) {
    out.diag[i] = inv[static_cast<size_t>(i)][static_cast<size_t>(i)].real();
    for (int j = 0; j < i; ++j)
      out.offd[packed_index(i, j)] =
          inv[static_cast<size_t>(i)][static_cast<size_t>(j)];
  }
  return true;
}

/// Throwing wrapper for serial callers: lqcd::Error on singular input.
template <class T>
PackedHermitian6<T> invert(const PackedHermitian6<T>& in) {
  PackedHermitian6<T> out;
  LQCD_CHECK_MSG(try_invert(in, out), "singular clover block");
  return out;
}

}  // namespace lqcd
