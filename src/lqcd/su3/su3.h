// SU(3) color matrices and color vectors.
//
// Gauge links U_mu(x) are 3×3 special-unitary complex matrices (paper
// Sec. II-B). The kernels here are deliberately scalar and simple; the
// performance story of the paper lives in the KNC machine model, while
// these routines provide bit-exact, testable numerics.
#pragma once

#include <array>
#include <cmath>

#include "lqcd/base/rng.h"
#include "lqcd/su3/complex_ops.h"

namespace lqcd {

inline constexpr int kNumColors = 3;

/// Color vector: 3 complex components.
template <class T>
struct ColorVector {
  Complex<T> c[kNumColors];

  void zero() noexcept {
    for (auto& x : c) x = Complex<T>(0, 0);
  }
};

template <class T>
inline ColorVector<T> operator+(const ColorVector<T>& a,
                                const ColorVector<T>& b) noexcept {
  ColorVector<T> r;
  for (int i = 0; i < kNumColors; ++i) r.c[i] = a.c[i] + b.c[i];
  return r;
}

template <class T>
inline ColorVector<T> operator-(const ColorVector<T>& a,
                                const ColorVector<T>& b) noexcept {
  ColorVector<T> r;
  for (int i = 0; i < kNumColors; ++i) r.c[i] = a.c[i] - b.c[i];
  return r;
}

/// 3×3 complex color matrix; for gauge links it is special-unitary but the
/// type does not enforce that (sums of links, e.g. clover leaves, are not).
template <class T>
struct SU3 {
  Complex<T> m[kNumColors][kNumColors];

  void zero() noexcept {
    for (auto& row : m)
      for (auto& x : row) x = Complex<T>(0, 0);
  }

  void identity() noexcept {
    zero();
    for (int i = 0; i < kNumColors; ++i) m[i][i] = Complex<T>(1, 0);
  }

  static SU3 unit() noexcept {
    SU3 u;
    u.identity();
    return u;
  }
};

/// Flat float view of a single-precision SU(3) matrix: 18 floats,
/// row-major with interleaved (re,im) — the layout the runtime-dispatched
/// SIMD kernels (simd/dispatch.h) and the packed storage
/// (schwarz/storage.h) agree on. Legal because std::complex<float> is
/// layout-compatible with float[2].
inline const float* flat(const SU3<float>& u) noexcept {
  return reinterpret_cast<const float*>(u.m);
}
inline float* flat(SU3<float>& u) noexcept {
  return reinterpret_cast<float*>(u.m);
}

/// y = U x.
template <class T>
inline ColorVector<T> mul(const SU3<T>& u, const ColorVector<T>& x) noexcept {
  ColorVector<T> y;
  for (int i = 0; i < kNumColors; ++i) {
    Complex<T> acc = u.m[i][0] * x.c[0];
    acc += u.m[i][1] * x.c[1];
    acc += u.m[i][2] * x.c[2];
    y.c[i] = acc;
  }
  return y;
}

/// y = U^dagger x.
template <class T>
inline ColorVector<T> mul_adj(const SU3<T>& u,
                              const ColorVector<T>& x) noexcept {
  ColorVector<T> y;
  for (int i = 0; i < kNumColors; ++i) {
    Complex<T> acc = mul_conj(x.c[0], u.m[0][i]);
    acc += mul_conj(x.c[1], u.m[1][i]);
    acc += mul_conj(x.c[2], u.m[2][i]);
    y.c[i] = acc;
  }
  return y;
}

/// C = A B.
template <class T>
inline SU3<T> mul(const SU3<T>& a, const SU3<T>& b) noexcept {
  SU3<T> c;
  for (int i = 0; i < kNumColors; ++i)
    for (int j = 0; j < kNumColors; ++j) {
      Complex<T> acc = a.m[i][0] * b.m[0][j];
      acc += a.m[i][1] * b.m[1][j];
      acc += a.m[i][2] * b.m[2][j];
      c.m[i][j] = acc;
    }
  return c;
}

/// C = A B^dagger.
template <class T>
inline SU3<T> mul_adj(const SU3<T>& a, const SU3<T>& b) noexcept {
  SU3<T> c;
  for (int i = 0; i < kNumColors; ++i)
    for (int j = 0; j < kNumColors; ++j) {
      Complex<T> acc = mul_conj(a.m[i][0], b.m[j][0]);
      acc += mul_conj(a.m[i][1], b.m[j][1]);
      acc += mul_conj(a.m[i][2], b.m[j][2]);
      c.m[i][j] = acc;
    }
  return c;
}

/// C = A^dagger B.
template <class T>
inline SU3<T> adj_mul(const SU3<T>& a, const SU3<T>& b) noexcept {
  SU3<T> c;
  for (int i = 0; i < kNumColors; ++i)
    for (int j = 0; j < kNumColors; ++j) {
      Complex<T> acc = mul_conj(b.m[0][j], a.m[0][i]);
      acc += mul_conj(b.m[1][j], a.m[1][i]);
      acc += mul_conj(b.m[2][j], a.m[2][i]);
      c.m[i][j] = acc;
    }
  return c;
}

template <class T>
inline SU3<T> adjoint(const SU3<T>& a) noexcept {
  SU3<T> c;
  for (int i = 0; i < kNumColors; ++i)
    for (int j = 0; j < kNumColors; ++j) c.m[i][j] = std::conj(a.m[j][i]);
  return c;
}

template <class T>
inline SU3<T> operator+(const SU3<T>& a, const SU3<T>& b) noexcept {
  SU3<T> c;
  for (int i = 0; i < kNumColors; ++i)
    for (int j = 0; j < kNumColors; ++j) c.m[i][j] = a.m[i][j] + b.m[i][j];
  return c;
}

template <class T>
inline SU3<T> operator-(const SU3<T>& a, const SU3<T>& b) noexcept {
  SU3<T> c;
  for (int i = 0; i < kNumColors; ++i)
    for (int j = 0; j < kNumColors; ++j) c.m[i][j] = a.m[i][j] - b.m[i][j];
  return c;
}

template <class T>
inline SU3<T> operator*(const Complex<T>& s, const SU3<T>& a) noexcept {
  SU3<T> c;
  for (int i = 0; i < kNumColors; ++i)
    for (int j = 0; j < kNumColors; ++j) c.m[i][j] = s * a.m[i][j];
  return c;
}

template <class T>
inline Complex<T> trace(const SU3<T>& a) noexcept {
  return a.m[0][0] + a.m[1][1] + a.m[2][2];
}

/// Frobenius-norm distance from exact unitarity, ||U^dagger U - 1||_F.
template <class T>
inline double unitarity_error(const SU3<T>& u) noexcept {
  SU3<T> p = adj_mul(u, u);
  double err = 0;
  for (int i = 0; i < kNumColors; ++i)
    for (int j = 0; j < kNumColors; ++j) {
      const Complex<T> d = p.m[i][j] - Complex<T>(i == j ? 1 : 0, 0);
      err += static_cast<double>(std::norm(d));
    }
  return std::sqrt(err);
}

/// Project a matrix back onto SU(3): Gram–Schmidt on the first two rows,
/// third row = conjugate cross product (guarantees det = +1).
template <class T>
SU3<T> reunitarize(const SU3<T>& a) noexcept {
  SU3<T> u = a;
  // Normalize row 0.
  T n0 = 0;
  for (int j = 0; j < kNumColors; ++j) n0 += std::norm(u.m[0][j]);
  n0 = T(1) / std::sqrt(n0);
  for (int j = 0; j < kNumColors; ++j) u.m[0][j] *= n0;
  // Orthogonalize row 1 against row 0, then normalize.
  Complex<T> proj(0, 0);
  for (int j = 0; j < kNumColors; ++j)
    proj += mul_conj(u.m[1][j], u.m[0][j]);
  for (int j = 0; j < kNumColors; ++j) u.m[1][j] -= proj * u.m[0][j];
  T n1 = 0;
  for (int j = 0; j < kNumColors; ++j) n1 += std::norm(u.m[1][j]);
  n1 = T(1) / std::sqrt(n1);
  for (int j = 0; j < kNumColors; ++j) u.m[1][j] *= n1;
  // Row 2 = (row0 x row1)^*.
  u.m[2][0] = std::conj(u.m[0][1] * u.m[1][2] - u.m[0][2] * u.m[1][1]);
  u.m[2][1] = std::conj(u.m[0][2] * u.m[1][0] - u.m[0][0] * u.m[1][2]);
  u.m[2][2] = std::conj(u.m[0][0] * u.m[1][1] - u.m[0][1] * u.m[1][0]);
  return u;
}

/// Determinant (det = 1 for SU(3); used by tests).
template <class T>
inline Complex<T> det(const SU3<T>& u) noexcept {
  return u.m[0][0] * (u.m[1][1] * u.m[2][2] - u.m[1][2] * u.m[2][1]) -
         u.m[0][1] * (u.m[1][0] * u.m[2][2] - u.m[1][2] * u.m[2][0]) +
         u.m[0][2] * (u.m[1][0] * u.m[2][1] - u.m[1][1] * u.m[2][0]);
}

/// Random traceless anti-Hermitian matrix H with entries of scale
/// `magnitude`, used to generate gauge disorder: U = exp(H) (via
/// reunitarized truncated series below).
template <class T>
SU3<T> random_antihermitian(Rng& rng, double magnitude) {
  SU3<T> h;
  // Off-diagonal: h_ij = z, h_ji = -conj(z).
  for (int i = 0; i < kNumColors; ++i)
    for (int j = i + 1; j < kNumColors; ++j) {
      const Complex<T> z(static_cast<T>(magnitude * rng.gaussian()),
                         static_cast<T>(magnitude * rng.gaussian()));
      h.m[i][j] = z;
      h.m[j][i] = -std::conj(z);
    }
  // Diagonal: purely imaginary, traceless.
  T d0 = static_cast<T>(magnitude * rng.gaussian());
  T d1 = static_cast<T>(magnitude * rng.gaussian());
  h.m[0][0] = Complex<T>(0, d0);
  h.m[1][1] = Complex<T>(0, d1);
  h.m[2][2] = Complex<T>(0, -d0 - d1);
  return h;
}

/// exp(H) for anti-Hermitian H via 12th-order Taylor series followed by a
/// reunitarization sweep. Accurate to machine precision for the |H| <~ 2
/// range used in gauge generation.
template <class T>
SU3<T> expm(const SU3<T>& h) noexcept {
  SU3<T> result = SU3<T>::unit();
  SU3<T> term = SU3<T>::unit();
  for (int k = 1; k <= 12; ++k) {
    term = mul(term, h);
    const Complex<T> scale(T(1) / static_cast<T>(k), 0);
    term = scale * term;
    result = result + term;
  }
  return reunitarize(result);
}

/// Random SU(3) matrix: exp of a random anti-Hermitian matrix. With
/// magnitude ~ O(1) this is close to Haar-uniform for our purposes
/// (strong disorder); small magnitudes give fields near unity.
template <class T>
SU3<T> random_su3(Rng& rng, double magnitude = 1.0) {
  return expm(random_antihermitian<T>(rng, magnitude));
}

}  // namespace lqcd
