// Dirac 4-spinors and Wilson half-spinors.
//
// A spinor carries 4 spin × 3 color = 12 complex = 24 real degrees of
// freedom per site (paper Sec. II-B). The Wilson hopping term projects a
// spinor to a 2-spin "half-spinor" (12 reals) before the link
// multiplication — the object the paper packs into AOS boundary buffers
// (Fig. 3).
#pragma once

#include <cmath>

#include "lqcd/su3/su3.h"

namespace lqcd {

inline constexpr int kNumSpins = 4;
inline constexpr int kSpinorReals = 2 * kNumColors * kNumSpins;  // 24

template <class T>
struct Spinor {
  ColorVector<T> s[kNumSpins];

  void zero() noexcept {
    for (auto& cv : s) cv.zero();
  }
};

template <class T>
struct HalfSpinor {
  ColorVector<T> s[2];

  void zero() noexcept {
    s[0].zero();
    s[1].zero();
  }
};

template <class T>
inline Spinor<T> operator+(const Spinor<T>& a, const Spinor<T>& b) noexcept {
  Spinor<T> r;
  for (int sp = 0; sp < kNumSpins; ++sp) r.s[sp] = a.s[sp] + b.s[sp];
  return r;
}

template <class T>
inline Spinor<T> operator-(const Spinor<T>& a, const Spinor<T>& b) noexcept {
  Spinor<T> r;
  for (int sp = 0; sp < kNumSpins; ++sp) r.s[sp] = a.s[sp] - b.s[sp];
  return r;
}

template <class T>
inline Spinor<T> operator*(const Complex<T>& z, const Spinor<T>& a) noexcept {
  Spinor<T> r;
  for (int sp = 0; sp < kNumSpins; ++sp)
    for (int c = 0; c < kNumColors; ++c) r.s[sp].c[c] = z * a.s[sp].c[c];
  return r;
}

template <class T>
inline Spinor<T> operator*(T x, const Spinor<T>& a) noexcept {
  return Complex<T>(x, 0) * a;
}

/// <a|b> = sum conj(a_i) b_i.
template <class T>
inline Complex<T> dot(const Spinor<T>& a, const Spinor<T>& b) noexcept {
  Complex<T> acc(0, 0);
  for (int sp = 0; sp < kNumSpins; ++sp)
    for (int c = 0; c < kNumColors; ++c)
      acc += mul_conj(b.s[sp].c[c], a.s[sp].c[c]);
  return acc;
}

template <class T>
inline double norm2(const Spinor<T>& a) noexcept {
  double acc = 0;
  for (int sp = 0; sp < kNumSpins; ++sp)
    for (int c = 0; c < kNumColors; ++c)
      acc += static_cast<double>(std::norm(a.s[sp].c[c]));
  return acc;
}

/// y = U x applied color-wise to both spin components of a half-spinor.
template <class T>
inline HalfSpinor<T> mul(const SU3<T>& u, const HalfSpinor<T>& x) noexcept {
  HalfSpinor<T> y;
  y.s[0] = mul(u, x.s[0]);
  y.s[1] = mul(u, x.s[1]);
  return y;
}

template <class T>
inline HalfSpinor<T> mul_adj(const SU3<T>& u,
                             const HalfSpinor<T>& x) noexcept {
  HalfSpinor<T> y;
  y.s[0] = mul_adj(u, x.s[0]);
  y.s[1] = mul_adj(u, x.s[1]);
  return y;
}

}  // namespace lqcd
