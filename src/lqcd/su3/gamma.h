// Dirac gamma-matrix algebra in the DeGrand–Rossi basis.
//
// Every gamma matrix (and every product of gamma matrices) has exactly one
// non-zero entry per row, with value in {±1, ±i}. We exploit that by
// representing them as permutation+phase matrices, which makes the Wilson
// spin projection/reconstruction trick (paper Sec. II-B) generic over the
// direction mu instead of hand-coding four cases.
//
// Basis (mu = 0..3 = x,y,z,t):
//   gamma_x = [[0,0,0,i],[0,0,i,0],[0,-i,0,0],[-i,0,0,0]]
//   gamma_y = [[0,0,0,-1],[0,0,1,0],[0,1,0,0],[-1,0,0,0]]
//   gamma_z = [[0,0,i,0],[0,0,0,-i],[-i,0,0,0],[0,i,0,0]]
//   gamma_t = [[0,0,1,0],[0,0,0,1],[1,0,0,0],[0,1,0,0]]
//   gamma_5 = gamma_x gamma_y gamma_z gamma_t = diag(1,1,-1,-1).
#pragma once

#include <array>

#include "lqcd/base/constants.h"
#include "lqcd/su3/spinor.h"

namespace lqcd {

/// Phase factor from the set {1, -1, i, -i}, encoded so multiplication by
/// it is sign flips and real/imag swaps (free or cheap in SIMD code, and
/// exactly representable in every precision).
enum class Phase : int { kPlusOne, kMinusOne, kPlusI, kMinusI };

constexpr Phase operator*(Phase a, Phase b) noexcept {
  // Map to exponent of i: 1->0, i->1, -1->2, -i->3.
  constexpr int exp_of[4] = {0, 2, 1, 3};
  constexpr Phase of_exp[4] = {Phase::kPlusOne, Phase::kPlusI,
                               Phase::kMinusOne, Phase::kMinusI};
  return of_exp[(exp_of[static_cast<int>(a)] + exp_of[static_cast<int>(b)]) %
                4];
}

template <class T>
inline Complex<T> mul_phase(Phase p, const Complex<T>& z) noexcept {
  switch (p) {
    case Phase::kPlusOne:
      return z;
    case Phase::kMinusOne:
      return -z;
    case Phase::kPlusI:
      return timesI(z);
    case Phase::kMinusI:
    default:
      return timesMinusI(z);
  }
}

template <class T>
inline ColorVector<T> mul_phase(Phase p, const ColorVector<T>& v) noexcept {
  ColorVector<T> r;
  for (int c = 0; c < kNumColors; ++c) r.c[c] = mul_phase(p, v.c[c]);
  return r;
}

/// A 4×4 matrix with one non-zero entry per row: M[r][col[r]] = phase[r].
struct PermPhaseMatrix {
  std::array<int, kNumSpins> col;
  std::array<Phase, kNumSpins> phase;

  constexpr PermPhaseMatrix mul(const PermPhaseMatrix& b) const noexcept {
    PermPhaseMatrix r{};
    for (int i = 0; i < kNumSpins; ++i) {
      r.col[static_cast<size_t>(i)] =
          b.col[static_cast<size_t>(col[static_cast<size_t>(i)])];
      r.phase[static_cast<size_t>(i)] =
          phase[static_cast<size_t>(i)] *
          b.phase[static_cast<size_t>(col[static_cast<size_t>(i)])];
    }
    return r;
  }
};

/// The four gamma matrices in the DeGrand–Rossi basis.
inline constexpr std::array<PermPhaseMatrix, kNumDims> kGamma = {{
    // gamma_x
    {{3, 2, 1, 0},
     {Phase::kPlusI, Phase::kPlusI, Phase::kMinusI, Phase::kMinusI}},
    // gamma_y
    {{3, 2, 1, 0},
     {Phase::kMinusOne, Phase::kPlusOne, Phase::kPlusOne, Phase::kMinusOne}},
    // gamma_z
    {{2, 3, 0, 1},
     {Phase::kPlusI, Phase::kMinusI, Phase::kMinusI, Phase::kPlusI}},
    // gamma_t
    {{2, 3, 0, 1},
     {Phase::kPlusOne, Phase::kPlusOne, Phase::kPlusOne, Phase::kPlusOne}},
}};

/// gamma_5 = gamma_x gamma_y gamma_z gamma_t (computed, not asserted).
inline constexpr PermPhaseMatrix kGamma5 =
    kGamma[0].mul(kGamma[1]).mul(kGamma[2]).mul(kGamma[3]);

/// sigma_{mu,nu} = (i/2) [gamma_mu, gamma_nu] = i gamma_mu gamma_nu for
/// mu != nu (the anticommutator vanishes).
constexpr PermPhaseMatrix sigma_munu(int mu, int nu) noexcept {
  PermPhaseMatrix p = kGamma[static_cast<size_t>(mu)].mul(
      kGamma[static_cast<size_t>(nu)]);
  for (auto& ph : p.phase) ph = ph * Phase::kPlusI;
  return p;
}

/// Dense application y = M psi for any permutation+phase matrix (reference
/// path; kernels use the projection trick below instead).
template <class T>
inline Spinor<T> apply(const PermPhaseMatrix& m,
                       const Spinor<T>& psi) noexcept {
  Spinor<T> y;
  for (int r = 0; r < kNumSpins; ++r)
    y.s[r] = mul_phase(m.phase[static_cast<size_t>(r)],
                       psi.s[m.col[static_cast<size_t>(r)]]);
  return y;
}

// ---------------------------------------------------------------------------
// Wilson spin projection / reconstruction.
//
// (1 + sign*gamma_mu) psi is rank-2: its lower rows (2,3) are determined by
// the upper rows (0,1) via row r = sign * phase_r * h_{col_r}. The kernels
// therefore project to a 2-spin half-spinor, multiply by the link, and
// reconstruct — this is exactly the 1344-flop/site structure the paper
// counts for D_w.
// ---------------------------------------------------------------------------

/// h = upper two rows of (1 + sign*gamma_mu) psi, where sign = ±1.
template <class T>
inline HalfSpinor<T> project(const Spinor<T>& psi, int mu,
                             int sign) noexcept {
  const PermPhaseMatrix& g = kGamma[static_cast<size_t>(mu)];
  HalfSpinor<T> h;
  for (int r = 0; r < 2; ++r) {
    const ColorVector<T> gpart =
        mul_phase(g.phase[static_cast<size_t>(r)],
                  psi.s[g.col[static_cast<size_t>(r)]]);
    h.s[r] = sign > 0 ? psi.s[r] + gpart : psi.s[r] - gpart;
  }
  return h;
}

/// acc += full spinor reconstructed from h for projector (1 + sign*gamma_mu).
template <class T>
inline void reconstruct_add(Spinor<T>& acc, const HalfSpinor<T>& h, int mu,
                            int sign) noexcept {
  const PermPhaseMatrix& g = kGamma[static_cast<size_t>(mu)];
  acc.s[0] = acc.s[0] + h.s[0];
  acc.s[1] = acc.s[1] + h.s[1];
  for (int r = 2; r < kNumSpins; ++r) {
    const ColorVector<T> part =
        mul_phase(g.phase[static_cast<size_t>(r)],
                  h.s[g.col[static_cast<size_t>(r)]]);
    acc.s[r] = sign > 0 ? acc.s[r] + part : acc.s[r] - part;
  }
}

}  // namespace lqcd
