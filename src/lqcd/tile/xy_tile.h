// Site-fused xy-tile SIMD layout (paper Sec. III-A, Figs. 2 and 3).
//
// The KNC's 16-wide single-precision vectors are filled with 16 lattice
// sites of equal parity from the 8x4 xy cross-section of a domain: the
// "even tile" and "odd tile" interleave to cover the cross-section, and
// every spinor/gauge component occupies its own register and cache line
// (structure-of-arrays, 1:1 register <-> cache line, no gather/scatter).
//
// Hops in z and t address whole registers of the neighboring slice. Hops
// in x and y become lane permutations within the slice, with lanes whose
// neighbor crosses the domain boundary disabled by a write mask — wasting
// exactly 2/16 of the vector in x and 4/16 in y, the paper's quoted
// 12.5% / 25% SIMD losses. This module computes the lane permutations and
// masks *from the geometry* (nothing hand-coded), so the tests can verify
// both the site mapping and the paper's efficiency fractions.
#pragma once

#include <array>
#include <cstdint>

#include "lqcd/base/error.h"
#include "lqcd/lattice/geometry.h"

namespace lqcd {

inline constexpr int kTileLanes = 16;

/// Lane permutation for an x- or y-hop between the two tiles of a slice.
struct LaneShift {
  /// For each destination lane: the source lane in the *other* tile, or
  /// -1 when the neighbor lies outside the domain cross-section (the
  /// lane is masked off, Fig. 2's red elements).
  std::array<int, kTileLanes> source;

  int masked_lanes() const noexcept {
    int n = 0;
    for (const int s : source) n += (s < 0);
    return n;
  }
  double masked_fraction() const noexcept {
    return static_cast<double>(masked_lanes()) / kTileLanes;
  }
};

class XyTileLayout {
 public:
  /// Cross-section bx x by with bx*by == 32 (16 sites per parity tile).
  /// The paper's choice is 8x4.
  XyTileLayout(int bx, int by);

  int bx() const noexcept { return bx_; }
  int by() const noexcept { return by_; }

  /// Tile parity of a cross-section site (0 = "even tile").
  static int tile_of(int x, int y) noexcept { return (x + y) & 1; }

  /// SIMD lane of a site within its tile: lane = y * (bx/2/…) — computed
  /// from compressed coordinates (x is halved because each row of a tile
  /// holds every other x), matching Fig. 2's row-major numbering.
  int lane_of(int x, int y) const noexcept {
    return lane_[static_cast<std::size_t>(y) * static_cast<std::size_t>(bx_) +
                 static_cast<std::size_t>(x)];
  }

  /// Lane permutation of the hop from tile `tile` in direction
  /// (mu in {0 = x, 1 = y}, dir), with Dirichlet boundaries (domain
  /// cross-section edges masked).
  const LaneShift& shift(int tile, int mu, Dir dir) const noexcept {
    return shifts_[static_cast<std::size_t>(tile) * 4 +
                   static_cast<std::size_t>(mu) * 2 +
                   (dir == Dir::kForward ? 0 : 1)];
  }

 private:
  int bx_, by_;
  std::array<int, 32> lane_{};  // (x, y) -> lane
  std::array<LaneShift, 8> shifts_{};
};

}  // namespace lqcd
