// Site-fused Wilson dslash over the xy-tile layout — the paper's compute
// kernel structure (Sec. III-A) in portable form.
//
// With 16 same-parity xy-sites fused per register:
//   * z/t hops touch the SAME tile of the adjacent slice: every load is a
//     complete, lane-aligned 16-float run ("complete registers of 16
//     sites", paper).
//   * x/y hops touch the OTHER tile of the same slice through a lane
//     permutation with the domain-boundary lanes masked to zero (the
//     Fig. 2 permute + mask_add pattern, wasting 2/16 resp. 4/16 lanes).
//   * backward hops need the neighbor's link: for z/t a lane-aligned load
//     from the neighbor slice, for x/y the same permute applied to the
//     link components.
//
// The kernel computes the Dirichlet-boundary block operator (hops leaving
// the block dropped) — i.e. the D of the Schwarz splitting A = D + R —
// and is validated against the scalar implementation by the test suite.
// All 16-lane loops are simple enough for the host compiler to
// auto-vectorize; on the KNC each would be a single 512-bit instruction.
#pragma once

#include "lqcd/resilience/fault_injector.h"
#include "lqcd/su3/gamma.h"
#include "lqcd/tile/tiled_field.h"

namespace lqcd {

/// One 16-lane vector register worth of reals.
struct Lane {
  float v[kTileLanes];

  void zero() noexcept {
    for (auto& x : v) x = 0.0f;
  }
};

inline Lane operator+(const Lane& a, const Lane& b) noexcept {
  Lane r;
  for (int i = 0; i < kTileLanes; ++i) r.v[i] = a.v[i] + b.v[i];
  return r;
}
inline Lane operator-(const Lane& a, const Lane& b) noexcept {
  Lane r;
  for (int i = 0; i < kTileLanes; ++i) r.v[i] = a.v[i] - b.v[i];
  return r;
}
inline Lane operator*(const Lane& a, const Lane& b) noexcept {
  Lane r;
  for (int i = 0; i < kTileLanes; ++i) r.v[i] = a.v[i] * b.v[i];
  return r;
}

/// A complex vector register pair.
struct CLane {
  Lane re, im;

  void zero() noexcept {
    re.zero();
    im.zero();
  }
};

inline CLane operator+(const CLane& a, const CLane& b) noexcept {
  return {a.re + b.re, a.im + b.im};
}
inline CLane operator-(const CLane& a, const CLane& b) noexcept {
  return {a.re - b.re, a.im - b.im};
}
inline CLane cmul(const CLane& a, const CLane& b) noexcept {
  return {a.re * b.re - a.im * b.im, a.re * b.im + a.im * b.re};
}
/// conj(a) * b.
inline CLane cmul_conj(const CLane& a, const CLane& b) noexcept {
  return {a.re * b.re + a.im * b.im, a.re * b.im - a.im * b.re};
}
inline CLane mul_phase(Phase p, const CLane& z) noexcept {
  switch (p) {
    case Phase::kPlusOne:
      return z;
    case Phase::kMinusOne: {
      CLane r;
      for (int i = 0; i < kTileLanes; ++i) {
        r.re.v[i] = -z.re.v[i];
        r.im.v[i] = -z.im.v[i];
      }
      return r;
    }
    case Phase::kPlusI: {
      CLane r;
      for (int i = 0; i < kTileLanes; ++i) {
        r.re.v[i] = -z.im.v[i];
        r.im.v[i] = z.re.v[i];
      }
      return r;
    }
    case Phase::kMinusI:
    default: {
      CLane r;
      for (int i = 0; i < kTileLanes; ++i) {
        r.re.v[i] = z.im.v[i];
        r.im.v[i] = -z.re.v[i];
      }
      return r;
    }
  }
}

/// Gauge links in the site-fused SOA layout: 9 complex components per
/// (slice, tile, mu), each a contiguous 16-lane run.
class TiledGauge {
 public:
  explicit TiledGauge(const Coord& block)
      : block_(block),
        layout_(block[0], block[1]),
        slices_(static_cast<std::int64_t>(block[2]) * block[3]),
        data_(static_cast<std::size_t>(slices_) * 2 * kNumDims * 18 *
              kTileLanes) {}

  const XyTileLayout& layout() const noexcept { return layout_; }

  float* component(std::int64_t slice, int tile, int mu,
                   int comp) noexcept {
    return data_.data() +
           (((static_cast<std::size_t>(slice) * 2 +
              static_cast<std::size_t>(tile)) *
                 kNumDims +
             static_cast<std::size_t>(mu)) *
                18 +
            static_cast<std::size_t>(comp)) *
               kTileLanes;
  }
  const float* component(std::int64_t slice, int tile, int mu,
                         int comp) const noexcept {
    return const_cast<TiledGauge*>(this)->component(slice, tile, mu, comp);
  }

  /// Pack from per-site links: link_of(lex, mu) must return the SU(3)
  /// link of the block-local lexicographic site.
  template <class LinkOf>
  void pack(LinkOf&& link_of) {
    std::int32_t lex = 0;
    for (int t = 0; t < block_[3]; ++t)
      for (int z = 0; z < block_[2]; ++z)
        for (int y = 0; y < block_[1]; ++y)
          for (int x = 0; x < block_[0]; ++x, ++lex) {
            const std::int64_t slice =
                static_cast<std::int64_t>(z) +
                static_cast<std::int64_t>(block_[2]) * t;
            const int tile = XyTileLayout::tile_of(x, y);
            const int lane = layout_.lane_of(x, y);
            for (int mu = 0; mu < kNumDims; ++mu) {
              const SU3<float>& u = link_of(lex, mu);
              int comp = 0;
              for (int i = 0; i < kNumColors; ++i)
                for (int j = 0; j < kNumColors; ++j) {
                  component(slice, tile, mu, comp++)[lane] =
                      u.m[i][j].real();
                  component(slice, tile, mu, comp++)[lane] =
                      u.m[i][j].imag();
                }
            }
          }
  }

 private:
  Coord block_;
  XyTileLayout layout_;
  std::int64_t slices_;
  AlignedVector<float> data_;
};

namespace tile_detail {

inline CLane load(const float* re_run, const float* im_run) noexcept {
  CLane z;
  for (int i = 0; i < kTileLanes; ++i) z.re.v[i] = re_run[i];
  for (int i = 0; i < kTileLanes; ++i) z.im.v[i] = im_run[i];
  return z;
}

inline CLane load_permuted(const float* re_run, const float* im_run,
                           const LaneShift& sh) noexcept {
  CLane z;
  for (int i = 0; i < kTileLanes; ++i) {
    const int s = sh.source[static_cast<std::size_t>(i)];
    z.re.v[i] = s >= 0 ? re_run[s] : 0.0f;
    z.im.v[i] = s >= 0 ? im_run[s] : 0.0f;
  }
  return z;
}

/// Spinor component (spin, color) as a complex lane pair (components are
/// interleaved re, im in the TiledField's 24 runs).
inline CLane load_spinor(const TiledField& f, std::int64_t slice, int tile,
                         int spin, int color) noexcept {
  const int base = (spin * kNumColors + color) * 2;
  return load(f.component(slice, tile, base),
              f.component(slice, tile, base + 1));
}

inline CLane load_spinor_permuted(const TiledField& f, std::int64_t slice,
                                  int src_tile, int spin, int color,
                                  const LaneShift& sh) noexcept {
  const int base = (spin * kNumColors + color) * 2;
  return load_permuted(f.component(slice, src_tile, base),
                       f.component(slice, src_tile, base + 1), sh);
}

struct HalfLanes {
  CLane s[2][kNumColors];  // 2 spins x 3 colors
};
struct LinkLanes {
  CLane m[kNumColors][kNumColors];
};

/// y = U h (resp. U^dag h) on 16 fused sites at once.
inline HalfLanes mul(const LinkLanes& u, const HalfLanes& h) noexcept {
  HalfLanes y;
  for (int sp = 0; sp < 2; ++sp)
    for (int i = 0; i < kNumColors; ++i) {
      CLane acc = cmul(u.m[i][0], h.s[sp][0]);
      acc = acc + cmul(u.m[i][1], h.s[sp][1]);
      acc = acc + cmul(u.m[i][2], h.s[sp][2]);
      y.s[sp][i] = acc;
    }
  return y;
}

inline HalfLanes mul_adj(const LinkLanes& u, const HalfLanes& h) noexcept {
  HalfLanes y;
  for (int sp = 0; sp < 2; ++sp)
    for (int i = 0; i < kNumColors; ++i) {
      CLane acc = cmul_conj(u.m[0][i], h.s[sp][0]);
      acc = acc + cmul_conj(u.m[1][i], h.s[sp][1]);
      acc = acc + cmul_conj(u.m[2][i], h.s[sp][2]);
      y.s[sp][i] = acc;
    }
  return y;
}

}  // namespace tile_detail

/// out = D_w(in) restricted to the block with Dirichlet boundaries (the
/// Schwarz splitting's block-diagonal D applied to one domain).
/// `injector` optionally corrupts the SOA output once per its schedule
/// (FaultSite::kTileDslash) — the ROADMAP fault-coverage hook for the
/// tile/ kernels; nullptr is the fault-free path.
/// The (t, z) slice loop runs under OpenMP (disjoint output slices, so
/// the result is bit-identical for any OMP_NUM_THREADS); the injector
/// hook itself stays serial, after the join.
void tiled_block_dslash(const Coord& block, const TiledGauge& gauge,
                        const TiledField& in, TiledField& out,
                        FaultInjector* injector = nullptr);

}  // namespace lqcd
