// Site-fused structure-of-arrays spinor storage for one domain block
// (paper Sec. III-A): every one of the 24 real spinor components of the
// 16 fused sites occupies one contiguous 16-float run — one KNC vector
// register, one cache line — with the even and odd xy-tiles stored
// separately so even-odd preconditioning never mixes parities inside a
// register.
#pragma once

#include "lqcd/base/aligned.h"
#include "lqcd/linalg/fermion_field.h"
#include "lqcd/tile/xy_tile.h"

namespace lqcd {

class TiledField {
 public:
  /// Block of dims {bx, by, bz, bt} with bx*by == 32.
  TiledField(const Coord& block)
      : block_(block),
        layout_(block[0], block[1]),
        slices_(static_cast<std::int64_t>(block[2]) * block[3]),
        data_(static_cast<std::size_t>(slices_) * 2 * kSpinorReals *
              kTileLanes) {}

  const XyTileLayout& layout() const noexcept { return layout_; }
  std::int64_t slices() const noexcept { return slices_; }

  /// Contiguous 16-lane run of one real component: (slice, tile, comp).
  float* component(std::int64_t slice, int tile, int comp) noexcept {
    return data_.data() +
           ((static_cast<std::size_t>(slice) * 2 +
             static_cast<std::size_t>(tile)) *
                kSpinorReals +
            static_cast<std::size_t>(comp)) *
               kTileLanes;
  }
  const float* component(std::int64_t slice, int tile,
                         int comp) const noexcept {
    return const_cast<TiledField*>(this)->component(slice, tile, comp);
  }

  /// Raw SOA storage view (all slices, tiles, components, lanes) — the
  /// surface the fault-injection hook corrupts.
  float* data() noexcept { return data_.data(); }
  const float* data() const noexcept { return data_.data(); }
  std::int64_t size_reals() const noexcept {
    return static_cast<std::int64_t>(data_.size());
  }

  std::int64_t slice_index(int z, int t) const noexcept {
    return static_cast<std::int64_t>(z) +
           static_cast<std::int64_t>(block_[2]) * t;
  }

  /// Pack from a block-local field indexed lexicographically
  /// (x + bx*(y + by*(z + bz*t))).
  void pack(const FermionField<float>& src) {
    LQCD_CHECK(src.size() == static_cast<std::int64_t>(block_[0]) *
                                 block_[1] * block_[2] * block_[3]);
    for_each_site([&](std::int32_t lex, std::int64_t slice, int tile,
                      int lane) {
      const Spinor<float>& s = src[lex];
      int comp = 0;
      for (int sp = 0; sp < kNumSpins; ++sp)
        for (int c = 0; c < kNumColors; ++c) {
          component(slice, tile, comp++)[lane] = s.s[sp].c[c].real();
          component(slice, tile, comp++)[lane] = s.s[sp].c[c].imag();
        }
    });
  }

  void unpack(FermionField<float>& dst) const {
    LQCD_CHECK(dst.size() == static_cast<std::int64_t>(block_[0]) *
                                 block_[1] * block_[2] * block_[3]);
    for_each_site([&](std::int32_t lex, std::int64_t slice, int tile,
                      int lane) {
      Spinor<float>& s = dst[lex];
      int comp = 0;
      for (int sp = 0; sp < kNumSpins; ++sp)
        for (int c = 0; c < kNumColors; ++c) {
          const float re = component(slice, tile, comp++)[lane];
          const float im = component(slice, tile, comp++)[lane];
          s.s[sp].c[c] = Complex<float>(re, im);
        }
    });
  }

  /// Vector-register view of an xy-hop: destination lane d of the result
  /// gets source lane shift.source[d] of the OTHER tile's component run
  /// (a single permute instruction on the KNC), masked lanes get zero.
  /// This is the Fig. 2 "permute + mask_add" pattern.
  void permuted_component(std::int64_t slice, int dest_tile, int comp,
                          int mu, Dir dir,
                          float out[kTileLanes]) const {
    const LaneShift& sh = layout_.shift(dest_tile, mu, dir);
    const float* src = component(slice, 1 - dest_tile, comp);
    for (int lane = 0; lane < kTileLanes; ++lane)
      out[lane] = sh.source[static_cast<std::size_t>(lane)] >= 0
                      ? src[sh.source[static_cast<std::size_t>(lane)]]
                      : 0.0f;
  }

 private:
  template <class Fn>
  void for_each_site(Fn&& fn) const {
    std::int32_t lex = 0;
    for (int t = 0; t < block_[3]; ++t)
      for (int z = 0; z < block_[2]; ++z)
        for (int y = 0; y < block_[1]; ++y)
          for (int x = 0; x < block_[0]; ++x, ++lex)
            fn(lex, slice_index(z, t), XyTileLayout::tile_of(x, y),
               layout_.lane_of(x, y));
  }

  Coord block_;
  XyTileLayout layout_;
  std::int64_t slices_;
  AlignedVector<float> data_;
};

}  // namespace lqcd
