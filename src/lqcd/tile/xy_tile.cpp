#include "lqcd/tile/xy_tile.h"

namespace lqcd {

XyTileLayout::XyTileLayout(int bx, int by) : bx_(bx), by_(by) {
  LQCD_CHECK_MSG(bx >= 2 && by >= 2 && bx % 2 == 0 && by % 2 == 0,
                 "tile cross-section extents must be even and >= 2");
  LQCD_CHECK_MSG(bx * by == 2 * kTileLanes,
                 "xy cross-section must hold exactly 16 sites per parity "
                 "(e.g. 8x4)");

  // Lane numbering: row-major over (y, compressed x). Each tile row holds
  // bx/2 sites, so a tile has by * bx/2 = 16 lanes.
  const int row_lanes = bx_ / 2;
  for (int y = 0; y < by_; ++y)
    for (int x = 0; x < bx_; ++x)
      lane_[static_cast<std::size_t>(y) * static_cast<std::size_t>(bx_) +
            static_cast<std::size_t>(x)] = y * row_lanes + x / 2;

  // Build the four hop permutations per tile by walking the geometry.
  for (int tile = 0; tile < 2; ++tile)
    for (int mu = 0; mu < 2; ++mu)
      for (int dirbit = 0; dirbit < 2; ++dirbit) {
        LaneShift& sh = shifts_[static_cast<std::size_t>(tile) * 4 +
                                static_cast<std::size_t>(mu) * 2 +
                                static_cast<std::size_t>(dirbit)];
        sh.source.fill(-1);
        const int step = dirbit == 0 ? +1 : -1;
        for (int y = 0; y < by_; ++y)
          for (int x = 0; x < bx_; ++x) {
            if (tile_of(x, y) != tile) continue;
            const int nx = mu == 0 ? x + step : x;
            const int ny = mu == 1 ? y + step : y;
            if (nx < 0 || nx >= bx_ || ny < 0 || ny >= by_)
              continue;  // crosses the domain cross-section: stays masked
            sh.source[static_cast<std::size_t>(lane_of(x, y))] =
                lane_of(nx, ny);
          }
      }
}

}  // namespace lqcd
