#include "lqcd/tile/tiled_dslash.h"

namespace lqcd {

using tile_detail::HalfLanes;
using tile_detail::LinkLanes;
using tile_detail::load;
using tile_detail::load_permuted;
using tile_detail::load_spinor;
using tile_detail::load_spinor_permuted;

namespace {

LinkLanes load_link(const TiledGauge& g, std::int64_t slice, int tile,
                    int mu) {
  LinkLanes u;
  int comp = 0;
  for (int i = 0; i < kNumColors; ++i)
    for (int j = 0; j < kNumColors; ++j) {
      u.m[i][j] = load(g.component(slice, tile, mu, comp),
                       g.component(slice, tile, mu, comp + 1));
      comp += 2;
    }
  return u;
}

LinkLanes load_link_permuted(const TiledGauge& g, std::int64_t slice,
                             int src_tile, int mu, const LaneShift& sh) {
  LinkLanes u;
  int comp = 0;
  for (int i = 0; i < kNumColors; ++i)
    for (int j = 0; j < kNumColors; ++j) {
      u.m[i][j] = load_permuted(g.component(slice, src_tile, mu, comp),
                                g.component(slice, src_tile, mu, comp + 1),
                                sh);
      comp += 2;
    }
  return u;
}

/// Project the fused spinor at (src_slice, src_tile) with
/// (1 + sign*gamma_mu): h_r = psi_r + sign * phase_r * psi_{col_r}.
HalfLanes project_lanes(const TiledField& f, std::int64_t src_slice,
                        int src_tile, int mu, int sign) {
  const PermPhaseMatrix& gm = kGamma[static_cast<std::size_t>(mu)];
  HalfLanes h;
  for (int r = 0; r < 2; ++r)
    for (int c = 0; c < kNumColors; ++c) {
      const CLane a = load_spinor(f, src_slice, src_tile, r, c);
      const CLane gpart =
          mul_phase(gm.phase[static_cast<std::size_t>(r)],
                    load_spinor(f, src_slice, src_tile,
                                gm.col[static_cast<std::size_t>(r)], c));
      h.s[r][c] = sign > 0 ? a + gpart : a - gpart;
    }
  return h;
}

/// Same, loading every spinor component through the xy lane permute.
HalfLanes project_lanes_permuted(const TiledField& f, std::int64_t slice,
                                 int src_tile, int mu, int sign,
                                 const LaneShift& sh) {
  const PermPhaseMatrix& gm = kGamma[static_cast<std::size_t>(mu)];
  HalfLanes h;
  for (int r = 0; r < 2; ++r)
    for (int c = 0; c < kNumColors; ++c) {
      const CLane a = load_spinor_permuted(f, slice, src_tile, r, c, sh);
      const CLane gpart = mul_phase(
          gm.phase[static_cast<std::size_t>(r)],
          load_spinor_permuted(f, slice, src_tile,
                               gm.col[static_cast<std::size_t>(r)], c, sh));
      h.s[r][c] = sign > 0 ? a + gpart : a - gpart;
    }
  return h;
}

/// acc += reconstruction of (1 + sign*gamma_mu) from the half lanes.
void reconstruct_add_lanes(CLane acc[kNumSpins][kNumColors],
                           const HalfLanes& h, int mu, int sign) {
  const PermPhaseMatrix& gm = kGamma[static_cast<std::size_t>(mu)];
  for (int c = 0; c < kNumColors; ++c) {
    acc[0][c] = acc[0][c] + h.s[0][c];
    acc[1][c] = acc[1][c] + h.s[1][c];
  }
  for (int r = 2; r < kNumSpins; ++r) {
    const int col = gm.col[static_cast<std::size_t>(r)];
    for (int c = 0; c < kNumColors; ++c) {
      const CLane part =
          mul_phase(gm.phase[static_cast<std::size_t>(r)], h.s[col][c]);
      acc[r][c] = sign > 0 ? acc[r][c] + part : acc[r][c] - part;
    }
  }
}

}  // namespace

void tiled_block_dslash(const Coord& block, const TiledGauge& gauge,
                        const TiledField& in, TiledField& out,
                        FaultInjector* injector) {
  const int bz = block[2], bt = block[3];
  auto slice_of = [&](int z, int t) {
    return static_cast<std::int64_t>(z) +
           static_cast<std::int64_t>(bz) * t;
  };
  const XyTileLayout& layout = in.layout();

  // Each (t, z, tile) iteration reads const inputs and writes only its own
  // output slice, so the slice loop is embarrassingly parallel. The fault
  // hook below stays OUTSIDE the region: it mutates the injector's RNG and
  // counters, which are serial-only state (see ParallelFaultScope for the
  // blessed in-region API).
#pragma omp parallel for collapse(2) schedule(static) default(none) \
    shared(bz, bt, slice_of, layout, gauge, in, out)
  for (int t = 0; t < bt; ++t)
    for (int z = 0; z < bz; ++z) {
      const std::int64_t slice = slice_of(z, t);
      for (int tile = 0; tile < 2; ++tile) {
        CLane acc[kNumSpins][kNumColors];
        for (auto& row : acc)
          for (auto& a : row) a.zero();

        // ---- x and y hops: permute + mask within the slice ------------
        for (int mu = 0; mu < 2; ++mu) {
          // Forward: (1 - gamma) U_mu(here) psi(here + mu).
          {
            const LaneShift& sh = layout.shift(tile, mu, Dir::kForward);
            const HalfLanes h = project_lanes_permuted(
                in, slice, 1 - tile, mu, /*sign=*/-1, sh);
            reconstruct_add_lanes(
                acc, tile_detail::mul(load_link(gauge, slice, tile, mu), h),
                mu, -1);
          }
          // Backward: (1 + gamma) U_mu(here - mu)^dag psi(here - mu);
          // the neighbor's link and spinor both arrive via the permute.
          {
            const LaneShift& sh = layout.shift(tile, mu, Dir::kBackward);
            const HalfLanes h = project_lanes_permuted(
                in, slice, 1 - tile, mu, /*sign=*/+1, sh);
            reconstruct_add_lanes(
                acc,
                tile_detail::mul_adj(
                    load_link_permuted(gauge, slice, 1 - tile, mu, sh), h),
                mu, +1);
          }
        }

        // ---- z and t hops: lane-aligned whole registers ----------------
        struct ZtHop {
          int mu, step;
        };
        const ZtHop hops[] = {{2, +1}, {2, -1}, {3, +1}, {3, -1}};
        for (const auto& hop : hops) {
          const int nz = hop.mu == 2 ? z + hop.step : z;
          const int nt = hop.mu == 3 ? t + hop.step : t;
          if (nz < 0 || nz >= bz || nt < 0 || nt >= bt)
            continue;  // Dirichlet: hop leaves the block
          const std::int64_t nslice = slice_of(nz, nt);
          if (hop.step > 0) {
            const HalfLanes h =
                project_lanes(in, nslice, tile, hop.mu, /*sign=*/-1);
            reconstruct_add_lanes(
                acc,
                tile_detail::mul(load_link(gauge, slice, tile, hop.mu), h),
                hop.mu, -1);
          } else {
            const HalfLanes h =
                project_lanes(in, nslice, tile, hop.mu, /*sign=*/+1);
            reconstruct_add_lanes(
                acc,
                tile_detail::mul_adj(
                    load_link(gauge, nslice, tile, hop.mu), h),
                hop.mu, +1);
          }
        }

        // ---- store ------------------------------------------------------
        for (int sp = 0; sp < kNumSpins; ++sp)
          for (int c = 0; c < kNumColors; ++c) {
            const int base = (sp * kNumColors + c) * 2;
            float* re = out.component(slice, tile, base);
            float* im = out.component(slice, tile, base + 1);
            for (int lane = 0; lane < kTileLanes; ++lane) {
              re[lane] = acc[sp][c].re.v[lane];
              im[lane] = acc[sp][c].im.v[lane];
            }
          }
      }
    }

  if (injector != nullptr)
    injector->maybe_corrupt_reals(out.data(), out.size_reals(),
                                  FaultSite::kTileDslash);
}

}  // namespace lqcd
