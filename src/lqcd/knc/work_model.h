// Analytic work descriptors for the DD algorithm's kernels.
//
// These formulas mirror, operation for operation, the instrumented
// counters of SchwarzPreconditioner (tests assert the match), so that
// paper-scale lattices — far too large to execute numerically here — can
// be fed to the machine model with *exact* flop and byte counts.
#pragma once

#include <cstdint>
#include <vector>

#include "lqcd/knc/kernel_model.h"
#include "lqcd/lattice/geometry.h"

namespace lqcd::knc {

/// Work of one Schwarz block solve (Idomain MR iterations with even-odd
/// preconditioning + Schur RHS + odd reconstruction + boundary packing)
/// on one `block`-shaped domain.
struct BlockSolveWork {
  double flops = 0;
  double l2_bytes_per_schur = 0;  ///< working-set traffic per Schur apply
  double matrix_bytes = 0;        ///< links+clover storage (precision-dep.)
  double pack_bytes = 0;          ///< boundary buffer bytes produced
  double working_set_bytes = 0;   ///< matrices + the 7 resident spinors
  /// Fraction of the RHS-lane vector slots doing useful work (1.0 for the
  /// scalar single-RHS path; nrhs / padded-lane-count for the
  /// SOA-over-RHS lane-vectorized path). See rhs_lane_efficiency().
  double rhs_lane_efficiency = 1.0;
  KernelWork kernel;              ///< aggregated descriptor for the model
};

inline std::int64_t block_volume(const Coord& block) noexcept {
  return std::int64_t{1} * block[0] * block[1] * block[2] * block[3];
}

/// Directed in-domain hops from the sites of one parity (the count behind
/// each half-dslash; 168 flops per hop).
inline std::int64_t block_hops_per_parity(const Coord& block) noexcept {
  const std::int64_t vd = block_volume(block);
  std::int64_t crossing = 0;
  for (int mu = 0; mu < kNumDims; ++mu)
    crossing += vd / block[static_cast<std::size_t>(mu)];
  return 8 * (vd / 2) - crossing;
}

inline std::int64_t block_face_sites(const Coord& block) noexcept {
  const std::int64_t vd = block_volume(block);
  std::int64_t faces = 0;
  for (int mu = 0; mu < kNumDims; ++mu)
    faces += 2 * (vd / block[static_cast<std::size_t>(mu)]);
  return faces;
}

/// Flops of one Schur-complement application on the block (matches
/// SchwarzPreconditioner::schur_flops()).
inline double block_schur_flops(const Coord& block) noexcept {
  const double vd = static_cast<double>(block_volume(block));
  const double hops = static_cast<double>(block_hops_per_parity(block));
  return 168.0 * 2.0 * hops + vd * 504.0 / 2.0 * 2.0 + (vd / 2.0) * 24.0;
}

/// SIMD width (in RHS lanes) of the lane-vectorized block solve — mirrors
/// kRhsSimdWidth of schwarz/storage.h.
inline constexpr int kRhsLaneWidth = 4;

/// Fraction of RHS-lane vector slots doing useful work when nrhs
/// right-hand sides are padded up to a multiple of `width` lanes:
/// nrhs / padded(nrhs). nrhs <= 1 is the scalar path (no padding, 1.0).
inline double rhs_lane_efficiency(int nrhs,
                                  int width = kRhsLaneWidth) noexcept {
  if (nrhs <= 1) return 1.0;
  const int padded = (nrhs + width - 1) / width * width;
  return static_cast<double>(nrhs) / static_cast<double>(padded);
}

/// Scale a kernel descriptor for RHS-lane padding waste: the vector units
/// execute padded-lane flops to retire the useful ones, so the EXECUTED
/// flop count (what occupies the FPU pipes) is useful / efficiency.
/// Byte traffic is unchanged — padding lanes live in registers/L1.
inline KernelWork apply_rhs_lane_padding(KernelWork w,
                                         double efficiency) noexcept {
  if (efficiency > 0.0 && efficiency < 1.0) w.flops /= efficiency;
  return w;
}

/// `nrhs` models the multi-RHS batched domain visit (paper Sec. VI): the
/// packed gauge+clover matrices are streamed ONCE per visit while every
/// spinor quantity — flops, spinor traffic, packed buffers — scales with
/// the number of right-hand sides. nrhs = 1 reproduces the historical
/// single-RHS descriptor exactly. The descriptor counts USEFUL flops;
/// combine with rhs_lane_efficiency / apply_rhs_lane_padding to model the
/// executed-flop cost of the lane-vectorized path's padding.
inline BlockSolveWork block_solve_work(const Coord& block, int idomain,
                                       bool half_matrices,
                                       int nrhs = 1) noexcept {
  BlockSolveWork w;
  const double vd = static_cast<double>(block_volume(block));
  const double hv = vd / 2.0;
  const double hops = static_cast<double>(block_hops_per_parity(block));
  const double faces = static_cast<double>(block_face_sites(block));
  const double spinor_site_bytes = 96.0;  // 24 floats
  const double matrix_scalar = half_matrices ? 2.0 : 4.0;
  const double nb = static_cast<double>(nrhs);

  const double schur = block_schur_flops(block);
  const double mr_iter = schur + hv * 24.0 * 3.0 /* dots */ +
                         hv * 24.0 * 4.0 /* axpys */;
  const double rhs = hv * 504.0 + 168.0 * hops + hv * 24.0;
  const double reconstruct = 168.0 * hops + hv * (504.0 + 24.0);
  const double pack = faces / 2.0 * (12.0 + 132.0) + faces / 2.0 * 12.0;
  // R-coupling insertion on the consumer side (per producing domain):
  // forward-face data is reconstructed directly (48 flops/site), the
  // backward-face data is link-multiplied first (132 + 48 flops/site).
  const double consume = faces / 2.0 * 48.0 + faces / 2.0 * 180.0;
  w.flops = nb * (idomain * mr_iter + rhs + reconstruct + pack + consume);

  // L2 working-set traffic per Schur apply: the matrices (batch-shared)
  // plus ~4 half-volume spinor streams per RHS.
  w.matrix_bytes = vd * (72.0 + 72.0) * matrix_scalar;
  w.l2_bytes_per_schur = w.matrix_bytes + nb * 4.0 * hv * spinor_site_bytes;
  w.pack_bytes = nb * faces * spinor_site_bytes / 2.0;  // half-spinors: 48 B

  w.kernel.flops = w.flops;
  // The matrices (and spinor temporaries) are touched once per Schur
  // apply: Idomain MR iterations plus the RHS preparation and the odd
  // reconstruction, each of which performs one matrix sweep.
  w.kernel.l2_bytes = (idomain + 2.0) * w.l2_bytes_per_schur;
  // Streamed from memory once per batched domain visit: the matrices
  // (once!) plus, per RHS, the residual gather and the u/r/z writes and
  // the packed buffers — this is the whole point of batching.
  w.kernel.mem_bytes =
      w.matrix_bytes + nb * 3.0 * vd * spinor_site_bytes + w.pack_bytes;
  w.working_set_bytes = w.matrix_bytes + nb * 7.0 * hv * spinor_site_bytes;
  w.rhs_lane_efficiency = rhs_lane_efficiency(nrhs);
  return w;
}

/// Cache-capacity correction (the reason the paper picks 8x4^3 blocks,
/// Sec. III-B): when the block's working set exceeds the per-core L2
/// partition, the "L2-resident" traffic actually streams from main
/// memory every Schur application.
inline KernelWork apply_cache_capacity(KernelWork w,
                                       double working_set_bytes,
                                       double l2_capacity_bytes) noexcept {
  if (working_set_bytes > l2_capacity_bytes) {
    w.mem_bytes += w.l2_bytes;
    w.l2_bytes = 0;
  }
  return w;
}

/// Work of one ABFT checksum verification of a domain's packed matrices
/// (gauge links + clover diagonal + clover inverse). Fletcher-32 costs a
/// couple of integer adds per accumulated 16-bit word, so the sweep is a
/// pure streaming pass — memory-bandwidth-bound at any realistic rate.
inline KernelWork checksum_verify_work(const Coord& block,
                                       bool half_matrices) noexcept {
  const double vd = static_cast<double>(block_volume(block));
  const double matrix_bytes =
      vd * (72.0 + 72.0) * (half_matrices ? 2.0 : 4.0);
  KernelWork w;
  w.flops = matrix_bytes;  // ~2 integer ops per 16-bit word
  w.l2_bytes = 0;
  w.mem_bytes = matrix_bytes;
  return w;
}

/// Work of one MR iteration alone (the "MR iteration" rows of Table II):
/// runs from L2, no memory traffic.
inline KernelWork mr_iteration_work(const Coord& block,
                                    bool half_matrices) noexcept {
  const BlockSolveWork bw = block_solve_work(block, 1, half_matrices);
  KernelWork w;
  const double hv = block_volume(block) / 2.0;
  w.flops = block_schur_flops(block) + hv * 24.0 * 7.0;
  w.l2_bytes = bw.l2_bytes_per_schur;
  w.mem_bytes = 0;
  return w;
}

// ---------------------------------------------------------------------------
// Collective (allreduce) traffic over the host-proxy tree (paper Sec. V).
// ---------------------------------------------------------------------------

/// Message/byte totals of one itemized-payload allreduce. These formulas
/// mirror, hop for hop, the fault-free vnode emulation
/// (lqcd::tree_allreduce) — tests assert the match — so paper-scale rank
/// counts can be fed to the model with exact collective traffic.
struct CollectiveWork {
  double messages = 0;  ///< tree hops, up + down
  double bytes = 0;     ///< itemized payload bytes over all hops
  int depth = 0;        ///< tree depth (latency-critical path length)
};

/// Traffic of one allreduce over `ranks` virtual ranks on a complete
/// fanout-ary proxy tree with itemized (rank, value) payloads of
/// `entry_bytes` each: every non-root rank sends its subtree's entries up
/// (sum of subtree sizes) and receives one result entry down.
inline CollectiveWork allreduce_tree_work(int ranks, double entry_bytes,
                                          int fanout = 2) noexcept {
  CollectiveWork w;
  if (ranks <= 1 || fanout < 1) return w;
  std::vector<std::int64_t> subtree(static_cast<std::size_t>(ranks), 1);
  for (int r = ranks - 1; r >= 1; --r)
    subtree[static_cast<std::size_t>((r - 1) / fanout)] +=
        subtree[static_cast<std::size_t>(r)];
  double up_entries = 0;
  for (int r = 1; r < ranks; ++r)
    up_entries += static_cast<double>(subtree[static_cast<std::size_t>(r)]);
  w.messages = 2.0 * (ranks - 1);
  w.bytes = (up_entries + (ranks - 1)) * entry_bytes;
  for (int r = ranks - 1; r > 0; r = (r - 1) / fanout) ++w.depth;
  return w;
}

/// Fold collective traffic into a kernel descriptor: the communicating
/// core streams the payloads through memory, so the bytes land in
/// mem_bytes and the collective cost shows up in arithmetic_intensity.
inline KernelWork add_collective_traffic(KernelWork w,
                                         const CollectiveWork& c) noexcept {
  w.mem_bytes += c.bytes;
  return w;
}

// ---------------------------------------------------------------------------
// Core-count scaling (paper Eqs. 6 and 7).
// ---------------------------------------------------------------------------

/// Eq. 6: domains processable in parallel (one color of the multiplicative
/// checkerboarding) for local volume V and block volume Vd.
inline std::int64_t ndomain_per_color(std::int64_t local_volume,
                                      const Coord& block) noexcept {
  return local_volume / (2 * block_volume(block));
}

/// Eq. 7: average load of `cores` cores processing `ndomain` domains
/// round-robin.
inline double core_load(std::int64_t ndomain, int cores) noexcept {
  if (ndomain <= 0) return 0.0;
  const std::int64_t rounds = (ndomain + cores - 1) / cores;
  return static_cast<double>(ndomain) /
         (static_cast<double>(cores) * static_cast<double>(rounds));
}

}  // namespace lqcd::knc
