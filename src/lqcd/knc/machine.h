// Model of the Intel Xeon Phi "Knights Corner" (KNC) chip, as used on
// TACC Stampede (7110P: 61 cores at 1.1 GHz, 60 usable).
//
// This is our substitution for the physical hardware (DESIGN.md Sec. 2):
// an analytic machine model whose parameters come directly from the
// paper's own Sec. II-A description and Sec. IV-B1 instruction-mix
// arithmetic. Combined with *exact* flop/byte counts from the real
// algorithm implementation, it regenerates the performance tables.
#pragma once

namespace lqcd::knc {

struct KncSpec {
  int cores = 60;          ///< usable cores (61st runs the OS)
  double freq_ghz = 1.1;   ///< 7110P clock
  int simd_sp = 16;        ///< single-precision SIMD lanes
  int simd_dp = 8;         ///< double-precision SIMD lanes
  double l1_kb = 32.0;
  double l2_kb = 512.0;    ///< per-core L2 partition
  double mem_bw_gbs = 150.0;  ///< streaming bandwidth (Sec. II-A)

  // Sec. IV-B1 instruction-mix parameters for the Wilson-Clover kernel:
  double fma_fraction_efficiency = 0.82;  ///< 64% of flops are FMAs
  double simd_mask_efficiency = 0.93;     ///< x/y masking loss (Fig. 2)
  double compute_instruction_fraction = 0.54;
  double pairable_fraction = 0.72;  ///< of the non-compute instructions
  double pairing_found = 0.59;      ///< compiler pairing success

  /// Sec. IV-B1: compute efficiency
  ///   0.82 * 0.93 * 0.54 / (1 - 0.59*0.46) = 56%.
  double compute_efficiency() const noexcept {
    const double non_compute = 1.0 - compute_instruction_fraction;
    return fma_fraction_efficiency * simd_mask_efficiency *
           compute_instruction_fraction /
           (1.0 - pairing_found * non_compute);
  }

  /// Effective sustained flop/cycle/core in single precision:
  /// (16 + 16) * 0.56 = 18 (the paper's instruction-bound).
  double effective_sp_flops_per_cycle() const noexcept {
    return 2.0 * simd_sp * compute_efficiency();
  }

  /// Same bound in double precision (8-wide SIMD).
  double effective_dp_flops_per_cycle() const noexcept {
    return 2.0 * simd_dp * compute_efficiency();
  }

  /// Instruction-bound single-core rate: ~20 Gflop/s (paper Sec. IV-B1).
  double sp_gflops_bound_per_core() const noexcept {
    return effective_sp_flops_per_cycle() * freq_ghz;
  }

  double sp_peak_gflops() const noexcept {
    return 2.0 * simd_sp * freq_ghz * cores;
  }

  /// Memory bandwidth per core in bytes per cycle.
  double mem_bytes_per_cycle_per_core() const noexcept {
    return mem_bw_gbs / cores / freq_ghz;
  }
};

/// Measured rates of THIS host, filled at bench runtime by
/// bench/host_measure.h (pure data here, so the machine model keeps no
/// dependency on the solver layers). The host analogue of the Sec. IV-B1
/// instruction-mix estimate: su3_nn_gflops is the dense SU(3)
/// multiply ceiling, block_solve_gflops the full lane-vectorized Schwarz
/// block solve, and their ratio the host's measured compute-efficiency
/// factor — directly comparable to the KNC model's
/// compute_efficiency() = 0.56. bench_fig5/6/7 print these measured-host
/// values in columns next to the KNC-model ones.
struct HostCalibration {
  const char* backend = "scalar";  ///< active SIMD dispatch backend
  double su3_nn_gflops = 0;        ///< dense SU(3) matrix-multiply ceiling
  double dslash_gflops = 0;        ///< lane hop kernel (project/mul/reconstruct)
  double block_solve_gflops = 0;   ///< full lane-vectorized block solve
  double fp16_gbs = 0;             ///< binary16 round-trip bandwidth

  /// Measured host efficiency factor: sustained block-solve rate over the
  /// dense-compute ceiling (the roofline-style ratio; frequency cancels).
  double compute_efficiency() const noexcept {
    return su3_nn_gflops > 0 ? block_solve_gflops / su3_nn_gflops : 0.0;
  }

  /// Perfect-scaling projection of the measured single-thread block-solve
  /// rate to `cores` cores — the measured-host scaling column of Fig. 5.
  double scaled_block_solve_gflops(int cores) const noexcept {
    return block_solve_gflops * cores;
  }
};

}  // namespace lqcd::knc
