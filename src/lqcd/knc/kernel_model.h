// Single-core kernel timing model.
//
// Time on a KNC core decomposes into
//   cycles = flops / effective_flops_per_cycle        (instruction bound)
//          + l2_bytes * l2_stall_cycles_per_byte      (L2-resident data)
//          + mem_bytes * mem_stall_cycles_per_byte    (main-memory data)
// with stall costs depending on the software-prefetch mode (paper
// Sec. III-B / Table II). The two stall parameters per mode are calibrated
// once against the paper's published Table II single-core measurements;
// everything else (flops, bytes) is computed exactly from the algorithm.
//
// Calibration notes (see bench_table2):
//  * no software prefetch:   L2 data costs ~0.30 cycles/byte (exposed
//    L1-miss latency), memory streams at ~0.75 cycles/byte via the
//    hardware L2 streamer.
//  * L1 software prefetch:   L2 cost drops to ~0.135 cycles/byte; memory
//    unchanged.
//  * L1+L2 software prefetch: memory cost drops to ~0.50 cycles/byte
//    (interleaved L2 prefetches, Sec. III-B), close to the 0.44
//    cycles/byte bandwidth bound of 150 GB/s across 60 cores.
#pragma once

#include "lqcd/knc/machine.h"

namespace lqcd::knc {

enum class PrefetchMode { kNone, kL1, kL1L2 };

/// Work descriptor of one kernel execution on one core.
struct KernelWork {
  double flops = 0;      ///< useful floating-point operations
  double l2_bytes = 0;   ///< bytes touched that live in the L2 working set
  double mem_bytes = 0;  ///< bytes streamed from/to main memory
};

/// Arithmetic intensity against main memory (flops per streamed byte) —
/// the quantity multi-RHS batching multiplies: matrix bytes are charged
/// once per batched domain visit while flops scale with nrhs.
inline double arithmetic_intensity(const KernelWork& w) noexcept {
  return w.mem_bytes > 0 ? w.flops / w.mem_bytes : 0.0;
}

struct KernelModelParams {
  double l2_stall_cpb_none = 0.30;
  double l2_stall_cpb_prefetch = 0.135;
  double mem_stall_cpb_none = 0.75;
  double mem_stall_cpb_l1 = 0.75;
  double mem_stall_cpb_l1l2 = 0.50;
};

class KernelModel {
 public:
  explicit KernelModel(const KncSpec& spec = {},
                       const KernelModelParams& params = {})
      : spec_(spec), params_(params) {}

  const KncSpec& spec() const noexcept { return spec_; }

  double cycles(const KernelWork& w, PrefetchMode mode) const noexcept {
    const double flop_cycles = w.flops / spec_.effective_sp_flops_per_cycle();
    const double l2_cpb = mode == PrefetchMode::kNone
                              ? params_.l2_stall_cpb_none
                              : params_.l2_stall_cpb_prefetch;
    double mem_cpb = params_.mem_stall_cpb_none;
    if (mode == PrefetchMode::kL1) mem_cpb = params_.mem_stall_cpb_l1;
    if (mode == PrefetchMode::kL1L2) mem_cpb = params_.mem_stall_cpb_l1l2;
    // Memory can never stream faster than the bandwidth share of a core.
    const double bw_floor = 1.0 / spec_.mem_bytes_per_cycle_per_core();
    if (mem_cpb < bw_floor) mem_cpb = bw_floor;
    return flop_cycles + w.l2_bytes * l2_cpb + w.mem_bytes * mem_cpb;
  }

  double seconds_per_core(const KernelWork& w,
                          PrefetchMode mode) const noexcept {
    return cycles(w, mode) / (spec_.freq_ghz * 1e9);
  }

  /// Sustained Gflop/s of one core running this kernel repeatedly.
  double gflops_per_core(const KernelWork& w,
                         PrefetchMode mode) const noexcept {
    return w.flops / cycles(w, mode) * spec_.freq_ghz;
  }

 private:
  KncSpec spec_;
  KernelModelParams params_;
};

}  // namespace lqcd::knc
