#include "lqcd/densela/matrix.h"

#include <algorithm>
#include <cmath>

namespace lqcd::densela {

namespace {

/// Apply a Householder reflector defined by v (unit-normalized below row
/// `start`) to the rows [start, rows) of m, columns [c0, cols).
void apply_reflector_left(Matrix& m, const std::vector<Cplx>& v, int start,
                          int c0) {
  const int rows = m.rows(), cols = m.cols();
  for (int j = c0; j < cols; ++j) {
    Cplx dotv(0, 0);
    for (int i = start; i < rows; ++i)
      dotv += std::conj(v[static_cast<std::size_t>(i - start)]) * m(i, j);
    dotv *= 2.0;
    for (int i = start; i < rows; ++i)
      m(i, j) -= dotv * v[static_cast<std::size_t>(i - start)];
  }
}

void apply_reflector_right(Matrix& m, const std::vector<Cplx>& v, int start) {
  const int rows = m.rows(), cols = m.cols();
  for (int i = 0; i < rows; ++i) {
    Cplx dotv(0, 0);
    for (int j = start; j < cols; ++j)
      dotv += m(i, j) * v[static_cast<std::size_t>(j - start)];
    dotv *= 2.0;
    for (int j = start; j < cols; ++j)
      m(i, j) -= dotv * std::conj(v[static_cast<std::size_t>(j - start)]);
  }
}

/// Build the Householder vector that zeroes x[1:] (x already extracted),
/// returning (v, beta) with the convention H = I - 2 v v^H, H x = beta e_0.
bool make_reflector(std::vector<Cplx>& x) {
  double norm2 = 0;
  for (const auto& z : x) norm2 += std::norm(z);
  const double nrm = std::sqrt(norm2);
  if (nrm == 0.0) return false;
  double rest = 0;
  for (std::size_t i = 1; i < x.size(); ++i) rest += std::norm(x[i]);
  if (rest == 0.0 && x[0].imag() == 0.0 && x[0].real() >= 0.0) return false;
  // alpha = -sign(x0) * nrm, with complex sign.
  const Cplx sign =
      std::abs(x[0]) > 0 ? x[0] / std::abs(x[0]) : Cplx(1, 0);
  const Cplx alpha = -sign * nrm;
  x[0] -= alpha;
  double vnorm2 = 0;
  for (const auto& z : x) vnorm2 += std::norm(z);
  const double vnrm = std::sqrt(vnorm2);
  if (vnrm == 0.0) return false;
  for (auto& z : x) z /= vnrm;
  return true;
}

}  // namespace

std::vector<Cplx> least_squares(Matrix a, std::vector<Cplx> b) {
  const int rows = a.rows(), cols = a.cols();
  LQCD_CHECK(rows >= cols);
  LQCD_CHECK(static_cast<int>(b.size()) == rows);
  // Householder QR, applying reflectors to b as we go.
  for (int k = 0; k < cols; ++k) {
    std::vector<Cplx> v(static_cast<std::size_t>(rows - k));
    for (int i = k; i < rows; ++i)
      v[static_cast<std::size_t>(i - k)] = a(i, k);
    if (!make_reflector(v)) continue;
    apply_reflector_left(a, v, k, k);
    // Apply to b.
    Cplx dotv(0, 0);
    for (int i = k; i < rows; ++i)
      dotv += std::conj(v[static_cast<std::size_t>(i - k)]) *
              b[static_cast<std::size_t>(i)];
    dotv *= 2.0;
    for (int i = k; i < rows; ++i)
      b[static_cast<std::size_t>(i)] -=
          dotv * v[static_cast<std::size_t>(i - k)];
  }
  // Back substitution on the R factor.
  std::vector<Cplx> y(static_cast<std::size_t>(cols));
  for (int i = cols - 1; i >= 0; --i) {
    Cplx acc = b[static_cast<std::size_t>(i)];
    for (int j = i + 1; j < cols; ++j)
      acc -= a(i, j) * y[static_cast<std::size_t>(j)];
    LQCD_CHECK_MSG(std::abs(a(i, i)) > 0, "rank-deficient least squares");
    y[static_cast<std::size_t>(i)] = acc / a(i, i);
  }
  return y;
}

std::vector<Cplx> solve(Matrix a, std::vector<Cplx> b) {
  const int n = a.rows();
  LQCD_CHECK(a.cols() == n && static_cast<int>(b.size()) == n);
  std::vector<int> perm(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;
  // LU with partial pivoting, in place.
  for (int k = 0; k < n; ++k) {
    int p = k;
    double best = std::abs(a(k, k));
    for (int i = k + 1; i < n; ++i)
      if (std::abs(a(i, k)) > best) {
        best = std::abs(a(i, k));
        p = i;
      }
    LQCD_CHECK_MSG(best > 0, "singular matrix in solve()");
    if (p != k) {
      for (int j = 0; j < n; ++j) std::swap(a(k, j), a(p, j));
      std::swap(b[static_cast<std::size_t>(k)],
                b[static_cast<std::size_t>(p)]);
    }
    for (int i = k + 1; i < n; ++i) {
      const Cplx f = a(i, k) / a(k, k);
      a(i, k) = f;
      for (int j = k + 1; j < n; ++j) a(i, j) -= f * a(k, j);
      b[static_cast<std::size_t>(i)] -= f * b[static_cast<std::size_t>(k)];
    }
  }
  std::vector<Cplx> y(static_cast<std::size_t>(n));
  for (int i = n - 1; i >= 0; --i) {
    Cplx acc = b[static_cast<std::size_t>(i)];
    for (int j = i + 1; j < n; ++j)
      acc -= a(i, j) * y[static_cast<std::size_t>(j)];
    y[static_cast<std::size_t>(i)] = acc / a(i, i);
  }
  return y;
}

void thin_qr(const Matrix& a, Matrix& q, Matrix& r) {
  const int rows = a.rows(), cols = a.cols();
  LQCD_CHECK(rows >= cols);
  // Modified Gram-Schmidt with one re-orthogonalization pass: plenty for
  // the m ~ 20 problems we feed it, and it keeps Q explicitly.
  q = a;
  r = Matrix(cols, cols);
  for (int j = 0; j < cols; ++j) {
    for (int pass = 0; pass < 2; ++pass) {
      for (int i = 0; i < j; ++i) {
        Cplx proj(0, 0);
        for (int k = 0; k < rows; ++k)
          proj += std::conj(q(k, i)) * q(k, j);
        for (int k = 0; k < rows; ++k) q(k, j) -= proj * q(k, i);
        r(i, j) += proj;
      }
    }
    double nrm2 = 0;
    for (int k = 0; k < rows; ++k) nrm2 += std::norm(q(k, j));
    double nrm = std::sqrt(nrm2);
    if (nrm < 1e-300) {
      // Rank-deficient column: replace with an arbitrary orthonormal
      // completion (unit vector orthogonalized against previous columns).
      for (int k = 0; k < rows; ++k) q(k, j) = Cplx(k == j ? 1 : 0, 0);
      for (int i = 0; i < j; ++i) {
        Cplx proj(0, 0);
        for (int k = 0; k < rows; ++k)
          proj += std::conj(q(k, i)) * q(k, j);
        for (int k = 0; k < rows; ++k) q(k, j) -= proj * q(k, i);
      }
      nrm2 = 0;
      for (int k = 0; k < rows; ++k) nrm2 += std::norm(q(k, j));
      nrm = std::sqrt(nrm2);
      r(j, j) = Cplx(0, 0);
      for (int k = 0; k < rows; ++k) q(k, j) /= nrm;
      continue;
    }
    r(j, j) = nrm;
    for (int k = 0; k < rows; ++k) q(k, j) /= nrm;
  }
}

namespace {

/// In-place Hessenberg reduction: a <- Q^H a Q, accumulating Q.
void hessenberg_reduce(Matrix& a, Matrix& q) {
  const int n = a.rows();
  q = Matrix::identity(n);
  for (int k = 0; k < n - 2; ++k) {
    std::vector<Cplx> v(static_cast<std::size_t>(n - k - 1));
    for (int i = k + 1; i < n; ++i)
      v[static_cast<std::size_t>(i - k - 1)] = a(i, k);
    if (!make_reflector(v)) continue;
    apply_reflector_left(a, v, k + 1, 0);
    apply_reflector_right(a, v, k + 1);
    apply_reflector_right(q, v, k + 1);
  }
}

/// Shifted QR iteration on an upper Hessenberg matrix, accumulating the
/// unitary transform into q. On return `a` is upper triangular (complex
/// Schur form).
void schur_qr(Matrix& a, Matrix& q) {
  const int n = a.rows();
  int hi = n - 1;
  int iter_guard = 0;
  const int max_iters = 60 * n + 200;
  while (hi > 0) {
    LQCD_CHECK_MSG(++iter_guard < max_iters, "QR iteration did not converge");
    // Deflate converged subdiagonals.
    const double eps = 1e-15;
    int deflated = -1;
    for (int i = hi; i >= 1; --i) {
      const double small =
          eps * (std::abs(a(i - 1, i - 1)) + std::abs(a(i, i)));
      if (std::abs(a(i, i - 1)) <= small + 1e-300) {
        a(i, i - 1) = Cplx(0, 0);
        if (i == hi) {
          deflated = i;
          break;
        }
      }
    }
    if (deflated == hi) {
      --hi;
      continue;
    }
    // Find the active block [lo, hi].
    int lo = hi;
    while (lo > 0 && a(lo, lo - 1) != Cplx(0, 0)) --lo;
    // Wilkinson shift from the trailing 2x2 of the active block.
    const Cplx h00 = a(hi - 1, hi - 1), h01 = a(hi - 1, hi);
    const Cplx h10 = a(hi, hi - 1), h11 = a(hi, hi);
    const Cplx tr = h00 + h11;
    const Cplx dt = h00 * h11 - h01 * h10;
    const Cplx disc = std::sqrt(tr * tr - 4.0 * dt);
    const Cplx l1 = 0.5 * (tr + disc), l2 = 0.5 * (tr - disc);
    const Cplx shift = std::abs(l1 - h11) < std::abs(l2 - h11) ? l1 : l2;
    // One implicit single-shift QR sweep on [lo, hi] via Givens rotations.
    // First rotation annihilates (a(lo,lo)-shift, a(lo+1,lo)).
    Cplx x = a(lo, lo) - shift;
    Cplx y = a(lo + 1, lo);
    for (int k = lo; k < hi; ++k) {
      // Givens rotation G zeroing y against x.
      const double denom = std::sqrt(std::norm(x) + std::norm(y));
      Cplx c(1, 0), s(0, 0);
      if (denom > 0) {
        c = std::conj(x) / denom;
        s = std::conj(y) / denom;
      }
      // Apply G on the left to rows k, k+1.
      for (int j = std::max(0, k - 1); j < n; ++j) {
        const Cplx t1 = a(k, j), t2 = a(k + 1, j);
        a(k, j) = c * t1 + s * t2;
        a(k + 1, j) = -std::conj(s) * t1 + std::conj(c) * t2;
      }
      // Apply G^H on the right to columns k, k+1.
      for (int i = 0; i <= std::min(n - 1, k + 2); ++i) {
        const Cplx t1 = a(i, k), t2 = a(i, k + 1);
        a(i, k) = t1 * std::conj(c) + t2 * std::conj(s);
        a(i, k + 1) = -t1 * s + t2 * c;
      }
      for (int i = 0; i < n; ++i) {
        const Cplx t1 = q(i, k), t2 = q(i, k + 1);
        q(i, k) = t1 * std::conj(c) + t2 * std::conj(s);
        q(i, k + 1) = -t1 * s + t2 * c;
      }
      if (k < hi - 1) {
        x = a(k + 1, k);
        y = a(k + 2, k);
      }
    }
  }
}

}  // namespace

EigResult eig(const Matrix& a_in) {
  const int n = a_in.rows();
  LQCD_CHECK(a_in.cols() == n);
  Matrix t = a_in, q;
  hessenberg_reduce(t, q);
  schur_qr(t, q);

  EigResult res;
  res.values.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) res.values[static_cast<std::size_t>(i)] = t(i, i);

  // Eigenvectors of the triangular T by back substitution, then transform
  // by Q.
  Matrix vecs(n, n);
  for (int j = 0; j < n; ++j) {
    std::vector<Cplx> v(static_cast<std::size_t>(n), Cplx(0, 0));
    v[static_cast<std::size_t>(j)] = Cplx(1, 0);
    const Cplx lambda = t(j, j);
    for (int i = j - 1; i >= 0; --i) {
      Cplx acc(0, 0);
      for (int k = i + 1; k <= j; ++k)
        acc += t(i, k) * v[static_cast<std::size_t>(k)];
      Cplx denom = lambda - t(i, i);
      // Perturb exact ties (degenerate eigenvalues) to keep the solve
      // finite; the subspace is still correct to working accuracy.
      if (std::abs(denom) < 1e-300) denom = Cplx(1e-300, 0);
      // (T v)_i = lambda v_i  =>  v_i = (sum_{k>i} T_ik v_k)/(lambda - T_ii).
      v[static_cast<std::size_t>(i)] = acc / denom;
    }
    double nrm2 = 0;
    for (const auto& z : v) nrm2 += std::norm(z);
    const double nrm = std::sqrt(nrm2);
    for (auto& z : v) z /= nrm;
    for (int i = 0; i < n; ++i) {
      Cplx acc(0, 0);
      for (int k = 0; k <= j; ++k)
        acc += q(i, k) * v[static_cast<std::size_t>(k)];
      vecs(i, j) = acc;
    }
  }
  res.vectors = vecs;
  return res;
}

}  // namespace lqcd::densela
