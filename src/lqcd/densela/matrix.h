// Small dense complex matrices for the outer solver's projected problems.
//
// GMRES with deflated restarts needs QR least-squares on the (m+1)×m
// Hessenberg matrix and harmonic-Ritz eigenpairs of an m×m dense complex
// matrix, with m <= a few tens. Everything here is sized for that regime:
// straightforward O(n^3) algorithms, double-complex throughout, no
// blocking, no external dependencies.
#pragma once

#include <complex>
#include <vector>

#include "lqcd/base/error.h"

namespace lqcd::densela {

using Cplx = std::complex<double>;

class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols)
      : rows_(rows), cols_(cols),
        a_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols)) {
    LQCD_CHECK(rows >= 0 && cols >= 0);
  }

  static Matrix identity(int n) {
    Matrix m(n, n);
    for (int i = 0; i < n; ++i) m(i, i) = Cplx(1, 0);
    return m;
  }

  int rows() const noexcept { return rows_; }
  int cols() const noexcept { return cols_; }

  Cplx& operator()(int r, int c) noexcept {
    return a_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
              static_cast<std::size_t>(c)];
  }
  const Cplx& operator()(int r, int c) const noexcept {
    return a_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
              static_cast<std::size_t>(c)];
  }

  Matrix transpose_conj() const {
    Matrix m(cols_, rows_);
    for (int r = 0; r < rows_; ++r)
      for (int c = 0; c < cols_; ++c) m(c, r) = std::conj((*this)(r, c));
    return m;
  }

 private:
  int rows_ = 0, cols_ = 0;
  std::vector<Cplx> a_;
};

// analyze-safe(parallel-reachability): the shape check asserts dimensions
// fixed at setup construction, never data computed inside a sweep.
inline Matrix mul(const Matrix& a, const Matrix& b) {
  LQCD_CHECK(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i)
    for (int k = 0; k < a.cols(); ++k) {
      const Cplx aik = a(i, k);
      if (aik == Cplx(0, 0)) continue;
      for (int j = 0; j < b.cols(); ++j) c(i, j) += aik * b(k, j);
    }
  return c;
}

// analyze-safe(parallel-reachability): shape check on setup-time
// dimensions, as above.
inline std::vector<Cplx> mul(const Matrix& a, const std::vector<Cplx>& x) {
  LQCD_CHECK(a.cols() == static_cast<int>(x.size()));
  std::vector<Cplx> y(static_cast<std::size_t>(a.rows()));
  for (int i = 0; i < a.rows(); ++i) {
    Cplx acc(0, 0);
    for (int j = 0; j < a.cols(); ++j)
      acc += a(i, j) * x[static_cast<std::size_t>(j)];
    y[static_cast<std::size_t>(i)] = acc;
  }
  return y;
}

/// Least squares: minimize ||b - A y|| for tall A (rows >= cols) via
/// Householder QR. Returns y of length A.cols(). A and b are copied.
std::vector<Cplx> least_squares(Matrix a, std::vector<Cplx> b);

/// Solve the square system A y = b via LU with partial pivoting.
std::vector<Cplx> solve(Matrix a, std::vector<Cplx> b);

/// Thin QR of a tall matrix: A (rows×cols) = Q (rows×cols) R (cols×cols),
/// Q with orthonormal columns. Rank deficiency tolerated (R may have tiny
/// diagonal entries; corresponding Q columns completed arbitrarily but
/// orthonormally).
void thin_qr(const Matrix& a, Matrix& q, Matrix& r);

/// Eigenpairs of a small dense complex matrix via Hessenberg reduction and
/// shifted QR with accumulated transforms. Returns eigenvalues and the
/// matching (right) eigenvectors as the columns of `vectors`.
struct EigResult {
  std::vector<Cplx> values;
  Matrix vectors;
};
EigResult eig(const Matrix& a);

}  // namespace lqcd::densela
