// Gauge link fields U_mu(x).
//
// Links live on the bonds of the lattice: link(x, mu) is the SU(3) matrix
// connecting site x to its forward neighbor in direction mu. Fermionic
// antiperiodic boundary conditions in time are realized, as usual, by
// flipping the sign of the t-links that cross the lattice boundary, so the
// Dirac kernels never special-case the boundary.
#pragma once

#include <cstdint>

#include "lqcd/base/aligned.h"
#include "lqcd/base/checksum.h"
#include "lqcd/base/rng.h"
#include "lqcd/lattice/geometry.h"
#include "lqcd/su3/su3.h"

namespace lqcd {

template <class T>
class GaugeField {
 public:
  explicit GaugeField(const Geometry& geom)
      : geom_(&geom),
        links_(static_cast<std::size_t>(geom.volume()) * kNumDims) {
    for (auto& u : links_) u.identity();
  }

  /// Rebasing copy: same link content as `src`, bound to `geom` instead of
  /// `src`'s geometry. For owners that must not dangle on the source
  /// field's geometry (e.g. a cached setup outliving the client's field).
  GaugeField(const Geometry& geom, const GaugeField& src)
      : geom_(&geom), links_(src.links_) {
    LQCD_CHECK(geom.dims() == src.geometry().dims());
  }

  const Geometry& geometry() const noexcept { return *geom_; }

  SU3<T>& link(std::int32_t site, int mu) noexcept {
    return links_[static_cast<std::size_t>(site) * kNumDims +
                  static_cast<std::size_t>(mu)];
  }
  const SU3<T>& link(std::int32_t site, int mu) const noexcept {
    return links_[static_cast<std::size_t>(site) * kNumDims +
                  static_cast<std::size_t>(mu)];
  }

  /// Field-level Fletcher-32 over the raw link storage. The ABFT repair
  /// ladder stamps this once the field is final and re-verifies it before
  /// trusting the field as a repack/repair source: a repair from a
  /// corrupted source would just relocate the error.
  std::uint32_t content_checksum() const noexcept {
    return fletcher32_range(links_.data(), links_.size());
  }

  /// 64-bit FNV-1a over the raw link storage. Paired with the Fletcher-32
  /// checksum wherever field content keys long-lived state (the service's
  /// setup cache): two distinct configurations alias only if they collide
  /// in both hash families simultaneously.
  std::uint64_t content_digest64() const noexcept {
    return fnv1a64_range(links_.data(), links_.size());
  }

  /// Flip the sign of every t-link that wraps around the time boundary
  /// (antiperiodic fermion BC). Call once after generation.
  void make_time_antiperiodic() {
    constexpr int t_dir = 3;
    const auto volume = geom_->volume();
    for (std::int32_t s = 0; s < static_cast<std::int32_t>(volume); ++s) {
      const Coord c = geom_->coord(s);
      if (geom_->wraps_forward(c, t_dir))
        link(s, t_dir) = Complex<T>(-1, 0) * link(s, t_dir);
    }
  }

 private:
  const Geometry* geom_;
  AlignedVector<SU3<T>> links_;
};

/// Precision conversion (double master field -> float preconditioner copy).
template <class TDst, class TSrc>
GaugeField<TDst> convert(const GaugeField<TSrc>& src) {
  GaugeField<TDst> dst(src.geometry());
  const auto volume = src.geometry().volume();
  for (std::int32_t s = 0; s < static_cast<std::int32_t>(volume); ++s)
    for (int mu = 0; mu < kNumDims; ++mu)
      for (int i = 0; i < kNumColors; ++i)
        for (int j = 0; j < kNumColors; ++j)
          dst.link(s, mu).m[i][j] =
              Complex<TDst>(static_cast<TDst>(src.link(s, mu).m[i][j].real()),
                            static_cast<TDst>(src.link(s, mu).m[i][j].imag()));
  return dst;
}

/// Synthetic gauge configuration with tunable disorder.
///
/// disorder = 0 gives the free field (all links = 1); increasing disorder
/// roughens the field, which raises the condition number of the Dirac
/// operator the way approaching the physical point does for production
/// configurations. This is our substitution for the paper's production
/// lattices (DESIGN.md, Sec. 2). Deterministic in `seed`.
template <class T>
GaugeField<T> random_gauge_field(const Geometry& geom, double disorder,
                                 std::uint64_t seed) {
  GaugeField<T> u(geom);
  Rng rng(seed);
  const auto volume = geom.volume();
  for (std::int32_t s = 0; s < static_cast<std::int32_t>(volume); ++s)
    for (int mu = 0; mu < kNumDims; ++mu)
      u.link(s, mu) = random_su3<T>(rng, disorder);
  return u;
}

/// Average plaquette, Re tr(P) / 3 averaged over all 6 planes and the
/// volume. 1 for the free field; decreases with disorder.
template <class T>
double average_plaquette(const GaugeField<T>& u) {
  const Geometry& g = u.geometry();
  const auto volume = g.volume();
  double sum = 0;
  std::int64_t count = 0;
  for (std::int32_t s = 0; s < static_cast<std::int32_t>(volume); ++s) {
    for (int mu = 0; mu < kNumDims; ++mu)
      for (int nu = mu + 1; nu < kNumDims; ++nu) {
        const std::int32_t smu = g.neighbor(s, mu, Dir::kForward);
        const std::int32_t snu = g.neighbor(s, nu, Dir::kForward);
        // P = U_mu(x) U_nu(x+mu) U_mu(x+nu)^dag U_nu(x)^dag
        SU3<T> p = mul(u.link(s, mu), u.link(smu, nu));
        p = mul_adj(p, u.link(snu, mu));
        p = mul_adj(p, u.link(s, nu));
        sum += static_cast<double>(trace(p).real()) / kNumColors;
        ++count;
      }
  }
  return sum / static_cast<double>(count);
}

}  // namespace lqcd
