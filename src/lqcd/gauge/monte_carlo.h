// Quenched gauge-field generation: Metropolis updates of the Wilson
// plaquette action S = -beta/3 sum_P Re tr P.
//
// This provides physically equilibrated SU(3) configurations (the
// substitute for the paper's production ensembles, DESIGN.md Sec. 2):
// beta controls the lattice coarseness exactly as in real simulations —
// large beta gives smooth fields near unity, beta -> 0 gives strong
// disorder. The Markov-chain structure also powers the "data generation"
// use-case example (one solve per configuration in the chain).
#pragma once

#include <cstdint>

#include "lqcd/gauge/gauge_field.h"

namespace lqcd {

/// Sum of the six staples around link (x, mu), in the convention where
/// the sum of Re tr over the six plaquettes containing the link equals
/// Re tr[ U_mu(x) S(x,mu) ]:
///   S(x,mu) = sum_{nu != mu} [ U_nu(x+mu) U_mu(x+nu)^dag U_nu(x)^dag
///                            + U_nu(x+mu-nu)^dag U_mu(x-nu)^dag U_nu(x-nu) ].
template <class T>
SU3<T> staple_sum(const GaugeField<T>& u, std::int32_t x, int mu) {
  const Geometry& g = u.geometry();
  SU3<T> acc;
  acc.zero();
  const std::int32_t xpm = g.neighbor(x, mu, Dir::kForward);
  for (int nu = 0; nu < kNumDims; ++nu) {
    if (nu == mu) continue;
    const std::int32_t xpn = g.neighbor(x, nu, Dir::kForward);
    const std::int32_t xmn = g.neighbor(x, nu, Dir::kBackward);
    const std::int32_t xpm_mn = g.neighbor(xpm, nu, Dir::kBackward);
    // Upper staple.
    SU3<T> up = mul_adj(u.link(xpm, nu), u.link(xpn, mu));
    up = mul_adj(up, u.link(x, nu));
    // Lower staple.
    SU3<T> dn = adj_mul(u.link(xpm_mn, nu), adjoint(u.link(xmn, mu)));
    dn = mul(dn, u.link(xmn, nu));
    acc = acc + up + dn;
  }
  return acc;
}

struct MetropolisParams {
  double beta = 5.7;        ///< Wilson gauge coupling
  double step_size = 0.25;  ///< magnitude of the proposal exp(eps H) U
  int hits_per_link = 3;    ///< Metropolis hits per link per sweep
};

struct MetropolisStats {
  std::int64_t proposals = 0;
  std::int64_t accepted = 0;
  double acceptance() const noexcept {
    return proposals > 0 ? static_cast<double>(accepted) / proposals : 0.0;
  }
};

/// One Metropolis sweep over all links. Returns acceptance statistics.
/// Deterministic given the Rng state.
template <class T>
MetropolisStats metropolis_sweep(GaugeField<T>& u,
                                 const MetropolisParams& params, Rng& rng) {
  const Geometry& g = u.geometry();
  MetropolisStats stats;
  const double beta_over_nc = params.beta / kNumColors;
  for (std::int32_t x = 0; x < g.volume(); ++x) {
    for (int mu = 0; mu < kNumDims; ++mu) {
      const SU3<T> staple = staple_sum(u, x, mu);
      for (int hit = 0; hit < params.hits_per_link; ++hit) {
        const SU3<T> old_link = u.link(x, mu);
        const SU3<T> proposal =
            mul(expm(random_antihermitian<T>(rng, params.step_size)),
                old_link);
        // dS = -beta/3 Re tr[(U' - U) S].
        const SU3<T> diff = proposal - old_link;
        const double re_tr =
            static_cast<double>(trace(mul(diff, staple)).real());
        const double delta_s = -beta_over_nc * re_tr;
        ++stats.proposals;
        if (delta_s <= 0.0 || rng.uniform() < std::exp(-delta_s)) {
          u.link(x, mu) = proposal;
          ++stats.accepted;
        }
      }
      // Keep the link exactly on the group despite accumulated rounding.
      u.link(x, mu) = reunitarize(u.link(x, mu));
    }
  }
  return stats;
}

/// Equilibrate a configuration from a cold (unit) start. Returns the
/// average plaquette after the final sweep.
template <class T>
double equilibrate(GaugeField<T>& u, const MetropolisParams& params,
                   Rng& rng, int sweeps) {
  for (int s = 0; s < sweeps; ++s) metropolis_sweep(u, params, rng);
  return average_plaquette(u);
}

}  // namespace lqcd
