// Scaling explorer: plan a production run on a (virtual) KNC cluster.
//
// Front-end to the cluster performance model — the paper's "data
// generation" use case, where one picks the node count that minimizes
// time-to-solution for the Markov chain. Give it a lattice and a list of
// node counts; it prints the modeled time, per-phase breakdown, load, and
// cost for both solvers.
//
// Usage:
//   scaling_explorer [Lx Ly Lz Lt] [node counts...]
//   (defaults: 48 48 48 64 on 16..256 nodes)
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "lqcd/base/table.h"
#include "lqcd/cluster/cluster_sim.h"
#include "lqcd/resilience/fault_injector.h"
#include "lqcd/resilience/resilient_solve.h"
#include "lqcd/vnode/collectives.h"

using namespace lqcd;
using namespace lqcd::cluster;

int main(int argc, char** argv) {
  Coord lattice{48, 48, 48, 64};
  std::vector<int> node_counts = {16, 24, 32, 48, 64, 96, 128, 192, 256};
  if (argc >= 5) {
    for (int mu = 0; mu < 4; ++mu)
      lattice[static_cast<size_t>(mu)] = std::atoi(argv[mu + 1]);
    if (argc > 5) {
      node_counts.clear();
      for (int i = 5; i < argc; ++i) node_counts.push_back(std::atoi(argv[i]));
    }
  }

  std::printf("Lattice %d x %d x %d x %d on a virtual KNC cluster "
              "(Stampede-like fabric)\n\n",
              lattice[0], lattice[1], lattice[2], lattice[3]);

  ClusterSim sim;
  DDSolveSpec dd;
  dd.lattice = lattice;
  dd.block = {8, 4, 4, 4};
  dd.basis_size = 16;
  dd.deflation_size = 6;
  dd.ischwarz = 16;
  dd.idomain = 5;
  dd.outer_iterations = 200;  // typical near-physical working point
  dd.global_sum_events = 2 * dd.outer_iterations;

  NonDDSolveSpec nd;
  nd.lattice = lattice;
  nd.iterations = 4700;
  nd.global_sum_events = 5 * nd.iterations;

  Table t({"KNCs", "grid", "ndom", "load%", "DD time[s]", "M%", "GS%",
           "DD KNC-min", "non-DD time[s]", "non-DD KNC-min"});
  for (const int n : node_counts) {
    try {
      const auto part = NodePartition::choose(lattice, n, dd.block);
      const auto r = sim.simulate_dd(dd, part);
      const auto rn = sim.simulate_nondd(
          nd, NodePartition::choose(lattice, n, {2, 2, 2, 2}));
      char grid[32];
      std::snprintf(grid, sizeof grid, "%dx%dx%dx%d", part.grid()[0],
                    part.grid()[1], part.grid()[2], part.grid()[3]);
      t.row()
          .cell(n)
          .cell(std::string(grid))
          .cell(r.ndomain_per_color)
          .cell(100 * r.load, 0)
          .cell(r.total_seconds, 2)
          .cell(r.pct(r.m), 1)
          .cell(r.pct(r.gs), 1)
          .cell(n * r.total_seconds / 60.0, 2)
          .cell(rn.total_seconds, 2)
          .cell(n * rn.total_seconds / 60.0, 2);
    } catch (const Error&) {
      t.row().cell(n).cell("(no valid node grid)");
    }
  }
  std::printf("%s\n", t.str().c_str());
  std::printf(
      "Notes:\n"
      "  * iteration counts assume a near-physical quark mass (~200 outer\n"
      "    DD iterations / ~4700 BiCGstab iterations); scale both for your\n"
      "    own physics. The DD/non-DD *ratios* are iteration-insensitive.\n"
      "  * 'ndom' is the per-color Schwarz domain count per node (Eq. 6);\n"
      "    when it drops below 60 the KNC cores idle (Eq. 7) and below ~30\n"
      "    the strong-scaling limit is reached.\n");

  // Recovery-cost footnote: what ONE node failure costs at the largest
  // node count, under (a) the legacy flat recovery constant and (b) the
  // rewire cost emulated by replaying the fault-tolerant allreduce tree
  // with a dead rank (vnode emulation).
  {
    const int n = node_counts.back();
    std::vector<double> parts(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r)
      parts[static_cast<std::size_t>(r)] = std::sin(1.0 + r);
    FaultInjectorConfig fic;
    fic.fault = FaultClass::kRankDeath;
    fic.first_opportunity = n / 2;  // a mid-tree death, worst-ish case
    fic.max_events = 1;
    FaultInjector inj(fic);
    CollectiveConfig cfg;
    cfg.injector = &inj;
    CommStats comm;
    const auto res = tree_allreduce(parts, comm, cfg);
    const double hop_s = sim.params().network.allreduce_latency_us * 1e-6;
    const double flat = 300.0;  // typical flat respawn constant
    std::printf(
        "  * per-failure recovery at %d nodes: flat model %.0f s vs\n"
        "    emulated dead-rank rewire %lld hops -> %.4f s + rework\n"
        "    (set NodeFaultSpec::rewire_hops to use the measured model).\n",
        n, flat, static_cast<long long>(res.stats.rewire_hops),
        rewire_seconds(res.stats, hop_s));
  }

  // Checkpoint-interval auto-tuning (Young/Daly): at the largest node
  // count, compare a fixed hourly checkpoint against the optimum interval
  // sqrt(2 C M_sys)-ish computed from the per-checkpoint cost C and the
  // system MTBF M_sys = node MTBF / nodes. A Markov-chain production
  // stream of 2000 solves (several hours of wall time) — the optimizer
  // assumes steady state (run >> interval); on a short run the fixed
  // interval can win simply because the rework per failure is capped at
  // half the run no matter how rarely one checkpoints.
  {
    const int n = node_counts.back();
    DDSolveSpec stream = dd;
    stream.outer_iterations = 2000 * dd.outer_iterations;
    ClusterSimParams base = sim.params();
    base.faults.node_mtbf_hours = 2000.0;
    base.faults.recovery_seconds = 300.0;
    base.faults.checkpoint_cost_seconds = 60.0;

    ClusterSimParams fixed = base;
    fixed.faults.checkpoint_interval_seconds = 3600.0;
    ClusterSimParams tuned = base;
    tuned.faults.auto_tune_checkpoint_interval = true;

    const auto part = NodePartition::choose(lattice, n, dd.block);
    const auto rf = ClusterSim(fixed).simulate_dd(stream, part);
    const auto rt = ClusterSim(tuned).simulate_dd(stream, part);
    const double mtbf_sys = base.faults.node_mtbf_hours * 3600.0 / n;
    std::printf(
        "  * checkpointing at %d nodes (node MTBF %.0f h -> system MTBF\n"
        "    %.0f s, checkpoint cost %.0f s): fixed %.0f s interval costs\n"
        "    %.2f s fault overhead; Daly-tuned %.0f s interval costs\n"
        "    %.2f s. The same optimizer picks the in-solve ABFT verify\n"
        "    period, e.g. p=1e-3/application -> every %.0f applications.\n",
        n, base.faults.node_mtbf_hours, mtbf_sys,
        base.faults.checkpoint_cost_seconds,
        rf.effective_checkpoint_interval_seconds, rf.fault_overhead_seconds,
        rt.effective_checkpoint_interval_seconds, rt.fault_overhead_seconds,
        daly_checkpoint_interval(0.05, 1.0 / 1e-3));
  }
  return 0;
}
