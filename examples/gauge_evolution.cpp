// Gauge evolution — the paper's "data generation" use case (Sec. IV-C1):
// a Markov chain of gauge configurations with one linear solve per
// configuration. Building the chain is inherently serial, which is why
// the strong-scaling limit of the solver matters (Fig. 6).
//
// This example runs a small quenched Metropolis chain, solves a system on
// every stored configuration with the DD solver, and shows how the
// iteration count and the plaquette evolve along the chain.
#include <cstdio>

#include "lqcd/base/timer.h"
#include "lqcd/core/dd_solver.h"
#include "lqcd/gauge/monte_carlo.h"

using namespace lqcd;

int main() {
  const Geometry geom({8, 8, 8, 8});
  const double beta = 5.7, mass = -0.30, csw = 1.0;
  const int thermalization_sweeps = 30;
  const int configurations = 5;
  const int sweeps_between = 5;

  std::printf(
      "quenched Metropolis chain: beta = %.1f, 8^4 lattice\n"
      "thermalizing %d sweeps, then %d configurations (%d sweeps apart)\n\n",
      beta, thermalization_sweeps, configurations, sweeps_between);

  GaugeField<double> u(geom);
  Rng rng(20260704);
  MetropolisParams mp;
  mp.beta = beta;

  Timer timer;
  equilibrate(u, mp, rng, thermalization_sweeps);
  std::printf("thermalized in %.1f s, plaquette %.4f\n\n", timer.seconds(),
              average_plaquette(u));

  FermionField<double> b(geom.volume());
  gaussian(b, 1);

  std::printf(" cfg  plaquette  acceptance  outer its  solve[s]  rel.resid\n");
  for (int cfg = 0; cfg < configurations; ++cfg) {
    MetropolisStats acc;
    for (int s = 0; s < sweeps_between; ++s) {
      const auto st = metropolis_sweep(u, mp, rng);
      acc.proposals += st.proposals;
      acc.accepted += st.accepted;
    }
    // Solve on the new configuration (boundary phases applied to a copy;
    // the chain itself evolves the unphased field).
    auto u_phys = u;
    u_phys.make_time_antiperiodic();

    DDSolverConfig cfg_dd;
    cfg_dd.block = {4, 4, 4, 4};
    cfg_dd.schwarz_iterations = 4;
    cfg_dd.tolerance = 1e-10;
    DDSolver solver(geom, u_phys, mass, csw, cfg_dd);

    FermionField<double> x(geom.volume()), r(geom.volume());
    Timer solve_timer;
    const auto stats = solver.solve(b, x);
    const double solve_s = solve_timer.seconds();
    solver.op().apply(x, r);
    sub(b, r, r);
    std::printf("  %2d     %.4f       %.2f       %4d     %6.2f   %.2e%s\n",
                cfg, average_plaquette(u), acc.acceptance(),
                stats.iterations, solve_s, norm(r) / norm(b),
                stats.converged ? "" : "  NOT CONVERGED");
  }
  std::printf(
      "\nEach configuration requires a full solve before the chain can\n"
      "advance — the serial dependency that makes the DD solver's\n"
      "strong-scaling advantage (paper Fig. 6) matter in practice.\n");
  return 0;
}
