// Quickstart: solve one Wilson-Clover system with the DD solver.
//
// Demonstrates the library's primary API end to end:
//   1. build a lattice geometry and a synthetic gauge configuration,
//   2. configure the paper's solver stack (FGMRES-DR outer solver +
//      multiplicative Schwarz preconditioner with half-precision
//      matrices),
//   3. solve A x = b to 1e-10 and verify the residual independently.
#include <cstdio>

#include "lqcd/core/dd_solver.h"

using namespace lqcd;

int main() {
  // An 8^4 periodic lattice (antiperiodic fermion BC in time).
  const Geometry geom({8, 8, 8, 8});

  // Synthetic gauge field: disorder 0.25 gives an average plaquette ~0.5,
  // comparable to coarse dynamical configurations (see DESIGN.md on the
  // substitution for production gauge fields).
  auto gauge = random_gauge_field<double>(geom, 0.25, /*seed=*/42);
  gauge.make_time_antiperiodic();
  std::printf("lattice 8^4, average plaquette %.4f\n",
              average_plaquette(gauge));

  // The paper's solver: FGMRES-DR(m=16, k=4) outer, multiplicative
  // Schwarz with 4^4 domains, Idomain = 5 MR iterations per block,
  // gauge links + clover blocks stored in IEEE half precision.
  DDSolverConfig cfg;
  cfg.block = {4, 4, 4, 4};
  cfg.basis_size = 16;
  cfg.deflation_size = 4;
  cfg.schwarz_iterations = 4;
  cfg.block_mr_iterations = 5;
  cfg.half_precision_matrices = true;
  cfg.tolerance = 1e-10;

  const double mass = -0.40;  // moderately light quark
  const double csw = 1.0;
  DDSolver solver(geom, gauge, mass, csw, cfg);

  // Random right-hand side; solve.
  FermionField<double> b(geom.volume()), x(geom.volume());
  gaussian(b, 7);
  const SolverStats stats = solver.solve(b, x);

  // Verify against an independent application of the operator.
  FermionField<double> r(geom.volume());
  solver.op().apply(x, r);
  sub(b, r, r);
  std::printf(
      "converged: %s\n"
      "outer iterations: %d  (matvecs %lld, preconditioner applications "
      "%lld)\n"
      "global reduction events: %lld\n"
      "true relative residual: %.3e\n"
      "Schwarz block solves: %lld (%lld MR iterations, %.2f Gflop "
      "executed)\n",
      stats.converged ? "yes" : "no", stats.iterations,
      static_cast<long long>(stats.matvecs),
      static_cast<long long>(stats.precond_applications),
      static_cast<long long>(stats.global_sum_events),
      norm(r) / norm(b),
      static_cast<long long>(solver.schwarz_stats().block_solves),
      static_cast<long long>(solver.schwarz_stats().mr_iterations),
      solver.schwarz_stats().flops / 1e9);
  return stats.converged ? 0 : 1;
}
