// Precision study: how the preconditioner's storage precision and the
// Schwarz variant affect outer convergence (paper Secs. III-B, IV-B1).
//
// Prints the outer residual history of four solver variants side by side:
//   (a) multiplicative Schwarz, single-precision matrices,
//   (b) multiplicative Schwarz, half-precision matrices (paper default),
//   (c) additive Schwarz, single precision,
//   (d) no preconditioner (plain FGMRES-DR).
#include <cstdio>
#include <vector>

#include "lqcd/core/dd_solver.h"
#include "lqcd/solver/even_odd.h"

using namespace lqcd;

int main() {
  const Geometry geom({8, 8, 8, 8});
  auto gauge = random_gauge_field<double>(geom, 0.25, 99);
  gauge.make_time_antiperiodic();
  const double mass = -0.40, csw = 1.0;
  FermionField<double> b(geom.volume());
  gaussian(b, 100);

  std::printf("lattice 8^4, plaquette %.4f, mass %.2f, csw %.1f\n\n",
              average_plaquette(gauge), mass, csw);

  DDSolverConfig base;
  base.block = {4, 4, 4, 4};
  base.basis_size = 16;
  base.deflation_size = 4;
  base.schwarz_iterations = 2;
  base.block_mr_iterations = 4;
  base.tolerance = 1e-10;
  base.max_iterations = 600;

  std::vector<std::vector<double>> histories;
  std::vector<std::string> labels;
  std::vector<int> iters;

  auto run_dd = [&](const char* label, bool half, bool additive) {
    DDSolverConfig cfg = base;
    cfg.half_precision_matrices = half;
    cfg.additive_schwarz = additive;
    DDSolver solver(geom, gauge, mass, csw, cfg);
    FermionField<double> x(geom.volume());
    const auto st = solver.solve(b, x);
    histories.push_back(st.residual_history);
    labels.emplace_back(label);
    iters.push_back(st.iterations);
  };
  run_dd("mult/single", false, false);
  run_dd("mult/half", true, false);
  run_dd("add/single", false, true);

  {
    Checkerboard cb(geom);
    WilsonCloverOperator<double> op(geom, cb, gauge, mass, csw);
    WilsonCloverLinOp<double> a(op);
    FermionField<double> x(geom.volume());
    FGMRESDRParams p;
    p.basis_size = base.basis_size;
    p.deflation_size = base.deflation_size;
    p.tolerance = base.tolerance;
    p.max_iterations = 3000;
    const auto st = fgmres_dr_solve<double>(a, nullptr, b, x, p);
    histories.push_back(st.residual_history);
    labels.emplace_back("unpreconditioned");
    iters.push_back(st.iterations);
  }

  std::printf("relative residual vs outer iteration:\n  iter");
  for (const auto& l : labels) std::printf("  %16s", l.c_str());
  std::printf("\n");
  std::size_t longest = 0;
  for (const auto& h : histories) longest = std::max(longest, h.size());
  for (std::size_t i = 0; i < longest;
       i += (i < 20 ? 1 : (i < 100 ? 10 : 100))) {
    std::printf("  %4zu", i);
    for (const auto& h : histories) {
      if (i < h.size())
        std::printf("  %16.3e", h[i]);
      else
        std::printf("  %16s", "-");
    }
    std::printf("\n");
  }
  std::printf("\niterations to 1e-10:");
  for (std::size_t i = 0; i < labels.size(); ++i)
    std::printf("  %s: %d", labels[i].c_str(), iters[static_cast<int>(i)]);
  std::printf(
      "\n\nObservations (cf. paper):\n"
      "  * half-precision matrices track the single-precision history\n"
      "    essentially exactly (Sec. IV-B1),\n"
      "  * the multiplicative variant beats the additive one at equal\n"
      "    sweep count (Sec. II-D),\n"
      "  * the Schwarz preconditioner cuts outer iterations by a large\n"
      "    factor versus plain FGMRES-DR (Sec. II-C).\n");
  return 0;
}
