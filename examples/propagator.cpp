// Quark propagator and pion correlator — the paper's "data analysis" use
// case (Sec. IV-C1): many independent solves of A psi = source, one per
// spin-color component of a point source.
//
// This example drives the solves through the SolverService (the
// propagator-farm layer): the 12 spin-color sources are submitted as
// independent SolveRequests, and because they share one gauge
// configuration, mass, and csw, the lane-packing scheduler gathers them
// into kRhsSimdWidth-aligned batches behind one cached DDSolverSetup.
// Each batch streams the packed Schwarz matrices once per sweep for all
// its lanes (paper Sec. VI), and the harvested deflation subspace is
// recycled across batches by the per-context RecycleCache — exactly what
// a physics campaign's analysis farm does, minus MPI.
//
// The pion two-point function is
//   C(t) = sum_x sum_{s,c,s',c'} |S(x,t; 0)_{s c, s' c'}|^2,
// where S is the propagator from a point source at the origin. On a real
// gauge ensemble, ln C(t)/C(t+1) plateaus at the pion mass; on our single
// synthetic configuration it still decays exponentially, which this
// example shows.
#include <cmath>
#include <cstdio>
#include <future>
#include <vector>

#include "lqcd/base/timer.h"
#include "lqcd/service/solver_service.h"

using namespace lqcd;

int main() {
  const Geometry geom({8, 8, 8, 16});
  auto gauge = random_gauge_field<double>(geom, 0.25, 11);
  gauge.make_time_antiperiodic();
  std::printf("lattice 8^3x16, average plaquette %.4f\n",
              average_plaquette(gauge));

  // Basis small enough that each solve spans more than one FGMRES-DR
  // cycle: the first batch then deflates and harvests a subspace, and
  // later batches start from its recycled projection.
  DDSolverConfig cfg;
  cfg.block = {4, 4, 4, 4};
  cfg.basis_size = 8;
  cfg.deflation_size = 4;
  cfg.schwarz_iterations = 2;
  cfg.block_mr_iterations = 3;
  cfg.tolerance = 1e-9;
  const double mass = -0.30, csw = 1.0;

  SolverServiceConfig scfg;
  scfg.solver = cfg;
  scfg.batch.max_lanes = 2 * kRhsSimdWidth;  // 8 lanes: 12 solves -> 8+4
  scfg.batch.window_seconds = 0.05;
  scfg.worker_threads = 1;
  SolverService service(scfg);

  const std::int32_t origin = geom.index({0, 0, 0, 0});
  const auto volume = geom.volume();
  const int nrhs = kNumSpins * kNumColors;

  // Submit all 12 point sources; the scheduler does the batching. The
  // timed region spans submission to last future resolved.
  Timer timer;
  std::vector<std::future<SolveResult>> futs;
  futs.reserve(static_cast<std::size_t>(nrhs));
  for (int s = 0; s < kNumSpins; ++s)
    for (int c = 0; c < kNumColors; ++c) {
      SolveRequest req;
      req.geom = &geom;
      req.gauge = &gauge;
      req.mass = mass;
      req.csw = csw;
      req.tolerance = cfg.tolerance;
      req.source = FermionField<double>(volume);
      req.source[origin].s[s].c[c] = Complex<double>(1, 0);
      futs.push_back(service.submit(std::move(req)));
    }

  std::vector<FermionField<double>> psi;
  psi.reserve(static_cast<std::size_t>(nrhs));
  std::int64_t total_iters = 0;
  for (int s = 0; s < kNumSpins; ++s)
    for (int c = 0; c < kNumColors; ++c) {
      const auto i = static_cast<std::size_t>(s * kNumColors + c);
      SolveResult res = futs[i].get();
      if (!res.stats.converged) {
        std::printf("solve (s=%d,c=%d) failed to converge!\n", s, c);
        return 1;
      }
      total_iters += res.stats.iterations;
      std::printf(
          "  source (spin %d, color %d): %3d outer iterations, "
          "%d-lane batch%s\n",
          s, c, res.stats.iterations, res.batch_lanes,
          res.stats.recycle_projections > 0 ? "  [recycled subspace]" : "");
      psi.push_back(std::move(res.solution));
    }
  const double solve_seconds = timer.seconds();

  const ServiceStats sstats = service.stats();
  std::printf(
      "\n%d propagator solves in %.1f s (%lld outer iterations total, "
      "%llu batches, setup cache %llu miss / %llu hit)\n\n",
      nrhs, solve_seconds, static_cast<long long>(total_iters),
      static_cast<unsigned long long>(sstats.batches),
      static_cast<unsigned long long>(sstats.cache.misses),
      static_cast<unsigned long long>(sstats.cache.hits));

  // Accumulate |S|^2 per timeslice (outside the timed region).
  std::vector<double> corr(static_cast<std::size_t>(geom.dim(3)), 0.0);
  for (int i = 0; i < nrhs; ++i)
    for (std::int32_t x = 0; x < volume; ++x) {
      const int t = geom.coord(x)[3];
      corr[static_cast<std::size_t>(t)] +=
          norm2(psi[static_cast<std::size_t>(i)][x]);
    }

  std::printf("pion correlator (point source at origin):\n");
  std::printf("   t        C(t)      m_eff(t) = ln C(t)/C(t+1)\n");
  const int lt = geom.dim(3);
  for (int t = 0; t < lt; ++t) {
    const double c0 = corr[static_cast<std::size_t>(t)];
    const double c1 = corr[static_cast<std::size_t>((t + 1) % lt)];
    if (t < lt / 2 && c1 > 0) {
      std::printf("  %2d  %12.5e   %8.4f\n", t, c0, std::log(c0 / c1));
    } else {
      std::printf("  %2d  %12.5e\n", t, c0);
    }
  }
  std::printf(
      "\nThe correlator decays exponentially away from the source and is\n"
      "symmetric about t = Lt/2 (antiperiodic BC), as expected.\n");
  return 0;
}
