// Quark propagator and pion correlator — the paper's "data analysis" use
// case (Sec. IV-C1): many independent solves of A psi = source, one per
// spin-color component of a point source.
//
// The pion two-point function is
//   C(t) = sum_x sum_{s,c,s',c'} |S(x,t; 0)_{s c, s' c'}|^2,
// where S is the propagator from a point source at the origin. On a real
// gauge ensemble, ln C(t)/C(t+1) plateaus at the pion mass; on our single
// synthetic configuration it still decays exponentially, which this
// example shows.
#include <cmath>
#include <cstdio>
#include <vector>

#include "lqcd/base/timer.h"
#include "lqcd/core/dd_solver.h"

using namespace lqcd;

int main() {
  const Geometry geom({8, 8, 8, 16});
  auto gauge = random_gauge_field<double>(geom, 0.25, 11);
  gauge.make_time_antiperiodic();
  std::printf("lattice 8^3x16, average plaquette %.4f\n",
              average_plaquette(gauge));

  DDSolverConfig cfg;
  cfg.block = {4, 4, 4, 4};
  cfg.basis_size = 16;
  cfg.deflation_size = 4;
  cfg.schwarz_iterations = 4;
  cfg.block_mr_iterations = 5;
  cfg.tolerance = 1e-9;
  const double mass = -0.30, csw = 1.0;
  DDSolver solver(geom, gauge, mass, csw, cfg);

  const std::int32_t origin = geom.index({0, 0, 0, 0});
  const auto volume = geom.volume();

  // One solve per source spin-color; accumulate |S|^2 per timeslice.
  std::vector<double> corr(static_cast<std::size_t>(geom.dim(3)), 0.0);
  Timer timer;
  std::int64_t total_iters = 0;
  for (int s = 0; s < kNumSpins; ++s)
    for (int c = 0; c < kNumColors; ++c) {
      FermionField<double> src(volume), psi(volume);
      src[origin].s[s].c[c] = Complex<double>(1, 0);
      const auto stats = solver.solve(src, psi);
      total_iters += stats.iterations;
      if (!stats.converged) {
        std::printf("solve (s=%d,c=%d) failed to converge!\n", s, c);
        return 1;
      }
      for (std::int32_t x = 0; x < volume; ++x) {
        const int t = geom.coord(x)[3];
        corr[static_cast<std::size_t>(t)] += norm2(psi[x]);
      }
      std::printf("  source (spin %d, color %d): %3d outer iterations\n", s,
                  c, stats.iterations);
    }

  std::printf(
      "\n12 propagator solves in %.1f s (%lld outer iterations total)\n\n",
      timer.seconds(), static_cast<long long>(total_iters));

  std::printf("pion correlator (point source at origin):\n");
  std::printf("   t        C(t)      m_eff(t) = ln C(t)/C(t+1)\n");
  const int lt = geom.dim(3);
  for (int t = 0; t < lt; ++t) {
    const double c0 = corr[static_cast<std::size_t>(t)];
    const double c1 = corr[static_cast<std::size_t>((t + 1) % lt)];
    if (t < lt / 2 && c1 > 0) {
      std::printf("  %2d  %12.5e   %8.4f\n", t, c0, std::log(c0 / c1));
    } else {
      std::printf("  %2d  %12.5e\n", t, c0);
    }
  }
  std::printf(
      "\nThe correlator decays exponentially away from the source and is\n"
      "symmetric about t = Lt/2 (antiperiodic BC), as expected.\n");
  return 0;
}
