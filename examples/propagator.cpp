// Quark propagator and pion correlator — the paper's "data analysis" use
// case (Sec. IV-C1): many independent solves of A psi = source, one per
// spin-color component of a point source.
//
// The 12 spin-color solves share one gauge configuration, which makes
// them the natural driver for the multi-RHS batched solve path (paper
// Sec. VI): solve_batch() streams each Schwarz domain's packed matrices
// once per sweep for the whole batch and recycles the first solve's
// harmonic-Ritz deflation subspace into the remaining eleven.
//
// The pion two-point function is
//   C(t) = sum_x sum_{s,c,s',c'} |S(x,t; 0)_{s c, s' c'}|^2,
// where S is the propagator from a point source at the origin. On a real
// gauge ensemble, ln C(t)/C(t+1) plateaus at the pion mass; on our single
// synthetic configuration it still decays exponentially, which this
// example shows.
#include <cmath>
#include <cstdio>
#include <vector>

#include "lqcd/base/timer.h"
#include "lqcd/core/dd_solver.h"

using namespace lqcd;

int main() {
  const Geometry geom({8, 8, 8, 16});
  auto gauge = random_gauge_field<double>(geom, 0.25, 11);
  gauge.make_time_antiperiodic();
  std::printf("lattice 8^3x16, average plaquette %.4f\n",
              average_plaquette(gauge));

  // Basis small enough that each solve spans more than one FGMRES-DR
  // cycle: the first solve then deflates and harvests a subspace, and
  // the remaining eleven start from its recycled projection.
  DDSolverConfig cfg;
  cfg.block = {4, 4, 4, 4};
  cfg.basis_size = 8;
  cfg.deflation_size = 4;
  cfg.schwarz_iterations = 2;
  cfg.block_mr_iterations = 3;
  cfg.tolerance = 1e-9;
  const double mass = -0.30, csw = 1.0;
  DDSolver solver(geom, gauge, mass, csw, cfg);

  const std::int32_t origin = geom.index({0, 0, 0, 0});
  const auto volume = geom.volume();
  const int nrhs = kNumSpins * kNumColors;

  // All 12 point sources, buffers allocated ONCE outside the timed
  // region (allocation and zero-fill are not part of the solve).
  std::vector<FermionField<double>> src(static_cast<std::size_t>(nrhs)),
      psi(static_cast<std::size_t>(nrhs));
  for (int s = 0; s < kNumSpins; ++s)
    for (int c = 0; c < kNumColors; ++c) {
      const auto i = static_cast<std::size_t>(s * kNumColors + c);
      src[i] = FermionField<double>(volume);
      psi[i] = FermionField<double>(volume);
      src[i][origin].s[s].c[c] = Complex<double>(1, 0);
    }

  // One batched solve for the whole propagator; the timed region holds
  // nothing but the solves.
  Timer timer;
  const auto stats = solver.solve_batch(src, psi);
  const double solve_seconds = timer.seconds();

  std::int64_t total_iters = 0;
  for (int s = 0; s < kNumSpins; ++s)
    for (int c = 0; c < kNumColors; ++c) {
      const auto i = static_cast<std::size_t>(s * kNumColors + c);
      total_iters += stats[i].iterations;
      if (!stats[i].converged) {
        std::printf("solve (s=%d,c=%d) failed to converge!\n", s, c);
        return 1;
      }
      std::printf("  source (spin %d, color %d): %3d outer iterations%s\n",
                  s, c, stats[i].iterations,
                  stats[i].recycle_projections > 0 ? "  [recycled subspace]"
                                                   : "");
    }

  std::printf(
      "\n%d propagator solves in %.1f s (%lld outer iterations total)\n\n",
      nrhs, solve_seconds, static_cast<long long>(total_iters));

  // Accumulate |S|^2 per timeslice (outside the timed region).
  std::vector<double> corr(static_cast<std::size_t>(geom.dim(3)), 0.0);
  for (int i = 0; i < nrhs; ++i)
    for (std::int32_t x = 0; x < volume; ++x) {
      const int t = geom.coord(x)[3];
      corr[static_cast<std::size_t>(t)] +=
          norm2(psi[static_cast<std::size_t>(i)][x]);
    }

  std::printf("pion correlator (point source at origin):\n");
  std::printf("   t        C(t)      m_eff(t) = ln C(t)/C(t+1)\n");
  const int lt = geom.dim(3);
  for (int t = 0; t < lt; ++t) {
    const double c0 = corr[static_cast<std::size_t>(t)];
    const double c1 = corr[static_cast<std::size_t>((t + 1) % lt)];
    if (t < lt / 2 && c1 > 0) {
      std::printf("  %2d  %12.5e   %8.4f\n", t, c0, std::log(c0 / c1));
    } else {
      std::printf("  %2d  %12.5e\n", t, c0);
    }
  }
  std::printf(
      "\nThe correlator decays exponentially away from the source and is\n"
      "symmetric about t = Lt/2 (antiperiodic BC), as expected.\n");
  return 0;
}
