// Deterministic-merge contract of the concurrency-safe instrumentation:
// ParallelFaultScope (pre-drawn fire decisions + per-thread shards),
// FaultInjectorStats / CommStats mergeability, and the end-to-end
// guarantee that SchwarzPreconditioner and tiled_block_dslash produce
// EXACTLY the same counters and the same bits at OMP_NUM_THREADS = 1
// and 4 (no tolerance anywhere — EXPECT_EQ only).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "lqcd/gauge/gauge_field.h"
#include "lqcd/schwarz/schwarz.h"
#include "lqcd/tile/tiled_dslash.h"
#include "lqcd/vnode/collectives.h"

#if defined(LQCD_HAVE_OPENMP)
#include <omp.h>
#endif

namespace lqcd {
namespace {

void set_threads(int n) {
#if defined(LQCD_HAVE_OPENMP)
  omp_set_num_threads(n);
#else
  (void)n;
#endif
}

int max_threads() {
#if defined(LQCD_HAVE_OPENMP)
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Field-level EXPECT_EQ: every real component must match bit-for-bit.
void expect_fields_identical(const FermionField<float>& a,
                             const FermionField<float>& b) {
  ASSERT_EQ(a.size(), b.size());
  std::int64_t mismatches = 0;
  for (std::int64_t i = 0; i < a.size(); ++i)
    for (int sp = 0; sp < kNumSpins; ++sp)
      for (int c = 0; c < kNumColors; ++c) {
        if (a[i].s[sp].c[c].real() != b[i].s[sp].c[c].real()) ++mismatches;
        if (a[i].s[sp].c[c].imag() != b[i].s[sp].c[c].imag()) ++mismatches;
      }
  EXPECT_EQ(mismatches, 0);
}

void expect_injector_stats_equal(const FaultInjectorStats& a,
                                 const FaultInjectorStats& b) {
  EXPECT_EQ(a.opportunities, b.opportunities);
  EXPECT_EQ(a.events, b.events);
  for (int s = 0; s < kNumFaultSites; ++s) {
    EXPECT_EQ(a.site_opportunities[s], b.site_opportunities[s]) << "site " << s;
    EXPECT_EQ(a.site_events[s], b.site_events[s]) << "site " << s;
  }
}

void expect_schwarz_stats_equal(const SchwarzStats& a, const SchwarzStats& b) {
  EXPECT_EQ(a.applications, b.applications);
  EXPECT_EQ(a.block_solves, b.block_solves);
  EXPECT_EQ(a.mr_iterations, b.mr_iterations);
  EXPECT_EQ(a.flops, b.flops);
  EXPECT_EQ(a.boundary_bytes, b.boundary_bytes);
  EXPECT_EQ(a.injected_faults, b.injected_faults);
  EXPECT_EQ(a.matrix_block_loads, b.matrix_block_loads);
  EXPECT_EQ(a.sweeps, b.sweeps);
}

// ---------------------------------------------------------------------------
// Stats mergeability (ISSUE satellite: operator+= keeps the per-site split)
// ---------------------------------------------------------------------------

TEST(StatsMerge, FaultInjectorStatsPreservesPerSiteSplit) {
  FaultInjectorStats a, b;
  a.opportunities = 7;
  a.events = 2;
  a.site_opportunities[static_cast<int>(FaultSite::kDomainSolve)] = 5;
  a.site_events[static_cast<int>(FaultSite::kDomainSolve)] = 2;
  a.site_opportunities[static_cast<int>(FaultSite::kTileDslash)] = 2;
  b.opportunities = 3;
  b.events = 1;
  b.site_opportunities[static_cast<int>(FaultSite::kDomainSolve)] = 3;
  b.site_events[static_cast<int>(FaultSite::kDomainSolve)] = 1;

  const FaultInjectorStats sum = a + b;
  EXPECT_EQ(sum.opportunities, 10);
  EXPECT_EQ(sum.events, 3);
  EXPECT_EQ(sum.opportunities_at(FaultSite::kDomainSolve), 8);
  EXPECT_EQ(sum.events_at(FaultSite::kDomainSolve), 3);
  EXPECT_EQ(sum.opportunities_at(FaultSite::kTileDslash), 2);
  EXPECT_EQ(sum.events_at(FaultSite::kTileDslash), 0);

  // Commutativity: shard merge order must not matter.
  expect_injector_stats_equal(a + b, b + a);
}

TEST(StatsMerge, CommStatsAccumulates) {
  CommStats a, b;
  a.messages = 4;
  a.bytes = 400;
  a.halo_exchanges = 2;
  a.retransmits = 1;
  b.messages = 6;
  b.bytes = 600;
  b.allreduces = 3;
  b.rank_deaths = 1;
  const CommStats sum = a + b;
  EXPECT_EQ(sum.messages, 10);
  EXPECT_EQ(sum.bytes, 1000);
  EXPECT_EQ(sum.halo_exchanges, 2);
  EXPECT_EQ(sum.allreduces, 3);
  EXPECT_EQ(sum.retransmits, 1);
  EXPECT_EQ(sum.rank_deaths, 1);
}

// ---------------------------------------------------------------------------
// ParallelFaultScope semantics
// ---------------------------------------------------------------------------

FaultInjectorConfig scope_config() {
  FaultInjectorConfig fic;
  fic.fault = FaultClass::kSpinorBitFlip;
  fic.seed = 99;
  fic.probability = 0.35;
  fic.bit = 30;
  return fic;
}

/// Visit all keys of a scope in the given order, corrupting per-key rows
/// of `data`; returns which keys fired.
std::vector<char> visit_keys(ParallelFaultScope& scope,
                             const std::vector<std::int64_t>& order,
                             std::vector<float>& data, std::int64_t row) {
  std::vector<char> fired(order.size(), 0);
  for (const std::int64_t k : order)
    fired[static_cast<std::size_t>(k)] = scope.maybe_corrupt_reals(
        /*tid=*/0, k, data.data() + k * row, row)
                                             ? 1
                                             : 0;
  return fired;
}

TEST(ParallelFaultScope, FiredPatternIsVisitOrderInvariant) {
  const std::int64_t kKeys = 64, kRow = 8;
  std::vector<std::int64_t> forward, reverse;
  for (std::int64_t k = 0; k < kKeys; ++k) forward.push_back(k);
  for (std::int64_t k = kKeys - 1; k >= 0; --k) reverse.push_back(k);

  FaultInjector inj_a(scope_config()), inj_b(scope_config());
  std::vector<float> data_a(kKeys * kRow, 1.0f), data_b(kKeys * kRow, 1.0f);
  std::vector<char> fired_a, fired_b;
  {
    ParallelFaultScope sa(&inj_a, FaultSite::kDomainSolve, kKeys, 1);
    fired_a = visit_keys(sa, forward, data_a, kRow);
  }
  {
    ParallelFaultScope sb(&inj_b, FaultSite::kDomainSolve, kKeys, 1);
    fired_b = visit_keys(sb, reverse, data_b, kRow);
  }
  EXPECT_EQ(fired_a, fired_b);
  EXPECT_GT(inj_a.stats().events, 0);  // non-vacuous at p = 0.35, 64 keys
  expect_injector_stats_equal(inj_a.stats(), inj_b.stats());
  // Corruption detail (element, bit) is per-key, so the DATA matches too.
  EXPECT_EQ(data_a, data_b);
}

TEST(ParallelFaultScope, HonorsMaxEventsBudget) {
  auto fic = scope_config();
  fic.probability = 1.0;
  fic.max_events = 3;
  FaultInjector inj(fic);
  std::vector<float> data(32 * 4, 1.0f);
  std::vector<std::int64_t> order;
  for (std::int64_t k = 0; k < 32; ++k) order.push_back(k);
  ParallelFaultScope scope(&inj, FaultSite::kDomainSolve, 32, 1);
  const auto fired = visit_keys(scope, order, data, 4);
  scope.merge();
  EXPECT_EQ(inj.stats().events, 3);
  EXPECT_EQ(inj.stats().opportunities, 32);
  // p = 1: the budget is consumed by the FIRST keys, exactly like the
  // serial hook consuming its budget on the first opportunities.
  for (std::int64_t k = 0; k < 32; ++k)
    EXPECT_EQ(fired[static_cast<std::size_t>(k)], k < 3 ? 1 : 0) << k;
}

TEST(ParallelFaultScope, HonorsFirstOpportunityWindow) {
  auto fic = scope_config();
  fic.probability = 1.0;
  fic.first_opportunity = 10;
  fic.max_events = -1;
  FaultInjector inj(fic);
  std::vector<float> data(16 * 4, 1.0f);
  std::vector<std::int64_t> order;
  for (std::int64_t k = 0; k < 16; ++k) order.push_back(k);
  ParallelFaultScope scope(&inj, FaultSite::kDomainSolve, 16, 1);
  const auto fired = visit_keys(scope, order, data, 4);
  scope.merge();
  EXPECT_EQ(inj.stats().opportunities, 16);
  EXPECT_EQ(inj.stats().events, 6);  // keys 10..15
  for (std::int64_t k = 0; k < 16; ++k)
    EXPECT_EQ(fired[static_cast<std::size_t>(k)], k >= 10 ? 1 : 0) << k;
}

TEST(ParallelFaultScope, MessageFaultClassIsInertAtCorruptionSite) {
  auto fic = scope_config();
  fic.fault = FaultClass::kMessageDrop;
  fic.probability = 1.0;
  FaultInjector inj(fic);
  std::vector<float> data(8 * 4, 1.0f);
  std::vector<std::int64_t> order;
  for (std::int64_t k = 0; k < 8; ++k) order.push_back(k);
  ParallelFaultScope scope(&inj, FaultSite::kDomainSolve, 8, 1);
  const auto fired = visit_keys(scope, order, data, 4);
  scope.merge();
  // Mirrors the serial maybe_corrupt* contract: opportunities counted,
  // nothing fires, the payload is untouched.
  EXPECT_EQ(inj.stats().opportunities, 8);
  EXPECT_EQ(inj.stats().events, 0);
  for (const char f : fired) EXPECT_EQ(f, 0);
  for (const float v : data) EXPECT_EQ(v, 1.0f);
}

TEST(ParallelFaultScope, ShardMergeIsThreadCountInvariant) {
  const std::int64_t kKeys = 48, kRow = 6;
  std::vector<std::vector<float>> runs;
  std::vector<FaultInjectorStats> stats;
  for (const int nthreads : {1, 4}) {
    set_threads(nthreads);
    FaultInjector inj(scope_config());
    std::vector<float> data(kKeys * kRow, 2.0f);
    {
      ParallelFaultScope scope(&inj, FaultSite::kDomainSolve, kKeys,
                               max_threads());
#pragma omp parallel for schedule(dynamic) default(none) \
    shared(scope, data, kKeys, kRow)
      for (std::int64_t k = 0; k < kKeys; ++k) {
        int tid = 0;
#if defined(LQCD_HAVE_OPENMP)
        tid = omp_get_thread_num();
#endif
        scope.maybe_corrupt_reals(tid, k, data.data() + k * kRow, kRow);
      }
    }
    runs.push_back(std::move(data));
    stats.push_back(inj.stats());
  }
  set_threads(1);
  EXPECT_GT(stats[0].events, 0);
  expect_injector_stats_equal(stats[0], stats[1]);
  EXPECT_EQ(runs[0], runs[1]);
}

// ---------------------------------------------------------------------------
// End-to-end: Schwarz counters and bits vs OMP_NUM_THREADS
// ---------------------------------------------------------------------------

struct Fixture {
  Geometry geom;
  Checkerboard cb;
  GaugeField<float> gauge;
  WilsonCloverOperator<float> op;
  DomainPartition part;

  Fixture()
      : geom({8, 8, 8, 8}),
        cb(geom),
        gauge([&] {
          auto gd = random_gauge_field<double>(geom, 0.7, 171);
          gd.make_time_antiperiodic();
          return convert<float>(gd);
        }()),
        op(geom, cb, gauge, 0.2f, 1.0f),
        part(geom, {4, 4, 4, 4}) {
    op.prepare_schur();
  }
};

struct SchwarzRun {
  SchwarzStats stats;
  FaultInjectorStats inj_stats;
  std::vector<FermionField<float>> u;
};

/// One full apply_batch under fault injection at `nthreads` OpenMP
/// threads. The preconditioner is constructed while the thread pool is
/// still at 1 thread when `construct_serial` is set — exercising the lazy
/// scratch growth — otherwise after the thread count is raised.
SchwarzRun run_schwarz(const Fixture& f, int nthreads, bool additive,
                       bool construct_serial) {
  set_threads(construct_serial ? 1 : nthreads);
  FaultInjectorConfig fic;
  fic.fault = FaultClass::kSpinorBitFlip;
  fic.seed = 4242;
  fic.probability = 0.25;
  fic.bit = 22;  // mantissa bit: perturbs without wrecking convergence
  FaultInjector inj(fic);

  SchwarzParams p;
  p.schwarz_iterations = 3;
  p.block_mr_iterations = 4;
  p.additive = additive;
  p.domain_fault_injector = &inj;
  SchwarzPreconditioner<float> m(f.part, f.op, p);
  set_threads(nthreads);

  const int nrhs = 2;
  std::vector<FermionField<float>> rhs, u;
  std::vector<const FermionField<float>*> fp;
  std::vector<FermionField<float>*> up;
  for (int b = 0; b < nrhs; ++b) {
    rhs.emplace_back(f.geom.volume());
    u.emplace_back(f.geom.volume());
    gaussian(rhs.back(), 500 + static_cast<std::uint64_t>(b));
  }
  for (int b = 0; b < nrhs; ++b) {
    fp.push_back(&rhs[static_cast<std::size_t>(b)]);
    up.push_back(&u[static_cast<std::size_t>(b)]);
  }
  m.apply_batch(fp, up);
  set_threads(1);
  return SchwarzRun{m.stats(), inj.stats(), std::move(u)};
}

void schwarz_thread_invariance(bool additive) {
  const Fixture f;
  const SchwarzRun serial = run_schwarz(f, 1, additive, false);
  const SchwarzRun parallel4 = run_schwarz(f, 4, additive, false);
  // Construction at 1 thread, apply at 4: the scratch pool must grow
  // lazily instead of indexing out of bounds.
  const SchwarzRun grown = run_schwarz(f, 4, additive, true);

  // The fault hook must actually fire or the contract is untested.
  EXPECT_GT(serial.stats.injected_faults, 0);
  EXPECT_GT(serial.inj_stats.events_at(FaultSite::kDomainSolve), 0);
  // One opportunity per domain visit: iterations x domains (x1 even for
  // nrhs = 2 — the visit, not the RHS, is the opportunity).
  EXPECT_EQ(serial.inj_stats.opportunities_at(FaultSite::kDomainSolve),
            3 * f.part.num_domains());

  for (const SchwarzRun* other : {&parallel4, &grown}) {
    expect_schwarz_stats_equal(serial.stats, other->stats);
    expect_injector_stats_equal(serial.inj_stats, other->inj_stats);
    for (std::size_t b = 0; b < serial.u.size(); ++b)
      expect_fields_identical(serial.u[b], other->u[b]);
  }
}

TEST(ThreadSafety, SchwarzMultiplicativeCountersAndBitsAreThreadInvariant) {
  schwarz_thread_invariance(/*additive=*/false);
}

TEST(ThreadSafety, SchwarzAdditiveCountersAndBitsAreThreadInvariant) {
  schwarz_thread_invariance(/*additive=*/true);
}

// ---------------------------------------------------------------------------
// End-to-end: tiled dslash vs OMP_NUM_THREADS
// ---------------------------------------------------------------------------

TEST(ThreadSafety, TiledDslashCountersAndBitsAreThreadInvariant) {
  const Coord block{8, 4, 4, 4};
  const std::int64_t vol = 8LL * 4 * 4 * 4;
  Rng rng(611);
  std::vector<SU3<float>> links(static_cast<std::size_t>(vol) * kNumDims);
  for (auto& l : links) l = random_su3<float>(rng, 0.8);
  auto link_of = [&](std::int32_t lex, int mu) -> const SU3<float>& {
    return links[static_cast<std::size_t>(lex) * kNumDims +
                 static_cast<std::size_t>(mu)];
  };
  FermionField<float> in(vol);
  gaussian(in, 612);
  TiledGauge tg(block);
  tg.pack(link_of);
  TiledField tin(block);
  tin.pack(in);

  std::vector<FermionField<float>> outs;
  std::vector<FaultInjectorStats> stats;
  for (const int nthreads : {1, 4}) {
    set_threads(nthreads);
    FaultInjectorConfig fic;
    fic.fault = FaultClass::kSpinorBitFlip;
    fic.seed = 613;
    fic.max_events = 1;
    FaultInjector inj(fic);
    TiledField tout(block);
    tiled_block_dslash(block, tg, tin, tout, &inj);
    FermionField<float> out(vol);
    tout.unpack(out);
    outs.push_back(std::move(out));
    stats.push_back(inj.stats());
  }
  set_threads(1);
  EXPECT_EQ(stats[0].events_at(FaultSite::kTileDslash), 1);
  expect_injector_stats_equal(stats[0], stats[1]);
  expect_fields_identical(outs[0], outs[1]);
}

}  // namespace
}  // namespace lqcd
