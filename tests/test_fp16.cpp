// IEEE binary16 conversion: exactness, rounding mode, special values.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "lqcd/base/rng.h"
#include "lqcd/linalg/fp16.h"

namespace lqcd {
namespace {

TEST(Fp16, ExactSmallIntegers) {
  // All integers up to 2048 are exactly representable in binary16.
  for (int i = -2048; i <= 2048; ++i) {
    EXPECT_EQ(half_round_trip(static_cast<float>(i)), static_cast<float>(i));
  }
}

TEST(Fp16, ExactPowersOfTwo) {
  for (int e = -14; e <= 15; ++e) {
    const float f = std::ldexp(1.0f, e);
    EXPECT_EQ(half_round_trip(f), f) << "2^" << e;
    EXPECT_EQ(half_round_trip(-f), -f);
  }
}

TEST(Fp16, KnownEncodings) {
  EXPECT_EQ(float_to_half(0.0f), 0x0000);
  EXPECT_EQ(float_to_half(-0.0f), 0x8000);
  EXPECT_EQ(float_to_half(1.0f), 0x3c00);
  EXPECT_EQ(float_to_half(-1.0f), 0xbc00);
  EXPECT_EQ(float_to_half(2.0f), 0x4000);
  EXPECT_EQ(float_to_half(0.5f), 0x3800);
  EXPECT_EQ(float_to_half(65504.0f), 0x7bff);  // max finite half
  // Smallest positive normal and subnormal.
  EXPECT_EQ(float_to_half(std::ldexp(1.0f, -14)), 0x0400);
  EXPECT_EQ(float_to_half(std::ldexp(1.0f, -24)), 0x0001);
}

TEST(Fp16, RoundToNearestEven) {
  // 1 + 2^-11 is exactly between 1.0 and the next half (1 + 2^-10):
  // must round to even mantissa, i.e. down to 1.0.
  EXPECT_EQ(half_round_trip(1.0f + std::ldexp(1.0f, -11)), 1.0f);
  // 1 + 3*2^-11 is between 1+2^-10 and 1+2^-9: rounds to even -> up.
  EXPECT_EQ(half_round_trip(1.0f + 3 * std::ldexp(1.0f, -11)),
            1.0f + std::ldexp(1.0f, -9));
  // Anything past the midpoint rounds up.
  EXPECT_EQ(half_round_trip(1.0f + std::ldexp(1.1f, -11)),
            1.0f + std::ldexp(1.0f, -10));
}

TEST(Fp16, OverflowSaturatesToInfinity) {
  EXPECT_TRUE(std::isinf(half_round_trip(1.0e6f)));
  EXPECT_TRUE(std::isinf(half_round_trip(-1.0e6f)));
  EXPECT_GT(half_round_trip(1.0e6f), 0.0f);
  EXPECT_LT(half_round_trip(-1.0e6f), 0.0f);
  // 65520 is the smallest float rounding to > max half: rounds to inf.
  EXPECT_TRUE(std::isinf(half_round_trip(65520.0f)));
  // 65519 rounds down to 65504.
  EXPECT_EQ(half_round_trip(65519.0f), 65504.0f);
}

TEST(Fp16, UnderflowFlushesToZeroBelowHalfSubnormal) {
  const float tiny = std::ldexp(1.0f, -26);  // below half of min subnormal
  EXPECT_EQ(half_round_trip(tiny), 0.0f);
  EXPECT_EQ(half_round_trip(-tiny), -0.0f);
  // Just above half of the min subnormal rounds up to it.
  EXPECT_EQ(half_round_trip(std::ldexp(1.2f, -25)), std::ldexp(1.0f, -24));
}

TEST(Fp16, InfinityAndNaN) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_TRUE(std::isinf(half_round_trip(inf)));
  EXPECT_TRUE(std::isinf(half_round_trip(-inf)));
  EXPECT_TRUE(std::isnan(
      half_round_trip(std::numeric_limits<float>::quiet_NaN())));
}

TEST(Fp16, RelativeErrorBoundForNormals) {
  // For values in the normal half range, relative error <= 2^-11.
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const float mag = static_cast<float>(std::exp(rng.uniform(-8.0, 8.0)));
    const float f = (rng.uniform() < 0.5 ? -1.0f : 1.0f) * mag;
    const float r = half_round_trip(f);
    EXPECT_LE(std::abs(r - f), std::ldexp(std::abs(f), -11) * 1.0000001f)
        << "f=" << f;
  }
}

TEST(Fp16, HalfToFloatIsExactOnAllBitPatterns) {
  // Every finite half value must round-trip half->float->half exactly.
  for (std::uint32_t h = 0; h < 0x10000u; ++h) {
    const Half hh = static_cast<Half>(h);
    const float f = half_to_float(hh);
    if (std::isnan(f)) continue;  // NaN payloads may differ; skip
    EXPECT_EQ(float_to_half(f), hh) << "pattern 0x" << std::hex << h;
  }
}

TEST(Fp16, NanRoundTripStaysNan) {
  // Any NaN input must survive the half round-trip as a NaN (never become
  // a finite value or an infinity).
  const float qnan = std::numeric_limits<float>::quiet_NaN();
  const float snan = std::numeric_limits<float>::signaling_NaN();
  EXPECT_TRUE(std::isnan(half_round_trip(qnan)));
  EXPECT_TRUE(std::isnan(half_round_trip(snan)));
  EXPECT_TRUE(std::isnan(half_round_trip(-qnan)));
  // The half encoding itself must be a half NaN (exponent all ones,
  // nonzero mantissa), not the infinity pattern.
  const Half h = float_to_half(qnan);
  EXPECT_EQ(h & 0x7c00, 0x7c00);
  EXPECT_NE(h & 0x03ff, 0);
}

TEST(Fp16, SubnormalRoundTripIsExact) {
  // Every half subnormal k * 2^-24, k = 1..1023, is exactly representable
  // in float and must round-trip unchanged through binary16 storage.
  for (int k = 1; k < 1024; ++k) {
    const float f = static_cast<float>(k) * std::ldexp(1.0f, -24);
    EXPECT_EQ(half_round_trip(f), f) << "k=" << k;
    EXPECT_EQ(half_round_trip(-f), -f) << "k=" << k;
  }
}

TEST(Fp16, OverflowDetectionBoundary) {
  // 65504 is the max finite half; 65519 still rounds down to it; 65520 is
  // the smallest float that rounds to infinity.
  EXPECT_FALSE(half_overflows(65504.0f));
  EXPECT_FALSE(half_overflows(65519.0f));
  EXPECT_TRUE(half_overflows(65520.0f));
  EXPECT_TRUE(half_overflows(-65520.0f));
  EXPECT_TRUE(half_overflows(1.0e6f));
  EXPECT_FALSE(half_overflows(0.0f));
  // Already-non-finite inputs are not *overflow* — they were lost before
  // the down-convert.
  EXPECT_FALSE(half_overflows(std::numeric_limits<float>::infinity()));
  EXPECT_FALSE(half_overflows(-std::numeric_limits<float>::infinity()));
  EXPECT_FALSE(half_overflows(std::numeric_limits<float>::quiet_NaN()));
}

TEST(Fp16, OverflowDetectionAgreesWithRoundTrip) {
  // half_overflows(f) must be exactly "f finite but round-trip infinite".
  Rng rng(11);
  for (int i = 0; i < 20000; ++i) {
    const float mag = static_cast<float>(std::exp(rng.uniform(9.0, 13.0)));
    const float f = (rng.uniform() < 0.5 ? -1.0f : 1.0f) * mag;
    const bool expect =
        std::isfinite(f) && std::isinf(half_round_trip(f));
    EXPECT_EQ(half_overflows(f), expect) << "f=" << f;
  }
}

TEST(Fp16, CountHalfOverflows) {
  const float inf = std::numeric_limits<float>::infinity();
  const float vals[] = {1.0f,     65504.0f, 65520.0f, -1.0e6f,
                        -65519.0f, inf,      0.0f,     7.0e4f};
  EXPECT_EQ(count_half_overflows(vals, 8), 3);  // 65520, -1e6, 7e4
  EXPECT_EQ(count_half_overflows(vals, 0), 0);
  EXPECT_EQ(count_half_overflows(vals, 2), 0);
}

TEST(Fp16, VectorConversion) {
  Rng rng(7);
  constexpr std::int64_t n = 1000;
  std::vector<float> src(n), back(n);
  std::vector<Half> mid(n);
  for (auto& v : src) v = static_cast<float>(rng.gaussian());
  float_to_half(src.data(), mid.data(), n);
  half_to_float(mid.data(), back.data(), n);
  for (std::int64_t i = 0; i < n; ++i)
    EXPECT_EQ(back[static_cast<size_t>(i)],
              half_round_trip(src[static_cast<size_t>(i)]));
}

}  // namespace
}  // namespace lqcd
