// Lattice geometry: indexing, neighbors, parity, checkerboarding.
#include <gtest/gtest.h>

#include "lqcd/lattice/checkerboard.h"
#include "lqcd/lattice/geometry.h"

namespace lqcd {
namespace {

TEST(Geometry, IndexCoordRoundTrip) {
  const Geometry g({4, 6, 2, 8});
  EXPECT_EQ(g.volume(), 4 * 6 * 2 * 8);
  for (std::int32_t i = 0; i < g.volume(); ++i) {
    const Coord c = g.coord(i);
    EXPECT_EQ(g.index(c), i);
    for (int mu = 0; mu < kNumDims; ++mu) {
      EXPECT_GE(c[static_cast<size_t>(mu)], 0);
      EXPECT_LT(c[static_cast<size_t>(mu)], g.dim(mu));
    }
  }
}

TEST(Geometry, RejectsOddAndTinyDims) {
  EXPECT_THROW(Geometry({3, 4, 4, 4}), Error);
  EXPECT_THROW(Geometry({4, 4, 4, 5}), Error);
  EXPECT_THROW(Geometry({0, 4, 4, 4}), Error);
}

TEST(Geometry, NeighborsAreInverse) {
  const Geometry g({4, 4, 6, 2});
  for (std::int32_t i = 0; i < g.volume(); ++i)
    for (int mu = 0; mu < kNumDims; ++mu) {
      const auto f = g.neighbor(i, mu, Dir::kForward);
      EXPECT_EQ(g.neighbor(f, mu, Dir::kBackward), i);
      const auto b = g.neighbor(i, mu, Dir::kBackward);
      EXPECT_EQ(g.neighbor(b, mu, Dir::kForward), i);
    }
}

TEST(Geometry, NeighborsWrapPeriodically) {
  const Geometry g({4, 4, 4, 4});
  const Coord origin{0, 0, 0, 0};
  for (int mu = 0; mu < kNumDims; ++mu) {
    Coord expect = origin;
    expect[static_cast<size_t>(mu)] = g.dim(mu) - 1;
    EXPECT_EQ(g.neighbor(g.index(origin), mu, Dir::kBackward),
              g.index(expect));
  }
}

TEST(Geometry, NeighborsFlipParity) {
  const Geometry g({4, 6, 4, 2});
  for (std::int32_t i = 0; i < g.volume(); ++i)
    for (int mu = 0; mu < kNumDims; ++mu) {
      EXPECT_NE(g.parity(i), g.parity(g.neighbor(i, mu, Dir::kForward)));
      EXPECT_NE(g.parity(i), g.parity(g.neighbor(i, mu, Dir::kBackward)));
    }
}

TEST(Geometry, WrapsForwardDetection) {
  const Geometry g({4, 4, 4, 6});
  int wraps = 0;
  for (std::int32_t i = 0; i < g.volume(); ++i)
    if (g.wraps_forward(g.coord(i), 3)) ++wraps;
  // Exactly one t-slice wraps.
  EXPECT_EQ(wraps, g.volume() / g.dim(3));
}

TEST(Checkerboard, SplitsVolumeInHalf) {
  const Geometry g({4, 4, 6, 2});
  const Checkerboard cb(g);
  EXPECT_EQ(cb.half_volume(), g.volume() / 2);
  EXPECT_EQ(static_cast<std::int64_t>(cb.sites(0).size()), cb.half_volume());
  EXPECT_EQ(static_cast<std::int64_t>(cb.sites(1).size()), cb.half_volume());
}

TEST(Checkerboard, IndexRoundTrip) {
  const Geometry g({4, 4, 4, 4});
  const Checkerboard cb(g);
  for (std::int32_t i = 0; i < g.volume(); ++i) {
    const int p = g.parity(i);
    EXPECT_EQ(cb.full_index(p, cb.cb_index(i)), i);
  }
}

TEST(Checkerboard, PartitionsAreDisjointAndComplete) {
  const Geometry g({2, 4, 6, 4});
  const Checkerboard cb(g);
  std::vector<bool> seen(static_cast<size_t>(g.volume()), false);
  for (int p = 0; p < 2; ++p)
    for (const auto s : cb.sites(p)) {
      EXPECT_FALSE(seen[static_cast<size_t>(s)]);
      seen[static_cast<size_t>(s)] = true;
      EXPECT_EQ(g.parity(s), p);
    }
  for (const bool b : seen) EXPECT_TRUE(b);
}

}  // namespace
}  // namespace lqcd
