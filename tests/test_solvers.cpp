// Krylov solvers: MR, CG, BiCGstab, FGMRES(-DR), mixed-precision
// Richardson, and the even-odd solve driver — on synthetic operators with
// controlled spectra and on real Wilson-Clover systems.
#include <gtest/gtest.h>

#include "lqcd/gauge/gauge_field.h"
#include "lqcd/solver/bicgstab.h"
#include "lqcd/solver/cg.h"
#include "lqcd/solver/even_odd.h"
#include "lqcd/solver/fgmres_dr.h"
#include "lqcd/solver/mr.h"
#include "lqcd/solver/richardson.h"

namespace lqcd {
namespace {

/// Relative true residual ||b - A x|| / ||b||.
template <class T>
double true_residual(const LinearOperator<T>& op, const FermionField<T>& b,
                     const FermionField<T>& x) {
  FermionField<T> r(op.vector_size());
  op.apply(x, r);
  sub(b, r, r);
  return norm(r) / norm(b);
}

std::vector<Complex<double>> spd_spectrum(std::int64_t n, double cond,
                                          std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Complex<double>> d(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i)
    d[static_cast<std::size_t>(i)] =
        Complex<double>(1.0 + (cond - 1.0) * rng.uniform(), 0.0);
  return d;
}

TEST(MR, ConvergesOnDiagonalSystem) {
  DiagonalOperator<double> op(spd_spectrum(64, 4.0, 1));
  FermionField<double> b(64), x(64);
  gaussian(b, 2);
  MRParams p;
  p.max_iterations = 200;
  p.tolerance = 1e-8;
  const auto stats = mr_solve(op, b, x, p);
  EXPECT_TRUE(stats.converged);
  EXPECT_LT(true_residual(op, b, x), 1e-7);
}

TEST(MR, FixedIterationModeRunsExactCount) {
  DiagonalOperator<double> op(spd_spectrum(32, 3.0, 3));
  FermionField<double> b(32), x(32);
  gaussian(b, 4);
  MRParams p;
  p.max_iterations = 5;
  p.tolerance = 0.0;  // fixed-count mode, as in the Schwarz block solve
  const auto stats = mr_solve(op, b, x, p);
  EXPECT_EQ(stats.iterations, 5);
}

TEST(MR, XIsZeroShortcutMatchesGeneralPath) {
  DiagonalOperator<double> op(spd_spectrum(32, 5.0, 5));
  FermionField<double> b(32), x1(32), x2(32);
  gaussian(b, 6);
  MRParams p;
  p.max_iterations = 7;
  mr_solve(op, b, x1, p, /*x_is_zero=*/true);
  x2.zero();
  mr_solve(op, b, x2, p, /*x_is_zero=*/false);
  sub(x1, x2, x2);
  EXPECT_LT(norm(x2), 1e-12 * norm(x1));
}

TEST(MR, ResidualDecreasesMonotonically) {
  DiagonalOperator<double> op(spd_spectrum(48, 10.0, 7));
  FermionField<double> b(48), x(48);
  gaussian(b, 8);
  MRParams p;
  p.max_iterations = 30;
  const auto stats = mr_solve(op, b, x, p);
  for (std::size_t i = 1; i < stats.residual_history.size(); ++i)
    EXPECT_LE(stats.residual_history[i], stats.residual_history[i - 1] + 1e-15);
}

TEST(CG, RecoversKnownSolution) {
  DiagonalOperator<double> op(spd_spectrum(64, 50.0, 9));
  FermionField<double> x_true(64), b(64), x(64);
  gaussian(x_true, 10);
  op.apply(x_true, b);
  CGParams p;
  p.tolerance = 1e-12;
  const auto stats = cg_solve(op, b, x, p);
  EXPECT_TRUE(stats.converged);
  sub(x, x_true, x);
  EXPECT_LT(norm(x), 1e-9 * norm(x_true));
}

TEST(CG, ThrowsOnIndefiniteOperator) {
  std::vector<Complex<double>> d(16, Complex<double>(1, 0));
  d[3] = Complex<double>(-1, 0);
  DiagonalOperator<double> op(d);
  FermionField<double> b(16), x(16);
  gaussian(b, 11);
  CGParams p;
  EXPECT_THROW(cg_solve(op, b, x, p), Error);
}

TEST(BiCGstab, ConvergesOnComplexDiagonal) {
  Rng rng(12);
  std::vector<Complex<double>> d(128);
  for (auto& z : d)
    z = Complex<double>(1.0 + 3.0 * rng.uniform(), 0.5 * rng.gaussian());
  DiagonalOperator<double> op(d);
  FermionField<double> b(128), x(128);
  gaussian(b, 13);
  BiCGstabParams p;
  p.tolerance = 1e-10;
  const auto stats = bicgstab_solve(op, b, x, p);
  EXPECT_TRUE(stats.converged);
  EXPECT_LT(true_residual(op, b, x), 1e-9);
}

struct WilsonFixture {
  Geometry geom;
  Checkerboard cb;
  GaugeField<double> gauge;
  WilsonCloverOperator<double> op;

  WilsonFixture(const Coord& dims, double disorder, double mass, double csw,
                std::uint64_t seed)
      : geom(dims),
        cb(geom),
        gauge([&] {
          auto g = random_gauge_field<double>(geom, disorder, seed);
          g.make_time_antiperiodic();
          return g;
        }()),
        op(geom, cb, gauge, mass, csw) {}
};

TEST(BiCGstab, SolvesWilsonCloverSystem) {
  WilsonFixture f({4, 4, 4, 8}, 0.6, 0.2, 1.0, 21);
  WilsonCloverLinOp<double> a(f.op);
  FermionField<double> b(f.geom.volume()), x(f.geom.volume());
  gaussian(b, 22);
  BiCGstabParams p;
  p.tolerance = 1e-10;
  p.max_iterations = 2000;
  const auto stats = bicgstab_solve(a, b, x, p);
  EXPECT_TRUE(stats.converged);
  EXPECT_LT(true_residual(a, b, x), 2e-10);
  EXPECT_GT(stats.iterations, 5);  // nontrivial problem
}

TEST(FGMRES, PlainRestartedConvergesOnWilsonClover) {
  WilsonFixture f({4, 4, 4, 8}, 0.6, 0.2, 1.0, 21);
  WilsonCloverLinOp<double> a(f.op);
  FermionField<double> b(f.geom.volume()), x(f.geom.volume());
  gaussian(b, 22);
  FGMRESDRParams p;
  p.basis_size = 16;
  p.deflation_size = 0;
  p.tolerance = 1e-10;
  p.max_iterations = 2000;
  const auto stats = fgmres_dr_solve<double>(a, nullptr, b, x, p);
  EXPECT_TRUE(stats.converged);
  EXPECT_LT(true_residual(a, b, x), 2e-10);
}

TEST(FGMRES, AgreesWithBiCGstabSolution) {
  WilsonFixture f({4, 4, 4, 4}, 0.5, 0.3, 1.2, 31);
  WilsonCloverLinOp<double> a(f.op);
  FermionField<double> b(f.geom.volume()), x1(f.geom.volume()),
      x2(f.geom.volume());
  gaussian(b, 32);
  BiCGstabParams pb;
  pb.tolerance = 1e-12;
  bicgstab_solve(a, b, x1, pb);
  FGMRESDRParams pg;
  pg.basis_size = 20;
  pg.tolerance = 1e-12;
  fgmres_dr_solve<double>(a, nullptr, b, x2, pg);
  sub(x1, x2, x2);
  EXPECT_LT(norm(x2), 1e-8 * norm(x1));
}

TEST(FGMRESDR, DeflationAcceleratesSmallEigenvalueSystems) {
  // Spectrum with a cluster near zero: restarted GMRES without deflation
  // stalls; GMRES-DR carries the low modes across restarts.
  Rng rng(41);
  const std::int64_t n = 256;
  std::vector<Complex<double>> d(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i)
    d[static_cast<std::size_t>(i)] =
        Complex<double>(1.0 + rng.uniform(), 0.1 * rng.gaussian());
  // Plant 6 small eigenvalues.
  for (int i = 0; i < 6; ++i)
    d[static_cast<std::size_t>(i)] = Complex<double>(0.005 * (i + 1), 0.0);
  DiagonalOperator<double> op(d);
  FermionField<double> b(n), x0(n), x1(n);
  gaussian(b, 42);

  FGMRESDRParams plain;
  plain.basis_size = 10;
  plain.deflation_size = 0;
  plain.tolerance = 1e-8;
  plain.max_iterations = 600;
  const auto s0 = fgmres_dr_solve<double>(op, nullptr, b, x0, plain);

  FGMRESDRParams defl = plain;
  defl.deflation_size = 6;
  const auto s1 = fgmres_dr_solve<double>(op, nullptr, b, x1, defl);

  EXPECT_TRUE(s1.converged);
  EXPECT_LT(true_residual(op, b, x1), 1e-7);
  // Deflation must be substantially faster (paper: "converges faster for
  // problems with low modes").
  if (s0.converged) {
    EXPECT_LT(s1.iterations, s0.iterations * 3 / 4)
        << "plain=" << s0.iterations << " deflated=" << s1.iterations;
  } else {
    SUCCEED();  // plain stalled entirely; deflated converged
  }
}

TEST(FGMRESDR, ConvergesOnWilsonCloverWithDeflation) {
  WilsonFixture f({4, 4, 4, 8}, 0.7, 0.05, 1.3, 51);
  WilsonCloverLinOp<double> a(f.op);
  FermionField<double> b(f.geom.volume()), x(f.geom.volume());
  gaussian(b, 52);
  FGMRESDRParams p;
  p.basis_size = 12;
  p.deflation_size = 4;
  p.tolerance = 1e-10;
  p.max_iterations = 3000;
  const auto stats = fgmres_dr_solve<double>(a, nullptr, b, x, p);
  EXPECT_TRUE(stats.converged);
  EXPECT_LT(true_residual(a, b, x), 2e-10);
}

/// A few MR sweeps on the same operator as a (flexible, approximate)
/// preconditioner.
template <class T>
class MRPreconditioner final : public Preconditioner<T> {
 public:
  MRPreconditioner(const LinearOperator<T>& op, int iters)
      : op_(&op), iters_(iters) {}
  void apply(const FermionField<T>& in, FermionField<T>& out) override {
    out.zero();
    MRParams p;
    p.max_iterations = iters_;
    p.tolerance = 0.0;
    mr_solve(*op_, in, out, p, /*x_is_zero=*/true);
  }

 private:
  const LinearOperator<T>* op_;
  int iters_;
};

TEST(FGMRES, FlexiblePreconditioningReducesOuterIterations) {
  WilsonFixture f({4, 4, 4, 8}, 0.6, 0.15, 1.0, 61);
  WilsonCloverLinOp<double> a(f.op);
  FermionField<double> b(f.geom.volume()), x0(f.geom.volume()),
      x1(f.geom.volume());
  gaussian(b, 62);
  FGMRESDRParams p;
  p.basis_size = 16;
  p.tolerance = 1e-10;
  p.max_iterations = 2000;
  const auto s0 = fgmres_dr_solve<double>(a, nullptr, b, x0, p);
  MRPreconditioner<double> m(a, 6);
  const auto s1 = fgmres_dr_solve<double>(a, &m, b, x1, p);
  EXPECT_TRUE(s0.converged);
  EXPECT_TRUE(s1.converged);
  EXPECT_LT(true_residual(a, b, x1), 2e-10);
  EXPECT_LT(s1.iterations, s0.iterations / 2)
      << "unprec=" << s0.iterations << " prec=" << s1.iterations;
}

TEST(Richardson, MixedPrecisionReachesDoublePrecisionTarget) {
  WilsonFixture f({4, 4, 4, 8}, 0.6, 0.2, 1.0, 71);
  WilsonCloverLinOp<double> a_d(f.op);
  // Single-precision copy of the operator for the inner solver.
  auto gauge_f = convert<float>(f.gauge);
  WilsonCloverOperator<float> op_f(f.geom, f.cb, gauge_f, 0.2f, 1.0f);
  WilsonCloverLinOp<float> a_f(op_f);

  FermionField<double> b(f.geom.volume()), x(f.geom.volume());
  gaussian(b, 72);

  InnerSolver<float> inner = [&](const FermionField<float>& rhs,
                                 FermionField<float>& corr) {
    BiCGstabParams pi;
    pi.tolerance = 0.1;  // loose inner target, as in the paper's baseline
    pi.max_iterations = 500;
    return bicgstab_solve(a_f, rhs, corr, pi);
  };
  RichardsonParams pr;
  pr.tolerance = 1e-10;
  const auto stats = richardson_solve<double, float>(a_d, b, x, inner, pr);
  EXPECT_TRUE(stats.converged);
  EXPECT_LT(true_residual(a_d, b, x), 2e-10);
  EXPECT_GT(stats.precond_applications, 1);  // needed several inner solves
}

TEST(EvenOdd, SchurSolveMatchesDirectFullSolve) {
  WilsonFixture f({4, 4, 4, 8}, 0.6, 0.2, 1.0, 81);
  f.op.prepare_schur();
  WilsonCloverLinOp<double> a(f.op);
  SchurLinOp<double> schur(f.op);

  FermionField<double> b(f.geom.volume()), x_direct(f.geom.volume()),
      x_eo(f.geom.volume());
  gaussian(b, 82);

  BiCGstabParams p;
  p.tolerance = 1e-11;
  p.max_iterations = 4000;
  bicgstab_solve(a, b, x_direct, p);

  EvenSolver<double> even = [&](const FermionField<double>& rhs,
                                FermionField<double>& ue) {
    return bicgstab_solve(schur, rhs, ue, p);
  };
  even_odd_solve(f.op, b, x_eo, even);

  EXPECT_LT(true_residual(a, b, x_eo), 1e-9);
  sub(x_direct, x_eo, x_eo);
  EXPECT_LT(norm(x_eo), 1e-7 * norm(x_direct));
}

TEST(EvenOdd, SchurReducesIterationCount) {
  // Paper Sec. II-D: even-odd preconditioning roughly halves the MR/Krylov
  // iteration count.
  WilsonFixture f({4, 4, 4, 8}, 0.7, 0.1, 1.0, 91);
  f.op.prepare_schur();
  WilsonCloverLinOp<double> a(f.op);
  SchurLinOp<double> schur(f.op);

  FermionField<double> b(f.geom.volume()), x(f.geom.volume());
  gaussian(b, 92);
  BiCGstabParams p;
  p.tolerance = 1e-10;
  p.max_iterations = 4000;
  const auto full_stats = bicgstab_solve(a, b, x, p);

  const auto half = f.cb.half_volume();
  FermionField<double> b_e(half), x_e(half);
  gaussian(b_e, 93);
  const auto schur_stats = bicgstab_solve(schur, b_e, x_e, p);

  EXPECT_TRUE(full_stats.converged);
  EXPECT_TRUE(schur_stats.converged);
  EXPECT_LT(schur_stats.iterations, full_stats.iterations * 3 / 4)
      << "full=" << full_stats.iterations
      << " schur=" << schur_stats.iterations;
}

TEST(SolverStats, GlobalSumEventsAreBatchedReductions) {
  // FGMRES counts ~2 reduction events per Arnoldi step (one batched
  // Gram-Schmidt + one norm), matching the paper's Table III accounting.
  WilsonFixture f({4, 4, 4, 4}, 0.5, 0.3, 1.0, 101);
  WilsonCloverLinOp<double> a(f.op);
  FermionField<double> b(f.geom.volume()), x(f.geom.volume());
  gaussian(b, 102);
  FGMRESDRParams p;
  p.basis_size = 16;
  p.tolerance = 1e-10;
  const auto s = fgmres_dr_solve<double>(a, nullptr, b, x, p);
  ASSERT_GT(s.iterations, 0);
  const double per_iter =
      static_cast<double>(s.global_sum_events) / s.iterations;
  EXPECT_GT(per_iter, 1.5);
  EXPECT_LT(per_iter, 3.5);
}

}  // namespace
}  // namespace lqcd
