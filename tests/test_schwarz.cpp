// Schwarz preconditioner: residual bookkeeping, convergence properties,
// additive vs multiplicative, half-precision storage.
#include <gtest/gtest.h>

#include "lqcd/schwarz/schwarz.h"
#include "lqcd/solver/even_odd.h"
#include "lqcd/solver/fgmres_dr.h"

namespace lqcd {
namespace {

struct Fixture {
  Geometry geom;
  Checkerboard cb;
  GaugeField<float> gauge;
  WilsonCloverOperator<float> op;
  DomainPartition part;

  Fixture(const Coord& dims, const Coord& block, double disorder, float mass,
          float csw, std::uint64_t seed)
      : geom(dims),
        cb(geom),
        gauge([&] {
          auto gd = random_gauge_field<double>(geom, disorder, seed);
          gd.make_time_antiperiodic();
          return convert<float>(gd);
        }()),
        op(geom, cb, gauge, mass, csw),
        part(geom, block) {
    op.prepare_schur();
  }
};

/// ||f - A u|| using the float operator.
double true_residual_norm(const WilsonCloverOperator<float>& op,
                          const FermionField<float>& f,
                          const FermionField<float>& u) {
  FermionField<float> au(f.size());
  op.apply(u, au);
  sub(f, au, au);
  return norm(au);
}

TEST(Schwarz, RequiresPreparedOperator) {
  Geometry geom({8, 8, 8, 8});
  Checkerboard cb(geom);
  GaugeField<float> gauge(geom);
  WilsonCloverOperator<float> op(geom, cb, gauge, 0.2f, 1.0f);
  DomainPartition part(geom, {4, 4, 4, 4});
  EXPECT_THROW(
      (SchwarzPreconditioner<float>(part, op, SchwarzParams{})), Error);
}

TEST(Schwarz, InternalResidualMatchesTrueResidual) {
  // The preconditioner maintains r = f - A u incrementally (block updates
  // + boundary buffers). Verify against an independent full-operator
  // computation — this exercises every piece: local Schur solve, odd
  // reconstruction, residual writes, AOS pack/unpack, link ownership.
  Fixture f({8, 8, 8, 8}, {4, 4, 4, 4}, 0.7, 0.2f, 1.0f, 11);
  SchwarzParams p;
  p.schwarz_iterations = 3;
  p.block_mr_iterations = 4;
  SchwarzPreconditioner<float> m(f.part, f.op, p);

  FermionField<float> rhs(f.geom.volume()), u(f.geom.volume());
  gaussian(rhs, 12);
  m.apply(rhs, u);

  FermionField<float> au(f.geom.volume());
  f.op.apply(u, au);
  sub(rhs, au, au);  // true residual
  double diff2 = 0;
  for (std::int64_t i = 0; i < au.size(); ++i)
    diff2 += norm2(au[i] - m.residual()[i]);
  // The error scale is float accumulation relative to the INPUT norm (the
  // residual itself may be orders of magnitude smaller after the sweeps).
  EXPECT_LT(std::sqrt(diff2), 1e-6 * norm(rhs));
}

TEST(Schwarz, ReducesResidual) {
  Fixture f({8, 8, 8, 8}, {4, 4, 4, 4}, 0.7, 0.2f, 1.0f, 21);
  SchwarzParams p;
  p.schwarz_iterations = 8;
  p.block_mr_iterations = 5;
  SchwarzPreconditioner<float> m(f.part, f.op, p);

  FermionField<float> rhs(f.geom.volume()), u(f.geom.volume());
  gaussian(rhs, 22);
  m.apply(rhs, u);
  EXPECT_LT(true_residual_norm(f.op, rhs, u), 0.5 * norm(rhs));
}

TEST(Schwarz, MoreIterationsReduceResidualFurther) {
  Fixture f({8, 8, 8, 8}, {4, 4, 4, 4}, 0.7, 0.2f, 1.0f, 31);
  FermionField<float> rhs(f.geom.volume()), u(f.geom.volume());
  gaussian(rhs, 32);

  double prev = norm(rhs);
  for (int iters : {2, 6, 12}) {
    SchwarzParams p;
    p.schwarz_iterations = iters;
    p.block_mr_iterations = 5;
    SchwarzPreconditioner<float> m(f.part, f.op, p);
    m.apply(rhs, u);
    const double res = true_residual_norm(f.op, rhs, u);
    EXPECT_LT(res, prev) << "ISchwarz=" << iters;
    prev = res;
  }
}

TEST(Schwarz, ConvergedBlockSolvesZeroLastColorResidual) {
  // One full multiplicative sweep (black phase then white phase) with a
  // generously converged block solver: the white domains are solved last
  // and receive no later halo updates, so their residual must be
  // (near-)zero — exactly zero on odd sites, MR-converged on even —
  // while the black domains carry the white corrections' halo updates.
  Fixture f({8, 8, 8, 8}, {4, 4, 4, 4}, 0.6, 0.3f, 1.0f, 41);
  SchwarzParams p;
  p.schwarz_iterations = 1;
  p.block_mr_iterations = 60;
  SchwarzPreconditioner<float> m(f.part, f.op, p);

  FermionField<float> rhs(f.geom.volume()), u(f.geom.volume());
  gaussian(rhs, 42);
  m.apply(rhs, u);

  double black2 = 0, white2 = 0;
  for (const int d : f.part.domains_of_color(0))
    for (std::int32_t l = 0; l < f.part.domain_volume(); ++l)
      black2 += norm2(m.residual()[f.part.global_site(d, l)]);
  for (const int d : f.part.domains_of_color(1))
    for (std::int32_t l = 0; l < f.part.domain_volume(); ++l)
      white2 += norm2(m.residual()[f.part.global_site(d, l)]);
  EXPECT_LT(std::sqrt(white2), 1e-3 * std::sqrt(black2));
}

TEST(Schwarz, MultiplicativeBeatsAdditive) {
  Fixture f({8, 8, 8, 8}, {4, 4, 4, 4}, 0.7, 0.2f, 1.0f, 51);
  FermionField<float> rhs(f.geom.volume()), u_m(f.geom.volume()),
      u_a(f.geom.volume());
  gaussian(rhs, 52);

  // Both variants solve every domain once per sweep; equal sweep counts
  // give equal work.
  SchwarzParams pm;
  pm.schwarz_iterations = 4;
  pm.block_mr_iterations = 5;
  SchwarzPreconditioner<float> mult(f.part, f.op, pm);
  mult.apply(rhs, u_m);

  SchwarzParams pa = pm;
  pa.additive = true;
  SchwarzPreconditioner<float> add(f.part, f.op, pa);
  add.apply(rhs, u_a);

  const double rm = true_residual_norm(f.op, rhs, u_m);
  const double ra = true_residual_norm(f.op, rhs, u_a);
  EXPECT_LT(rm, ra) << "multiplicative=" << rm << " additive=" << ra;
}

TEST(Schwarz, AdditiveResidualBookkeepingAlsoExact) {
  Fixture f({8, 8, 8, 8}, {4, 4, 4, 4}, 0.7, 0.2f, 1.0f, 61);
  SchwarzParams p;
  p.schwarz_iterations = 3;
  p.block_mr_iterations = 4;
  p.additive = true;
  SchwarzPreconditioner<float> m(f.part, f.op, p);
  FermionField<float> rhs(f.geom.volume()), u(f.geom.volume());
  gaussian(rhs, 62);
  m.apply(rhs, u);
  FermionField<float> au(f.geom.volume());
  f.op.apply(u, au);
  sub(rhs, au, au);
  double diff2 = 0;
  for (std::int64_t i = 0; i < au.size(); ++i)
    diff2 += norm2(au[i] - m.residual()[i]);
  EXPECT_LT(std::sqrt(diff2), 1e-6 * norm(rhs));
}

TEST(Schwarz, HalfPrecisionStorageCloseToSingle) {
  // Paper Sec. IV-B1: storing links+clover in half precision changes the
  // preconditioner output only marginally.
  Fixture f({8, 8, 8, 8}, {4, 4, 4, 4}, 0.7, 0.2f, 1.0f, 71);
  SchwarzParams p;
  p.schwarz_iterations = 6;
  p.block_mr_iterations = 5;
  SchwarzPreconditioner<float> m_single(f.part, f.op, p);
  SchwarzPreconditioner<Half> m_half(f.part, f.op, p);

  FermionField<float> rhs(f.geom.volume()), u_s(f.geom.volume()),
      u_h(f.geom.volume());
  gaussian(rhs, 72);
  m_single.apply(rhs, u_s);
  m_half.apply(rhs, u_h);

  double diff2 = 0, n2 = 0;
  for (std::int64_t i = 0; i < u_s.size(); ++i) {
    diff2 += norm2(u_s[i] - u_h[i]);
    n2 += norm2(u_s[i]);
  }
  const double rel = std::sqrt(diff2 / n2);
  EXPECT_LT(rel, 5e-2);
  EXPECT_GT(rel, 1e-7);  // they must not be bit-identical
}

TEST(Schwarz, HalfStorageHalvesMatrixFootprint) {
  Fixture f({16, 8, 8, 8}, {8, 4, 4, 4}, 0.5, 0.2f, 1.0f, 81);
  SchwarzParams p;
  SchwarzPreconditioner<float> m_single(f.part, f.op, p);
  SchwarzPreconditioner<Half> m_half(f.part, f.op, p);
  // Paper: 144 kB + 144 kB single -> 72 kB + 72 kB half per 8x4^3 domain.
  EXPECT_EQ(m_single.domain_matrix_bytes(), (144 + 144) * 1024);
  EXPECT_EQ(m_half.domain_matrix_bytes(), (72 + 72) * 1024);
}

TEST(Schwarz, StatsCountBlockSolvesAndIterations) {
  Fixture f({8, 8, 8, 8}, {4, 4, 4, 4}, 0.5, 0.3f, 1.0f, 91);
  SchwarzParams p;
  p.schwarz_iterations = 4;
  p.block_mr_iterations = 5;
  SchwarzPreconditioner<float> m(f.part, f.op, p);
  FermionField<float> rhs(f.geom.volume()), u(f.geom.volume());
  gaussian(rhs, 92);
  m.apply(rhs, u);
  // 4 full sweeps x 16 domains (both colors).
  EXPECT_EQ(m.stats().applications, 1);
  EXPECT_EQ(m.stats().block_solves, 4 * 16);
  EXPECT_EQ(m.stats().mr_iterations, 4 * 16 * 5);
  EXPECT_GT(m.stats().flops, 0);
  // Boundary bytes: every block solve packs all 8 faces; a packed
  // half-spinor is 12 reals = 48 B.
  std::int64_t face_bytes = 0;
  for (int mu = 0; mu < kNumDims; ++mu)
    face_bytes += 2 * f.part.face_size(mu) * 12 * 4;
  EXPECT_EQ(m.stats().boundary_bytes, 4 * 16 * face_bytes);
}

TEST(Schwarz, PreconditionsFGMRESEffectively) {
  // The full paper pipeline at small scale: FGMRES (float) with the
  // multiplicative Schwarz preconditioner converges in far fewer outer
  // iterations than unpreconditioned FGMRES.
  Fixture f({8, 8, 8, 8}, {4, 4, 4, 4}, 0.7, 0.1f, 1.2f, 101);
  WilsonCloverLinOp<float> a(f.op);
  FermionField<float> b(f.geom.volume()), x0(f.geom.volume()),
      x1(f.geom.volume());
  gaussian(b, 102);

  FGMRESDRParams pg;
  pg.basis_size = 16;
  pg.tolerance = 1e-5;  // float outer solve
  pg.max_iterations = 800;
  const auto s0 = fgmres_dr_solve<float>(a, nullptr, b, x0, pg);

  SchwarzParams sp;
  sp.schwarz_iterations = 8;
  sp.block_mr_iterations = 5;
  SchwarzPreconditioner<float> m(f.part, f.op, sp);
  const auto s1 = fgmres_dr_solve<float>(a, &m, b, x1, pg);

  EXPECT_TRUE(s1.converged);
  ASSERT_TRUE(s0.converged);
  EXPECT_LT(s1.iterations * 3, s0.iterations)
      << "unprec=" << s0.iterations << " schwarz=" << s1.iterations;
}

TEST(Schwarz, HalfPrecisionSpinorsStillPrecondition) {
  // Paper Sec. VI (future work): storing the preconditioner's spinors in
  // half precision as well. The preconditioner output must stay close to
  // the single-precision-spinor result (it is only ever an approximation
  // consumed by a flexible outer solver).
  Fixture f({8, 8, 8, 8}, {4, 4, 4, 4}, 0.7, 0.2f, 1.0f, 111);
  SchwarzParams p;
  p.schwarz_iterations = 4;
  p.block_mr_iterations = 5;
  SchwarzPreconditioner<Half> m_ref(f.part, f.op, p);
  p.half_precision_spinors = true;
  SchwarzPreconditioner<Half> m_h16(f.part, f.op, p);

  FermionField<float> rhs(f.geom.volume()), u_ref(f.geom.volume()),
      u_h(f.geom.volume());
  gaussian(rhs, 112);
  m_ref.apply(rhs, u_ref);
  m_h16.apply(rhs, u_h);
  double diff2 = 0, n2 = 0;
  for (std::int64_t i = 0; i < u_ref.size(); ++i) {
    diff2 += norm2(u_ref[i] - u_h[i]);
    n2 += norm2(u_ref[i]);
  }
  const double rel = std::sqrt(diff2 / n2);
  EXPECT_LT(rel, 5e-2);
  EXPECT_GT(rel, 1e-7);  // genuinely different storage path
  // And it still reduces the residual substantially.
  EXPECT_LT(true_residual_norm(f.op, rhs, u_h), 0.5 * norm(rhs));
}

}  // namespace
}  // namespace lqcd
