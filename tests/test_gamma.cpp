// Gamma-matrix algebra: Clifford relations, gamma_5, sigma_{mu,nu}, and the
// Wilson projection/reconstruction trick against dense application.
#include <gtest/gtest.h>

#include <array>

#include "lqcd/base/rng.h"
#include "lqcd/su3/gamma.h"

namespace lqcd {
namespace {

using Dense = std::array<std::array<Complex<double>, 4>, 4>;

Complex<double> phase_value(Phase p) {
  switch (p) {
    case Phase::kPlusOne:
      return {1, 0};
    case Phase::kMinusOne:
      return {-1, 0};
    case Phase::kPlusI:
      return {0, 1};
    default:
      return {0, -1};
  }
}

Dense to_dense(const PermPhaseMatrix& m) {
  Dense d{};
  for (int r = 0; r < 4; ++r)
    d[static_cast<size_t>(r)][static_cast<size_t>(m.col[static_cast<size_t>(r)])] =
        phase_value(m.phase[static_cast<size_t>(r)]);
  return d;
}

Dense mul(const Dense& a, const Dense& b) {
  Dense c{};
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j)
      for (int k = 0; k < 4; ++k)
        c[static_cast<size_t>(i)][static_cast<size_t>(j)] +=
            a[static_cast<size_t>(i)][static_cast<size_t>(k)] *
            b[static_cast<size_t>(k)][static_cast<size_t>(j)];
  return c;
}

void expect_equal(const Dense& a, const Dense& b, double tol = 1e-15) {
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j)
      EXPECT_LT(std::abs(a[static_cast<size_t>(i)][static_cast<size_t>(j)] -
                         b[static_cast<size_t>(i)][static_cast<size_t>(j)]),
                tol)
          << "entry (" << i << "," << j << ")";
}

Dense identity(double scale = 1.0) {
  Dense d{};
  for (int i = 0; i < 4; ++i)
    d[static_cast<size_t>(i)][static_cast<size_t>(i)] = {scale, 0};
  return d;
}

TEST(Gamma, CliffordAlgebra) {
  // {gamma_mu, gamma_nu} = 2 delta_{mu,nu}.
  for (int mu = 0; mu < 4; ++mu)
    for (int nu = 0; nu < 4; ++nu) {
      const Dense gmu = to_dense(kGamma[static_cast<size_t>(mu)]);
      const Dense gnu = to_dense(kGamma[static_cast<size_t>(nu)]);
      Dense anti = mul(gmu, gnu);
      const Dense ba = mul(gnu, gmu);
      for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
          anti[static_cast<size_t>(i)][static_cast<size_t>(j)] +=
              ba[static_cast<size_t>(i)][static_cast<size_t>(j)];
      expect_equal(anti, identity(mu == nu ? 2.0 : 0.0));
    }
}

TEST(Gamma, GammasAreHermitian) {
  for (int mu = 0; mu < 4; ++mu) {
    const Dense g = to_dense(kGamma[static_cast<size_t>(mu)]);
    for (int i = 0; i < 4; ++i)
      for (int j = 0; j < 4; ++j)
        EXPECT_LT(
            std::abs(g[static_cast<size_t>(i)][static_cast<size_t>(j)] -
                     std::conj(
                         g[static_cast<size_t>(j)][static_cast<size_t>(i)])),
            1e-15);
  }
}

TEST(Gamma, Gamma5IsChiralDiagonal) {
  const Dense g5 = to_dense(kGamma5);
  Dense expect{};
  expect[0][0] = {1, 0};
  expect[1][1] = {1, 0};
  expect[2][2] = {-1, 0};
  expect[3][3] = {-1, 0};
  expect_equal(g5, expect);
}

TEST(Gamma, Gamma5AnticommutesWithGammaMu) {
  const Dense g5 = to_dense(kGamma5);
  for (int mu = 0; mu < 4; ++mu) {
    const Dense g = to_dense(kGamma[static_cast<size_t>(mu)]);
    Dense anti = mul(g5, g);
    const Dense ba = mul(g, g5);
    for (int i = 0; i < 4; ++i)
      for (int j = 0; j < 4; ++j)
        anti[static_cast<size_t>(i)][static_cast<size_t>(j)] +=
            ba[static_cast<size_t>(i)][static_cast<size_t>(j)];
    expect_equal(anti, identity(0.0));
  }
}

TEST(Gamma, SigmaMuNuIsHermitianAndChiralityBlockDiagonal) {
  for (int mu = 0; mu < 4; ++mu)
    for (int nu = 0; nu < 4; ++nu) {
      if (mu == nu) continue;
      const PermPhaseMatrix sig = sigma_munu(mu, nu);
      const Dense d = to_dense(sig);
      // Hermitian.
      for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
          EXPECT_LT(
              std::abs(d[static_cast<size_t>(i)][static_cast<size_t>(j)] -
                       std::conj(d[static_cast<size_t>(j)]
                                  [static_cast<size_t>(i)])),
              1e-15);
      // Block diagonal in chirality: no mixing between {0,1} and {2,3}.
      for (int i = 0; i < 2; ++i)
        for (int j = 2; j < 4; ++j) {
          EXPECT_EQ(std::abs(d[static_cast<size_t>(i)][static_cast<size_t>(j)]),
                    0.0);
          EXPECT_EQ(std::abs(d[static_cast<size_t>(j)][static_cast<size_t>(i)]),
                    0.0);
        }
    }
}

TEST(Gamma, SigmaAntisymmetry) {
  for (int mu = 0; mu < 4; ++mu)
    for (int nu = 0; nu < 4; ++nu) {
      if (mu == nu) continue;
      const Dense a = to_dense(sigma_munu(mu, nu));
      const Dense b = to_dense(sigma_munu(nu, mu));
      for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
          EXPECT_LT(std::abs(a[static_cast<size_t>(i)][static_cast<size_t>(j)] +
                             b[static_cast<size_t>(i)][static_cast<size_t>(j)]),
                    1e-15);
    }
}

Spinor<double> random_spinor(Rng& rng) {
  Spinor<double> s;
  for (int sp = 0; sp < 4; ++sp)
    for (int c = 0; c < 3; ++c)
      s.s[sp].c[c] = Complex<double>(rng.gaussian(), rng.gaussian());
  return s;
}

// Dense reference of (1 + sign*gamma_mu) psi.
Spinor<double> dense_projector(const Spinor<double>& psi, int mu, int sign) {
  const Dense g = to_dense(kGamma[static_cast<size_t>(mu)]);
  Spinor<double> out;
  out.zero();
  for (int r = 0; r < 4; ++r)
    for (int k = 0; k < 4; ++k) {
      Complex<double> coeff =
          g[static_cast<size_t>(r)][static_cast<size_t>(k)] *
          Complex<double>(sign, 0);
      if (r == k) coeff += Complex<double>(1, 0);
      for (int c = 0; c < 3; ++c) out.s[r].c[c] += coeff * psi.s[k].c[c];
    }
  return out;
}

TEST(Gamma, ProjectReconstructMatchesDenseProjector) {
  Rng rng(11);
  for (int mu = 0; mu < 4; ++mu)
    for (int sign : {-1, +1}) {
      const Spinor<double> psi = random_spinor(rng);
      const HalfSpinor<double> h = project(psi, mu, sign);
      Spinor<double> rec;
      rec.zero();
      reconstruct_add(rec, h, mu, sign);
      const Spinor<double> ref = dense_projector(psi, mu, sign);
      for (int sp = 0; sp < 4; ++sp)
        for (int c = 0; c < 3; ++c)
          EXPECT_LT(std::abs(rec.s[sp].c[c] - ref.s[sp].c[c]), 1e-14)
              << "mu=" << mu << " sign=" << sign << " spin=" << sp;
    }
}

TEST(Gamma, ProjectorIsRankTwo) {
  // (1 + sign*gamma_mu)^2 = 2 (1 + sign*gamma_mu).
  Rng rng(12);
  for (int mu = 0; mu < 4; ++mu)
    for (int sign : {-1, +1}) {
      const Spinor<double> psi = random_spinor(rng);
      const Spinor<double> once = dense_projector(psi, mu, sign);
      const Spinor<double> twice = dense_projector(once, mu, sign);
      for (int sp = 0; sp < 4; ++sp)
        for (int c = 0; c < 3; ++c)
          EXPECT_LT(std::abs(twice.s[sp].c[c] - 2.0 * once.s[sp].c[c]),
                    1e-13);
    }
}

TEST(Gamma, PhaseMultiplicationTable) {
  const Complex<double> one{1, 0};
  for (Phase a : {Phase::kPlusOne, Phase::kMinusOne, Phase::kPlusI,
                  Phase::kMinusI})
    for (Phase b : {Phase::kPlusOne, Phase::kMinusOne, Phase::kPlusI,
                    Phase::kMinusI}) {
      const auto lhs = phase_value(a * b);
      const auto rhs = phase_value(a) * phase_value(b);
      EXPECT_LT(std::abs(lhs - rhs), 1e-15);
      // mul_phase agrees with explicit multiplication.
      EXPECT_LT(std::abs(mul_phase(a, phase_value(b)) - rhs), 1e-15);
      (void)one;
    }
}

}  // namespace
}  // namespace lqcd
