// End-to-end ABFT: in-solve checksum re-verification, localized domain
// repair, the escalation ladder, and the Young/Daly interval tuner.
//
// Contract under test (DESIGN.md Sec. 11):
//   * every injected packed-data upset is detected by a checksum sweep
//     within one verify interval (the closing sweep bounds the tail) and
//     repaired bit-identically from the pack source — never a silent
//     wrong answer;
//   * a corrupt pack source escalates to a master rebuild + iterate
//     rollback, and a corrupt master to a structured failure
//     (Breakdown::kDataCorruption), never a wrong answer;
//   * the fault-free path is bit-identical with ABFT on vs off;
//   * sweeps, repairs, and stats are thread-count invariant (EXPECT_EQ).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "lqcd/cluster/cluster_sim.h"
#include "lqcd/core/dd_solver.h"
#include "lqcd/resilience/fault_injector.h"
#include "lqcd/resilience/resilient_solve.h"
#include "lqcd/schwarz/schwarz.h"

#if defined(LQCD_HAVE_OPENMP)
#include <omp.h>
#endif

namespace lqcd {
namespace {

void set_threads(int n) {
#if defined(LQCD_HAVE_OPENMP)
  omp_set_num_threads(n);
#else
  (void)n;
#endif
}

template <class T>
double true_residual(const LinearOperator<T>& op, const FermionField<T>& b,
                     const FermionField<T>& x) {
  FermionField<T> r(op.vector_size());
  op.apply(x, r);
  sub(b, r, r);
  return norm(r) / norm(b);
}

// ---------------------------------------------------------------------------
// Young/Daly interval optimizer
// ---------------------------------------------------------------------------

TEST(Daly, GuardsDegenerateInputs) {
  EXPECT_EQ(daly_checkpoint_interval(0.0, 100.0), 0.0);
  EXPECT_EQ(daly_checkpoint_interval(-1.0, 100.0), 0.0);
  EXPECT_EQ(daly_checkpoint_interval(10.0, 0.0), 0.0);
  // Cost at/beyond 2*MTBF: checkpoint once per MTBF, the sane floor.
  EXPECT_EQ(daly_checkpoint_interval(200.0, 100.0), 100.0);
  EXPECT_EQ(daly_checkpoint_interval(500.0, 100.0), 100.0);
}

TEST(Daly, NearYoungOptimumForSmallCost) {
  // C << M: the first-order Young interval sqrt(2 C M) dominates.
  const double c = 60.0, m = 28125.0;
  const double young = std::sqrt(2.0 * c * m);
  const double t = daly_checkpoint_interval(c, m);
  EXPECT_GT(t, young - c - 1.0);
  EXPECT_LT(t, 1.1 * young);
}

TEST(Daly, MinimizesExpectedOverheadRate) {
  // h(T) = C/T + T/(2M): the returned interval must beat both a much
  // shorter and a much longer one.
  const double c = 30.0, m = 7000.0;
  const auto rate = [&](double T) { return c / T + T / (2.0 * m); };
  const double t = daly_checkpoint_interval(c, m);
  ASSERT_GT(t, 0.0);
  EXPECT_LT(rate(t), rate(0.5 * t));
  EXPECT_LT(rate(t), rate(2.0 * t));
}

TEST(Daly, ResilienceConfigAutoTuneMatchesSystemMtbf) {
  const double tuned =
      ResilienceConfig::auto_tune_checkpoint_interval(2000.0, 1024, 60.0);
  EXPECT_EQ(tuned, daly_checkpoint_interval(60.0, 2000.0 * 3600.0 / 1024.0));
  EXPECT_EQ(ResilienceConfig::auto_tune_checkpoint_interval(0.0, 64, 60.0),
            0.0);
  EXPECT_EQ(ResilienceConfig::auto_tune_checkpoint_interval(2000.0, 0, 60.0),
            0.0);
}

// ---------------------------------------------------------------------------
// AbftGuard repair ladder (against a controllable fake store)
// ---------------------------------------------------------------------------

class FakeStore final : public PackedDomainStore {
 public:
  explicit FakeStore(int nd) : nd_(nd) {}
  int num_domains() const override { return nd_; }
  const char* store_name() const override { return "fake"; }
  void find_corrupt_domains(bool, bool,
                            std::vector<int>& bad) const override {
    for (int d : corrupt) bad.push_back(d);
  }
  void repack_domain(int d) override {
    repacked.push_back(d);
    corrupt.erase(std::remove(corrupt.begin(), corrupt.end(), d),
                  corrupt.end());
  }
  bool source_intact() const override { return source_ok; }

  std::vector<int> corrupt;
  std::vector<int> repacked;
  bool source_ok = true;

 private:
  int nd_;
};

AbftConfig enabled_config(int interval) {
  AbftConfig c;
  c.enabled = true;
  c.verify_interval = interval;
  return c;
}

TEST(AbftGuard, CleanSweepReportsClean) {
  FakeStore store(8);
  AbftGuard guard(enabled_config(4));
  guard.add_store(&store);
  EXPECT_EQ(guard.sweep(), AbftStatus::kClean);
  EXPECT_EQ(guard.stats().verifications, 1);
  EXPECT_EQ(guard.stats().detections, 0);
  EXPECT_EQ(guard.last_detection_application(), -1);
}

TEST(AbftGuard, Rung1RepacksExactlyTheBadDomains) {
  FakeStore store(8);
  store.corrupt = {2, 5};
  AbftGuard guard(enabled_config(4));
  guard.add_store(&store);
  EXPECT_EQ(guard.sweep(), AbftStatus::kRepaired);
  EXPECT_EQ(guard.stats().detections, 2);
  EXPECT_EQ(guard.stats().repacks, 2);
  EXPECT_EQ(guard.stats().escalations, 0);
  EXPECT_EQ(store.repacked, (std::vector<int>{2, 5}));
  EXPECT_TRUE(store.corrupt.empty());
  EXPECT_FALSE(guard.take_rollback_request());
  // The repaired store verifies clean on the next sweep.
  EXPECT_EQ(guard.sweep(), AbftStatus::kClean);
}

TEST(AbftGuard, Rung2EscalatesToSourceRepairAndRollback) {
  FakeStore store(8);
  store.corrupt = {3};
  store.source_ok = false;
  AbftGuard guard(enabled_config(4));
  guard.add_store(&store);
  guard.set_source_repair([&store] {
    store.corrupt.clear();  // the rebuild re-packs everything
    store.source_ok = true;
    return true;
  });
  EXPECT_EQ(guard.sweep(), AbftStatus::kSourceRepaired);
  EXPECT_EQ(guard.stats().escalations, 1);
  EXPECT_EQ(guard.stats().repacks, 0);  // no per-domain rung-1 repairs
  EXPECT_TRUE(guard.take_rollback_request());
  EXPECT_FALSE(guard.take_rollback_request());  // consumed
  guard.note_rollback_serviced();
  EXPECT_EQ(guard.stats().rollbacks, 1);
}

TEST(AbftGuard, Rung4CorruptMasterThrowsStructuredError) {
  FakeStore store(8);
  store.corrupt = {1};
  store.source_ok = false;
  AbftGuard no_repair(enabled_config(4));
  no_repair.add_store(&store);
  EXPECT_THROW(no_repair.sweep(), AbftError);
  EXPECT_EQ(no_repair.last_status(), AbftStatus::kFailed);

  AbftGuard failing_repair(enabled_config(4));
  failing_repair.add_store(&store);
  failing_repair.set_source_repair([] { return false; });  // master corrupt
  EXPECT_THROW(failing_repair.sweep(), AbftError);
  EXPECT_EQ(failing_repair.last_status(), AbftStatus::kFailed);
}

TEST(AbftGuard, NoteApplicationSweepsOnTheInterval) {
  FakeStore store(4);
  AbftGuard guard(enabled_config(3));
  guard.add_store(&store);
  for (int i = 0; i < 7; ++i) guard.note_application();
  EXPECT_EQ(guard.applications(), 7);
  EXPECT_EQ(guard.stats().verifications, 2);  // after apps 3 and 6
}

TEST(AbftGuard, BeginSolveClearsStaleRollbackRequest) {
  FakeStore store(4);
  store.corrupt = {0};
  store.source_ok = false;
  AbftGuard guard(enabled_config(4));
  guard.add_store(&store);
  guard.set_source_repair([&store] {
    store.corrupt.clear();
    store.source_ok = true;
    return true;
  });
  guard.sweep();
  guard.begin_solve();  // the previous solve ended before the rollback
  EXPECT_FALSE(guard.take_rollback_request());
}

TEST(AbftStats, MergeIsCommutativeAndComplete) {
  AbftStats a;
  a.verifications = 3;
  a.detections = 2;
  a.repacks = 2;
  AbftStats b;
  b.verifications = 1;
  b.rollbacks = 1;
  b.escalations = 1;
  EXPECT_TRUE(a + b == b + a);
  const AbftStats s = a + b;
  EXPECT_EQ(s.verifications, 4);
  EXPECT_EQ(s.detections, 2);
  EXPECT_EQ(s.repacks, 2);
  EXPECT_EQ(s.rollbacks, 1);
  EXPECT_EQ(s.escalations, 1);
}

// ---------------------------------------------------------------------------
// SchwarzPreconditioner as a PackedDomainStore
// ---------------------------------------------------------------------------

struct Fixture {
  Geometry geom;
  Checkerboard cb;
  GaugeField<float> gauge;
  WilsonCloverOperator<float> op;
  DomainPartition part;

  Fixture(const Coord& dims, const Coord& block, double disorder, float mass,
          float csw, std::uint64_t seed)
      : geom(dims),
        cb(geom),
        gauge([&] {
          auto gd = random_gauge_field<double>(geom, disorder, seed);
          gd.make_time_antiperiodic();
          return convert<float>(gd);
        }()),
        op(geom, cb, gauge, mass, csw),
        part(geom, block) {
    op.prepare_schur();
  }
};

void expect_float_fields_identical(const FermionField<float>& a,
                                   const FermionField<float>& b) {
  ASSERT_EQ(a.size(), b.size());
  std::int64_t mismatches = 0;
  for (std::int64_t i = 0; i < a.size(); ++i)
    for (int sp = 0; sp < kNumSpins; ++sp)
      for (int c = 0; c < kNumColors; ++c) {
        if (a[i].s[sp].c[c].real() != b[i].s[sp].c[c].real()) ++mismatches;
        if (a[i].s[sp].c[c].imag() != b[i].s[sp].c[c].imag()) ++mismatches;
      }
  EXPECT_EQ(mismatches, 0);
}

TEST(SchwarzAbft, TargetedCorruptionLocalizesToTheDomain) {
  Fixture f({8, 8, 8, 8}, {4, 4, 4, 4}, 0.7, 0.2f, 1.0f, 41);
  SchwarzPreconditioner<float> m(f.part, f.op, SchwarzParams{});
  ASSERT_EQ(m.verify_checksums(), 0);

  FaultInjectorConfig fic;
  fic.fault = FaultClass::kSpinorBitFlip;
  fic.seed = 7;
  FaultInjector inj(fic);
  const int target = 5;
  ASSERT_EQ(inj.stats().events, 0);
  ASSERT_TRUE(m.corrupt_packed(inj, target, PackedComponent::kCloverDiag));
  EXPECT_EQ(inj.stats().events_at(FaultSite::kPackedData), 1);

  std::vector<int> bad;
  m.find_corrupt_domains(true, true, bad);
  EXPECT_EQ(bad, std::vector<int>{target});
  EXPECT_EQ(m.verify_checksums(), 1);
  // Scope flags: a clover upset is invisible to a gauge-only sweep.
  bad.clear();
  m.find_corrupt_domains(true, false, bad);
  EXPECT_TRUE(bad.empty());
  bad.clear();
  m.find_corrupt_domains(false, true, bad);
  EXPECT_EQ(bad, std::vector<int>{target});
}

TEST(SchwarzAbft, RepackRestoresTheDomainBitIdentically) {
  Fixture f({8, 8, 8, 8}, {4, 4, 4, 4}, 0.7, 0.2f, 1.0f, 43);
  SchwarzParams sp;
  sp.schwarz_iterations = 2;
  SchwarzPreconditioner<float> m(f.part, f.op, sp);

  const int nd = m.num_domains();
  std::vector<std::uint32_t> before(static_cast<std::size_t>(nd));
  for (int d = 0; d < nd; ++d)
    before[static_cast<std::size_t>(d)] = m.domain_checksum(d);
  FermionField<float> rhs(f.geom.volume()), u_ref(f.geom.volume());
  gaussian(rhs, 44);
  m.apply(rhs, u_ref);

  FaultInjectorConfig fic;
  fic.fault = FaultClass::kSpinorBitFlip;
  fic.seed = 11;
  fic.max_events = 3;
  FaultInjector inj(fic);
  ASSERT_TRUE(m.corrupt_packed(inj, 0, PackedComponent::kGaugeLinks));
  ASSERT_TRUE(m.corrupt_packed(inj, 2, PackedComponent::kCloverInv));
  EXPECT_EQ(m.verify_checksums(), 2);

  ASSERT_TRUE(m.source_intact());
  std::vector<int> bad;
  m.find_corrupt_domains(true, true, bad);
  for (int d : bad) m.repack_domain(d);

  // Bit-identical repair: pack_domain is the same code path as
  // construction, so every checksum must return to its pack-time value
  // and the preconditioner must produce the exact pre-corruption output.
  EXPECT_EQ(m.verify_checksums(), 0);
  for (int d = 0; d < nd; ++d)
    EXPECT_EQ(m.domain_checksum(d), before[static_cast<std::size_t>(d)])
        << "domain " << d;
  FermionField<float> u_post(f.geom.volume());
  m.apply(rhs, u_post);
  expect_float_fields_identical(u_ref, u_post);
}

TEST(SchwarzAbft, CorruptSourceEscalatesThroughTheGuard) {
  Fixture f({8, 8, 8, 8}, {4, 4, 4, 4}, 0.7, 0.2f, 1.0f, 47);
  SchwarzPreconditioner<float> m(f.part, f.op, SchwarzParams{});
  const GaugeField<float> pristine = f.gauge;

  // Corrupt a packed domain AND its pack source: rung 1 is not safe
  // (a re-pack would stamp the corruption as truth), so the guard must
  // escalate to the source-repair callback and request a rollback.
  FaultInjectorConfig fic;
  fic.fault = FaultClass::kSpinorBitFlip;
  fic.seed = 13;
  fic.max_events = 2;
  FaultInjector inj(fic);
  ASSERT_TRUE(m.corrupt_packed(inj, 1, PackedComponent::kGaugeLinks));
  ASSERT_TRUE(inj.maybe_corrupt(f.gauge));
  ASSERT_FALSE(m.source_intact());

  AbftGuard guard(enabled_config(4));
  guard.add_store(&m);
  bool source_repaired = false;
  guard.set_source_repair([&] {
    f.gauge = pristine;  // "rebuild from the verified double master"
    f.op.rebuild_clover();
    m.repack_all();
    source_repaired = true;
    return true;
  });
  EXPECT_EQ(guard.sweep(), AbftStatus::kSourceRepaired);
  EXPECT_TRUE(source_repaired);
  EXPECT_EQ(guard.stats().escalations, 1);
  EXPECT_TRUE(guard.take_rollback_request());
  EXPECT_TRUE(m.source_intact());
  EXPECT_EQ(m.verify_checksums(), 0);
}

TEST(SchwarzAbft, VerificationIsThreadCountInvariant) {
  Fixture f({8, 8, 8, 8}, {4, 4, 4, 4}, 0.7, 0.2f, 1.0f, 53);
  SchwarzPreconditioner<float> m(f.part, f.op, SchwarzParams{});
  FaultInjectorConfig fic;
  fic.fault = FaultClass::kSpinorBitFlip;
  fic.seed = 17;
  fic.max_events = 2;
  FaultInjector inj(fic);
  ASSERT_TRUE(m.corrupt_packed(inj, 3, PackedComponent::kCloverDiag));
  ASSERT_TRUE(m.corrupt_packed(inj, 7, PackedComponent::kGaugeLinks));

  set_threads(1);
  std::vector<int> bad1;
  m.find_corrupt_domains(true, true, bad1);
  set_threads(4);
  std::vector<int> bad4;
  m.find_corrupt_domains(true, true, bad4);
  set_threads(1);
  EXPECT_EQ(bad1, bad4);
  EXPECT_EQ(bad1, (std::vector<int>{3, 7}));
}

// ---------------------------------------------------------------------------
// DDSolver end-to-end
// ---------------------------------------------------------------------------

struct Problem {
  Geometry geom;
  Checkerboard cb;
  GaugeField<double> gauge;
  FermionField<double> b;

  Problem(const Coord& dims, double disorder, std::uint64_t seed)
      : geom(dims),
        cb(geom),
        gauge([&] {
          auto g = random_gauge_field<double>(geom, disorder, seed);
          g.make_time_antiperiodic();
          return g;
        }()),
        b(geom.volume()) {
    gaussian(b, seed + 1);
  }
};

/// Weak preconditioner spanning several outer cycles, so the periodic
/// sweeps actually interleave with the solve.
DDSolverConfig abft_config() {
  DDSolverConfig cfg;
  cfg.block = {4, 4, 4, 4};
  cfg.basis_size = 6;
  cfg.deflation_size = 2;
  cfg.schwarz_iterations = 2;
  cfg.block_mr_iterations = 2;
  cfg.tolerance = 1e-8;
  cfg.max_iterations = 2000;
  cfg.resilience.enabled = true;
  cfg.resilience.abft.enabled = true;
  cfg.resilience.abft.verify_interval = 4;
  return cfg;
}

TEST(DDSolverAbft, FaultFreePathIsBitIdenticalToAbftOff) {
  Problem prob({8, 8, 8, 8}, 0.7, 301);
  DDSolverConfig off = abft_config();
  off.resilience.abft.enabled = false;
  DDSolverConfig on = abft_config();

  DDSolver s_off(prob.geom, prob.gauge, 0.1, 1.0, off);
  DDSolver s_on(prob.geom, prob.gauge, 0.1, 1.0, on);
  FermionField<double> x1(prob.geom.volume()), x2(prob.geom.volume());
  const auto r1 = s_off.solve(prob.b, x1);
  const auto r2 = s_on.solve(prob.b, x2);

  EXPECT_TRUE(r1.converged);
  EXPECT_TRUE(r2.converged);
  EXPECT_EQ(r1.iterations, r2.iterations);
  ASSERT_EQ(r1.residual_history.size(), r2.residual_history.size());
  for (std::size_t i = 0; i < r1.residual_history.size(); ++i)
    EXPECT_EQ(r1.residual_history[i], r2.residual_history[i]) << "iter " << i;
  sub(x1, x2, x2);
  EXPECT_EQ(norm(x2), 0.0);
  // The sweeps ran (read-only) and found nothing.
  ASSERT_NE(s_on.abft_stats(), nullptr);
  EXPECT_GT(s_on.abft_stats()->verifications, 0);
  EXPECT_EQ(s_on.abft_stats()->detections, 0);
  EXPECT_EQ(s_on.abft_guard()->last_status(), AbftStatus::kClean);
  EXPECT_EQ(s_off.abft_stats(), nullptr);
}

TEST(DDSolverAbft, HundredSeededStreamsConvergeWithZeroSilentSdc) {
  // 100 independent fault streams, each flipping packed bits between
  // Schwarz sweeps at p = 1e-3 per opportunity. Acceptance: every stream
  // converges to the true tolerance, every injected upset is detected
  // and repaired (detections bound events per-domain per-interval), and
  // the closing sweep leaves no corruption behind.
  Problem prob({8, 8, 8, 8}, 0.7, 401);
  std::int64_t total_events = 0, total_detections = 0;
  for (int stream = 0; stream < 100; ++stream) {
    FaultInjectorConfig fic;
    fic.fault = FaultClass::kSpinorBitFlip;
    fic.seed = 11000 + static_cast<std::uint64_t>(stream);
    fic.probability = 1e-3;
    fic.max_events = -1;
    FaultInjector inj(fic);
    DDSolverConfig cfg = abft_config();
    cfg.resilience.packed_injector = &inj;
    DDSolver solver(prob.geom, prob.gauge, 0.1, 1.0, cfg);
    FermionField<double> x(prob.geom.volume());
    const auto st = solver.solve(prob.b, x);

    ASSERT_TRUE(st.converged) << "stream " << stream;
    EXPECT_EQ(st.breakdown, Breakdown::kNone) << "stream " << stream;
    EXPECT_LT(true_residual(WilsonCloverLinOp<double>(solver.op()), prob.b, x),
              100.0 * cfg.tolerance)
        << "stream " << stream;

    const std::int64_t events =
        inj.stats().events_at(FaultSite::kPackedData);
    const AbftStats& as = *solver.abft_stats();
    if (events > 0) {
      EXPECT_GE(as.detections, 1) << "stream " << stream;
      EXPECT_LE(as.detections, events) << "stream " << stream;
    } else {
      EXPECT_EQ(as.detections, 0) << "stream " << stream;
    }
    // The source stayed intact, so every detection was a rung-1 repack;
    // nothing escalated and nothing survived the closing sweep.
    EXPECT_EQ(as.repacks, as.detections) << "stream " << stream;
    EXPECT_EQ(as.escalations, 0) << "stream " << stream;
    EXPECT_NE(solver.abft_guard()->last_status(), AbftStatus::kFailed);
    total_events += events;
    total_detections += as.detections;
  }
  // The experiment exercised the detection path (seeded: deterministic).
  EXPECT_GE(total_events, 1);
  EXPECT_GE(total_detections, 1);
}

TEST(DDSolverAbft, StatsAreThreadCountInvariant) {
  Problem prob({8, 8, 8, 8}, 0.7, 501);
  const auto run = [&](int threads) {
    set_threads(threads);
    FaultInjectorConfig fic;
    fic.fault = FaultClass::kSpinorBitFlip;
    fic.seed = 77;
    fic.probability = 0.02;
    fic.max_events = -1;
    FaultInjector inj(fic);
    DDSolverConfig cfg = abft_config();
    cfg.resilience.packed_injector = &inj;
    DDSolver solver(prob.geom, prob.gauge, 0.1, 1.0, cfg);
    FermionField<double> x(prob.geom.volume());
    const auto st = solver.solve(prob.b, x);
    struct Out {
      SolverStats st;
      AbftStats abft;
      FaultInjectorStats inj;
      FermionField<double> x;
    };
    return Out{st, *solver.abft_stats(), inj.stats(), std::move(x)};
  };
  const auto r1 = run(1);
  const auto r4 = run(4);
  set_threads(1);

  EXPECT_EQ(r1.st.iterations, r4.st.iterations);
  EXPECT_TRUE(r1.abft == r4.abft);
  EXPECT_EQ(r1.inj.opportunities, r4.inj.opportunities);
  EXPECT_EQ(r1.inj.events, r4.inj.events);
  for (int s = 0; s < kNumFaultSites; ++s) {
    EXPECT_EQ(r1.inj.site_opportunities[s], r4.inj.site_opportunities[s])
        << "site " << s;
    EXPECT_EQ(r1.inj.site_events[s], r4.inj.site_events[s]) << "site " << s;
  }
  // The PR 5 invariance contract covers the injection pattern, the
  // detection/repair counters, and the iteration trajectory; the OUTER
  // double-precision reductions reorder across thread counts, so the
  // solutions agree only to rounding.
  FermionField<double> d(r1.x.size());
  sub(r1.x, r4.x, d);
  EXPECT_LT(norm(d), 1e-8);
}

TEST(DDSolverAbft, BatchWithDeflationScopeStaysCleanAndConverges) {
  Problem prob({8, 8, 8, 8}, 0.7, 601);
  DDSolverConfig cfg = abft_config();
  cfg.resilience.abft.check_deflation = true;
  DDSolver solver(prob.geom, prob.gauge, 0.1, 1.0, cfg);
  std::vector<FermionField<double>> b, x;
  for (int i = 0; i < 3; ++i) {
    b.emplace_back(prob.geom.volume());
    gaussian(b.back(), 700 + static_cast<std::uint64_t>(i));
    x.emplace_back(prob.geom.volume());
  }
  const auto stats = solver.solve_batch(b, x);
  ASSERT_EQ(stats.size(), 3u);
  for (std::size_t i = 0; i < stats.size(); ++i) {
    EXPECT_TRUE(stats[i].converged) << "rhs " << i;
    EXPECT_EQ(stats[i].breakdown, Breakdown::kNone) << "rhs " << i;
  }
  // The deflation verification ran and the fault-free subspace passed.
  ASSERT_NE(solver.abft_stats(), nullptr);
  EXPECT_GT(solver.abft_stats()->verifications, 0);
  EXPECT_EQ(solver.abft_stats()->detections, 0);
}

TEST(DDSolverAbft, VerifyIntervalAutoTunesFromFaultProbability) {
  Problem prob({8, 8, 8, 8}, 0.7, 801);
  DDSolverConfig cfg = abft_config();
  cfg.resilience.abft.verify_interval = 0;  // auto
  cfg.resilience.abft.fault_probability_per_application = 1e-3;
  DDSolver solver(prob.geom, prob.gauge, 0.1, 1.0, cfg);
  ASSERT_NE(solver.abft_guard(), nullptr);
  const int expected = std::max<int>(
      1, static_cast<int>(std::llround(
             daly_checkpoint_interval(0.05, 1000.0))));
  EXPECT_EQ(solver.abft_guard()->config().verify_interval, expected);
}

// ---------------------------------------------------------------------------
// Cluster model: checkpoint auto-tuning and verify-sweep accounting
// ---------------------------------------------------------------------------

TEST(ClusterAbft, DefaultFaultSpecKeepsHistoricalNumbers) {
  using namespace lqcd::cluster;
  DDSolveSpec spec;
  spec.lattice = {16, 16, 16, 16};
  spec.block = {4, 4, 4, 4};
  spec.outer_iterations = 100;
  const auto part = NodePartition::uniform(spec.lattice, {2, 2, 2, 2});
  ClusterSimParams p;
  p.faults.node_mtbf_hours = 500.0;
  p.faults.recovery_seconds = 100.0;
  p.faults.checkpoint_interval_seconds = 50.0;
  const auto r = ClusterSim(p).simulate_dd(spec, part);
  // checkpoint_cost_seconds = 0 (default): writes are free, the overhead
  // is exactly the historical failures * (recovery + rework) formula.
  const double healthy = r.total_seconds - r.fault_overhead_seconds;
  const double mtbf_sys = p.faults.node_mtbf_hours * 3600.0 / 16.0;
  const double rework = std::min(0.5 * 50.0, 0.5 * healthy);
  const double expected = healthy / mtbf_sys * (100.0 + rework);
  EXPECT_NEAR(r.fault_overhead_seconds, expected, 1e-9 * expected);
  EXPECT_EQ(r.effective_checkpoint_interval_seconds, 50.0);
  EXPECT_EQ(r.abft_verify_seconds, 0.0);
}

TEST(ClusterAbft, CheckpointWritesAreCharged) {
  using namespace lqcd::cluster;
  DDSolveSpec spec;
  spec.lattice = {16, 16, 16, 16};
  spec.block = {4, 4, 4, 4};
  spec.outer_iterations = 100;
  const auto part = NodePartition::uniform(spec.lattice, {2, 2, 2, 2});
  ClusterSimParams p;
  p.faults.node_mtbf_hours = 500.0;
  p.faults.recovery_seconds = 100.0;
  p.faults.checkpoint_interval_seconds = 50.0;
  const auto free_writes = ClusterSim(p).simulate_dd(spec, part);
  p.faults.checkpoint_cost_seconds = 5.0;
  const auto paid = ClusterSim(p).simulate_dd(spec, part);
  const double healthy =
      free_writes.total_seconds - free_writes.fault_overhead_seconds;
  EXPECT_NEAR(paid.fault_overhead_seconds - free_writes.fault_overhead_seconds,
              healthy / 50.0 * 5.0, 1e-9 * healthy);
}

TEST(ClusterAbft, AutoTunedIntervalBeatsFixedOnSteadyStateRun) {
  using namespace lqcd::cluster;
  DDSolveSpec spec;
  spec.lattice = {64, 64, 64, 128};
  spec.block = {8, 4, 4, 4};
  spec.outer_iterations = 100 * 872;
  spec.half_precision_boundaries = true;
  const auto part = NodePartition::uniform(spec.lattice, {4, 4, 8, 8});
  ClusterSimParams p;
  p.faults.node_mtbf_hours = 2000.0;
  p.faults.recovery_seconds = 300.0;
  p.faults.checkpoint_cost_seconds = 60.0;
  p.faults.checkpoint_interval_seconds = 600.0;
  const auto fixed = ClusterSim(p).simulate_dd(spec, part);
  p.faults.auto_tune_checkpoint_interval = true;
  const auto tuned = ClusterSim(p).simulate_dd(spec, part);
  EXPECT_GT(tuned.effective_checkpoint_interval_seconds, 0.0);
  EXPECT_NE(tuned.effective_checkpoint_interval_seconds,
            fixed.effective_checkpoint_interval_seconds);
  EXPECT_LE(tuned.total_seconds, fixed.total_seconds);
  EXPECT_EQ(tuned.effective_checkpoint_interval_seconds,
            daly_checkpoint_interval(60.0, 2000.0 * 3600.0 / 1024.0));
}

TEST(ClusterAbft, VerifySweepsChargeBandwidthBoundTime) {
  using namespace lqcd::cluster;
  DDSolveSpec spec;
  spec.lattice = {16, 16, 16, 16};
  spec.block = {4, 4, 4, 4};
  spec.outer_iterations = 100;
  const auto part = NodePartition::uniform(spec.lattice, {2, 2, 2, 2});
  ClusterSimParams p;
  const auto off = ClusterSim(p).simulate_dd(spec, part);
  DDSolveSpec s16 = spec;
  s16.abft_verify_interval = 16;
  const auto r16 = ClusterSim(p).simulate_dd(s16, part);
  DDSolveSpec s8 = spec;
  s8.abft_verify_interval = 8;
  const auto r8 = ClusterSim(p).simulate_dd(s8, part);

  EXPECT_EQ(off.abft_verify_seconds, 0.0);
  EXPECT_GT(r16.abft_verify_seconds, 0.0);
  // Halving the interval exactly doubles the amortized sweep charge.
  EXPECT_NEAR(r8.abft_verify_seconds, 2.0 * r16.abft_verify_seconds,
              1e-12 * r8.abft_verify_seconds);
  EXPECT_NEAR(r16.total_seconds, off.total_seconds + r16.abft_verify_seconds,
              1e-9 * r16.total_seconds);
  // The descriptor is a pure streaming pass over the packed matrices.
  const auto w = knc::checksum_verify_work({8, 4, 4, 4}, true);
  EXPECT_EQ(w.mem_bytes, 512.0 * 144.0 * 2.0);
  EXPECT_EQ(w.l2_bytes, 0.0);
  const auto ws = knc::checksum_verify_work({8, 4, 4, 4}, false);
  EXPECT_EQ(ws.mem_bytes, 2.0 * w.mem_bytes);
}

}  // namespace
}  // namespace lqcd
