// Multi-RHS batched solves (paper Sec. VI): batched Schwarz sweeps,
// deflation-subspace recycling across right-hand sides, the work-model
// nrhs extension, and the solver-config/stats wiring fixes that ride
// along (stagnation parameters, merged fallback stats).
#include <gtest/gtest.h>

#include "lqcd/core/dd_solver.h"
#include "lqcd/knc/work_model.h"

namespace lqcd {
namespace {

struct Problem {
  Geometry geom;
  GaugeField<double> gauge;
  FermionField<double> b;

  Problem(const Coord& dims, double disorder, std::uint64_t seed)
      : geom(dims),
        gauge([&] {
          auto g = random_gauge_field<double>(geom, disorder, seed);
          g.make_time_antiperiodic();
          return g;
        }()),
        b(geom.volume()) {
    gaussian(b, seed + 1);
  }
};

double true_relative_residual(const WilsonCloverOperator<double>& op,
                              const FermionField<double>& b,
                              const FermionField<double>& x) {
  FermionField<double> r(b.size());
  op.apply(x, r);
  sub(b, r, r);
  return norm(r) / norm(b);
}

double field_diff_norm(const FermionField<double>& a,
                       const FermionField<double>& b) {
  FermionField<double> d(a.size());
  sub(a, b, d);
  return norm(d);
}

/// Config that forces multiple FGMRES-DR cycles (small basis, weak
/// preconditioner), so deflated restarts — and hence a harvestable
/// recycling subspace — actually occur. A single strong-preconditioner
/// cycle would converge before ever deflating, leaving nothing to
/// recycle and no cycle boundary for the stagnation logic to inspect.
DDSolverConfig batch_config() {
  DDSolverConfig cfg;
  cfg.block = {4, 4, 4, 4};
  cfg.basis_size = 6;
  cfg.deflation_size = 3;
  cfg.schwarz_iterations = 1;
  cfg.block_mr_iterations = 2;
  cfg.tolerance = 1e-10;
  return cfg;
}

// ---------------------------------------------------------------------------
// Tentpole: solve_batch consistency with solve.
// ---------------------------------------------------------------------------

TEST(MultiRhs, BatchOfOneIsBitIdenticalToSolve) {
  // Solves are deterministic within a process, so a batch of one must
  // reproduce solve() exactly: same trajectory, same counters, same bits.
  Problem prob({8, 8, 8, 8}, 0.7, 311);
  DDSolverConfig cfg = batch_config();
  DDSolver solver(prob.geom, prob.gauge, 0.1, 1.0, cfg);

  FermionField<double> x1(prob.geom.volume());
  const auto s1 = solver.solve(prob.b, x1);

  std::vector<FermionField<double>> b{prob.b},
      x{FermionField<double>(prob.geom.volume())};
  const auto sb = solver.solve_batch(b, x);
  ASSERT_EQ(sb.size(), 1u);
  const auto& s2 = sb[0];

  EXPECT_TRUE(s1.converged);
  EXPECT_TRUE(s2.converged);
  EXPECT_EQ(s1.iterations, s2.iterations);
  EXPECT_EQ(s1.matvecs, s2.matvecs);
  EXPECT_EQ(s1.precond_applications, s2.precond_applications);
  EXPECT_EQ(s1.global_sum_events, s2.global_sum_events);
  EXPECT_EQ(s1.residual_history, s2.residual_history);
  EXPECT_EQ(s1.final_relative_residual, s2.final_relative_residual);
  EXPECT_EQ(s2.recycle_projections, 0);  // nothing to recycle from
  EXPECT_EQ(field_diff_norm(x1, x[0]), 0.0);
}

TEST(MultiRhs, BatchConvergesEveryRhsWithNoMoreTotalIterations) {
  // The propagator workload: 12 spin-color point sources. Every RHS must
  // reach the tolerance, and the recycled deflation subspace must make
  // the batched total outer iteration count no worse than 12 sequential
  // solves.
  Problem prob({8, 8, 8, 8}, 0.7, 321);
  DDSolverConfig cfg = batch_config();
  DDSolver solver(prob.geom, prob.gauge, 0.05, 1.0, cfg);

  const int nrhs = kNumSpins * kNumColors;
  const std::int32_t origin = prob.geom.index({0, 0, 0, 0});
  std::vector<FermionField<double>> b(static_cast<std::size_t>(nrhs)),
      x(static_cast<std::size_t>(nrhs));
  for (int i = 0; i < nrhs; ++i) {
    const auto ii = static_cast<std::size_t>(i);
    b[ii] = FermionField<double>(prob.geom.volume());
    x[ii] = FermionField<double>(prob.geom.volume());
    b[ii][origin].s[i / kNumColors].c[i % kNumColors] =
        Complex<double>(1, 0);
  }

  std::int64_t seq_iters = 0;
  for (int i = 0; i < nrhs; ++i) {
    const auto ii = static_cast<std::size_t>(i);
    const auto st = solver.solve(b[ii], x[ii]);
    ASSERT_TRUE(st.converged) << "sequential RHS " << i;
    seq_iters += st.iterations;
  }

  for (auto& xi : x) xi.zero();
  const auto stats = solver.solve_batch(b, x);
  std::int64_t bat_iters = 0;
  int recycled = 0;
  for (int i = 0; i < nrhs; ++i) {
    const auto ii = static_cast<std::size_t>(i);
    EXPECT_TRUE(stats[ii].converged) << "batched RHS " << i;
    EXPECT_LT(true_relative_residual(solver.op(), b[ii], x[ii]), 2e-10)
        << "batched RHS " << i;
    bat_iters += stats[ii].iterations;
    recycled += stats[ii].recycle_projections;
  }
  EXPECT_LE(bat_iters, seq_iters)
      << "batched=" << bat_iters << " sequential=" << seq_iters;
  // RHS 0 seeds the subspace; the later RHS must actually use it.
  EXPECT_GE(recycled, 1);
  EXPECT_EQ(stats[0].recycle_projections, 0);
}

TEST(MultiRhs, StatsAccumulateAcrossSolveAndSolveBatchCalls) {
  // Every outer preconditioner application — from solve() or from any
  // lane of solve_batch() — is exactly one Schwarz application, and the
  // counters accumulate across calls until reset_stats().
  Problem prob({8, 8, 8, 8}, 0.7, 331);
  DDSolverConfig cfg = batch_config();
  DDSolver solver(prob.geom, prob.gauge, 0.1, 1.0, cfg);

  FermionField<double> x(prob.geom.volume());
  const auto s1 = solver.solve(prob.b, x);
  const std::int64_t after_solve = solver.schwarz_stats().applications;
  EXPECT_EQ(after_solve, s1.precond_applications);

  std::vector<FermionField<double>> bb(3), xx(3);
  for (int i = 0; i < 3; ++i) {
    bb[static_cast<std::size_t>(i)] = FermionField<double>(prob.geom.volume());
    xx[static_cast<std::size_t>(i)] = FermionField<double>(prob.geom.volume());
    gaussian(bb[static_cast<std::size_t>(i)],
             static_cast<std::uint64_t>(400 + i));
  }
  const auto sb = solver.solve_batch(bb, xx);
  std::int64_t batch_applications = 0;
  for (const auto& st : sb) batch_applications += st.precond_applications;
  EXPECT_EQ(solver.schwarz_stats().applications,
            after_solve + batch_applications);
  EXPECT_GT(solver.schwarz_stats().matrix_block_loads, 0);

  solver.reset_stats();
  EXPECT_EQ(solver.schwarz_stats().applications, 0);
  EXPECT_EQ(solver.schwarz_stats().matrix_block_loads, 0);
  EXPECT_EQ(solver.schwarz_stats().sweeps, 0);
}

// ---------------------------------------------------------------------------
// Batched Schwarz preconditioner: matrix-load amortization + independence.
// ---------------------------------------------------------------------------

struct SchwarzFixture {
  Geometry geom;
  Checkerboard cb;
  GaugeField<float> gauge;
  WilsonCloverOperator<float> op;
  DomainPartition part;

  SchwarzFixture()
      : geom({8, 8, 8, 8}),
        cb(geom),
        gauge([&] {
          auto gd = random_gauge_field<double>(geom, 0.5, 17);
          gd.make_time_antiperiodic();
          return convert<float>(gd);
        }()),
        op(geom, cb, gauge, 0.1f, 1.0f),
        part(geom, {4, 4, 4, 4}) {
    op.prepare_schur();
  }
};

TEST(SchwarzBatch, MatrixLoadsPerSweepIndependentOfNrhs) {
  SchwarzFixture f;
  SchwarzParams p;
  p.schwarz_iterations = 3;
  p.block_mr_iterations = 4;
  SchwarzPreconditioner<float> m(f.part, f.op, p);

  const auto run = [&](int nrhs) {
    std::vector<FermionField<float>> ff(static_cast<std::size_t>(nrhs)),
        uu(static_cast<std::size_t>(nrhs));
    std::vector<const FermionField<float>*> fp;
    std::vector<FermionField<float>*> up;
    for (int i = 0; i < nrhs; ++i) {
      ff[static_cast<std::size_t>(i)] = FermionField<float>(f.geom.volume());
      uu[static_cast<std::size_t>(i)] = FermionField<float>(f.geom.volume());
      gaussian(ff[static_cast<std::size_t>(i)],
               static_cast<std::uint64_t>(50 + i));
      fp.push_back(&ff[static_cast<std::size_t>(i)]);
      up.push_back(&uu[static_cast<std::size_t>(i)]);
    }
    m.reset_stats();
    m.apply_batch(fp, up);
    return m.stats();
  };

  const auto s1 = run(1);
  const auto s12 = run(12);

  // One sweep visits each of the 16 domains once; a visit streams the
  // packed matrices once for the whole batch.
  EXPECT_EQ(s1.sweeps, 3);
  EXPECT_EQ(s12.sweeps, 3);
  EXPECT_EQ(s1.matrix_block_loads, 3 * 16);
  EXPECT_EQ(s12.matrix_block_loads, s1.matrix_block_loads);
  // While everything per-RHS scales by 12.
  EXPECT_EQ(s12.applications, 12 * s1.applications);
  EXPECT_EQ(s12.block_solves, 12 * s1.block_solves);
  EXPECT_EQ(s12.mr_iterations, 12 * s1.mr_iterations);
  EXPECT_EQ(s12.boundary_bytes, 12 * s1.boundary_bytes);
}

TEST(SchwarzBatch, BatchedRhsAreIndependentAndMatchSequentialApplies) {
  // Each RHS of a batch must get exactly the result it would get alone:
  // the per-(RHS, domain) face-buffer slots and residual fields must not
  // leak across the batch. With the lane-vectorized path disabled the
  // per-RHS loop executes the identical scalar operation sequence, so the
  // match is bit-exact (the lane path's tolerance contract is covered in
  // test_lane_batch.cpp).
  SchwarzFixture f;
  SchwarzParams p;
  p.schwarz_iterations = 2;
  p.block_mr_iterations = 3;
  p.lane_vectorized = false;
  SchwarzPreconditioner<float> m(f.part, f.op, p);

  const int nrhs = 3;
  std::vector<FermionField<float>> ff(nrhs), u_seq(nrhs), u_bat(nrhs);
  for (int i = 0; i < nrhs; ++i) {
    const auto ii = static_cast<std::size_t>(i);
    ff[ii] = FermionField<float>(f.geom.volume());
    u_seq[ii] = FermionField<float>(f.geom.volume());
    u_bat[ii] = FermionField<float>(f.geom.volume());
    gaussian(ff[ii], static_cast<std::uint64_t>(70 + i));
  }
  for (int i = 0; i < nrhs; ++i)
    m.apply(ff[static_cast<std::size_t>(i)],
            u_seq[static_cast<std::size_t>(i)]);

  std::vector<const FermionField<float>*> fp;
  std::vector<FermionField<float>*> up;
  for (int i = 0; i < nrhs; ++i) {
    fp.push_back(&ff[static_cast<std::size_t>(i)]);
    up.push_back(&u_bat[static_cast<std::size_t>(i)]);
  }
  m.apply_batch(fp, up);

  for (int i = 0; i < nrhs; ++i) {
    const auto ii = static_cast<std::size_t>(i);
    double diff2 = 0;
    for (std::int64_t s = 0; s < f.geom.volume(); ++s)
      diff2 += norm2(u_seq[ii][s] - u_bat[ii][s]);
    EXPECT_EQ(diff2, 0.0) << "RHS " << i;
    // The maintained residual of lane i must equal f_i - A u_i.
    FermionField<float> au(f.geom.volume());
    f.op.apply(u_bat[ii], au);
    sub(ff[ii], au, au);
    double rdiff2 = 0;
    for (std::int64_t s = 0; s < f.geom.volume(); ++s)
      rdiff2 += norm2(au[s] - m.residual(i)[s]);
    EXPECT_LT(std::sqrt(rdiff2), 1e-6 * norm(ff[ii])) << "RHS " << i;
  }
}

// ---------------------------------------------------------------------------
// Satellite: stagnation parameters must reach the outer solver.
// ---------------------------------------------------------------------------

TEST(DDSolverConfig, StagnationParametersReachOuterSolver) {
  // A pathological threshold makes EVERY cycle count as stagnant, so the
  // wired-through config must produce forced plain restarts. Before the
  // fix, DDSolver::solve() dropped both fields and this stayed at 0.
  Problem prob({8, 8, 8, 8}, 0.7, 341);
  DDSolverConfig cfg = batch_config();
  cfg.max_iterations = 4000;

  DDSolver defaults(prob.geom, prob.gauge, 0.1, 1.0, cfg);
  FermionField<double> x1(prob.geom.volume());
  const auto s_def = defaults.solve(prob.b, x1);
  EXPECT_TRUE(s_def.converged);
  EXPECT_EQ(s_def.stagnation_restarts, 0);

  cfg.stagnation_threshold = 0.0;  // any nonzero residual is "stagnant"
  cfg.max_stagnant_cycles = 1;
  DDSolver aggressive(prob.geom, prob.gauge, 0.1, 1.0, cfg);
  FermionField<double> x2(prob.geom.volume());
  const auto s_agg = aggressive.solve(prob.b, x2);
  EXPECT_GT(s_agg.stagnation_restarts, 0);
}

// ---------------------------------------------------------------------------
// Satellite: merged Schwarz stats must include fallback sweeps.
// ---------------------------------------------------------------------------

TEST(DDSolverStats, MergedStatsIncludeSinglePrecisionFallbackSweeps) {
  // Inject fp16-overflow faults so the resilient adapter retries on the
  // single-precision fallback preconditioner. Every retry is a Schwarz
  // application on the FALLBACK object; before the fix schwarz_stats()
  // reported only the half-precision primary and those sweeps vanished.
  Problem prob({8, 8, 8, 8}, 0.7, 221);
  DDSolverConfig cfg;
  cfg.block = {4, 4, 4, 4};
  cfg.basis_size = 6;
  cfg.deflation_size = 2;
  cfg.schwarz_iterations = 1;
  cfg.block_mr_iterations = 2;
  cfg.tolerance = 1e-10;
  cfg.half_precision_matrices = true;
  cfg.max_iterations = 4000;

  FaultInjectorConfig fic;
  fic.fault = FaultClass::kFp16Overflow;
  fic.seed = 29;
  fic.first_opportunity = 2;
  fic.max_events = 2;
  FaultInjector injector(fic);

  cfg.resilience.enabled = true;
  cfg.resilience.schwarz_injector = &injector;
  DDSolver solver(prob.geom, prob.gauge, 0.1, 1.0, cfg);
  FermionField<double> x(prob.geom.volume());
  const auto stats = solver.solve(prob.b, x);

  EXPECT_TRUE(stats.converged);
  const SchwarzStats merged = solver.schwarz_stats();
  EXPECT_GE(merged.precision_fallbacks, 1);
  // One application per outer preconditioner call on the primary, plus
  // one per fallback retry — the merged view must account for both.
  EXPECT_EQ(merged.applications,
            stats.precond_applications + merged.precision_fallbacks);
}

// ---------------------------------------------------------------------------
// Work model: nrhs scales spinor terms, never matrix bytes.
// ---------------------------------------------------------------------------

TEST(WorkModel, NrhsDefaultMatchesSingleRhsDescriptor) {
  const Coord block = {8, 4, 4, 4};
  const auto w1 = knc::block_solve_work(block, 5, true);
  const auto w2 = knc::block_solve_work(block, 5, true, 1);
  EXPECT_EQ(w1.flops, w2.flops);
  EXPECT_EQ(w1.matrix_bytes, w2.matrix_bytes);
  EXPECT_EQ(w1.l2_bytes_per_schur, w2.l2_bytes_per_schur);
  EXPECT_EQ(w1.pack_bytes, w2.pack_bytes);
  EXPECT_EQ(w1.working_set_bytes, w2.working_set_bytes);
  EXPECT_EQ(w1.kernel.mem_bytes, w2.kernel.mem_bytes);
  EXPECT_EQ(w1.kernel.l2_bytes, w2.kernel.l2_bytes);
}

TEST(WorkModel, MatrixBytesChargedOncePerBatchedVisit) {
  const Coord block = {8, 4, 4, 4};
  const auto w1 = knc::block_solve_work(block, 5, true, 1);
  const auto w12 = knc::block_solve_work(block, 5, true, 12);

  EXPECT_EQ(w12.matrix_bytes, w1.matrix_bytes);
  EXPECT_EQ(w12.flops, 12.0 * w1.flops);
  EXPECT_EQ(w12.pack_bytes, 12.0 * w1.pack_bytes);
  // Memory traffic: matrices once + 12x the per-RHS spinor streams.
  EXPECT_EQ(w12.kernel.mem_bytes,
            w1.matrix_bytes + 12.0 * (w1.kernel.mem_bytes - w1.matrix_bytes));

  // Batching must multiply the arithmetic intensity, but by less than
  // nrhs (the spinor traffic still scales).
  const double ai1 = knc::arithmetic_intensity(w1.kernel);
  const double ai12 = knc::arithmetic_intensity(w12.kernel);
  EXPECT_GT(ai12, 1.5 * ai1);
  EXPECT_LT(ai12, 12.0 * ai1);
}

// ---------------------------------------------------------------------------
// Bugfix regressions: per-lane tolerances, stale-setup detection,
// cross-configuration recycle poisoning.
// ---------------------------------------------------------------------------

TEST(BatchSolveOptions, MixedToleranceLanesEachReachTheirOwnTarget) {
  // Regression: batching a tight-tolerance request with looser lane-mates
  // must not declare the tight lane converged at a looser threshold. Each
  // engine carries its own FGMRESDRParams, so the tight lane keeps
  // iterating after the loose lanes stop.
  Problem prob({8, 8, 8, 8}, 0.7, 401);
  DDSolverConfig cfg = batch_config();
  DDSolver solver(prob.geom, prob.gauge, 0.1, 1.0, cfg);

  const std::vector<double> tols = {1e-4, 1e-10, 1e-7};
  std::vector<FermionField<double>> b, x;
  for (std::size_t i = 0; i < tols.size(); ++i) {
    b.emplace_back(prob.geom.volume());
    gaussian(b.back(), 500 + i);
    x.emplace_back(prob.geom.volume());
  }

  BatchSolveOptions options;
  options.tolerances = tols;
  const auto st = solver.solve_batch(b, x, options);
  ASSERT_EQ(st.size(), tols.size());
  for (std::size_t i = 0; i < tols.size(); ++i) {
    EXPECT_TRUE(st[i].converged) << "lane " << i;
    // The lane's TRUE residual must meet the lane's OWN target.
    EXPECT_LE(true_relative_residual(solver.op(), b[i], x[i]), tols[i])
        << "lane " << i;
  }
  // The 1e-10 lane cannot have been stopped at the 1e-4 lane's target.
  EXPECT_LE(st[1].final_relative_residual, 1e-10);
  EXPECT_GT(st[1].iterations, st[0].iterations);
}

TEST(StaleSetup, MutatedGaugeFieldIsRefusedAtSolveEntry) {
  // Regression: the packed Schwarz matrices are a snapshot of the gauge
  // field at construction. Mutating the field afterwards (an HMC step,
  // a smearing pass) and solving again used to silently solve the OLD
  // operator; now the entry check refuses with a structured breakdown.
  Problem prob({8, 8, 8, 8}, 0.7, 411);
  DDSolverConfig cfg = batch_config();
  DDSolver solver(prob.geom, prob.gauge, 0.1, 1.0, cfg);

  FermionField<double> x(prob.geom.volume());
  ASSERT_TRUE(solver.solve(prob.b, x).converged);

  prob.gauge.link(0, 0) = Complex<double>(1.5, 0.0) * prob.gauge.link(0, 0);

  FermionField<double> x2(prob.geom.volume());
  const auto st = solver.solve(prob.b, x2);
  EXPECT_FALSE(st.converged);
  EXPECT_EQ(st.breakdown, Breakdown::kStaleSetup);
  EXPECT_EQ(st.iterations, 0);  // no arithmetic ran
  EXPECT_EQ(norm(x2), 0.0);     // iterate untouched

  std::vector<FermionField<double>> b{prob.b},
      xb{FermionField<double>(prob.geom.volume())};
  const auto stb = solver.solve_batch(b, xb);
  ASSERT_EQ(stb.size(), 1u);
  EXPECT_EQ(stb[0].breakdown, Breakdown::kStaleSetup);

  // Rebuilding on the mutated field clears the condition.
  DDSolver rebuilt(prob.geom, prob.gauge, 0.1, 1.0, cfg);
  FermionField<double> x3(prob.geom.volume());
  EXPECT_TRUE(rebuilt.solve(prob.b, x3).converged);
}

TEST(RecycleCache, PersistentSubspaceSkipsSeedSolveOnNextBatch) {
  // A second batch on the SAME configuration finds a valid recycled
  // subspace in the cache: no solo seeding solve, every lane projects
  // its initial residual (recycle_projections > 0 for lane 0 too).
  Problem prob({8, 8, 8, 8}, 0.7, 421);
  DDSolverConfig cfg = batch_config();
  DDSolver solver(prob.geom, prob.gauge, 0.1, 1.0, cfg);

  RecycleCache cache;
  BatchSolveOptions options;
  options.recycle = &cache;

  auto make_batch = [&](std::uint64_t seed, int n) {
    std::vector<FermionField<double>> f;
    for (int i = 0; i < n; ++i) {
      f.emplace_back(prob.geom.volume());
      gaussian(f.back(), seed + static_cast<std::uint64_t>(i));
    }
    return f;
  };

  auto b1 = make_batch(600, 3);
  std::vector<FermionField<double>> x1(3);
  for (auto& x : x1) x = FermionField<double>(prob.geom.volume());
  const auto s1 = solver.solve_batch(b1, x1, options);
  ASSERT_TRUE(s1[0].converged);
  EXPECT_EQ(s1[0].recycle_projections, 0);  // lane 0 seeded the subspace
  ASSERT_TRUE(cache.space.valid());
  EXPECT_EQ(cache.gauge_key, prob.gauge.content_checksum());

  auto b2 = make_batch(700, 3);
  std::vector<FermionField<double>> x2(3);
  for (auto& x : x2) x = FermionField<double>(prob.geom.volume());
  const auto s2 = solver.solve_batch(b2, x2, options);
  for (std::size_t i = 0; i < s2.size(); ++i) {
    EXPECT_TRUE(s2[i].converged) << "lane " << i;
    EXPECT_GT(s2[i].recycle_projections, 0) << "lane " << i;
    EXPECT_LE(true_relative_residual(solver.op(), b2[i], x2[i]),
              cfg.tolerance)
        << "lane " << i;
  }
}

TEST(RecycleCache, ConfigurationFlipDiscardsHarvestedSubspace) {
  // Regression: a harmonic-Ritz subspace harvested on configuration A is
  // meaningless on configuration B. Presenting A's cache to B's solver
  // must silently discard the subspace and re-key the cache — never
  // project against it.
  Problem prob_a({8, 8, 8, 8}, 0.7, 431);
  Problem prob_b({8, 8, 8, 8}, 0.7, 441);  // different configuration
  DDSolverConfig cfg = batch_config();
  DDSolver solver_a(prob_a.geom, prob_a.gauge, 0.1, 1.0, cfg);
  DDSolver solver_b(prob_b.geom, prob_b.gauge, 0.1, 1.0, cfg);

  RecycleCache cache;
  BatchSolveOptions options;
  options.recycle = &cache;

  std::vector<FermionField<double>> ba{prob_a.b},
      xa{FermionField<double>(prob_a.geom.volume())};
  ASSERT_TRUE(solver_a.solve_batch(ba, xa, options)[0].converged);
  ASSERT_TRUE(cache.space.valid());
  const std::uint32_t key_a = cache.gauge_key;

  std::vector<FermionField<double>> bb{prob_b.b},
      xb{FermionField<double>(prob_b.geom.volume())};
  const auto sb = solver_b.solve_batch(bb, xb, options);
  ASSERT_TRUE(sb[0].converged);
  // The flip was detected: A's subspace was dropped (no projection) and
  // the cache now belongs to B.
  EXPECT_EQ(sb[0].recycle_projections, 0);
  EXPECT_NE(cache.gauge_key, key_a);
  EXPECT_EQ(cache.gauge_key, prob_b.gauge.content_checksum());
  EXPECT_LE(true_relative_residual(solver_b.op(), bb[0], xb[0]),
            cfg.tolerance);
}

TEST(SharedSetup, TwoSolversOnOneSetupMatchIndependentSolvers) {
  // The service path: many DDSolver instances attached to one
  // DDSolverSetup must behave exactly like independently constructed
  // solvers (the setup is immutable during fault-free solves).
  Problem prob({8, 8, 8, 8}, 0.7, 451);
  DDSolverConfig cfg = batch_config();
  auto setup = std::make_shared<DDSolverSetup>(prob.geom, prob.gauge, 0.1,
                                               1.0, cfg);
  DDSolver shared_1(setup, cfg);
  DDSolver shared_2(setup, cfg);
  DDSolver independent(prob.geom, prob.gauge, 0.1, 1.0, cfg);

  FermionField<double> x1(prob.geom.volume()), x2(prob.geom.volume()),
      x3(prob.geom.volume());
  const auto s1 = shared_1.solve(prob.b, x1);
  const auto s2 = shared_2.solve(prob.b, x2);
  const auto s3 = independent.solve(prob.b, x3);
  ASSERT_TRUE(s1.converged);
  EXPECT_EQ(s1.iterations, s3.iterations);
  EXPECT_EQ(s1.residual_history, s3.residual_history);
  EXPECT_EQ(field_diff_norm(x1, x3), 0.0);
  EXPECT_EQ(field_diff_norm(x2, x3), 0.0);
}

}  // namespace
}  // namespace lqcd
