// fp-determinism fixture: su3_mul_nn / xpay_lanes are on the bit-exact
// list; the runner's synthetic compile entry for this TU deliberately
// omits -ffp-contract=off.  EXPECT-TU: fp-determinism

void su3_mul_nn(const float* a, const float* b, float* c) {
  for (int i = 0; i < 9; ++i)
    c[i] = a[i] * b[i] + c[i];  // EXPECT: fp-determinism
}

float helper_fma(float a, float b, float c) {
  return __builtin_fmaf(a, b, c);  // EXPECT: fp-determinism
}

void xpay_lanes(float* y, const float* x, float a, int n) {
  for (int i = 0; i < n; ++i) y[i] = helper_fma(x[i], a, y[i]);
}
