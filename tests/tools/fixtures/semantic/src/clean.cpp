// Clean fixture: exercises every pass's trigger shape in its correct
// form — the analyzer must report NOTHING anchored in this file.

#include <mutex>

// Bit-exact kernel with separated mul/add; this TU's synthetic compile
// entry carries -ffp-contract=off.
void project_lanes(const float* in, float* out, int n) {
  for (int i = 0; i < n; ++i) {
    const float t = in[i] * 2.0f;
    out[i] = t;
  }
}

int clamped(int x) { return x < 0 ? 0 : x; }

void good_region(int* a, int n) {
#pragma omp parallel for schedule(static) default(none) shared(a, n)
  for (int i = 0; i < n; ++i) a[i] = clamped(a[i]);
}

class Ledger {
 public:
  void add(long v) {
    std::lock_guard<std::mutex> g(mu_);
    sum_ = sum_ + v;
  }
  long read() {
    std::lock_guard<std::mutex> g(mu_);
    return sum_;
  }

 private:
  std::mutex mu_;
  long sum_ = 0;
};
