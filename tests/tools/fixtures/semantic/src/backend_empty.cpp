// dispatch-completeness fixture: a backend_*.cpp TU that never
// initializes a Kernels table at all.  EXPECT-TU: dispatch-completeness

void unrelated_work(float* x) {
  *x += 1.0f;
}
