// omp-audit fixture: regions owning a data environment must carry
// default(none). `// EXPECT: <rule>` markers are read by
// tests/tools/run_analyze_fixtures.py — a finding of that rule must
// anchor on exactly this line.

void omp_missing_default(int* a, int n) {
#pragma omp parallel for schedule(static)  // EXPECT: omp-audit
  for (int i = 0; i < n; ++i) a[i] = i;
}

void omp_default_shared(int* a, int n) {
#pragma omp parallel for default(shared)  // EXPECT: omp-audit
  for (int i = 0; i < n; ++i) a[i] = i;
}

void omp_task_missing_default(int x) {
#pragma omp task  // EXPECT: omp-audit
  { (void)x; }
}

void omp_good(int* a, int n) {
#pragma omp parallel for schedule(static) default(none) shared(a, n)
  for (int i = 0; i < n; ++i) a[i] = i;
}

void omp_worksharing_only(int* a, int n) {
  // `omp for` / `omp simd` create no data environment — not audited.
#pragma omp for
  for (int i = 0; i < n; ++i) a[i] = i;
}
