// lock-discipline fixture: the classic AB/BA inversion plus an
// unguarded access to a mutex-protected member.

#include <mutex>

class Account {
 public:
  void ab() {
    std::lock_guard<std::mutex> g1(mu_a_);
    std::lock_guard<std::mutex> g2(mu_b_);  // EXPECT: lock-discipline
    balance_ = balance_ + 1;
  }

  void ba() {
    std::lock_guard<std::mutex> g2(mu_b_);
    std::lock_guard<std::mutex> g1(mu_a_);
    balance_ = balance_ + 1;
  }

  long peek() {
    return balance_;  // EXPECT: lock-discipline
  }

  long peek_safe() {
    std::lock_guard<std::mutex> g(mu_a_);
    return balance_;
  }

  long total_locked() {
    // `_locked` names the caller-holds-the-lock contract: exempt.
    return balance_;
  }

 private:
  std::mutex mu_a_;
  std::mutex mu_b_;
  long balance_ = 0;
};
