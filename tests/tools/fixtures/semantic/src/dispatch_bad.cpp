// dispatch-completeness fixture: a short aggregate (silent
// value-initialized tail) and an explicit nullptr kernel slot.

struct Kernels {
  int backend;
  const char* name;
  void (*alpha)(float*);
  void (*beta)(float*);
  void (*gamma)(float*);
};

void alpha_impl(float*) {}
void beta_impl(float*) {}
void gamma_impl(float*) {}

const Kernels kShortTable = {0, "short", &alpha_impl, &beta_impl};  // EXPECT: dispatch-completeness
const Kernels kNullTable = {1, "holey", &alpha_impl, nullptr, &gamma_impl};  // EXPECT: dispatch-completeness
const Kernels kFullTable = {2, "full", &alpha_impl, &beta_impl, &gamma_impl};
