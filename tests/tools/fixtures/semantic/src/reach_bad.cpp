// parallel-reachability fixture: hazards the lexical tier cannot see —
// a throw two calls deep, a serial fault hook and a shared-stats
// mutation one call deep — plus an analyze-safe barrier that must keep
// the walk out.

struct Error {};

int helper_throws(int x) {
  if (x < 0) throw Error{};
  return x;
}

int deep(int x) { return helper_throws(x); }

// analyze-safe(parallel-reachability): fixture barrier — the throw below
// must never be reported through this function.
int blessed(int x) {
  if (x < -1000000) throw Error{};
  return x;
}

void region_throw(int* a, int n) {
#pragma omp parallel for default(none) shared(a, n)  // EXPECT: parallel-reachability
  for (int i = 0; i < n; ++i) a[i] = deep(a[i]) + blessed(a[i]);
}

struct FaultInjector {
  bool maybe_fault(int k) { return k == 0; }
};
struct Stats {
  long hits = 0;
};

struct Op {
  FaultInjector* injector_ = nullptr;
  Stats stats_;

  void hook_hazard() {
    if (injector_ != nullptr && injector_->maybe_fault(0)) stats_.hits += 1;
  }

  void sweep(int n) {
#pragma omp parallel for default(none) shared(n)  // EXPECT: parallel-reachability
    for (int i = 0; i < n; ++i) hook_hazard();
  }
};
