#pragma once

// Clean lqcd_lint fixture — no findings may anchor here.
inline int doubled(int x) { return 2 * x; }
