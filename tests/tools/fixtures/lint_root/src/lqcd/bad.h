// lqcd_lint fixture: deliberately missing #pragma once, with raw
// allocations. Marker comments are read by run_analyze_fixtures.py.
inline int* leak() {  // EXPECT-LINT: pragma-once
  int* p = (int*)malloc(16);  // EXPECT-LINT: naked-alloc
  free(p);  // EXPECT-LINT: naked-alloc
  return p;
}
