#!/usr/bin/env python3
"""Fixture harness for the two-tier static-analysis stack.

Drives tools/analyze (the semantic tier) over the known-bad corpus in
tests/tools/fixtures/semantic/ and tools/lqcd_lint.py (the lexical
tier) over tests/tools/fixtures/lint_root/, asserting that every pass
fires EXACTLY where the fixtures say it must and stays silent
everywhere else.

Expectations live in the fixtures themselves as marker comments, so
they survive edits that shift line numbers:

    // EXPECT: <rule>        a finding of <rule> anchors on this line
    // EXPECT-TU: <rule>     a TU-level finding of <rule> (line 1)
    // EXPECT-LINT: <rule>   same, for the lqcd_lint leg

The synthetic compile_commands.json gives every TU -ffp-contract=off
EXCEPT fpdet_bad.cpp — the fp-determinism TU-level finding is the
missing flag itself.

Also exercises the shared justified-suppression registry: a justified
entry hides its finding (counted as suppressed), an entry without a
justification is itself an error (exit 2).

Exit 0 on success, 1 with a diff of missing/unexpected findings on
failure.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
SEM_ROOT = REPO / "tests" / "tools" / "fixtures" / "semantic"
SEM_SRC = SEM_ROOT / "src"
LINT_ROOT = REPO / "tests" / "tools" / "fixtures" / "lint_root"

_EXPECT_RE = re.compile(r"//\s*EXPECT:\s*([\w-]+)")
_EXPECT_TU_RE = re.compile(r"EXPECT-TU:\s*([\w-]+)")
_EXPECT_LINT_RE = re.compile(r"//\s*EXPECT-LINT:\s*([\w-]+)")

failures: list[str] = []


def fail(msg: str) -> None:
    failures.append(msg)
    print(f"FAIL: {msg}", file=sys.stderr)


def ok(msg: str) -> None:
    print(f"  ok: {msg}")


def expected_semantic() -> set:
    exp = set()
    for f in sorted(SEM_SRC.glob("*.cpp")):
        rel = f"src/{f.name}"
        for ln, line in enumerate(f.read_text().splitlines(), 1):
            m = _EXPECT_RE.search(line)
            if m:
                exp.add((m.group(1), rel, ln))
            m = _EXPECT_TU_RE.search(line)
            if m:
                exp.add((m.group(1), rel, 1))
    return exp


def write_compile_db(tmp: Path) -> Path:
    entries = []
    for f in sorted(SEM_SRC.glob("*.cpp")):
        cmd = "/usr/bin/c++ -std=c++17 -O2 -fopenmp"
        if f.name != "fpdet_bad.cpp":
            cmd += " -ffp-contract=off"
        cmd += f" -c {f} -o {tmp / (f.stem + '.o')}"
        entries.append({"directory": str(SEM_ROOT), "command": cmd,
                        "file": str(f)})
    db = tmp / "compile_commands.json"
    db.write_text(json.dumps(entries, indent=2))
    return db


def run_analyzer(db: Path, *extra: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(REPO / "tools" / "analyze"),
         "--root", str(SEM_ROOT), "--compile-db", str(db),
         "--frontend", "fallback", "--lock-scope", "/src/", *extra],
        capture_output=True, text=True)


def check_semantic(db: Path) -> None:
    print("== semantic fixtures (tools/analyze) ==")
    proc = run_analyzer(db, "--json", "--no-suppressions")
    if proc.returncode != 1:
        fail(f"analyzer exit {proc.returncode}, expected 1 (findings)\n"
             f"stdout: {proc.stdout}\nstderr: {proc.stderr}")
        return
    doc = json.loads(proc.stdout)
    if doc["frontend"] != "text":
        fail(f"frontend {doc['frontend']!r}, expected 'text' "
             "(--frontend fallback)")
    found = {(f["rule"], f["path"], f["line"]) for f in doc["findings"]}
    exp = expected_semantic()

    for miss in sorted(exp - found):
        fail(f"expected finding did not fire: {miss}")
    for extra in sorted(found - exp):
        fail(f"unexpected finding: {extra}")
    if exp == found:
        per_rule: dict[str, int] = {}
        for rule, _, _ in sorted(found):
            per_rule[rule] = per_rule.get(rule, 0) + 1
        ok(f"{len(found)} expected finding sites, 0 unexpected "
           f"({', '.join(f'{r}:{n}' for r, n in sorted(per_rule.items()))})")
    clean_hits = [f for f in doc["findings"]
                  if f["path"] == "src/clean.cpp"]
    if clean_hits:
        fail(f"findings anchored in clean.cpp: {clean_hits}")
    else:
        ok("clean.cpp is finding-free")

    rules_fired = {f["rule"] for f in doc["findings"]}
    for rule in ("omp-audit", "parallel-reachability", "lock-discipline",
                 "fp-determinism", "dispatch-completeness"):
        if rule not in rules_fired:
            fail(f"pass {rule} produced no finding on its fixture")
    if rules_fired >= {"omp-audit", "parallel-reachability",
                       "lock-discipline", "fp-determinism",
                       "dispatch-completeness"}:
        ok("all five passes fired")


def check_suppressions(db: Path, tmp: Path) -> None:
    print("== justified-suppression registry ==")
    sup = tmp / "suppressions.txt"
    sup.write_text(
        "omp-audit:src/omp_bad.cpp:7  # fixture: justified entries hide "
        "their finding\n")
    proc = run_analyzer(db, "--json", "--suppressions", str(sup))
    doc = json.loads(proc.stdout)
    found = {(f["rule"], f["path"], f["line"]) for f in doc["findings"]}
    if ("omp-audit", "src/omp_bad.cpp", 7) in found:
        fail("justified suppression did not hide its finding")
    elif doc["suppressed"] != 1:
        fail(f"suppressed count {doc['suppressed']}, expected 1")
    else:
        ok("justified suppression hides exactly its finding")

    sup.write_text("omp-audit:src/omp_bad.cpp:7\n")  # no justification
    proc = run_analyzer(db, "--suppressions", str(sup))
    if proc.returncode != 2:
        fail(f"unjustified suppression: exit {proc.returncode}, expected 2")
    else:
        ok("suppression without a justification is exit 2")


def check_lint() -> None:
    print("== lexical fixtures (tools/lqcd_lint.py --root) ==")
    proc = subprocess.run(
        [sys.executable, str(REPO / "tools" / "lqcd_lint.py"),
         "--root", str(LINT_ROOT)],
        capture_output=True, text=True)
    if proc.returncode != 1:
        fail(f"lqcd_lint exit {proc.returncode}, expected 1\n"
             f"stdout: {proc.stdout}\nstderr: {proc.stderr}")
        return
    found = set()
    line_re = re.compile(r"^(.*?):(\d+): \[([\w-]+)\]")
    for out_line in proc.stdout.splitlines():
        m = line_re.match(out_line)
        if m:
            found.add((m.group(3), Path(m.group(1)).name, int(m.group(2))))
    exp = set()
    for f in sorted((LINT_ROOT / "src").rglob("*")):
        if not f.is_file():
            continue
        for ln, line in enumerate(f.read_text().splitlines(), 1):
            m = _EXPECT_LINT_RE.search(line)
            if m:
                exp.add((m.group(1), f.name, ln))
    for miss in sorted(exp - found):
        fail(f"expected lint finding did not fire: {miss}")
    for extra in sorted(found - exp):
        fail(f"unexpected lint finding: {extra}")
    if exp == found:
        ok(f"{len(found)} expected lint findings, 0 unexpected")
    if any(name == "good.h" for _, name, _ in found):
        fail("lint findings anchored in good.h")


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="lqcd-analyze-fix") as td:
        tmp = Path(td)
        db = write_compile_db(tmp)
        check_semantic(db)
        check_suppressions(db, tmp)
    check_lint()
    if failures:
        print(f"\n{len(failures)} fixture assertion(s) failed",
              file=sys.stderr)
        return 1
    print("\nall fixture assertions passed")
    return 0


if __name__ == "__main__":
    os.environ.setdefault("PYTHONDONTWRITEBYTECODE", "1")
    sys.exit(main())
