// Base utilities: RNG quality/determinism, table formatting, error macros.
#include <gtest/gtest.h>

#include <set>

#include "lqcd/base/error.h"
#include "lqcd/base/rng.h"
#include "lqcd/base/table.h"
#include "lqcd/base/timer.h"

namespace lqcd {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
  bool any_diff = false;
  Rng a2(42);
  for (int i = 0; i < 100; ++i)
    any_diff |= (a2.next_u64() != c.next_u64());
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000, 0.5, 0.01);
}

TEST(Rng, GaussianMoments) {
  Rng rng(8);
  double sum = 0, sum2 = 0, sum4 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum2 += g * g;
    sum4 += g * g * g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
  EXPECT_NEAR(sum4 / n, 3.0, 0.1);  // Gaussian kurtosis
}

TEST(Rng, UniformBoundedInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_u64(17);
    EXPECT_LT(v, 17u);
  }
  const double x = rng.uniform(-3.0, 5.0);
  EXPECT_GE(x, -3.0);
  EXPECT_LT(x, 5.0);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng base(11);
  Rng s1 = base.fork(1);
  Rng s2 = base.fork(2);
  int collisions = 0;
  for (int i = 0; i < 100; ++i)
    if (s1.next_u64() == s2.next_u64()) ++collisions;
  EXPECT_EQ(collisions, 0);
}

TEST(Rng, NoShortCycles) {
  Rng rng(12);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) seen.insert(rng.next_u64());
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(Table, FormatsAlignedColumns) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(1.25, 2);
  t.row().cell("b").cell(42);
  const std::string s = t.str(0);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("1.25"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
  // Three lines: header, rule, two rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
}

TEST(Table, RejectsCellWithoutRowOrOverflow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.cell("x"), Error);
  t.row().cell("1").cell("2");
  EXPECT_THROW(t.cell("3"), Error);
}

TEST(ErrorMacro, ThrowsWithContext) {
  try {
    LQCD_CHECK_MSG(1 == 2, "custom message " << 42);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom message 42"), std::string::npos);
  }
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  volatile double sink = 0;
  // C++20 deprecates compound assignment on volatile operands; keep the
  // optimizer-defeating store explicit instead.
  for (int i = 0; i < 2000000; ++i) sink = sink + i * 1e-9;
  const double s = t.seconds();
  EXPECT_GT(s, 0.0);
  EXPECT_LT(s, 60.0);
  t.reset();
  EXPECT_LE(t.seconds(), s + 1.0);
}

}  // namespace
}  // namespace lqcd
